// Package netpart is a from-scratch Go reproduction of Oltchik &
// Schwartz, "Network Partitioning and Avoidable Contention" (SPAA
// 2020): edge-isoperimetric analysis of torus networks, Blue Gene/Q
// partition-geometry optimization, and the simulation infrastructure
// that regenerates every table and figure of the paper's evaluation.
//
// This root package is a facade over the implementation packages:
//
//   - internal/torus, internal/iso: torus graphs and the
//     edge-isoperimetric bounds (Theorems 2.1/3.1, Harper, Lindsey);
//   - internal/bgq: the Blue Gene/Q machine catalog and allocation
//     policies;
//   - internal/route, internal/netsim, internal/mpi: deterministic
//     dimension-ordered routing, the flow-level contention simulator,
//     and the goroutine-per-rank simulated MPI;
//   - internal/matrix, internal/strassen, internal/model: the
//     Strassen-Winograd workload and the calibrated CAPS cost model;
//   - internal/experiments: the per-table/per-figure generators.
//
// Quick start:
//
//	m := netpart.Mira()
//	current, _ := m.Predefined(24)          // 4x3x2x1, bisection 1536
//	proposed, _ := m.Proposed(24)           // 3x2x2x2, bisection 2048
//	speedup, _ := netpart.SpeedupBound(current, proposed) // 1.33x
//
// See the examples/ directory for runnable programs and cmd/ for the
// analysis tools.
//
// # Performance architecture
//
// The evaluation pipeline is built for throughput:
//
//   - internal/netsim's max-min fair engine keeps flows in a
//     free-list-backed arena addressed by dense IDs, indexes
//     link→flows in a flat CSR layout rebuilt once per rate epoch, and
//     runs progressive filling over flat per-link capacity/count
//     arrays — no maps or sorting on any hot path, and completion
//     cohorts (thousands of symmetric flows finishing together) cost
//     one event instead of one per flow.
//   - internal/experiments fans independent rows and figure points out
//     over a bounded worker pool (experiments.Workers) whose output is
//     byte-identical to the sequential order; set Workers=1 to force
//     the sequential path.
//   - internal/iso memoizes the exact bisection cuboid search per
//     shape, so the allocation policies' repeated geometry sweeps
//     reduce to cache lookups after first contact.
//
// To compare engine performance across changes, run the benchmark
// harness before and after:
//
//	go test -run='^$' -bench=. -benchmem > before.txt   # on the old tree
//	go test -run='^$' -bench=. -benchmem > after.txt    # on the new tree
//	benchstat before.txt after.txt                      # or diff by eye
//
// BenchmarkMaxMinFair (cold-start engine), BenchmarkMaxMinFairSteadyState
// (reused engine, the mpi regime), and the per-table/per-figure
// benchmarks are the headline series.
package netpart

import (
	"netpart/internal/bgq"
	"netpart/internal/experiments"
	"netpart/internal/iso"
	"netpart/internal/model"
	"netpart/internal/torus"
)

// Shape is a torus or partition geometry: a list of dimension lengths.
type Shape = torus.Shape

// Torus is a D-dimensional torus graph.
type Torus = torus.Torus

// Machine is a Blue Gene/Q system model.
type Machine = bgq.Machine

// Partition is a Blue Gene/Q allocation: a cuboid of midplanes.
type Partition = bgq.Partition

// ParseShape parses "16x16x12x8x2"-style geometry strings.
func ParseShape(s string) (Shape, error) { return torus.ParseShape(s) }

// NewTorus constructs a torus graph with the given dimension lengths.
func NewTorus(dims ...int) (*Torus, error) { return torus.New(dims...) }

// NewPartition builds a partition from a midplane geometry.
func NewPartition(geom Shape) (Partition, error) { return bgq.NewPartition(geom) }

// Machine catalog (paper §2, §5).
var (
	// Mira returns the 96-midplane Argonne system with its predefined
	// partition list.
	Mira = bgq.Mira
	// Juqueen returns the 56-midplane Jülich system (free allocation).
	Juqueen = bgq.Juqueen
	// Sequoia returns the 192-midplane Livermore system.
	Sequoia = bgq.Sequoia
	// Juqueen54 and Juqueen48 are the hypothetical balanced machines
	// of the paper's machine-design discussion.
	Juqueen54 = bgq.Juqueen54
	Juqueen48 = bgq.Juqueen48
)

// TorusBound evaluates the paper's Theorem 3.1: the generalized
// edge-isoperimetric lower bound for an arbitrary torus, returning the
// bound and the minimizing r.
func TorusBound(dims Shape, t int) (float64, int) { return iso.TorusBound(dims, t) }

// Bisection returns the exact internal bisection (minimal half-volume
// cuboid cut) of a torus.
func Bisection(dims Shape) (iso.CuboidResult, error) { return iso.Bisection(dims) }

// MinCuboidPerimeter solves the edge-isoperimetric problem exactly
// over cuboid subsets of volume t.
func MinCuboidPerimeter(dims Shape, t int) (iso.CuboidResult, error) {
	return iso.MinCuboidPerimeter(dims, t)
}

// SpeedupBound returns the predicted contention-bound runtime ratio
// between two equal-size partitions (the inverse bisection ratio).
func SpeedupBound(worse, better Partition) (float64, error) {
	return model.SpeedupBound(worse, better)
}

// Experiment generators: each regenerates one table or figure of the
// paper (see DESIGN.md for the index and EXPERIMENTS.md for
// paper-vs-measured values).
var (
	Table1  = experiments.Table1
	Table2  = experiments.Table2
	Table3  = experiments.Table3
	Table4  = experiments.Table4
	Table5  = experiments.Table5
	Table6  = experiments.Table6
	Table7  = experiments.Table7
	Figure1 = experiments.Figure1
	Figure2 = experiments.Figure2
	Figure5 = experiments.Figure5
	Figure6 = experiments.Figure6
	Figure7 = experiments.Figure7
)

// Figure3 regenerates the Mira bisection-pairing experiment through
// the flow-level simulator.
func Figure3(fullRounds bool) (experiments.PairingFigure, error) {
	return experiments.Figure3(fullRounds)
}

// Figure4 regenerates the JUQUEEN bisection-pairing experiment.
func Figure4(fullRounds bool) (experiments.PairingFigure, error) {
	return experiments.Figure4(fullRounds)
}
