package netpart

import (
	"context"
	"fmt"
	"time"

	"netpart/internal/experiments"
	"netpart/internal/faults"
	"netpart/internal/scenario"
	"netpart/internal/scenario/sweep"
)

// Dynamic experiments: alongside the static registry of paper
// artifacts, the Runner executes user-defined scenarios (one
// topology × workload × policy composition) and sweeps (parameter
// grids of scenarios). Dynamic experiments synthesize their
// Experiment descriptor on the fly; their IDs ("scenario:<hash>",
// "sweep:<hash>") are content hashes of the normalized definition, so
// an ID is a true result identity exactly like a registry ID plus
// normalized options — the serving layer's coalescing cache treats
// both uniformly. Dynamic IDs always contain a ':', which no registry
// ID does.

// ScenarioSpec declares one scenario; see the internal/scenario
// package documentation for the composition model.
type ScenarioSpec = scenario.Spec

// ScenarioTopology selects the network under test.
type ScenarioTopology = scenario.TopologySpec

// ScenarioWorkload selects the traffic pattern.
type ScenarioWorkload = scenario.WorkloadSpec

// ScenarioSim enables the flow-level simulation.
type ScenarioSim = scenario.SimSpec

// ScenarioOutcome is the typed result of one scenario run; it is the
// Data payload of RunScenario's Result.
type ScenarioOutcome = scenario.Outcome

// FailureSpec declares a failure model on a scenario or trace: failed
// or degraded links/midplanes, seeded random or correlated-region
// selection, and (for traces) time-varying outage windows.
type FailureSpec = faults.Spec

// FailureWindow is one time-varying outage window of a FailureSpec.
type FailureWindow = faults.Window

// Robustness carries a failed scenario's healthy-baseline metrics and
// degradation deltas (ScenarioOutcome.Healthy).
type Robustness = scenario.Robustness

// SweepGrid declares a parameter grid over a base scenario.
type SweepGrid = sweep.Grid

// SweepAxis is one swept parameter of a SweepGrid.
type SweepAxis = sweep.Axis

// SweepPoint is one executed grid point (streamed to RunSweep's
// onPoint callback and listed in SweepData.Points).
type SweepPoint = sweep.PointResult

// SweepData is the typed result of a sweep; it is the Data payload of
// RunSweep's Result.
type SweepData = sweep.Result

// scenarioExperiment synthesizes the descriptor of a normalized spec.
func scenarioExperiment(norm ScenarioSpec) Experiment {
	return Experiment{
		ID:    norm.ID(),
		Title: norm.Title(),
		Kind:  KindTable,
		Cost:  Cost(norm.Cost()),
	}
}

// RunScenario executes one user-defined scenario and returns a Result
// shaped exactly like a registry run: the synthesized descriptor, the
// rendered metric table, and the typed ScenarioOutcome in Data.
// Output is byte-deterministic for a given spec — randomized
// workloads derive from the spec's seed — so Result encodings may be
// cached and coalesced by Experiment.ID.
func (r *Runner) RunScenario(ctx context.Context, spec ScenarioSpec) (*Result, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	exp := scenarioExperiment(norm)
	token := fmt.Sprintf("%s#%d", exp.ID, runSeq.Add(1))
	start := time.Now()
	out, err := scenario.Run(ctx, norm)
	if err != nil {
		return nil, err
	}
	if r.progress != nil {
		r.progressMu.Lock()
		r.progress(Progress{Experiment: exp.ID, Run: token, Done: 1, Total: 1})
		r.progressMu.Unlock()
	}
	return &Result{
		Experiment: exp,
		Table:      out.Table(),
		Data:       out,
		Meta: RunMeta{
			Run:     token,
			Workers: 1, // scenario runs are single-point; the pool is for sweeps
			Elapsed: time.Since(start),
		},
	}, nil
}

// RunSweep expands the grid and executes its points sharded on the
// Runner's worker pool. onPoint (optional) receives every completed
// point in completion order; per-point progress flows through the
// Runner's WithProgress callback (Done counts completed points).
// Point failures are isolated into SweepPoint.Err — only context
// cancellation or an invalid grid fail the sweep. The Result is
// byte-deterministic for a given grid regardless of worker count.
func (r *Runner) RunSweep(ctx context.Context, grid SweepGrid, onPoint func(SweepPoint)) (*Result, error) {
	points, err := grid.Expand()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	exp := Experiment{
		ID:    sweep.ID(grid.Name, points),
		Title: grid.Title(),
		Kind:  KindTable,
		Cost:  Cost(sweep.Cost(points)),
	}
	token := fmt.Sprintf("%s#%d", exp.ID, runSeq.Add(1))
	opts := sweep.Options{Workers: r.workers, OnPoint: onPoint, RunPoint: r.scenarioRun}
	if r.progress != nil {
		fn := r.progress
		opts.OnProgress = func(done, total int) {
			r.progressMu.Lock()
			defer r.progressMu.Unlock()
			fn(Progress{Experiment: exp.ID, Run: token, Done: done, Total: total})
		}
	}
	start := time.Now()
	res, err := sweep.RunPoints(ctx, grid, points, opts)
	if err != nil {
		return nil, err
	}
	return &Result{
		Experiment: exp,
		Table:      res.Table(exp.Title),
		Data:       res,
		Meta: RunMeta{
			Run:     token,
			Workers: experiments.Config{Workers: r.workers}.ResolvedWorkers(),
			Elapsed: time.Since(start),
		},
	}, nil
}
