package netpart

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"netpart/internal/bgq"
	"netpart/internal/torus"
)

// TestRegistryStable pins the public contract of the registry: exactly
// the 14 paper artifacts, stable IDs, unique, in presentation order,
// with the kinds the IDs promise.
func TestRegistryStable(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"figure1", "figure2", "figure3", "figure4", "figure5", "figure6", "figure7",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	seen := map[string]bool{}
	for i, exp := range reg {
		if exp.ID != want[i] {
			t.Errorf("registry[%d].ID = %q, want %q", i, exp.ID, want[i])
		}
		if seen[exp.ID] {
			t.Errorf("duplicate ID %q", exp.ID)
		}
		seen[exp.ID] = true
		wantKind := KindTable
		if strings.HasPrefix(exp.ID, "figure") {
			wantKind = KindFigure
		}
		if exp.Kind != wantKind {
			t.Errorf("%s: kind = %q, want %q", exp.ID, exp.Kind, wantKind)
		}
		if exp.Title == "" || exp.Cost == "" {
			t.Errorf("%s: incomplete descriptor %+v", exp.ID, exp)
		}
		if got, ok := Lookup(exp.ID); !ok || got.Title != exp.Title {
			t.Errorf("Lookup(%q) = %+v, %v", exp.ID, got, ok)
		}
	}
	if _, ok := Lookup("table99"); ok {
		t.Error("Lookup should reject unknown IDs")
	}
}

// TestEveryRegisteredIDRuns executes all 14 artifacts through one
// Runner and checks the uniform Result shape: a non-empty table
// always, a chart and typed data exactly for figures.
func TestEveryRegisteredIDRuns(t *testing.T) {
	runner := NewRunner()
	ctx := context.Background()
	results, err := runner.RunAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Registry()) {
		t.Fatalf("RunAll returned %d results", len(results))
	}
	for _, res := range results {
		id := res.Experiment.ID
		if len(res.Table.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
		if res.Experiment.Kind == KindFigure {
			if res.Chart == nil {
				t.Errorf("%s: figure without chart", id)
			}
			if res.Data == nil {
				t.Errorf("%s: figure without typed data", id)
			}
		} else if res.Chart != nil {
			t.Errorf("%s: table with chart", id)
		}
		if res.Meta.Workers < 1 {
			t.Errorf("%s: meta workers = %d", id, res.Meta.Workers)
		}
		js, err := res.JSON()
		if err != nil {
			t.Errorf("%s: JSON: %v", id, err)
		}
		if !bytes.Contains(js, []byte(fmt.Sprintf("%q", id))) {
			t.Errorf("%s: JSON missing its own ID", id)
		}
		if _, err := res.CSV(); err != nil {
			t.Errorf("%s: CSV: %v", id, err)
		}
	}
	if _, err := runner.Run(ctx, "figure99"); err == nil {
		t.Error("Run should reject unknown IDs")
	}
}

// TestRunnerOptions checks the per-call options: workers are per-run
// state with byte-identical output, and progress callbacks report the
// experiment ID with monotone counts.
func TestRunnerOptions(t *testing.T) {
	ctx := context.Background()
	seqRes, err := NewRunner(WithWorkers(1)).Run(ctx, "table6")
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := NewRunner(WithWorkers(8)).Run(ctx, "table6")
	if err != nil {
		t.Fatal(err)
	}
	if seqRes.Table.Render() != parRes.Table.Render() {
		t.Error("worker count changed output")
	}
	if seqRes.Meta.Workers != 1 || parRes.Meta.Workers != 8 {
		t.Errorf("meta workers = %d, %d", seqRes.Meta.Workers, parRes.Meta.Workers)
	}

	var last Progress
	calls := 0
	runner := NewRunner(WithWorkers(2), WithProgress(func(p Progress) {
		calls++
		if p.Experiment != "figure2" {
			t.Errorf("progress for %q", p.Experiment)
		}
		last = p
	}))
	if _, err := runner.Run(ctx, "figure2"); err != nil {
		t.Fatal(err)
	}
	if calls == 0 || last.Done != last.Total || last.Total == 0 {
		t.Errorf("progress ended at %+v after %d calls", last, calls)
	}
}

// TestRunTokensDistinguishConcurrentRuns: two concurrent runs of the
// same experiment ID report distinct per-run tokens, each token is
// stable across its run's reports, and RunMeta echoes it — the
// contract a multiplexed progress consumer (SSE fan-out) relies on.
func TestRunTokensDistinguishConcurrentRuns(t *testing.T) {
	ctx := context.Background()
	run := func() (string, map[string]bool) {
		tokens := map[string]bool{}
		var mu sync.Mutex
		runner := NewRunner(WithWorkers(2), WithProgress(func(p Progress) {
			if p.Experiment != "figure1" {
				t.Errorf("progress for %q", p.Experiment)
			}
			if p.Run == "" {
				t.Error("empty run token")
			}
			mu.Lock()
			tokens[p.Run] = true
			mu.Unlock()
		}))
		res, err := runner.Run(ctx, "figure1")
		if err != nil {
			t.Error(err)
			return "", nil
		}
		return res.Meta.Run, tokens
	}
	type out struct {
		meta   string
		tokens map[string]bool
	}
	results := make(chan out, 2)
	for range 2 {
		go func() {
			meta, tokens := run()
			results <- out{meta, tokens}
		}()
	}
	a, b := <-results, <-results
	for _, o := range []out{a, b} {
		if len(o.tokens) != 1 || !o.tokens[o.meta] {
			t.Errorf("run reported tokens %v but meta token %q", o.tokens, o.meta)
		}
	}
	if a.meta == b.meta {
		t.Errorf("concurrent runs share token %q", a.meta)
	}
}

// TestNormalizeOptions pins the cache-identity contract: Workers
// never matters, FullRounds only for the pairing simulations.
func TestNormalizeOptions(t *testing.T) {
	for _, exp := range Registry() {
		got := exp.Normalize(RunOptions{Workers: 8, FullRounds: true})
		if got.Workers != 0 {
			t.Errorf("%s: Workers survived normalization", exp.ID)
		}
		wantFull := exp.ID == "figure3" || exp.ID == "figure4"
		if got.FullRounds != wantFull {
			t.Errorf("%s: normalized FullRounds = %v, want %v", exp.ID, got.FullRounds, wantFull)
		}
	}
}

// TestResultMarkdown: the Markdown encoding is deterministic and
// carries the table grid.
func TestResultMarkdown(t *testing.T) {
	runner := NewRunner()
	res, err := runner.Run(context.Background(), "table4")
	if err != nil {
		t.Fatal(err)
	}
	md := res.Markdown()
	if !bytes.Contains(md, []byte("| --- |")) || !bytes.Contains(md, []byte(res.Table.Headers[0])) {
		t.Errorf("markdown missing table structure:\n%s", md)
	}
	res2, err := runner.Run(context.Background(), "table4")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(md, res2.Markdown()) {
		t.Error("Markdown encoding not deterministic across runs")
	}
}

// TestRunPreCanceled: a dead context returns ctx.Err() from both a
// table-driver experiment and a pairing simulation without work.
func TestRunPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runner := NewRunner()
	for _, id := range []string{"table6", "figure3"} {
		if _, err := runner.Run(ctx, id); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", id, err)
		}
	}
}

// TestRunMidRunCanceled cancels from the progress callback: the table
// driver pool and the pairing simulations must stop handing out units
// and surface ctx.Err().
func TestRunMidRunCanceled(t *testing.T) {
	for _, id := range []string{"table7", "figure4"} {
		ctx, cancel := context.WithCancel(context.Background())
		runner := NewRunner(WithWorkers(1), WithProgress(func(p Progress) { cancel() }))
		if _, err := runner.Run(ctx, id); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", id, err)
		}
		cancel()
	}
}

// TestRunnerCorruptedCatalog: catalog failures surface as errors from
// Run, never as silently truncated results.
func TestRunnerCorruptedCatalog(t *testing.T) {
	bare, err := bgq.NewMachine("Mira", torus.Shape{4, 4, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	runner := NewRunner(withMachines(func(name string) (*Machine, error) {
		if name == "mira" {
			return bare, nil // lost its predefined partition list
		}
		return nil, fmt.Errorf("catalog store unreachable")
	}))
	for _, id := range []string{"table1", "table2", "figure1", "figure3"} {
		if _, err := runner.Run(context.Background(), id); err == nil {
			t.Errorf("%s: corrupted catalog produced no error", id)
		}
	}
}

// TestResultGolden locks the byte-deterministic encodings: one table
// and one figure Result, JSON and CSV, against checked-in golden
// files. Regenerate with UPDATE_GOLDEN=1 go test -run TestResultGolden.
func TestResultGolden(t *testing.T) {
	runner := NewRunner()
	ctx := context.Background()
	for _, tc := range []struct {
		id   string
		enc  string
		get  func(*Result) ([]byte, error)
		file string
	}{
		{"table4", "json", (*Result).JSON, "table4.json"},
		{"table4", "csv", (*Result).CSV, "table4.csv"},
		{"figure6", "json", (*Result).JSON, "figure6.json"},
		{"figure6", "csv", (*Result).CSV, "figure6.csv"},
	} {
		t.Run(tc.id+"/"+tc.enc, func(t *testing.T) {
			res, err := runner.Run(ctx, tc.id)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tc.get(res)
			if err != nil {
				t.Fatal(err)
			}
			// Encoding twice yields identical bytes.
			again, err := tc.get(res)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, again) {
				t.Fatal("encoding not deterministic within one result")
			}
			// And a fresh run of the same experiment encodes identically.
			res2, err := runner.Run(ctx, tc.id)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := tc.get(res2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, fresh) {
				t.Fatal("encoding not deterministic across runs")
			}
			path := filepath.Join("testdata", tc.file)
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("golden mismatch for %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}
