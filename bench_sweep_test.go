package netpart

import (
	"context"
	"testing"

	"netpart/internal/scenario/sweep"
)

// Sweep-engine benchmarks: the per-point cost of the scenario layer
// (spec normalization, topology resolution, workload generation,
// static analysis) and the sweep engine's sharded fan-out on top of
// it. cmd/benchsnap records these to BENCH_sweep.json in CI, so the
// serving-path cost of dynamic experiments is tracked across PRs the
// same way the max-min fair engine is.

// benchGrid is a 64-point static grid of small tori: large enough to
// exercise sharding, cheap enough per point that the engine overhead
// is visible.
func benchGrid() SweepGrid {
	return SweepGrid{
		Name: "bench",
		Base: ScenarioSpec{
			Topology: ScenarioTopology{Kind: "torus", Shape: "8x8"},
			Workload: ScenarioWorkload{Pattern: "pairing", Bytes: 1e9},
		},
		Axes: []SweepAxis{
			{Path: "topology.shape", Values: sweep.Strings("4x4", "8x4", "8x8", "16x8", "8x8x2", "16x4", "4x4x4", "8x4x2")},
			{Path: "workload.pattern", Values: sweep.Strings("pairing", "permutation", "neighbor", "longest-dim")},
			{Path: "workload.seed", Values: sweep.Ints(1, 2), Zip: ""},
		},
	}
}

// BenchmarkSweepExpand isolates grid expansion: JSON patching, strict
// decoding and normalization of every point.
func BenchmarkSweepExpand(b *testing.B) {
	g := benchGrid()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := g.Expand()
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 64 {
			b.Fatalf("%d points", len(pts))
		}
	}
}

// BenchmarkSweepStatic64 runs the 64-point static grid end to end on
// the default worker pool.
func BenchmarkSweepStatic64(b *testing.B) {
	g := benchGrid()
	runner := NewRunner()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := runner.RunSweep(ctx, g, nil)
		if err != nil {
			b.Fatal(err)
		}
		if d := res.Data.(*SweepData); d.Failed != 0 {
			b.Fatal("failed points")
		}
	}
}

// BenchmarkSweepStatic64Sequential is the same grid on one worker:
// the spread against BenchmarkSweepStatic64 is the pool's win.
func BenchmarkSweepStatic64Sequential(b *testing.B) {
	g := benchGrid()
	runner := NewRunner(WithWorkers(1))
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.RunSweep(ctx, g, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioStatic is the single-point cost: one mid-size
// static scenario through the full Run path.
func BenchmarkScenarioStatic(b *testing.B) {
	runner := NewRunner()
	ctx := context.Background()
	spec := ScenarioSpec{
		Topology: ScenarioTopology{Kind: "torus", Shape: "16x16x8"},
		Workload: ScenarioWorkload{Pattern: "pairing", Bytes: 1e9},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.RunScenario(ctx, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioMinhopSim is the expensive end of one point: a
// graph-family topology with BFS routing and the flow-level
// simulation.
func BenchmarkScenarioMinhopSim(b *testing.B) {
	runner := NewRunner()
	ctx := context.Background()
	spec := ScenarioSpec{
		Topology: ScenarioTopology{Kind: "dragonfly", Groups: 8, GroupShape: "8x4"},
		Workload: ScenarioWorkload{Pattern: "pairing", Bytes: 1e9},
		Sim:      ScenarioSim{Enabled: true},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.RunScenario(ctx, spec); err != nil {
			b.Fatal(err)
		}
	}
}
