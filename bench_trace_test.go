package netpart

import (
	"context"
	"testing"

	"netpart/internal/scenario/sweep"
)

// Trace-simulator benchmarks: the cost of one trace-driven queue
// simulation (the serving unit of POST /v1/traces) and of a
// policy-comparison grid on the worker pool. cmd/benchsnap records
// these to BENCH_sweep.json in CI alongside the sweep and scenario
// hot paths.

// benchTrace is a 200-job contention-heavy trace on JUQUEEN — the
// acceptance-criterion shape.
func benchTrace(policy string) TraceSpec {
	return TraceSpec{
		Machine: "juqueen", Policy: policy, Backfill: true,
		Synthetic: &TraceSynthetic{
			Jobs: 200, Seed: 11, RateHz: 0.06,
			Sizes: []int{1, 2, 4, 8}, Pattern: "pairing", PatternFraction: 0.5,
		},
	}
}

// benchTraceRun drives one policy's 200-job simulation under b.Loop,
// with a priming run outside the measured region so the process-wide
// caches (placement plans, contention memo, flow sets) are warm —
// every measured iteration then has the same steady-state cost, which
// keeps short -benchtime windows from reporting a single cold
// iteration as the number.
func benchTraceRun(b *testing.B, policy string) {
	runner := NewRunner()
	spec := benchTrace(policy)
	if _, err := runner.RunTrace(context.Background(), spec, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for b.Loop() {
		if _, err := runner.RunTrace(context.Background(), spec, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceSim200 measures one full 200-job simulation under the
// contention-aware policy.
func BenchmarkTraceSim200(b *testing.B) { benchTraceRun(b, "contention-aware") }

// BenchmarkTraceSimFirstFit200 is the geometry-oblivious baseline of
// the same trace; the spread against BenchmarkTraceSim200 is the
// runtime cost of the policy itself, not the workload.
func BenchmarkTraceSimFirstFit200(b *testing.B) { benchTraceRun(b, "first-fit") }

// BenchmarkTraceGridPolicies runs a 3-policy comparison grid of
// 40-job traces on the worker pool.
func BenchmarkTraceGridPolicies(b *testing.B) {
	runner := NewRunner()
	grid := TraceGrid{
		Name: "bench",
		Base: TraceSpec{
			Machine: "juqueen", Backfill: true,
			Synthetic: &TraceSynthetic{Jobs: 40, Pattern: "pairing", PatternFraction: 0.5},
		},
		Axes: []SweepAxis{
			{Path: "policy", Values: sweep.Strings("first-fit", "best-bisection", "contention-aware")},
		},
	}
	if _, err := runner.RunTraceGrid(context.Background(), grid, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for b.Loop() {
		if _, err := runner.RunTraceGrid(context.Background(), grid, nil); err != nil {
			b.Fatal(err)
		}
	}
}
