package netpart_test

import (
	"testing"

	"netpart"
)

// TestFacadeCoherence exercises every facade entry point — including
// the deprecated pre-Runner experiment wrappers, which must keep
// working until removal — and checks the re-exports agree with each
// other.
func TestFacadeCoherence(t *testing.T) {
	tor, err := netpart.NewTorus(6, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tor.NumVertices() != 48 {
		t.Errorf("vertices = %d", tor.NumVertices())
	}
	if _, err := netpart.NewTorus(); err == nil {
		t.Error("empty torus should fail")
	}

	p, err := netpart.NewPartition(netpart.Shape{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.BisectionBW() != 512 {
		t.Errorf("BW = %d", p.BisectionBW())
	}

	// Bound never exceeds the exact cuboid value.
	dims := netpart.Shape{8, 6, 4}
	for _, tt := range []int{4, 12, 48, 96} {
		bound, _ := netpart.TorusBound(dims, tt)
		res, err := netpart.MinCuboidPerimeter(dims, tt)
		if err != nil {
			continue
		}
		if float64(res.Perimeter) < bound-1e-6 {
			t.Errorf("t=%d: exact %d below bound %v", tt, res.Perimeter, bound)
		}
	}

	// Machines and experiment generators.
	if netpart.Sequoia().Nodes() != 98304 || netpart.Juqueen54().Midplanes() != 54 || netpart.Juqueen48().Midplanes() != 48 {
		t.Error("catalog")
	}
	if len(netpart.Table3().Rows) != 4 || len(netpart.Table4().Rows) != 3 || len(netpart.Table5().Rows) != 24 {
		t.Error("table generators")
	}
	if len(netpart.Figure2().X) != 19 || len(netpart.Figure7().Series) != 3 {
		t.Error("figure generators")
	}
	if f, err := netpart.Figure5(); err != nil || len(f.PointsA) != 4 {
		t.Errorf("Figure5: %v", err)
	}
	if f, err := netpart.Figure6(); err != nil || len(f.PointsA) != 3 {
		t.Errorf("Figure6: %v", err)
	}
	fig3, err := netpart.Figure3(false)
	if err != nil || fig3.MaxSpeedup() < 1.9 {
		t.Errorf("Figure3: %v, speedup %v", err, fig3.MaxSpeedup())
	}
	fig4, err := netpart.Figure4(false)
	if err != nil || fig4.MaxSpeedup() < 1.9 {
		t.Errorf("Figure4: %v, speedup %v", err, fig4.MaxSpeedup())
	}

	// Bisection wrapper agrees with the partition method.
	res, err := netpart.Bisection(p.NodeShape())
	if err != nil {
		t.Fatal(err)
	}
	if res.Perimeter != p.BisectionBW() {
		t.Errorf("facade bisection %d != partition %d", res.Perimeter, p.BisectionBW())
	}
}
