package netpart_test

import (
	"context"
	"testing"

	"netpart"
)

// TestFacadeCoherence exercises every facade entry point and checks
// the re-exports agree with each other. The experiment artifacts run
// through the Runner API (the deprecated pre-Runner wrappers are
// gone).
func TestFacadeCoherence(t *testing.T) {
	tor, err := netpart.NewTorus(6, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tor.NumVertices() != 48 {
		t.Errorf("vertices = %d", tor.NumVertices())
	}
	if _, err := netpart.NewTorus(); err == nil {
		t.Error("empty torus should fail")
	}

	p, err := netpart.NewPartition(netpart.Shape{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.BisectionBW() != 512 {
		t.Errorf("BW = %d", p.BisectionBW())
	}

	// Bound never exceeds the exact cuboid value.
	dims := netpart.Shape{8, 6, 4}
	for _, tt := range []int{4, 12, 48, 96} {
		bound, _ := netpart.TorusBound(dims, tt)
		res, err := netpart.MinCuboidPerimeter(dims, tt)
		if err != nil {
			continue
		}
		if float64(res.Perimeter) < bound-1e-6 {
			t.Errorf("t=%d: exact %d below bound %v", tt, res.Perimeter, bound)
		}
	}

	// Machines and experiment generators.
	if netpart.Sequoia().Nodes() != 98304 || netpart.Juqueen54().Midplanes() != 54 || netpart.Juqueen48().Midplanes() != 48 {
		t.Error("catalog")
	}
	ctx := context.Background()
	runner := netpart.NewRunner()
	table := func(id string) netpart.Table {
		t.Helper()
		res, err := runner.Run(ctx, id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		return res.Table
	}
	data := func(id string) any {
		t.Helper()
		res, err := runner.Run(ctx, id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		return res.Data
	}
	if len(table("table3").Rows) != 4 || len(table("table4").Rows) != 3 || len(table("table5").Rows) != 24 {
		t.Error("table generators")
	}
	if len(data("figure2").(netpart.BWFigure).X) != 19 || len(data("figure7").(netpart.BWFigure).Series) != 3 {
		t.Error("figure generators")
	}
	if f := data("figure5").(netpart.MatmulFigure); len(f.PointsA) != 4 {
		t.Errorf("figure5: %d points", len(f.PointsA))
	}
	if f := data("figure6").(netpart.MatmulFigure); len(f.PointsA) != 3 {
		t.Errorf("figure6: %d points", len(f.PointsA))
	}
	if f := data("figure3").(netpart.PairingFigure); f.MaxSpeedup() < 1.9 {
		t.Errorf("figure3: speedup %v", f.MaxSpeedup())
	}
	if f := data("figure4").(netpart.PairingFigure); f.MaxSpeedup() < 1.9 {
		t.Errorf("figure4: speedup %v", f.MaxSpeedup())
	}

	// Bisection wrapper agrees with the partition method.
	res, err := netpart.Bisection(p.NodeShape())
	if err != nil {
		t.Fatal(err)
	}
	if res.Perimeter != p.BisectionBW() {
		t.Errorf("facade bisection %d != partition %d", res.Perimeter, p.BisectionBW())
	}
}
