package netpart_test

import (
	"context"
	"fmt"

	"netpart"
)

// Every artifact of the paper's evaluation is a registered experiment
// with a stable ID; a Runner executes them with per-call options.
func ExampleRunner() {
	runner := netpart.NewRunner(netpart.WithWorkers(2))
	res, err := runner.Run(context.Background(), "table4")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s (%s, %s): %d rows\n",
		res.Experiment.ID, res.Experiment.Kind, res.Experiment.Cost, len(res.Table.Rows))
	// Output:
	// table4 (table, cheap): 3 rows
}

// The registry enumerates the evaluation in presentation order.
func ExampleRegistry() {
	for _, exp := range netpart.Registry() {
		if exp.Cost == netpart.CostHeavy {
			fmt.Println(exp.ID, "—", exp.Title)
		}
	}
	// Output:
	// figure3 — Mira bisection pairing (flow-level simulation)
	// figure4 — JUQUEEN bisection pairing (flow-level simulation)
}

// The headline result: Mira's 24-midplane partition geometry leaves a
// third of the achievable bisection bandwidth on the table.
func Example() {
	mira := netpart.Mira()
	current, _ := mira.Predefined(24)
	proposed, _ := mira.Proposed(24)
	speedup, _ := netpart.SpeedupBound(current, proposed)
	fmt.Printf("current:  %s (bisection %d links)\n", current, current.BisectionBW())
	fmt.Printf("proposed: %s (bisection %d links)\n", proposed, proposed.BisectionBW())
	fmt.Printf("contention-bound speedup: %.2fx\n", speedup)
	// Output:
	// current:  4x3x2x1 (bisection 1536 links)
	// proposed: 3x2x2x2 (bisection 2048 links)
	// contention-bound speedup: 1.33x
}

// Theorem 3.1 bounds the perimeter of any subset of a torus with
// arbitrary dimension lengths; the attaining cuboid realizes it.
func ExampleTorusBound() {
	dims := netpart.Shape{9, 3, 3}
	bound, r := netpart.TorusBound(dims, 27)
	best, _ := netpart.MinCuboidPerimeter(dims, 27)
	fmt.Printf("bound %.0f at r=%d; optimal cuboid %s with perimeter %d\n",
		bound, r, best.Lens, best.Perimeter)
	// Output:
	// bound 18 at r=2; optimal cuboid 3x3x3 with perimeter 18
}

// Internal bisection of a Blue Gene/Q partition, exactly and via the
// 2N/L closed form.
func ExampleBisection() {
	res, _ := netpart.Bisection(netpart.Shape{12, 8, 8, 8, 2})
	fmt.Printf("half-volume cuboid %s cuts %d links\n", res.Lens, res.Perimeter)
	// Output:
	// half-volume cuboid 6x8x8x8x2 cuts 2048 links
}

// JUQUEEN accepts any fitting cuboid, so equal-size requests can
// receive wildly different bandwidth.
func ExampleMachine() {
	jq := netpart.Juqueen()
	best, _ := jq.Best(12)
	worst, _ := jq.Worst(12)
	fmt.Printf("12 midplanes: best %s (%d), worst %s (%d)\n",
		best, best.BisectionBW(), worst, worst.BisectionBW())
	// Output:
	// 12 midplanes: best 3x2x2x1 (1024), worst 6x2x1x1 (512)
}

// ParseShape reads the AxBxC geometry notation used throughout.
func ExampleParseShape() {
	sh, _ := netpart.ParseShape("16x16x12x8x2")
	fmt.Println(sh.Volume(), "nodes, longest dimension", sh.LongestDim())
	// Output:
	// 49152 nodes, longest dimension 16
}
