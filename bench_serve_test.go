package netpart_test

// Serving benchmarks. These live in the external test package
// (netpart_test) because internal/serve imports the root netpart
// package, which the in-package bench harness (bench_test.go) cannot
// import back. `go test -bench=. .` runs both harnesses.

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"netpart/internal/serve"
)

// warmServer returns a Server whose table3 result is cached, plus the
// warmed response body length.
func warmServer(b *testing.B) (*serve.Server, int, string) {
	b.Helper()
	srv := serve.New(serve.Options{Workers: 1})
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/experiments/table3/result", nil))
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup status %d", rec.Code)
	}
	return srv, rec.Body.Len(), rec.Header().Get("ETag")
}

// BenchmarkServeCachedResult measures the hot-cache request path of
// the HTTP serving subsystem: a synchronous result fetch whose key is
// already cached — negotiation + cache lookup + pre-rendered bytes,
// no experiment work. This is netpartd's steady-state serving cost
// per request.
func BenchmarkServeCachedResult(b *testing.B) {
	srv, n, _ := warmServer(b)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", "/v1/experiments/table3/result", nil)
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatal("cache miss on hot path")
		}
	}
}

// BenchmarkServeRevalidation is the same path when the client holds a
// matching ETag: the 304 answer never touches the body.
func BenchmarkServeRevalidation(b *testing.B) {
	srv, _, etag := warmServer(b)
	if etag == "" {
		b.Fatal("no ETag after warmup")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", "/v1/experiments/table3/result", nil)
		req.Header.Set("If-None-Match", etag)
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusNotModified {
			b.Fatal("revalidation missed")
		}
	}
}
