package netpart

import (
	"context"
	"fmt"
	"time"

	"netpart/internal/experiments"
	"netpart/internal/sched/tracesim"
)

// Trace-driven scheduling simulations: the third dynamic experiment
// family after scenarios and sweeps. A TraceSpec replays a multi-job
// trace (inline, synthetic or SWF-parsed) through the internal/sched
// queue under a placement policy, with per-job contention scored at
// placement time feeding runtime dilation back into the queue; a
// TraceGrid sweeps such traces over dot-path axes (policy ×
// arrival-rate grids). IDs ("trace:<hash>", "tracegrid:<hash>") are
// content hashes of the normalized definition, so the serving layer's
// coalescing cache treats traces exactly like every other experiment.

// TraceSpec declares one trace simulation; see the
// internal/sched/tracesim package documentation.
type TraceSpec = tracesim.Spec

// TraceJob is one inline trace entry.
type TraceJob = tracesim.JobSpec

// TraceSynthetic is the seeded synthetic trace generator.
type TraceSynthetic = tracesim.Synthetic

// TraceEvent is one simulator occurrence (job start/finish), streamed
// in simulation-time order.
type TraceEvent = tracesim.Event

// TraceOutcome is the typed result of one trace simulation; it is the
// Data payload of RunTrace's Result.
type TraceOutcome = tracesim.Result

// TraceGrid declares a parameter grid over a base trace.
type TraceGrid = tracesim.Grid

// TracePoint is one executed trace-grid point (streamed to
// RunTraceGrid's onPoint callback and listed in TraceGridData.Points).
type TracePoint = tracesim.PointResult

// TraceGridData is the typed result of a trace grid; it is the Data
// payload of RunTraceGrid's Result.
type TraceGridData = tracesim.GridResult

// RunTrace executes one trace-driven scheduling simulation and
// returns a Result shaped exactly like a registry run: the
// synthesized descriptor, the rendered metric table, and the typed
// TraceOutcome in Data. onEvent (optional) receives every job
// start/finish in simulation-time order; per-job progress flows
// through the Runner's WithProgress callback (Done counts finished
// jobs). Output is byte-deterministic for a given spec — synthetic
// traces derive from the spec's seed — so Result encodings may be
// cached and coalesced by Experiment.ID.
func (r *Runner) RunTrace(ctx context.Context, spec TraceSpec, onEvent func(TraceEvent)) (*Result, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	exp := Experiment{
		ID:    norm.ID(),
		Title: norm.Title(),
		Kind:  KindTable,
		Cost:  Cost(norm.Cost()),
	}
	token := fmt.Sprintf("%s#%d", exp.ID, runSeq.Add(1))
	opts := tracesim.Options{OnEvent: onEvent}
	if r.progress != nil {
		fn := r.progress
		opts.OnProgress = func(done, total int) {
			r.progressMu.Lock()
			defer r.progressMu.Unlock()
			fn(Progress{Experiment: exp.ID, Run: token, Done: done, Total: total})
		}
	}
	start := time.Now()
	out, err := tracesim.Run(ctx, norm, opts)
	if err != nil {
		return nil, err
	}
	return &Result{
		Experiment: exp,
		Table:      out.Table(),
		Data:       out,
		Meta: RunMeta{
			Run:     token,
			Workers: 1, // the event loop is sequential; the pool is for grids
			Elapsed: time.Since(start),
		},
	}, nil
}

// RunTraceGrid expands the grid and executes its points on the
// Runner's worker pool. onPoint (optional) receives every completed
// point in completion order; per-point progress flows through the
// Runner's WithProgress callback. Point failures are isolated into
// TracePoint.Err — only context cancellation or an invalid grid fail
// the run. The Result is byte-deterministic for a given grid
// regardless of worker count.
func (r *Runner) RunTraceGrid(ctx context.Context, grid TraceGrid, onPoint func(TracePoint)) (*Result, error) {
	points, err := grid.Expand()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	exp := Experiment{
		ID:    tracesim.GridID(grid.Name, points),
		Title: grid.Title(),
		Kind:  KindTable,
		Cost:  Cost(tracesim.GridCost(points)),
	}
	token := fmt.Sprintf("%s#%d", exp.ID, runSeq.Add(1))
	opts := tracesim.GridOptions{Workers: r.workers, OnPoint: onPoint, RunPoint: r.traceRun}
	if r.progress != nil {
		fn := r.progress
		opts.OnProgress = func(done, total int) {
			r.progressMu.Lock()
			defer r.progressMu.Unlock()
			fn(Progress{Experiment: exp.ID, Run: token, Done: done, Total: total})
		}
	}
	start := time.Now()
	res, err := tracesim.RunGrid(ctx, grid, points, opts)
	if err != nil {
		return nil, err
	}
	return &Result{
		Experiment: exp,
		Table:      res.Table(exp.Title),
		Data:       res,
		Meta: RunMeta{
			Run:     token,
			Workers: experiments.Config{Workers: r.workers}.ResolvedWorkers(),
			Elapsed: time.Since(start),
		},
	}, nil
}
