package netpart

import (
	"context"
	"sort"

	"netpart/internal/experiments"
	"netpart/internal/tabulate"
)

// Kind classifies an experiment artifact by how the paper presents it.
type Kind string

const (
	// KindTable artifacts render as a single table.
	KindTable Kind = "table"
	// KindFigure artifacts carry series data and render as both a
	// table and a chart.
	KindFigure Kind = "figure"
)

// Cost classifies an experiment's expected runtime, so callers can
// schedule heavy artifacts (flow-level simulations) differently from
// closed-form ones.
type Cost string

const (
	// CostCheap experiments evaluate closed forms or fixed parameter
	// lists: microseconds to milliseconds.
	CostCheap Cost = "cheap"
	// CostModerate experiments enumerate partition geometries or run
	// the CAPS cost model: milliseconds once the bisection cache is
	// warm, longer on first contact.
	CostModerate Cost = "moderate"
	// CostHeavy experiments run the flow-level network simulator at
	// full machine scale: seconds.
	CostHeavy Cost = "heavy"
)

// artifact is what one experiment run produces before it is wrapped
// into a Result: the rendered table, the chart for figures, and the
// typed figure data when there is one.
type artifact struct {
	table tabulate.Table
	chart *tabulate.Chart
	data  any
}

// Experiment describes one registered artifact of the paper's
// evaluation. The ID is stable across releases ("table6", "figure3")
// and is the handle Runner.Run accepts; Title is the human name
// without the paper numbering.
type Experiment struct {
	ID    string
	Title string
	Kind  Kind
	Cost  Cost

	// usesFullRounds marks generators that consult Config.FullRounds
	// (the flow-level pairing simulations); for every other experiment
	// the option cannot change the result and Normalize clears it.
	usesFullRounds bool

	run func(ctx context.Context, cfg experiments.Config) (artifact, error)
}

// tableExp registers a table-producing generator.
func tableExp(id, title string, cost Cost,
	gen func(experiments.Config, context.Context) (tabulate.Table, error)) Experiment {
	return Experiment{ID: id, Title: title, Kind: KindTable, Cost: cost,
		run: func(ctx context.Context, cfg experiments.Config) (artifact, error) {
			t, err := gen(cfg, ctx)
			return artifact{table: t}, err
		}}
}

// pairing marks an experiment whose generator consults
// Config.FullRounds (see Experiment.usesFullRounds).
func pairing(e Experiment) Experiment {
	e.usesFullRounds = true
	return e
}

// figureExp registers a figure-producing generator through an adapter
// that extracts the rendered table and chart.
func figureExp[F any](id, title string, cost Cost,
	gen func(experiments.Config, context.Context) (F, error),
	table func(F) tabulate.Table, chart func(F) tabulate.Chart) Experiment {
	return Experiment{ID: id, Title: title, Kind: KindFigure, Cost: cost,
		run: func(ctx context.Context, cfg experiments.Config) (artifact, error) {
			f, err := gen(cfg, ctx)
			if err != nil {
				return artifact{}, err
			}
			ch := chart(f)
			return artifact{table: table(f), chart: &ch, data: f}, nil
		}}
}

// registry enumerates all 14 artifacts of the paper's evaluation in
// presentation order. IDs are stable API: new artifacts may be added,
// but existing IDs never change meaning (TestRegistryStable pins them).
var registry = []Experiment{
	tableExp("table1", "Mira partitions with improved geometries", CostModerate, experiments.Config.Table1),
	tableExp("table2", "JUQUEEN best vs worst partitions (differing rows)", CostModerate, experiments.Config.Table2),
	tableExp("table3", "Matrix multiplication experiment parameters", CostCheap, experiments.Config.Table3),
	tableExp("table4", "Strong scaling experiment parameters", CostCheap, experiments.Config.Table4),
	tableExp("table5", "Best-case partitions, JUQUEEN vs hypothetical machines", CostModerate, experiments.Config.Table5),
	tableExp("table6", "Mira current and proposed partitions (full list)", CostModerate, experiments.Config.Table6),
	tableExp("table7", "JUQUEEN allocation best and worst cases (full list)", CostModerate, experiments.Config.Table7),
	figureExp("figure1", "Mira normalized bisection bandwidth", CostModerate,
		experiments.Config.Figure1, BWFigure.Table, BWFigure.Chart),
	figureExp("figure2", "JUQUEEN best/worst normalized bisection bandwidth", CostModerate,
		experiments.Config.Figure2, BWFigure.Table, BWFigure.Chart),
	pairing(figureExp("figure3", "Mira bisection pairing (flow-level simulation)", CostHeavy,
		experiments.Config.Figure3, PairingFigure.Table, PairingFigure.Chart)),
	pairing(figureExp("figure4", "JUQUEEN bisection pairing (flow-level simulation)", CostHeavy,
		experiments.Config.Figure4, PairingFigure.Table, PairingFigure.Chart)),
	figureExp("figure5", "Mira matrix multiplication communication time", CostModerate,
		experiments.Config.Figure5, MatmulFigure.Table, MatmulFigure.Chart),
	figureExp("figure6", "Mira strong scaling (n=9408)", CostCheap,
		experiments.Config.Figure6, MatmulFigure.Table, MatmulFigure.Chart),
	figureExp("figure7", "JUQUEEN vs hypothetical machines (best-case BW)", CostModerate,
		experiments.Config.Figure7, BWFigure.Table, BWFigure.Chart),
}

// Registry returns descriptors for every registered experiment, in
// presentation order (tables 1-7, then figures 1-7). The returned
// slice is a copy; mutating it does not affect the registry.
func Registry() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Lookup returns the experiment registered under the given stable ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns every registered experiment ID, sorted.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}
