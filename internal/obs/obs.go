// Package obs is the zero-dependency observability layer: a
// concurrency-safe metrics registry (counters, gauges, histograms
// with log-scale latency buckets) with deterministic exposition
// order, Prometheus text exposition, a JSON snapshot for healthz
// documents, and request-ID plumbing for cross-node tracing.
//
// The registry mirrors the shape of the Prometheus client without the
// dependency: a metric family is created once (get-or-create by name)
// and holds one series per label-value tuple. Families expose in
// registration order; series within a family expose in sorted
// label order — both deterministic, so exposition output is stable
// for golden tests regardless of update concurrency.
//
// All series updates are lock-free atomics; a scrape never blocks an
// update and vice versa. Mis-registration (same name with a different
// type, help text or label keys) panics: metric identity is a
// programming invariant, not a runtime condition.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric family types.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// LatencyBuckets are the fixed log-scale (1-2.5-5 per decade) latency
// histogram bounds in seconds, 100µs through 100s. Every latency
// histogram in the system shares them, so cross-metric comparisons
// line up bucket for bucket.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
	10, 25, 50, 100,
}

// Registry is a set of metric families. The zero value is not usable;
// construct with New. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// family is one named metric family: a type, help text, fixed label
// keys, and one series per label-value tuple.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string  // label keys, fixed at family creation
	buckets []float64 // histogram upper bounds (histograms only)

	mu     sync.Mutex
	series map[string]any // label signature → *Counter/*Gauge/*Histogram/funcSeries
}

// family returns the named family, creating it on first use and
// panicking on a redefinition with different identity.
func (r *Registry) family(name, help, typ string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %q redefined: %s%v vs %s%v", name, f.typ, f.labels, typ, labels))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, buckets: buckets, series: map[string]any{}}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// signature joins label values into the series key. Label values are
// free-form strings; \xff never appears in ours (endpoints, cost
// classes, URLs, event kinds).
func signature(values []string) string { return strings.Join(values, "\xff") }

// get returns the series for the label values, creating it with make
// on first use.
func (f *family) get(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	sig := signature(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[sig]; ok {
		return s
	}
	s := make()
	f.series[sig] = s
	return s
}

// --- counters ---

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; this is not checked on the hot
// path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter returns the single unlabeled counter with this name.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, typeCounter, nil, nil)
	return f.get(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the counter family with the given label keys.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, typeCounter, labels, nil)}
}

// With returns the counter for the label values (created on first
// use).
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() any { return &Counter{} }).(*Counter)
}

// CounterFunc registers a counter whose value is sampled at scrape
// time — the bridge for pre-existing process-wide counters (memo hit
// counts, store stats) that should expose without double bookkeeping.
// labelPairs alternate key, value.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelPairs ...string) {
	registerFunc(r, name, help, typeCounter, fn, labelPairs)
}

// --- gauges ---

// Gauge is an arbitrary float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add adds d (negative to subtract).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }

// Gauge returns the single unlabeled gauge with this name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, typeGauge, nil, nil)
	return f.get(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the gauge family with the given label keys.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, typeGauge, labels, nil)}
}

// With returns the gauge for the label values (created on first use).
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge sampled at scrape time. labelPairs
// alternate key, value; series with the same name must agree on keys.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	registerFunc(r, name, help, typeGauge, fn, labelPairs)
}

// funcSeries is a scrape-time-sampled series (CounterFunc/GaugeFunc).
type funcSeries struct {
	fn func() float64
}

func registerFunc(r *Registry, name, help, typ string, fn func() float64, labelPairs []string) {
	if len(labelPairs)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %q: odd label pairs", name))
	}
	keys := make([]string, 0, len(labelPairs)/2)
	values := make([]string, 0, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		keys = append(keys, labelPairs[i])
		values = append(values, labelPairs[i+1])
	}
	f := r.family(name, help, typ, keys, nil)
	f.get(values, func() any { return &funcSeries{fn: fn} })
}

// --- histograms ---

// Histogram counts observations into fixed buckets. Updates are
// atomic per bucket; a scrape may observe a histogram mid-update
// (count and sum can momentarily disagree by one observation), which
// is the standard exposition trade-off for lock-free hot paths.
type Histogram struct {
	bounds []float64      // upper bounds, ascending
	counts []atomic.Int64 // one per bound, plus the +Inf overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return bitsFloat(h.sum.Load()) }

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Histogram returns the single unlabeled histogram with this name.
// Buckets are fixed at family creation (LatencyBuckets when nil).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = LatencyBuckets
	}
	f := r.family(name, help, typeHistogram, nil, buckets)
	return f.get(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the histogram family with the given label
// keys. Buckets are fixed at family creation (LatencyBuckets when
// nil).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = LatencyBuckets
	}
	return &HistogramVec{r.family(name, help, typeHistogram, labels, buckets)}
}

// With returns the histogram for the label values (created on first
// use).
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// --- float bit helpers ---

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// sortedSignatures returns the family's series signatures in sorted
// order — the deterministic exposition order within a family.
func (f *family) sortedSignatures() []string {
	f.mu.Lock()
	sigs := make([]string, 0, len(f.series))
	for sig := range f.series {
		sigs = append(sigs, sig)
	}
	f.mu.Unlock()
	sort.Strings(sigs)
	return sigs
}

// snapshotFamilies returns the families in registration order.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*family(nil), r.families...)
}
