package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes the registry in the Prometheus text
// exposition format: families in registration order, series within a
// family in sorted label order — deterministic output for a given set
// of registered series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		sigs := f.sortedSignatures()
		if len(sigs) == 0 {
			continue
		}
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.help)
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		for _, sig := range sigs {
			f.mu.Lock()
			s := f.series[sig]
			f.mu.Unlock()
			f.writeSeries(bw, sig, s)
		}
	}
	return bw.Flush()
}

// writeSeries renders one series (one line for counters and gauges,
// the bucket/sum/count block for histograms).
func (f *family) writeSeries(bw *bufio.Writer, sig string, s any) {
	labels := labelString(f.labels, sig)
	switch v := s.(type) {
	case *Counter:
		writeSample(bw, f.name, labels, "", strconv.FormatInt(v.Value(), 10))
	case *Gauge:
		writeSample(bw, f.name, labels, "", formatFloat(v.Value()))
	case *funcSeries:
		writeSample(bw, f.name, labels, "", formatFloat(v.fn()))
	case *Histogram:
		var cum int64
		for i, bound := range v.bounds {
			cum += v.counts[i].Load()
			writeSample(bw, f.name+"_bucket", labels, `le="`+formatFloat(bound)+`"`, strconv.FormatInt(cum, 10))
		}
		cum += v.counts[len(v.bounds)].Load()
		writeSample(bw, f.name+"_bucket", labels, `le="+Inf"`, strconv.FormatInt(cum, 10))
		writeSample(bw, f.name+"_sum", labels, "", formatFloat(v.Sum()))
		writeSample(bw, f.name+"_count", labels, "", strconv.FormatInt(v.Count(), 10))
	}
}

// writeSample writes one exposition line, merging the series labels
// with an optional extra label (the histogram le).
func writeSample(bw *bufio.Writer, name, labels, extra, value string) {
	bw.WriteString(name)
	if labels != "" || extra != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		if labels != "" && extra != "" {
			bw.WriteByte(',')
		}
		bw.WriteString(extra)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// labelString renders `k1="v1",k2="v2"` from the family's label keys
// and a series signature.
func labelString(keys []string, sig string) string {
	if len(keys) == 0 {
		return ""
	}
	values := strings.Split(sig, "\xff")
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// --- JSON snapshot (the healthz form) ---

// SeriesSnapshot is one series in a registry snapshot. Counters and
// gauges carry Value; histograms carry Count and Sum (bucket detail
// stays on the Prometheus endpoint, where it is cheap to parse).
type SeriesSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	Count  int64             `json:"count,omitempty"`
	Sum    float64           `json:"sum,omitempty"`
}

// FamilySnapshot is one metric family in a registry snapshot.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot returns the registry as a JSON-encodable document, in the
// same deterministic order as the Prometheus exposition.
func (r *Registry) Snapshot() []FamilySnapshot {
	var out []FamilySnapshot
	for _, f := range r.snapshotFamilies() {
		sigs := f.sortedSignatures()
		if len(sigs) == 0 {
			continue
		}
		fs := FamilySnapshot{Name: f.name, Type: f.typ}
		for _, sig := range sigs {
			f.mu.Lock()
			s := f.series[sig]
			f.mu.Unlock()
			ss := SeriesSnapshot{Labels: labelMap(f.labels, sig)}
			switch v := s.(type) {
			case *Counter:
				ss.Value = float64(v.Value())
			case *Gauge:
				ss.Value = v.Value()
			case *funcSeries:
				ss.Value = v.fn()
			case *Histogram:
				ss.Count = v.Count()
				ss.Sum = v.Sum()
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

func labelMap(keys []string, sig string) map[string]string {
	if len(keys) == 0 {
		return nil
	}
	values := strings.Split(sig, "\xff")
	m := make(map[string]string, len(keys))
	for i, k := range keys {
		m[k] = values[i]
	}
	return m
}
