package obs

import (
	"bytes"
	"context"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the deterministic exposition order:
// families in registration order, series within a family sorted by
// label values, histograms as cumulative buckets + sum + count.
func TestExpositionGolden(t *testing.T) {
	r := New()
	reqs := r.CounterVec("test_requests_total", "Requests by endpoint.", "endpoint", "code")
	// Registration order of series must not matter: create them out of
	// sorted order.
	reqs.With("/v1/b", "500").Add(2)
	reqs.With("/v1/a", "200").Add(7)
	reqs.With("/v1/a", "404").Inc()
	r.Gauge("test_inflight", "In-flight requests.").Set(3)
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(100)
	r.GaugeFunc("test_sampled", "Scrape-time sampled.", func() float64 { return 42 }, "kind", "func")

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP test_requests_total Requests by endpoint.
# TYPE test_requests_total counter
test_requests_total{endpoint="/v1/a",code="200"} 7
test_requests_total{endpoint="/v1/a",code="404"} 1
test_requests_total{endpoint="/v1/b",code="500"} 2
# HELP test_inflight In-flight requests.
# TYPE test_inflight gauge
test_inflight 3
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="10"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 101.05
test_latency_seconds_count 4
# HELP test_sampled Scrape-time sampled.
# TYPE test_sampled gauge
test_sampled{kind="func"} 42
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// A second scrape is byte-identical (no hidden state mutation).
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != buf.String() {
		t.Error("second scrape differs from first")
	}
}

// TestConcurrentUpdatesDuringScrape hammers counters, gauges and
// histograms from many goroutines while scraping — the -race coverage
// for the lock-free update paths.
func TestConcurrentUpdatesDuringScrape(t *testing.T) {
	r := New()
	c := r.Counter("hot_counter_total", "c")
	cv := r.CounterVec("hot_labeled_total", "c", "worker")
	g := r.Gauge("hot_gauge", "g")
	h := r.Histogram("hot_hist_seconds", "h", nil)
	hv := r.HistogramVec("hot_hist_labeled_seconds", "h", []float64{0.01, 0.1, 1}, "class")

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				cv.With(name).Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i) * 1e-4)
				hv.With(name).Observe(0.05)
			}
		}(w)
	}
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-scrapeDone

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	for w := 0; w < workers; w++ {
		if got := cv.With(string(rune('a' + w))).Value(); got != perWorker {
			t.Errorf("labeled counter %d = %d, want %d", w, got, perWorker)
		}
	}
}

// TestGetOrCreate: the same name yields the same metric; a
// redefinition with different identity panics.
func TestGetOrCreate(t *testing.T) {
	r := New()
	a := r.Counter("once_total", "help")
	b := r.Counter("once_total", "help")
	if a != b {
		t.Error("same name returned distinct counters")
	}
	v1 := r.CounterVec("vec_total", "help", "k")
	if v1.With("x") != v1.With("x") {
		t.Error("same labels returned distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Error("redefinition with different type did not panic")
		}
	}()
	r.Gauge("once_total", "help")
}

// TestHistogramSum checks the CAS float accumulation.
func TestHistogramSum(t *testing.T) {
	r := New()
	h := r.Histogram("sum_seconds", "h", []float64{1})
	h.Observe(0.25)
	h.Observe(0.5)
	if got := h.Sum(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("sum = %v, want 0.75", got)
	}
}

// TestSnapshotJSONShape checks the healthz snapshot form.
func TestSnapshotJSONShape(t *testing.T) {
	r := New()
	r.CounterVec("snap_total", "c", "k").With("v").Add(5)
	h := r.Histogram("snap_seconds", "h", nil)
	h.Observe(2)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("families = %d, want 2", len(snap))
	}
	if snap[0].Name != "snap_total" || snap[0].Series[0].Value != 5 || snap[0].Series[0].Labels["k"] != "v" {
		t.Errorf("counter snapshot wrong: %+v", snap[0])
	}
	if snap[1].Series[0].Count != 1 || snap[1].Series[0].Sum != 2 {
		t.Errorf("histogram snapshot wrong: %+v", snap[1])
	}
}

// TestRequestIDs covers generation uniqueness, validation, and the
// context round trip.
func TestRequestIDs(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b || a == "" {
		t.Errorf("ids not unique: %q %q", a, b)
	}
	if !ValidRequestID(a) {
		t.Errorf("generated id %q not valid", a)
	}
	for _, bad := range []string{"", strings.Repeat("x", 200), "has\nnewline", "ctrl\x01char"} {
		if ValidRequestID(bad) {
			t.Errorf("ValidRequestID(%q) = true", bad)
		}
	}
	ctx := WithRequestID(context.Background(), a)
	if got := RequestIDFrom(ctx); got != a {
		t.Errorf("round trip = %q, want %q", got, a)
	}
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Errorf("empty ctx id = %q", got)
	}
}
