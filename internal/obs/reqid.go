package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync/atomic"
)

// Request tracing: every request entering the daemon gets an
// X-Netpart-Request-Id (client-supplied and honored, or generated),
// carried in the request context, echoed on the response, attached to
// log lines, and propagated on coordinator→peer dispatch — so one
// sweep's work units correlate across a fleet by grepping one ID.

// RequestIDHeader is the HTTP header carrying the request ID.
const RequestIDHeader = "X-Netpart-Request-Id"

// maxRequestIDLen bounds an honored client-supplied ID; longer values
// are replaced (an ID is a correlation token, not a payload channel).
const maxRequestIDLen = 128

// idPrefix is a per-process random prefix, so IDs from different
// daemons in a fleet never collide; idSeq disambiguates within the
// process.
var (
	idPrefix string
	idSeq    atomic.Uint64
)

func init() {
	var b [4]byte
	rand.Read(b[:]) //nolint:errcheck // crypto/rand never fails post-Go 1.24
	idPrefix = hex.EncodeToString(b[:])
}

// NewRequestID returns a fresh process-unique request ID.
func NewRequestID() string {
	return idPrefix + "-" + strconv.FormatUint(idSeq.Add(1), 16)
}

// ValidRequestID reports whether a client-supplied ID is safe to
// honor: non-empty, bounded, and free of control characters (it ends
// up in headers and log lines).
func ValidRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] < 0x20 || id[i] == 0x7f {
			return false
		}
	}
	return true
}

type reqIDKey struct{}

// WithRequestID returns ctx carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}
