// Package torus models D-dimensional torus graphs with arbitrary
// dimension lengths, the network topology underlying the IBM Blue Gene/Q
// systems analyzed in Oltchik & Schwartz, "Network Partitioning and
// Avoidable Contention" (SPAA 2020).
//
// A D-torus with shape [a1, ..., aD] has vertex set
// [a1] x ... x [aD]; vertices u, v are adjacent iff they differ by ±1
// (mod a_k) in exactly one coordinate k. Dimensions of length 1
// contribute no edges and dimensions of length 2 contribute a single
// edge per vertex pair (the +1 and -1 neighbours coincide), following
// the simple-graph convention of Bollobás & Leader and Harper.
//
// The package provides exact edge counting for cuboid subsets (closed
// form and brute force), shape canonicalization, and enumeration of the
// cuboid geometries that fit inside a host torus — the combinatorial
// substrate for the isoperimetric analysis in package iso and the
// machine models in package bgq.
package torus

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Shape is the list of dimension lengths of a torus or cuboid. A Shape
// is valid if every entry is at least 1.
type Shape []int

// ParseShape parses a shape written as "AxBxC..." (case-insensitive
// 'x'), e.g. "16x16x12x8x2".
func ParseShape(s string) (Shape, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("torus: empty shape")
	}
	parts := strings.Split(strings.ToLower(strings.TrimSpace(s)), "x")
	sh := make(Shape, 0, len(parts))
	for _, p := range parts {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &v); err != nil {
			return nil, fmt.Errorf("torus: bad shape component %q: %v", p, err)
		}
		if v < 1 {
			return nil, fmt.Errorf("torus: shape component %d < 1", v)
		}
		sh = append(sh, v)
	}
	return sh, nil
}

// String renders the shape as "a1xa2x...".
func (s Shape) String() string {
	if len(s) == 0 {
		return "<empty>"
	}
	var b strings.Builder
	for i, v := range s {
		if i > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// Validate reports whether every dimension length is at least 1.
func (s Shape) Validate() error {
	if len(s) == 0 {
		return errors.New("torus: shape has no dimensions")
	}
	for i, v := range s {
		if v < 1 {
			return fmt.Errorf("torus: dimension %d has length %d < 1", i, v)
		}
	}
	return nil
}

// Volume returns the product of the dimension lengths.
func (s Shape) Volume() int {
	v := 1
	for _, d := range s {
		v *= d
	}
	return v
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Canonical returns a copy of the shape with dimensions sorted in
// descending order. The paper always presents geometries in sorted
// order, treating rotations of a partition as identical.
func (s Shape) Canonical() Shape {
	c := s.Clone()
	sort.Sort(sort.Reverse(sort.IntSlice(c)))
	return c
}

// Equal reports whether two shapes are identical component-wise.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// EqualCanonical reports whether two shapes are identical up to
// reordering of dimensions (i.e. they are rotations of each other).
func (s Shape) EqualCanonical(o Shape) bool {
	return s.Canonical().Equal(o.Canonical())
}

// FitsIn reports whether a cuboid of this shape can be placed inside a
// host torus of shape host, allowing any assignment of cuboid
// dimensions to host dimensions. Shapes of different rank are compared
// by implicitly padding the shorter with 1s. With both sides sorted
// descending, a feasible assignment exists iff the i-th largest cuboid
// dimension fits in the i-th largest host dimension (an exchange
// argument: any feasible matching can be rearranged into the sorted
// one).
func (s Shape) FitsIn(host Shape) bool {
	a := s.Canonical()
	b := host.Canonical()
	for len(a) < len(b) {
		a = append(a, 1)
	}
	if len(a) > len(b) {
		// Extra dimensions must be trivial.
		for _, v := range a[len(b):] {
			if v != 1 {
				return false
			}
		}
		a = a[:len(b)]
	}
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

// LongestDim returns the maximum dimension length.
func (s Shape) LongestDim() int {
	m := 0
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}

// Scale returns a copy of the shape with every dimension multiplied by f.
func (s Shape) Scale(f int) Shape {
	c := s.Clone()
	for i := range c {
		c[i] *= f
	}
	return c
}

// Append returns a new shape with extra dimensions appended.
func (s Shape) Append(dims ...int) Shape {
	c := make(Shape, 0, len(s)+len(dims))
	c = append(c, s...)
	c = append(c, dims...)
	return c
}

// Torus is a D-dimensional torus graph. The zero value is not usable;
// construct with New.
type Torus struct {
	dims    Shape
	strides []int // strides[i] = product of dims[i+1:], for linear indexing
	n       int   // number of vertices
	degree  int   // vertex degree (the graph is regular)
}

// New constructs a torus with the given dimension lengths.
func New(dims ...int) (*Torus, error) {
	sh := Shape(dims)
	if err := sh.Validate(); err != nil {
		return nil, err
	}
	t := &Torus{dims: sh.Clone()}
	t.strides = make([]int, len(dims))
	stride := 1
	for i := len(dims) - 1; i >= 0; i-- {
		t.strides[i] = stride
		stride *= dims[i]
	}
	t.n = stride
	for _, a := range dims {
		t.degree += dimDegree(a)
	}
	return t, nil
}

// MustNew is New, panicking on invalid shapes. Intended for package
// initialization of well-known machines and for tests.
func MustNew(dims ...int) *Torus {
	t, err := New(dims...)
	if err != nil {
		panic(err)
	}
	return t
}

// dimDegree is the number of neighbours a vertex has along a ring of
// length a under the simple-graph convention.
func dimDegree(a int) int {
	switch {
	case a <= 1:
		return 0
	case a == 2:
		return 1
	default:
		return 2
	}
}

// Dims returns (a copy of) the torus shape.
func (t *Torus) Dims() Shape { return t.dims.Clone() }

// Rank returns the number of dimensions D.
func (t *Torus) Rank() int { return len(t.dims) }

// NumVertices returns |V|.
func (t *Torus) NumVertices() int { return t.n }

// Degree returns the (uniform) vertex degree: the torus is k-regular
// with k = sum over dimensions of 0, 1 or 2 for lengths 1, 2, >=3.
func (t *Torus) Degree() int { return t.degree }

// NumEdges returns |E| = k|V|/2.
func (t *Torus) NumEdges() int { return t.degree * t.n / 2 }

// String describes the torus.
func (t *Torus) String() string {
	return fmt.Sprintf("torus %s (%d vertices, %d edges)", t.dims, t.n, t.NumEdges())
}

// Coord is a vertex coordinate vector.
type Coord []int

// Clone returns a copy of the coordinate.
func (c Coord) Clone() Coord {
	out := make(Coord, len(c))
	copy(out, c)
	return out
}

// Index converts a coordinate to a linear vertex index (row-major,
// first dimension slowest).
func (t *Torus) Index(c Coord) int {
	if len(c) != len(t.dims) {
		panic(fmt.Sprintf("torus: coordinate rank %d != torus rank %d", len(c), len(t.dims)))
	}
	idx := 0
	for i, v := range c {
		if v < 0 || v >= t.dims[i] {
			panic(fmt.Sprintf("torus: coordinate %v out of range for %s", c, t.dims))
		}
		idx += v * t.strides[i]
	}
	return idx
}

// CoordOf converts a linear vertex index to coordinates, writing into
// dst if it has the right length (to avoid allocation in hot loops).
func (t *Torus) CoordOf(idx int, dst Coord) Coord {
	if idx < 0 || idx >= t.n {
		panic(fmt.Sprintf("torus: vertex %d out of range [0,%d)", idx, t.n))
	}
	if len(dst) != len(t.dims) {
		dst = make(Coord, len(t.dims))
	}
	for i := range t.dims {
		dst[i] = idx / t.strides[i] % t.dims[i]
	}
	return dst
}

// Neighbors appends the linear indices of the neighbours of vertex idx
// to dst and returns the extended slice.
func (t *Torus) Neighbors(idx int, dst []int) []int {
	c := t.CoordOf(idx, make(Coord, len(t.dims)))
	for i, a := range t.dims {
		switch {
		case a <= 1:
			// no neighbour in this dimension
		case a == 2:
			dst = append(dst, idx+(1-2*c[i])*t.strides[i])
		default:
			up := c[i] + 1
			if up == a {
				up = 0
			}
			down := c[i] - 1
			if down < 0 {
				down = a - 1
			}
			dst = append(dst, idx+(up-c[i])*t.strides[i], idx+(down-c[i])*t.strides[i])
		}
	}
	return dst
}

// HasEdge reports whether vertices u and v are adjacent.
func (t *Torus) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	cu := t.CoordOf(u, nil)
	cv := t.CoordOf(v, nil)
	diffDim := -1
	for i := range cu {
		if cu[i] != cv[i] {
			if diffDim >= 0 {
				return false
			}
			diffDim = i
		}
	}
	if diffDim < 0 {
		return false
	}
	a := t.dims[diffDim]
	d := cu[diffDim] - cv[diffDim]
	if d < 0 {
		d = -d
	}
	return d == 1 || d == a-1
}

// ForEachVertex calls fn for every vertex index.
func (t *Torus) ForEachVertex(fn func(idx int)) {
	for i := 0; i < t.n; i++ {
		fn(i)
	}
}

// ForEachEdge calls fn once per undirected edge (u < v is not
// guaranteed; each edge is reported exactly once as (u, v) with u the
// smaller endpoint).
func (t *Torus) ForEachEdge(fn func(u, v int)) {
	nbuf := make([]int, 0, t.degree)
	for u := 0; u < t.n; u++ {
		nbuf = t.Neighbors(u, nbuf[:0])
		for _, v := range nbuf {
			if u < v {
				fn(u, v)
			}
		}
	}
}

// PerimeterOf returns |E(A, A-complement)| for an arbitrary vertex set,
// by direct neighbour inspection. This is the brute-force oracle used
// to validate the closed forms; it is O(|A| * degree).
func (t *Torus) PerimeterOf(set map[int]bool) int {
	per := 0
	nbuf := make([]int, 0, t.degree)
	for u := range set {
		nbuf = t.Neighbors(u, nbuf[:0])
		for _, v := range nbuf {
			if !set[v] {
				per++
			}
		}
	}
	return per
}

// InteriorOf returns |E(A, A)| (edges with both endpoints in the set)
// for an arbitrary vertex set by direct inspection.
func (t *Torus) InteriorOf(set map[int]bool) int {
	in := 0
	nbuf := make([]int, 0, t.degree)
	for u := range set {
		nbuf = t.Neighbors(u, nbuf[:0])
		for _, v := range nbuf {
			if set[v] {
				in++
			}
		}
	}
	return in / 2
}
