package torus

import (
	"fmt"
)

// Cuboid is an axis-aligned box of vertices inside a torus: the
// Cartesian product over dimensions of the cyclic interval
// [Origin[i], Origin[i]+Lens[i]) mod a_i. Cuboids are the partition
// shapes supported by Blue Gene/Q allocation (Cartesian products of
// chains and cycles, paper §2).
type Cuboid struct {
	Origin Coord
	Lens   Shape
}

// NewCuboid builds a cuboid at the given origin. A nil origin means
// the all-zeros origin.
func NewCuboid(origin Coord, lens Shape) Cuboid {
	if origin == nil {
		origin = make(Coord, len(lens))
	}
	return Cuboid{Origin: origin, Lens: lens.Clone()}
}

// Volume returns the number of vertices in the cuboid.
func (c Cuboid) Volume() int { return c.Lens.Volume() }

// String renders the cuboid.
func (c Cuboid) String() string {
	return fmt.Sprintf("cuboid %s @ %v", c.Lens, []int(c.Origin))
}

// validateFor panics unless the cuboid is well-formed for torus t.
func (c Cuboid) validateFor(t *Torus) {
	if len(c.Lens) != len(t.dims) {
		panic(fmt.Sprintf("torus: cuboid rank %d != torus rank %d", len(c.Lens), len(t.dims)))
	}
	for i, l := range c.Lens {
		if l < 1 || l > t.dims[i] {
			panic(fmt.Sprintf("torus: cuboid length %d out of range (0, %d] in dimension %d", l, t.dims[i], i))
		}
		if len(c.Origin) == len(c.Lens) {
			if c.Origin[i] < 0 || c.Origin[i] >= t.dims[i] {
				panic(fmt.Sprintf("torus: cuboid origin %v out of range for %s", c.Origin, t.dims))
			}
		}
	}
}

// Contains reports whether vertex idx lies inside the cuboid.
func (t *Torus) Contains(c Cuboid, idx int) bool {
	c.validateFor(t)
	co := t.CoordOf(idx, nil)
	for i := range co {
		rel := co[i] - originAt(c, i)
		if rel < 0 {
			rel += t.dims[i]
		}
		if rel >= c.Lens[i] {
			return false
		}
	}
	return true
}

func originAt(c Cuboid, i int) int {
	if len(c.Origin) == len(c.Lens) {
		return c.Origin[i]
	}
	return 0
}

// CuboidVertices returns the set of vertex indices inside the cuboid.
func (t *Torus) CuboidVertices(c Cuboid) map[int]bool {
	c.validateFor(t)
	set := make(map[int]bool, c.Volume())
	coord := make(Coord, len(c.Lens))
	var rec func(dim int)
	rec = func(dim int) {
		if dim == len(c.Lens) {
			set[t.Index(coord)] = true
			return
		}
		for off := 0; off < c.Lens[dim]; off++ {
			coord[dim] = (originAt(c, dim) + off) % t.dims[dim]
			rec(dim + 1)
		}
	}
	rec(0)
	return set
}

// CuboidPerimeter returns |E(S, S-complement)| for the cuboid in closed
// form. Along dimension i with torus length a and cuboid length s:
//
//   - s == a: the cuboid wraps the whole ring, no boundary edges;
//   - a == 2 (so s == 1): one boundary edge per cross-section vertex
//     (the +1 and -1 neighbours coincide in a simple graph);
//   - otherwise: two boundary faces, each with volume/s vertices, each
//     vertex contributing one edge.
//
// This matches the counting argument in the proof of Lemma 3.2 of the
// paper and is validated against PerimeterOf by the tests.
func (t *Torus) CuboidPerimeter(c Cuboid) int {
	c.validateFor(t)
	vol := c.Volume()
	per := 0
	for i, s := range c.Lens {
		a := t.dims[i]
		switch {
		case s == a:
			// no boundary in a fully covered dimension
		case a == 2:
			per += vol / s // s == 1, single edge per column
		default:
			per += 2 * vol / s
		}
	}
	return per
}

// CuboidInterior returns |E(S, S)| for the cuboid in closed form, using
// the regularity identity k|S| = 2|E(S,S)| + |E(S, S-complement)|
// restricted per dimension: within dimension i the induced subgraph on
// a cyclic interval of length s in a ring of length a is a path
// (s < a), a full ring (s == a >= 3), a single edge (s == a == 2), or
// empty (s == 1).
func (t *Torus) CuboidInterior(c Cuboid) int {
	c.validateFor(t)
	vol := c.Volume()
	in := 0
	for i, s := range c.Lens {
		a := t.dims[i]
		cols := vol / s
		switch {
		case s == 1:
			// no internal edges in this dimension
		case s < a:
			in += cols * (s - 1) // path on s vertices per column
		case a == 2:
			in += cols // single edge per column (s == a == 2)
		default:
			in += cols * s // full ring per column
		}
	}
	return in
}

// SubTorus returns the torus induced by a partition of the given shape,
// i.e. the network a job allocated that cuboid sees. Blue Gene/Q
// partitions retain wrap-around links in every dimension even when the
// partition does not cover the dimension of the host machine (paper
// §2), so the induced network of a cuboid with lengths L is itself a
// torus with dimensions L.
func (t *Torus) SubTorus(c Cuboid) (*Torus, error) {
	c.validateFor(t)
	return New(c.Lens...)
}
