package torus

import (
	"testing"
)

// FuzzParseShape: arbitrary input never panics; accepted inputs
// round-trip through String (up to whitespace and case).
func FuzzParseShape(f *testing.F) {
	for _, seed := range []string{"16x16x12x8x2", "4", "3 x 2", "", "0", "-1x2", "axb", "2X2", "1x1x1x1x1x1x1x1"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sh, err := ParseShape(s)
		if err != nil {
			return
		}
		if err := sh.Validate(); err != nil {
			t.Fatalf("ParseShape(%q) accepted invalid shape %v: %v", s, sh, err)
		}
		again, err := ParseShape(sh.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", sh.String(), err)
		}
		if !again.Equal(sh) {
			t.Fatalf("round trip %q -> %v -> %v", s, sh, again)
		}
	})
}

// FuzzCuboidPerimeter: for arbitrary small shapes and cuboid lengths,
// the closed form matches brute force and respects the regularity
// identity.
func FuzzCuboidPerimeter(f *testing.F) {
	f.Add(uint8(4), uint8(3), uint8(2), uint8(2), uint8(2), uint8(1))
	f.Add(uint8(2), uint8(2), uint8(2), uint8(1), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, a, b, c, la, lb, lc uint8) {
		dims := Shape{int(a%6) + 1, int(b%6) + 1, int(c%6) + 1}
		lens := Shape{int(la)%dims[0] + 1, int(lb)%dims[1] + 1, int(lc)%dims[2] + 1}
		tor := MustNew(dims...)
		cb := NewCuboid(nil, lens)
		closed := tor.CuboidPerimeter(cb)
		brute := tor.PerimeterOf(tor.CuboidVertices(cb))
		if closed != brute {
			t.Fatalf("dims %v lens %v: closed %d != brute %d", dims, lens, closed, brute)
		}
		if tor.Degree()*cb.Volume() != 2*tor.CuboidInterior(cb)+closed {
			t.Fatalf("dims %v lens %v: regularity identity violated", dims, lens)
		}
	})
}
