package torus

import (
	"sort"
)

// EnumerateGeometries returns every canonical (descending-sorted) shape
// of the given rank and volume whose dimensions fit inside the host
// shape. This enumerates the candidate partition geometries for an
// allocation request of `volume` units on a machine of shape `host`,
// the search space of the paper's §3.2 analysis.
//
// The enumeration recursively chooses dimension lengths in
// non-increasing order, pruning branches whose remaining volume cannot
// be realized. Fitting is checked with Shape.FitsIn (sorted
// domination), so shapes are returned iff some assignment of their
// dimensions to host dimensions fits.
func EnumerateGeometries(host Shape, rank, volume int) []Shape {
	if volume < 1 || rank < 1 {
		return nil
	}
	maxDim := host.Canonical()
	if len(maxDim) < rank {
		pad := make(Shape, rank-len(maxDim))
		for i := range pad {
			pad[i] = 1
		}
		maxDim = append(maxDim, pad...)
	}
	var out []Shape
	cur := make(Shape, 0, rank)
	var rec func(pos, remaining, maxLen int)
	rec = func(pos, remaining, maxLen int) {
		if pos == rank {
			if remaining == 1 {
				sh := cur.Clone()
				if sh.FitsIn(host) {
					out = append(out, sh)
				}
			}
			return
		}
		// The largest dimension we may still use is bounded by the
		// previous dimension (canonical ordering) and by the largest
		// host dimension available at this position.
		limit := maxLen
		if maxDim[pos] < limit {
			// Not a strict bound position-wise (assignment is checked
			// by FitsIn at the leaf), but the largest host dimension
			// overall bounds everything.
			limit = maxDim[0]
		}
		for l := limit; l >= 1; l-- {
			if remaining%l != 0 {
				continue
			}
			// Remaining volume must be realizable with rank-pos-1 dims
			// each of length at most l.
			if !volumeFeasible(remaining/l, rank-pos-1, l) {
				continue
			}
			cur = append(cur, l)
			rec(pos+1, remaining/l, l)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0, volume, maxDim[0])
	sortShapes(out)
	return dedupeShapes(out)
}

// volumeFeasible reports whether `volume` can be written as a product
// of `slots` integers each in [1, maxLen].
func volumeFeasible(volume, slots, maxLen int) bool {
	if volume == 1 {
		return true
	}
	if slots == 0 {
		return false
	}
	// Upper bound check: maxLen^slots >= volume.
	bound := 1
	for i := 0; i < slots; i++ {
		bound *= maxLen
		if bound >= volume {
			break
		}
	}
	if bound < volume {
		return false
	}
	for l := min(maxLen, volume); l >= 2; l-- {
		if volume%l == 0 && volumeFeasible(volume/l, slots-1, l) {
			return true
		}
	}
	return false
}

// sortShapes orders shapes lexicographically (descending entries first),
// giving deterministic output.
func sortShapes(shapes []Shape) {
	sort.Slice(shapes, func(i, j int) bool {
		a, b := shapes[i], shapes[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] > b[k]
			}
		}
		return len(a) < len(b)
	})
}

func dedupeShapes(shapes []Shape) []Shape {
	out := shapes[:0]
	for i, s := range shapes {
		if i == 0 || !s.Equal(shapes[i-1]) {
			out = append(out, s)
		}
	}
	return out
}

// Divisors returns the positive divisors of n in ascending order.
func Divisors(n int) []int {
	if n < 1 {
		return nil
	}
	var small, large []int
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			small = append(small, d)
			if d != n/d {
				large = append(large, n/d)
			}
		}
	}
	for i := len(large) - 1; i >= 0; i-- {
		small = append(small, large[i])
	}
	return small
}

// Placements returns every origin-zero-distinct placement of a cuboid
// with the given canonical lengths inside the host shape: all
// assignments of lengths to host dimensions (as length vectors in host
// dimension order) that fit, deduplicated. Origins are not enumerated
// here; see package sched for free-region placement.
func Placements(host Shape, lens Shape) []Shape {
	if len(lens) > len(host) {
		trimmed := lens.Canonical()
		for _, v := range trimmed[len(host):] {
			if v != 1 {
				return nil
			}
		}
		lens = trimmed[:len(host)]
	}
	for len(lens) < len(host) {
		lens = lens.Append(1)
	}
	var out []Shape
	used := make([]bool, len(host))
	perm := make(Shape, len(host))
	var rec func(pos int)
	rec = func(pos int) {
		if pos == len(lens) {
			out = append(out, perm.Clone())
			return
		}
		seen := map[int]bool{}
		for d := 0; d < len(host); d++ {
			if used[d] || lens[pos] > host[d] {
				continue
			}
			key := d
			if seen[key] {
				continue
			}
			seen[key] = true
			used[d] = true
			perm[d] = lens[pos]
			rec(pos + 1)
			used[d] = false
			perm[d] = 0
		}
	}
	// Sort lengths descending so identical lengths are adjacent and the
	// dedupe below catches permutation-equivalent assignments.
	lens = lens.Canonical()
	rec(0)
	sortShapes(out)
	return dedupeShapes(out)
}
