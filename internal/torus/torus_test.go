package torus

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseShape(t *testing.T) {
	cases := []struct {
		in   string
		want Shape
		ok   bool
	}{
		{"16x16x12x8x2", Shape{16, 16, 12, 8, 2}, true},
		{"4", Shape{4}, true},
		{" 3 x 2 ", Shape{3, 2}, true},
		{"3X2", Shape{3, 2}, true},
		{"", nil, false},
		{"3x0", nil, false},
		{"3x-1", nil, false},
		{"axb", nil, false},
	}
	for _, c := range cases {
		got, err := ParseShape(c.in)
		if c.ok && err != nil {
			t.Errorf("ParseShape(%q) unexpected error: %v", c.in, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("ParseShape(%q) expected error, got %v", c.in, got)
			}
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("ParseShape(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestShapeString(t *testing.T) {
	if got := (Shape{4, 3, 2}).String(); got != "4x3x2" {
		t.Errorf("String = %q, want 4x3x2", got)
	}
	if got := (Shape{}).String(); got != "<empty>" {
		t.Errorf("String(empty) = %q", got)
	}
}

func TestShapeVolumeAndCanonical(t *testing.T) {
	s := Shape{2, 4, 3}
	if s.Volume() != 24 {
		t.Errorf("Volume = %d, want 24", s.Volume())
	}
	c := s.Canonical()
	if !c.Equal(Shape{4, 3, 2}) {
		t.Errorf("Canonical = %v", c)
	}
	// Canonical must not mutate the receiver.
	if !s.Equal(Shape{2, 4, 3}) {
		t.Errorf("Canonical mutated receiver: %v", s)
	}
	// Idempotence.
	if !c.Canonical().Equal(c) {
		t.Errorf("Canonical not idempotent")
	}
}

func TestShapeFitsIn(t *testing.T) {
	cases := []struct {
		s, host Shape
		want    bool
	}{
		{Shape{2, 2, 1, 1}, Shape{4, 4, 3, 2}, true},
		{Shape{4, 4, 3, 2}, Shape{4, 4, 3, 2}, true},
		{Shape{4, 4, 4, 1}, Shape{4, 4, 3, 2}, false},
		{Shape{3, 3}, Shape{4, 4, 3, 2}, true},
		{Shape{3, 3, 3}, Shape{4, 4, 3, 2}, true},
		{Shape{3, 3, 3, 3}, Shape{4, 4, 3, 2}, false},
		{Shape{8}, Shape{7, 2, 2, 2}, false},
		{Shape{7, 2, 2, 2}, Shape{7, 2, 2, 2}, true},
		{Shape{2, 7, 2, 2}, Shape{7, 2, 2, 2}, true}, // rotation fits
		{Shape{1, 1, 1, 1, 1}, Shape{2, 2}, true},    // extra trivial dims ok
		{Shape{2, 2, 2}, Shape{2, 2}, false},
	}
	for _, c := range cases {
		if got := c.s.FitsIn(c.host); got != c.want {
			t.Errorf("%v.FitsIn(%v) = %v, want %v", c.s, c.host, got, c.want)
		}
	}
}

func TestNewRejectsBadShapes(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("New() should fail on empty shape")
	}
	if _, err := New(3, 0); err == nil {
		t.Error("New(3,0) should fail")
	}
}

func TestTorusBasics(t *testing.T) {
	tor := MustNew(4, 3, 2)
	if tor.NumVertices() != 24 {
		t.Errorf("NumVertices = %d", tor.NumVertices())
	}
	// degree: 2 (len 4) + 2 (len 3) + 1 (len 2) = 5
	if tor.Degree() != 5 {
		t.Errorf("Degree = %d, want 5", tor.Degree())
	}
	if tor.NumEdges() != 5*24/2 {
		t.Errorf("NumEdges = %d, want 60", tor.NumEdges())
	}
}

func TestDegreeConventions(t *testing.T) {
	cases := []struct {
		dims Shape
		deg  int
	}{
		{Shape{1}, 0},
		{Shape{2}, 1},
		{Shape{3}, 2},
		{Shape{5}, 2},
		{Shape{2, 2, 2}, 3},       // hypercube Q3
		{Shape{4, 4, 4, 4, 2}, 9}, // BGQ midplane node degree
		{Shape{1, 1, 1}, 0},
		{Shape{3, 1, 2}, 3},
	}
	for _, c := range cases {
		tor := MustNew(c.dims...)
		if tor.Degree() != c.deg {
			t.Errorf("degree of %v = %d, want %d", c.dims, tor.Degree(), c.deg)
		}
	}
}

func TestIndexCoordRoundTrip(t *testing.T) {
	tor := MustNew(5, 3, 4, 2)
	for i := 0; i < tor.NumVertices(); i++ {
		c := tor.CoordOf(i, nil)
		if got := tor.Index(c); got != i {
			t.Fatalf("round trip %d -> %v -> %d", i, c, got)
		}
	}
}

func TestNeighborsSymmetricAndDegree(t *testing.T) {
	for _, dims := range []Shape{{4, 3, 2}, {2, 2}, {5}, {3, 3, 3}, {2, 1, 4}} {
		tor := MustNew(dims...)
		adj := make(map[[2]int]bool)
		for u := 0; u < tor.NumVertices(); u++ {
			nb := tor.Neighbors(u, nil)
			if len(nb) != tor.Degree() {
				t.Errorf("%v: vertex %d has %d neighbours, want degree %d", dims, u, len(nb), tor.Degree())
			}
			seen := map[int]bool{}
			for _, v := range nb {
				if v == u {
					t.Errorf("%v: self-loop at %d", dims, u)
				}
				if seen[v] {
					t.Errorf("%v: duplicate neighbour %d of %d", dims, v, u)
				}
				seen[v] = true
				adj[[2]int{u, v}] = true
			}
		}
		for k := range adj {
			if !adj[[2]int{k[1], k[0]}] {
				t.Errorf("%v: asymmetric edge %v", dims, k)
			}
		}
	}
}

func TestHasEdgeMatchesNeighbors(t *testing.T) {
	tor := MustNew(4, 2, 3)
	n := tor.NumVertices()
	adj := make(map[[2]int]bool)
	for u := 0; u < n; u++ {
		for _, v := range tor.Neighbors(u, nil) {
			adj[[2]int{u, v}] = true
		}
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if got := tor.HasEdge(u, v); got != adj[[2]int{u, v}] {
				t.Errorf("HasEdge(%d,%d) = %v, adjacency says %v", u, v, got, adj[[2]int{u, v}])
			}
		}
	}
}

func TestForEachEdgeCount(t *testing.T) {
	for _, dims := range []Shape{{4, 3}, {2, 2, 2}, {5, 1, 2}} {
		tor := MustNew(dims...)
		count := 0
		tor.ForEachEdge(func(u, v int) {
			if !tor.HasEdge(u, v) {
				t.Errorf("%v: ForEachEdge yielded non-edge (%d,%d)", dims, u, v)
			}
			count++
		})
		if count != tor.NumEdges() {
			t.Errorf("%v: ForEachEdge count %d != NumEdges %d", dims, count, tor.NumEdges())
		}
	}
}

func TestCuboidPerimeterClosedFormMatchesBruteForce(t *testing.T) {
	hosts := []Shape{
		{4, 4, 2},
		{6, 3},
		{5, 4, 3},
		{2, 2, 2, 2},
		{4, 4, 4},
		{3, 3, 2, 2},
		{7},
		{2},
		{1, 5, 2},
	}
	for _, host := range hosts {
		tor := MustNew(host...)
		// Enumerate all cuboid lengths (host dimension order) at origin 0
		// plus shifted origins.
		var lens Shape = make(Shape, len(host))
		var rec func(dim int)
		rec = func(dim int) {
			if dim == len(host) {
				c := NewCuboid(nil, lens)
				want := tor.PerimeterOf(tor.CuboidVertices(c))
				got := tor.CuboidPerimeter(c)
				if got != want {
					t.Errorf("%v cuboid %v: closed form %d, brute force %d", host, lens, got, want)
				}
				wantIn := tor.InteriorOf(tor.CuboidVertices(c))
				gotIn := tor.CuboidInterior(c)
				if gotIn != wantIn {
					t.Errorf("%v cuboid %v: interior closed form %d, brute force %d", host, lens, gotIn, wantIn)
				}
				return
			}
			for l := 1; l <= host[dim]; l++ {
				lens[dim] = l
				rec(dim + 1)
			}
		}
		rec(0)
	}
}

func TestCuboidPerimeterOriginInvariant(t *testing.T) {
	tor := MustNew(5, 4, 3)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		lens := Shape{1 + rng.Intn(5), 1 + rng.Intn(4), 1 + rng.Intn(3)}
		origin := Coord{rng.Intn(5), rng.Intn(4), rng.Intn(3)}
		c0 := NewCuboid(nil, lens)
		c1 := NewCuboid(origin, lens)
		p0 := tor.PerimeterOf(tor.CuboidVertices(c0))
		p1 := tor.PerimeterOf(tor.CuboidVertices(c1))
		if p0 != p1 {
			t.Errorf("perimeter depends on origin: lens %v origin %v: %d vs %d", lens, origin, p0, p1)
		}
		if got := tor.CuboidPerimeter(c1); got != p1 {
			t.Errorf("closed form with origin: %d vs %d", got, p1)
		}
	}
}

// TestRegularityIdentity checks Equation 1 of the paper:
// k|A| = 2|E(A,A)| + |E(A, A-complement)| for cuboids.
func TestRegularityIdentity(t *testing.T) {
	type shapes struct{ host, lens Shape }
	cases := []shapes{
		{Shape{4, 4, 4}, Shape{2, 3, 4}},
		{Shape{6, 2, 2}, Shape{3, 2, 1}},
		{Shape{2, 2, 2, 2}, Shape{2, 2, 1, 1}},
		{Shape{8, 4, 4, 4, 2}, Shape{4, 4, 4, 4, 1}},
	}
	for _, c := range cases {
		tor := MustNew(c.host...)
		cb := NewCuboid(nil, c.lens)
		k := tor.Degree()
		lhs := k * cb.Volume()
		rhs := 2*tor.CuboidInterior(cb) + tor.CuboidPerimeter(cb)
		if lhs != rhs {
			t.Errorf("host %v cuboid %v: k|A|=%d but 2 int + per = %d", c.host, c.lens, lhs, rhs)
		}
	}
}

func TestRegularityIdentityQuick(t *testing.T) {
	host := Shape{6, 5, 4, 2}
	tor := MustNew(host...)
	f := func(a, b, c, d uint8) bool {
		lens := Shape{1 + int(a)%6, 1 + int(b)%5, 1 + int(c)%4, 1 + int(d)%2}
		cb := NewCuboid(nil, lens)
		return tor.Degree()*cb.Volume() == 2*tor.CuboidInterior(cb)+tor.CuboidPerimeter(cb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestContains(t *testing.T) {
	tor := MustNew(4, 4)
	c := NewCuboid(Coord{3, 2}, Shape{2, 3}) // wraps in both dims
	want := map[[2]int]bool{}
	for _, x := range []int{3, 0} {
		for _, y := range []int{2, 3, 0} {
			want[[2]int{x, y}] = true
		}
	}
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			idx := tor.Index(Coord{x, y})
			if got := tor.Contains(c, idx); got != want[[2]int{x, y}] {
				t.Errorf("Contains(%d,%d) = %v, want %v", x, y, got, want[[2]int{x, y}])
			}
		}
	}
	if n := len(tor.CuboidVertices(c)); n != 6 {
		t.Errorf("CuboidVertices size = %d, want 6", n)
	}
}

func TestSubTorus(t *testing.T) {
	tor := MustNew(16, 16, 12, 8, 2)
	sub, err := tor.SubTorus(NewCuboid(nil, Shape{8, 8, 4, 4, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 2048 {
		t.Errorf("sub torus vertices = %d", sub.NumVertices())
	}
	if !sub.Dims().Equal(Shape{8, 8, 4, 4, 2}) {
		t.Errorf("sub torus dims = %v", sub.Dims())
	}
}

func TestEnumerateGeometries(t *testing.T) {
	// All 4-dim geometries of volume 8 fitting in the JUQUEEN midplane
	// grid 7x2x2x2: 4x2x1x1 (4 fits in the length-7 dimension; Table 7's
	// worst case) and 2x2x2x1 (the best case). 8x1x1x1 does not fit.
	got := EnumerateGeometries(Shape{7, 2, 2, 2}, 4, 8)
	want := []Shape{{4, 2, 1, 1}, {2, 2, 2, 1}}
	if len(got) != len(want) {
		t.Fatalf("EnumerateGeometries = %v, want %v", got, want)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("geometry %d = %v, want %v", i, got[i], want[i])
		}
	}

	// Mira grid 4x4x3x2, volume 24.
	got = EnumerateGeometries(Shape{4, 4, 3, 2}, 4, 24)
	expect := map[string]bool{"4x3x2x1": true, "3x2x2x2": true}
	found := map[string]bool{}
	for _, g := range got {
		found[g.String()] = true
	}
	for k := range expect {
		if !found[k] {
			t.Errorf("expected geometry %s missing from %v", k, got)
		}
	}
	// 4x3x2x1 and 3x2x2x2 are the only volume-24 cuboids in 4x4x3x2:
	// any other factorization needs a dimension > 4 or three dims >= 3.
	if len(got) != 2 {
		t.Errorf("expected exactly 2 geometries, got %v", got)
	}
}

func TestEnumerateGeometriesCompleteByBruteForce(t *testing.T) {
	host := Shape{4, 4, 3, 2}
	for vol := 1; vol <= 16; vol++ {
		got := EnumerateGeometries(host, 4, vol)
		seen := map[string]bool{}
		for _, g := range got {
			if g.Volume() != vol {
				t.Errorf("vol %d: geometry %v has wrong volume", vol, g)
			}
			if !g.FitsIn(host) {
				t.Errorf("vol %d: geometry %v does not fit", vol, g)
			}
			if seen[g.String()] {
				t.Errorf("vol %d: duplicate %v", vol, g)
			}
			seen[g.String()] = true
		}
		// Brute force: all 4-tuples (a,b,c,d) with product vol, sorted,
		// fitting.
		want := map[string]bool{}
		for a := 1; a <= 4; a++ {
			for b := 1; b <= 4; b++ {
				for c := 1; c <= 4; c++ {
					for d := 1; d <= 4; d++ {
						if a*b*c*d != vol {
							continue
						}
						sh := Shape{a, b, c, d}.Canonical()
						if sh.FitsIn(host) {
							want[sh.String()] = true
						}
					}
				}
			}
		}
		if len(want) != len(seen) {
			t.Errorf("vol %d: got %v want %v", vol, seen, want)
		}
		for k := range want {
			if !seen[k] {
				t.Errorf("vol %d: missing %s", vol, k)
			}
		}
	}
}

func TestDivisors(t *testing.T) {
	cases := map[int][]int{
		1:  {1},
		12: {1, 2, 3, 4, 6, 12},
		17: {1, 17},
		36: {1, 2, 3, 4, 6, 9, 12, 18, 36},
	}
	for n, want := range cases {
		got := Divisors(n)
		if len(got) != len(want) {
			t.Errorf("Divisors(%d) = %v, want %v", n, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("Divisors(%d) = %v, want %v", n, got, want)
				break
			}
		}
	}
	if Divisors(0) != nil {
		t.Error("Divisors(0) should be nil")
	}
}

func TestPlacements(t *testing.T) {
	host := Shape{4, 4, 3, 2}
	// A 2x2x1x1 cuboid can sit in dims (0,1), (0,2)... wherever len<=host.
	got := Placements(host, Shape{2, 2, 1, 1})
	// Assignments of {2,2} to the four host dims: positions {0,1},{0,2},{0,3},{1,2},{1,3},{2,3} = 6
	if len(got) != 6 {
		t.Errorf("Placements = %v (len %d), want 6", got, len(got))
	}
	for _, p := range got {
		if len(p) != len(host) {
			t.Errorf("placement %v has wrong rank", p)
		}
		for i := range p {
			if p[i] > host[i] {
				t.Errorf("placement %v exceeds host %v", p, host)
			}
		}
		if p.Volume() != 4 {
			t.Errorf("placement %v wrong volume", p)
		}
	}
	// 4x3: the 4 must sit in dim 0 or 1; the 3 in any of dims 0,1,2.
	// Host dimensions are distinguishable, so there are 4 placements.
	got = Placements(host, Shape{4, 3})
	if len(got) != 4 {
		t.Errorf("Placements(4x3) = %v, want 4", got)
	}
	// Infeasible.
	if got := Placements(host, Shape{5, 1}); got != nil && len(got) != 0 {
		t.Errorf("Placements(5x1) = %v, want none", got)
	}
}

func BenchmarkCuboidPerimeterClosedForm(b *testing.B) {
	tor := MustNew(16, 16, 12, 8, 2)
	c := NewCuboid(nil, Shape{8, 8, 4, 4, 2})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tor.CuboidPerimeter(c)
	}
}

func BenchmarkBruteForcePerimeter(b *testing.B) {
	tor := MustNew(8, 8, 4)
	c := NewCuboid(nil, Shape{4, 4, 4})
	set := tor.CuboidVertices(c)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tor.PerimeterOf(set)
	}
}
