package tabulate

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strconv"
	"strings"
)

// Machine-readable encodings. Both encoders are byte-deterministic:
// the same Table or Chart value always serializes to the same bytes
// (struct field order fixes the JSON key order, rows are emitted in
// slice order, and floats use Go's shortest round-trip formatting),
// so golden files and CI drift checks can diff the output directly.

// TableData is the JSON-encodable form of a Table (fixed key order,
// nil rows normalized to an empty slice).
type TableData struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// Data converts the table to its JSON-encodable form.
func (t Table) Data() TableData {
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	return TableData{Title: t.Title, Headers: t.Headers, Rows: rows}
}

// JSON returns the table as indented, byte-deterministic JSON.
func (t Table) JSON() ([]byte, error) {
	return json.MarshalIndent(t.Data(), "", "  ")
}

// CSV returns the table as RFC 4180 CSV: one header record followed by
// the data rows. The title is not part of the CSV (it belongs to the
// rendered form); quoting and escaping follow encoding/csv.
func (t Table) CSV() ([]byte, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(t.Headers); err != nil {
		return nil, err
	}
	for _, row := range t.Rows {
		if err := w.Write(row); err != nil {
			return nil, err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// mdEscape makes a cell safe inside a Markdown table: pipes are
// escaped and newlines collapse to spaces (a cell is one line).
func mdEscape(s string) string {
	s = strings.ReplaceAll(s, "\n", " ")
	return strings.ReplaceAll(s, "|", `\|`)
}

// Markdown returns the table as a GitHub-flavored Markdown table: the
// title as a bold paragraph (when set), the header row, the delimiter
// row, and one row per data row. Like the JSON and CSV encoders it is
// byte-deterministic, so strong ETags and golden files can hash the
// output directly.
func (t Table) Markdown() []byte {
	var buf bytes.Buffer
	if t.Title != "" {
		buf.WriteString("**")
		buf.WriteString(mdEscape(t.Title))
		buf.WriteString("**\n\n")
	}
	writeRow := func(cells []string) {
		buf.WriteByte('|')
		for _, c := range cells {
			buf.WriteByte(' ')
			buf.WriteString(mdEscape(c))
			buf.WriteString(" |")
		}
		buf.WriteByte('\n')
	}
	writeRow(t.Headers)
	buf.WriteByte('|')
	for range t.Headers {
		buf.WriteString(" --- |")
	}
	buf.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return buf.Bytes()
}

// ChartData is the JSON-encodable form of a Chart: NaN points (missing
// values) become nulls, which encoding/json can represent and every
// JSON consumer understands.
type ChartData struct {
	Title  string       `json:"title"`
	XLabel string       `json:"x_label"`
	YLabel string       `json:"y_label"`
	X      []string     `json:"x"`
	Series []SeriesData `json:"series"`
}

// SeriesData is one chart series with missing points as nulls.
type SeriesData struct {
	Label string     `json:"label"`
	Y     []*float64 `json:"y"`
}

// Data converts the chart to its JSON-encodable form.
func (c Chart) Data() ChartData {
	d := ChartData{Title: c.Title, XLabel: c.XLabel, YLabel: c.YLabel, X: c.X}
	if d.X == nil {
		d.X = []string{}
	}
	d.Series = make([]SeriesData, len(c.Series))
	for si, s := range c.Series {
		ys := make([]*float64, len(s.Y))
		for i, v := range s.Y {
			if !math.IsNaN(v) {
				v := v
				ys[i] = &v
			}
		}
		d.Series[si] = SeriesData{Label: s.Label, Y: ys}
	}
	return d
}

// JSON returns the chart as indented, byte-deterministic JSON.
func (c Chart) JSON() ([]byte, error) {
	return json.MarshalIndent(c.Data(), "", "  ")
}

// CSV returns the chart as CSV: the first column is the X value
// (headed by the chart's XLabel, or "x" when unset), followed by one
// column per series. Missing points (NaN) are empty cells; floats use
// the shortest round-trip decimal form.
func (c Chart) CSV() ([]byte, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	head := make([]string, 0, 1+len(c.Series))
	xl := c.XLabel
	if xl == "" {
		xl = "x"
	}
	head = append(head, xl)
	for _, s := range c.Series {
		head = append(head, s.Label)
	}
	if err := w.Write(head); err != nil {
		return nil, err
	}
	rec := make([]string, len(head))
	for xi, x := range c.X {
		rec[0] = x
		for si, s := range c.Series {
			rec[si+1] = ""
			if xi < len(s.Y) && !math.IsNaN(s.Y[xi]) {
				rec[si+1] = strconv.FormatFloat(s.Y[xi], 'g', -1, 64)
			}
		}
		if err := w.Write(rec); err != nil {
			return nil, err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
