// Package tabulate renders the experiment results as aligned plain-text
// tables and simple ASCII bar charts, the output format of the cmd/
// tools and the EXPERIMENTS.md generators.
package tabulate

import (
	"fmt"
	"math"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, stringifying each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly (integers without decimals,
// small values with 4 significant digits).
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 0.01 {
		return fmt.Sprintf("%.3f", v)
	}
	return fmt.Sprintf("%.3e", v)
}

// Render returns the aligned table.
func (t Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one labeled line of a chart.
type Series struct {
	Label string
	Y     []float64 // aligned with the chart's X labels; NaN = missing
}

// Chart is a grouped bar chart over categorical X values.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	X      []string
	Series []Series
}

// Render draws the chart as per-category horizontal bars, scaled to
// the global maximum.
func (c Chart) Render() string {
	const barWidth = 48
	maxV := 0.0
	for _, s := range c.Series {
		for _, v := range s.Y {
			if !math.IsNaN(v) && v > maxV {
				maxV = v
			}
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", c.Title, strings.Repeat("=", len(c.Title)))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "[%s]\n", c.YLabel)
	}
	labelW := 0
	for _, s := range c.Series {
		if len(s.Label) > labelW {
			labelW = len(s.Label)
		}
	}
	for xi, x := range c.X {
		fmt.Fprintf(&b, "%s %s\n", c.XLabel, x)
		for _, s := range c.Series {
			if xi >= len(s.Y) || math.IsNaN(s.Y[xi]) {
				fmt.Fprintf(&b, "  %-*s  %s\n", labelW, s.Label, "-")
				continue
			}
			v := s.Y[xi]
			n := 0
			if maxV > 0 {
				n = int(math.Round(v / maxV * barWidth))
			}
			fmt.Fprintf(&b, "  %-*s  %s %s\n", labelW, s.Label, strings.Repeat("#", n), FormatFloat(v))
		}
	}
	return b.String()
}
