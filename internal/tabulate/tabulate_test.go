package tabulate

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := Table{Title: "T", Headers: []string{"a", "bb"}}
	tab.AddRow(1, "x")
	tab.AddRow(22.5, "yyyy")
	out := tab.Render()
	if !strings.Contains(out, "T\n=") {
		t.Error("title underline")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, underline, header, separator, 2 rows
		t.Fatalf("lines: %q", out)
	}
	// Columns aligned: 'bb' column starts at the same offset everywhere.
	hdr := lines[2]
	idx := strings.Index(hdr, "bb")
	for _, ln := range lines[4:] {
		if len(ln) <= idx {
			t.Errorf("short line %q", ln)
		}
	}
	if !strings.Contains(out, "22.500") {
		t.Errorf("float formatting: %q", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:     "3",
		3.25:  "3.250",
		0.001: "1.000e-03",
		-2:    "-2",
		1536:  "1536",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestChartRender(t *testing.T) {
	c := Chart{
		Title:  "C",
		XLabel: "mp",
		YLabel: "time",
		X:      []string{"4", "8"},
		Series: []Series{
			{Label: "cur", Y: []float64{10, 5}},
			{Label: "prop", Y: []float64{5, math.NaN()}},
		},
	}
	out := c.Render()
	if !strings.Contains(out, "cur") || !strings.Contains(out, "prop") {
		t.Error("labels")
	}
	if !strings.Contains(out, "##") {
		t.Error("bars")
	}
	if !strings.Contains(out, "-") {
		t.Error("missing-value marker")
	}
	// The 10-value bar should be about twice the 5-value bar.
	lines := strings.Split(out, "\n")
	var w10, w5 int
	for _, ln := range lines {
		if strings.Contains(ln, "cur") && strings.Contains(ln, "10") {
			w10 = strings.Count(ln, "#")
		}
		if strings.Contains(ln, "cur") && strings.Contains(ln, " 5") {
			w5 = strings.Count(ln, "#")
		}
	}
	if w10 != 2*w5 || w5 == 0 {
		t.Errorf("bar widths %d vs %d", w10, w5)
	}
}

func TestChartEmptyValues(t *testing.T) {
	c := Chart{X: []string{"1"}, Series: []Series{{Label: "s", Y: nil}}}
	if out := c.Render(); !strings.Contains(out, "-") {
		t.Errorf("short series should render dash: %q", out)
	}
}
