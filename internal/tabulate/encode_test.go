package tabulate

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func sampleTable() Table {
	t := Table{
		Title:   "sample",
		Headers: []string{"name", "value"},
	}
	t.AddRow("plain", 1)
	t.AddRow("quoted, comma", 2.5)
	t.AddRow(`embedded "quotes"`, 3)
	return t
}

func TestTableJSON(t *testing.T) {
	js, err := sampleTable().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc TableData
	if err := json.Unmarshal(js, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, js)
	}
	if doc.Title != "sample" || len(doc.Rows) != 3 || doc.Rows[1][1] != "2.500" {
		t.Errorf("round-trip mismatch: %+v", doc)
	}
	// Determinism: two encodings are byte-identical.
	js2, _ := sampleTable().JSON()
	if !bytes.Equal(js, js2) {
		t.Error("JSON encoding not deterministic")
	}
	// Empty tables encode rows as [], not null.
	empty, err := (Table{Headers: []string{"a"}}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(empty), "null") {
		t.Errorf("empty table encoded null: %s", empty)
	}
}

func TestTableCSV(t *testing.T) {
	cs, err := sampleTable().CSV()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(cs), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), lines)
	}
	if lines[0] != "name,value" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[2] != `"quoted, comma",2.500` {
		t.Errorf("comma row = %q", lines[2])
	}
	if lines[3] != `"embedded ""quotes""",3` {
		t.Errorf("quote row = %q", lines[3])
	}
}

func sampleChart() Chart {
	return Chart{
		Title:  "chart",
		XLabel: "midplanes",
		YLabel: "bw",
		X:      []string{"4", "8"},
		Series: []Series{
			{Label: "a", Y: []float64{1, 2.25}},
			{Label: "b", Y: []float64{math.NaN(), 4}},
		},
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := Table{
		Title:   "md | sample",
		Headers: []string{"name", "value"},
	}
	tab.AddRow("pipe|cell", 1)
	tab.AddRow("line\nbreak", 2.5)
	md := tab.Markdown()
	want := "**md \\| sample**\n\n" +
		"| name | value |\n" +
		"| --- | --- |\n" +
		"| pipe\\|cell | 1 |\n" +
		"| line break | 2.500 |\n"
	if string(md) != want {
		t.Errorf("Markdown = %q, want %q", md, want)
	}
	// Determinism.
	if !bytes.Equal(md, tab.Markdown()) {
		t.Error("Markdown encoding not deterministic")
	}
	// No title: straight to the header row.
	tab.Title = ""
	if !bytes.HasPrefix(tab.Markdown(), []byte("| name |")) {
		t.Errorf("untitled table: %q", tab.Markdown())
	}
}

func TestChartJSON(t *testing.T) {
	js, err := sampleChart().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc ChartData
	if err := json.Unmarshal(js, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, js)
	}
	if doc.Series[1].Y[0] != nil {
		t.Error("NaN should encode as null")
	}
	if doc.Series[1].Y[1] == nil || *doc.Series[1].Y[1] != 4 {
		t.Errorf("series b point 1 = %v", doc.Series[1].Y[1])
	}
	js2, _ := sampleChart().JSON()
	if !bytes.Equal(js, js2) {
		t.Error("chart JSON not deterministic")
	}
}

func TestChartCSV(t *testing.T) {
	cs, err := sampleChart().CSV()
	if err != nil {
		t.Fatal(err)
	}
	want := "midplanes,a,b\n4,1,\n8,2.25,4\n"
	if string(cs) != want {
		t.Errorf("CSV = %q, want %q", cs, want)
	}
	// Unset XLabel falls back to "x".
	c := sampleChart()
	c.XLabel = ""
	cs, err = c.CSV()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(cs), "x,a,b\n") {
		t.Errorf("fallback header: %q", cs)
	}
}
