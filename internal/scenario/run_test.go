package scenario

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"netpart/internal/model"
	"netpart/internal/route"
	"netpart/internal/torus"
	"netpart/internal/workload"
)

func run(t *testing.T, spec Spec) *Outcome {
	t.Helper()
	out, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestStaticMatchesRouteOracle: the scenario's static bottleneck time
// equals the route package's PredictTransferTime on the same torus
// and demands.
func TestStaticMatchesRouteOracle(t *testing.T) {
	tor := torus.MustNew(8, 4, 2)
	r := route.NewRouter(tor)
	demands, err := workload.BisectionPairing(r, DefaultBytes)
	if err != nil {
		t.Fatal(err)
	}
	want := r.PredictTransferTime(demands, model.LinkBytesPerSec)

	out := run(t, Spec{
		Topology: TopologySpec{Kind: KindTorus, Shape: "8x4x2"},
		Workload: WorkloadSpec{Pattern: PatternPairing},
	})
	if math.Abs(out.StaticSec-want) > 1e-12 {
		t.Errorf("static %v, oracle %v", out.StaticSec, want)
	}
	if out.Demands != len(demands) {
		t.Errorf("demands %d, want %d", out.Demands, len(demands))
	}
	if out.Vertices != 64 || out.Edges != tor.NumEdges() {
		t.Errorf("topology %d/%d", out.Vertices, out.Edges)
	}
}

// TestSimMatchesStaticOnSymmetricPairing: the pairing pattern is
// fully symmetric, so the flow-level simulation completes exactly at
// the static bottleneck time.
func TestSimMatchesStaticOnSymmetricPairing(t *testing.T) {
	out := run(t, Spec{
		Topology: TopologySpec{Kind: KindTorus, Shape: "8x8"},
		Workload: WorkloadSpec{Pattern: PatternPairing},
		Sim:      SimSpec{Enabled: true, Rounds: 2},
	})
	if out.SimRounds != 2 {
		t.Errorf("rounds %d", out.SimRounds)
	}
	if math.Abs(out.SimSec-2*out.StaticSec) > 1e-9*out.StaticSec {
		t.Errorf("sim %v, want 2x static %v", out.SimSec, out.StaticSec)
	}
}

// TestMinhopAgreesWithDOROnHopVolume: DOR takes a shortest path per
// demand, and so does min-hop BFS routing — the total byte·hop volume
// must agree on the same torus and workload even though the concrete
// paths differ.
func TestMinhopAgreesWithDOROnHopVolume(t *testing.T) {
	dor := run(t, Spec{
		Topology: TopologySpec{Kind: KindTorus, Shape: "6x4x2"},
		Workload: WorkloadSpec{Pattern: PatternPairing},
	})
	minhop := run(t, Spec{
		Topology: TopologySpec{Kind: KindTorus, Shape: "6x4x2"},
		Workload: WorkloadSpec{Pattern: PatternPairing},
		Routing:  RoutingMinHop,
	})
	volume := func(o *Outcome) float64 { return o.MeanLinkBytes * float64(o.ActiveLinks) }
	if math.Abs(volume(dor)-volume(minhop)) > 1e-6 {
		t.Errorf("byte-hop volume: dor %v, minhop %v", volume(dor), volume(minhop))
	}
	if dor.TotalBytes != minhop.TotalBytes || dor.Demands != minhop.Demands {
		t.Error("workloads differ between routings")
	}
}

// TestHypercubeIsTorus2D: hypercube Q_d resolves to the [2]^d torus.
func TestHypercubeIsTorus2D(t *testing.T) {
	qc := run(t, Spec{
		Topology: TopologySpec{Kind: KindHypercube, Dim: 5},
		Workload: WorkloadSpec{Pattern: PatternNeighbor},
	})
	tor := run(t, Spec{
		Topology: TopologySpec{Kind: KindTorus, Shape: "2x2x2x2x2"},
		Workload: WorkloadSpec{Pattern: PatternNeighbor},
	})
	if qc.Vertices != 32 || qc.Edges != tor.Edges || qc.StaticSec != tor.StaticSec {
		t.Errorf("hypercube %+v vs torus %+v", qc, tor)
	}
}

// TestPartitionPolicies drives every allocation policy through the
// scenario layer on JUQUEEN at 4 midplanes, where geometries genuinely
// differ: best-case must beat worst-case on bisection, the sched
// first-fit placement is geometry-oblivious, and contention-aware
// equals best-bisection for a contention-bound job.
func TestPartitionPolicies(t *testing.T) {
	at := func(policy string) *Outcome {
		return run(t, Spec{
			Topology: TopologySpec{Kind: KindPartition, Machine: "juqueen", Midplanes: 4, Policy: policy},
			Workload: WorkloadSpec{Pattern: PatternPairing, Bytes: 1e9},
		})
	}
	best := at(PolicyBestCase)
	worst := at(PolicyWorstCase)
	firstFit := at(PolicyFirstFit)
	bestBisect := at(PolicyBestBisection)
	aware := at(PolicyContentionAware)

	if best.BisectionBW <= worst.BisectionBW {
		t.Errorf("best %d (%s) vs worst %d (%s)", best.BisectionBW, best.Geometry, worst.BisectionBW, worst.Geometry)
	}
	if worst.StaticSec <= best.StaticSec {
		t.Errorf("worst geometry should be slower: %v vs %v", worst.StaticSec, best.StaticSec)
	}
	if aware.Geometry != bestBisect.Geometry {
		t.Errorf("contention-aware %s != best-bisection %s", aware.Geometry, bestBisect.Geometry)
	}
	if bestBisect.BisectionBW != best.BisectionBW {
		t.Errorf("sched best-bisection %d != bgq best-case %d", bestBisect.BisectionBW, best.BisectionBW)
	}
	if firstFit.Geometry == "" {
		t.Error("first-fit produced no geometry")
	}
	// Mira predefined at 24 midplanes is the paper's 4x3x2x1.
	mira := run(t, Spec{
		Topology: TopologySpec{Kind: KindPartition, Machine: "mira", Midplanes: 24, Policy: PolicyPredefined},
		Workload: WorkloadSpec{Pattern: PatternNeighbor, Bytes: 1e9},
	})
	if mira.Geometry != "4x3x2x1" {
		t.Errorf("mira predefined 24 = %s", mira.Geometry)
	}
}

// TestAdversarialThroughScenario: the adversarial workload driven
// through the scenario layer is at least as contended as the pairing
// it starts from, and deterministic for a fixed seed.
func TestAdversarialThroughScenario(t *testing.T) {
	pairing := run(t, Spec{
		Topology: TopologySpec{Kind: KindTorus, Shape: "8x4x4"},
		Workload: WorkloadSpec{Pattern: PatternPairing},
	})
	adv := run(t, Spec{
		Topology: TopologySpec{Kind: KindTorus, Shape: "8x4x4"},
		Workload: WorkloadSpec{Pattern: PatternAdversarial, Seed: 3, Iters: 500},
	})
	if adv.StaticSec < pairing.StaticSec {
		t.Errorf("adversarial %v below pairing %v", adv.StaticSec, pairing.StaticSec)
	}
	again := run(t, Spec{
		Topology: TopologySpec{Kind: KindTorus, Shape: "8x4x4"},
		Workload: WorkloadSpec{Pattern: PatternAdversarial, Seed: 3, Iters: 500},
	})
	if !reflect.DeepEqual(adv, again) {
		t.Error("adversarial scenario not deterministic for a fixed seed")
	}
}

// TestGraphFamilyScenarios: the min-hop backends produce sane
// outcomes on every graph kind, including weighted capacities.
func TestGraphFamilyScenarios(t *testing.T) {
	mesh := run(t, Spec{
		Topology: TopologySpec{Kind: KindMesh, Shape: "5x4"},
		Workload: WorkloadSpec{Pattern: PatternPairing},
		Sim:      SimSpec{Enabled: true},
	})
	if mesh.Vertices != 20 || mesh.Edges != 31 {
		t.Errorf("mesh 5x4: %d vertices, %d edges", mesh.Vertices, mesh.Edges)
	}
	if mesh.SimSec < mesh.StaticSec-1e-9 {
		t.Errorf("sim %v below static bottleneck %v", mesh.SimSec, mesh.StaticSec)
	}

	df := run(t, Spec{
		Topology: TopologySpec{Kind: KindDragonfly, Groups: 4, GroupShape: "4x2"},
		Workload: WorkloadSpec{Pattern: PatternPermutation, Seed: 5},
	})
	if df.Vertices != 32 {
		t.Errorf("dragonfly vertices %d", df.Vertices)
	}

	// Tripling every clique weight triples capacity and cuts the
	// bottleneck time by 3x.
	uniform := run(t, Spec{
		Topology: TopologySpec{Kind: KindClique, Shape: "4x4"},
		Workload: WorkloadSpec{Pattern: PatternAllToAll, Bytes: 1e6},
	})
	weighted := run(t, Spec{
		Topology: TopologySpec{Kind: KindClique, Shape: "4x4", Weights: []float64{3, 3}},
		Workload: WorkloadSpec{Pattern: PatternAllToAll, Bytes: 1e6},
	})
	if math.Abs(weighted.StaticSec-uniform.StaticSec/3) > 1e-12 {
		t.Errorf("weighted %v, want %v", weighted.StaticSec, uniform.StaticSec/3)
	}
}

// TestNeighborContentionFree: the halo exchange has contention factor
// 1 on a torus (every link carries exactly one single-hop flow).
func TestNeighborContentionFree(t *testing.T) {
	out := run(t, Spec{
		Topology: TopologySpec{Kind: KindTorus, Shape: "6x6"},
		Workload: WorkloadSpec{Pattern: PatternNeighbor},
	})
	if out.ContentionX != 1 {
		t.Errorf("halo contention %v, want 1", out.ContentionX)
	}
}

// TestRunCancellation: a canceled context aborts promptly with
// ctx.Err at every phase.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Spec{
		Topology: TopologySpec{Kind: KindTorus, Shape: "8x8"},
		Workload: WorkloadSpec{Pattern: PatternPairing},
		Sim:      SimSpec{Enabled: true},
	})
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestRunInfeasiblePolicy: runtime (post-validation) failures surface
// as errors — here, a predefined lookup on a machine without a list.
func TestRunInfeasiblePolicy(t *testing.T) {
	_, err := Run(context.Background(), Spec{
		Topology: TopologySpec{Kind: KindPartition, Machine: "juqueen", Midplanes: 4, Policy: PolicyPredefined},
		Workload: WorkloadSpec{Pattern: PatternPairing},
	})
	if err == nil || !strings.Contains(err.Error(), "predefined") {
		t.Errorf("err = %v", err)
	}
}

// TestOutcomeTableDeterministic: rendering is byte-identical across
// runs.
func TestOutcomeTableDeterministic(t *testing.T) {
	spec := Spec{
		Topology: TopologySpec{Kind: KindPartition, Machine: "2x2x2x1", Midplanes: 4, Policy: PolicyContentionAware},
		Workload: WorkloadSpec{Pattern: PatternPermutation, Seed: 11},
		Sim:      SimSpec{Enabled: true},
	}
	a := run(t, spec).Table().Render()
	b := run(t, spec).Table().Render()
	if a != b {
		t.Error("table rendering not deterministic")
	}
	if !strings.Contains(a, "bisection BW") || !strings.Contains(a, "simulated (s)") {
		t.Errorf("table missing sections:\n%s", a)
	}
}
