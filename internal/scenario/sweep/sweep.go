// Package sweep is the parameter-grid engine over package scenario:
// a Grid takes a base Spec and a set of axes (cartesian by default,
// zipped on request), expands them into a bounded list of validated,
// normalized scenario points, and executes the points sharded onto
// the experiment worker-pool driver with per-point progress,
// partial-failure isolation (a failing point records its error and
// the sweep continues) and incremental streaming of completed points.
//
// Expansion, execution and rendering are byte-deterministic: points
// are ordered row-major over the axes (last axis fastest), results
// land in index-addressed slots regardless of completion order, and
// the sweep's identity (ID) hashes the name, the normalized point
// specs and the rendered axis assignments — everything that reaches
// the output bytes. Two grids with the same identity are guaranteed
// byte-identical results, so the serving layer coalesces them onto
// one execution; grids that differ only in declaration mechanics
// that cannot change the point sequence (e.g. zipped axes vs the
// equivalent cartesian diagonal) share an identity.
package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"netpart/internal/scenario"
)

// Point-count bounds.
const (
	// DefaultMaxPoints caps expansion when the grid does not set
	// MaxPoints.
	DefaultMaxPoints = 1024
	// HardMaxPoints is the ceiling no grid may raise MaxPoints above.
	HardMaxPoints = 65536
)

// Axis is one swept parameter: a dot-separated path into the scenario
// Spec's JSON form ("topology.shape", "workload.pattern",
// "topology.policy", "sim.enabled", ...) and the values it takes.
// Axes with the same non-empty Zip tag advance together (they must
// have equal lengths) instead of multiplying the grid.
type Axis struct {
	Path   string            `json:"path"`
	Values []json.RawMessage `json:"values"`
	Zip    string            `json:"zip,omitempty"`
}

// Strings builds axis values from strings (convenience for Go-side
// grid construction).
func Strings(vals ...string) []json.RawMessage {
	out := make([]json.RawMessage, len(vals))
	for i, v := range vals {
		b, _ := json.Marshal(v)
		out[i] = b
	}
	return out
}

// Ints builds axis values from ints.
func Ints(vals ...int) []json.RawMessage {
	out := make([]json.RawMessage, len(vals))
	for i, v := range vals {
		b, _ := json.Marshal(v)
		out[i] = b
	}
	return out
}

// Floats builds axis values from floats.
func Floats(vals ...float64) []json.RawMessage {
	out := make([]json.RawMessage, len(vals))
	for i, v := range vals {
		b, _ := json.Marshal(v)
		out[i] = b
	}
	return out
}

// Grid is a declarative sweep: a base scenario plus swept axes.
type Grid struct {
	Name string        `json:"name,omitempty"`
	Base scenario.Spec `json:"base"`
	Axes []Axis        `json:"axes"`
	// MaxPoints overrides DefaultMaxPoints (min 1, max HardMaxPoints).
	MaxPoints int `json:"max_points,omitempty"`
}

// Coord is one rendered axis assignment of a point.
type Coord struct {
	Path  string `json:"path"`
	Value string `json:"value"`
}

// Point is one expanded grid point: a validated, normalized scenario
// spec plus the axis assignment that produced it.
type Point struct {
	Index  int
	Spec   scenario.Spec
	Coords []Coord
}

// axisGroup is one odometer digit: either a single axis or a zipped
// bundle advancing together.
type axisGroup struct {
	axes   []int // indices into Grid.Axes
	length int
}

// groupAxes partitions the axes into odometer digits, in order of
// first appearance.
func groupAxes(axes []Axis) ([]axisGroup, error) {
	var out []axisGroup
	zipIndex := map[string]int{}
	for i, ax := range axes {
		if strings.TrimSpace(ax.Path) == "" {
			return nil, fmt.Errorf("sweep: axis %d has an empty path", i)
		}
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values", ax.Path)
		}
		if ax.Zip == "" {
			out = append(out, axisGroup{axes: []int{i}, length: len(ax.Values)})
			continue
		}
		if gi, ok := zipIndex[ax.Zip]; ok {
			if out[gi].length != len(ax.Values) {
				return nil, fmt.Errorf("sweep: zipped axis %q has %d values, group %q has %d", ax.Path, len(ax.Values), ax.Zip, out[gi].length)
			}
			out[gi].axes = append(out[gi].axes, i)
			continue
		}
		zipIndex[ax.Zip] = len(out)
		out = append(out, axisGroup{axes: []int{i}, length: len(ax.Values)})
	}
	return out, nil
}

// applyPath sets a dot-separated path in a JSON object tree,
// creating intermediate objects as needed.
func applyPath(doc map[string]any, path string, value json.RawMessage) error {
	parts := strings.Split(path, ".")
	cur := doc
	for _, p := range parts[:len(parts)-1] {
		next, ok := cur[p]
		if !ok || next == nil {
			m := map[string]any{}
			cur[p] = m
			cur = m
			continue
		}
		m, ok := next.(map[string]any)
		if !ok {
			return fmt.Errorf("sweep: path %q descends into non-object %q", path, p)
		}
		cur = m
	}
	var v any
	if err := json.Unmarshal(value, &v); err != nil {
		return fmt.Errorf("sweep: axis %q value %s: %w", path, value, err)
	}
	cur[parts[len(parts)-1]] = v
	return nil
}

// coordValue renders an axis value for tables: bare strings lose
// their quotes, everything else is compact JSON.
func coordValue(raw json.RawMessage) string {
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		return s
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return string(raw)
	}
	return buf.String()
}

// ExpandAxes is the generic dot-path grid expander shared by scenario
// sweeps and the trace simulator's grids: every combination of axis
// values is patched into the JSON form of base (row-major, the last
// axis group advancing fastest, bounded by maxPoints — 0 means
// DefaultMaxPoints) and handed to decode along with the point index
// and the rendered axis assignment. A decode error aborts the
// expansion; decode owns strict decoding and domain validation of the
// patched document.
func ExpandAxes(base any, axes []Axis, maxPoints int, decode func(idx int, patched []byte, coords []Coord) error) error {
	groups, err := groupAxes(axes)
	if err != nil {
		return err
	}
	switch {
	case maxPoints == 0:
		maxPoints = DefaultMaxPoints
	case maxPoints < 1 || maxPoints > HardMaxPoints:
		return fmt.Errorf("sweep: max_points %d out of range [1, %d]", maxPoints, HardMaxPoints)
	}
	total := 1
	for _, gr := range groups {
		total *= gr.length
		if total > maxPoints {
			return fmt.Errorf("sweep: grid expands past the %d-point bound", maxPoints)
		}
	}

	baseJSON, err := json.Marshal(base)
	if err != nil {
		return fmt.Errorf("sweep: marshal base spec: %w", err)
	}

	odo := make([]int, len(groups))
	for idx := 0; idx < total; idx++ {
		var doc map[string]any
		if err := json.Unmarshal(baseJSON, &doc); err != nil {
			return fmt.Errorf("sweep: base spec: %w", err)
		}
		coords := make([]Coord, 0, len(axes))
		for gi, gr := range groups {
			for _, ai := range gr.axes {
				ax := axes[ai]
				val := ax.Values[odo[gi]]
				if err := applyPath(doc, ax.Path, val); err != nil {
					return err
				}
				coords = append(coords, Coord{Path: ax.Path, Value: coordValue(val)})
			}
		}
		patched, err := json.Marshal(doc)
		if err != nil {
			return fmt.Errorf("sweep: point %d: %w", idx, err)
		}
		if err := decode(idx, patched, coords); err != nil {
			return err
		}

		// Advance the odometer: last group fastest.
		for gi := len(groups) - 1; gi >= 0; gi-- {
			odo[gi]++
			if odo[gi] < groups[gi].length {
				break
			}
			odo[gi] = 0
		}
	}
	return nil
}

// Expand materializes the grid: every combination of axis values
// applied to the base spec, strictly decoded, validated and
// normalized. The expansion is row-major (the last group advances
// fastest) and bounded by MaxPoints.
func (g Grid) Expand() ([]Point, error) {
	var points []Point
	err := ExpandAxes(g.Base, g.Axes, g.MaxPoints, func(idx int, patched []byte, coords []Coord) error {
		var spec scenario.Spec
		dec := json.NewDecoder(bytes.NewReader(patched))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return fmt.Errorf("sweep: point %d (%s): %w", idx, DescribeCoords(coords), err)
		}
		norm, err := spec.Normalize()
		if err != nil {
			return fmt.Errorf("sweep: point %d (%s): %w", idx, DescribeCoords(coords), err)
		}
		points = append(points, Point{Index: idx, Spec: norm, Coords: coords})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// DescribeCoords renders an axis assignment for error messages
// ("topology.policy=first-fit, synthetic.rate_hz=0.1").
func DescribeCoords(coords []Coord) string {
	parts := make([]string, len(coords))
	for i, c := range coords {
		parts[i] = c.Path + "=" + c.Value
	}
	return strings.Join(parts, ", ")
}

// ID returns the sweep's content identity: "sweep:" plus a hash over
// the name and, per expanded point, the canonical spec and the
// rendered axis assignment. The coords are part of identity because
// they are part of the rendered table — two sweeps with equal IDs
// are guaranteed byte-identical output, which is what the serving
// cache requires of a key. (The flip side: re-spelling an axis value
// — "4X4" vs "4x4" — changes the rendered coords and therefore the
// identity, even though the underlying specs normalize identically.)
func ID(name string, points []Point) string {
	h := sha256.New()
	h.Write([]byte(name))
	for _, p := range points {
		h.Write([]byte{0})
		h.Write([]byte(p.Spec.Key()))
		for _, c := range p.Coords {
			h.Write([]byte{1})
			h.Write([]byte(c.Path))
			h.Write([]byte{2})
			h.Write([]byte(c.Value))
		}
	}
	return "sweep:" + hex.EncodeToString(h.Sum(nil)[:6])
}

// Cost derives the sweep's admission cost class from its points: a
// sweep is never cheap (it must not starve the cheap registry
// artifacts it shares the serving layer with), and it is heavy when
// it is large or contains any heavy point.
func Cost(points []Point) string {
	if len(points) > 32 {
		return scenario.CostHeavy
	}
	for _, p := range points {
		if p.Spec.Cost() == scenario.CostHeavy {
			return scenario.CostHeavy
		}
	}
	return scenario.CostModerate
}

// Title returns the sweep's human label.
func (g Grid) Title() string {
	if g.Name != "" {
		return g.Name
	}
	paths := make([]string, len(g.Axes))
	for i, ax := range g.Axes {
		paths[i] = ax.Path
	}
	return "sweep over " + strings.Join(paths, " × ")
}
