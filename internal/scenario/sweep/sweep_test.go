package sweep

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"

	"netpart/internal/scenario"
)

func torusBase(pattern string) scenario.Spec {
	return scenario.Spec{
		Topology: scenario.TopologySpec{Kind: scenario.KindTorus, Shape: "4x4"},
		Workload: scenario.WorkloadSpec{Pattern: pattern, Bytes: 1e9},
	}
}

func TestExpandCartesian(t *testing.T) {
	g := Grid{
		Base: torusBase(scenario.PatternPairing),
		Axes: []Axis{
			{Path: "topology.shape", Values: Strings("4x4", "8x4", "8x8")},
			{Path: "workload.pattern", Values: Strings("pairing", "neighbor")},
		},
	}
	pts, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("%d points, want 6", len(pts))
	}
	// Row-major: last axis fastest.
	if pts[0].Spec.Topology.Shape != "4x4" || pts[0].Spec.Workload.Pattern != "pairing" {
		t.Errorf("point 0: %+v", pts[0].Spec)
	}
	if pts[1].Spec.Topology.Shape != "4x4" || pts[1].Spec.Workload.Pattern != "neighbor" {
		t.Errorf("point 1: %+v", pts[1].Spec)
	}
	if pts[5].Spec.Topology.Shape != "8x8" || pts[5].Spec.Workload.Pattern != "neighbor" {
		t.Errorf("point 5: %+v", pts[5].Spec)
	}
	for i, p := range pts {
		if p.Index != i {
			t.Errorf("point %d carries index %d", i, p.Index)
		}
		if len(p.Coords) != 2 || p.Coords[0].Path != "topology.shape" {
			t.Errorf("point %d coords %+v", i, p.Coords)
		}
	}
}

func TestExpandZip(t *testing.T) {
	g := Grid{
		Base: torusBase(scenario.PatternPermutation),
		Axes: []Axis{
			{Path: "topology.shape", Values: Strings("4x4", "8x8"), Zip: "size"},
			{Path: "workload.seed", Values: Ints(1, 2), Zip: "size"},
			{Path: "workload.pattern", Values: Strings("permutation", "pairing")},
		},
	}
	pts, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Zipped group (2) × pattern (2) = 4, not 8.
	if len(pts) != 4 {
		t.Fatalf("%d points, want 4", len(pts))
	}
	// Zip advances shape and seed together (seed survives only on
	// permutation points; pairing normalization zeroes it).
	if pts[0].Spec.Topology.Shape != "4x4" || pts[0].Spec.Workload.Seed != 1 {
		t.Errorf("point 0: %+v", pts[0].Spec)
	}
	if pts[2].Spec.Topology.Shape != "8x8" || pts[2].Spec.Workload.Seed != 2 {
		t.Errorf("point 2: %+v", pts[2].Spec)
	}

	g.Axes[1].Values = Ints(1, 2, 3)
	if _, err := g.Expand(); err == nil || !strings.Contains(err.Error(), "zip") {
		t.Errorf("length-mismatched zip accepted: %v", err)
	}
}

func TestExpandRejections(t *testing.T) {
	cases := []struct {
		name string
		grid Grid
		want string
	}{
		{"empty path", Grid{Base: torusBase("pairing"), Axes: []Axis{{Path: " ", Values: Ints(1)}}}, "empty path"},
		{"no values", Grid{Base: torusBase("pairing"), Axes: []Axis{{Path: "workload.seed"}}}, "no values"},
		{"unknown field", Grid{Base: torusBase("pairing"), Axes: []Axis{{Path: "workload.burst", Values: Ints(1)}}}, "unknown field"},
		{"type mismatch", Grid{Base: torusBase("pairing"), Axes: []Axis{{Path: "workload.bytes", Values: Strings("lots")}}}, "cannot unmarshal"},
		{"invalid point", Grid{Base: torusBase("pairing"), Axes: []Axis{{Path: "topology.shape", Values: Strings("4x4", "0x4")}}}, "shape"},
		{"path through scalar", Grid{Base: torusBase("pairing"), Axes: []Axis{{Path: "workload.pattern.fast", Values: Ints(1)}}}, "non-object"},
		{"too many points", Grid{Base: torusBase("pairing"), MaxPoints: 3, Axes: []Axis{{Path: "workload.seed", Values: Ints(1, 2, 3, 4)}}}, "point bound"},
		{"bad max", Grid{Base: torusBase("pairing"), MaxPoints: -1, Axes: []Axis{{Path: "workload.seed", Values: Ints(1)}}}, "max_points"},
	}
	for _, tc := range cases {
		_, err := tc.grid.Expand()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestIDIsContentIdentity(t *testing.T) {
	a := Grid{
		Base: torusBase(scenario.PatternPairing),
		Axes: []Axis{{Path: "topology.shape", Values: Strings("4x4", "8x8")}},
	}
	// Same points, different axis spelling (canonicalized shapes).
	b := Grid{
		Base: torusBase(scenario.PatternPairing),
		Axes: []Axis{{Path: "topology.shape", Values: Strings("4X4", "8X8")}},
	}
	ptsA, err := a.Expand()
	if err != nil {
		t.Fatal(err)
	}
	ptsB, err := b.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Coord values render as submitted (they are part of the output
	// bytes), so re-spelled values change the identity even though the
	// specs normalize identically — the key must cover everything that
	// reaches the result bytes.
	if ptsA[0].Spec.Key() != ptsB[0].Spec.Key() {
		t.Error("canonicalized specs differ")
	}
	if ID(a.Name, ptsA) == ID(b.Name, ptsB) {
		t.Error("re-spelled coords must change the identity (they are rendered in the table)")
	}
	// Declaration mechanics that produce the same points and coords do
	// share an identity: a zipped pair equals its cartesian diagonal.
	zipped := Grid{Base: a.Base, Axes: []Axis{
		{Path: "topology.shape", Values: Strings("4x4", "8x8"), Zip: "z"},
	}}
	ptsZ, err := zipped.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if ID(a.Name, ptsA) != ID(zipped.Name, ptsZ) {
		t.Error("equivalent declarations should share an identity")
	}
	if got := ID(a.Name, ptsA); !strings.HasPrefix(got, "sweep:") || len(got) != len("sweep:")+12 {
		t.Errorf("ID shape %q", got)
	}
	if ID(a.Name, ptsA) != ID(a.Name, ptsA) {
		t.Error("ID not stable")
	}
	if ID("x", ptsA) == ID("y", ptsA) {
		t.Error("name not part of identity")
	}
}

func TestCostDerivation(t *testing.T) {
	small := Grid{
		Base: torusBase(scenario.PatternPairing),
		Axes: []Axis{{Path: "topology.shape", Values: Strings("4x4", "8x8")}},
	}
	pts, err := small.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if c := Cost(pts); c != scenario.CostModerate {
		t.Errorf("small sweep cost %q: sweeps must never be cheap", c)
	}
	many := Grid{
		Base: torusBase(scenario.PatternPairing),
		Axes: []Axis{{Path: "workload.seed", Values: Ints(1, 2)}, {Path: "workload.pattern", Values: Strings("permutation")}},
	}
	many.Axes[0].Values = Ints(make([]int, 40)...)
	for i := range many.Axes[0].Values {
		many.Axes[0].Values[i], _ = json.Marshal(i + 1)
	}
	pts, err = many.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if c := Cost(pts); c != scenario.CostHeavy {
		t.Errorf("40-point sweep cost %q", c)
	}
}

// shapePatternPolicyGrid is the acceptance-criterion grid: machine
// grid shape × workload pattern × allocation policy, 5×5×4 = 100
// points, every point a real (static) partition scenario.
func shapePatternPolicyGrid() Grid {
	return Grid{
		Name: "shape × pattern × policy",
		Base: scenario.Spec{
			Topology: scenario.TopologySpec{Kind: scenario.KindPartition, Machine: "2x2x2x1", Midplanes: 4},
			Workload: scenario.WorkloadSpec{Pattern: scenario.PatternPairing, Bytes: 1e9, Iters: 64},
		},
		Axes: []Axis{
			{Path: "topology.machine", Values: Strings("2x2x2x1", "4x2x2x1", "4x4x2x1", "3x2x2x2", "6x2x2x1")},
			{Path: "workload.pattern", Values: Strings("pairing", "permutation", "neighbor", "longest-dim", "adversarial")},
			{Path: "topology.policy", Values: Strings("best-case", "worst-case", "first-fit", "contention-aware")},
		},
	}
}

// fixIters clears the iters knob for non-adversarial points: the base
// spec sets it for the adversarial axis value, and normalization
// rejects it elsewhere — so the grid patches it per pattern instead.
func shapePatternPolicyPoints(t *testing.T) (Grid, []Point) {
	t.Helper()
	g := shapePatternPolicyGrid()
	// iters only applies to adversarial: zip the pattern axis with a
	// matching iters axis.
	g.Base.Workload.Iters = 0
	g.Axes[1].Zip = "pattern"
	g.Axes = append(g.Axes, Axis{Path: "workload.iters", Values: Ints(0, 0, 0, 0, 64), Zip: "pattern"})
	pts, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 100 {
		t.Fatalf("%d points, want 100", len(pts))
	}
	return g, pts
}

// TestHundredPointSweepDeterministicAcrossWorkers is the acceptance
// criterion: a 100-point (shape × pattern × policy) sweep runs
// sharded on the worker pool and its full result — points, outcomes,
// rendered table — is byte-identical at every worker count and shard
// size.
func TestHundredPointSweepDeterministicAcrossWorkers(t *testing.T) {
	g, pts := shapePatternPolicyPoints(t)

	runWith := func(workers, shardSize int) ([]byte, *Result) {
		t.Helper()
		res, err := RunPoints(context.Background(), g, pts, Options{Workers: workers, ShardSize: shardSize})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b, res
	}

	seqBytes, seq := runWith(1, 1)
	if seq.Failed != 0 {
		t.Fatalf("%d failed points", seq.Failed)
	}
	for _, cfg := range [][2]int{{4, 0}, {8, 3}, {16, 16}} {
		b, _ := runWith(cfg[0], cfg[1])
		if string(b) != string(seqBytes) {
			t.Fatalf("workers=%d shard=%d: result bytes differ from sequential", cfg[0], cfg[1])
		}
	}
	if tbl := seq.Table(g.Title()); tbl.Render() == "" || len(tbl.Rows) != 100 {
		t.Fatal("table rendering broken")
	}
}

// TestSweepStreamsEveryPoint: OnPoint sees each of the 100 points
// exactly once and OnProgress is monotone to completion, concurrently
// with the pool (exercised under -race by CI).
func TestSweepStreamsEveryPoint(t *testing.T) {
	g, pts := shapePatternPolicyPoints(t)
	var mu sync.Mutex
	seen := map[int]int{}
	lastDone := 0
	res, err := RunPoints(context.Background(), g, pts, Options{
		Workers: 8,
		OnPoint: func(p PointResult) {
			mu.Lock()
			seen[p.Index]++
			mu.Unlock()
		},
		OnProgress: func(done, total int) {
			mu.Lock()
			if done != lastDone+1 || total != 100 {
				t.Errorf("progress %d/%d after %d", done, total, lastDone)
			}
			lastDone = done
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 100 || lastDone != 100 {
		t.Fatalf("streamed %d points, progress %d", len(seen), lastDone)
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("point %d streamed %d times", idx, n)
		}
	}
	if res.Failed != 0 {
		t.Fatalf("%d failed", res.Failed)
	}
}

// TestSweepPartialFailureIsolation: a point that fails at run time
// (predefined policy on a machine without a predefined list) is
// recorded and the rest of the sweep completes.
func TestSweepPartialFailureIsolation(t *testing.T) {
	g := Grid{
		Base: scenario.Spec{
			Topology: scenario.TopologySpec{Kind: scenario.KindPartition, Machine: "juqueen", Midplanes: 4},
			Workload: scenario.WorkloadSpec{Pattern: scenario.PatternPairing, Bytes: 1e9},
		},
		Axes: []Axis{
			{Path: "topology.policy", Values: Strings("best-case", "predefined", "worst-case")},
		},
	}
	res, err := Run(context.Background(), g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 {
		t.Fatalf("failed = %d, want 1", res.Failed)
	}
	if res.Points[1].Err == "" || !strings.Contains(res.Points[1].Err, "predefined") {
		t.Errorf("point 1: %+v", res.Points[1])
	}
	if res.Points[0].Outcome == nil || res.Points[2].Outcome == nil {
		t.Error("healthy points did not complete")
	}
	tbl := res.Table(g.Title())
	if !strings.Contains(tbl.Render(), "predefined") {
		t.Error("error not rendered in table")
	}
}

// TestSweepCancellation: cancellation mid-sweep aborts with ctx.Err
// rather than a partial result.
func TestSweepCancellation(t *testing.T) {
	g, pts := shapePatternPolicyPoints(t)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	_, err := RunPoints(ctx, g, pts, Options{
		Workers: 2,
		OnPoint: func(PointResult) {
			n++
			if n == 5 {
				cancel()
			}
		},
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want canceled", err)
	}
}

// TestRunPointsEmptyAndRerun: zero-point grids work, and re-running
// identical points yields deeply equal results (the engine holds no
// hidden state).
func TestRunPointsEmptyAndRerun(t *testing.T) {
	g := Grid{Base: torusBase(scenario.PatternPairing), Axes: []Axis{{Path: "topology.shape", Values: Strings("4x4")}}}
	pts, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunPoints(context.Background(), g, pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPoints(context.Background(), g, pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("rerun differs")
	}
	empty, err := RunPoints(context.Background(), g, nil, Options{})
	if err != nil || len(empty.Points) != 0 {
		t.Fatalf("empty sweep: %v %+v", err, empty)
	}
}
