package sweep

import (
	"context"
	"fmt"
	"sync"

	"netpart/internal/experiments"
	"netpart/internal/scenario"
	"netpart/internal/tabulate"
)

// PointResult is one executed grid point. Exactly one of Outcome and
// Err is set: a point that fails at run time (an infeasible policy, a
// disconnected topology) is isolated — its error is recorded and the
// sweep continues.
type PointResult struct {
	Index   int               `json:"index"`
	Coords  []Coord           `json:"coords"`
	Outcome *scenario.Outcome `json:"outcome,omitempty"`
	Err     string            `json:"error,omitempty"`
}

// Result is a completed sweep: every point in index order.
type Result struct {
	ID        string        `json:"id"`
	Name      string        `json:"name,omitempty"`
	AxisPaths []string      `json:"axis_paths"`
	Points    []PointResult `json:"points"`
	Failed    int           `json:"failed"`
}

// Options tunes a sweep execution.
type Options struct {
	// Workers bounds the worker pool (0 = runnable CPUs, 1 =
	// sequential). Output is byte-identical at any pool size.
	Workers int
	// ShardSize is the number of consecutive points one pool unit
	// executes (0 = derived from the point count and pool size).
	// Sharding amortizes pool dispatch for large grids of cheap
	// points while keeping enough shards to balance skewed costs.
	ShardSize int
	// OnPoint, when non-nil, receives every completed point in
	// completion order (not index order). Calls are serialized.
	OnPoint func(PointResult)
	// OnProgress, when non-nil, receives (completedPoints, total)
	// after every point. Calls are serialized and monotone.
	OnProgress func(done, total int)
	// RunPoint, when non-nil, replaces scenario.Run as the per-point
	// executor — the seam a distributed coordinator uses to dispatch
	// points to worker daemons. It must be byte-equivalent to
	// scenario.Run for the same spec (including error strings), or the
	// sweep result stops being deterministic.
	RunPoint func(ctx context.Context, spec scenario.Spec) (*scenario.Outcome, error)
}

// shardSizeFor balances dispatch overhead against skew: aim for ~8
// shards per worker, at least 1 and at most 16 points per shard.
func shardSizeFor(points, workers int) int {
	if workers < 1 {
		workers = 1
	}
	size := points / (8 * workers)
	if size < 1 {
		return 1
	}
	if size > 16 {
		return 16
	}
	return size
}

// Run expands the grid and executes it. Equivalent to Expand followed
// by RunPoints.
func Run(ctx context.Context, g Grid, opts Options) (*Result, error) {
	points, err := g.Expand()
	if err != nil {
		return nil, err
	}
	return RunPoints(ctx, g, points, opts)
}

// RunPoints executes pre-expanded grid points, sharded onto the
// experiment worker-pool driver. Point failures are isolated into
// PointResult.Err; only context cancellation aborts the sweep.
// Results land in index-addressed slots, so the returned Result is
// byte-deterministic for a given grid regardless of worker count or
// shard size.
func RunPoints(ctx context.Context, g Grid, points []Point, opts Options) (*Result, error) {
	n := len(points)
	res := &Result{
		ID:     ID(g.Name, points),
		Name:   g.Name,
		Points: make([]PointResult, n),
	}
	for _, ax := range g.Axes {
		res.AxisPaths = append(res.AxisPaths, ax.Path)
	}
	if n == 0 {
		return res, nil
	}

	runPoint := opts.RunPoint
	if runPoint == nil {
		runPoint = func(ctx context.Context, spec scenario.Spec) (*scenario.Outcome, error) {
			return scenario.Run(ctx, spec)
		}
	}

	cfg := experiments.Config{Workers: opts.Workers}
	shardSize := opts.ShardSize
	if shardSize <= 0 {
		shardSize = shardSizeFor(n, cfg.ResolvedWorkers())
	}
	shards := (n + shardSize - 1) / shardSize

	var mu sync.Mutex
	done := 0
	err := cfg.ForEach(ctx, shards, func(si int) error {
		lo, hi := si*shardSize, (si+1)*shardSize
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			pr := PointResult{Index: i, Coords: points[i].Coords}
			out, err := runPoint(ctx, points[i].Spec)
			switch {
			case err != nil && ctx.Err() != nil:
				return ctx.Err()
			case err != nil:
				pr.Err = err.Error()
			default:
				pr.Outcome = out
			}
			res.Points[i] = pr

			mu.Lock()
			done++
			d := done
			if opts.OnPoint != nil {
				opts.OnPoint(pr)
			}
			if opts.OnProgress != nil {
				opts.OnProgress(d, n)
			}
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range res.Points {
		if res.Points[i].Err != "" {
			res.Failed++
		}
	}
	return res, nil
}

// Table renders the sweep as one row per point, in index order, with
// the axis assignment followed by the headline metrics. The rendering
// is byte-deterministic.
func (r *Result) Table(title string) tabulate.Table {
	headers := []string{"#"}
	headers = append(headers, r.AxisPaths...)
	headers = append(headers, "vertices", "demands", "geometry", "bisect BW",
		"ideal (s)", "static (s)", "contention", "sim (s)", "Δstatic", "error")
	t := tabulate.Table{Title: title, Headers: headers}
	for _, p := range r.Points {
		row := make([]any, 0, len(headers))
		row = append(row, p.Index)
		// Coords follow the axis declaration order for every point.
		byPath := map[string]string{}
		for _, c := range p.Coords {
			byPath[c.Path] = c.Value
		}
		for _, path := range r.AxisPaths {
			row = append(row, byPath[path])
		}
		if o := p.Outcome; o != nil {
			geo, bw := "-", "-"
			if o.Geometry != "" {
				geo = o.Geometry
				bw = fmt.Sprintf("%d", o.BisectionBW)
			}
			sim := "-"
			if o.Spec.Sim.Enabled {
				sim = tabulate.FormatFloat(o.SimSec)
			}
			// Δstatic is the degradation vs the healthy baseline of the
			// same point; "-" for points without a failure model.
			dstatic := "-"
			if o.Healthy != nil {
				dstatic = tabulate.FormatFloat(o.Healthy.DegradationX)
			}
			row = append(row, o.Vertices, o.Demands, geo, bw,
				o.IdealSec, o.StaticSec, o.ContentionX, sim, dstatic, "")
		} else {
			row = append(row, "-", "-", "-", "-", "-", "-", "-", "-", "-", p.Err)
		}
		t.AddRow(row...)
	}
	return t
}
