package scenario

import (
	"fmt"
	"strings"

	"netpart/internal/bgq"
	"netpart/internal/experiments"
	"netpart/internal/faults"
	"netpart/internal/graph"
	"netpart/internal/route"
	"netpart/internal/sched"
	"netpart/internal/topo"
	"netpart/internal/torus"
)

// network is a resolved topology: exactly one routing backend is set
// (router for DOR on a torus, gnet for min-hop on an explicit graph).
type network struct {
	label    string
	vertices int
	edges    int // undirected edges

	router *route.Router // DOR backend
	tor    *torus.Torus

	gnet *graphNet // min-hop backend

	// partition metadata (KindPartition only)
	partition *bgq.Partition

	// Resolved failure state. faultLinks are the affected undirected
	// links; faultMidplanes the blocked machine cells; faultFactor the
	// capacity multiplier (0 = removed). The DOR backend additionally
	// materializes per-directed-link views (the graph backend applies
	// failures inside graphNet's BFS and capacity vectors).
	faultLinks     []int
	faultMidplanes []int
	faultFactor    float64
	dorFailed      []bool    // per directed link: removed from routing
	dorCap         []float64 // per directed link: capacity multiplier
}

// catalogMachine reports whether name is a built-in machine.
func catalogMachine(name string) bool {
	switch name {
	case "mira", "juqueen", "sequoia", "juqueen48", "juqueen54":
		return true
	}
	return false
}

// CanonicalMachine canonicalizes a machine reference — a catalog name
// (lower-cased) or an explicit midplane grid shape (re-rendered, so
// "4X4x 2x2" and "4x4x2x2" share cache identity). It is the seam
// sibling subsystems (the trace simulator) reuse so every layer
// resolves machines the same way.
func CanonicalMachine(name string) (string, error) {
	m := strings.ToLower(strings.TrimSpace(name))
	if catalogMachine(m) {
		return m, nil
	}
	sh, err := torus.ParseShape(m)
	if err != nil {
		return "", fmt.Errorf("scenario: machine %q is neither a catalog name (mira, juqueen, sequoia, juqueen48, juqueen54) nor a midplane grid shape: %w", name, err)
	}
	return sh.String(), nil
}

// ResolveMachine resolves a canonical machine reference to its model:
// the catalog machine, or a hypothetical one built from an explicit
// midplane grid shape.
func ResolveMachine(name string) (*bgq.Machine, error) { return resolveMachine(name) }

// resolveMachine returns the catalog machine or a hypothetical one
// built from an explicit midplane grid shape.
func resolveMachine(name string) (*bgq.Machine, error) {
	if catalogMachine(name) {
		return experiments.DefaultMachines(name)
	}
	sh, err := torus.ParseShape(name)
	if err != nil {
		return nil, fmt.Errorf("scenario: machine %q: %w", name, err)
	}
	m, err := bgq.NewMachine("custom "+sh.String(), sh)
	if err != nil {
		return nil, fmt.Errorf("scenario: machine %q: %w", name, err)
	}
	return m, nil
}

// resolvePartition applies the spec's allocation policy to the
// machine: the bgq geometry policies answer directly; the sched
// placement policies place a single contention-bound job on the empty
// machine (driving the same candidate enumeration and Choose path the
// scheduler uses). blocked lists failed midplane cells the candidate
// enumeration must avoid (sched policies only; Normalize rejects
// midplane failures for the bgq geometry policies, which pick a
// geometry without a location).
func resolvePartition(t TopologySpec, blocked []int) (*bgq.Machine, bgq.Partition, error) {
	m, err := resolveMachine(t.Machine)
	if err != nil {
		return nil, bgq.Partition{}, err
	}
	if t.Midplanes > m.Midplanes() {
		return nil, bgq.Partition{}, fmt.Errorf("scenario: %d midplanes exceed %s's %d", t.Midplanes, m.Name, m.Midplanes())
	}
	switch t.Policy {
	case PolicyPredefined, PolicyBestCase, PolicyWorstCase:
		var pol bgq.Policy
		switch t.Policy {
		case PolicyPredefined:
			pol = bgq.PredefinedPolicy{}
		case PolicyBestCase:
			pol = bgq.BestCasePolicy{}
		default:
			pol = bgq.WorstCasePolicy{}
		}
		p, err := pol.Select(m, t.Midplanes)
		if err != nil {
			return nil, bgq.Partition{}, fmt.Errorf("scenario: policy %s: %w", t.Policy, err)
		}
		return m, p, nil
	case PolicyFirstFit, PolicyBestBisection, PolicyContentionAware:
		pol, ok := sched.PolicyByName(t.Policy)
		if !ok {
			// The case arms above are exactly the sched spellings;
			// unreachable.
			return nil, bgq.Partition{}, fmt.Errorf("scenario: unknown sched policy %q", t.Policy)
		}
		grid := sched.NewGrid(m)
		if len(blocked) > 0 {
			if err := grid.BlockCells(blocked); err != nil {
				return nil, bgq.Partition{}, fmt.Errorf("scenario: %w", err)
			}
		}
		cands := grid.Candidates(t.Midplanes)
		if len(cands) == 0 {
			if len(blocked) > 0 {
				return nil, bgq.Partition{}, fmt.Errorf("scenario: no %d-midplane cuboid fits %s with %d failed midplanes", t.Midplanes, m.Name, len(blocked))
			}
			return nil, bgq.Partition{}, fmt.Errorf("scenario: no %d-midplane cuboid fits %s", t.Midplanes, m.Name)
		}
		// The single job is declared contention-bound: that is the
		// regime the scenario measures, and it is what distinguishes
		// contention-aware from first-fit.
		job := sched.Job{Midplanes: t.Midplanes, BaseDurationSec: 1, ContentionBound: true}
		return m, pol.Choose(job, cands).Partition(), nil
	default:
		return nil, bgq.Partition{}, fmt.Errorf("scenario: unknown policy %q", t.Policy)
	}
}

// buildGraph constructs the explicit graph for the graph-family kinds
// (and, for min-hop routing, the torus family too).
func buildGraph(t TopologySpec) (*graph.Graph, string, error) {
	switch t.Kind {
	case KindMesh:
		sh, err := torus.ParseShape(t.Shape)
		if err != nil {
			return nil, "", err
		}
		g, err := topo.Mesh2D(sh[0], sh[1])
		return g, "mesh " + sh.String(), err
	case KindClique:
		sh, err := torus.ParseShape(t.Shape)
		if err != nil {
			return nil, "", err
		}
		var g *graph.Graph
		if len(t.Weights) > 0 {
			g, err = topo.WeightedCliqueProduct(sh, t.Weights)
		} else {
			g, err = topo.CliqueProduct(sh)
		}
		return g, "clique product " + sh.String(), err
	case KindDragonfly:
		sh, err := torus.ParseShape(t.GroupShape)
		if err != nil {
			return nil, "", err
		}
		g, err := topo.Dragonfly(topo.AriesConfig(t.Groups, sh))
		return g, fmt.Sprintf("dragonfly %d groups of %s", t.Groups, sh), err
	case KindHypercube:
		g, err := topo.Hypercube(t.Dim)
		return g, fmt.Sprintf("hypercube Q%d", t.Dim), err
	case KindTorus:
		tor, err := torus.New(mustShape(t.Shape)...)
		if err != nil {
			return nil, "", err
		}
		return topo.FromTorus(tor), "torus " + t.Shape, nil
	default:
		return nil, "", fmt.Errorf("scenario: kind %q has no graph form", t.Kind)
	}
}

// mustShape parses a shape that Normalize already validated.
func mustShape(s string) torus.Shape {
	sh, err := torus.ParseShape(s)
	if err != nil {
		panic(fmt.Sprintf("scenario: shape %q survived normalization: %v", s, err))
	}
	return sh
}

// resolve builds the routing backend for a normalized spec and
// applies its failure model: failed midplanes constrain the candidate
// enumeration before the partition is chosen; failed/degraded links
// are resolved against the backend's deterministic link universe.
func (s Spec) resolve() (*network, error) {
	t := s.Topology

	// Midplane-scoped failures block cells before placement.
	var blockedCells []int
	if f := s.Failures; f != nil && f.MidplaneScoped() {
		m, err := resolveMachine(t.Machine)
		if err != nil {
			return nil, err
		}
		blockedCells, err = f.ResolveMidplanes(m.Grid)
		if err != nil {
			return nil, err
		}
	}

	var net *network
	if s.Routing == RoutingDOR {
		var tor *torus.Torus
		var err error
		var label string
		var part *bgq.Partition
		switch t.Kind {
		case KindTorus:
			tor, err = torus.New(mustShape(t.Shape)...)
			label = "torus " + t.Shape
		case KindHypercube:
			dims := make([]int, t.Dim)
			for i := range dims {
				dims[i] = 2
			}
			tor, err = torus.New(dims...)
			label = fmt.Sprintf("hypercube Q%d", t.Dim)
		case KindPartition:
			var p bgq.Partition
			_, p, err = resolvePartition(t, blockedCells)
			if err == nil {
				part = &p
				tor, err = torus.New(p.NodeShape()...)
				label = fmt.Sprintf("partition %s of %s", p, t.Machine)
			}
		default:
			err = fmt.Errorf("scenario: routing dor on non-torus kind %q", t.Kind)
		}
		if err != nil {
			return nil, err
		}
		net = &network{
			label:     label,
			vertices:  tor.NumVertices(),
			edges:     tor.NumEdges(),
			router:    route.NewRouter(tor),
			tor:       tor,
			partition: part,
		}
	} else {
		var g *graph.Graph
		var label string
		var part *bgq.Partition
		if t.Kind == KindPartition {
			// Resolve the policy once; the explicit graph is the node-level
			// torus of the selected partition.
			_, p, err := resolvePartition(t, blockedCells)
			if err != nil {
				return nil, err
			}
			tor, err := torus.New(p.NodeShape()...)
			if err != nil {
				return nil, err
			}
			g, label, part = topo.FromTorus(tor), fmt.Sprintf("partition %s of %s", p, t.Machine), &p
		} else {
			var err error
			g, label, err = buildGraph(t)
			if err != nil {
				return nil, err
			}
		}
		gn := newGraphNet(g)
		net = &network{
			label:     label,
			vertices:  g.N(),
			edges:     gn.numEdges,
			gnet:      gn,
			partition: part,
		}
	}

	if f := s.Failures; f != nil {
		net.faultFactor = f.Factor
		net.faultMidplanes = blockedCells
		if f.LinkScoped() {
			if err := net.applyLinkFaults(*f); err != nil {
				return nil, err
			}
		}
	}
	return net, nil
}

// applyLinkFaults resolves a link-scoped failure spec against the
// backend's link universe and materializes its effect: factor 0
// removes the affected links from routing; a factor in (0,1) scales
// their capacity.
func (n *network) applyLinkFaults(f faults.Spec) error {
	if n.gnet != nil {
		affected, err := f.ResolveLinks(faults.Universe{
			NumVertices: n.gnet.n,
			EndA:        n.gnet.endA,
			EndB:        n.gnet.endB,
		})
		if err != nil {
			return err
		}
		n.faultLinks = affected
		n.gnet.applyFaults(affected, f.Factor)
		return nil
	}

	u, wireDim := torusUniverse(n.tor)
	affected, err := f.ResolveLinks(u)
	if err != nil {
		return err
	}
	n.faultLinks = affected
	if len(affected) == 0 || f.Factor == 1 {
		return nil
	}
	r := n.router
	dims := n.tor.Dims()
	mark := func(l int, apply func(int)) {
		v, w, d := int(u.EndA[l]), int(u.EndB[l]), wireDim[l]
		apply(r.LinkID(v, d, route.Plus))
		if dims[d] == 2 {
			// Length-2 rings route both directions through Plus links.
			apply(r.LinkID(w, d, route.Plus))
		} else {
			apply(r.LinkID(w, d, route.Minus))
		}
	}
	if f.Factor == 0 {
		n.dorFailed = make([]bool, r.NumLinks())
		for _, l := range affected {
			mark(l, func(id int) { n.dorFailed[id] = true })
		}
	} else {
		n.dorCap = make([]float64, r.NumLinks())
		for i := range n.dorCap {
			n.dorCap[i] = 1
		}
		for _, l := range affected {
			mark(l, func(id int) { n.dorCap[id] = f.Factor })
		}
	}
	return nil
}

// torusUniverse enumerates the undirected edges of a torus as the
// fault link universe, in deterministic order: vertices ascending,
// dimensions ascending, one entry per physical wire (for length-2
// rings only the coordinate-0 endpoint emits the wire). The parallel
// wireDim slice records each wire's dimension for directed-link
// translation.
func torusUniverse(tor *torus.Torus) (faults.Universe, []int) {
	dims := tor.Dims()
	n := tor.NumVertices()
	u := faults.Universe{NumVertices: n}
	wireDim := make([]int, 0, tor.NumEdges())
	coord := make(torus.Coord, len(dims))
	next := make(torus.Coord, len(dims))
	for v := 0; v < n; v++ {
		coord = tor.CoordOf(v, coord)
		for d, a := range dims {
			if a <= 1 || (a == 2 && coord[d] == 1) {
				continue
			}
			copy(next, coord)
			next[d] = (coord[d] + 1) % a
			u.EndA = append(u.EndA, int32(v))
			u.EndB = append(u.EndB, int32(tor.Index(next)))
			wireDim = append(wireDim, d)
		}
	}
	return u, wireDim
}

// countEdges returns the undirected edge count of a normalized
// topology without building its routing backend (torus family) or by
// building the cheap explicit graph (graph family). It backs the
// explicit-link-ID bound check in Normalize.
func countEdges(t TopologySpec) (int, error) {
	switch t.Kind {
	case KindTorus:
		tor, err := torus.New(mustShape(t.Shape)...)
		if err != nil {
			return 0, err
		}
		return tor.NumEdges(), nil
	case KindHypercube:
		dims := make([]int, t.Dim)
		for i := range dims {
			dims[i] = 2
		}
		tor, err := torus.New(dims...)
		if err != nil {
			return 0, err
		}
		return tor.NumEdges(), nil
	default:
		g, _, err := buildGraph(t)
		if err != nil {
			return 0, err
		}
		return g.NumEdges(), nil
	}
}
