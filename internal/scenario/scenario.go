// Package scenario is the declarative experiment model that opens the
// evaluation beyond the paper's 14 frozen artifacts: a Spec composes a
// topology (torus family or explicit graph family), a traffic workload
// (the internal/workload generators plus the adversarial hill climb),
// a routing discipline (deterministic dimension-ordered routing on
// tori, deterministic min-hop routing on explicit graphs) and — for
// machine-partition topologies — an allocation policy (the bgq
// geometry policies and the sched placement policies) into one
// runnable experiment.
//
// Specs are wire-friendly (plain JSON), validated and *normalized*:
// Normalize fills defaults, canonicalizes shape strings and zeroes
// every knob that cannot affect the result, so a normalized Spec's
// canonical JSON (Key) is a true result identity — two requests with
// equal Keys are guaranteed byte-identical outcomes, which is what
// lets the serving layer's coalescing cache treat user-defined
// scenarios exactly like registry experiments. Running a Spec is
// byte-deterministic: randomized workloads derive from the Spec's
// seed, and every loop iterates in index order.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"netpart/internal/bgq"
	"netpart/internal/faults"
	"netpart/internal/torus"
	"netpart/internal/workload"
)

// Topology kinds.
const (
	// KindTorus is a D-dimensional torus given by Shape, routed with
	// deterministic dimension-ordered routing.
	KindTorus = "torus"
	// KindHypercube is the D-dimensional hypercube Q_D (Dim), i.e.
	// the torus [2]^D, routed with DOR.
	KindHypercube = "hypercube"
	// KindMesh is the 2D mesh without wrap-around (Shape "RxC"),
	// routed min-hop on the explicit graph.
	KindMesh = "mesh"
	// KindClique is the (optionally weighted) clique product — the
	// HyperX topology — given by Shape and Weights, routed min-hop.
	KindClique = "clique"
	// KindDragonfly is the Cray XC style Dragonfly (Groups groups of
	// GroupShape clique products, Aries link weights), routed min-hop.
	KindDragonfly = "dragonfly"
	// KindPartition is a Blue Gene/Q machine partition: Machine (a
	// catalog name or an explicit midplane grid "AxBxCxD"), Midplanes
	// and Policy resolve to a partition geometry whose node-level
	// torus is routed with DOR.
	KindPartition = "partition"
)

// Workload patterns.
const (
	PatternPairing     = "pairing"     // furthest-node bisection pairing (§4.1)
	PatternPermutation = "permutation" // seeded uniform random permutation
	PatternAllToAll    = "all-to-all"  // every ordered pair (quadratic)
	PatternNeighbor    = "neighbor"    // nearest-neighbour halo exchange
	PatternLongestDim  = "longest-dim" // half-shift along the longest dimension (torus only)
	PatternAdversarial = "adversarial" // near-worst-case hill climb (torus only)
)

// Allocation policies for KindPartition.
const (
	PolicyPredefined      = "predefined"       // the machine's predefined list (Mira)
	PolicyBestCase        = "best-case"        // maximal internal bisection (the paper's proposal)
	PolicyWorstCase       = "worst-case"       // minimal internal bisection (adversarial baseline)
	PolicyFirstFit        = "first-fit"        // sched first-fit placement on an empty machine
	PolicyBestBisection   = "best-bisection"   // sched best-bisection placement
	PolicyContentionAware = "contention-aware" // sched contention-aware placement (job declared contention-bound)
)

// Routing disciplines.
const (
	// RoutingDOR is deterministic dimension-ordered routing (torus
	// family only).
	RoutingDOR = "dor"
	// RoutingMinHop is deterministic min-hop (BFS) routing on the
	// explicit graph; available for every kind.
	RoutingMinHop = "minhop"
)

// Defaults filled in by Normalize.
const (
	// DefaultBytes is the per-flow volume when the spec leaves Bytes
	// zero: the paper's §4.1 round volume scale (0.1342 GB ~ 2^27).
	DefaultBytes = float64(1 << 27)
	// DefaultSeed seeds the randomized patterns.
	DefaultSeed = int64(1)
	// DefaultIters bounds the adversarial hill climb.
	DefaultIters = 256
	// DefaultRounds is the simulated round count when Sim is enabled.
	DefaultRounds = 1
)

// Size bounds. The torus family reuses the workload package bound;
// the graph family is tighter because min-hop routing runs one BFS
// per distinct source.
const (
	// MaxTorusVertices bounds DOR-routed scenarios.
	MaxTorusVertices = 1 << 20
	// MaxGraphVertices bounds min-hop-routed scenarios.
	MaxGraphVertices = 1 << 13
	// MaxSimVertices bounds flow-level simulated scenarios.
	MaxSimVertices = 1 << 13
	// MaxSimRounds bounds full-resolution simulated rounds.
	MaxSimRounds = 64
	// MaxIters bounds the adversarial hill climb.
	MaxIters = 1 << 20
)

// Cost classes, mirroring the registry's (the root package converts
// them to netpart.Cost; the string values are identical).
const (
	CostCheap    = "cheap"
	CostModerate = "moderate"
	CostHeavy    = "heavy"
)

// TopologySpec selects and parameterizes the network under test. Only
// the fields of the chosen Kind are meaningful; Normalize zeroes the
// rest so they cannot fragment cache identity.
type TopologySpec struct {
	Kind string `json:"kind"`
	// Shape is the torus / mesh / clique-product shape, "AxBxC".
	Shape string `json:"shape,omitempty"`
	// Dim is the hypercube dimension.
	Dim int `json:"dim,omitempty"`
	// Weights are the per-dimension clique edge weights (uniform 1
	// when empty).
	Weights []float64 `json:"weights,omitempty"`
	// Groups is the Dragonfly group count.
	Groups int `json:"groups,omitempty"`
	// GroupShape is the Dragonfly intra-group clique product, "AxB".
	GroupShape string `json:"group_shape,omitempty"`
	// Machine is the partition host: a catalog name ("mira",
	// "juqueen", "sequoia", "juqueen48", "juqueen54") or an explicit
	// midplane grid shape ("4x4x2x2") for hypothetical machines.
	Machine string `json:"machine,omitempty"`
	// Midplanes is the partition size request.
	Midplanes int `json:"midplanes,omitempty"`
	// Policy selects the partition geometry (default best-case).
	Policy string `json:"policy,omitempty"`
}

// WorkloadSpec selects and parameterizes the traffic pattern.
type WorkloadSpec struct {
	Pattern string `json:"pattern"`
	// Bytes is the per-flow volume (default DefaultBytes).
	Bytes float64 `json:"bytes,omitempty"`
	// Seed drives the randomized patterns (permutation, adversarial).
	Seed int64 `json:"seed,omitempty"`
	// Iters bounds the adversarial hill climb (default DefaultIters).
	Iters int `json:"iters,omitempty"`
}

// SimSpec enables the flow-level max-min fair simulation on top of
// the static bottleneck analysis.
type SimSpec struct {
	Enabled bool `json:"enabled,omitempty"`
	// Rounds repeats the pattern back-to-back (default 1).
	Rounds int `json:"rounds,omitempty"`
}

// Spec is one declarative scenario. The zero value is invalid;
// construct with explicit Topology and Workload and call Normalize.
type Spec struct {
	// Name is an optional human label, reported in titles. It is part
	// of cache identity (it appears in the rendered result).
	Name     string       `json:"name,omitempty"`
	Topology TopologySpec `json:"topology"`
	Workload WorkloadSpec `json:"workload"`
	// Routing is "dor", "minhop" or empty (auto: DOR for the torus
	// family, min-hop for the graph family).
	Routing string  `json:"routing,omitempty"`
	Sim     SimSpec `json:"sim,omitempty"`
	// Failures injects a static failure/degradation model: failed or
	// degraded links (any kind) or failed midplanes (partition kind
	// with a placement policy). Nil means healthy. When set, the
	// outcome also carries the healthy baseline of the same spec and
	// the robustness deltas against it.
	Failures *faults.Spec `json:"failures,omitempty"`
}

// torusFamily reports whether the kind resolves to a torus routed
// with DOR by default.
func torusFamily(kind string) bool {
	return kind == KindTorus || kind == KindHypercube || kind == KindPartition
}

func knownKind(kind string) bool {
	switch kind {
	case KindTorus, KindHypercube, KindMesh, KindClique, KindDragonfly, KindPartition:
		return true
	}
	return false
}

func knownPattern(p string) bool {
	switch p {
	case PatternPairing, PatternPermutation, PatternAllToAll, PatternNeighbor, PatternLongestDim, PatternAdversarial:
		return true
	}
	return false
}

func knownPolicy(p string) bool {
	switch p {
	case PolicyPredefined, PolicyBestCase, PolicyWorstCase, PolicyFirstFit, PolicyBestBisection, PolicyContentionAware:
		return true
	}
	return false
}

// patternRandomized reports whether the pattern consumes the seed.
func patternRandomized(p string) bool {
	return p == PatternPermutation || p == PatternAdversarial
}

// canonShape parses and re-renders a shape string ("4X4x 2" →
// "4x4x2"), so equivalent spellings share cache identity.
func canonShape(field, s string) (string, torus.Shape, error) {
	sh, err := torus.ParseShape(s)
	if err != nil {
		return "", nil, fmt.Errorf("scenario: %s: %w", field, err)
	}
	return sh.String(), sh, nil
}

// Normalize validates the spec and returns its canonical form: kinds,
// patterns and policies lower-cased, shapes re-rendered, defaults
// filled, and every field that cannot affect the result zeroed. The
// returned spec's Key is the scenario's cache identity.
func (s Spec) Normalize() (Spec, error) {
	n := Spec{Name: strings.TrimSpace(s.Name)}
	n.Topology.Kind = strings.ToLower(strings.TrimSpace(s.Topology.Kind))
	n.Workload.Pattern = strings.ToLower(strings.TrimSpace(s.Workload.Pattern))
	n.Routing = strings.ToLower(strings.TrimSpace(s.Routing))

	t := &n.Topology
	if !knownKind(t.Kind) {
		return Spec{}, fmt.Errorf("scenario: unknown topology kind %q (want torus, hypercube, mesh, clique, dragonfly or partition)", s.Topology.Kind)
	}
	if !knownPattern(n.Workload.Pattern) {
		return Spec{}, fmt.Errorf("scenario: unknown workload pattern %q (want pairing, permutation, all-to-all, neighbor, longest-dim or adversarial)", s.Workload.Pattern)
	}

	// Per-kind topology fields; everything else stays zero.
	var vertices int
	switch t.Kind {
	case KindTorus, KindMesh, KindClique:
		shape, sh, err := canonShape(t.Kind+" shape", s.Topology.Shape)
		if err != nil {
			return Spec{}, err
		}
		if t.Kind == KindMesh && len(sh) != 2 {
			return Spec{}, fmt.Errorf("scenario: mesh shape %q must be 2-dimensional (RxC)", s.Topology.Shape)
		}
		t.Shape = shape
		vertices = sh.Volume()
		if t.Kind == KindClique && len(s.Topology.Weights) > 0 {
			if len(s.Topology.Weights) != len(sh) {
				return Spec{}, fmt.Errorf("scenario: %d clique weights for rank-%d shape %s", len(s.Topology.Weights), len(sh), shape)
			}
			for i, w := range s.Topology.Weights {
				if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
					return Spec{}, fmt.Errorf("scenario: clique weight[%d] = %v is not positive and finite", i, w)
				}
			}
			t.Weights = append([]float64(nil), s.Topology.Weights...)
		}
	case KindHypercube:
		if s.Topology.Dim < 1 || s.Topology.Dim > 20 {
			return Spec{}, fmt.Errorf("scenario: hypercube dim %d out of range [1, 20]", s.Topology.Dim)
		}
		t.Dim = s.Topology.Dim
		vertices = 1 << uint(t.Dim)
	case KindDragonfly:
		if s.Topology.Groups < 2 {
			return Spec{}, fmt.Errorf("scenario: dragonfly needs >= 2 groups, have %d", s.Topology.Groups)
		}
		shape, sh, err := canonShape("dragonfly group_shape", s.Topology.GroupShape)
		if err != nil {
			return Spec{}, err
		}
		t.Groups = s.Topology.Groups
		t.GroupShape = shape
		vertices = t.Groups * sh.Volume()
		if gs := sh.Volume(); gs < t.Groups-1 {
			return Spec{}, fmt.Errorf("scenario: dragonfly group %s has %d global ports, cannot reach %d peer groups", shape, gs, t.Groups-1)
		}
	case KindPartition:
		if strings.TrimSpace(s.Topology.Machine) == "" {
			return Spec{}, fmt.Errorf("scenario: partition topology needs a machine (catalog name or midplane grid shape)")
		}
		machine, err := CanonicalMachine(s.Topology.Machine)
		if err != nil {
			return Spec{}, err
		}
		t.Machine = machine
		if s.Topology.Midplanes < 1 {
			return Spec{}, fmt.Errorf("scenario: partition needs midplanes >= 1, have %d", s.Topology.Midplanes)
		}
		t.Midplanes = s.Topology.Midplanes
		t.Policy = strings.ToLower(strings.TrimSpace(s.Topology.Policy))
		if t.Policy == "" {
			t.Policy = PolicyBestCase
		}
		if !knownPolicy(t.Policy) {
			return Spec{}, fmt.Errorf("scenario: unknown policy %q (want predefined, best-case, worst-case, first-fit, best-bisection or contention-aware)", s.Topology.Policy)
		}
		vertices = t.Midplanes * bgq.MidplaneNodes
	}
	if s.Topology.Policy != "" && t.Kind != KindPartition {
		return Spec{}, fmt.Errorf("scenario: policy %q only applies to partition topologies", s.Topology.Policy)
	}

	// Routing: default by family, validate compatibility.
	switch n.Routing {
	case "":
		if torusFamily(t.Kind) {
			n.Routing = RoutingDOR
		} else {
			n.Routing = RoutingMinHop
		}
	case RoutingDOR:
		if !torusFamily(t.Kind) {
			return Spec{}, fmt.Errorf("scenario: routing %q requires a torus-family topology (torus, hypercube, partition), not %s", RoutingDOR, t.Kind)
		}
	case RoutingMinHop:
	default:
		return Spec{}, fmt.Errorf("scenario: unknown routing %q (want dor or minhop)", s.Routing)
	}

	// Size bounds per routing backend.
	maxV := MaxTorusVertices
	if n.Routing == RoutingMinHop {
		maxV = MaxGraphVertices
	}
	if vertices > maxV {
		return Spec{}, fmt.Errorf("scenario: %s topology has %d vertices, exceeding the %d-vertex bound for %s routing", t.Kind, vertices, maxV, n.Routing)
	}

	// Workload.
	w := &n.Workload
	w.Bytes = s.Workload.Bytes
	if w.Bytes == 0 {
		w.Bytes = DefaultBytes
	}
	if w.Bytes <= 0 || math.IsInf(w.Bytes, 0) || math.IsNaN(w.Bytes) {
		return Spec{}, fmt.Errorf("scenario: workload bytes %v is not positive and finite", s.Workload.Bytes)
	}
	if patternRandomized(w.Pattern) {
		w.Seed = s.Workload.Seed
		if w.Seed == 0 {
			w.Seed = DefaultSeed
		}
	}
	switch w.Pattern {
	case PatternAdversarial:
		if !torusFamily(t.Kind) || n.Routing != RoutingDOR {
			return Spec{}, fmt.Errorf("scenario: pattern %q requires a DOR-routed torus-family topology", PatternAdversarial)
		}
		w.Iters = s.Workload.Iters
		if w.Iters == 0 {
			w.Iters = DefaultIters
		}
		if w.Iters < 0 || w.Iters > MaxIters {
			return Spec{}, fmt.Errorf("scenario: adversarial iters %d out of range [0, %d]", s.Workload.Iters, MaxIters)
		}
	case PatternLongestDim:
		if !torusFamily(t.Kind) || n.Routing != RoutingDOR {
			return Spec{}, fmt.Errorf("scenario: pattern %q requires a DOR-routed torus-family topology", PatternLongestDim)
		}
	case PatternAllToAll:
		if vertices > workload.MaxAllToAllNodes {
			return Spec{}, fmt.Errorf("scenario: all-to-all on %d vertices exceeds the %d-vertex bound", vertices, workload.MaxAllToAllNodes)
		}
	}
	if s.Workload.Iters != 0 && w.Pattern != PatternAdversarial {
		return Spec{}, fmt.Errorf("scenario: iters only applies to the adversarial pattern")
	}

	// Simulation.
	if s.Sim.Enabled {
		n.Sim.Enabled = true
		n.Sim.Rounds = s.Sim.Rounds
		if n.Sim.Rounds == 0 {
			n.Sim.Rounds = DefaultRounds
		}
		if n.Sim.Rounds < 1 || n.Sim.Rounds > MaxSimRounds {
			return Spec{}, fmt.Errorf("scenario: sim rounds %d out of range [1, %d]", s.Sim.Rounds, MaxSimRounds)
		}
		if vertices > MaxSimVertices {
			return Spec{}, fmt.Errorf("scenario: flow-level simulation on %d vertices exceeds the %d-vertex bound", vertices, MaxSimVertices)
		}
	} else if s.Sim.Rounds != 0 {
		return Spec{}, fmt.Errorf("scenario: sim rounds set but sim not enabled")
	}

	// Failures: normalize the embedded spec and validate it against
	// the topology (model/kind compatibility, explicit ID bounds).
	if s.Failures != nil {
		f, err := s.Failures.Normalize()
		if err != nil {
			return Spec{}, err
		}
		if len(f.Windows) > 0 {
			return Spec{}, fmt.Errorf("scenario: failure windows have no meaning in a static scenario; use a trace simulation for time-varying outages")
		}
		if f.MidplaneScoped() {
			if t.Kind != KindPartition {
				return Spec{}, fmt.Errorf("scenario: failure model %s fails midplanes, which only partition topologies have", f.Model)
			}
			switch t.Policy {
			case PolicyFirstFit, PolicyBestBisection, PolicyContentionAware:
			default:
				return Spec{}, fmt.Errorf("scenario: failure model %s needs a placement policy that can avoid failed midplanes (first-fit, best-bisection or contention-aware), not %s", f.Model, t.Policy)
			}
			if f.Factor != 0 {
				return Spec{}, fmt.Errorf("scenario: failed midplanes are removed whole; capacity factors only apply to link models")
			}
			if f.Model == faults.ModelMidplanes {
				m, err := resolveMachine(t.Machine)
				if err != nil {
					return Spec{}, err
				}
				if top := f.Midplanes[len(f.Midplanes)-1]; top >= m.Midplanes() {
					return Spec{}, fmt.Errorf("scenario: failed midplane %d out of range (%s has %d midplanes)", top, t.Machine, m.Midplanes())
				}
			}
		} else if f.Model == faults.ModelLinks {
			if t.Kind == KindPartition {
				return Spec{}, fmt.Errorf("scenario: explicit link IDs on a partition depend on the policy-chosen geometry; use random_links or correlated_region")
			}
			edges, err := countEdges(*t)
			if err != nil {
				return Spec{}, err
			}
			if top := f.Links[len(f.Links)-1]; top >= edges {
				return Spec{}, fmt.Errorf("scenario: failed link %d out of range (topology has %d links)", top, edges)
			}
		}
		n.Failures = &f
	}

	return n, nil
}

// Validate reports whether the spec normalizes cleanly.
func (s Spec) Validate() error {
	_, err := s.Normalize()
	return err
}

// Key returns the canonical JSON encoding of the spec — the
// scenario's cache identity. Call on a normalized Spec; Key on a
// non-normalized spec distinguishes specs that normalize identically.
func (s Spec) Key() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Spec contains only marshalable fields; unreachable.
		panic(fmt.Sprintf("scenario: marshal spec: %v", err))
	}
	return string(b)
}

// Hash returns a short content hash of Key, used in experiment IDs.
func (s Spec) Hash() string {
	sum := sha256.Sum256([]byte(s.Key()))
	return hex.EncodeToString(sum[:6])
}

// ID returns the synthesized experiment ID of the scenario
// ("scenario:abcdef012345"). Dynamic IDs always carry a ':', which no
// registry ID does, so the two namespaces cannot collide.
func (s Spec) ID() string { return "scenario:" + s.Hash() }

// EstVertices estimates the topology's vertex count without resolving
// it (cheap enough for admission decisions). Returns 0 for specs that
// do not validate.
func (s Spec) EstVertices() int {
	t := s.Topology
	switch strings.ToLower(strings.TrimSpace(t.Kind)) {
	case KindTorus, KindMesh, KindClique:
		if sh, err := torus.ParseShape(t.Shape); err == nil {
			return sh.Volume()
		}
	case KindHypercube:
		if t.Dim >= 0 && t.Dim <= 30 {
			return 1 << uint(t.Dim)
		}
	case KindDragonfly:
		if sh, err := torus.ParseShape(t.GroupShape); err == nil {
			return t.Groups * sh.Volume()
		}
	case KindPartition:
		return t.Midplanes * bgq.MidplaneNodes
	}
	return 0
}

// Cost classifies the scenario's expected runtime for admission
// control, mirroring the registry's cheap/moderate/heavy split:
// flow-level simulations are moderate (small) or heavy (large or
// multi-round); static analyses are cheap unless the demand volume or
// a partition-policy enumeration makes them geometry sweeps.
func (s Spec) Cost() string {
	n := s.EstVertices()
	work := n
	if strings.ToLower(strings.TrimSpace(s.Workload.Pattern)) == PatternAllToAll {
		work = n * n
	}
	if s.Sim.Enabled {
		rounds := s.Sim.Rounds
		if rounds == 0 {
			rounds = DefaultRounds
		}
		if n > 2048 || rounds > 4 {
			return CostHeavy
		}
		return CostModerate
	}
	if work > 1<<18 {
		return CostHeavy
	}
	if work > 1<<14 || strings.EqualFold(s.Topology.Kind, KindPartition) {
		return CostModerate
	}
	return CostCheap
}

// Title returns the human label for reports: the explicit Name, or a
// generated "kind spec · pattern" summary.
func (s Spec) Title() string {
	if s.Name != "" {
		return s.Name
	}
	t := s.Topology
	var topo string
	switch t.Kind {
	case KindTorus:
		topo = "torus " + t.Shape
	case KindHypercube:
		topo = fmt.Sprintf("hypercube Q%d", t.Dim)
	case KindMesh:
		topo = "mesh " + t.Shape
	case KindClique:
		topo = "clique product " + t.Shape
	case KindDragonfly:
		topo = fmt.Sprintf("dragonfly %dx(%s)", t.Groups, t.GroupShape)
	case KindPartition:
		topo = fmt.Sprintf("%s %d midplanes (%s)", t.Machine, t.Midplanes, t.Policy)
	default:
		topo = t.Kind
	}
	title := topo + " · " + s.Workload.Pattern
	if s.Failures != nil {
		title += " · " + s.Failures.Model
	}
	if s.Sim.Enabled {
		title += " · simulated"
	}
	return title
}
