package scenario

import (
	"strings"
	"testing"
)

func TestNormalizeFillsDefaultsAndCanonicalizes(t *testing.T) {
	spec := Spec{
		Name:     "  demo  ",
		Topology: TopologySpec{Kind: " Torus ", Shape: "4X4x2"},
		Workload: WorkloadSpec{Pattern: "Pairing"},
	}
	n, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Topology.Kind != KindTorus || n.Topology.Shape != "4x4x2" {
		t.Errorf("topology not canonicalized: %+v", n.Topology)
	}
	if n.Name != "demo" {
		t.Errorf("name %q", n.Name)
	}
	if n.Workload.Bytes != DefaultBytes {
		t.Errorf("bytes default %v", n.Workload.Bytes)
	}
	if n.Workload.Seed != 0 {
		t.Errorf("pairing must not carry a seed, got %d", n.Workload.Seed)
	}
	if n.Routing != RoutingDOR {
		t.Errorf("routing %q", n.Routing)
	}
}

func TestNormalizeZeroesIrrelevantKnobs(t *testing.T) {
	// A permutation spec keeps its seed; switching the equivalent spec
	// to pairing must drop it, and unused topology fields never leak
	// into the key.
	perm := Spec{
		Topology: TopologySpec{Kind: KindTorus, Shape: "4x4", Dim: 9, Groups: 3, Machine: "mira"},
		Workload: WorkloadSpec{Pattern: PatternPermutation, Seed: 7},
	}
	n, err := perm.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Workload.Seed != 7 {
		t.Errorf("permutation seed dropped: %+v", n.Workload)
	}
	if n.Topology.Dim != 0 || n.Topology.Groups != 0 || n.Topology.Machine != "" {
		t.Errorf("irrelevant topology fields survived: %+v", n.Topology)
	}

	a, err := Spec{
		Topology: TopologySpec{Kind: KindTorus, Shape: "4x4"},
		Workload: WorkloadSpec{Pattern: PatternPairing},
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Spec{
		Topology: TopologySpec{Kind: "TORUS", Shape: "4X4", Dim: 3},
		Workload: WorkloadSpec{Pattern: "pairing", Seed: 99},
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() || a.ID() != b.ID() {
		t.Errorf("equivalent specs have distinct identities:\n%s\n%s", a.Key(), b.Key())
	}
}

func TestNormalizePartitionDefaults(t *testing.T) {
	n, err := Spec{
		Topology: TopologySpec{Kind: KindPartition, Machine: " MIRA ", Midplanes: 4},
		Workload: WorkloadSpec{Pattern: PatternPairing},
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Topology.Policy != PolicyBestCase {
		t.Errorf("default policy %q", n.Topology.Policy)
	}
	if n.Topology.Machine != "mira" {
		t.Errorf("machine %q", n.Topology.Machine)
	}
	// Custom machine grids canonicalize like shapes.
	n, err = Spec{
		Topology: TopologySpec{Kind: KindPartition, Machine: "4X2x2x1", Midplanes: 2},
		Workload: WorkloadSpec{Pattern: PatternPairing},
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Topology.Machine != "4x2x2x1" {
		t.Errorf("custom machine %q", n.Topology.Machine)
	}
}

func TestNormalizeRejections(t *testing.T) {
	base := WorkloadSpec{Pattern: PatternPairing}
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown kind", Spec{Topology: TopologySpec{Kind: "ring"}, Workload: base}, "unknown topology kind"},
		{"unknown pattern", Spec{Topology: TopologySpec{Kind: KindTorus, Shape: "4x4"}, Workload: WorkloadSpec{Pattern: "storm"}}, "unknown workload pattern"},
		{"bad shape", Spec{Topology: TopologySpec{Kind: KindTorus, Shape: "4xx"}, Workload: base}, "shape"},
		{"mesh rank", Spec{Topology: TopologySpec{Kind: KindMesh, Shape: "4x4x4"}, Workload: base}, "2-dimensional"},
		{"policy on torus", Spec{Topology: TopologySpec{Kind: KindTorus, Shape: "4x4", Policy: PolicyBestCase}, Workload: base}, "only applies to partition"},
		{"unknown policy", Spec{Topology: TopologySpec{Kind: KindPartition, Machine: "mira", Midplanes: 4, Policy: "random"}, Workload: base}, "unknown policy"},
		{"bad machine", Spec{Topology: TopologySpec{Kind: KindPartition, Machine: "fugaku", Midplanes: 4}, Workload: base}, "neither a catalog name"},
		{"no midplanes", Spec{Topology: TopologySpec{Kind: KindPartition, Machine: "mira"}, Workload: base}, "midplanes"},
		{"dragonfly groups", Spec{Topology: TopologySpec{Kind: KindDragonfly, Groups: 1, GroupShape: "4x2"}, Workload: base}, ">= 2 groups"},
		{"adversarial on graph", Spec{Topology: TopologySpec{Kind: KindMesh, Shape: "4x4"}, Workload: WorkloadSpec{Pattern: PatternAdversarial}}, "torus-family"},
		{"longest-dim on graph", Spec{Topology: TopologySpec{Kind: KindDragonfly, Groups: 3, GroupShape: "4x2"}, Workload: WorkloadSpec{Pattern: PatternLongestDim}}, "torus-family"},
		{"longest-dim minhop", Spec{Topology: TopologySpec{Kind: KindTorus, Shape: "4x4"}, Workload: WorkloadSpec{Pattern: PatternLongestDim}, Routing: RoutingMinHop}, "DOR-routed"},
		{"adversarial minhop", Spec{Topology: TopologySpec{Kind: KindTorus, Shape: "4x4"}, Workload: WorkloadSpec{Pattern: PatternAdversarial}, Routing: RoutingMinHop}, "DOR-routed"},
		{"dor on mesh", Spec{Topology: TopologySpec{Kind: KindMesh, Shape: "4x4"}, Workload: base, Routing: RoutingDOR}, "torus-family"},
		{"unknown routing", Spec{Topology: TopologySpec{Kind: KindTorus, Shape: "4x4"}, Workload: base, Routing: "valiant"}, "unknown routing"},
		{"bad bytes", Spec{Topology: TopologySpec{Kind: KindTorus, Shape: "4x4"}, Workload: WorkloadSpec{Pattern: PatternPairing, Bytes: -2}}, "not positive"},
		{"iters on pairing", Spec{Topology: TopologySpec{Kind: KindTorus, Shape: "4x4"}, Workload: WorkloadSpec{Pattern: PatternPairing, Iters: 5}}, "iters only applies"},
		{"all-to-all too big", Spec{Topology: TopologySpec{Kind: KindTorus, Shape: "65x65"}, Workload: WorkloadSpec{Pattern: PatternAllToAll}}, "all-to-all"},
		{"torus too big", Spec{Topology: TopologySpec{Kind: KindTorus, Shape: "1025x1025"}, Workload: base}, "vertex bound"},
		{"graph too big", Spec{Topology: TopologySpec{Kind: KindMesh, Shape: "100x100"}, Workload: base}, "vertex bound"},
		{"sim too big", Spec{Topology: TopologySpec{Kind: KindTorus, Shape: "100x100"}, Workload: base, Sim: SimSpec{Enabled: true}}, "simulation"},
		{"sim rounds without sim", Spec{Topology: TopologySpec{Kind: KindTorus, Shape: "4x4"}, Workload: base, Sim: SimSpec{Rounds: 3}}, "sim not enabled"},
		{"hypercube dim", Spec{Topology: TopologySpec{Kind: KindHypercube, Dim: 25}, Workload: base}, "out of range"},
		{"clique weights", Spec{Topology: TopologySpec{Kind: KindClique, Shape: "4x4", Weights: []float64{1}}, Workload: base}, "weights"},
	}
	for _, tc := range cases {
		_, err := tc.spec.Normalize()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}

func TestCostClasses(t *testing.T) {
	cheap := Spec{Topology: TopologySpec{Kind: KindTorus, Shape: "8x8"}, Workload: WorkloadSpec{Pattern: PatternPairing}}
	if c := cheap.Cost(); c != CostCheap {
		t.Errorf("small static torus cost %q", c)
	}
	partition := Spec{Topology: TopologySpec{Kind: KindPartition, Machine: "mira", Midplanes: 4}, Workload: WorkloadSpec{Pattern: PatternPairing}}
	if c := partition.Cost(); c != CostModerate {
		t.Errorf("partition cost %q", c)
	}
	sim := Spec{Topology: TopologySpec{Kind: KindTorus, Shape: "8x8"}, Workload: WorkloadSpec{Pattern: PatternPairing}, Sim: SimSpec{Enabled: true}}
	if c := sim.Cost(); c != CostModerate {
		t.Errorf("small sim cost %q", c)
	}
	heavySim := Spec{Topology: TopologySpec{Kind: KindTorus, Shape: "64x64"}, Workload: WorkloadSpec{Pattern: PatternPairing}, Sim: SimSpec{Enabled: true}}
	if c := heavySim.Cost(); c != CostHeavy {
		t.Errorf("large sim cost %q", c)
	}
	bigStatic := Spec{Topology: TopologySpec{Kind: KindTorus, Shape: "128x128x64"}, Workload: WorkloadSpec{Pattern: PatternPairing}}
	if c := bigStatic.Cost(); c != CostHeavy {
		t.Errorf("large static cost %q", c)
	}
}

func TestIDStability(t *testing.T) {
	// The ID is a content hash: pin one value so accidental identity
	// changes (which would silently fragment serving caches across
	// versions) fail loudly.
	n, err := Spec{
		Topology: TopologySpec{Kind: KindTorus, Shape: "4x4x2"},
		Workload: WorkloadSpec{Pattern: PatternPairing},
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(n.ID(), "scenario:") || len(n.ID()) != len("scenario:")+12 {
		t.Errorf("ID shape %q", n.ID())
	}
	again, _ := Spec{
		Topology: TopologySpec{Kind: KindTorus, Shape: "4x4x2"},
		Workload: WorkloadSpec{Pattern: PatternPairing},
	}.Normalize()
	if n.ID() != again.ID() {
		t.Error("ID not stable across normalizations")
	}
}

func TestTitle(t *testing.T) {
	n, _ := Spec{
		Topology: TopologySpec{Kind: KindPartition, Machine: "juqueen", Midplanes: 8, Policy: PolicyWorstCase},
		Workload: WorkloadSpec{Pattern: PatternAdversarial},
	}.Normalize()
	title := n.Title()
	for _, want := range []string{"juqueen", "8 midplanes", "worst-case", "adversarial"} {
		if !strings.Contains(title, want) {
			t.Errorf("title %q missing %q", title, want)
		}
	}
	n.Name = "my experiment"
	if n.Title() != "my experiment" {
		t.Errorf("explicit name not used: %q", n.Title())
	}
}
