package scenario

import (
	"context"
	"fmt"
	"math/rand"

	"netpart/internal/model"
	"netpart/internal/netsim"
	"netpart/internal/route"
	"netpart/internal/tabulate"
	"netpart/internal/workload"
)

// simCancelStride bounds flow starts between context checks inside
// the flow-level simulation, mirroring the pairing experiments.
const simCancelStride = 256

// Outcome is the result of running one scenario: the resolved
// topology, the generated workload, the static bottleneck analysis
// (the paper's §4.1 contention model) and, when enabled, the
// flow-level max-min fair simulation. All fields are deterministic
// functions of the normalized Spec.
type Outcome struct {
	Spec Spec `json:"spec"`

	// Topology.
	Topology    string `json:"topology"`
	Vertices    int    `json:"vertices"`
	Edges       int    `json:"edges"`
	Geometry    string `json:"geometry,omitempty"`     // partition midplane geometry
	BisectionBW int    `json:"bisection_bw,omitempty"` // partition internal bisection (links)

	// Workload.
	Demands    int     `json:"demands"`
	TotalBytes float64 `json:"total_bytes"`

	// Static contention analysis under the deterministic routing.
	MaxLinkBytes  float64 `json:"max_link_bytes"`
	Bottleneck    string  `json:"bottleneck,omitempty"`
	ActiveLinks   int     `json:"active_links"`
	MeanLinkBytes float64 `json:"mean_link_bytes"`
	IdealSec      float64 `json:"ideal_sec"`
	StaticSec     float64 `json:"static_sec"`
	ContentionX   float64 `json:"contention_x"`

	// Flow-level simulation (Spec.Sim).
	SimSec    float64 `json:"sim_sec,omitempty"`
	SimRounds int     `json:"sim_rounds,omitempty"`

	// Failure reporting (Spec.Failures). FailedLinks counts links
	// removed from routing (factor 0), DegradedLinks links running at
	// CapacityFactor, FailedMidplanes machine cells excluded from the
	// candidate enumeration.
	FailedLinks     int     `json:"failed_links,omitempty"`
	DegradedLinks   int     `json:"degraded_links,omitempty"`
	FailedMidplanes int     `json:"failed_midplanes,omitempty"`
	CapacityFactor  float64 `json:"capacity_factor,omitempty"`
	// Healthy is the baseline of the same spec with failures stripped,
	// plus the robustness deltas against it. Set iff Spec.Failures is.
	Healthy *Robustness `json:"healthy,omitempty"`
}

// Robustness is the healthy baseline of a failed scenario and the
// deltas the failure cost: DegradationX is failed/healthy static
// bottleneck time (>= 1 when the failure hurts), ContentionDeltaX the
// same ratio of contention factors (isolating route-quality loss from
// raw capacity loss).
type Robustness struct {
	IdealSec         float64 `json:"ideal_sec"`
	StaticSec        float64 `json:"static_sec"`
	ContentionX      float64 `json:"contention_x"`
	SimSec           float64 `json:"sim_sec,omitempty"`
	DegradationX     float64 `json:"degradation_x"`
	ContentionDeltaX float64 `json:"contention_delta_x"`
}

// Run executes the scenario: normalize, resolve the topology, build
// the workload, run the static analysis and (optionally) the
// flow-level simulation. The context is checked between phases and
// every simCancelStride flow starts.
func Run(ctx context.Context, spec Spec) (*Outcome, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	net, err := norm.resolve()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := &Outcome{
		Spec:     norm,
		Topology: net.label,
		Vertices: net.vertices,
		Edges:    net.edges,
	}
	if net.partition != nil {
		out.Geometry = net.partition.String()
		out.BisectionBW = net.partition.BisectionBW()
	}

	demands, err := norm.demands(net)
	if err != nil {
		return nil, err
	}
	out.Demands = len(demands)
	out.TotalBytes = workload.TotalBytes(demands)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	routes, caps, linkName, err := norm.routesAndCapacities(net, demands)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Static analysis: per-directed-link byte loads, bottleneck
	// normalized by link capacity.
	load := make([]float64, len(caps))
	for i, r := range routes {
		for _, l := range r {
			load[l] += demands[i].Bytes
		}
	}
	maxSec, maxLink := 0.0, -1
	for l, b := range load {
		if b <= 0 {
			continue
		}
		out.ActiveLinks++
		out.MeanLinkBytes += b
		if sec := b / caps[l]; sec > maxSec {
			maxSec, maxLink = sec, l
		}
	}
	out.StaticSec = maxSec
	if maxLink >= 0 {
		out.Bottleneck = linkName(maxLink)
		out.MaxLinkBytes = load[maxLink]
	}
	if out.ActiveLinks > 0 {
		out.MeanLinkBytes /= float64(out.ActiveLinks)
	}
	// Ideal: the slowest flow with all contention removed — each flow
	// alone at full capacity is paced by the slowest link on its own
	// route, so heterogeneous capacities (Dragonfly's weighted links)
	// count only where a flow actually crosses them.
	for i, d := range demands {
		alone := 0.0
		for _, l := range routes[i] {
			if sec := d.Bytes / caps[l]; sec > alone {
				alone = sec
			}
		}
		if alone > out.IdealSec {
			out.IdealSec = alone
		}
	}
	if out.IdealSec > 0 {
		out.ContentionX = out.StaticSec / out.IdealSec
	}

	if norm.Sim.Enabled {
		simSec, err := simulate(ctx, routes, demands, caps, norm.Sim.Rounds)
		if err != nil {
			return nil, err
		}
		out.SimSec = simSec
		out.SimRounds = norm.Sim.Rounds
	}

	// Robustness: report the failure's blast radius and run the
	// healthy twin of the same spec for the baseline deltas.
	if f := norm.Failures; f != nil {
		if f.Factor > 0 && f.Factor < 1 {
			out.DegradedLinks = len(net.faultLinks)
			out.CapacityFactor = f.Factor
		} else if f.Factor == 0 {
			out.FailedLinks = len(net.faultLinks)
		}
		out.FailedMidplanes = len(net.faultMidplanes)

		healthy := norm
		healthy.Failures = nil
		h, err := Run(ctx, healthy)
		if err != nil {
			return nil, fmt.Errorf("scenario: healthy baseline: %w", err)
		}
		rb := &Robustness{
			IdealSec:    h.IdealSec,
			StaticSec:   h.StaticSec,
			ContentionX: h.ContentionX,
			SimSec:      h.SimSec,
		}
		if h.StaticSec > 0 {
			rb.DegradationX = out.StaticSec / h.StaticSec
		}
		if h.ContentionX > 0 {
			rb.ContentionDeltaX = out.ContentionX / h.ContentionX
		}
		out.Healthy = rb
	}
	return out, nil
}

// demands builds the workload on the resolved network.
func (s Spec) demands(net *network) ([]route.Demand, error) {
	w := s.Workload
	if net.router != nil {
		switch w.Pattern {
		case PatternPairing:
			return workload.BisectionPairing(net.router, w.Bytes)
		case PatternPermutation:
			return workload.RandomPermutation(net.tor, w.Bytes, rand.New(rand.NewSource(w.Seed)))
		case PatternAllToAll:
			return workload.AllToAll(net.tor, w.Bytes)
		case PatternNeighbor:
			return workload.NearestNeighbor(net.tor, w.Bytes)
		case PatternLongestDim:
			return workload.LongestDimShift(net.tor, w.Bytes)
		case PatternAdversarial:
			return workload.NearWorstCase(net.tor, w.Bytes, w.Iters, w.Seed)
		}
		return nil, fmt.Errorf("scenario: unknown pattern %q", w.Pattern)
	}
	gn := net.gnet
	switch w.Pattern {
	case PatternPairing:
		return gn.pairing(w.Bytes), nil
	case PatternPermutation:
		return gn.permutation(w.Bytes, rand.New(rand.NewSource(w.Seed))), nil
	case PatternAllToAll:
		if gn.n > workload.MaxAllToAllNodes {
			return nil, fmt.Errorf("scenario: all-to-all on %d vertices exceeds the %d-vertex bound", gn.n, workload.MaxAllToAllNodes)
		}
		return gn.allToAll(w.Bytes), nil
	case PatternNeighbor:
		return gn.neighbors(w.Bytes), nil
	}
	return nil, fmt.Errorf("scenario: pattern %q is not available on %s topologies", w.Pattern, s.Topology.Kind)
}

// routesAndCapacities computes every demand's route and the
// per-directed-link capacity vector, plus a link name function for
// diagnostics.
func (s Spec) routesAndCapacities(net *network, demands []route.Demand) ([][]int, []float64, func(int) string, error) {
	if net.router != nil {
		r := net.router
		routes := make([][]int, len(demands))
		flat := make([]int, 0, len(demands)*8)
		bounds := make([]int, len(demands)+1)
		for i, d := range demands {
			start := len(flat)
			flat = r.Route(d.Src, d.Dst, flat)
			if net.dorFailed != nil {
				// DOR paths are fixed; a failed link on the path means
				// the demand's endpoints are disconnected.
				for _, l := range flat[start:] {
					if net.dorFailed[l] {
						return nil, nil, nil, &route.DisconnectedError{Src: d.Src, Dst: d.Dst, Routing: RoutingDOR}
					}
				}
			}
			bounds[i+1] = len(flat)
		}
		for i := range routes {
			routes[i] = flat[bounds[i]:bounds[i+1]]
		}
		caps := make([]float64, r.NumLinks())
		for i := range caps {
			caps[i] = model.LinkBytesPerSec
			if net.dorCap != nil {
				caps[i] *= net.dorCap[i]
			}
		}
		return routes, caps, r.LinkString, nil
	}
	routes, err := net.gnet.routes(demands)
	if err != nil {
		return nil, nil, nil, err
	}
	return routes, net.gnet.capacities(model.LinkBytesPerSec), net.gnet.linkString, nil
}

// simulate runs the flow-level max-min fair simulation: all demands
// start at once, each round runs to completion, rounds repeat
// back-to-back.
func simulate(ctx context.Context, routes [][]int, demands []route.Demand, caps []float64, rounds int) (float64, error) {
	sim := netsim.NewWithCapacities(caps)
	total := 0.0
	for round := 0; round < rounds; round++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		for i, d := range demands {
			if i%simCancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
			}
			if len(routes[i]) == 0 {
				continue
			}
			sim.StartFlow(routes[i], d.Bytes, 0)
		}
		total += sim.RunUntilIdle()
	}
	return total, nil
}

// Table renders the outcome as a deterministic metric/value table.
func (o *Outcome) Table() tabulate.Table {
	t := tabulate.Table{
		Title:   "Scenario: " + o.Spec.Title(),
		Headers: []string{"metric", "value"},
	}
	t.AddRow("topology", o.Topology)
	t.AddRow("routing", o.Spec.Routing)
	t.AddRow("vertices", o.Vertices)
	t.AddRow("edges", o.Edges)
	if o.Geometry != "" {
		t.AddRow("geometry", o.Geometry)
		t.AddRow("bisection BW (links)", o.BisectionBW)
	}
	t.AddRow("pattern", o.Spec.Workload.Pattern)
	t.AddRow("demands", o.Demands)
	t.AddRow("total GB", o.TotalBytes/1e9)
	t.AddRow("max link GB", o.MaxLinkBytes/1e9)
	if o.Bottleneck != "" {
		t.AddRow("bottleneck link", o.Bottleneck)
	}
	t.AddRow("active links", o.ActiveLinks)
	t.AddRow("mean link GB", o.MeanLinkBytes/1e9)
	t.AddRow("ideal (s)", o.IdealSec)
	t.AddRow("static bottleneck (s)", o.StaticSec)
	t.AddRow("contention factor", o.ContentionX)
	if o.Spec.Sim.Enabled {
		t.AddRow("simulated (s)", o.SimSec)
		t.AddRow("simulated rounds", o.SimRounds)
	}
	if f := o.Spec.Failures; f != nil {
		t.AddRow("failure model", f.Model)
		if o.FailedLinks > 0 {
			t.AddRow("failed links", o.FailedLinks)
		}
		if o.DegradedLinks > 0 {
			t.AddRow("degraded links", o.DegradedLinks)
			t.AddRow("capacity factor", o.CapacityFactor)
		}
		if o.FailedMidplanes > 0 {
			t.AddRow("failed midplanes", o.FailedMidplanes)
		}
		if h := o.Healthy; h != nil {
			t.AddRow("healthy static (s)", h.StaticSec)
			t.AddRow("degradation (x)", h.DegradationX)
			t.AddRow("contention delta (x)", h.ContentionDeltaX)
		}
	}
	return t
}
