package scenario

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"netpart/internal/faults"
	"netpart/internal/route"
)

func TestScenarioFailureNormalizeRejections(t *testing.T) {
	torus44 := TopologySpec{Kind: KindTorus, Shape: "4x4"}
	partition := TopologySpec{Kind: KindPartition, Machine: "juqueen", Midplanes: 4, Policy: PolicyFirstFit}
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{
			"windows on static scenario",
			Spec{Topology: torus44, Workload: WorkloadSpec{Pattern: PatternPairing},
				Failures: &faults.Spec{Model: faults.ModelLinks, Links: []int{0}, Windows: []faults.Window{{StartSec: 0, EndSec: 10}}}},
			"no meaning in a static scenario",
		},
		{
			"midplanes on torus",
			Spec{Topology: torus44, Workload: WorkloadSpec{Pattern: PatternPairing},
				Failures: &faults.Spec{Model: faults.ModelMidplanes, Midplanes: []int{0}}},
			"only partition topologies",
		},
		{
			"midplanes without placement policy",
			Spec{Topology: TopologySpec{Kind: KindPartition, Machine: "juqueen", Midplanes: 4},
				Workload: WorkloadSpec{Pattern: PatternPairing},
				Failures: &faults.Spec{Model: faults.ModelRandomMidplanes, Fraction: 0.1}},
			"placement policy",
		},
		{
			"fractional midplane factor",
			Spec{Topology: partition, Workload: WorkloadSpec{Pattern: PatternPairing},
				Failures: &faults.Spec{Model: faults.ModelMidplanes, Midplanes: []int{0}, Factor: 0.5}},
			"removed whole",
		},
		{
			"midplane out of range",
			Spec{Topology: partition, Workload: WorkloadSpec{Pattern: PatternPairing},
				Failures: &faults.Spec{Model: faults.ModelMidplanes, Midplanes: []int{56}}},
			"out of range",
		},
		{
			"explicit links on partition",
			Spec{Topology: partition, Workload: WorkloadSpec{Pattern: PatternPairing},
				Failures: &faults.Spec{Model: faults.ModelLinks, Links: []int{0}}},
			"policy-chosen geometry",
		},
		{
			"link out of range",
			Spec{Topology: torus44, Workload: WorkloadSpec{Pattern: PatternPairing},
				Failures: &faults.Spec{Model: faults.ModelLinks, Links: []int{32}}}, // 4x4 torus has 32 edges
			"out of range",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.spec.Normalize()
			if err == nil {
				t.Fatalf("accepted, want %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestDegradedLinksScaleStatic: degrading every link by factor f
// scales the static bottleneck time by exactly 1/f, and the outcome
// carries the healthy baseline and that ratio as the degradation.
func TestDegradedLinksScaleStatic(t *testing.T) {
	out := run(t, Spec{
		Topology: TopologySpec{Kind: KindTorus, Shape: "4x4"},
		Workload: WorkloadSpec{Pattern: PatternPairing},
		Failures: &faults.Spec{Model: faults.ModelRandomLinks, Fraction: 1, Factor: 0.5},
	})
	if out.DegradedLinks != 32 || out.FailedLinks != 0 || out.CapacityFactor != 0.5 {
		t.Fatalf("degraded=%d failed=%d factor=%v", out.DegradedLinks, out.FailedLinks, out.CapacityFactor)
	}
	h := out.Healthy
	if h == nil {
		t.Fatal("no healthy baseline on a failed scenario")
	}
	if math.Abs(out.StaticSec-2*h.StaticSec) > 1e-9*h.StaticSec {
		t.Fatalf("static %v, want 2x healthy %v", out.StaticSec, h.StaticSec)
	}
	if math.Abs(h.DegradationX-2) > 1e-9 {
		t.Fatalf("degradation %v, want 2", h.DegradationX)
	}
	// The rendered table names the failure model and the delta.
	table := out.Table().Render()
	for _, want := range []string{"failure model", "degradation (x)", "healthy static (s)"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

// TestDORFailedLinksDisconnect: DOR paths are fixed, so removing
// every link makes each demand report a typed disconnection rather
// than aborting with an untyped error.
func TestDORFailedLinksDisconnect(t *testing.T) {
	_, err := Run(context.Background(), Spec{
		Topology: TopologySpec{Kind: KindTorus, Shape: "4x4"},
		Workload: WorkloadSpec{Pattern: PatternPairing},
		Failures: &faults.Spec{Model: faults.ModelRandomLinks, Fraction: 1, Factor: 0},
	})
	var dis *route.DisconnectedError
	if !errors.As(err, &dis) {
		t.Fatalf("err = %v, want DisconnectedError", err)
	}
	if dis.Routing != RoutingDOR {
		t.Fatalf("routing = %q", dis.Routing)
	}
}

// TestMinhopReroutesAroundFailure: the graph-routed family recomputes
// shortest paths, so one removed link merely reroutes. The outcome
// still reports the failure and the delta vs the healthy baseline
// (which can even be < 1: a removed link may happen to rebalance the
// shortest-path multiset).
func TestMinhopReroutesAroundFailure(t *testing.T) {
	out := run(t, Spec{
		Topology: TopologySpec{Kind: KindTorus, Shape: "4x4"},
		Workload: WorkloadSpec{Pattern: PatternPairing},
		Routing:  RoutingMinHop,
		Failures: &faults.Spec{Model: faults.ModelLinks, Links: []int{0}},
	})
	if out.FailedLinks != 1 {
		t.Fatalf("failed links %d", out.FailedLinks)
	}
	if out.Healthy == nil || out.Healthy.DegradationX <= 0 {
		t.Fatalf("healthy baseline %+v", out.Healthy)
	}
}

// TestFailedMidplanesRelocatePartition: blocking cells forces the
// placement policy to choose a different geometry; the scenario still
// runs and reports the robustness delta.
func TestFailedMidplanesRelocatePartition(t *testing.T) {
	out := run(t, Spec{
		Topology: TopologySpec{Kind: KindPartition, Machine: "juqueen", Midplanes: 8, Policy: PolicyBestBisection},
		Workload: WorkloadSpec{Pattern: PatternPairing},
		Failures: &faults.Spec{Model: faults.ModelRandomMidplanes, Fraction: 0.25},
	})
	if out.FailedMidplanes == 0 {
		t.Fatal("no failed midplanes reported")
	}
	if out.Healthy == nil || out.Healthy.DegradationX <= 0 {
		t.Fatalf("healthy baseline %+v", out.Healthy)
	}
}

// FuzzMinhopFailures deletes a random fraction of links and asserts
// the disconnection contract: a run either succeeds (every demand
// rerouted) or fails with the typed DisconnectedError — never a
// panic, never an untyped grid abort.
func FuzzMinhopFailures(f *testing.F) {
	f.Add(int64(1), 0.3)
	f.Add(int64(7), 0.95)
	f.Add(int64(42), 0.05)
	f.Add(int64(-9), 0.6)
	f.Fuzz(func(t *testing.T, seed int64, frac float64) {
		if math.IsNaN(frac) || math.IsInf(frac, 0) {
			t.Skip()
		}
		frac = math.Abs(math.Mod(frac, 1))
		for _, routing := range []string{RoutingMinHop, RoutingDOR} {
			out, err := Run(context.Background(), Spec{
				Topology: TopologySpec{Kind: KindTorus, Shape: "4x4"},
				Workload: WorkloadSpec{Pattern: PatternPairing},
				Routing:  routing,
				Failures: &faults.Spec{Model: faults.ModelRandomLinks, Fraction: frac, Seed: seed},
			})
			if err != nil {
				var dis *route.DisconnectedError
				if !errors.As(err, &dis) {
					t.Fatalf("%s frac=%v seed=%d: untyped error %v", routing, frac, seed, err)
				}
				if dis.Routing != routing {
					t.Fatalf("disconnection blames %q under %q", dis.Routing, routing)
				}
				continue
			}
			if out.StaticSec <= 0 || math.IsInf(out.StaticSec, 0) || math.IsNaN(out.StaticSec) {
				t.Fatalf("%s frac=%v seed=%d: static %v", routing, frac, seed, out.StaticSec)
			}
			if frac > 0 && out.FailedLinks == 0 && len(out.Spec.Failures.Links) > 0 {
				t.Fatalf("%s: failures resolved but not reported", routing)
			}
		}
	})
}
