package scenario

import (
	"fmt"
	"math/rand"

	"netpart/internal/graph"
	"netpart/internal/route"
)

// graphNet is the min-hop routing backend over an explicit weighted
// graph: a CSR adjacency with stable edge IDs, a deterministic BFS
// router (neighbours explored in ascending vertex order, so parents
// and therefore paths are reproducible), and per-directed-link
// capacities proportional to edge weights.
//
// Directed link IDs: edge e = {u, v} with u < v yields link 2e when
// traversed u→v and 2e+1 when traversed v→u, mirroring the torus
// router's directed-link convention so the same load/simulation
// machinery applies.
type graphNet struct {
	n        int
	numEdges int

	off  []int32 // CSR offsets, len n+1
	to   []int32 // neighbour vertex, ascending within each row
	eid  []int32 // undirected edge ID of each adjacency entry
	endA []int32 // smaller endpoint of edge e
	endB []int32 // larger endpoint of edge e
	w    []float64

	// Failure state (nil when healthy): failed edges disappear from
	// the BFS adjacency, degraded edges keep routing at scaled
	// capacity.
	failedEdge []bool
	edgeScale  []float64

	// BFS scratch, reused across sources (single-threaded use per
	// scenario run).
	dist       []int32
	parent     []int32
	parentEdge []int32
	queue      []int32
	treeSrc    int32 // source of the current scratch tree, -1 if none
	// treeFaulted records whether the cached tree skipped failed
	// edges (routing mode) or saw the full adjacency (workload mode).
	treeFaulted bool
}

func newGraphNet(g *graph.Graph) *graphNet {
	n := g.N()
	gn := &graphNet{
		n:          n,
		off:        make([]int32, n+1),
		dist:       make([]int32, n),
		parent:     make([]int32, n),
		parentEdge: make([]int32, n),
		queue:      make([]int32, 0, n),
		treeSrc:    -1,
	}
	type edgeKey struct{ u, v int }
	edgeID := map[edgeKey]int32{}
	for u := 0; u < n; u++ {
		g.Neighbors(u, func(v int, w float64) {
			gn.off[u+1]++
			if u < v {
				edgeID[edgeKey{u, v}] = int32(len(gn.w))
				gn.endA = append(gn.endA, int32(u))
				gn.endB = append(gn.endB, int32(v))
				gn.w = append(gn.w, w)
			}
		})
	}
	gn.numEdges = len(gn.w)
	for i := 0; i < n; i++ {
		gn.off[i+1] += gn.off[i]
	}
	gn.to = make([]int32, gn.off[n])
	gn.eid = make([]int32, gn.off[n])
	fill := make([]int32, n)
	for u := 0; u < n; u++ {
		g.Neighbors(u, func(v int, _ float64) {
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			slot := gn.off[u] + fill[u]
			gn.to[slot] = int32(v)
			gn.eid[slot] = edgeID[edgeKey{a, b}]
			fill[u]++
		})
	}
	return gn
}

// numLinks returns the directed link ID space (2 per undirected edge).
func (gn *graphNet) numLinks() int { return 2 * gn.numEdges }

// linkID returns the directed link for traversing edge e from u.
func (gn *graphNet) linkID(e int32, from int32) int {
	if gn.endA[e] == from {
		return int(2 * e)
	}
	return int(2*e + 1)
}

// linkString renders a directed link for diagnostics, e.g. "12->47".
func (gn *graphNet) linkString(l int) string {
	e := int32(l / 2)
	if l%2 == 0 {
		return fmt.Sprintf("%d->%d", gn.endA[e], gn.endB[e])
	}
	return fmt.Sprintf("%d->%d", gn.endB[e], gn.endA[e])
}

// capacities returns per-directed-link capacities: edge weight times
// the base link rate (weights model trunked or faster links, as in
// the Dragonfly's black/blue links), scaled by the degradation factor
// of degraded edges. Failed edges keep their nominal capacity — they
// are unreachable by routing, and the flow simulator requires every
// capacity to be positive.
func (gn *graphNet) capacities(baseBps float64) []float64 {
	caps := make([]float64, gn.numLinks())
	for e := 0; e < gn.numEdges; e++ {
		c := gn.w[e] * baseBps
		if gn.edgeScale != nil {
			c *= gn.edgeScale[e]
		}
		caps[2*e] = c
		caps[2*e+1] = c
	}
	return caps
}

// applyFaults installs a resolved link failure set: factor 0 removes
// the affected edges from the BFS adjacency (routes re-route around
// them; unreachable endpoints become DisconnectedErrors), a factor in
// (0,1) scales their capacity. Any cached BFS tree is invalidated.
func (gn *graphNet) applyFaults(edges []int, factor float64) {
	if len(edges) == 0 || factor == 1 {
		return
	}
	if factor == 0 {
		gn.failedEdge = make([]bool, gn.numEdges)
		for _, e := range edges {
			gn.failedEdge[e] = true
		}
	} else {
		gn.edgeScale = make([]float64, gn.numEdges)
		for e := range gn.edgeScale {
			gn.edgeScale[e] = 1
		}
		for _, e := range edges {
			gn.edgeScale[e] = factor
		}
	}
	gn.treeSrc = -1
}

// tree runs (or reuses) the deterministic BFS tree rooted at src on
// the faulted adjacency (failed edges skipped): a FIFO BFS whose
// neighbour exploration follows the CSR rows, which are sorted
// ascending — so every vertex's parent is the smallest
// earliest-discovered predecessor and routes are reproducible.
func (gn *graphNet) tree(src int32) { gn.buildTree(src, true) }

// healthyTree is tree on the full adjacency, failures ignored. The
// workload generators use it: a demand set is a property of the
// topology, not of the failure overlay — pairing partners must not
// shift (or vanish) when links fail, or the healthy baseline would
// compare a different workload.
func (gn *graphNet) healthyTree(src int32) { gn.buildTree(src, false) }

func (gn *graphNet) buildTree(src int32, faulted bool) {
	if gn.treeSrc == src && gn.treeFaulted == faulted {
		return
	}
	gn.treeSrc = src
	gn.treeFaulted = faulted
	for i := range gn.dist {
		gn.dist[i] = -1
		gn.parent[i] = -1
		gn.parentEdge[i] = -1
	}
	gn.dist[src] = 0
	gn.queue = append(gn.queue[:0], src)
	for qi := 0; qi < len(gn.queue); qi++ {
		u := gn.queue[qi]
		for s := gn.off[u]; s < gn.off[u+1]; s++ {
			v := gn.to[s]
			if faulted && gn.failedEdge != nil && gn.failedEdge[gn.eid[s]] {
				continue
			}
			if gn.dist[v] < 0 {
				gn.dist[v] = gn.dist[u] + 1
				gn.parent[v] = u
				gn.parentEdge[v] = gn.eid[s]
				gn.queue = append(gn.queue, v)
			}
		}
	}
}

// routeTo appends the directed link IDs of the min-hop path src→dst
// to buf (tree(src) must be current). The path is emitted in travel
// order.
func (gn *graphNet) routeTo(dst int32, buf []int) ([]int, error) {
	if gn.dist[dst] < 0 {
		return nil, &route.DisconnectedError{Src: int(gn.treeSrc), Dst: int(dst), Routing: RoutingMinHop}
	}
	start := len(buf)
	for v := dst; gn.parent[v] >= 0; v = gn.parent[v] {
		buf = append(buf, gn.linkID(gn.parentEdge[v], gn.parent[v]))
	}
	// Parent walk yields the path dst→src; reverse into travel order.
	for i, j := start, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return buf, nil
}

// furthest returns the vertex at maximal BFS distance from src,
// smallest index on ties (tree(src) must be current).
func (gn *graphNet) furthest(src int32) int32 {
	best := src
	var bestD int32
	for v := 0; v < gn.n; v++ {
		if d := gn.dist[v]; d > bestD {
			best, bestD = int32(v), d
		}
	}
	return best
}

// --- graph-generic workload generators ---
//
// These mirror the torus generators of internal/workload for
// topologies without a torus structure. Demands are emitted in
// ascending source order, which groups them for the per-source BFS
// cache in loadMap.

func (gn *graphNet) pairing(bytes float64) []route.Demand {
	demands := make([]route.Demand, 0, gn.n)
	for v := int32(0); v < int32(gn.n); v++ {
		gn.healthyTree(v)
		if f := gn.furthest(v); f != v {
			demands = append(demands, route.Demand{Src: int(v), Dst: int(f), Bytes: bytes})
		}
	}
	return demands
}

func (gn *graphNet) permutation(bytes float64, rng *rand.Rand) []route.Demand {
	perm := rng.Perm(gn.n)
	demands := make([]route.Demand, 0, gn.n)
	for v, d := range perm {
		if v != d {
			demands = append(demands, route.Demand{Src: v, Dst: d, Bytes: bytes})
		}
	}
	return demands
}

func (gn *graphNet) allToAll(bytes float64) []route.Demand {
	demands := make([]route.Demand, 0, gn.n*(gn.n-1))
	for s := 0; s < gn.n; s++ {
		for d := 0; d < gn.n; d++ {
			if s != d {
				demands = append(demands, route.Demand{Src: s, Dst: d, Bytes: bytes})
			}
		}
	}
	return demands
}

func (gn *graphNet) neighbors(bytes float64) []route.Demand {
	var demands []route.Demand
	for u := int32(0); u < int32(gn.n); u++ {
		for s := gn.off[u]; s < gn.off[u+1]; s++ {
			demands = append(demands, route.Demand{Src: int(u), Dst: int(gn.to[s]), Bytes: bytes})
		}
	}
	return demands
}

// routes computes the min-hop route of every demand (demands should
// be grouped by source to amortize the BFS). The returned slices
// alias one backing array.
func (gn *graphNet) routes(demands []route.Demand) ([][]int, error) {
	flat := make([]int, 0, len(demands)*4)
	bounds := make([]int, len(demands)+1)
	for i, d := range demands {
		gn.tree(int32(d.Src))
		var err error
		flat, err = gn.routeTo(int32(d.Dst), flat)
		if err != nil {
			return nil, err
		}
		bounds[i+1] = len(flat)
	}
	out := make([][]int, len(demands))
	for i := range out {
		out[i] = flat[bounds[i]:bounds[i+1]]
	}
	return out, nil
}
