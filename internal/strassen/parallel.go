package strassen

import (
	"fmt"

	"netpart/internal/matrix"
	"netpart/internal/mpi"
)

// Parallel tags; must stay below the mpi collective tag space.
const (
	tagOperandS = 1000 + iota
	tagOperandT
	tagResult
)

// ParallelMultiply executes Strassen-Winograd across the communicator
// on the simulated machine: at each BFS level the subproblem owner
// forms the seven Winograd operand pairs and distributes them to the
// roots of seven subgroups, which recurse; leaf owners multiply
// sequentially and results propagate back up the tree. All operand
// and result movement is genuine simulated message traffic.
//
// The communicator size must be 7^k for some k >= 0. Rank 0 supplies
// a and b (other ranks pass nil) and receives the product; other ranks
// return nil. The matrix dimension must be divisible by 2^k.
//
// This realizes the BFS recursion tree of CAPS [25] with an
// owner-centralized data layout: simple to verify, with the same
// recursion structure and message pattern shape, though not
// communication-optimal (CAPS distributes each subproblem
// block-cyclically; see package model for the cost accounting used at
// paper scale).
func ParallelMultiply(c *mpi.Comm, a, b *matrix.Matrix, cutoff int) *matrix.Matrix {
	p := c.Size()
	k := 0
	for q := p; q > 1; q /= 7 {
		if q%7 != 0 {
			panic(fmt.Sprintf("strassen: communicator size %d is not a power of 7", p))
		}
		k++
	}
	if c.Rank() == 0 {
		if a == nil || b == nil {
			panic("strassen: rank 0 must supply both operands")
		}
		if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
			panic(fmt.Sprintf("strassen: need equal square matrices, got %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
		}
		if a.Rows%(1<<uint(k)) != 0 {
			panic(fmt.Sprintf("strassen: dimension %d not divisible by 2^%d", a.Rows, k))
		}
	}
	return parallelMultiply(c, a, b, cutoff)
}

func parallelMultiply(c *mpi.Comm, a, b *matrix.Matrix, cutoff int) *matrix.Matrix {
	p := c.Size()
	if p == 1 {
		if a == nil {
			return nil
		}
		out := matrix.New(a.Rows, a.Cols)
		multiply(out, a, b, cutoff)
		return out
	}
	sub := p / 7
	me := c.Rank()
	group := me / sub
	subComm := c.Split(group, me)

	var s, t [7]*matrix.Matrix
	var h int
	if me == 0 {
		h = a.Rows / 2
		a11, a12, a21, a22 := a.Quadrants()
		b11, b12, b21, b22 := b.Quadrants()
		mk := func() *matrix.Matrix { return matrix.New(h, h) }
		s1, s2, s3, s4 := mk(), mk(), mk(), mk()
		t1, t2, t3, t4 := mk(), mk(), mk(), mk()
		matrix.Add(s1, a21, a22)
		matrix.Sub(s2, s1, a11)
		matrix.Sub(s3, a11, a21)
		matrix.Sub(s4, a12, s2)
		matrix.Sub(t1, b12, b11)
		matrix.Sub(t2, b22, t1)
		matrix.Sub(t3, b22, b12)
		matrix.Sub(t4, t2, b21)
		// Subproblem operands in Winograd order M1..M7.
		s = [7]*matrix.Matrix{a11, a12, s4, a22, s1, s2, s3}
		t = [7]*matrix.Matrix{b11, b21, b22, t4, t1, t2, t3}
		// Ship operands to the six other subgroup roots.
		for i := 1; i < 7; i++ {
			root := i * sub
			bytes := float64(8 * h * h)
			c.Send(root, tagOperandS, s[i].Flatten(), bytes)
			c.Send(root, tagOperandT, t[i].Flatten(), bytes)
		}
	}

	// Subgroup roots obtain their operands.
	var mya, myb *matrix.Matrix
	if subComm.Rank() == 0 {
		if group == 0 {
			mya, myb = s[0], t[0]
		} else {
			sd, _ := c.Recv(0, tagOperandS)
			td, _ := c.Recv(0, tagOperandT)
			sf := sd.([]float64)
			tf := td.([]float64)
			dim := isqrt(len(sf))
			mya = matrix.FromSlice(dim, dim, sf)
			myb = matrix.FromSlice(dim, dim, tf)
		}
	}

	mi := parallelMultiply(subComm, mya, myb, cutoff)

	// Collect the seven products at rank 0 and combine.
	if subComm.Rank() == 0 && group != 0 {
		c.Send(0, tagResult, mi.Flatten(), float64(8*mi.Rows*mi.Cols))
	}
	if me != 0 {
		return nil
	}
	m := [7]*matrix.Matrix{mi}
	for i := 1; i < 7; i++ {
		data, _ := c.Recv(i*sub, tagResult)
		f := data.([]float64)
		dim := isqrt(len(f))
		m[i] = matrix.FromSlice(dim, dim, f)
	}
	out := matrix.New(a.Rows, a.Cols)
	c11, c12, c21, c22 := out.Quadrants()
	u2 := matrix.New(h, h)
	u3 := matrix.New(h, h)
	matrix.Add(c11, m[0], m[1])
	matrix.Add(u2, m[0], m[5])
	matrix.Add(u3, u2, m[6])
	matrix.Add(c12, u2, m[4])
	matrix.Add(c12, c12, m[2])
	matrix.Sub(c21, u3, m[3])
	matrix.Add(c22, u3, m[4])
	return out
}

func isqrt(n int) int {
	r := 0
	for r*r < n {
		r++
	}
	if r*r != n {
		panic(fmt.Sprintf("strassen: payload length %d is not a square", n))
	}
	return r
}
