package strassen

import (
	"fmt"
	"math"
)

// StepKind distinguishes the two recursion step types of CAPS [25]:
// BFS steps divide the processors into 7 groups that attack the 7
// Strassen subproblems in parallel (requiring an operand
// redistribution), DFS steps keep all processors on each subproblem in
// sequence (local additions only, no redistribution, but 7x the
// subproblem traffic of the next level).
type StepKind int

const (
	// BFS is a breadth-first (parallel subproblem) step.
	BFS StepKind = iota
	// DFS is a depth-first (sequential subproblem) step.
	DFS
)

// Schedule is the interleaving of BFS and DFS steps from the top of
// the recursion. AllBFS(k) is the memory-hungry, communication-minimal
// schedule the paper's runs used (§4.3 reports 4 BFS steps).
type Schedule []StepKind

// AllBFS returns a schedule of k BFS steps.
func AllBFS(k int) Schedule {
	s := make(Schedule, k)
	for i := range s {
		s[i] = BFS
	}
	return s
}

// BFSCount returns the number of BFS steps in the schedule.
func (s Schedule) BFSCount() int {
	c := 0
	for _, k := range s {
		if k == BFS {
			c++
		}
	}
	return c
}

// CostSummary is the exact operation accounting of a CAPS execution.
type CostSummary struct {
	// FlopsPerRank counts floating-point operations per rank: the leaf
	// classical multiplications plus the quadrant additions performed
	// at every recursion step.
	FlopsPerRank float64
	// WordsPerRank counts words communicated (sent) per rank across
	// all BFS redistributions.
	WordsPerRank float64
	// TotalWords counts words moved across the whole machine.
	TotalWords float64
	// LevelTotalWords[i] is the total redistribution volume of
	// schedule step i (zero for DFS steps).
	LevelTotalWords []float64
	// LeafDim is the matrix dimension at which the recursion bottoms
	// out into classical multiplication.
	LeafDim int
	// PeakWordsTotal is the combined storage high-water mark across
	// all ranks: BFS steps multiply the live data by 7/4.
	PeakWordsTotal float64
}

// Costs computes the communication and computation volumes of CAPS
// multiplying two n x n matrices on P = f * 7^(#BFS) ranks with the
// given schedule, where f >= 1 ranks share each leaf subproblem. A
// BFS step at a subproblem of dimension m within a group of g ranks
// redistributes the seven operand pairs (S_i, T_i), each of dimension
// m/2: 2 * 7 * (m/2)^2 = 3.5 m^2 words per subproblem, i.e. 3.5 m^2/g
// words sent per rank (matching the per-step bandwidth cost of [25]
// up to the constant).
func Costs(n int, P int, sched Schedule) (CostSummary, error) {
	if n < 1 || P < 1 {
		return CostSummary{}, fmt.Errorf("strassen: invalid n=%d P=%d", n, P)
	}
	sevens := 1
	for i := 0; i < sched.BFSCount(); i++ {
		sevens *= 7
	}
	if P%sevens != 0 {
		return CostSummary{}, fmt.Errorf("strassen: P=%d not divisible by 7^%d", P, sched.BFSCount())
	}
	if n%(1<<uint(len(sched))) != 0 {
		return CostSummary{}, fmt.Errorf("strassen: n=%d not divisible by 2^%d", n, len(sched))
	}

	summary := CostSummary{LevelTotalWords: make([]float64, len(sched))}
	m := float64(n) // current subproblem dimension
	subproblems := 1.0
	groupRanks := float64(P)
	addFlopsPerRank := 0.0
	for i, kind := range sched {
		// Forming the S/T operands costs additions regardless of step
		// kind: per subproblem, 8 quadrant additions for the operands
		// and 7 for the combination, each (m/2)^2 flops. They are
		// spread over the ranks holding the subproblem.
		addFlopsPerRank += subproblems * 15 * (m / 2) * (m / 2) / float64(P)
		if kind == BFS {
			vol := subproblems * 3.5 * m * m
			summary.LevelTotalWords[i] = vol
			summary.TotalWords += vol
			summary.WordsPerRank += 3.5 * m * m / groupRanks
			groupRanks /= 7
		}
		subproblems *= 7
		m /= 2
	}
	summary.LeafDim = n >> uint(len(sched))
	leaf := float64(summary.LeafDim)
	// groupRanks ranks share each leaf classical multiplication.
	summary.FlopsPerRank = (2*leaf*leaf*leaf - leaf*leaf) / groupRanks
	summary.FlopsPerRank += addFlopsPerRank
	// Peak storage: 3 matrices (A, B, C), multiplied by 7/4 per BFS
	// step (7 half-sized subproblem pairs replace 4 quadrant pairs).
	summary.PeakWordsTotal = 3 * float64(n) * float64(n) * math.Pow(7.0/4.0, float64(sched.BFSCount()))
	return summary, nil
}

// WorkingSetBytes returns the combined storage requirement, in bytes,
// of a CAPS run with l BFS steps on n x n matrices, including an equal
// allowance for communication-library buffers — the quantity the paper
// compares against the combined L2 capacity in §4.3 (it reports
// 3*(7/4)^4 * 8 * 9408^2 bytes = 18.55 GiB for the matrices alone).
func WorkingSetBytes(n, bfsSteps int) float64 {
	matrices := 3 * math.Pow(7.0/4.0, float64(bfsSteps)) * float64(n) * float64(n) * 8
	return 2 * matrices
}

// ValidateParams checks the experimental constraints of the paper's
// §4.2 (inherited from the implementation of [8, 25]): the rank count
// must be of the form f * 7^k, and the matrix dimension a multiple of
// 7^ceil(k/2). (The paper states the dimension must be a multiple of
// f * 2^r * 7^ceil(k/2); its own Table 3 rows satisfy only the 7-power
// part — 13 does not divide 32928 — so we enforce the part the rows
// obey and treat the f and 2^r factors as handled by the
// implementation's padding.)
func ValidateParams(ranks, n int) error {
	if ranks < 1 || n < 1 {
		return fmt.Errorf("strassen: invalid ranks=%d n=%d", ranks, n)
	}
	_, k := factorSevens(ranks)
	pow7 := 1
	for i := 0; i < (k+1)/2; i++ {
		pow7 *= 7
	}
	if n%pow7 != 0 {
		return fmt.Errorf("strassen: dimension %d is not a multiple of 7^ceil(%d/2) = %d", n, k, pow7)
	}
	return nil
}

// factorSevens writes ranks = f * 7^k with 7 not dividing f.
func factorSevens(ranks int) (f, k int) {
	f = ranks
	for f%7 == 0 {
		f /= 7
		k++
	}
	return f, k
}

// FactorSevens is the exported form of the f*7^k decomposition used in
// Tables 3 and 4.
func FactorSevens(ranks int) (f, k int) { return factorSevens(ranks) }
