package strassen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netpart/internal/matrix"
)

func classical(a, b *matrix.Matrix) *matrix.Matrix {
	c := matrix.New(a.Rows, b.Cols)
	matrix.Mul(c, a, b)
	return c
}

func TestStrassenMatchesClassical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 4, 6, 8, 16, 32, 48, 64, 96, 100, 128} {
		a := matrix.New(n, n)
		b := matrix.New(n, n)
		a.FillRandom(rng)
		b.FillRandom(rng)
		got := MultiplyCutoff(a, b, 8)
		want := classical(a, b)
		if d := matrix.MaxAbsDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: max diff %v", n, d)
		}
	}
}

func TestStrassenQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		cutoff := 1 + rng.Intn(16)
		a := matrix.New(n, n)
		b := matrix.New(n, n)
		a.FillRandom(rng)
		b.FillRandom(rng)
		got := MultiplyCutoff(a, b, cutoff)
		want := classical(a, b)
		return matrix.MaxAbsDiff(got, want) <= 1e-9*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStrassenPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"cutoff":     func() { MultiplyCutoff(matrix.New(2, 2), matrix.New(2, 2), 0) },
		"not square": func() { Multiply(matrix.New(2, 3), matrix.New(3, 2)) },
		"mismatch":   func() { Multiply(matrix.New(2, 2), matrix.New(4, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFlopCount(t *testing.T) {
	// At or below cutoff: classical count.
	if FlopCount(8, 8) != ClassicalFlopCount(8) {
		t.Error("cutoff flops")
	}
	// One recursion level on n=16, cutoff 8:
	// 15*(8^2) + 7*(2*512-64) = 960 + 7*960 = 7680.
	want := 15.0*64 + 7*ClassicalFlopCount(8)
	if got := FlopCount(16, 8); got != want {
		t.Errorf("FlopCount(16,8) = %v, want %v", got, want)
	}
	// Strassen beats classical asymptotically.
	if FlopCount(1024, 32) >= ClassicalFlopCount(1024) {
		t.Error("Strassen should use fewer flops at n=1024")
	}
}

func TestCostsBasics(t *testing.T) {
	// P=7, one BFS step, n=4: redistribution volume 3.5*16 = 56 words
	// total; per rank 3.5*16/7 = 8.
	c, err := Costs(4, 7, AllBFS(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalWords != 56 {
		t.Errorf("total words %v, want 56", c.TotalWords)
	}
	if c.WordsPerRank != 8 {
		t.Errorf("words per rank %v, want 8", c.WordsPerRank)
	}
	if c.LeafDim != 2 {
		t.Errorf("leaf dim %d", c.LeafDim)
	}
	// Leaf flops: each of the 7 leaves is a 2x2 classical multiply
	// done by 1 rank: 2*8-4 = 12 flops, plus top-level adds
	// 15*(2^2)/7 per rank.
	wantFlops := 12 + 15.0*4/7
	if math.Abs(c.FlopsPerRank-wantFlops) > 1e-12 {
		t.Errorf("flops per rank %v, want %v", c.FlopsPerRank, wantFlops)
	}
}

func TestCostsErrors(t *testing.T) {
	if _, err := Costs(4, 6, AllBFS(1)); err == nil {
		t.Error("P not divisible by 7 should fail")
	}
	if _, err := Costs(5, 7, AllBFS(1)); err == nil {
		t.Error("odd n should fail")
	}
	if _, err := Costs(0, 7, AllBFS(1)); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestCostsDFSMovesNoWords(t *testing.T) {
	bfsOnly, err := Costs(32, 7, AllBFS(1))
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := Costs(32, 7, Schedule{DFS, BFS})
	if err != nil {
		t.Fatal(err)
	}
	if mixed.LevelTotalWords[0] != 0 {
		t.Error("DFS step should move no words")
	}
	// The BFS step in the mixed schedule happens one level deeper
	// (dimension 16, 7 subproblems): volume 7 * 3.5 * 256.
	if mixed.LevelTotalWords[1] != 7*3.5*256 {
		t.Errorf("mixed BFS volume %v", mixed.LevelTotalWords[1])
	}
	_ = bfsOnly
}

// TestWorkingSetMatchesPaper reproduces the §4.3 storage computation:
// 4 BFS steps on n=9408 need 3*(7/4)^4*8*9408^2 = 18.55 GiB for the
// matrices, doubled for communication buffers.
func TestWorkingSetMatchesPaper(t *testing.T) {
	matricesOnly := WorkingSetBytes(9408, 4) / 2
	gib := matricesOnly / (1 << 30)
	if math.Abs(gib-18.55) > 0.01 {
		t.Errorf("working set = %.4f GiB, paper says 18.55", gib)
	}
}

func TestValidateParams(t *testing.T) {
	// Table 3 rows.
	for _, c := range []struct{ ranks, n int }{
		{31213, 32928},  // 13*7^4, n = 672*49
		{117649, 21952}, // 7^6, n = 64*343
		{2401, 9408},    // 7^4, Table 4
		{4802, 9408},    // 2*7^4
		{9604, 9408},    // 4*7^4
	} {
		if err := ValidateParams(c.ranks, c.n); err != nil {
			t.Errorf("ranks=%d n=%d: %v", c.ranks, c.n, err)
		}
	}
	if err := ValidateParams(31213, 32929); err == nil {
		t.Error("bad dimension should fail")
	}
	if err := ValidateParams(2401, 100); err == nil {
		t.Error("n=100 not divisible by 49 should fail")
	}
}

func TestFactorSevens(t *testing.T) {
	for _, c := range []struct{ ranks, f, k int }{
		{31213, 13, 4}, {117649, 1, 6}, {2401, 1, 4}, {4802, 2, 4}, {9604, 4, 4}, {6, 6, 0},
	} {
		f, k := FactorSevens(c.ranks)
		if f != c.f || k != c.k {
			t.Errorf("FactorSevens(%d) = (%d,%d), want (%d,%d)", c.ranks, f, k, c.f, c.k)
		}
	}
}

func TestScheduleBFSCount(t *testing.T) {
	if AllBFS(3).BFSCount() != 3 {
		t.Error("AllBFS count")
	}
	if (Schedule{BFS, DFS, BFS}).BFSCount() != 2 {
		t.Error("mixed count")
	}
}

func BenchmarkStrassen256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := matrix.New(256, 256)
	y := matrix.New(256, 256)
	x.FillRandom(rng)
	y.FillRandom(rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Multiply(x, y)
	}
}

func BenchmarkClassical256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := matrix.New(256, 256)
	y := matrix.New(256, 256)
	x.FillRandom(rng)
	y.FillRandom(rng)
	z := matrix.New(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matrix.Mul(z, x, y)
	}
}
