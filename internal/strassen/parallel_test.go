package strassen

import (
	"math/rand"
	"testing"

	"netpart/internal/matrix"
	"netpart/internal/mpi"
	"netpart/internal/torus"
)

// runParallel multiplies on p ranks over a small torus and returns the
// product from rank 0 along with the run stats.
func runParallel(t *testing.T, p, n, cutoff int, seed int64) (*matrix.Matrix, mpi.Stats) {
	t.Helper()
	dims := torus.Shape{p, 1}
	if p > 16 {
		dims = torus.Shape{7, 7}
	}
	tor := torus.MustNew(dims...)
	nodes := tor.NumVertices()
	mapping := make([]int, p)
	for i := range mapping {
		mapping[i] = i % nodes
	}
	var result *matrix.Matrix
	stats, err := mpi.Run(mpi.Config{Topology: tor, Ranks: p, RankToNode: mapping}, func(c *mpi.Comm) {
		var a, b *matrix.Matrix
		if c.Rank() == 0 {
			rng := rand.New(rand.NewSource(seed))
			a = matrix.New(n, n)
			b = matrix.New(n, n)
			a.FillRandom(rng)
			b.FillRandom(rng)
		}
		out := ParallelMultiply(c, a, b, cutoff)
		if c.Rank() == 0 {
			result = out
		} else if out != nil {
			t.Errorf("rank %d should return nil", c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return result, stats
}

func TestParallelMatchesSequential(t *testing.T) {
	for _, c := range []struct{ p, n int }{
		{1, 12}, {7, 8}, {7, 24}, {49, 16}, {49, 28},
	} {
		got, _ := runParallel(t, c.p, c.n, 4, int64(c.p*1000+c.n))
		rng := rand.New(rand.NewSource(int64(c.p*1000 + c.n)))
		a := matrix.New(c.n, c.n)
		b := matrix.New(c.n, c.n)
		a.FillRandom(rng)
		b.FillRandom(rng)
		want := classical(a, b)
		if d := matrix.MaxAbsDiff(got, want); d > 1e-9*float64(c.n) {
			t.Errorf("p=%d n=%d: max diff %v", c.p, c.n, d)
		}
	}
}

func TestParallelMovesExpectedTraffic(t *testing.T) {
	// On 7 ranks, one BFS level for an n x n problem ships 6 operand
	// pairs of (n/2)^2 doubles down and 6 results back:
	// 6*2*(n/2)^2*8 + 6*(n/2)^2*8 bytes = 18*(n/2)^2*8.
	n := 16
	_, stats := runParallel(t, 7, n, 64, 5)
	want := 18.0 * float64((n/2)*(n/2)) * 8
	if stats.TotalBytes != want {
		t.Errorf("traffic %v bytes, want %v", stats.TotalBytes, want)
	}
	// 12 operand messages + 6 results.
	if stats.Messages != 18 {
		t.Errorf("messages %d, want 18", stats.Messages)
	}
}

func TestParallelPanicsOnBadSize(t *testing.T) {
	tor := torus.MustNew(6, 1)
	_, err := mpi.Run(mpi.Config{Topology: tor}, func(c *mpi.Comm) {
		var a, b *matrix.Matrix
		if c.Rank() == 0 {
			a = matrix.New(4, 4)
			b = matrix.New(4, 4)
		}
		ParallelMultiply(c, a, b, 4) // 6 ranks: not a power of 7
	})
	if err == nil {
		t.Error("expected error for non-power-of-7 communicator")
	}
}

func TestParallelPanicsOnBadDimension(t *testing.T) {
	tor := torus.MustNew(7, 1)
	_, err := mpi.Run(mpi.Config{Topology: tor}, func(c *mpi.Comm) {
		var a, b *matrix.Matrix
		if c.Rank() == 0 {
			a = matrix.New(5, 5) // odd: cannot take one BFS level
			b = matrix.New(5, 5)
		}
		ParallelMultiply(c, a, b, 4)
	})
	if err == nil {
		t.Error("expected error for indivisible dimension")
	}
}

func BenchmarkParallelStrassen49Ranks(b *testing.B) {
	tor := torus.MustNew(7, 7)
	rng := rand.New(rand.NewSource(1))
	a := matrix.New(56, 56)
	bb := matrix.New(56, 56)
	a.FillRandom(rng)
	bb.FillRandom(rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := mpi.Run(mpi.Config{Topology: tor, Ranks: 49}, func(c *mpi.Comm) {
			var x, y *matrix.Matrix
			if c.Rank() == 0 {
				x, y = a, bb
			}
			ParallelMultiply(c, x, y, 8)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
