// Package strassen implements the Strassen-Winograd fast matrix
// multiplication algorithm — the workload of the paper's §4.2 and §4.3
// experiments — in three forms:
//
//   - a sequential recursion (Multiply) with the 7-multiplication,
//     15-addition Winograd schedule and a classical-multiplication
//     cutoff, validated against classical multiplication;
//   - a distributed BFS-tree execution (ParallelMultiply) that runs on
//     the simulated MPI machine of package mpi on P = 7^k ranks, with
//     genuine message traffic for every operand distribution and
//     result collection;
//   - exact communication- and computation-volume accounting
//     (Costs) for the BFS/DFS schedules of the
//     communication-avoiding parallel Strassen (CAPS) algorithm of
//     Ballard et al. [8, 25], which the paper's experiments ran; the
//     cost model in package model maps these volumes onto partition
//     geometries.
package strassen

import (
	"fmt"

	"netpart/internal/matrix"
)

// DefaultCutoff is the dimension at or below which Multiply switches
// to classical multiplication. 64 balances recursion overhead against
// the O(n^3)/O(n^2.81) crossover for pure-Go kernels.
const DefaultCutoff = 64

// Multiply returns a * b using Strassen-Winograd with the default
// cutoff. Dimensions must be square and equal; odd dimensions fall
// back to classical multiplication at that level.
func Multiply(a, b *matrix.Matrix) *matrix.Matrix {
	return MultiplyCutoff(a, b, DefaultCutoff)
}

// MultiplyCutoff is Multiply with an explicit cutoff (>= 1).
func MultiplyCutoff(a, b *matrix.Matrix, cutoff int) *matrix.Matrix {
	if cutoff < 1 {
		panic(fmt.Sprintf("strassen: invalid cutoff %d", cutoff))
	}
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		panic(fmt.Sprintf("strassen: need equal square matrices, got %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := matrix.New(a.Rows, a.Cols)
	multiply(c, a, b, cutoff)
	return c
}

// multiply computes c = a*b recursively.
func multiply(c, a, b *matrix.Matrix, cutoff int) {
	n := a.Rows
	if n <= cutoff || n%2 != 0 {
		matrix.Mul(c, a, b)
		return
	}
	h := n / 2
	a11, a12, a21, a22 := a.Quadrants()
	b11, b12, b21, b22 := b.Quadrants()
	c11, c12, c21, c22 := c.Quadrants()

	// Winograd's schedule: 7 recursive products, 15 additions.
	s1 := matrix.New(h, h)
	s2 := matrix.New(h, h)
	s3 := matrix.New(h, h)
	s4 := matrix.New(h, h)
	t1 := matrix.New(h, h)
	t2 := matrix.New(h, h)
	t3 := matrix.New(h, h)
	t4 := matrix.New(h, h)
	matrix.Add(s1, a21, a22) // S1 = A21 + A22
	matrix.Sub(s2, s1, a11)  // S2 = S1 - A11
	matrix.Sub(s3, a11, a21) // S3 = A11 - A21
	matrix.Sub(s4, a12, s2)  // S4 = A12 - S2
	matrix.Sub(t1, b12, b11) // T1 = B12 - B11
	matrix.Sub(t2, b22, t1)  // T2 = B22 - T1
	matrix.Sub(t3, b22, b12) // T3 = B22 - B12
	matrix.Sub(t4, t2, b21)  // T4 = T2 - B21

	m1 := matrix.New(h, h)
	m2 := matrix.New(h, h)
	m3 := matrix.New(h, h)
	m4 := matrix.New(h, h)
	m5 := matrix.New(h, h)
	m6 := matrix.New(h, h)
	m7 := matrix.New(h, h)
	multiply(m1, a11, b11, cutoff) // M1 = A11 B11
	multiply(m2, a12, b21, cutoff) // M2 = A12 B21
	multiply(m3, s4, b22, cutoff)  // M3 = S4 B22
	multiply(m4, a22, t4, cutoff)  // M4 = A22 T4
	multiply(m5, s1, t1, cutoff)   // M5 = S1 T1
	multiply(m6, s2, t2, cutoff)   // M6 = S2 T2
	multiply(m7, s3, t3, cutoff)   // M7 = S3 T3

	u2 := matrix.New(h, h)
	u3 := matrix.New(h, h)
	matrix.Add(c11, m1, m2) // C11 = M1 + M2
	matrix.Add(u2, m1, m6)  // U2 = M1 + M6
	matrix.Add(u3, u2, m7)  // U3 = U2 + M7
	matrix.Add(c12, u2, m5) // U4 = U2 + M5
	matrix.Add(c12, c12, m3)
	matrix.Sub(c21, u3, m4) // C21 = U3 - M4
	matrix.Add(c22, u3, m5) // C22 = U3 + M5
}

// FlopCount returns the floating-point operation count of
// MultiplyCutoff on n x n inputs: recursive levels contribute 15
// quadrant additions (15 (n/2)^2 flops) plus 7 recursive calls;
// classical leaves contribute 2 m^3 - m^2 flops.
func FlopCount(n, cutoff int) float64 {
	if n <= cutoff || n%2 != 0 {
		fn := float64(n)
		return 2*fn*fn*fn - fn*fn
	}
	h := float64(n / 2)
	return 15*h*h + 7*FlopCount(n/2, cutoff)
}

// ClassicalFlopCount returns 2n^3 - n^2, the classical multiplication
// flop count.
func ClassicalFlopCount(n int) float64 {
	fn := float64(n)
	return 2*fn*fn*fn - fn*fn
}
