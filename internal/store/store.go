// Package store is the persistent result tier under the serving
// layer's coalescing cache: a pluggable content-addressed blob store
// for finished experiment results.
//
// The store trades on the same property the cache does: dynamic
// results are identified by content hashes of their normalized
// definitions ("scenario:<hash>", "sweep:<hash>", "trace:<hash>",
// "tracegrid:<hash>"), so a stored blob is immutable by construction
// — an ID either has bytes or it doesn't, and two writers racing on
// one ID are writing identical bytes. That makes the persistence
// contract nearly correctness-free: no versioning, no invalidation
// protocol, no coherence traffic between a fleet of daemons sharing
// results.
//
// A Blob carries everything the serving layer needs to replay a
// result without recomputing or re-encoding it: every rendered
// encoding (JSON, CSV, Markdown, plus the internal typed-data
// encoding peers exchange) with its body bytes and strong ETag, and
// the experiment descriptor metadata. Round-tripping is byte-exact:
// the bytes and tags read back are the bytes and tags written.
//
// Two backends implement Store: Memory (tests, ephemeral daemons)
// and FS (a directory of checksummed blob files with atomic
// tmp+rename writes, corrupt/partial-blob tolerance, and
// LRU-by-access eviction under a byte budget). Both are safe for
// concurrent use.
package store

import (
	"fmt"
	"sort"
	"sync"
)

// Meta is the experiment descriptor persisted alongside a result's
// encodings, enough to list an archive entry without decoding bodies.
type Meta struct {
	Experiment string `json:"experiment"` // experiment / dynamic ID
	Title      string `json:"title"`
	Kind       string `json:"kind"`
	Cost       string `json:"cost"`
	FullRounds bool   `json:"full_rounds,omitempty"`
}

// Encoding is one rendered representation of a result: the negotiated
// content type, the exact body bytes, and the strong ETag over them.
type Encoding struct {
	ContentType string `json:"content_type"`
	ETag        string `json:"etag"`
	Body        []byte `json:"body"`
}

// Blob is one stored result: its content-hash ID, descriptor
// metadata, and every rendered encoding.
type Blob struct {
	ID        string     `json:"id"`
	Meta      Meta       `json:"meta"`
	Encodings []Encoding `json:"encodings"`
}

// Size returns the blob's accounted payload size: the sum of its
// encoding bodies. Header and metadata overhead is deliberately
// excluded so the byte budget is comparable across backends.
func (b *Blob) Size() int64 {
	var n int64
	for _, e := range b.Encodings {
		n += int64(len(e.Body))
	}
	return n
}

// Info is one archive listing entry.
type Info struct {
	ID    string `json:"id"`
	Bytes int64  `json:"bytes"`
	Meta  Meta   `json:"meta"`
}

// Stats is a point-in-time observability snapshot of a store.
type Stats struct {
	Backend   string `json:"backend"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes,omitempty"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Puts      int64  `json:"puts"`
	Deletes   int64  `json:"deletes"`
	Evictions int64  `json:"evictions"`
	// Corrupt counts blobs dropped because their bytes did not
	// survive: truncated files, checksum mismatches, unparseable
	// headers. Always zero for the memory backend.
	Corrupt int64 `json:"corrupt,omitempty"`
}

// Store is a content-addressed result store. Implementations are safe
// for concurrent use. Get reports a miss — never an error — for IDs
// whose bytes are absent, damaged, or evicted: the caller's recovery
// is always the same (recompute), so the store never makes it handle
// failure modes separately.
type Store interface {
	// Get returns the blob for id, or ok=false on any kind of miss.
	// The returned blob must not be mutated.
	Get(id string) (b *Blob, ok bool)
	// Put stores the blob under blob.ID, evicting least-recently-used
	// entries if a byte budget requires it. Storing an ID that is
	// already present is a no-op (content-addressed: same ID, same
	// bytes).
	Put(blob *Blob) error
	// Delete removes the blob for id (no-op when absent).
	Delete(id string) error
	// List returns up to limit entries with IDs strictly greater than
	// after, in ascending ID order — a stable pagination cursor.
	// limit <= 0 means no limit.
	List(after string, limit int) []Info
	// Stats returns an observability snapshot.
	Stats() Stats
}

// Memory is the in-memory Store: the FS backend's semantics (byte
// budget, LRU eviction, content-addressed immutability) without the
// files. Useful in tests and for ephemeral daemons that want archive
// endpoints without persistence.
type Memory struct {
	maxBytes int64

	mu    sync.Mutex
	blobs map[string]*memEntry
	bytes int64
	clock int64 // logical access clock for LRU

	hits, misses, puts, deletes, evictions int64
}

type memEntry struct {
	blob   *Blob
	size   int64
	access int64
}

// NewMemory returns an in-memory store bounded by maxBytes (0 means
// unbounded).
func NewMemory(maxBytes int64) *Memory {
	return &Memory{maxBytes: maxBytes, blobs: map[string]*memEntry{}}
}

// Get implements Store.
func (m *Memory) Get(id string) (*Blob, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.blobs[id]
	if !ok {
		m.misses++
		return nil, false
	}
	m.clock++
	e.access = m.clock
	m.hits++
	return e.blob, true
}

// Put implements Store.
func (m *Memory) Put(blob *Blob) error {
	if blob == nil || blob.ID == "" {
		return fmt.Errorf("store: put without an ID")
	}
	size := blob.Size()
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.blobs[blob.ID]; ok {
		return nil // content-addressed: already present means already identical
	}
	if m.maxBytes > 0 && size > m.maxBytes {
		return fmt.Errorf("store: blob %s (%d bytes) exceeds the %d-byte budget", blob.ID, size, m.maxBytes)
	}
	for m.maxBytes > 0 && m.bytes+size > m.maxBytes {
		m.evictOldestLocked()
	}
	m.clock++
	m.blobs[blob.ID] = &memEntry{blob: blob, size: size, access: m.clock}
	m.bytes += size
	m.puts++
	return nil
}

// evictOldestLocked drops the least-recently-accessed entry. Callers
// hold m.mu and guarantee the map is non-empty via the byte budget.
func (m *Memory) evictOldestLocked() {
	var victim string
	var oldest int64
	for id, e := range m.blobs {
		if victim == "" || e.access < oldest {
			victim, oldest = id, e.access
		}
	}
	if victim == "" {
		return
	}
	m.bytes -= m.blobs[victim].size
	delete(m.blobs, victim)
	m.evictions++
}

// Delete implements Store.
func (m *Memory) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.blobs[id]; ok {
		m.bytes -= e.size
		delete(m.blobs, id)
		m.deletes++
	}
	return nil
}

// List implements Store.
func (m *Memory) List(after string, limit int) []Info {
	m.mu.Lock()
	infos := make([]Info, 0, len(m.blobs))
	for id, e := range m.blobs {
		if id <= after {
			continue
		}
		infos = append(infos, Info{ID: id, Bytes: e.size, Meta: e.blob.Meta})
	}
	m.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	if limit > 0 && len(infos) > limit {
		infos = infos[:limit]
	}
	return infos
}

// Stats implements Store.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Backend:   "memory",
		Entries:   len(m.blobs),
		Bytes:     m.bytes,
		MaxBytes:  m.maxBytes,
		Hits:      m.hits,
		Misses:    m.misses,
		Puts:      m.puts,
		Deletes:   m.deletes,
		Evictions: m.evictions,
	}
}
