package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FS blob file layout. Each blob is one file:
//
//	netpart-blob v1 <sha256-hex> <length>\n   ← header
//	<index-json>\n                            ← ID, meta, accounted bytes
//	<payload-json>                            ← the encodings
//
// The header's length and checksum cover everything after the header
// line (index line + payload), so a partial write (crash mid-write,
// truncation) fails the length check and a corrupted byte anywhere
// fails the checksum. Writes are atomic — a temp file in the same
// directory, synced, then renamed — so a reader never observes a
// half-written blob under its final name; damaged files are detected,
// counted, and silently removed, and the caller recomputes (the ID is
// a content hash, so recomputation reproduces the same bytes).
const (
	fsMagic  = "netpart-blob v1"
	fsSuffix = ".blob"
	fsTmp    = ".tmp-"
)

// fsIndexLine is the second line of a blob file: everything the store
// needs to list and account the blob without decoding encoding bodies.
type fsIndexLine struct {
	ID    string `json:"id"`
	Bytes int64  `json:"bytes"` // accounted payload size (sum of encoding bodies)
	Meta  Meta   `json:"meta"`
}

// fsPayload is the checksummed body of a blob file.
type fsPayload struct {
	Encodings []Encoding `json:"encodings"`
}

// fsEntry is one indexed blob.
type fsEntry struct {
	path   string
	bytes  int64 // accounted size
	meta   Meta
	access int64 // logical LRU clock
}

// FS is the filesystem Store: one checksummed file per blob in a flat
// directory, with an in-memory index built at Open and maintained by
// Put/Delete. Access recency is tracked on the logical clock (seeded
// from file modification times at Open, and persisted best-effort by
// touching files on Get) so LRU eviction survives restarts.
type FS struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	index map[string]*fsEntry
	bytes int64
	clock int64

	hits, misses, puts, deletes, evictions, corrupt int64
}

// OpenFS opens (creating if needed) a filesystem store in dir bounded
// by maxBytes (0 means unbounded). Leftover temp files from crashed
// writes are removed; blob files with damaged headers or truncated
// contents are counted as corrupt and deleted, so a store that
// survived a crash opens clean. Payload checksums are verified lazily
// on Get, keeping Open proportional to the entry count, not the byte
// count.
func OpenFS(dir string, maxBytes int64) (*FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &FS{dir: dir, maxBytes: maxBytes, index: map[string]*fsEntry{}}

	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", dir, err)
	}
	type seed struct {
		entry *fsEntry
		id    string
		mtime time.Time
	}
	var seeds []seed
	for _, de := range names {
		name := de.Name()
		path := filepath.Join(dir, name)
		if strings.HasPrefix(name, fsTmp) {
			os.Remove(path) // crashed mid-write; the rename never happened
			continue
		}
		if de.IsDir() || !strings.HasSuffix(name, fsSuffix) {
			continue
		}
		idx, ok := s.verifyHeader(path)
		if !ok {
			s.corrupt++
			slog.Warn("store: dropping corrupt blob at open", "path", path)
			os.Remove(path)
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue
		}
		seeds = append(seeds, seed{
			entry: &fsEntry{path: path, bytes: idx.Bytes, meta: idx.Meta},
			id:    idx.ID,
			mtime: fi.ModTime(),
		})
	}
	// Seed the LRU clock from modification times: oldest-touched files
	// get the lowest ticks, so eviction order is preserved across
	// restarts.
	sort.Slice(seeds, func(i, j int) bool { return seeds[i].mtime.Before(seeds[j].mtime) })
	for _, sd := range seeds {
		s.clock++
		sd.entry.access = s.clock
		s.index[sd.id] = sd.entry
		s.bytes += sd.entry.bytes
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *FS) Dir() string { return s.dir }

// Path returns the file a blob ID maps to (whether or not it exists):
// the sanitized ID plus a short hash of the raw ID, so distinct IDs
// never collide on one file name.
func (s *FS) Path(id string) string {
	sanitized := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, id)
	h := fnv.New32a()
	h.Write([]byte(id))
	return filepath.Join(s.dir, fmt.Sprintf("%s-%08x%s", sanitized, h.Sum32(), fsSuffix))
}

// parseHeader parses a blob file's header line into the payload
// checksum and length.
func parseHeader(line string) (sum string, length int64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) != 4 || fields[0]+" "+fields[1] != fsMagic || len(fields[2]) != sha256.Size*2 {
		return "", 0, false
	}
	length, err := strconv.ParseInt(fields[3], 10, 64)
	if err != nil || length < 0 {
		return "", 0, false
	}
	return fields[2], length, true
}

// verifyHeader reads and validates a blob file's header and index
// lines against the file's actual size (catching truncation and
// header damage without reading the payload). It returns the parsed
// index line.
func (s *FS) verifyHeader(path string) (fsIndexLine, bool) {
	f, err := os.Open(path)
	if err != nil {
		return fsIndexLine{}, false
	}
	defer f.Close()
	br := bufio.NewReader(f)
	header, err := br.ReadString('\n')
	if err != nil {
		return fsIndexLine{}, false
	}
	_, length, ok := parseHeader(header)
	if !ok {
		return fsIndexLine{}, false
	}
	fi, err := f.Stat()
	if err != nil || fi.Size() != int64(len(header))+length {
		return fsIndexLine{}, false
	}
	indexLine, err := br.ReadString('\n')
	if err != nil {
		return fsIndexLine{}, false
	}
	var idx fsIndexLine
	if err := json.Unmarshal([]byte(indexLine), &idx); err != nil || idx.ID == "" {
		return fsIndexLine{}, false
	}
	return idx, true
}

// Get implements Store. The payload checksum is verified on every
// read; a blob whose bytes rotted since Open is dropped and reported
// as a miss.
func (s *FS) Get(id string) (*Blob, bool) {
	s.mu.Lock()
	e, ok := s.index[id]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	path := e.path
	s.mu.Unlock()

	blob, ok := s.readBlob(path, id)

	s.mu.Lock()
	defer s.mu.Unlock()
	if !ok {
		// Damaged on disk: drop it so the recomputed result can land.
		if cur, present := s.index[id]; present && cur.path == path {
			s.bytes -= cur.bytes
			delete(s.index, id)
		}
		s.corrupt++
		s.misses++
		slog.Warn("store: dropping corrupt blob on read", "id", id, "path", path)
		os.Remove(path)
		return nil, false
	}
	if cur, present := s.index[id]; present {
		s.clock++
		cur.access = s.clock
	}
	s.hits++
	// Best-effort recency persistence: the mtime seeds the LRU clock
	// on the next Open.
	now := time.Now()
	os.Chtimes(path, now, now) //nolint:errcheck
	return blob, true
}

// readBlob reads and fully verifies one blob file.
func (s *FS) readBlob(path, id string) (*Blob, bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, false
	}
	header, rest := string(raw[:nl+1]), raw[nl+1:]
	sum, length, ok := parseHeader(header)
	if !ok || int64(len(rest)) != length {
		return nil, false
	}
	digest := sha256.Sum256(rest)
	if hex.EncodeToString(digest[:]) != sum {
		return nil, false
	}
	nl = bytes.IndexByte(rest, '\n')
	if nl < 0 {
		return nil, false
	}
	var idx fsIndexLine
	if err := json.Unmarshal(rest[:nl], &idx); err != nil || idx.ID != id {
		return nil, false
	}
	var payload fsPayload
	if err := json.Unmarshal(rest[nl+1:], &payload); err != nil {
		return nil, false
	}
	return &Blob{ID: idx.ID, Meta: idx.Meta, Encodings: payload.Encodings}, true
}

// Put implements Store: marshal, write to a temp file in the store
// directory, sync, rename. The rename is the commit point — a crash
// at any earlier moment leaves only a temp file Open will sweep away.
func (s *FS) Put(blob *Blob) error {
	if blob == nil || blob.ID == "" {
		return fmt.Errorf("store: put without an ID")
	}
	size := blob.Size()
	s.mu.Lock()
	if _, ok := s.index[blob.ID]; ok {
		s.mu.Unlock()
		return nil // content-addressed: already present means already identical
	}
	if s.maxBytes > 0 && size > s.maxBytes {
		s.mu.Unlock()
		return fmt.Errorf("store: blob %s (%d bytes) exceeds the %d-byte budget", blob.ID, size, s.maxBytes)
	}
	s.mu.Unlock()

	idxLine, err := json.Marshal(fsIndexLine{ID: blob.ID, Bytes: size, Meta: blob.Meta})
	if err != nil {
		return fmt.Errorf("store: encode %s: %w", blob.ID, err)
	}
	payload, err := json.Marshal(fsPayload{Encodings: blob.Encodings})
	if err != nil {
		return fmt.Errorf("store: encode %s: %w", blob.ID, err)
	}
	body := make([]byte, 0, len(idxLine)+1+len(payload))
	body = append(body, idxLine...)
	body = append(body, '\n')
	body = append(body, payload...)
	digest := sha256.Sum256(body)
	header := fmt.Sprintf("%s %s %d\n", fsMagic, hex.EncodeToString(digest[:]), len(body))

	tmp, err := os.CreateTemp(s.dir, fsTmp+"*")
	if err != nil {
		return fmt.Errorf("store: write %s: %w", blob.ID, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.WriteString(header); err == nil {
		_, err = tmp.Write(body)
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: write %s: %w", blob.ID, err)
	}
	path := s.Path(blob.ID)
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: commit %s: %w", blob.ID, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[blob.ID]; ok {
		return nil // concurrent identical Put won the race; same bytes either way
	}
	for s.maxBytes > 0 && s.bytes+size > s.maxBytes {
		s.evictOldestLocked()
	}
	s.clock++
	s.index[blob.ID] = &fsEntry{path: path, bytes: size, meta: blob.Meta, access: s.clock}
	s.bytes += size
	s.puts++
	return nil
}

// evictOldestLocked removes the least-recently-accessed blob and its
// file. Callers hold s.mu and guarantee the index is non-empty via
// the byte budget.
func (s *FS) evictOldestLocked() {
	var victim string
	var oldest int64
	for id, e := range s.index {
		if victim == "" || e.access < oldest {
			victim, oldest = id, e.access
		}
	}
	if victim == "" {
		return
	}
	e := s.index[victim]
	s.bytes -= e.bytes
	delete(s.index, victim)
	os.Remove(e.path)
	s.evictions++
}

// Delete implements Store.
func (s *FS) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[id]
	if !ok {
		return nil
	}
	s.bytes -= e.bytes
	delete(s.index, id)
	s.deletes++
	if err := os.Remove(e.path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete %s: %w", id, err)
	}
	return nil
}

// List implements Store.
func (s *FS) List(after string, limit int) []Info {
	s.mu.Lock()
	infos := make([]Info, 0, len(s.index))
	for id, e := range s.index {
		if id <= after {
			continue
		}
		infos = append(infos, Info{ID: id, Bytes: e.bytes, Meta: e.meta})
	}
	s.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	if limit > 0 && len(infos) > limit {
		infos = infos[:limit]
	}
	return infos
}

// Stats implements Store.
func (s *FS) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Backend:   "fs",
		Entries:   len(s.index),
		Bytes:     s.bytes,
		MaxBytes:  s.maxBytes,
		Hits:      s.hits,
		Misses:    s.misses,
		Puts:      s.puts,
		Deletes:   s.deletes,
		Evictions: s.evictions,
		Corrupt:   s.corrupt,
	}
}
