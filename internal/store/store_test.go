package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// testBlob fabricates a deterministic blob with three encodings.
func testBlob(id string, pad int) *Blob {
	body := func(ct string) []byte {
		return append([]byte(id+" as "+ct+" "), bytes.Repeat([]byte{'x'}, pad)...)
	}
	return &Blob{
		ID:   id,
		Meta: Meta{Experiment: id, Title: "blob " + id, Kind: "table", Cost: "moderate"},
		Encodings: []Encoding{
			{ContentType: "application/json", ETag: `"j-` + id + `"`, Body: body("json")},
			{ContentType: "text/csv", ETag: `"c-` + id + `"`, Body: body("csv")},
			{ContentType: "text/markdown", ETag: `"m-` + id + `"`, Body: body("md")},
		},
	}
}

// backends runs a subtest against both Store implementations.
func backends(t *testing.T, fn func(t *testing.T, open func(maxBytes int64) Store)) {
	t.Helper()
	t.Run("memory", func(t *testing.T) {
		fn(t, func(maxBytes int64) Store { return NewMemory(maxBytes) })
	})
	t.Run("fs", func(t *testing.T) {
		fn(t, func(maxBytes int64) Store {
			s, err := OpenFS(t.TempDir(), maxBytes)
			if err != nil {
				t.Fatal(err)
			}
			return s
		})
	})
}

// TestRoundTrip: Put then Get returns byte-exact bodies, tags and
// meta on both backends.
func TestRoundTrip(t *testing.T) {
	backends(t, func(t *testing.T, open func(int64) Store) {
		s := open(0)
		want := testBlob("sweep:0011aabbcc", 0)
		if err := s.Put(want); err != nil {
			t.Fatal(err)
		}
		got, ok := s.Get("sweep:0011aabbcc")
		if !ok {
			t.Fatal("miss after put")
		}
		if got.ID != want.ID || got.Meta != want.Meta {
			t.Fatalf("meta round trip: got %+v want %+v", got, want)
		}
		if len(got.Encodings) != len(want.Encodings) {
			t.Fatalf("%d encodings, want %d", len(got.Encodings), len(want.Encodings))
		}
		for i, enc := range got.Encodings {
			w := want.Encodings[i]
			if enc.ContentType != w.ContentType || enc.ETag != w.ETag || !bytes.Equal(enc.Body, w.Body) {
				t.Errorf("encoding %d not byte-exact: %+v", i, enc)
			}
		}
		if _, ok := s.Get("sweep:unknown"); ok {
			t.Error("hit on unknown id")
		}
		st := s.Stats()
		if st.Entries != 1 || st.Puts != 1 || st.Hits != 1 || st.Misses != 1 {
			t.Errorf("stats %+v", st)
		}
		if st.Bytes != want.Size() {
			t.Errorf("bytes %d, want %d", st.Bytes, want.Size())
		}
	})
}

// TestPutIdempotent: a second Put of an already-present ID is a no-op
// (content-addressed identity).
func TestPutIdempotent(t *testing.T) {
	backends(t, func(t *testing.T, open func(int64) Store) {
		s := open(0)
		b := testBlob("trace:aa", 0)
		for range 3 {
			if err := s.Put(b); err != nil {
				t.Fatal(err)
			}
		}
		st := s.Stats()
		if st.Entries != 1 || st.Puts != 1 || st.Bytes != b.Size() {
			t.Errorf("stats after repeated puts: %+v", st)
		}
	})
}

// TestDelete removes the blob and its accounting.
func TestDelete(t *testing.T) {
	backends(t, func(t *testing.T, open func(int64) Store) {
		s := open(0)
		if err := s.Put(testBlob("scenario:dd", 0)); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete("scenario:dd"); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete("scenario:dd"); err != nil { // idempotent
			t.Fatal(err)
		}
		if _, ok := s.Get("scenario:dd"); ok {
			t.Error("hit after delete")
		}
		if st := s.Stats(); st.Entries != 0 || st.Bytes != 0 || st.Deletes != 1 {
			t.Errorf("stats %+v", st)
		}
	})
}

// TestLRUEviction: past the byte budget the least-recently-read blob
// goes first; a Get refreshes recency.
func TestLRUEviction(t *testing.T) {
	backends(t, func(t *testing.T, open func(int64) Store) {
		one := testBlob("sweep:01", 64).Size()
		s := open(3 * one)
		for _, id := range []string{"sweep:01", "sweep:02", "sweep:03"} {
			if err := s.Put(testBlob(id, 64)); err != nil {
				t.Fatal(err)
			}
		}
		// Touch 01 so 02 is now the LRU victim.
		if _, ok := s.Get("sweep:01"); !ok {
			t.Fatal("miss on sweep:01")
		}
		if err := s.Put(testBlob("sweep:04", 64)); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get("sweep:02"); ok {
			t.Error("LRU victim sweep:02 survived")
		}
		for _, id := range []string{"sweep:01", "sweep:03", "sweep:04"} {
			if _, ok := s.Get(id); !ok {
				t.Errorf("%s evicted, want kept", id)
			}
		}
		st := s.Stats()
		if st.Evictions != 1 || st.Entries != 3 {
			t.Errorf("stats %+v", st)
		}
		if st.Bytes > 3*one {
			t.Errorf("bytes %d over the %d budget", st.Bytes, 3*one)
		}
		// A blob alone over the budget is rejected, not stored.
		if err := s.Put(testBlob("sweep:huge", int(4*one))); err == nil {
			t.Error("oversized blob accepted")
		}
	})
}

// TestList paginates in ascending ID order with a stable cursor.
func TestList(t *testing.T) {
	backends(t, func(t *testing.T, open func(int64) Store) {
		s := open(0)
		ids := []string{"scenario:aa", "sweep:bb", "sweep:cc", "trace:dd", "tracegrid:ee"}
		for _, id := range ids {
			if err := s.Put(testBlob(id, 0)); err != nil {
				t.Fatal(err)
			}
		}
		var got []string
		after := ""
		for {
			page := s.List(after, 2)
			if len(page) == 0 {
				break
			}
			if len(page) > 2 {
				t.Fatalf("page of %d, limit 2", len(page))
			}
			for _, info := range page {
				got = append(got, info.ID)
				if info.Bytes <= 0 || info.Meta.Title == "" {
					t.Errorf("info %+v missing accounting or meta", info)
				}
			}
			after = page[len(page)-1].ID
		}
		want := fmt.Sprintf("%v", ids)
		if fmt.Sprintf("%v", got) != want {
			t.Errorf("listing %v, want %v", got, want)
		}
		if all := s.List("", 0); len(all) != len(ids) {
			t.Errorf("unlimited list has %d entries, want %d", len(all), len(ids))
		}
	})
}

// TestConcurrentAccess hammers one store from many goroutines; run
// under -race by CI.
func TestConcurrentAccess(t *testing.T) {
	backends(t, func(t *testing.T, open func(int64) Store) {
		s := open(0)
		var wg sync.WaitGroup
		for g := range 8 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range 20 {
					id := fmt.Sprintf("sweep:%02d", (g+i)%10)
					if err := s.Put(testBlob(id, 8)); err != nil {
						t.Error(err)
					}
					s.Get(id)
					s.List("", 4)
					if i%7 == 0 {
						s.Delete(id)
					}
				}
			}()
		}
		wg.Wait()
	})
}

// TestFSRestart: a new FS over the same directory serves the same
// bytes (warm start), preserves LRU order via mtimes, and keeps
// accounting.
func TestFSRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenFS(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := testBlob("sweep:restart", 128)
	if err := s1.Put(want); err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(testBlob("trace:other", 16)); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFS(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Entries != 2 || st.Corrupt != 0 {
		t.Fatalf("restart stats %+v", st)
	}
	got, ok := s2.Get("sweep:restart")
	if !ok {
		t.Fatal("miss after restart")
	}
	for i, enc := range got.Encodings {
		w := want.Encodings[i]
		if enc.ETag != w.ETag || !bytes.Equal(enc.Body, w.Body) {
			t.Errorf("encoding %d changed across restart", i)
		}
	}
}

// TestFSCorruptionTolerance: a truncated blob, a header-scribbled
// blob, and a payload-flipped blob are each detected, counted and
// silently dropped — intact blobs keep serving.
func TestFSCorruptionTolerance(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenFS(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"sweep:intact", "sweep:truncated", "sweep:badheader", "sweep:bitrot"}
	for _, id := range ids {
		if err := s1.Put(testBlob(id, 256)); err != nil {
			t.Fatal(err)
		}
	}
	damage := func(id string, fn func(path string, raw []byte)) {
		path := s1.Path(id)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		fn(path, raw)
	}
	// Truncate mid-file: simulates a torn write that somehow reached
	// the final name (or post-rename filesystem damage).
	damage("sweep:truncated", func(path string, raw []byte) {
		if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	})
	// Scribble the header line.
	damage("sweep:badheader", func(path string, raw []byte) {
		copy(raw, []byte("garbage-header"))
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	// Flip one payload byte: length still matches, checksum must catch it.
	damage("sweep:bitrot", func(path string, raw []byte) {
		raw[len(raw)-3] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	// A leftover temp file from a crashed write.
	if err := os.WriteFile(filepath.Join(dir, fsTmp+"crashed"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFS(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Truncation and header damage are structural: caught at Open.
	if st := s2.Stats(); st.Corrupt != 2 {
		t.Fatalf("open-time corrupt count %d, want 2 (stats %+v)", st.Corrupt, st)
	}
	if _, ok := s2.Get("sweep:truncated"); ok {
		t.Error("truncated blob served")
	}
	if _, ok := s2.Get("sweep:badheader"); ok {
		t.Error("header-damaged blob served")
	}
	// Bit rot passes the structural checks; the Get-time checksum
	// catches it and drops the file.
	if _, ok := s2.Get("sweep:bitrot"); ok {
		t.Error("bit-rotted blob served")
	}
	if st := s2.Stats(); st.Corrupt != 3 {
		t.Errorf("corrupt count %d, want 3", st.Corrupt)
	}
	if _, err := os.Stat(s2.Path("sweep:bitrot")); !os.IsNotExist(err) {
		t.Error("bit-rotted file not removed")
	}
	// The intact blob still round-trips byte-exactly.
	got, ok := s2.Get("sweep:intact")
	if !ok {
		t.Fatal("intact blob lost")
	}
	want := testBlob("sweep:intact", 256)
	for i, enc := range got.Encodings {
		if !bytes.Equal(enc.Body, want.Encodings[i].Body) {
			t.Errorf("intact encoding %d not byte-exact", i)
		}
	}
	// The crashed temp file was swept.
	if _, err := os.Stat(filepath.Join(dir, fsTmp+"crashed")); !os.IsNotExist(err) {
		t.Error("temp file survived open")
	}
}

// TestFSPathCollisionSafety: distinct IDs that sanitize to the same
// name still map to distinct files.
func TestFSPathCollisionSafety(t *testing.T) {
	s, err := OpenFS(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := "sweep:ab", "sweep_ab" // both sanitize to sweep_ab
	if s.Path(a) == s.Path(b) {
		t.Fatalf("path collision: %s", s.Path(a))
	}
	if err := s.Put(testBlob(a, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testBlob(b, 0)); err != nil {
		t.Fatal(err)
	}
	ga, _ := s.Get(a)
	gb, _ := s.Get(b)
	if ga == nil || gb == nil || ga.ID == gb.ID {
		t.Fatalf("blobs collided: %v %v", ga, gb)
	}
}

// BenchmarkStoreWarmGet measures the warm-start read path: one Get of
// a persisted multi-encoding blob from the FS backend (read, verify
// checksum, decode).
func BenchmarkStoreWarmGet(b *testing.B) {
	s, err := OpenFS(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Put(testBlob("sweep:bench", 4096)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for b.Loop() {
		if _, ok := s.Get("sweep:bench"); !ok {
			b.Fatal("miss")
		}
	}
}
