package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"netpart"
	"netpart/internal/scenario/sweep"
	"netpart/internal/store"
)

// tinyScenario is a cheap, real scenario document.
func tinyScenario(shape string) map[string]any {
	return map[string]any{
		"topology": map[string]any{"kind": "torus", "shape": shape},
		"workload": map[string]any{"pattern": "pairing", "bytes": 1e9},
	}
}

// tinySweep is a cheap, real 4-point sweep document.
func tinySweep(name string) map[string]any {
	return map[string]any{
		"name": name,
		"base": tinyScenario("4x4"),
		"axes": []map[string]any{
			{"path": "topology.shape", "values": []any{"4x4", "6x4"}},
			{"path": "workload.pattern", "values": []any{"pairing", "neighbor"}},
		},
	}
}

func TestHealthz(t *testing.T) {
	_, ts := realServer(t, Options{})
	code, _, body := get(t, ts.URL+"/v1/healthz", nil)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var doc struct {
		Status      string `json:"status"`
		Service     string `json:"service"`
		Version     string `json:"version"`
		Go          string `json:"go"`
		Experiments int    `json:"experiments"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if doc.Status != "ok" || doc.Service != "netpartd" {
		t.Errorf("doc %+v", doc)
	}
	if doc.Experiments != len(netpart.Registry()) {
		t.Errorf("experiments %d, want %d", doc.Experiments, len(netpart.Registry()))
	}
	if !strings.HasPrefix(doc.Go, "go") || doc.Version == "" {
		t.Errorf("build info %+v", doc)
	}
}

// TestScenarioSync: POST /v1/scenarios runs a real scenario, carries a
// strong ETag, revalidates with 304, and negotiates encodings.
func TestScenarioSync(t *testing.T) {
	_, ts := realServer(t, Options{})
	code, hdr, body := post(t, ts.URL+"/v1/scenarios", tinyScenario("6x4"))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	etag := hdr.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag")
	}
	if !strings.Contains(string(body), `"static bottleneck (s)"`) {
		t.Errorf("body: %s", body)
	}
	// Repeat is byte-identical (cache hit) with the same tag.
	code2, hdr2, body2 := post(t, ts.URL+"/v1/scenarios", tinyScenario("6x4"))
	if code2 != http.StatusOK || hdr2.Get("ETag") != etag || string(body2) != string(body) {
		t.Error("repeat not byte-identical")
	}
	// Markdown negotiation.
	code3, hdr3, body3 := post(t, ts.URL+"/v1/scenarios?format=markdown", tinyScenario("6x4"))
	if code3 != http.StatusOK || !strings.HasPrefix(hdr3.Get("Content-Type"), ctMarkdown) {
		t.Fatalf("markdown: %d %q", code3, hdr3.Get("Content-Type"))
	}
	if !strings.Contains(string(body3), "| metric") {
		t.Errorf("markdown body: %s", body3)
	}
}

func TestScenarioValidation(t *testing.T) {
	_, ts := realServer(t, Options{})
	for name, doc := range map[string]any{
		"unknown kind":  map[string]any{"topology": map[string]any{"kind": "moebius"}, "workload": map[string]any{"pattern": "pairing"}},
		"unknown field": map[string]any{"topology": map[string]any{"kind": "torus", "shape": "4x4"}, "workload": map[string]any{"pattern": "pairing"}, "turbo": true},
		"bad policy":    map[string]any{"topology": map[string]any{"kind": "torus", "shape": "4x4", "policy": "best-case"}, "workload": map[string]any{"pattern": "pairing"}},
	} {
		code, _, body := post(t, ts.URL+"/v1/scenarios", doc)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d: %s", name, code, body)
		}
	}
}

// TestScenarioStampede: N identical concurrent scenario requests
// coalesce onto one underlying run (the gate counts invocations).
func TestScenarioStampede(t *testing.T) {
	_, ts, g := gatedServer(t, Options{})
	const n = 16
	var wg sync.WaitGroup
	errs := make(chan string, n)
	wg.Add(n)
	for range n {
		go func() {
			defer wg.Done()
			code, _, body := post(t, ts.URL+"/v1/scenarios", tinyScenario("8x8"))
			if code != http.StatusOK {
				errs <- fmt.Sprintf("status %d: %s", code, body)
			}
		}()
	}
	info := g.next(t)
	if !strings.HasPrefix(info.key.ID, "scenario:") {
		t.Fatalf("key %q", info.key)
	}
	if _, ok := info.payload.(netpart.ScenarioSpec); !ok {
		t.Fatalf("payload %T", info.payload)
	}
	close(info.proceed)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if got := g.calls.Load(); got != 1 {
		t.Fatalf("%d underlying runs, want 1", got)
	}
}

// TestSweepLifecycle: submit → running status → result with
// negotiated encodings and revalidation, on a real 4-point sweep.
func TestSweepLifecycle(t *testing.T) {
	s, ts := realServer(t, Options{})
	code, hdr, body := post(t, ts.URL+"/v1/sweeps", tinySweep("lifecycle"))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, body)
	}
	var job jobDoc
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(job.ID, "sweep-") || hdr.Get("Location") != "/v1/sweeps/"+job.ID {
		t.Fatalf("job %+v location %q", job, hdr.Get("Location"))
	}
	if !strings.HasPrefix(job.Experiment, "sweep:") {
		t.Errorf("experiment %q", job.Experiment)
	}
	if job.Links["events"] != "/v1/sweeps/"+job.ID+"/events" {
		t.Errorf("links %+v", job.Links)
	}
	if st := await(t, s, job.ID); st != StatusDone {
		t.Fatalf("status %s", st)
	}
	code, hdr, body = get(t, fmt.Sprintf("%s/v1/sweeps/%s", ts.URL, job.ID), nil)
	if code != http.StatusOK {
		t.Fatalf("result status %d: %s", code, body)
	}
	etag := hdr.Get("ETag")
	if etag == "" {
		t.Fatal("no etag")
	}
	if !strings.Contains(string(body), `"title": "lifecycle"`) || !strings.Contains(string(body), "contention") {
		t.Errorf("result body: %s", body)
	}
	// 304 revalidation.
	code, _, _ = get(t, fmt.Sprintf("%s/v1/sweeps/%s", ts.URL, job.ID), map[string]string{"If-None-Match": etag})
	if code != http.StatusNotModified {
		t.Fatalf("revalidation status %d", code)
	}
	// CSV negotiation.
	code, hdr, body = get(t, fmt.Sprintf("%s/v1/sweeps/%s?format=csv", ts.URL, job.ID), nil)
	if code != http.StatusOK || !strings.HasPrefix(hdr.Get("Content-Type"), ctCSV) {
		t.Fatalf("csv: %d %q", code, hdr.Get("Content-Type"))
	}
	if lines := strings.Count(string(body), "\n"); lines != 5 { // header + 4 points
		t.Errorf("csv has %d lines:\n%s", lines, body)
	}
	// The run namespace must not leak sweep jobs.
	if code, _, _ := get(t, fmt.Sprintf("%s/v1/runs/%s", ts.URL, job.ID), nil); code != http.StatusNotFound {
		t.Errorf("sweep visible under /v1/runs: %d", code)
	}
}

// TestSweepSSEStreamsPoints: the event stream carries per-point
// events and per-point progress, then the terminal snapshot. The gate
// controls the flight, so the stream is attached before any point
// completes.
func TestSweepSSEStreamsPoints(t *testing.T) {
	s, ts, g := gatedServer(t, Options{})
	code, _, body := post(t, ts.URL+"/v1/sweeps", tinySweep("sse"))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var job jobDoc
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	info := g.next(t)
	task, ok := info.payload.(*sweepTask)
	if !ok {
		t.Fatalf("payload %T", info.payload)
	}
	if len(task.points) != 4 {
		t.Fatalf("%d points", len(task.points))
	}

	stream, _ := openSSE(t, ts, "sweeps/"+job.ID)
	// Emulate the sweep engine: a point event plus progress per point.
	for i := range task.points {
		info.publishRaw(streamEvent{name: "point", data: sweep.PointResult{Index: i, Coords: task.points[i].Coords}})
		info.publish(netpart.Progress{Experiment: job.Experiment, Run: "test", Done: i + 1, Total: len(task.points)})
	}
	close(info.proceed)
	if st := await(t, s, job.ID); st != StatusDone {
		t.Fatalf("status %s", st)
	}
	events := readSSE(t, stream, 64)
	var pointIdx []int
	var progress, status, done int
	for _, ev := range events {
		switch ev.name {
		case "status":
			status++
		case "point":
			var p sweep.PointResult
			if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
				t.Fatalf("point data %q: %v", ev.data, err)
			}
			pointIdx = append(pointIdx, p.Index)
		case "progress":
			progress++
		case "done":
			done++
			if !strings.Contains(ev.data, `"done"`) {
				t.Errorf("done data %s", ev.data)
			}
		}
	}
	if status != 1 || done != 1 {
		t.Errorf("status=%d done=%d in %+v", status, done, events)
	}
	if len(pointIdx) != 4 || progress != 4 {
		t.Errorf("points %v progress %d", pointIdx, progress)
	}
}

// TestSweepStampede: identical concurrent sweep submissions (same
// expanded points) coalesce onto one execution while keeping distinct
// job identities. Run under -race by CI.
func TestSweepStampede(t *testing.T) {
	s, ts, g := gatedServer(t, Options{})
	const n = 12
	ids := make([]string, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := range n {
		go func() {
			defer wg.Done()
			code, _, body := post(t, ts.URL+"/v1/sweeps", tinySweep("stampede"))
			if code != http.StatusAccepted {
				t.Errorf("submit: %d %s", code, body)
				return
			}
			var job jobDoc
			if err := json.Unmarshal(body, &job); err != nil {
				t.Error(err)
				return
			}
			ids[i] = job.ID
		}()
	}
	wg.Wait()
	info := g.next(t)
	close(info.proceed)

	seen := map[string]bool{}
	var key string
	for _, id := range ids {
		if id == "" {
			t.Fatal("missing job id")
		}
		if seen[id] {
			t.Fatalf("duplicate job id %s", id)
		}
		seen[id] = true
		if st := await(t, s, id); st != StatusDone {
			t.Fatalf("job %s status %s", id, st)
		}
		job, _ := s.jobs.lookup(id)
		if key == "" {
			key = job.Key.String()
		} else if job.Key.String() != key {
			t.Fatalf("keys diverge: %s vs %s", job.Key, key)
		}
	}
	if got := g.calls.Load(); got != 1 {
		t.Fatalf("%d underlying executions, want 1", got)
	}
	// All jobs serve the same entry bytes.
	_, hdr1, body1 := get(t, ts.URL+"/v1/sweeps/"+ids[0], nil)
	_, hdr2, body2 := get(t, ts.URL+"/v1/sweeps/"+ids[n-1], nil)
	if string(body1) != string(body2) || hdr1.Get("ETag") != hdr2.Get("ETag") {
		t.Error("coalesced jobs served different results")
	}
}

// TestSweepStampedeColdStore: identical concurrent sweep submissions
// against a cold persistent store singleflight onto one computation
// AND one disk write — the store tier must not multiply work the
// cache already coalesced. Run under -race by CI.
func TestSweepStampedeColdStore(t *testing.T) {
	fs, err := store.OpenFS(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	g := newGate()
	s := newServer(Options{Store: fs}, g.run)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	const n = 12
	ids := make([]string, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := range n {
		go func() {
			defer wg.Done()
			code, _, body := post(t, ts.URL+"/v1/sweeps", tinySweep("cold-store"))
			if code != http.StatusAccepted {
				t.Errorf("submit: %d %s", code, body)
				return
			}
			var job jobDoc
			if err := json.Unmarshal(body, &job); err != nil {
				t.Error(err)
				return
			}
			ids[i] = job.ID
		}()
	}
	wg.Wait()
	info := g.next(t)
	close(info.proceed)
	for _, id := range ids {
		if st := await(t, s, id); st != StatusDone {
			t.Fatalf("job %s status %s", id, st)
		}
	}
	s.cache.persists.Wait()
	if got := g.calls.Load(); got != 1 {
		t.Fatalf("%d underlying executions, want 1", got)
	}
	st := fs.Stats()
	if st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("store puts=%d entries=%d, want exactly one persisted blob", st.Puts, st.Entries)
	}
	// The persisted blob round-trips: evict memory, replay from disk.
	job, _ := s.jobs.lookup(ids[0])
	_, _, hot := get(t, ts.URL+"/v1/sweeps/"+ids[0], nil)
	s.cache.mu.Lock()
	delete(s.cache.entries, job.Key)
	s.cache.mu.Unlock()
	code, _, cold := get(t, ts.URL+"/v1/archive/"+job.Experiment.ID, nil)
	if code != http.StatusOK || string(cold) != string(hot) {
		t.Fatalf("store replay: %d, identical=%v", code, string(cold) == string(hot))
	}
}

func TestSweepValidation(t *testing.T) {
	_, ts := realServer(t, Options{})
	tooBig := tinySweep("big")
	vals := make([]any, 0, 200)
	for i := range 200 {
		vals = append(vals, i+1)
	}
	tooBig["axes"] = []map[string]any{
		{"path": "workload.seed", "values": vals},
		{"path": "workload.pattern", "values": []any{"permutation"}},
		{"path": "topology.shape", "values": []any{"4x4", "6x4", "8x4", "8x8", "6x6", "4x2"}},
	}
	tooBig["max_points"] = 100
	for name, doc := range map[string]any{
		"bad axis path": map[string]any{"base": tinyScenario("4x4"), "axes": []map[string]any{{"path": "workload.vroom", "values": []any{1}}}},
		"invalid point": map[string]any{"base": tinyScenario("4x4"), "axes": []map[string]any{{"path": "topology.shape", "values": []any{"0x0"}}}},
		"over budget":   tooBig,
		"unknown field": map[string]any{"base": tinyScenario("4x4"), "axes": []map[string]any{}, "parallelism": 4},
	} {
		code, _, body := post(t, ts.URL+"/v1/sweeps", doc)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d: %s", name, code, body)
		}
	}
}

// TestSweepCancelEndpoint: DELETE /v1/sweeps/{id} cancels the job.
func TestSweepCancelEndpoint(t *testing.T) {
	s, ts, g := gatedServer(t, Options{})
	code, _, body := post(t, ts.URL+"/v1/sweeps", tinySweep("cancel"))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var job jobDoc
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	info := g.next(t)
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/sweeps/"+job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	select {
	case <-info.ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("flight not canceled")
	}
	if st := await(t, s, job.ID); st != StatusCanceled {
		t.Fatalf("status %s", st)
	}
}

// TestDynamicCacheEviction: dynamic (scenario/sweep) entries are
// bounded; registry entries are never evicted.
func TestDynamicCacheEviction(t *testing.T) {
	c := newTestCache(func(_ context.Context, k Key, _ netpart.RunOptions, _ any, _ func(streamEvent)) (*netpart.Result, error) {
		return fakeResult(k), nil
	}, 0, nil)
	reg := Key{ID: "table1"}
	if _, err := c.do(context.Background(), reg, netpart.RunOptions{}, nil, nil); err != nil {
		t.Fatal(err)
	}
	for i := range maxDynamicEntries + 50 {
		k := Key{ID: fmt.Sprintf("scenario:%012d", i)}
		if _, err := c.do(context.Background(), k, netpart.RunOptions{}, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	total := len(c.entries)
	_, regAlive := c.entries[reg]
	_, oldestAlive := c.entries[Key{ID: fmt.Sprintf("scenario:%012d", 0)}]
	_, newestAlive := c.entries[Key{ID: fmt.Sprintf("scenario:%012d", maxDynamicEntries+49)}]
	c.mu.Unlock()
	if total != maxDynamicEntries+1 {
		t.Errorf("%d entries, want %d dynamic + 1 registry", total, maxDynamicEntries)
	}
	if !regAlive {
		t.Error("registry entry evicted")
	}
	if oldestAlive {
		t.Error("oldest dynamic entry survived past the bound")
	}
	if !newestAlive {
		t.Error("newest dynamic entry missing")
	}
}
