package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"netpart/internal/sched/tracesim"
)

func TestTraceEventNames(t *testing.T) {
	for kind, want := range map[string]string{
		"start": "job", "finish": "job",
		"kill": "failure", "outage": "failure", "heal": "failure",
	} {
		if got := traceEventName(kind); got != want {
			t.Errorf("traceEventName(%q) = %q, want %q", kind, got, want)
		}
	}
}

// TestScenarioFailureSync: POST /v1/scenarios with a failure model
// returns the robustness fields — the degradation delta vs the
// healthy baseline of the same spec — in the synchronous response.
func TestScenarioFailureSync(t *testing.T) {
	_, ts := realServer(t, Options{})
	doc := map[string]any{
		"topology": map[string]any{"kind": "torus", "shape": "4x4"},
		"workload": map[string]any{"pattern": "pairing", "bytes": 1e9},
		"failures": map[string]any{"model": "random_links", "fraction": 0.25, "factor": 0.5},
	}
	code, _, body := post(t, ts.URL+"/v1/scenarios", doc)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	// The served document is the rendered table: the failure block's
	// rows carry the robustness numbers.
	for _, want := range []string{`"failure model"`, `"degraded links"`, `"healthy static (s)"`, `"degradation (x)"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("response missing %s:\n%s", want, body)
		}
	}
	// A disconnecting failure is a client error, not a 500 panic.
	doc["failures"] = map[string]any{"model": "random_links", "fraction": 1, "factor": 0}
	code, _, body = post(t, ts.URL+"/v1/scenarios", doc)
	if code != http.StatusUnprocessableEntity && code != http.StatusBadRequest {
		t.Fatalf("disconnecting scenario: status %d: %s", code, body)
	}
	if !strings.Contains(string(body), "no dor route") {
		t.Errorf("error body %s", body)
	}
}

// TestSweepFailureAxis: the degraded-links × policy chaos axis runs
// end-to-end over POST /v1/sweeps; each failed point carries its
// robustness delta and the rendered table gains the Δstatic column.
func TestSweepFailureAxis(t *testing.T) {
	s, ts := realServer(t, Options{})
	doc := map[string]any{
		"name": "chaos axis",
		"base": map[string]any{
			"topology": map[string]any{"kind": "partition", "machine": "2x2x2x1", "midplanes": 4},
			"workload": map[string]any{"pattern": "pairing", "bytes": 1e9},
			"failures": map[string]any{"model": "random_links", "factor": 0.5},
		},
		"axes": []map[string]any{
			{"path": "topology.policy", "values": []any{"first-fit", "best-bisection", "contention-aware"}},
			{"path": "failures.fraction", "values": []any{0, 0.05, 0.1}},
		},
	}
	code, _, body := post(t, ts.URL+"/v1/sweeps", doc)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, body)
	}
	var job jobDoc
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if st := await(t, s, job.ID); st != StatusDone {
		t.Fatalf("status %s", st)
	}
	code, _, body = get(t, fmt.Sprintf("%s/v1/sweeps/%s?format=csv", ts.URL, job.ID), nil)
	if code != http.StatusOK {
		t.Fatalf("csv status %d: %s", code, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 10 { // header + 9 points
		t.Fatalf("csv has %d lines:\n%s", len(lines), body)
	}
	header := strings.Split(lines[0], ",")
	col := -1
	for i, h := range header {
		if h == "Δstatic" {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("no Δstatic column in %q", lines[0])
	}
	// Every point has a numeric degradation delta — no failed points,
	// no healthy-baseline gaps.
	for _, line := range lines[1:] {
		cells := strings.Split(line, ",")
		v, err := strconv.ParseFloat(cells[col], 64)
		if err != nil || v <= 0 {
			t.Fatalf("Δstatic cell %q in row %q", cells[col], line)
		}
	}
}

// TestTraceFailureLifecycle: a trace with outage windows runs over
// POST /v1/traces and its result reports kills, restarts and the
// healthy-baseline deltas.
func TestTraceFailureLifecycle(t *testing.T) {
	s, ts := realServer(t, Options{})
	doc := map[string]any{
		"name":    "outage trace",
		"machine": "4x2x2x1",
		"jobs": []map[string]any{
			{"midplanes": 16, "runtime_sec": 100},
		},
		"failures": map[string]any{
			"model":     "midplanes",
			"midplanes": []any{0},
			"windows":   []map[string]any{{"start_sec": 50, "end_sec": 60}},
		},
	}
	code, _, body := post(t, ts.URL+"/v1/traces", doc)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, body)
	}
	var job jobDoc
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if st := await(t, s, job.ID); st != StatusDone {
		t.Fatalf("status %s", st)
	}
	code, _, body = get(t, fmt.Sprintf("%s/v1/traces/%s", ts.URL, job.ID), nil)
	if code != http.StatusOK {
		t.Fatalf("result status %d: %s", code, body)
	}
	// The table's failure block: 1 kill, healthy makespan 100s, delta
	// 1.6x (killed at 50, blocked to 60, rerun to 160).
	for _, want := range []string{`"kills"`, `"failed midplanes"`, `"healthy makespan (s)"`, `"makespan delta (x)"`, `"1.600"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("result missing %s:\n%s", want, body)
		}
	}
}

// TestTraceFailureSSEPassthrough: failure-named frames published by a
// trace flight reach SSE subscribers under the "failure" event name,
// separate from job lifecycle frames.
func TestTraceFailureSSEPassthrough(t *testing.T) {
	s, ts, g := gatedServer(t, Options{})
	code, _, body := post(t, ts.URL+"/v1/traces", tinyTrace("failure sse"))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var job jobDoc
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	info := g.next(t)
	stream, _ := openSSE(t, ts, "traces/"+job.ID)
	for _, ev := range []tracesim.Event{
		{Kind: "start", Job: 0, TimeSec: 0},
		{Kind: "outage", Job: -1, TimeSec: 50, Midplanes: 1},
		{Kind: "kill", Job: 0, TimeSec: 50},
		{Kind: "heal", Job: -1, TimeSec: 60, Midplanes: 1},
		{Kind: "start", Job: 0, TimeSec: 60},
		{Kind: "finish", Job: 0, TimeSec: 160},
	} {
		info.publishRaw(streamEvent{name: traceEventName(ev.Kind), data: ev})
	}
	close(info.proceed)
	if st := await(t, s, job.ID); st != StatusDone {
		t.Fatalf("status %s", st)
	}
	events := readSSE(t, stream, 64)
	var jobEvents, failureEvents int
	for _, ev := range events {
		switch ev.name {
		case "job":
			jobEvents++
		case "failure":
			var te tracesim.Event
			if err := json.Unmarshal([]byte(ev.data), &te); err != nil {
				t.Fatalf("failure data %q: %v", ev.data, err)
			}
			if te.Kind != "outage" && te.Kind != "heal" && te.Kind != "kill" {
				t.Errorf("failure frame kind %q", te.Kind)
			}
			failureEvents++
		}
	}
	if jobEvents != 3 || failureEvents != 3 {
		t.Fatalf("job=%d failure=%d in %+v", jobEvents, failureEvents, events)
	}
}
