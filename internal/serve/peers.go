package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"netpart"
	"netpart/internal/obs"
)

// Distributed grid fan-out: a netpartd started with --peers becomes a
// coordinator — sweep and trace-grid points are dispatched to worker
// netpartds over the peer API instead of running on the local pool.
//
// The design leans entirely on content addressing. A point's work
// unit is its own dynamic ID ("scenario:<hash>" / "trace:<hash>"),
// and a worker runs it through its own coalescing cache + store, so:
//
//   - Placement is deterministic: a point maps to a peer by hashing
//     its content ID, so two coordinators sharding the same grid send
//     each point to the same worker, whose cache singleflights them —
//     coalescing generalizes across nodes with no coordination
//     protocol beyond the hash.
//   - Failover is trivially correct: scenario and trace execution is
//     byte-deterministic, so when a peer fails or times out the
//     coordinator recomputes the point locally and the sweep's bytes
//     are identical to a single-process run. A dead fleet degrades to
//     one slow daemon, never to a wrong or partial result.
//
// Workers reply with the internal typed-data encoding (ctData): the
// JSON round trip through scenario.Outcome / tracesim.Result is exact
// (all-exported, JSON-tagged structs; float64 survives encoding/json
// bit-for-bit), so tables the coordinator renders from a decoded
// outcome match tables rendered from a local run byte-for-byte.

// DefaultPeerTimeout caps one peer point dispatch unless overridden.
// Points past it fail over to local execution.
const DefaultPeerTimeout = 2 * time.Minute

// DefaultPeerProbeInterval is how often an unhealthy peer is
// re-probed (via GET /v1/healthz) while dispatches skip it.
const DefaultPeerProbeInterval = 15 * time.Second

// peerProbeTimeout caps one health probe; a probe is a readiness
// check, not a computation, so it gets a short leash.
const peerProbeTimeout = 5 * time.Second

// peer is one worker endpoint plus its health state and dispatch
// counters. The counters are obs metrics (labeled by peer URL); the
// health flags stay plain atomics and are sampled into gauges at
// scrape time.
type peer struct {
	base string // e.g. "http://10.0.0.7:8080"

	healthy   atomic.Bool  // skip the peer in pick while false
	lastProbe atomic.Int64 // unix nanos of the last probe (or failure)
	probing   atomic.Bool  // one in-flight probe at a time

	dispatched *obs.Counter // points successfully executed remotely
	failed     *obs.Counter // dispatch attempts that fell back to local
	skipped    *obs.Counter // picks that walked past this peer while unhealthy
	probes     *obs.Counter // health re-probes issued
}

// peerDoc is a peer's healthz representation. LastProbe is the RFC
// 3339 time of the last health probe or dispatch failure, empty while
// the peer has never needed one.
type peerDoc struct {
	URL        string `json:"url"`
	Healthy    bool   `json:"healthy"`
	LastProbe  string `json:"last_probe,omitempty"`
	Dispatched int64  `json:"dispatched"`
	Failed     int64  `json:"failed"`
	Skipped    int64  `json:"skipped"`
	Probes     int64  `json:"probes"`
}

// peerPool shards points across worker daemons.
type peerPool struct {
	peers      []*peer
	client     *http.Client
	timeout    time.Duration
	probeEvery time.Duration
	log        *slog.Logger
}

func newPeerPool(urls []string, timeout, probeEvery time.Duration, m *serverMetrics, log *slog.Logger) *peerPool {
	if timeout == 0 {
		timeout = DefaultPeerTimeout
	}
	if timeout < 0 {
		timeout = 0
	}
	if probeEvery <= 0 {
		probeEvery = DefaultPeerProbeInterval
	}
	pp := &peerPool{client: &http.Client{}, timeout: timeout, probeEvery: probeEvery, log: log}
	dispatched := m.reg.CounterVec("netpart_peer_dispatched_total", "Points successfully executed remotely, by peer.", "peer")
	failed := m.reg.CounterVec("netpart_peer_failed_total", "Peer dispatch attempts that fell back to local execution, by peer.", "peer")
	skipped := m.reg.CounterVec("netpart_peer_skipped_total", "Ring-walk picks that passed over an unhealthy peer, by peer.", "peer")
	probes := m.reg.CounterVec("netpart_peer_probes_total", "Health re-probes issued, by peer.", "peer")
	for _, u := range urls {
		p := &peer{
			base:       u,
			dispatched: dispatched.With(u),
			failed:     failed.With(u),
			skipped:    skipped.With(u),
			probes:     probes.With(u),
		}
		p.healthy.Store(true) // innocent until a dispatch fails
		m.reg.GaugeFunc("netpart_peer_healthy", "1 while the peer is in the dispatch ring, 0 while skipped.",
			func() float64 {
				if p.healthy.Load() {
					return 1
				}
				return 0
			}, "peer", u)
		m.reg.GaugeFunc("netpart_peer_last_probe_timestamp_seconds", "Unix time of the last health probe or dispatch failure (0 = never).",
			func() float64 { return float64(p.lastProbe.Load()) / 1e9 }, "peer", u)
		pp.peers = append(pp.peers, p)
	}
	return pp
}

// errNoHealthyPeer reports an all-unhealthy fleet; the caller's local
// fallback keeps the sweep moving while background probes look for a
// recovered worker.
var errNoHealthyPeer = errors.New("serve: no healthy peer")

// pick maps a point's content ID onto a peer. The mapping is a pure
// function of the ID — every coordinator in a fleet routes the same
// point to the same worker, whose cache coalesces the duplicates —
// except that unhealthy peers are skipped: the walk continues around
// the ring to the next healthy peer (kicking off an async re-probe of
// each one it passes), so a dead worker costs one failed dispatch
// when it dies, not one timeout per point. With no healthy peer left
// pick returns nil and execution stays local until a probe restores
// someone.
func (pp *peerPool) pick(id string) *peer {
	h := fnv.New32a()
	h.Write([]byte(id))
	start := int(h.Sum32()) % len(pp.peers)
	for i := range pp.peers {
		p := pp.peers[(start+i)%len(pp.peers)]
		if p.healthy.Load() {
			return p
		}
		p.skipped.Inc()
		pp.maybeProbe(p)
	}
	return nil
}

// maybeProbe re-probes an unhealthy peer's /v1/healthz in the
// background, at most once per probe interval and one in flight per
// peer. A 200 restores the peer to the ring.
func (pp *peerPool) maybeProbe(p *peer) {
	now := time.Now().UnixNano()
	last := p.lastProbe.Load()
	if now-last < int64(pp.probeEvery) || !p.lastProbe.CompareAndSwap(last, now) {
		return
	}
	if !p.probing.CompareAndSwap(false, true) {
		return
	}
	p.probes.Inc()
	go func() {
		defer p.probing.Store(false)
		ctx, cancel := context.WithTimeout(context.Background(), peerProbeTimeout)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+"/v1/healthz", nil)
		if err != nil {
			return
		}
		resp, err := pp.client.Do(req)
		if err != nil {
			return
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			p.healthy.Store(true)
			pp.log.Info("peer restored", "peer", p.base)
		}
	}()
}

// stats snapshots per-peer health and dispatch counters for healthz.
func (pp *peerPool) stats() []peerDoc {
	docs := make([]peerDoc, len(pp.peers))
	for i, p := range pp.peers {
		docs[i] = peerDoc{
			URL:        p.base,
			Healthy:    p.healthy.Load(),
			Dispatched: p.dispatched.Value(),
			Failed:     p.failed.Value(),
			Skipped:    p.skipped.Value(),
			Probes:     p.probes.Value(),
		}
		if ns := p.lastProbe.Load(); ns != 0 {
			docs[i].LastProbe = time.Unix(0, ns).UTC().Format(time.RFC3339Nano)
		}
	}
	return docs
}

// maxPeerResponse bounds a worker reply; a point outcome is a bounded
// document (specs and traces are bounded at submission).
const maxPeerResponse = 32 << 20

// dispatch POSTs one work unit to the peer owning id and decodes the
// ctData reply into out (a pointer). Any failure — connect, timeout,
// non-200, wrong content type, undecodable body — is returned for the
// caller to fall back on; the peer API has no partial-success states.
func (pp *peerPool) dispatch(ctx context.Context, path, id string, unit, out any) error {
	p := pp.pick(id)
	if p == nil {
		return errNoHealthyPeer
	}
	err := pp.post(ctx, p, path, unit, out)
	if err != nil {
		p.failed.Inc()
		// Mark the peer unhealthy only when the failure is its own: a
		// dispatch killed by the caller's context says nothing about
		// the worker.
		if ctx.Err() == nil {
			p.lastProbe.Store(time.Now().UnixNano())
			if p.healthy.CompareAndSwap(true, false) {
				pp.log.Warn("peer marked unhealthy", "peer", p.base, "error", err,
					"request_id", obs.RequestIDFrom(ctx))
			}
		}
		return err
	}
	p.dispatched.Inc()
	p.healthy.Store(true)
	return nil
}

func (pp *peerPool) post(ctx context.Context, p *peer, path string, unit, out any) error {
	body, err := json.Marshal(unit)
	if err != nil {
		return fmt.Errorf("serve: marshal peer work unit: %w", err)
	}
	if pp.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, pp.timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", ctJSON)
	// Propagate the originating request's ID so the worker's logs and
	// response carry the coordinator's correlation token.
	if id := obs.RequestIDFrom(ctx); id != "" {
		req.Header.Set(obs.RequestIDHeader, id)
	}
	resp, err := pp.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResponse))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: peer %s: %s: %s", p.base, resp.Status, bytes.TrimSpace(data))
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, ctData) {
		return fmt.Errorf("serve: peer %s: unexpected content type %q", p.base, ct)
	}
	return json.Unmarshal(data, out)
}

// dispatchScenario runs one sweep point on the fleet, returning the
// decoded outcome or an error the caller falls back on.
func (pp *peerPool) dispatchScenario(ctx context.Context, spec netpart.ScenarioSpec) (*netpart.ScenarioOutcome, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, err // invalid spec: no peer can do better
	}
	var out netpart.ScenarioOutcome
	if err := pp.dispatch(ctx, "/v1/peer/scenarios", norm.ID(), norm, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// dispatchTrace runs one trace-grid point on the fleet.
func (pp *peerPool) dispatchTrace(ctx context.Context, spec netpart.TraceSpec) (*netpart.TraceOutcome, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	var out netpart.TraceOutcome
	if err := pp.dispatch(ctx, "/v1/peer/traces", norm.ID(), norm, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// --- worker side ---

// writePeerEntry replies to a peer dispatch with the entry's internal
// typed-data encoding. Peer replies carry the same strong ETag
// machinery as client responses, though coordinators today always
// want the body.
func writePeerEntry(w http.ResponseWriter, r *http.Request, e *entry) {
	enc, err := e.encoding(ctData)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	h := w.Header()
	h.Set("ETag", enc.etag)
	h.Set("Content-Type", enc.contentType)
	h.Set("Content-Length", fmt.Sprint(len(enc.body)))
	if matchETag(r.Header.Get("If-None-Match"), enc.etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Write(enc.body) //nolint:errcheck
}

// handlePeerScenario executes one scenario work unit for a
// coordinator. The run goes through this worker's own coalescing
// cache and store: concurrent dispatches of the same point (two
// coordinators sharding one grid) singleflight here, and warm points
// answer from memory or disk without recomputing.
func (s *Server) handlePeerScenario(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxScenarioBody))
	dec.DisallowUnknownFields()
	var spec netpart.ScenarioSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad scenario body: %v", err)
		return
	}
	norm, err := spec.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, err := s.cache.do(r.Context(), Key{ID: norm.ID()}, netpart.RunOptions{}, norm, nil)
	if err != nil {
		// Any error — domain (disconnected topology), timeout,
		// cancellation — maps to a dispatch failure; the coordinator
		// reproduces it locally, where the error string is identical by
		// determinism.
		writePeerError(w, err)
		return
	}
	writePeerEntry(w, r, e)
}

// handlePeerTrace executes one trace work unit for a coordinator.
func (s *Server) handlePeerTrace(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxTraceBody))
	dec.DisallowUnknownFields()
	var spec netpart.TraceSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad trace body: %v", err)
		return
	}
	norm, err := spec.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, err := s.cache.do(r.Context(), Key{ID: norm.ID()}, netpart.RunOptions{}, &traceTask{spec: &norm}, nil)
	if err != nil {
		writePeerError(w, err)
		return
	}
	writePeerEntry(w, r, e)
}

// writePeerError maps a work-unit failure onto a status a coordinator
// treats uniformly as "recompute locally".
func writePeerError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, context.Canceled):
		code = 499
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	}
	writeError(w, code, "%v", err)
}
