package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"netpart"
)

// TestDeleteCancelsJob: DELETE moves a sole in-flight job to
// canceled and kills the underlying run promptly.
func TestDeleteCancelsJob(t *testing.T) {
	s, ts, g := gatedServer(t, Options{})
	job := submit(t, ts, map[string]any{"experiment": "figure3"})
	info := g.next(t)

	req, err := http.NewRequest("DELETE", ts.URL+"/v1/runs/"+job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}

	select {
	case <-info.ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("run not canceled after DELETE")
	}
	if got := await(t, s, job.ID); got != StatusCanceled {
		t.Fatalf("status %q, want canceled", got)
	}
	// The job document reports it over HTTP.
	code, _, body := get(t, ts.URL+"/v1/runs/"+job.ID, nil)
	var doc jobDoc
	if code != http.StatusOK || json.Unmarshal(body, &doc) != nil || doc.Status != StatusCanceled {
		t.Fatalf("job doc after cancel: %d %s", code, body)
	}
}

// TestCancelSparesCoalescedJob: two jobs share one flight; canceling
// one leaves the run alive and the other completes.
func TestCancelSparesCoalescedJob(t *testing.T) {
	s, ts, g := gatedServer(t, Options{})
	jobA := submit(t, ts, map[string]any{"experiment": "figure4"})
	info := g.next(t)
	jobB := submit(t, ts, map[string]any{"experiment": "figure4"})

	// B must be attached to A's flight before we cancel A, or the
	// flight could die with its only waiter. Attachment is what makes
	// calls==1; wait for B to register.
	waitFor(t, func() bool {
		s.cache.mu.Lock()
		defer s.cache.mu.Unlock()
		f := s.cache.flights[Key{ID: "figure4"}]
		return f != nil && f.waiters == 2
	})

	jobAHandle, _ := s.jobs.lookup(jobA.ID)
	jobAHandle.Cancel()
	if got := await(t, s, jobA.ID); got != StatusCanceled {
		t.Fatalf("canceled job status %q", got)
	}
	select {
	case <-info.ctx.Done():
		t.Fatal("flight canceled while another job depended on it")
	case <-time.After(20 * time.Millisecond):
	}

	close(info.proceed)
	if got := await(t, s, jobB.ID); got != StatusDone {
		t.Fatalf("surviving job status %q", got)
	}
	if g.calls.Load() != 1 {
		t.Fatalf("run called %d times, want 1", g.calls.Load())
	}
}

// TestShutdownDrainsAndRejects: Shutdown waits for in-flight jobs,
// cancels stragglers at the deadline, and new submissions get 503.
func TestShutdownDrains(t *testing.T) {
	s, ts, g := gatedServer(t, Options{})

	// A job that finishes within the grace: drain returns nil.
	jobA := submit(t, ts, map[string]any{"experiment": "table1"})
	infoA := g.next(t)
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(infoA.proceed)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := await(t, s, jobA.ID); got != StatusDone {
		t.Fatalf("drained job status %q", got)
	}
	if code, _, _ := post(t, ts.URL+"/v1/runs", map[string]any{"experiment": "table1"}); code != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown: status %d, want 503", code)
	}
}

// TestShutdownDeadlineCancelsStragglers: a job that outlives the
// grace is canceled and drain reports the deadline.
func TestShutdownDeadlineCancelsStragglers(t *testing.T) {
	s, ts, g := gatedServer(t, Options{})
	job := submit(t, ts, map[string]any{"experiment": "table2"})
	info := g.next(t)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("drain err = %v, want deadline exceeded", err)
	}
	select {
	case <-info.ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("straggler not canceled at drain deadline")
	}
	if got := await(t, s, job.ID); got != StatusCanceled {
		t.Fatalf("straggler status %q", got)
	}
}

// TestAdmissionClassesAreIndependent: with the heavy class saturated,
// cheap runs are admitted immediately — the no-starvation property.
func TestAdmissionClassesAreIndependent(t *testing.T) {
	s, ts := realServer(t, Options{Admission: map[netpart.Cost]int{
		netpart.CostHeavy: 1,
		netpart.CostCheap: 2,
	}})

	// Saturate the heavy class.
	releaseHeavy, err := s.acquire(context.Background(), netpart.CostHeavy)
	if err != nil {
		t.Fatal(err)
	}
	defer releaseHeavy()

	// Another heavy acquisition queues (times out).
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.acquire(ctx, netpart.CostHeavy); err != context.DeadlineExceeded {
		t.Fatalf("second heavy acquire: %v, want deadline exceeded", err)
	}

	// A real cheap experiment still runs end-to-end.
	code, _, body := get(t, ts.URL+"/v1/experiments/table3/result", nil)
	if code != http.StatusOK {
		t.Fatalf("cheap run behind saturated heavy class: status %d (%s)", code, body)
	}
}

// TestRunTimeoutReportsCanceled: a job whose flight hits the server's
// run timeout ends as canceled (retryable server policy), not failed.
func TestRunTimeoutReportsCanceled(t *testing.T) {
	s, ts, g := gatedServer(t, Options{RunTimeout: 30 * time.Millisecond})
	job := submit(t, ts, map[string]any{"experiment": "figure3"})
	g.next(t) // never released: the flight times out
	if got := await(t, s, job.ID); got != StatusCanceled {
		t.Fatalf("timed-out job status %q, want canceled", got)
	}
}

// TestJobEviction: the job index is bounded — past the cap the oldest
// terminal jobs are evicted, running jobs never.
func TestJobEviction(t *testing.T) {
	s, ts, g := gatedServer(t, Options{})
	s.jobs.maxJobs = 2

	// One long-running job, then terminal jobs past the cap.
	running := submit(t, ts, map[string]any{"experiment": "figure3"})
	g.next(t) // keep it in flight
	var terminal []string
	for _, id := range []string{"table1", "table2", "table3"} {
		job := submit(t, ts, map[string]any{"experiment": id})
		close(g.next(t).proceed)
		await(t, s, job.ID)
		terminal = append(terminal, job.ID)
	}

	// Submitting one more prunes: the oldest terminal jobs go, the
	// running job and the newest stay.
	last := submit(t, ts, map[string]any{"experiment": "table4"})
	close(g.next(t).proceed)
	await(t, s, last.ID)
	if _, ok := s.jobs.lookup(running.ID); !ok {
		t.Error("running job was evicted")
	}
	if _, ok := s.jobs.lookup(terminal[0]); ok {
		t.Error("oldest terminal job survived past the cap")
	}
	if _, ok := s.jobs.lookup(last.ID); !ok {
		t.Error("newest job missing")
	}
	s.jobs.mu.Lock()
	n := len(s.jobs.jobs)
	s.jobs.mu.Unlock()
	// The running job is unevictable, so the index may sit one over
	// the cap — but it must not grow with terminal submissions.
	if n > 3 {
		t.Errorf("job index holds %d jobs, want <= 3", n)
	}
}

// waitFor polls cond until true or fails the test.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
