package serve

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netpart"
)

// TestCacheCoalescesConcurrentMisses: N concurrent do() calls for one
// cold key run the underlying function exactly once and all observe
// the same entry; later calls are pure cache hits.
func TestCacheCoalescesConcurrentMisses(t *testing.T) {
	key := Key{ID: "table5"}
	var calls atomic.Int32
	release := make(chan struct{})
	c := newTestCache(func(ctx context.Context, k Key, _ netpart.RunOptions, _ any, _ func(streamEvent)) (*netpart.Result, error) {
		calls.Add(1)
		<-release
		return fakeResult(k), nil
	}, 0, nil)

	const n = 32
	entries := make([]*entry, n)
	var wg sync.WaitGroup
	var started sync.WaitGroup
	wg.Add(n)
	started.Add(n)
	for i := range n {
		go func() {
			defer wg.Done()
			started.Done()
			e, err := c.do(context.Background(), key, netpart.RunOptions{}, nil, nil)
			if err != nil {
				t.Error(err)
			}
			entries[i] = e
		}()
	}
	started.Wait()
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("run called %d times, want 1", got)
	}
	for i := 1; i < n; i++ {
		if entries[i] != entries[0] {
			t.Fatal("waiters observed different entries")
		}
	}
	if e, err := c.do(context.Background(), key, netpart.RunOptions{}, nil, nil); err != nil || e != entries[0] || calls.Load() != 1 {
		t.Fatal("warm hit reran the experiment")
	}
}

// TestCacheErrorsAreNotCached: a failed flight evaporates; the next
// request retries.
func TestCacheErrorsAreNotCached(t *testing.T) {
	var calls atomic.Int32
	boom := errors.New("boom")
	c := newTestCache(func(ctx context.Context, k Key, _ netpart.RunOptions, _ any, _ func(streamEvent)) (*netpart.Result, error) {
		if calls.Add(1) == 1 {
			return nil, boom
		}
		return fakeResult(k), nil
	}, 0, nil)
	key := Key{ID: "table1"}
	if _, err := c.do(context.Background(), key, netpart.RunOptions{}, nil, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := c.do(context.Background(), key, netpart.RunOptions{}, nil, nil); err != nil {
		t.Fatalf("retry err = %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("run called %d times, want 2", calls.Load())
	}
}

// TestCacheLastWaiterCancelsRun: with two waiters, one abandoning
// leaves the run alive; when the last abandons, the flight context is
// canceled promptly and a later request starts a fresh flight.
func TestCacheLastWaiterCancelsRun(t *testing.T) {
	key := Key{ID: "table6"}
	g := newGate()
	c := newTestCache(g.run, 0, nil)

	ctxA, cancelA := context.WithCancel(context.Background())
	ctxB, cancelB := context.WithCancel(context.Background())
	defer cancelB()
	errs := make(chan error, 2)
	go func() { _, err := c.do(ctxA, key, netpart.RunOptions{}, nil, nil); errs <- err }()
	info := g.next(t)
	go func() { _, err := c.do(ctxB, key, netpart.RunOptions{}, nil, nil); errs <- err }()
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		f := c.flights[key]
		return f != nil && f.waiters == 2
	})

	// First waiter leaves: the flight must survive for the second.
	cancelA()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning waiter got %v", err)
	}
	select {
	case <-info.ctx.Done():
		t.Fatal("flight canceled while a waiter remained")
	case <-time.After(20 * time.Millisecond):
	}

	// Last waiter leaves: the flight dies promptly.
	cancelB()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("last waiter got %v", err)
	}
	select {
	case <-info.ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("flight context not canceled after last waiter left")
	}

	// The key is clean: a new request starts a new flight.
	done := make(chan struct{})
	go func() {
		if _, err := c.do(context.Background(), key, netpart.RunOptions{}, nil, nil); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	close(g.next(t).proceed)
	<-done
	if g.calls.Load() != 2 {
		t.Fatalf("run called %d times, want 2", g.calls.Load())
	}
}

// TestCacheRunTimeout: a flight exceeding the cache's run timeout
// fails with DeadlineExceeded and is not cached.
func TestCacheRunTimeout(t *testing.T) {
	c := newTestCache(func(ctx context.Context, k Key, _ netpart.RunOptions, _ any, _ func(streamEvent)) (*netpart.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}, 10*time.Millisecond, nil)
	if _, err := c.do(context.Background(), Key{ID: "figure3"}, netpart.RunOptions{}, nil, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if _, ok := c.cached(Key{ID: "figure3"}); ok {
		t.Fatal("timed-out flight was cached")
	}
}

// TestEntryEncodingsStable: encodings render once, re-serve the same
// bytes, and carry quoted sha-based strong ETags distinct per
// content type.
func TestEntryEncodingsStable(t *testing.T) {
	e := &entry{res: fakeResult(Key{ID: "table2"}), encs: map[string]*encoding{}}
	j1, err := e.encoding(ctJSON)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := e.encoding(ctJSON)
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Error("JSON encoding rendered twice")
	}
	csv, err := e.encoding(ctCSV)
	if err != nil {
		t.Fatal(err)
	}
	md, err := e.encoding(ctMarkdown)
	if err != nil {
		t.Fatal(err)
	}
	for _, enc := range []*encoding{j1, csv, md} {
		if len(enc.etag) < 4 || enc.etag[0] != '"' || enc.etag[len(enc.etag)-1] != '"' {
			t.Errorf("%s: malformed etag %q", enc.contentType, enc.etag)
		}
		if enc.etag != etagFor(enc.body) {
			t.Errorf("%s: etag is not the content hash", enc.contentType)
		}
	}
	if j1.etag == csv.etag || csv.etag == md.etag {
		t.Error("distinct encodings share an etag")
	}
	if bytes.Equal(j1.body, csv.body) {
		t.Error("JSON and CSV bodies identical")
	}
	if _, err := e.encoding("application/xml"); err == nil {
		t.Error("unknown content type should error")
	}
}
