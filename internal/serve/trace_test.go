package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"netpart"
	"netpart/internal/sched/tracesim"
)

// tinyTrace is a fast real trace submission document.
func tinyTrace(name string) map[string]any {
	return map[string]any{
		"name":     name,
		"machine":  "juqueen",
		"policy":   "contention-aware",
		"backfill": true,
		"synthetic": map[string]any{
			"jobs": 12, "seed": 4, "rate_hz": 0.5, "mean_runtime_sec": 30,
			"pattern": "pairing", "pattern_fraction": 0.5,
		},
	}
}

// tinyTraceGrid sweeps the tiny trace over policy × arrival rate.
func tinyTraceGrid(name string) map[string]any {
	return map[string]any{
		"name": name,
		"base": tinyTrace(""),
		"axes": []map[string]any{
			{"path": "policy", "values": []any{"first-fit", "contention-aware"}},
			{"path": "synthetic.rate_hz", "values": []any{0.1, 0.5}},
		},
	}
}

func TestTraceLifecycle(t *testing.T) {
	s, ts := realServer(t, Options{})
	code, hdr, body := post(t, ts.URL+"/v1/traces", tinyTrace("lifecycle"))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, body)
	}
	var job jobDoc
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(job.ID, "trace-") || hdr.Get("Location") != "/v1/traces/"+job.ID {
		t.Fatalf("job %+v location %q", job, hdr.Get("Location"))
	}
	if !strings.HasPrefix(job.Experiment, "trace:") {
		t.Errorf("experiment %q", job.Experiment)
	}
	if job.Links["events"] != "/v1/traces/"+job.ID+"/events" {
		t.Errorf("links %+v", job.Links)
	}
	if st := await(t, s, job.ID); st != StatusDone {
		t.Fatalf("status %s", st)
	}
	code, hdr, body = get(t, fmt.Sprintf("%s/v1/traces/%s", ts.URL, job.ID), nil)
	if code != http.StatusOK {
		t.Fatalf("result status %d: %s", code, body)
	}
	etag := hdr.Get("ETag")
	if etag == "" {
		t.Fatal("no etag")
	}
	for _, want := range []string{`"title": "lifecycle"`, "makespan (s)", "avg stretch", "contention factor"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("result body missing %q:\n%s", want, body)
		}
	}
	// 304 revalidation.
	code, _, _ = get(t, fmt.Sprintf("%s/v1/traces/%s", ts.URL, job.ID), map[string]string{"If-None-Match": etag})
	if code != http.StatusNotModified {
		t.Fatalf("revalidation status %d", code)
	}
	// Markdown negotiation.
	code, hdr, _ = get(t, fmt.Sprintf("%s/v1/traces/%s?format=markdown", ts.URL, job.ID), nil)
	if code != http.StatusOK || !strings.HasPrefix(hdr.Get("Content-Type"), ctMarkdown) {
		t.Fatalf("markdown: %d %q", code, hdr.Get("Content-Type"))
	}
	// Other namespaces must not leak trace jobs.
	for _, ns := range []string{"runs", "sweeps"} {
		if code, _, _ := get(t, fmt.Sprintf("%s/v1/%s/%s", ts.URL, ns, job.ID), nil); code != http.StatusNotFound {
			t.Errorf("trace visible under /v1/%s: %d", ns, code)
		}
	}
}

func TestTraceGridLifecycle(t *testing.T) {
	s, ts := realServer(t, Options{})
	code, _, body := post(t, ts.URL+"/v1/traces", tinyTraceGrid("grid lifecycle"))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, body)
	}
	var job jobDoc
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(job.Experiment, "tracegrid:") {
		t.Errorf("experiment %q", job.Experiment)
	}
	if st := await(t, s, job.ID); st != StatusDone {
		t.Fatalf("status %s", st)
	}
	code, _, body = get(t, fmt.Sprintf("%s/v1/traces/%s?format=csv", ts.URL, job.ID), nil)
	if code != http.StatusOK {
		t.Fatalf("result status %d: %s", code, body)
	}
	if lines := strings.Count(string(body), "\n"); lines != 5 { // header + 4 points
		t.Errorf("csv has %d lines:\n%s", lines, body)
	}
}

// TestTraceSSEStreamsEvents: the event stream carries per-event "job"
// frames and progress, then the terminal snapshot.
func TestTraceSSEStreamsEvents(t *testing.T) {
	s, ts, g := gatedServer(t, Options{})
	code, _, body := post(t, ts.URL+"/v1/traces", tinyTrace("sse"))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var job jobDoc
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	info := g.next(t)
	task, ok := info.payload.(*traceTask)
	if !ok {
		t.Fatalf("payload %T", info.payload)
	}
	if task.spec == nil || task.spec.Synthetic == nil || task.spec.Synthetic.Jobs != 12 {
		t.Fatalf("task spec %+v", task.spec)
	}

	stream, _ := openSSE(t, ts, "traces/"+job.ID)
	// Emulate the simulator: start/finish events plus progress.
	for i := 0; i < 3; i++ {
		info.publishRaw(streamEvent{name: "job", data: tracesim.Event{Kind: "start", Job: i, TimeSec: float64(i)}})
		info.publishRaw(streamEvent{name: "job", data: tracesim.Event{Kind: "finish", Job: i, TimeSec: float64(i) + 1}})
		info.publish(netpart.Progress{Experiment: job.Experiment, Run: "test", Done: i + 1, Total: 3})
	}
	close(info.proceed)
	if st := await(t, s, job.ID); st != StatusDone {
		t.Fatalf("status %s", st)
	}
	events := readSSE(t, stream, 64)
	var jobEvents, progress, status, done int
	for _, ev := range events {
		switch ev.name {
		case "status":
			status++
		case "job":
			var te tracesim.Event
			if err := json.Unmarshal([]byte(ev.data), &te); err != nil {
				t.Fatalf("job data %q: %v", ev.data, err)
			}
			if te.Kind != "start" && te.Kind != "finish" {
				t.Errorf("event kind %q", te.Kind)
			}
			jobEvents++
		case "progress":
			progress++
		case "done":
			done++
		}
	}
	if status != 1 || done != 1 {
		t.Errorf("status=%d done=%d in %+v", status, done, events)
	}
	if jobEvents != 6 || progress != 3 {
		t.Errorf("job events %d progress %d", jobEvents, progress)
	}
}

// TestTraceStampede: N identical concurrent trace submissions
// coalesce onto one simulation while keeping distinct job identities.
// Run under -race by CI.
func TestTraceStampede(t *testing.T) {
	s, ts, g := gatedServer(t, Options{})
	const n = 12
	ids := make([]string, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := range n {
		go func() {
			defer wg.Done()
			code, _, body := post(t, ts.URL+"/v1/traces", tinyTrace("stampede"))
			if code != http.StatusAccepted {
				t.Errorf("submit: %d %s", code, body)
				return
			}
			var job jobDoc
			if err := json.Unmarshal(body, &job); err != nil {
				t.Error(err)
				return
			}
			ids[i] = job.ID
		}()
	}
	wg.Wait()
	info := g.next(t)
	close(info.proceed)

	seen := map[string]bool{}
	for _, id := range ids {
		if id == "" {
			t.Fatal("missing job id")
		}
		if seen[id] {
			t.Fatalf("duplicate job id %s", id)
		}
		seen[id] = true
		if st := await(t, s, id); st != StatusDone {
			t.Fatalf("job %s status %s", id, st)
		}
	}
	if got := g.calls.Load(); got != 1 {
		t.Fatalf("%d underlying simulations, want 1", got)
	}
	// All jobs serve the same entry bytes.
	_, hdr1, body1 := get(t, ts.URL+"/v1/traces/"+ids[0], nil)
	_, hdr2, body2 := get(t, ts.URL+"/v1/traces/"+ids[n-1], nil)
	if string(body1) != string(body2) || hdr1.Get("ETag") != hdr2.Get("ETag") {
		t.Error("coalesced jobs served different results")
	}
}

// TestTraceCancelStopsSimulation: canceling the last job wanting a
// trace cancels the underlying simulation's context.
func TestTraceCancelStopsSimulation(t *testing.T) {
	s, ts, g := gatedServer(t, Options{})
	code, _, body := post(t, ts.URL+"/v1/traces", tinyTrace("cancel"))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var job jobDoc
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	info := g.next(t)

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/traces/"+job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	select {
	case <-info.ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("simulation context not canceled")
	}
	if st := await(t, s, job.ID); st != StatusCanceled {
		t.Fatalf("status %s, want canceled", st)
	}
	// A canceled flight is never cached: a fresh submission restarts.
	code, _, _ = post(t, ts.URL+"/v1/traces", tinyTrace("cancel"))
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: %d", code)
	}
	info2 := g.next(t)
	close(info2.proceed)
	if got := g.calls.Load(); got != 2 {
		t.Fatalf("%d calls after resubmit, want 2", got)
	}
}

func TestTraceValidation(t *testing.T) {
	_, ts := realServer(t, Options{})
	cases := []any{
		map[string]any{},                         // no machine
		map[string]any{"machine": "juqueen"},     // no jobs
		map[string]any{"machine": "nonexistent"}, // unknown machine
		map[string]any{"machine": "juqueen", "unknown_field": 1,
			"synthetic": map[string]any{"jobs": 1}}, // strict decoding
		map[string]any{"base": tinyTrace(""), "axes": []map[string]any{
			{"path": "policy", "values": []any{"warp"}}}}, // invalid grid point
		map[string]any{"base": map[string]any{}}, // grid with invalid base
	}
	for i, doc := range cases {
		code, _, body := post(t, ts.URL+"/v1/traces", doc)
		if code != http.StatusBadRequest {
			t.Errorf("case %d: status %d (%s)", i, code, body)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/traces", ctJSON, strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d", resp.StatusCode)
	}
	// Unknown trace IDs 404 on every verb.
	if code, _, _ := get(t, ts.URL+"/v1/traces/trace-999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown trace GET: %d", code)
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/traces/trace-999999", nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown trace DELETE: %d", resp.StatusCode)
		}
	}
}
