package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"netpart"
	"netpart/internal/store"
)

// newTestCache builds a cache with a private metrics registry and a
// silent logger, for tests exercising the cache directly.
func newTestCache(run runFunc, timeout time.Duration, st store.Store) *cache {
	return newCache(run, timeout, st, newServerMetrics(nil), slog.New(slog.NewTextHandler(io.Discard, nil)))
}

// realServer boots an httptest server over the real registry.
func realServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// runInfo is one invocation of the gated fake run function. The test
// controls when it finishes: close proceed for success, cancel the
// context for failure.
type runInfo struct {
	ctx     context.Context
	key     Key
	opts    netpart.RunOptions
	payload any
	publish func(netpart.Progress)
	// publishRaw emits an arbitrary stream event (sweep point tests).
	publishRaw func(streamEvent)
	proceed    chan struct{}
}

// gate is a controllable runFunc: every invocation parks on its
// proceed channel and is announced on started.
type gate struct {
	calls   atomic.Int32
	started chan *runInfo
}

func newGate() *gate {
	return &gate{started: make(chan *runInfo, 64)}
}

func (g *gate) run(ctx context.Context, key Key, opts netpart.RunOptions, payload any, publish func(streamEvent)) (*netpart.Result, error) {
	g.calls.Add(1)
	info := &runInfo{ctx: ctx, key: key, opts: opts, payload: payload,
		publish:    func(p netpart.Progress) { publish(progressEvent(p)) },
		publishRaw: publish,
		proceed:    make(chan struct{})}
	g.started <- info
	select {
	case <-info.proceed:
		return fakeResult(key), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// next returns the next started invocation or fails the test.
func (g *gate) next(t *testing.T) *runInfo {
	t.Helper()
	select {
	case info := <-g.started:
		return info
	case <-time.After(5 * time.Second):
		t.Fatal("no run started")
		return nil
	}
}

// gatedServer boots an httptest server whose runs are gate-controlled
// instead of real experiments.
func gatedServer(t *testing.T, opts Options) (*Server, *httptest.Server, *gate) {
	t.Helper()
	g := newGate()
	s := newServer(opts, g.run)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, g
}

// fakeResult fabricates a deterministic Result for a key.
func fakeResult(key Key) *netpart.Result {
	exp, _ := netpart.Lookup(key.ID)
	tab := netpart.Table{Title: "fake " + key.ID, Headers: []string{"key", "full_rounds"}}
	tab.AddRow(key.ID, key.FullRounds)
	return &netpart.Result{Experiment: exp, Table: tab}
}

// get fetches a URL with optional headers and returns status, headers
// and body.
func get(t *testing.T, url string, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// post submits a JSON body and returns status, headers and body.
func post(t *testing.T, url string, doc any) (int, http.Header, []byte) {
	t.Helper()
	body, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, ctJSON, strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, out
}

// submit POSTs a run and returns its job document.
func submit(t *testing.T, ts *httptest.Server, doc any) jobDoc {
	t.Helper()
	code, hdr, body := post(t, ts.URL+"/v1/runs", doc)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, body)
	}
	var job jobDoc
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatalf("submit: %v in %s", err, body)
	}
	if want := "/v1/runs/" + job.ID; hdr.Get("Location") != want {
		t.Fatalf("Location = %q, want %q", hdr.Get("Location"), want)
	}
	return job
}

// await blocks until the job reaches a terminal status and returns it.
func await(t *testing.T, s *Server, id string) Status {
	t.Helper()
	job, ok := s.jobs.lookup(id)
	if !ok {
		t.Fatalf("no job %s", id)
	}
	select {
	case <-job.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not finish", id)
	}
	status, _, _, _ := job.Snapshot()
	return status
}

// sseEvent is one parsed Server-Sent-Events frame.
type sseEvent struct {
	name string
	data string
}

// sseStream incrementally parses Server-Sent-Events frames.
type sseStream struct {
	sc *bufio.Scanner
}

func newSSEStream(r io.Reader) *sseStream {
	return &sseStream{sc: bufio.NewScanner(r)}
}

// next reads one frame (skipping heartbeat comments); ok is false at
// end of stream.
func (s *sseStream) next(t *testing.T) (ev sseEvent, ok bool) {
	t.Helper()
	var cur sseEvent
	for s.sc.Scan() {
		line := s.sc.Text()
		switch {
		case line == "":
			if cur.name != "" || cur.data != "" {
				return cur, true
			}
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return sseEvent{}, false
}

// readSSE consumes frames until the terminal "done" event, a frame
// limit, or EOF.
func readSSE(t *testing.T, r io.Reader, max int) []sseEvent {
	t.Helper()
	st := newSSEStream(r)
	var events []sseEvent
	for len(events) < max {
		ev, ok := st.next(t)
		if !ok {
			break
		}
		events = append(events, ev)
		if ev.name == "done" {
			break
		}
	}
	return events
}

// openSSE connects to a job's event stream; the returned cancel
// closes the stream.
func openSSE(t *testing.T, ts *httptest.Server, id string) (io.ReadCloser, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	path := "runs/" + id
	if strings.Contains(id, "/") { // caller passed an explicit namespace
		path = id
	}
	req, err := http.NewRequestWithContext(ctx, "GET", fmt.Sprintf("%s/v1/%s/events", ts.URL, path), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		cancel()
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		cancel()
		t.Fatalf("events: content type %q", ct)
	}
	t.Cleanup(func() { cancel(); resp.Body.Close() })
	return resp.Body, cancel
}
