package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"netpart"
	"netpart/internal/obs"
	"netpart/internal/sched"
	"netpart/internal/sched/cluster"
)

// --- cluster sessions (live incremental simulations) ---
//
// A cluster session is a stateful resource, not a flight: it has no
// content identity (two sessions from the same spec diverge the
// moment their job streams differ), so it bypasses the coalescing
// cache entirely. Instead the session manager bounds how many live at
// once (their own admission axis, separate from the per-cost-class
// run slots), reaps sessions their clients abandoned, and drains the
// survivors on shutdown.

// maxClusterBody bounds the POST /v1/cluster request body; job
// injection gets the sweep allowance since bodies carry job lists.
const (
	maxClusterBody     = 1 << 20
	maxClusterJobsBody = 4 << 20
)

// DefaultClusterSessions bounds concurrently open cluster sessions
// unless overridden.
const DefaultClusterSessions = 32

// DefaultClusterIdleTimeout is how long an untouched session lives
// before the reaper aborts it. Every API touch (submit, snapshot, an
// open event stream's heartbeat) resets the clock.
const DefaultClusterIdleTimeout = 10 * time.Minute

// costCluster is the admission class cluster-session engine work runs
// under: submissions and closing drains take one of these slots, so a
// burst of session traffic never queues behind (or starves) the
// per-cost-class experiment runs.
const costCluster = netpart.Cost("cluster")

// clusterSession is one live session plus its serving state: the
// lossy SSE fan-out and the idle-reaper timestamp.
type clusterSession struct {
	ID   string
	spec cluster.Spec
	sess *cluster.Session
	done chan struct{} // closed when the session ends (close or reap)

	events  *obs.CounterVec // engine events by kind (shared family)
	drops   *obs.Counter    // shared dropped-frame counter, "cluster" stream
	dropped atomic.Int64    // this session's drops, for its snapshot doc

	mu    sync.Mutex
	last  time.Time // last API touch, for the idle reaper
	subs  map[int]chan streamEvent
	nsub  int
	final *clusterFinalDoc // set by a successful DELETE before done closes
}

// touch resets the idle-reaper clock.
func (cs *clusterSession) touch() {
	cs.mu.Lock()
	cs.last = time.Now()
	cs.mu.Unlock()
}

// publish fans one engine event out to subscribers without blocking
// (lossy under backpressure, like job streams: the stream is a
// monitor, the final metrics are the record). Called from the
// session's OnEvent, so events arrive in simulation-time order.
func (cs *clusterSession) publish(ev streamEvent) {
	if e, ok := ev.data.(cluster.Event); ok {
		cs.events.With(e.Kind).Inc()
	}
	cs.mu.Lock()
	chans := make([]chan streamEvent, 0, len(cs.subs))
	for _, ch := range cs.subs {
		chans = append(chans, ch)
	}
	cs.mu.Unlock()
	for _, ch := range chans {
		select {
		case ch <- ev:
		default:
			cs.drops.Inc()
			cs.dropped.Add(1)
		}
	}
}

// subscribe registers a lossy event channel; the returned function
// unsubscribes it.
func (cs *clusterSession) subscribe() (<-chan streamEvent, func()) {
	ch := make(chan streamEvent, 64)
	cs.mu.Lock()
	id := cs.nsub
	cs.nsub++
	cs.subs[id] = ch
	cs.mu.Unlock()
	return ch, func() {
		cs.mu.Lock()
		delete(cs.subs, id)
		cs.mu.Unlock()
	}
}

// clusterStats are the healthz counters for the session subsystem.
type clusterStats struct {
	// ActiveSessions is the number of currently open sessions.
	ActiveSessions int `json:"active_sessions"`
	// JobsSubmitted is the lifetime count of accepted job submissions
	// across all sessions (duplicates excluded).
	JobsSubmitted int64 `json:"jobs_submitted"`
	// SessionsReaped counts sessions aborted by the idle timeout.
	SessionsReaped int64 `json:"sessions_reaped"`
}

// clusterManager owns the open sessions: identity, the session-count
// admission bound, idle reaping and graceful drain.
type clusterManager struct {
	max     int
	idle    time.Duration
	stop    chan struct{}
	metrics *serverMetrics

	mu       sync.Mutex
	sessions map[string]*clusterSession
	seq      int
	closed   bool
}

func newClusterManager(max int, idle time.Duration, sm *serverMetrics) *clusterManager {
	if max <= 0 {
		max = DefaultClusterSessions
	}
	if idle == 0 {
		idle = DefaultClusterIdleTimeout
	}
	if idle < 0 {
		idle = 0 // disabled
	}
	m := &clusterManager{max: max, idle: idle, stop: make(chan struct{}), metrics: sm, sessions: map[string]*clusterSession{}}
	sm.reg.GaugeFunc("netpart_cluster_sessions_active", "Currently open cluster sessions.",
		func() float64 { m.mu.Lock(); defer m.mu.Unlock(); return float64(len(m.sessions)) })
	if idle > 0 {
		go m.reaper()
	}
	return m
}

// reaper aborts sessions no client has touched within the idle
// timeout — the GC for abandoned sessions (an SSE consumer keeps its
// session alive via heartbeat touches).
func (m *clusterManager) reaper() {
	tick := m.idle / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > 30*time.Second {
		tick = 30 * time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-t.C:
			for _, cs := range m.snapshot() {
				cs.mu.Lock()
				expired := now.Sub(cs.last) >= m.idle
				cs.mu.Unlock()
				if expired && m.remove(cs.ID) != nil {
					cs.sess.Abort()
					close(cs.done)
					m.metrics.clusterReaped.Inc()
				}
			}
		}
	}
}

// errSessionsFull rejects session creation at the admission bound.
var errSessionsFull = errors.New("cluster sessions full")

// open creates a session under the session-count bound.
func (m *clusterManager) open(spec cluster.Spec) (*clusterSession, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errShutdown
	}
	if len(m.sessions) >= m.max {
		return nil, fmt.Errorf("serve: cluster session bound %d reached: %w", m.max, errSessionsFull)
	}
	m.seq++
	cs := &clusterSession{
		ID:     fmt.Sprintf("cluster-%06d", m.seq),
		done:   make(chan struct{}),
		events: m.metrics.clusterEvents,
		drops:  m.metrics.dropped.With("cluster"),
		last:   time.Now(),
		subs:   map[int]chan streamEvent{},
	}
	sess, err := cluster.Open(spec, cluster.SessionOptions{
		OnEvent: func(ev cluster.Event) {
			cs.publish(streamEvent{name: "event", data: ev})
		},
	})
	if err != nil {
		return nil, err
	}
	cs.sess = sess
	cs.spec = sess.Spec()
	m.sessions[cs.ID] = cs
	return cs, nil
}

// lookup returns the session by ID and touches it.
func (m *clusterManager) lookup(id string) (*clusterSession, bool) {
	m.mu.Lock()
	cs, ok := m.sessions[id]
	m.mu.Unlock()
	if ok {
		cs.touch()
	}
	return cs, ok
}

// remove deletes the session from the index (nil when already gone:
// the reaper and a DELETE can race, exactly one caller wins).
func (m *clusterManager) remove(id string) *clusterSession {
	m.mu.Lock()
	defer m.mu.Unlock()
	cs := m.sessions[id]
	delete(m.sessions, id)
	return cs
}

// snapshot lists the open sessions.
func (m *clusterManager) snapshot() []*clusterSession {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*clusterSession, 0, len(m.sessions))
	for _, cs := range m.sessions {
		out = append(out, cs)
	}
	return out
}

// stats snapshots the healthz counters, read back from the same
// metrics /metrics exposes.
func (m *clusterManager) stats() clusterStats {
	m.mu.Lock()
	active := len(m.sessions)
	m.mu.Unlock()
	return clusterStats{
		ActiveSessions: active,
		JobsSubmitted:  m.metrics.clusterJobs.Value(),
		SessionsReaped: m.metrics.clusterReaped.Value(),
	}
}

// drain closes the manager to new sessions and gracefully drains the
// open ones to completion: each session runs its remaining schedule
// to the end (bounded by ctx — an expired context aborts the
// stragglers) so final metrics and SSE done frames still go out on a
// clean shutdown.
func (m *clusterManager) drain(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	close(m.stop)

	var wg sync.WaitGroup
	for _, cs := range m.snapshot() {
		if m.remove(cs.ID) == nil {
			continue
		}
		wg.Add(1)
		go func(cs *clusterSession) {
			defer wg.Done()
			if met, err := cs.sess.Close(ctx); err != nil {
				cs.sess.Abort()
			} else {
				final := clusterFinalDoc{ID: cs.ID, Title: cs.spec.Title(), Spec: cs.spec, Metrics: met}
				cs.mu.Lock()
				cs.final = &final
				cs.mu.Unlock()
			}
			close(cs.done)
		}(cs)
	}
	wg.Wait()
	return ctx.Err()
}

// --- wire documents ---

// clusterDoc is a session resource on the wire. DroppedFrames is the
// count of SSE frames this session's lossy fan-out has shed — a
// consumer seeing gaps in the event stream can confirm (and quantify)
// the loss here.
type clusterDoc struct {
	ID            string            `json:"id"`
	Title         string            `json:"title"`
	Spec          cluster.Spec      `json:"spec"`
	Snapshot      cluster.Snapshot  `json:"snapshot"`
	DroppedFrames int64             `json:"dropped_frames"`
	Links         map[string]string `json:"links"`
}

func clusterDocFor(cs *clusterSession, snap cluster.Snapshot) clusterDoc {
	path := "/v1/cluster/" + cs.ID
	return clusterDoc{
		ID:            cs.ID,
		Title:         cs.spec.Title(),
		Spec:          cs.spec,
		Snapshot:      snap,
		DroppedFrames: cs.dropped.Load(),
		Links: map[string]string{
			"self":   path,
			"jobs":   path + "/jobs",
			"events": path + "/events",
		},
	}
}

// clusterJobsDoc is the POST /v1/cluster/{id}/jobs request body.
type clusterJobsDoc struct {
	Jobs []cluster.SubmitJob `json:"jobs"`
}

// clusterFinalDoc is the DELETE response: the session's terminal
// summary, shaped like a batch trace simulation's metrics.
type clusterFinalDoc struct {
	ID      string          `json:"id"`
	Title   string          `json:"title"`
	Spec    cluster.Spec    `json:"spec"`
	Metrics cluster.Metrics `json:"metrics"`
}

// --- handlers ---

// handleClusterOpen creates a session: the body is the session spec,
// the response 201 with the session document and a Location header.
func (s *Server) handleClusterOpen(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxClusterBody))
	dec.DisallowUnknownFields()
	var spec cluster.Spec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad cluster body: %v", err)
		return
	}
	cs, err := s.clusters.open(spec)
	switch {
	case err == nil:
	case errors.Is(err, errShutdown), errors.Is(err, errSessionsFull):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	snap, err := cs.sess.Snapshot(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/cluster/"+cs.ID)
	writeJSON(w, http.StatusCreated, clusterDocFor(cs, snap))
}

// handleClusterJobs injects jobs into a session. Job IDs are
// client-supplied and idempotent: resubmitting a batch after a lost
// response re-counts already accepted jobs as duplicates instead of
// double-scheduling them. The engine work runs under the cluster
// admission class.
func (s *Server) handleClusterJobs(w http.ResponseWriter, r *http.Request) {
	cs, ok := s.clusters.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no cluster session %q", r.PathValue("id"))
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxClusterJobsBody))
	dec.DisallowUnknownFields()
	var doc clusterJobsDoc
	if err := dec.Decode(&doc); err != nil {
		writeError(w, http.StatusBadRequest, "bad jobs body: %v", err)
		return
	}
	if len(doc.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "no jobs in body")
		return
	}
	release, err := s.acquire(r.Context(), costCluster)
	if err != nil {
		writeClusterError(w, err)
		return
	}
	rec, err := cs.sess.Submit(r.Context(), doc.Jobs)
	release()
	if err != nil {
		writeClusterError(w, err)
		return
	}
	s.metrics.clusterJobs.Add(int64(rec.Accepted))
	cs.touch()
	writeJSON(w, http.StatusOK, rec)
}

// handleClusterGet serves a session's current metrics snapshot.
func (s *Server) handleClusterGet(w http.ResponseWriter, r *http.Request) {
	cs, ok := s.clusters.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no cluster session %q", r.PathValue("id"))
		return
	}
	snap, err := cs.sess.Snapshot(r.Context())
	if err != nil {
		writeClusterError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, clusterDocFor(cs, snap))
}

// handleClusterClose ends a session: the remaining schedule drains to
// completion (under the cluster admission class, bounded by the
// request context) and the response is the final tracesim-shaped
// metrics summary. The session is gone afterwards either way.
func (s *Server) handleClusterClose(w http.ResponseWriter, r *http.Request) {
	cs := s.clusters.remove(r.PathValue("id"))
	if cs == nil {
		writeError(w, http.StatusNotFound, "no cluster session %q", r.PathValue("id"))
		return
	}
	release, err := s.acquire(r.Context(), costCluster)
	if err != nil {
		cs.sess.Abort()
		close(cs.done)
		writeClusterError(w, err)
		return
	}
	met, err := cs.sess.Close(r.Context())
	release()
	if err != nil {
		cs.sess.Abort()
		close(cs.done)
		writeClusterError(w, err)
		return
	}
	final := clusterFinalDoc{ID: cs.ID, Title: cs.spec.Title(), Spec: cs.spec, Metrics: met}
	cs.mu.Lock()
	cs.final = &final
	cs.mu.Unlock()
	close(cs.done)
	writeJSON(w, http.StatusOK, final)
}

// handleClusterEvents streams a session's engine events as SSE:
//
//	event: status  one session document on connect
//	event: event   every engine event (submit/place/contention/start/
//	               finish/kill/outage/heal), annotated with the client
//	               job ID; lossy under backpressure
//	event: done    when the session ends — the final metrics document
//	               after a graceful DELETE, the last session document
//	               after an idle reap — then the stream closes
//
// An open stream's heartbeat keeps the session from idle-reaping.
func (s *Server) handleClusterEvents(w http.ResponseWriter, r *http.Request) {
	cs, ok := s.clusters.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no cluster session %q", r.PathValue("id"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	out := newSSEWriter(w)
	sub, unsubscribe := cs.subscribe()
	defer unsubscribe()

	snap, err := cs.sess.Snapshot(r.Context())
	if err == nil {
		if out.event("status", clusterDocFor(cs, snap)) != nil {
			return
		}
	}
	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case ev := <-sub:
			if out.event(ev.name, ev.data) != nil {
				return
			}
		case <-cs.done:
			for {
				select {
				case ev := <-sub:
					if out.event(ev.name, ev.data) != nil {
						return
					}
					continue
				default:
				}
				break
			}
			cs.mu.Lock()
			final := cs.final
			cs.mu.Unlock()
			if final != nil {
				out.event("done", final) //nolint:errcheck // closing anyway
			} else {
				out.event("done", map[string]string{"id": cs.ID, "status": "aborted"}) //nolint:errcheck
			}
			return
		case <-heartbeat.C:
			cs.touch() // a live consumer keeps the session alive
			if out.comment() != nil {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// writeClusterError maps session operation failures onto statuses:
// closed sessions are gone, wedged schedules are a property of the
// submitted workload (422), validation failures are the client's
// (400), and context ends map like everywhere else.
func writeClusterError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, cluster.ErrClosed):
		writeError(w, http.StatusGone, "%v", err)
	case errors.Is(err, context.Canceled):
		writeError(w, 499, "canceled")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "drain exceeded the request deadline")
	case errors.As(err, new(*sched.StarvedError)), errors.As(err, new(*sched.NeverFitsError)):
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}
