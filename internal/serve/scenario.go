package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"runtime/debug"

	"netpart"
	"netpart/internal/obs"
	"netpart/internal/route"
	"netpart/internal/scenario"
	"netpart/internal/scenario/sweep"
	"netpart/internal/store"
)

// --- healthz ---

// healthDoc is the GET /v1/healthz response: a real readiness probe
// (the handler answers only once the mux and cache are wired) plus
// version/build info and cache / store / fleet observability for
// debugging a deployment at a glance.
type healthDoc struct {
	Status      string `json:"status"`
	Service     string `json:"service"`
	Version     string `json:"version"`
	Revision    string `json:"revision,omitempty"`
	GoVersion   string `json:"go"`
	Experiments int    `json:"experiments"`

	Cache   cacheStats   `json:"cache"`
	Cluster clusterStats `json:"cluster"`
	Store   *store.Stats `json:"store,omitempty"` // absent without --store-dir
	Peers   []peerDoc    `json:"peers,omitempty"` // absent outside coordinator mode

	// Metrics is the full registry snapshot — every family /metrics
	// exposes, in the same order, as JSON. The legacy cache / cluster /
	// store / peer blocks above read from the same underlying metrics,
	// so the two views can never disagree.
	Metrics []obs.FamilySnapshot `json:"metrics"`
}

// handleHealthz serves readiness, build identity, and the cache /
// cluster-session / store / per-peer dispatch counters.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	doc := healthDoc{
		Status:      "ok",
		Service:     "netpartd",
		Version:     "(devel)",
		GoVersion:   runtime.Version(),
		Experiments: len(netpart.Registry()),
		Cache:       s.cache.stats(),
		Cluster:     s.clusters.stats(),
		Metrics:     s.metrics.reg.Snapshot(),
	}
	if s.opts.Store != nil {
		st := s.opts.Store.Stats()
		doc.Store = &st
	}
	if s.peers != nil {
		doc.Peers = s.peers.stats()
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		if info.Main.Version != "" {
			doc.Version = info.Main.Version
		}
		for _, kv := range info.Settings {
			if kv.Key == "vcs.revision" {
				doc.Revision = kv.Value
			}
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// --- scenarios (synchronous) ---

// maxScenarioBody bounds the POST /v1/scenarios request body.
const maxScenarioBody = 1 << 20

// handleScenario runs one user-defined scenario synchronously through
// the coalescing cache: the body is the scenario spec, the response
// the negotiated Result encoding with a strong ETag. Identical
// concurrent requests (same normalized spec) coalesce onto one run;
// hot specs answer from memory.
func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxScenarioBody))
	dec.DisallowUnknownFields()
	var spec netpart.ScenarioSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad scenario body: %v", err)
		return
	}
	norm, err := spec.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts, err := parseRunOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, err := s.cache.do(r.Context(), Key{ID: norm.ID()}, opts, norm, nil)
	switch {
	case err == nil:
		writeEntry(w, r, e)
	case errors.Is(err, context.Canceled):
		writeError(w, 499, "canceled")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "run exceeded the server's run timeout")
	case errors.As(err, new(*route.DisconnectedError)):
		// The submitted failure model disconnects the topology: a
		// property of the document, not a server fault.
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// runScenario executes one scenario flight: admission for the
// scenario's derived cost class, then RunScenario on a fresh Runner.
func (s *Server) runScenario(ctx context.Context, key Key, opts netpart.RunOptions, payload any, publish func(streamEvent)) (*netpart.Result, error) {
	spec, ok := payload.(netpart.ScenarioSpec)
	if !ok {
		return nil, errors.New("serve: scenario flight without a spec payload")
	}
	release, err := s.acquire(ctx, netpart.Cost(spec.Cost()))
	if err != nil {
		return nil, err
	}
	defer release()
	workers := opts.Workers
	if workers <= 0 {
		workers = s.opts.Workers
	}
	progress := func(p netpart.Progress) { publish(progressEvent(p)) }
	runner := netpart.NewRunner(netpart.WithWorkers(workers), netpart.WithProgress(progress))
	return runner.RunScenario(ctx, spec)
}

// --- sweeps (asynchronous jobs) ---

// maxSweepBody bounds the POST /v1/sweeps request body (grids carry
// axis value lists, so they get more room than single runs).
const maxSweepBody = 4 << 20

// sweepTask is the parsed definition a sweep flight executes. The
// expanded points ride along so admission cost and the content-hash
// ID are computed once at submission.
type sweepTask struct {
	grid   netpart.SweepGrid
	points []sweep.Point
}

// handleSweepSubmit accepts a parameter-grid sweep: the body is the
// grid document, the response 202 with the job document and Location.
// The grid is expanded (and therefore fully validated) before the job
// is created; identical concurrent submissions — grids expanding to
// the same points — coalesce onto one execution while keeping
// distinct job identities.
func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSweepBody))
	dec.DisallowUnknownFields()
	var grid netpart.SweepGrid
	if err := dec.Decode(&grid); err != nil {
		writeError(w, http.StatusBadRequest, "bad sweep body: %v", err)
		return
	}
	points, err := grid.Expand()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	exp := netpart.Experiment{
		ID:    sweep.ID(grid.Name, points),
		Title: grid.Title(),
		Kind:  netpart.KindTable,
		Cost:  netpart.Cost(sweep.Cost(points)),
	}
	job, err := s.jobs.submit(JobSweep, exp, Key{ID: exp.ID}, netpart.RunOptions{}, &sweepTask{grid: grid, points: points}, obs.RequestIDFrom(r.Context()))
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	w.Header().Set("Location", job.path())
	writeJSON(w, http.StatusAccepted, jobDocFor(job))
}

// handleSweep serves a sweep job: the status document (including the
// latest per-point progress) while running, the negotiated result
// once done.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.lookup(r.PathValue("id"))
	if !ok || job.Kind != JobSweep {
		writeError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	if e := job.Entry(); e != nil {
		w.Header().Set("X-Netpart-Run", job.ID)
		writeEntry(w, r, e)
		return
	}
	writeJSON(w, http.StatusOK, jobDocFor(job))
}

// handleSweepCancel cancels a sweep job (idempotent); the underlying
// execution stops once no other job still wants its result. A DELETE
// of a finished sweep also evicts its completed result from the cache
// and the persistent store, so re-submitting the grid recomputes.
func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.lookup(r.PathValue("id"))
	if !ok || job.Kind != JobSweep {
		writeError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	job.Cancel()
	s.cache.evict(job.Key)
	writeJSON(w, http.StatusAccepted, jobDocFor(job))
}

// runSweep executes one sweep flight: admission for the point-count
// derived cost class, then RunSweep on a fresh Runner with per-point
// streaming into the flight's event feed.
func (s *Server) runSweep(ctx context.Context, key Key, opts netpart.RunOptions, payload any, publish func(streamEvent)) (*netpart.Result, error) {
	task, ok := payload.(*sweepTask)
	if !ok {
		return nil, errors.New("serve: sweep flight without a grid payload")
	}
	release, err := s.acquire(ctx, netpart.Cost(sweep.Cost(task.points)))
	if err != nil {
		return nil, err
	}
	defer release()
	workers := opts.Workers
	if workers <= 0 {
		workers = s.opts.Workers
	}
	progress := func(p netpart.Progress) { publish(progressEvent(p)) }
	ropts := []netpart.Option{netpart.WithWorkers(workers), netpart.WithProgress(progress)}
	if s.peers != nil {
		// Coordinator mode: each point is dispatched to the peer owning
		// its content hash and recomputed locally on any peer failure.
		// Local fallback is the plain per-point executor, so a degraded
		// fleet still yields bytes identical to a single-process run.
		ropts = append(ropts, netpart.WithScenarioRunner(func(ctx context.Context, spec netpart.ScenarioSpec) (*netpart.ScenarioOutcome, error) {
			if out, err := s.peers.dispatchScenario(ctx, spec); err == nil {
				return out, nil
			} else if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return scenario.Run(ctx, spec)
		}))
	}
	runner := netpart.NewRunner(ropts...)
	onPoint := func(p netpart.SweepPoint) { publish(streamEvent{name: "point", data: p}) }
	return runner.RunSweep(ctx, task.grid, onPoint)
}
