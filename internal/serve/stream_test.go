package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"netpart"
)

// TestSSEStreamFraming drives a gated job and checks the full event
// stream: an initial status snapshot, progress frames carrying the
// per-run token, and a terminal done frame.
func TestSSEStreamFraming(t *testing.T) {
	_, ts, g := gatedServer(t, Options{})
	job := submit(t, ts, map[string]any{"experiment": "figure3", "full_rounds": true})
	info := g.next(t)

	body, _ := openSSE(t, ts, job.ID)
	st := newSSEStream(body)

	first, ok := st.next(t)
	if !ok || first.name != "status" {
		t.Fatalf("first event %+v (ok=%v), want status", first, ok)
	}
	var doc jobDoc
	if err := json.Unmarshal([]byte(first.data), &doc); err != nil || doc.ID != job.ID || doc.Status != StatusRunning {
		t.Fatalf("status snapshot %q (%v)", first.data, err)
	}

	// Publish progress through the flight and watch it arrive framed.
	for i := 1; i <= 3; i++ {
		info.publish(netpart.Progress{Experiment: "figure3", Run: "figure3#test", Done: i, Total: 3})
	}
	for seen := 0; seen < 3; seen++ {
		ev, ok := st.next(t)
		if !ok {
			t.Fatal("stream closed before progress arrived")
		}
		if ev.name != "progress" {
			t.Fatalf("event %q, want progress", ev.name)
		}
		var p progressDoc
		if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
			t.Fatal(err)
		}
		if p.Run != "figure3#test" || p.Experiment != "figure3" || p.Done != seen+1 || p.Total != 3 {
			t.Fatalf("progress %+v", p)
		}
	}

	close(info.proceed)
	last, ok := st.next(t)
	if !ok || last.name != "done" {
		t.Fatalf("terminal event %+v (ok=%v), want done", last, ok)
	}
	if err := json.Unmarshal([]byte(last.data), &doc); err != nil || doc.Status != StatusDone {
		t.Fatalf("done doc %q", last.data)
	}
	if _, more := st.next(t); more {
		t.Fatal("stream did not close after done")
	}
}

// TestSSEOnFinishedJob: connecting to a job that already completed
// still yields a well-formed stream (status snapshot, then done).
func TestSSEOnFinishedJob(t *testing.T) {
	s, ts, g := gatedServer(t, Options{})
	job := submit(t, ts, map[string]any{"experiment": "table1"})
	close(g.next(t).proceed)
	if got := await(t, s, job.ID); got != StatusDone {
		t.Fatalf("status %q", got)
	}

	body, _ := openSSE(t, ts, job.ID)
	events := readSSE(t, body, 8)
	if len(events) != 2 || events[0].name != "status" || events[1].name != "done" {
		t.Fatalf("events %+v, want [status done]", events)
	}
}

// TestSSEEndpointUnknownRun: 404 for a run that does not exist.
func TestSSEEndpointUnknownRun(t *testing.T) {
	_, ts, _ := gatedServer(t, Options{})
	if code, _, _ := get(t, ts.URL+"/v1/runs/run-404/events", nil); code != http.StatusNotFound {
		t.Fatalf("status %d", code)
	}
}

// TestStampedeCoalesces is the race-detector stampede proof: N
// concurrent identical POST /v1/runs coalesce onto exactly one
// underlying run, every job completes, and every result fetch
// returns byte-identical bodies with one shared strong ETag.
func TestStampedeCoalesces(t *testing.T) {
	s, ts, g := gatedServer(t, Options{})

	const n = 24
	ids := make([]string, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := range n {
		go func() {
			defer wg.Done()
			job := submit(t, ts, map[string]any{"experiment": "table6", "workers": i + 1})
			ids[i] = job.ID
		}()
	}
	wg.Wait()

	// Every job is attached to the single flight before it is
	// released — this is the coalescing-in-flight case, not a warm
	// cache hit.
	waitFor(t, func() bool {
		s.cache.mu.Lock()
		defer s.cache.mu.Unlock()
		f := s.cache.flights[Key{ID: "table6"}]
		return f != nil && f.waiters == n
	})
	close(g.next(t).proceed)

	var bodies [][]byte
	var etags []string
	for _, id := range ids {
		if got := await(t, s, id); got != StatusDone {
			t.Fatalf("job %s status %q", id, got)
		}
		code, hdr, body := get(t, ts.URL+"/v1/runs/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("job %s: status %d", id, code)
		}
		bodies = append(bodies, body)
		etags = append(etags, hdr.Get("ETag"))
	}
	if calls := g.calls.Load(); calls != 1 {
		t.Fatalf("underlying run executed %d times for %d identical submissions, want 1", calls, n)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) || etags[i] != etags[0] {
			t.Fatalf("job %d: result bytes/etag diverge", i)
		}
	}
}

// TestSyncStampedeCoalesces: the synchronous endpoint coalesces too —
// N concurrent identical GETs join one flight, one underlying run,
// identical bytes and ETags for every client.
func TestSyncStampedeCoalesces(t *testing.T) {
	s, ts, g := gatedServer(t, Options{})

	const n = 16
	bodies := make([][]byte, n)
	codes := make([]int, n)
	etags := make([]string, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := range n {
		go func() {
			defer wg.Done()
			var hdr http.Header
			codes[i], hdr, bodies[i] = get(t, ts.URL+"/v1/experiments/table7/result", nil)
			etags[i] = hdr.Get("ETag")
		}()
	}
	// Release the single run only once every request has joined the
	// flight, so this exercises in-flight coalescing, not warm hits.
	info := g.next(t)
	waitFor(t, func() bool {
		s.cache.mu.Lock()
		defer s.cache.mu.Unlock()
		f := s.cache.flights[Key{ID: "table7"}]
		return f != nil && f.waiters == n
	})
	close(info.proceed)
	wg.Wait()

	if calls := g.calls.Load(); calls != 1 {
		t.Fatalf("underlying run executed %d times for %d identical requests, want 1", calls, n)
	}
	for i := range n {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) || etags[i] != etags[0] {
			t.Fatalf("client %d: bytes/etag diverge", i)
		}
	}
}

// TestSyncDisconnectCancelsRun is the disconnect acceptance test: a
// synchronous client that goes away mid-run cancels the underlying
// Runner context promptly with context.Canceled.
func TestSyncDisconnectCancelsRun(t *testing.T) {
	_, ts, g := gatedServer(t, Options{})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/experiments/figure4/result", nil)
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 1)
	go func() {
		_, doErr := http.DefaultClient.Do(req)
		errs <- doErr
	}()

	info := g.next(t)
	cancel() // client disconnects mid-run

	select {
	case <-info.ctx.Done():
		if cause := context.Cause(info.ctx); !errors.Is(cause, context.Canceled) {
			t.Fatalf("run context cause %v, want canceled", cause)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("run not canceled after client disconnect")
	}
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("client err = %v, want context.Canceled", err)
	}
}

// TestSyncDisconnectSparesOtherWaiter: with two synchronous clients
// on one flight, one disconnecting leaves the run alive and the
// survivor gets the result.
func TestSyncDisconnectSparesOtherWaiter(t *testing.T) {
	s, ts, g := gatedServer(t, Options{})
	url := ts.URL + "/v1/experiments/figure3/result"

	ctxA, cancelA := context.WithCancel(context.Background())
	reqA, _ := http.NewRequestWithContext(ctxA, "GET", url, nil)
	go http.DefaultClient.Do(reqA) //nolint:errcheck
	info := g.next(t)

	type result struct {
		code int
		body []byte
		err  error
	}
	resB := make(chan result, 1)
	go func() {
		resp, err := http.Get(url)
		if err != nil {
			resB <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		resB <- result{code: resp.StatusCode, body: body}
	}()
	waitFor(t, func() bool {
		s.cache.mu.Lock()
		defer s.cache.mu.Unlock()
		f := s.cache.flights[Key{ID: "figure3"}]
		return f != nil && f.waiters == 2
	})

	cancelA()
	select {
	case <-info.ctx.Done():
		t.Fatal("run canceled while another client was waiting")
	case <-time.After(20 * time.Millisecond):
	}

	close(info.proceed)
	r := <-resB
	if r.err != nil || r.code != http.StatusOK {
		t.Fatalf("survivor: %v status %d", r.err, r.code)
	}
	want, err := fakeResult(Key{ID: "figure3"}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.body, want) {
		t.Fatalf("survivor body %s", r.body)
	}
}
