package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"netpart"
	"netpart/internal/obs"
)

// Status is a job's lifecycle state.
type Status string

const (
	// StatusRunning: the job is attached to a flight (possibly
	// waiting on a per-cost-class admission slot, possibly coalesced
	// onto another job's run).
	StatusRunning Status = "running"
	// StatusDone: the result is available.
	StatusDone Status = "done"
	// StatusFailed: the run returned an error.
	StatusFailed Status = "failed"
	// StatusCanceled: the job was canceled (DELETE, run timeout, or
	// server shutdown) before it produced a result.
	StatusCanceled Status = "canceled"
)

// errShutdown rejects submissions during drain.
var errShutdown = errors.New("serve: shutting down")

// Job kinds: registry experiment runs, scenario sweeps and trace
// simulations share the job machinery but live under different URL
// namespaces.
const (
	JobRun   = "run"
	JobSweep = "sweep"
	JobTrace = "trace"
)

// Job is one submitted run or sweep: a handle with its own identity,
// event feed and cancellation, even when its computation is coalesced
// with other jobs onto a single flight.
type Job struct {
	ID         string
	Kind       string             // JobRun or JobSweep
	Experiment netpart.Experiment // synthesized descriptor for sweeps
	Opts       netpart.RunOptions // as submitted
	Key        Key                // normalized cache identity
	Created    time.Time

	cancel context.CancelFunc
	done   chan struct{} // closed on terminal status
	drops  *obs.Counter  // frames dropped by this job's lossy fan-out

	mu       sync.Mutex
	status   Status
	err      error
	entry    *entry
	latest   netpart.Progress
	reported bool // latest is meaningful
	subs     map[int]chan streamEvent
	nsub     int
}

// path returns the job's URL path under /v1.
func (j *Job) path() string {
	switch j.Kind {
	case JobSweep:
		return "/v1/sweeps/" + j.ID
	case JobTrace:
		return "/v1/traces/" + j.ID
	default:
		return "/v1/runs/" + j.ID
	}
}

// Snapshot returns the job's current status, last progress report
// (ok=false before the first), and terminal error if any.
func (j *Job) Snapshot() (status Status, p netpart.Progress, ok bool, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.latest, j.reported, j.err
}

// Entry returns the finished result entry, or nil before StatusDone.
func (j *Job) Entry() *entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.entry
}

// Cancel cancels the job. The underlying run stops only when every
// job coalesced onto its flight has been canceled or abandoned.
func (j *Job) Cancel() { j.cancel() }

// Done is closed when the job reaches a terminal status.
func (j *Job) Done() <-chan struct{} { return j.done }

// publish records the latest progress and fans events out to
// subscribers without blocking: a slow SSE consumer drops
// intermediate events (progress is monotone, so the latest report
// subsumes the dropped ones; a dropped sweep point is still present
// in the final result, the stream is a monitor, not the record).
func (j *Job) publish(ev streamEvent) {
	j.mu.Lock()
	if p, ok := ev.data.(netpart.Progress); ok {
		j.latest = p
		j.reported = true
	}
	chans := make([]chan streamEvent, 0, len(j.subs))
	for _, ch := range j.subs {
		chans = append(chans, ch)
	}
	j.mu.Unlock()
	for _, ch := range chans {
		select {
		case ch <- ev:
		default:
			j.drops.Inc() // lossy by design; the drop is still counted
		}
	}
}

// subscribe registers an event channel; the returned function
// unsubscribes it. The channel is buffered and lossy (see publish).
func (j *Job) subscribe() (<-chan streamEvent, func()) {
	ch := make(chan streamEvent, 64)
	j.mu.Lock()
	id := j.nsub
	j.nsub++
	j.subs[id] = ch
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, id)
		j.mu.Unlock()
	}
}

// finish moves the job to its terminal status. Context errors — the
// job's own cancellation (DELETE, shutdown) or the flight's run
// timeout — report as canceled; anything else the experiment
// returned is a failure.
func (j *Job) finish(e *entry, err error) {
	j.mu.Lock()
	switch {
	case err == nil:
		j.status = StatusDone
		j.entry = e
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.status = StatusCanceled
		j.err = err
	default:
		j.status = StatusFailed
		j.err = err
	}
	j.mu.Unlock()
	close(j.done)
}

// maxRetainedJobs bounds the job index. Unlike the result cache,
// whose key space is bounded by construction, job identities are
// unbounded under sustained traffic; past this count the oldest
// *terminal* jobs are evicted (a running job is never evicted).
const maxRetainedJobs = 1024

// jobManager owns the submitted jobs: identity, lifecycle, and
// graceful drain. The actual computation (admission, coalescing,
// caching) is delegated to the cache.
type jobManager struct {
	cache   *cache
	baseCtx context.Context
	stop    context.CancelFunc // cancels every job (shutdown deadline)
	wg      sync.WaitGroup
	maxJobs int

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // job IDs in submission order, for eviction
	seq    int
	closed bool
}

func newJobManager(c *cache) *jobManager {
	ctx, cancel := context.WithCancel(context.Background())
	return &jobManager{cache: c, baseCtx: ctx, stop: cancel, maxJobs: maxRetainedJobs, jobs: map[string]*Job{}}
}

// pruneLocked evicts the oldest terminal jobs once the index exceeds
// maxJobs. Callers hold m.mu.
func (m *jobManager) pruneLocked() {
	if len(m.jobs) <= m.maxJobs {
		return
	}
	kept := m.order[:0]
	for i, id := range m.order {
		if len(m.jobs) <= m.maxJobs {
			kept = append(kept, m.order[i:]...)
			break
		}
		j := m.jobs[id]
		select {
		case <-j.done:
			delete(m.jobs, id)
		default:
			kept = append(kept, id)
		}
	}
	m.order = kept
}

// submit creates a job and starts it asynchronously. For registry
// runs (JobRun) the key derives from the experiment and options; for
// sweeps (JobSweep) the caller supplies the content-hash key and the
// parsed definition as payload. reqID is the submitting request's ID;
// the job's context carries it (detached from the request's deadline)
// so the asynchronous work stays traceable to the submission.
func (m *jobManager) submit(kind string, exp netpart.Experiment, key Key, opts netpart.RunOptions, payload any, reqID string) (*Job, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, errShutdown
	}
	m.seq++
	id := fmt.Sprintf("%s-%06d", kind, m.seq)
	ctx, cancel := context.WithCancel(obs.WithRequestID(m.baseCtx, reqID))
	job := &Job{
		ID:         id,
		Kind:       kind,
		Experiment: exp,
		Opts:       opts,
		Key:        key,
		Created:    time.Now(),
		cancel:     cancel,
		done:       make(chan struct{}),
		drops:      m.cache.m.dropped.With(kind),
		status:     StatusRunning,
		subs:       map[int]chan streamEvent{},
	}
	m.jobs[id] = job
	m.order = append(m.order, id)
	m.pruneLocked()
	m.wg.Add(1)
	m.mu.Unlock()

	go func() {
		defer m.wg.Done()
		defer cancel()
		e, err := m.cache.do(ctx, job.Key, opts, payload, job.publish)
		job.finish(e, err)
	}()
	return job, nil
}

// lookup returns the job by ID.
func (m *jobManager) lookup(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// drain stops accepting submissions and waits for in-flight jobs.
// When ctx expires first, every remaining job is canceled and drain
// waits for them to unwind.
func (m *jobManager) drain(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		m.stop()
		<-finished
		return ctx.Err()
	}
}
