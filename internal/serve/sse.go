package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"netpart"
)

// sseHeartbeat is the idle-comment interval keeping proxies from
// reaping quiet streams (a heavy flight can be minutes between
// progress units only when the worker pool is saturated; the comment
// is cheap insurance either way).
const sseHeartbeat = 15 * time.Second

// sseWriter frames Server-Sent Events onto a flushed response.
type sseWriter struct {
	w http.ResponseWriter
	c *http.ResponseController
}

func newSSEWriter(w http.ResponseWriter) *sseWriter {
	return &sseWriter{w: w, c: http.NewResponseController(w)}
}

// event writes one "event:/data:" frame (data JSON-encoded on a
// single line, per the SSE wire format) and flushes it.
func (s *sseWriter) event(name string, data any) error {
	body, err := json.Marshal(data)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, body); err != nil {
		return err
	}
	return s.c.Flush()
}

// comment writes a heartbeat comment frame.
func (s *sseWriter) comment() error {
	if _, err := fmt.Fprint(s.w, ": ping\n\n"); err != nil {
		return err
	}
	return s.c.Flush()
}

// handleEvents streams a job's life as Server-Sent Events:
//
//	event: status    one initial job snapshot on connect
//	event: progress  every progress report (lossy under backpressure:
//	                 intermediate reports may be dropped, the stream
//	                 stays monotone)
//	event: point     every completed sweep or trace-grid point (sweep
//	                 and trace-grid jobs only; lossy under
//	                 backpressure — the final result always carries
//	                 every point)
//	event: job       every job start/finish of a trace simulation, in
//	                 simulation-time order (trace jobs only; lossy
//	                 under backpressure — the final result carries
//	                 every job)
//	event: done      terminal snapshot (status done/failed/canceled),
//	                 then the stream closes
//
// Progress data carries the per-run token (netpart.Progress.Run), so
// a consumer multiplexing several streams of the same experiment can
// still tell the underlying runs apart. Disconnecting only detaches
// the stream; it does not cancel the job (DELETE does).
func (s *Server) handleEvents(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.jobs.lookup(r.PathValue("id"))
		if !ok || job.Kind != kind {
			writeError(w, http.StatusNotFound, "no %s %q", kind, r.PathValue("id"))
			return
		}
		s.streamJob(w, r, job)
	}
}

// streamJob writes a job's event stream until the job ends or the
// client disconnects.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, job *Job) {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // tell proxies not to buffer
	w.WriteHeader(http.StatusOK)

	out := newSSEWriter(w)
	sub, unsubscribe := job.subscribe()
	defer unsubscribe()

	// Snapshot after subscribing, so nothing can land between the
	// snapshot and the stream.
	if err := out.event("status", jobDocFor(job)); err != nil {
		return
	}
	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case ev := <-sub:
			if err := out.event(ev.name, eventDoc(ev)); err != nil {
				return
			}
		case <-job.Done():
			// Drain events that raced the terminal status, then close.
			for {
				select {
				case ev := <-sub:
					if out.event(ev.name, eventDoc(ev)) != nil {
						return
					}
					continue
				default:
				}
				break
			}
			out.event("done", jobDocFor(job)) //nolint:errcheck // closing anyway
			return
		case <-heartbeat.C:
			if err := out.comment(); err != nil {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// eventDoc converts a stream event's payload to its wire document.
func eventDoc(ev streamEvent) any {
	if p, ok := ev.data.(netpart.Progress); ok {
		return progressFor(p)
	}
	return ev.data
}
