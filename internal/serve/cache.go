package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"

	"netpart"
	"netpart/internal/obs"
	"netpart/internal/store"
)

// Key identifies one cacheable result: an experiment ID plus the
// options that can change its bytes. Keys are built from normalized
// options (Experiment.Normalize), so the worker count and irrelevant
// FullRounds flags never fragment the cache: two requests with the
// same Key are guaranteed byte-identical encodings.
//
// Dynamic experiments (user-defined scenarios and sweeps) use the
// same key space: their IDs are content hashes of the normalized
// definition ("scenario:<hash>", "sweep:<hash>"), so the ID alone is
// the result identity and FullRounds stays false. Registry keys are
// bounded by construction and never evicted; dynamic keys are
// unbounded under sustained traffic, so the cache retains at most
// maxDynamicEntries of them (oldest-insertion eviction).
type Key struct {
	ID         string
	FullRounds bool
}

// dynamic reports whether the key belongs to a user-defined
// experiment. Dynamic IDs always contain a ':', registry IDs never
// do.
func (k Key) dynamic() bool { return strings.ContainsRune(k.ID, ':') }

func keyFor(exp netpart.Experiment, opts netpart.RunOptions) Key {
	n := exp.Normalize(opts)
	return Key{ID: exp.ID, FullRounds: n.FullRounds}
}

// String renders the key in the canonical query form the API
// documents ("figure3?full_rounds=true"); dynamic keys are their ID.
func (k Key) String() string {
	if k.dynamic() {
		return k.ID
	}
	return fmt.Sprintf("%s?full_rounds=%t", k.ID, k.FullRounds)
}

// encoding is one negotiated representation of a finished result:
// its body bytes and the strong ETag over them. Because the
// underlying encoders are byte-deterministic, the ETag is a true
// content identity — equal tags mean equal bytes.
type encoding struct {
	contentType string
	body        []byte
	etag        string
}

func etagFor(body []byte) string {
	sum := sha256.Sum256(body)
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

// entry is a finished, cached result plus its lazily rendered
// encodings (one per negotiated content type, plus the internal
// typed-data encoding peers exchange). Entries restored from the
// persistent store carry no Result — only the byte-exact encodings
// persisted when the result was first computed — so res may be nil.
type entry struct {
	res *netpart.Result // nil for store-restored entries

	mu   sync.Mutex
	encs map[string]*encoding
}

// encoding renders (once) and returns the representation for the
// given content type. Store-restored entries can only serve the
// encodings that were persisted; they have no Result to render from.
func (e *entry) encoding(ct string) (*encoding, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if enc, ok := e.encs[ct]; ok {
		return enc, nil
	}
	if e.res == nil {
		return nil, fmt.Errorf("serve: encoding %q not persisted", ct)
	}
	var body []byte
	var err error
	switch ct {
	case ctJSON:
		body, err = e.res.JSON()
	case ctCSV:
		body, err = e.res.CSV()
	case ctMarkdown:
		body = e.res.Markdown()
	case ctData:
		if e.res.Data == nil {
			return nil, fmt.Errorf("serve: result has no typed data")
		}
		body, err = json.Marshal(e.res.Data)
	default:
		err = fmt.Errorf("serve: no encoder for %q", ct)
	}
	if err != nil {
		return nil, err
	}
	enc := &encoding{contentType: ct, body: body, etag: etagFor(body)}
	e.encs[ct] = enc
	return enc, nil
}

// restoredEntry rebuilds an entry from a persisted blob: every
// encoding lands pre-rendered with the bytes and tag written at
// compute time, so replays are byte-identical across restarts.
func restoredEntry(blob *store.Blob) *entry {
	e := &entry{encs: make(map[string]*encoding, len(blob.Encodings))}
	for _, enc := range blob.Encodings {
		e.encs[enc.ContentType] = &encoding{contentType: enc.ContentType, body: enc.Body, etag: enc.ETag}
	}
	return e
}

// streamEvent is one event published to a flight's waiters: progress
// reports for every experiment, plus per-point completions for
// sweeps. The name is the SSE event name; data is its JSON payload.
type streamEvent struct {
	name string
	data any
}

// progressEvent wraps a progress report for publication.
func progressEvent(p netpart.Progress) streamEvent {
	return streamEvent{name: "progress", data: p}
}

// runFunc executes one experiment for the cache: it is called at most
// once per flight, on a context detached from any single request, and
// publishes events for every waiter coalesced onto the flight. For
// dynamic keys, payload carries the parsed definition (the normalized
// scenario spec or sweep task) supplied by the flight's first
// requester; coalesced joiners' payloads are ignored, which is sound
// because the key is a content hash of the definition.
type runFunc func(ctx context.Context, key Key, opts netpart.RunOptions, payload any, publish func(streamEvent)) (*netpart.Result, error)

// flight is one in-progress computation that concurrent identical
// requests coalesce onto. Waiters attach and detach; when the last
// waiter walks away before the run finishes, the flight's context is
// canceled so the work stops promptly. Errors (including
// cancellation) are never cached — the next request starts fresh.
type flight struct {
	key     Key
	payload any           // dynamic-run definition from the first requester
	done    chan struct{} // closed when entry/err are set
	cancel  context.CancelFunc

	// guarded by cache.mu until done is closed, immutable after
	waiters int

	entry *entry
	err   error

	subMu sync.Mutex
	subs  map[int]func(streamEvent)
	nsub  int
}

// subscribe registers a per-waiter event sink and returns its
// unsubscribe function. Sinks must not block: they run on the
// runner's serialized progress path.
func (f *flight) subscribe(fn func(streamEvent)) func() {
	if fn == nil {
		return func() {}
	}
	f.subMu.Lock()
	id := f.nsub
	f.nsub++
	f.subs[id] = fn
	f.subMu.Unlock()
	return func() {
		f.subMu.Lock()
		delete(f.subs, id)
		f.subMu.Unlock()
	}
}

func (f *flight) publish(ev streamEvent) {
	f.subMu.Lock()
	sinks := make([]func(streamEvent), 0, len(f.subs))
	for _, fn := range f.subs {
		sinks = append(sinks, fn)
	}
	f.subMu.Unlock()
	for _, fn := range sinks {
		fn(ev)
	}
}

// maxDynamicEntries bounds the cached results of dynamic (scenario /
// sweep) keys; registry keys are never evicted.
const maxDynamicEntries = 256

// cache is the coalescing result cache: completed results by Key,
// plus the in-flight runs identical requests join instead of
// recomputing, in front of an optional persistent store tier.
// Completed registry entries live forever (that key space is
// bounded); dynamic entries are evicted oldest-first past
// maxDynamicEntries; failed flights evaporate.
//
// The store is wired read-through/write-behind for dynamic keys: a
// memory miss consults the store before starting a flight (a hit
// restores the persisted encodings, byte-identical with the original
// tags, with zero recomputation), and a flight's freshly computed
// result is persisted asynchronously after its waiters are released.
// Registry keys never touch the store — their results depend on the
// code version, not on a content-hashed definition.
type cache struct {
	run     runFunc
	timeout time.Duration // per-flight run deadline, 0 = none
	store   store.Store   // persistent tier, nil = memory only
	m       *serverMetrics
	log     *slog.Logger

	persists sync.WaitGroup // outstanding write-behind persists

	mu       sync.Mutex
	entries  map[Key]*entry
	flights  map[Key]*flight
	dynOrder []Key // dynamic keys in insertion order, for eviction
}

// cacheStats is a point-in-time snapshot of the cache counters for
// the healthz document.
type cacheStats struct {
	Entries   int   `json:"entries"`
	Dynamic   int   `json:"dynamic_entries"`
	Flights   int   `json:"flights"`
	Hits      int64 `json:"hits"`
	StoreHits int64 `json:"store_hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
}

func newCache(run runFunc, timeout time.Duration, st store.Store, m *serverMetrics, log *slog.Logger) *cache {
	c := &cache{
		run:     run,
		timeout: timeout,
		store:   st,
		m:       m,
		log:     log,
		entries: map[Key]*entry{},
		flights: map[Key]*flight{},
	}
	// Size gauges sample the maps under the cache lock at scrape time;
	// the event counters live on serverMetrics and update atomically.
	m.reg.GaugeFunc("netpart_cache_entries", "Completed results held in memory.",
		func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(len(c.entries)) })
	m.reg.GaugeFunc("netpart_cache_dynamic_entries", "Dynamic (evictable) results held in memory.",
		func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(len(c.dynOrder)) })
	m.reg.GaugeFunc("netpart_cache_flights", "Computations currently in flight.",
		func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(len(c.flights)) })
	return c
}

// stats snapshots the cache counters for the healthz document, read
// back from the same metrics /metrics exposes.
func (c *cache) stats() cacheStats {
	c.mu.Lock()
	entries, dynamic, flights := len(c.entries), len(c.dynOrder), len(c.flights)
	c.mu.Unlock()
	return cacheStats{
		Entries:   entries,
		Dynamic:   dynamic,
		Flights:   flights,
		Hits:      c.m.cacheHits.Value(),
		StoreHits: c.m.cacheStoreHits.Value(),
		Misses:    c.m.cacheMisses.Value(),
		Coalesced: c.m.cacheCoalesced.Value(),
		Evictions: c.m.cacheEvictions.Value(),
	}
}

// cached returns the completed entry for key without triggering work.
func (c *cache) cached(key Key) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return e, ok
}

// insertEntryLocked registers a completed entry, applying the dynamic
// bound. Callers hold c.mu.
func (c *cache) insertEntryLocked(key Key, e *entry) {
	if _, present := c.entries[key]; !present && key.dynamic() {
		c.dynOrder = append(c.dynOrder, key)
		for len(c.dynOrder) > maxDynamicEntries {
			delete(c.entries, c.dynOrder[0])
			c.dynOrder = c.dynOrder[1:]
			c.m.cacheEvictions.Inc()
		}
	}
	c.entries[key] = e
}

// restore consults the persistent tier for a dynamic key and, on a
// hit, promotes the blob into a memory entry. Disk IO runs outside
// the cache lock; a racing flight or restore for the same key is
// resolved by whoever inserts first (identical bytes either way).
func (c *cache) restore(key Key) (*entry, bool) {
	if c.store == nil || !key.dynamic() {
		return nil, false
	}
	blob, ok := c.store.Get(key.ID)
	if !ok {
		return nil, false
	}
	e := restoredEntry(blob)
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, present := c.entries[key]; present {
		return cur, true // racer won with equivalent bytes
	}
	c.insertEntryLocked(key, e)
	c.m.cacheStoreHits.Inc()
	return e, true
}

// replay returns the entry for key without computing: memory first,
// then the persistent tier. It is the archive read path.
func (c *cache) replay(key Key) (*entry, bool) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.m.cacheHits.Inc()
		c.mu.Unlock()
		return e, true
	}
	c.mu.Unlock()
	return c.restore(key)
}

// evict removes the completed entry for key from the memory tier and
// the persistent tier. In-flight computations are untouched (jobs
// coalesced onto them hold their own references).
func (c *cache) evict(key Key) {
	c.mu.Lock()
	if _, ok := c.entries[key]; ok {
		delete(c.entries, key)
		for i, k := range c.dynOrder {
			if k == key {
				c.dynOrder = append(c.dynOrder[:i], c.dynOrder[i+1:]...)
				break
			}
		}
	}
	c.mu.Unlock()
	if c.store != nil && key.dynamic() {
		c.store.Delete(key.ID) //nolint:errcheck // eviction is best-effort
	}
}

// do returns the entry for key, starting a run or joining the
// in-flight one. onEvent (optional) receives the flight's events
// while this caller waits; payload carries the parsed definition for
// dynamic keys (ignored when joining an existing flight). When ctx is
// canceled the caller abandons the flight; the run itself is canceled
// only when its last waiter has abandoned it, so one impatient client
// cannot kill a result others still want.
func (c *cache) do(ctx context.Context, key Key, opts netpart.RunOptions, payload any, onEvent func(streamEvent)) (*entry, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.m.cacheHits.Inc()
		c.mu.Unlock()
		return e, nil
	}
	f, ok := c.flights[key]
	if !ok && c.store != nil && key.dynamic() {
		// Memory miss with no flight: read through to the persistent
		// tier before computing. The lock drops around the disk read;
		// afterwards re-check for entries and flights that appeared
		// meanwhile.
		c.mu.Unlock()
		if e, ok := c.restore(key); ok {
			return e, nil
		}
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.m.cacheHits.Inc()
			c.mu.Unlock()
			return e, nil
		}
		f, ok = c.flights[key]
	}
	if !ok {
		// The flight context is detached from any single request (late
		// joiners must not inherit the leader's deadline) but carries
		// the leader's request ID, so the work a request triggered —
		// including peer dispatches — stays traceable to it.
		fctx := obs.WithRequestID(context.Background(), obs.RequestIDFrom(ctx))
		var cancel context.CancelFunc
		if c.timeout > 0 {
			fctx, cancel = context.WithTimeout(fctx, c.timeout)
		} else {
			fctx, cancel = context.WithCancel(fctx)
		}
		f = &flight{
			key:     key,
			payload: payload,
			done:    make(chan struct{}),
			cancel:  cancel,
			subs:    map[int]func(streamEvent){},
		}
		c.flights[key] = f
		c.m.cacheMisses.Inc()
		go c.runFlight(f, fctx, opts)
	} else {
		c.m.cacheCoalesced.Inc()
	}
	f.waiters++
	c.mu.Unlock()

	unsubscribe := f.subscribe(onEvent)
	defer unsubscribe()

	select {
	case <-f.done:
		c.mu.Lock()
		f.waiters--
		c.mu.Unlock()
		if f.err != nil {
			return nil, f.err
		}
		return f.entry, nil
	case <-ctx.Done():
		c.abandon(f)
		return nil, ctx.Err()
	}
}

// abandon unregisters a waiter whose context died. The last waiter
// out removes the flight from the index (so new requests start fresh
// rather than joining a doomed run) and cancels the underlying work.
func (c *cache) abandon(f *flight) {
	c.mu.Lock()
	f.waiters--
	last := f.waiters == 0
	if last && c.flights[f.key] == f {
		delete(c.flights, f.key)
	}
	c.mu.Unlock()
	if last {
		f.cancel()
	}
}

func (c *cache) runFlight(f *flight, ctx context.Context, opts netpart.RunOptions) {
	res, err := c.run(ctx, f.key, opts, f.payload, f.publish)
	c.mu.Lock()
	if err == nil {
		f.entry = &entry{res: res, encs: map[string]*encoding{}}
		c.insertEntryLocked(f.key, f.entry)
	}
	f.err = err
	if c.flights[f.key] == f {
		delete(c.flights, f.key)
	}
	c.mu.Unlock()
	close(f.done)
	f.cancel()
	if err == nil && c.store != nil && f.key.dynamic() {
		// Write-behind: persist after the waiters are released, off
		// their latency path. Shutdown waits for outstanding persists.
		c.persists.Add(1)
		go func() {
			defer c.persists.Done()
			c.persist(f.key, f.entry)
		}()
	}
}

// persistedEncodings is the set of content types written to the
// store: the three negotiable representations plus the internal
// typed-data encoding peer dispatch relies on.
var persistedEncodings = []string{ctJSON, ctCSV, ctMarkdown, ctData}

// persist renders every persisted encoding of a freshly computed
// entry and writes the blob. Persistence is best-effort: a failure
// only costs a future recomputation.
func (c *cache) persist(key Key, e *entry) {
	blob := &store.Blob{
		ID: key.ID,
		Meta: store.Meta{
			Experiment: e.res.Experiment.ID,
			Title:      e.res.Experiment.Title,
			Kind:       string(e.res.Experiment.Kind),
			Cost:       string(e.res.Experiment.Cost),
			FullRounds: e.res.Meta.FullRounds,
		},
	}
	for _, ct := range persistedEncodings {
		enc, err := e.encoding(ct)
		if err != nil {
			continue // e.g. a result without typed data
		}
		blob.Encodings = append(blob.Encodings, store.Encoding{
			ContentType: enc.contentType, ETag: enc.etag, Body: enc.body,
		})
	}
	if len(blob.Encodings) == 0 || c.store.Put(blob) != nil {
		c.m.cachePersistErrs.Inc()
		c.log.Warn("write-behind persist failed", "key", key.String())
		return
	}
	c.m.cachePersists.Inc()
}
