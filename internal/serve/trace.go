package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"netpart"
	"netpart/internal/obs"
	"netpart/internal/sched/tracesim"
)

// --- traces (asynchronous jobs) ---

// maxTraceBody bounds the POST /v1/traces request body (inline traces
// carry whole job lists, so they get the sweep allowance).
const maxTraceBody = 4 << 20

// traceTask is the parsed definition a trace flight executes: either
// one trace spec or an expanded grid of them. Expanded points ride
// along so admission cost and the content-hash ID are computed once
// at submission.
type traceTask struct {
	spec   *netpart.TraceSpec
	grid   *netpart.TraceGrid
	points []tracesim.Point
}

// handleTraceSubmit accepts a trace simulation: the body is either a
// bare trace spec or a grid document (recognized by its "base" or
// "axes" keys) sweeping one over dot-path axes. The response is 202
// with the job document and Location. The definition is normalized
// (and grids expanded, hence fully validated) before the job is
// created; identical concurrent submissions coalesce onto one
// simulation while keeping distinct job identities.
func (s *Server) handleTraceSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxTraceBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad trace body: %v", err)
		return
	}
	var probe struct {
		Base json.RawMessage `json:"base"`
		Axes json.RawMessage `json:"axes"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		writeError(w, http.StatusBadRequest, "bad trace body: %v", err)
		return
	}

	var exp netpart.Experiment
	var task *traceTask
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if probe.Base != nil || probe.Axes != nil {
		var grid netpart.TraceGrid
		if err := dec.Decode(&grid); err != nil {
			writeError(w, http.StatusBadRequest, "bad trace grid body: %v", err)
			return
		}
		points, err := grid.Expand()
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		exp = netpart.Experiment{
			ID:    tracesim.GridID(grid.Name, points),
			Title: grid.Title(),
			Kind:  netpart.KindTable,
			Cost:  netpart.Cost(tracesim.GridCost(points)),
		}
		task = &traceTask{grid: &grid, points: points}
	} else {
		var spec netpart.TraceSpec
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, "bad trace body: %v", err)
			return
		}
		norm, err := spec.Normalize()
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		exp = netpart.Experiment{
			ID:    norm.ID(),
			Title: norm.Title(),
			Kind:  netpart.KindTable,
			Cost:  netpart.Cost(norm.Cost()),
		}
		task = &traceTask{spec: &norm}
	}
	job, err := s.jobs.submit(JobTrace, exp, Key{ID: exp.ID}, netpart.RunOptions{}, task, obs.RequestIDFrom(r.Context()))
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	w.Header().Set("Location", job.path())
	writeJSON(w, http.StatusAccepted, jobDocFor(job))
}

// handleTrace serves a trace job: the status document (including the
// latest progress) while running, the negotiated result once done.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.lookup(r.PathValue("id"))
	if !ok || job.Kind != JobTrace {
		writeError(w, http.StatusNotFound, "no trace %q", r.PathValue("id"))
		return
	}
	if e := job.Entry(); e != nil {
		w.Header().Set("X-Netpart-Run", job.ID)
		writeEntry(w, r, e)
		return
	}
	writeJSON(w, http.StatusOK, jobDocFor(job))
}

// handleTraceCancel cancels a trace job (idempotent); the underlying
// simulation stops once no other job still wants its result. A DELETE
// of a finished trace also evicts its completed result from the cache
// and the persistent store, so re-submitting the spec recomputes.
func (s *Server) handleTraceCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.lookup(r.PathValue("id"))
	if !ok || job.Kind != JobTrace {
		writeError(w, http.StatusNotFound, "no trace %q", r.PathValue("id"))
		return
	}
	job.Cancel()
	s.cache.evict(job.Key)
	writeJSON(w, http.StatusAccepted, jobDocFor(job))
}

// runTrace executes one trace flight: admission for the derived cost
// class, then RunTrace (single spec, streaming per-event "job"
// frames) or RunTraceGrid (grid, streaming per-point frames) on a
// fresh Runner.
func (s *Server) runTrace(ctx context.Context, key Key, opts netpart.RunOptions, payload any, publish func(streamEvent)) (*netpart.Result, error) {
	task, ok := payload.(*traceTask)
	if !ok {
		return nil, errors.New("serve: trace flight without a definition payload")
	}
	cost := tracesim.GridCost(task.points)
	if task.spec != nil {
		cost = task.spec.Cost()
	}
	release, err := s.acquire(ctx, netpart.Cost(cost))
	if err != nil {
		return nil, err
	}
	defer release()
	workers := opts.Workers
	if workers <= 0 {
		workers = s.opts.Workers
	}
	progress := func(p netpart.Progress) { publish(progressEvent(p)) }
	ropts := []netpart.Option{netpart.WithWorkers(workers), netpart.WithProgress(progress)}
	if s.peers != nil {
		// Coordinator mode: grid points fan out to the fleet with local
		// fallback (see runSweep). Single-spec traces always run locally
		// — they stream per-event frames a remote executor cannot relay.
		ropts = append(ropts, netpart.WithTraceRunner(func(ctx context.Context, spec netpart.TraceSpec) (*netpart.TraceOutcome, error) {
			if out, err := s.peers.dispatchTrace(ctx, spec); err == nil {
				return out, nil
			} else if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return tracesim.Run(ctx, spec, tracesim.Options{})
		}))
	}
	runner := netpart.NewRunner(ropts...)
	if task.spec != nil {
		onEvent := func(ev netpart.TraceEvent) {
			publish(streamEvent{name: traceEventName(ev.Kind), data: ev})
		}
		return runner.RunTrace(ctx, *task.spec, onEvent)
	}
	onPoint := func(p netpart.TracePoint) { publish(streamEvent{name: "point", data: p}) }
	return runner.RunTraceGrid(ctx, *task.grid, onPoint)
}

// traceEventName maps a simulator event kind to its SSE event name:
// failure-model occurrences (outage, heal, kill) stream under their
// own "failure" name so dashboards can subscribe to them without
// parsing every job lifecycle frame.
func traceEventName(kind string) string {
	switch kind {
	case "outage", "heal", "kill":
		return "failure"
	}
	return "job"
}
