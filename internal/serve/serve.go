// Package serve is the HTTP serving subsystem over the netpart
// Registry/Runner API: a REST surface for the experiment registry, an
// asynchronous job manager with per-cost-class admission control, a
// coalescing result cache, and Server-Sent-Events progress streams.
//
// The contention-management design mirrors the paper's theme — the
// avoidable contention is the scheduler's to avoid:
//
//   - Admission is per cost class: each class (cheap / moderate /
//     heavy) has its own concurrency bound, so registry lookups and
//     closed-form tables never queue behind a multi-second flow-level
//     pairing simulation.
//   - Identical concurrent requests coalesce: the cache keys on
//     (experiment ID, normalized options) — normalization strips
//     options that cannot change result bytes — and singleflights
//     concurrent misses onto one Runner.Run.
//   - Client disconnects propagate: a synchronous request that goes
//     away detaches from its flight, and the run itself is canceled
//     as soon as its last waiter is gone.
//
// Endpoints (all under /v1, JSON unless negotiated otherwise):
//
//	GET    /v1/healthz                     readiness + version/build info
//	GET    /v1/experiments                 registry, ?kind= and ?cost= filters
//	GET    /v1/experiments/{id}/result     run synchronously (cache + coalesce)
//	POST   /v1/runs                        submit an asynchronous run
//	GET    /v1/runs/{id}                   status; when done, the result
//	DELETE /v1/runs/{id}                   cancel a run
//	GET    /v1/runs/{id}/events            SSE progress stream
//	POST   /v1/scenarios                   run a user-defined scenario synchronously
//	POST   /v1/sweeps                      submit a parameter-grid sweep
//	GET    /v1/sweeps/{id}                 status; when done, the result
//	DELETE /v1/sweeps/{id}                 cancel a sweep
//	GET    /v1/sweeps/{id}/events          SSE progress + per-point stream
//	POST   /v1/traces                      submit a trace-driven scheduling simulation (spec or grid)
//	GET    /v1/traces/{id}                 status; when done, the result
//	DELETE /v1/traces/{id}                 cancel a trace simulation
//	GET    /v1/traces/{id}/events          SSE progress + per-event (job start/finish) stream
//
// Scenarios, sweeps and traces are the dynamic side of the API: the
// request body declares a (topology × workload × policy) experiment,
// a parameter grid of them (see internal/scenario and
// internal/scenario/sweep), or a trace-driven multi-job scheduling
// simulation (see internal/sched/tracesim), and the same coalescing
// cache and per-cost-class admission apply — the scenario's cost
// class derives from its size, a sweep's from its point count, a
// trace's from its job count, so a hundred-point sweep never starves
// cheap registry artifacts.
//
// Result endpoints negotiate application/json (default), text/csv and
// text/markdown via Accept or ?format=, and carry strong ETags: the
// encoders are byte-deterministic, so the tag is a true content
// identity and If-None-Match revalidation is free.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"netpart"
	"netpart/internal/obs"
	"netpart/internal/store"
)

// Negotiated content types. ctData is internal — the typed Data
// payload of a dynamic result as JSON, exchanged between peers and
// persisted to the store, never negotiable by clients.
const (
	ctJSON     = "application/json"
	ctCSV      = "text/csv"
	ctMarkdown = "text/markdown"
	ctData     = "application/x-netpart-data+json"
)

// Options configures a Server. The zero value serves with defaults.
type Options struct {
	// Workers is the worker-pool bound used for runs that do not
	// request one. Zero means the runnable-CPU count.
	Workers int

	// RunTimeout caps one underlying experiment run (a flight, not a
	// request: late joiners inherit the leader's deadline). Zero
	// means DefaultRunTimeout; negative means none.
	RunTimeout time.Duration

	// Admission bounds concurrently executing runs per cost class.
	// Classes absent from the map get DefaultAdmission's bound.
	// Separate per-class bounds are the no-starvation guarantee:
	// cheap runs never wait on heavy slots.
	Admission map[netpart.Cost]int

	// Store, when non-nil, is the persistent result tier under the
	// coalescing cache: dynamic results (scenarios, sweeps, traces —
	// content-hash identified) are persisted write-behind, warm-start
	// reads restore them byte-identically, and the /v1/archive
	// endpoints list and replay them.
	Store store.Store

	// Peers, when non-empty, puts the server in coordinator mode:
	// sweep and trace-grid points are sharded across these base URLs
	// ("http://host:port") by point content hash, dispatched over the
	// peer API, and recomputed locally when a peer fails or times
	// out. Output bytes are identical to single-process execution.
	Peers []string

	// PeerTimeout caps one peer point dispatch. Zero means
	// DefaultPeerTimeout; negative means none.
	PeerTimeout time.Duration

	// ClusterSessions bounds concurrently open cluster sessions
	// (their own admission axis — sessions are long-lived stateful
	// resources, not flights). Zero means DefaultClusterSessions.
	ClusterSessions int

	// ClusterIdleTimeout is how long an untouched cluster session
	// lives before the reaper aborts it. Zero means
	// DefaultClusterIdleTimeout; negative disables reaping.
	ClusterIdleTimeout time.Duration

	// PeerProbeInterval is how long a peer marked unhealthy stays
	// unprobed before a request is risked on it again. Zero means
	// DefaultPeerProbeInterval.
	PeerProbeInterval time.Duration

	// Metrics, when non-nil, is the registry the server registers its
	// metrics in (shared with /metrics exposition outside this
	// package). Nil means a fresh private registry.
	Metrics *obs.Registry

	// Logger, when non-nil, receives the server's structured logs
	// (access lines, peer health transitions, persist failures). Nil
	// means slog.Default().
	Logger *slog.Logger
}

// DefaultRunTimeout caps a single experiment run unless overridden.
const DefaultRunTimeout = 10 * time.Minute

// DefaultAdmission is the per-cost-class concurrency default: one
// flow-level simulation at a time, a few moderate geometry sweeps,
// and effectively unconstrained cheap closed forms.
var DefaultAdmission = map[netpart.Cost]int{
	netpart.CostCheap:    16,
	netpart.CostModerate: 4,
	netpart.CostHeavy:    1,
	costCluster:          4,
}

// Server is the HTTP serving subsystem. Construct with New, mount
// via Handler, and stop with Shutdown.
type Server struct {
	opts     Options
	sems     map[netpart.Cost]chan struct{}
	cache    *cache
	jobs     *jobManager
	clusters *clusterManager
	peers    *peerPool // nil outside coordinator mode
	mux      *http.ServeMux
	metrics  *serverMetrics
	log      *slog.Logger

	// Admission instruments, resolved per class at construction so
	// acquire never takes the registry lock.
	admWait map[netpart.Cost]*obs.Histogram
	admHeld map[netpart.Cost]*obs.Gauge
}

// New returns a Server over the built-in experiment registry.
func New(opts Options) *Server {
	return newServer(opts, nil)
}

// newServer is New plus a run-function override, the seam the tests
// use to substitute controllable runs for real experiments. A nil
// override serves the real registry.
func newServer(opts Options, run runFunc) *Server {
	if opts.RunTimeout == 0 {
		opts.RunTimeout = DefaultRunTimeout
	}
	s := &Server{
		opts:    opts,
		sems:    map[netpart.Cost]chan struct{}{},
		metrics: newServerMetrics(opts.Metrics),
		log:     opts.Logger,
		admWait: map[netpart.Cost]*obs.Histogram{},
		admHeld: map[netpart.Cost]*obs.Gauge{},
	}
	if s.log == nil {
		s.log = slog.Default()
	}
	for _, cost := range []netpart.Cost{netpart.CostCheap, netpart.CostModerate, netpart.CostHeavy, costCluster} {
		n, ok := opts.Admission[cost]
		if !ok {
			n = DefaultAdmission[cost]
		}
		if n < 1 {
			n = 1
		}
		s.sems[cost] = make(chan struct{}, n)
		s.admWait[cost] = s.metrics.admissionWait.With(string(cost))
		s.admHeld[cost] = s.metrics.admissionHeld.With(string(cost))
	}
	if run == nil {
		run = s.runTask
	}
	timeout := opts.RunTimeout
	if timeout < 0 {
		timeout = 0
	}
	s.cache = newCache(run, timeout, opts.Store, s.metrics, s.log)
	s.jobs = newJobManager(s.cache)
	s.clusters = newClusterManager(opts.ClusterSessions, opts.ClusterIdleTimeout, s.metrics)
	if len(opts.Peers) > 0 {
		s.peers = newPeerPool(opts.Peers, opts.PeerTimeout, opts.PeerProbeInterval, s.metrics, s.log)
	}
	if opts.Store != nil {
		s.metrics.registerStoreMetrics(opts.Store)
	}

	s.mux = http.NewServeMux()
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("GET /v1/healthz", s.handleHealthz)
	s.handle("GET /v1/experiments", s.handleExperiments)
	s.handle("GET /v1/experiments/{id}/result", s.handleSyncResult)
	s.handle("POST /v1/runs", s.handleSubmit)
	s.handle("GET /v1/runs/{id}", s.handleRun)
	s.handle("DELETE /v1/runs/{id}", s.handleCancel)
	s.handle("GET /v1/runs/{id}/events", s.handleEvents(JobRun))
	s.handle("POST /v1/scenarios", s.handleScenario)
	s.handle("POST /v1/sweeps", s.handleSweepSubmit)
	s.handle("GET /v1/sweeps/{id}", s.handleSweep)
	s.handle("DELETE /v1/sweeps/{id}", s.handleSweepCancel)
	s.handle("GET /v1/sweeps/{id}/events", s.handleEvents(JobSweep))
	s.handle("POST /v1/traces", s.handleTraceSubmit)
	s.handle("GET /v1/traces/{id}", s.handleTrace)
	s.handle("DELETE /v1/traces/{id}", s.handleTraceCancel)
	s.handle("GET /v1/traces/{id}/events", s.handleEvents(JobTrace))
	s.handle("POST /v1/cluster", s.handleClusterOpen)
	s.handle("GET /v1/cluster/{id}", s.handleClusterGet)
	s.handle("DELETE /v1/cluster/{id}", s.handleClusterClose)
	s.handle("POST /v1/cluster/{id}/jobs", s.handleClusterJobs)
	s.handle("GET /v1/cluster/{id}/events", s.handleClusterEvents)
	s.handle("GET /v1/archive", s.handleArchiveList)
	s.handle("GET /v1/archive/{hash}", s.handleArchiveReplay)
	s.handle("POST /v1/peer/scenarios", s.handlePeerScenario)
	s.handle("POST /v1/peer/traces", s.handlePeerTrace)
	return s
}

// Metrics returns the server's metrics registry (the one /metrics
// exposes), for callers that want to register process-level metrics
// alongside the server's.
func (s *Server) Metrics() *obs.Registry { return s.metrics.reg }

// Handler returns the HTTP handler serving the /v1 API.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the job manager and the cluster sessions: no new
// submissions are accepted (503), in-flight runs get until ctx
// expires to finish, open cluster sessions drain their remaining
// schedules to completion, and stragglers are canceled. Outstanding
// write-behind persists are waited for (local disk writes, not
// bounded by ctx) so a graceful restart warm-starts with every
// completed result. Callers should stop the http.Server first so no
// new requests race the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.jobs.drain(ctx)
	cerr := s.clusters.drain(ctx)
	s.cache.persists.Wait()
	if err != nil {
		return err
	}
	return cerr
}

// acquire takes an admission slot for the given cost class, honoring
// cancellation while queued. The time spent queued — the admission
// semaphore's contention — lands in the per-class wait histogram, and
// held slots are gauged, so saturation is visible before it becomes
// latency.
func (s *Server) acquire(ctx context.Context, cost netpart.Cost) (release func(), err error) {
	sem := s.sems[cost]
	wait, held := s.admWait[cost], s.admHeld[cost]
	if sem == nil { // unknown class: fall back to the heaviest bound
		sem = s.sems[netpart.CostHeavy]
		wait, held = s.admWait[netpart.CostHeavy], s.admHeld[netpart.CostHeavy]
	}
	start := time.Now()
	select {
	case sem <- struct{}{}:
		wait.Observe(time.Since(start).Seconds())
		held.Add(1)
		return func() { held.Add(-1); <-sem }, nil
	case <-ctx.Done():
		wait.Observe(time.Since(start).Seconds())
		return nil, ctx.Err()
	}
}

// runTask executes one flight, dispatching on the key's namespace:
// registry experiments, user-defined scenarios, sweeps and trace
// simulations all take an admission slot for their cost class first,
// then run on a fresh Runner with the flight's options.
func (s *Server) runTask(ctx context.Context, key Key, opts netpart.RunOptions, payload any, publish func(streamEvent)) (*netpart.Result, error) {
	switch {
	case strings.HasPrefix(key.ID, "scenario:"):
		return s.runScenario(ctx, key, opts, payload, publish)
	case strings.HasPrefix(key.ID, "sweep:"):
		return s.runSweep(ctx, key, opts, payload, publish)
	case strings.HasPrefix(key.ID, "trace:"), strings.HasPrefix(key.ID, "tracegrid:"):
		return s.runTrace(ctx, key, opts, payload, publish)
	default:
		return s.runExperiment(ctx, key, opts, publish)
	}
}

// runExperiment executes one registry flight: admission slot for the
// experiment's cost class, then a fresh Runner with the flight's
// options (FullRounds from the normalized key, workers from the
// leading request or the server default).
func (s *Server) runExperiment(ctx context.Context, key Key, opts netpart.RunOptions, publish func(streamEvent)) (*netpart.Result, error) {
	exp, ok := netpart.Lookup(key.ID)
	if !ok {
		return nil, fmt.Errorf("serve: no experiment %q", key.ID)
	}
	release, err := s.acquire(ctx, exp.Cost)
	if err != nil {
		return nil, err
	}
	defer release()
	// Workers from the leading request (or the server default);
	// FullRounds from the normalized key, so the cached Result's
	// metadata matches its cache identity.
	run := netpart.RunOptions{Workers: opts.Workers, FullRounds: key.FullRounds}
	if run.Workers <= 0 {
		run.Workers = s.opts.Workers
	}
	progress := func(p netpart.Progress) { publish(progressEvent(p)) }
	runner := netpart.NewRunner(append(run.Options(), netpart.WithProgress(progress))...)
	return runner.Run(ctx, key.ID)
}

// --- wire documents ---

// experimentDoc is one registry descriptor on the wire.
type experimentDoc struct {
	ID    string       `json:"id"`
	Title string       `json:"title"`
	Kind  netpart.Kind `json:"kind"`
	Cost  netpart.Cost `json:"cost"`
}

type experimentsDoc struct {
	Experiments []experimentDoc `json:"experiments"`
}

// progressDoc is one progress report on the wire (SSE data and job
// status documents).
type progressDoc struct {
	Experiment string `json:"experiment"`
	Run        string `json:"run"`
	Done       int    `json:"done"`
	Total      int    `json:"total"`
}

func progressFor(p netpart.Progress) *progressDoc {
	return &progressDoc{Experiment: p.Experiment, Run: p.Run, Done: p.Done, Total: p.Total}
}

// jobDoc is a job status document.
type jobDoc struct {
	ID         string             `json:"id"`
	Experiment string             `json:"experiment"`
	Status     Status             `json:"status"`
	Options    netpart.RunOptions `json:"options"`
	Key        string             `json:"key"`
	Progress   *progressDoc       `json:"progress,omitempty"`
	Error      string             `json:"error,omitempty"`
	Links      map[string]string  `json:"links"`
}

func jobDocFor(j *Job) jobDoc {
	status, p, reported, err := j.Snapshot()
	doc := jobDoc{
		ID:         j.ID,
		Experiment: j.Experiment.ID,
		Status:     status,
		Options:    j.Opts,
		Key:        j.Key.String(),
		Links: map[string]string{
			"self":   j.path(),
			"events": j.path() + "/events",
		},
	}
	if reported {
		doc.Progress = progressFor(p)
	}
	if err != nil {
		doc.Error = err.Error()
	}
	return doc
}

// --- helpers ---

func writeJSON(w http.ResponseWriter, code int, doc any) {
	w.Header().Set("Content-Type", ctJSON)
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// negotiate picks the response encoding: an explicit ?format= wins,
// then the first supported media type in the Accept header's listed
// order; absent both (or */*), JSON.
func negotiate(r *http.Request) (string, error) {
	switch f := r.URL.Query().Get("format"); f {
	case "json":
		return ctJSON, nil
	case "csv":
		return ctCSV, nil
	case "markdown", "md":
		return ctMarkdown, nil
	case "":
	default:
		return "", fmt.Errorf("unknown format %q (want json, csv or markdown)", f)
	}
	accept := r.Header.Get("Accept")
	if accept == "" {
		return ctJSON, nil
	}
	// RFC 9110 semantics on our three types: each supported type takes
	// the q of its most specific matching Accept member (exact beats
	// subtype wildcard beats */*; first listed wins within a tier), a
	// type whose governing q is 0 is forbidden, and among the
	// remainder the highest q wins — ties broken by listed order, then
	// server preference (JSON, then Markdown, then CSV).
	type cand struct {
		q    float64
		spec int // 2 exact, 1 subtype wildcard, 0 */*
		ord  int // index of the governing Accept member
	}
	cands := map[string]*cand{}
	consider := func(ct string, q float64, spec, ord int) {
		if c, ok := cands[ct]; !ok {
			cands[ct] = &cand{q, spec, ord}
		} else if spec > c.spec {
			*c = cand{q, spec, ord}
		}
	}
	for ord, part := range strings.Split(accept, ",") {
		fields := strings.Split(part, ";")
		q := 1.0
		for _, p := range fields[1:] {
			if k, v, ok := strings.Cut(strings.TrimSpace(p), "="); ok && strings.EqualFold(strings.TrimSpace(k), "q") {
				if f, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
					q = f
				}
			}
		}
		// Media types are case-insensitive; empty list members
		// (trailing commas) are ignored.
		switch strings.ToLower(strings.TrimSpace(fields[0])) {
		case ctJSON:
			consider(ctJSON, q, 2, ord)
		case ctCSV:
			consider(ctCSV, q, 2, ord)
		case ctMarkdown:
			consider(ctMarkdown, q, 2, ord)
		case "application/*":
			consider(ctJSON, q, 1, ord)
		case "text/*":
			consider(ctMarkdown, q, 1, ord)
			consider(ctCSV, q, 1, ord)
		case "*/*":
			consider(ctJSON, q, 0, ord)
			consider(ctMarkdown, q, 0, ord)
			consider(ctCSV, q, 0, ord)
		}
	}
	best := ""
	for _, ct := range []string{ctJSON, ctMarkdown, ctCSV} { // server preference order
		c, ok := cands[ct]
		if !ok || c.q <= 0 {
			continue
		}
		if b := cands[best]; best == "" || c.q > b.q || (c.q == b.q && c.ord < b.ord) {
			best = ct
		}
	}
	if best == "" {
		return "", fmt.Errorf("not acceptable: %q (supported: %s, %s, %s)", accept, ctJSON, ctCSV, ctMarkdown)
	}
	return best, nil
}

// parseRunOptions reads workers/full_rounds from query parameters.
func parseRunOptions(r *http.Request) (netpart.RunOptions, error) {
	var opts netpart.RunOptions
	q := r.URL.Query()
	if v := q.Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return opts, fmt.Errorf("bad workers %q", v)
		}
		opts.Workers = n
	}
	if v := q.Get("full_rounds"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return opts, fmt.Errorf("bad full_rounds %q", v)
		}
		opts.FullRounds = b
	}
	return opts, nil
}

// writeEntry writes a finished result in the negotiated encoding with
// its strong ETag, answering If-None-Match revalidations with 304.
func writeEntry(w http.ResponseWriter, r *http.Request, e *entry) {
	ct, err := negotiate(r)
	if err != nil {
		writeError(w, http.StatusNotAcceptable, "%v", err)
		return
	}
	enc, err := e.encoding(ct)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	h := w.Header()
	h.Set("ETag", enc.etag)
	h.Set("Cache-Control", "no-cache") // revalidate with If-None-Match
	if matchETag(r.Header.Get("If-None-Match"), enc.etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", enc.contentType+"; charset=utf-8")
	h.Set("Content-Length", strconv.Itoa(len(enc.body)))
	w.Write(enc.body) //nolint:errcheck
}

// matchETag reports whether an If-None-Match header matches the
// entity tag. Per RFC 9110 §13.1.2 the comparison is weak: a W/
// prefix (added by proxies that transform the body) is stripped
// before comparing, so revalidation keeps working behind them. Our
// stored tags are always strong.
func matchETag(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimPrefix(strings.TrimSpace(c), "W/")
		if c == "*" || c == etag {
			return true
		}
	}
	return false
}

// --- handlers ---

// handleExperiments serves the registry with optional kind/cost
// filters (each repeatable; values within one parameter OR together,
// parameters AND together).
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	kinds := map[netpart.Kind]bool{}
	for _, v := range q["kind"] {
		switch k := netpart.Kind(v); k {
		case netpart.KindTable, netpart.KindFigure:
			kinds[k] = true
		default:
			writeError(w, http.StatusBadRequest, "unknown kind %q (want table or figure)", v)
			return
		}
	}
	costs := map[netpart.Cost]bool{}
	for _, v := range q["cost"] {
		switch c := netpart.Cost(v); c {
		case netpart.CostCheap, netpart.CostModerate, netpart.CostHeavy:
			costs[c] = true
		default:
			writeError(w, http.StatusBadRequest, "unknown cost %q (want cheap, moderate or heavy)", v)
			return
		}
	}
	doc := experimentsDoc{Experiments: []experimentDoc{}}
	for _, exp := range netpart.Registry() {
		if len(kinds) > 0 && !kinds[exp.Kind] {
			continue
		}
		if len(costs) > 0 && !costs[exp.Cost] {
			continue
		}
		doc.Experiments = append(doc.Experiments, experimentDoc{
			ID: exp.ID, Title: exp.Title, Kind: exp.Kind, Cost: exp.Cost,
		})
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleSyncResult runs an experiment synchronously through the
// cache: hot keys answer immediately from memory, cold keys start (or
// join) a flight. The request context is the caller's leash — a
// disconnect abandons the flight, and the run dies with its last
// waiter.
func (s *Server) handleSyncResult(w http.ResponseWriter, r *http.Request) {
	exp, ok := netpart.Lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no experiment %q", r.PathValue("id"))
		return
	}
	opts, err := parseRunOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, err := s.cache.do(r.Context(), keyFor(exp, opts), opts, nil, nil)
	switch {
	case err == nil:
		writeEntry(w, r, e)
	case errors.Is(err, context.Canceled):
		// Client is gone; any status we write is unread.
		writeError(w, 499, "canceled")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "run exceeded the server's run timeout")
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// submitDoc is the POST /v1/runs request body.
type submitDoc struct {
	Experiment string `json:"experiment"`
	Workers    int    `json:"workers"`
	FullRounds bool   `json:"full_rounds"`
}

// maxSubmitBody bounds the POST /v1/runs request body; every other
// server resource is bounded (admission, run timeouts, lossy SSE
// buffers, job index), so the decoder must be too.
const maxSubmitBody = 1 << 20

// handleSubmit accepts an asynchronous run: 202 with the job document
// and a Location header. Identical concurrent submissions coalesce
// onto one underlying run but keep distinct job identities.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBody))
	dec.DisallowUnknownFields()
	var req submitDoc
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	exp, ok := netpart.Lookup(req.Experiment)
	if !ok {
		writeError(w, http.StatusNotFound, "no experiment %q (known IDs: %v)", req.Experiment, netpart.IDs())
		return
	}
	if req.Workers < 0 {
		writeError(w, http.StatusBadRequest, "bad workers %d", req.Workers)
		return
	}
	runOpts := netpart.RunOptions{Workers: req.Workers, FullRounds: req.FullRounds}
	job, err := s.jobs.submit(JobRun, exp, keyFor(exp, runOpts), runOpts, nil, obs.RequestIDFrom(r.Context()))
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/runs/"+job.ID)
	writeJSON(w, http.StatusAccepted, jobDocFor(job))
}

// handleRun serves a job: the status document while it is in flight
// (or failed/canceled), the negotiated result once done. Repeated
// fetches of a done job are byte-identical with matching strong
// ETags.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.lookup(r.PathValue("id"))
	if !ok || job.Kind != JobRun {
		writeError(w, http.StatusNotFound, "no run %q", r.PathValue("id"))
		return
	}
	if e := job.Entry(); e != nil {
		w.Header().Set("X-Netpart-Run", job.ID)
		writeEntry(w, r, e)
		return
	}
	writeJSON(w, http.StatusOK, jobDocFor(job))
}

// handleCancel cancels a job (idempotent). The underlying run stops
// once no other job or request still wants its result.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.lookup(r.PathValue("id"))
	if !ok || job.Kind != JobRun {
		writeError(w, http.StatusNotFound, "no run %q", r.PathValue("id"))
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusAccepted, jobDocFor(job))
}
