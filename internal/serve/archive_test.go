package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"netpart/internal/store"
)

// storeServer boots an httptest server over the real registry with an
// FS store in dir.
func storeServer(t *testing.T, dir string, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	fs, err := store.OpenFS(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = fs
	return realServer(t, opts)
}

// runSweepJob submits a sweep, waits for completion and for the
// write-behind persist, and returns the job document (job.Experiment
// is the "sweep:<hash>" archive ID) plus the JSON result bytes and
// ETag.
func runSweepJob(t *testing.T, s *Server, ts *httptest.Server, doc any) (job jobDoc, body []byte, etag string) {
	t.Helper()
	code, _, raw := post(t, ts.URL+"/v1/sweeps", doc)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, raw)
	}
	if err := json.Unmarshal(raw, &job); err != nil {
		t.Fatal(err)
	}
	if st := await(t, s, job.ID); st != StatusDone {
		t.Fatalf("status %s", st)
	}
	s.cache.persists.Wait()
	code, hdr, body := get(t, ts.URL+"/v1/sweeps/"+job.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, body)
	}
	return job, body, hdr.Get("ETag")
}

// TestArchiveWarmStart is the headline round trip: a sweep computed
// before a restart is served from GET /v1/archive/{hash} by the next
// process byte-identically, with the original ETag, and with zero
// runner invocations.
func TestArchiveWarmStart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := storeServer(t, dir, Options{})
	job, body, etag := runSweepJob(t, s1, ts1, tinySweep("warm-start"))
	id := job.Experiment
	if !strings.HasPrefix(id, "sweep:") {
		t.Fatalf("id %q", id)
	}
	ts1.Close()

	// "Restart": a fresh server over the same directory, with a gated
	// run function so any recomputation would be visible (and would
	// hang, since nothing releases the gate).
	fs, err := store.OpenFS(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := newGate()
	s2 := newServer(Options{Store: fs}, g.run)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	// The listing knows the sweep.
	code, _, raw := get(t, ts2.URL+"/v1/archive", nil)
	if code != http.StatusOK {
		t.Fatalf("list: %d %s", code, raw)
	}
	var listing archiveDoc
	if err := json.Unmarshal(raw, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Results) != 1 || listing.Results[0].ID != id {
		t.Fatalf("listing %+v, want [%s]", listing.Results, id)
	}
	if listing.Results[0].Meta.Title != "warm-start" {
		t.Errorf("meta %+v", listing.Results[0].Meta)
	}

	// The replay is byte-identical with the original strong ETag.
	code, hdr, got := get(t, ts2.URL+"/v1/archive/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("replay: %d %s", code, got)
	}
	if string(got) != string(body) {
		t.Error("replay bytes differ from the original computation")
	}
	if hdr.Get("ETag") != etag {
		t.Errorf("ETag %q, want %q", hdr.Get("ETag"), etag)
	}
	// Revalidation against the pre-restart tag works.
	if code, _, _ := get(t, ts2.URL+"/v1/archive/"+id, map[string]string{"If-None-Match": etag}); code != http.StatusNotModified {
		t.Errorf("revalidation status %d", code)
	}
	// Negotiation over restored encodings works (they were persisted).
	code, hdr, md := get(t, ts2.URL+"/v1/archive/"+id+"?format=markdown", nil)
	if code != http.StatusOK || !strings.HasPrefix(hdr.Get("Content-Type"), ctMarkdown) || !strings.Contains(string(md), "|") {
		t.Errorf("markdown replay: %d %q", code, hdr.Get("Content-Type"))
	}
	if got := g.calls.Load(); got != 0 {
		t.Fatalf("warm path invoked the runner %d times", got)
	}
	if st := s2.cache.stats(); st.StoreHits == 0 {
		t.Errorf("store hit not counted: %+v", st)
	}
}

// TestArchiveCrashSafety: a kill-and-restart over a damaged store
// directory. The intact blob still replays byte-identically; the
// truncated and header-corrupted ones silently vanish (404 on the
// archive, recomputed on resubmission with identical bytes).
func TestArchiveCrashSafety(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := storeServer(t, dir, Options{})
	keepJob, keepBody, _ := runSweepJob(t, s1, ts1, tinySweep("keeper"))
	truncJob, truncBody, truncTag := runSweepJob(t, s1, ts1, tinySweep("truncated"))
	corruptJob, corruptBody, corruptTag := runSweepJob(t, s1, ts1, tinySweep("corrupted"))
	keepID, truncID, corruptID := keepJob.Experiment, truncJob.Experiment, corruptJob.Experiment
	fs := s1.opts.Store.(*store.FS)
	ts1.Close()

	// Simulate a crash mid-write and bit rot: truncate one blob file
	// halfway, scribble over another's header.
	raw, err := os.ReadFile(fs.Path(truncID))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fs.Path(truncID), raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fs.Path(corruptID), []byte("not a blob at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := storeServer(t, dir, Options{})
	// The intact result survives byte-identically.
	code, _, got := get(t, ts2.URL+"/v1/archive/"+keepID, nil)
	if code != http.StatusOK || string(got) != string(keepBody) {
		t.Fatalf("intact blob: %d, identical=%v", code, string(got) == string(keepBody))
	}
	// The damaged ones are silent misses.
	for _, id := range []string{truncID, corruptID} {
		if code, _, _ := get(t, ts2.URL+"/v1/archive/"+id, nil); code != http.StatusNotFound {
			t.Errorf("damaged blob %s: status %d, want 404", id, code)
		}
	}
	if st := s2.opts.Store.Stats(); st.Corrupt != 2 {
		t.Errorf("corrupt count %d, want 2", st.Corrupt)
	}
	// Resubmitting the damaged definitions recomputes the same bytes
	// (and re-persists: the archive serves them again afterwards).
	_, reBody, reTag := runSweepJob(t, s2, ts2, tinySweep("truncated"))
	if string(reBody) != string(truncBody) || reTag != truncTag {
		t.Error("recomputed sweep differs from the pre-crash bytes")
	}
	_, reBody, reTag = runSweepJob(t, s2, ts2, tinySweep("corrupted"))
	if string(reBody) != string(corruptBody) || reTag != corruptTag {
		t.Error("recomputed sweep differs from the pre-crash bytes")
	}
	if code, _, _ := get(t, ts2.URL+"/v1/archive/"+truncID, nil); code != http.StatusOK {
		t.Errorf("recomputed blob not re-archived: %d", code)
	}
}

// TestArchivePagination: the listing pages with ?after=/?limit= in
// ascending ID order.
func TestArchivePagination(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.OpenFS(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range 5 {
		fs.Put(&store.Blob{ //nolint:errcheck
			ID:        fmt.Sprintf("scenario:%04d", i),
			Encodings: []store.Encoding{{ContentType: ctJSON, ETag: `"x"`, Body: []byte("{}")}},
		})
	}
	_, ts := realServer(t, Options{Store: fs})

	var ids []string
	after := ""
	for range 10 {
		code, _, raw := get(t, ts.URL+"/v1/archive?limit=2&after="+after, nil)
		if code != http.StatusOK {
			t.Fatalf("list: %d %s", code, raw)
		}
		var page archiveDoc
		if err := json.Unmarshal(raw, &page); err != nil {
			t.Fatal(err)
		}
		for _, info := range page.Results {
			ids = append(ids, info.ID)
		}
		if page.Next == "" {
			break
		}
		after = page.Next
	}
	if len(ids) != 5 {
		t.Fatalf("paged IDs %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("IDs not ascending: %v", ids)
		}
	}

	// Bad parameters and the no-store configuration answer crisply.
	if code, _, _ := get(t, ts.URL+"/v1/archive?limit=0", nil); code != http.StatusBadRequest {
		t.Errorf("limit=0 status %d", code)
	}
	_, bare := realServer(t, Options{})
	if code, _, _ := get(t, bare.URL+"/v1/archive", nil); code != http.StatusNotImplemented {
		t.Errorf("store-less listing status %d", code)
	}
	if code, _, _ := get(t, ts.URL+"/v1/archive/table1", nil); code != http.StatusNotFound {
		t.Errorf("registry-ID replay status %d", code)
	}
}

// TestDeleteEvictsPersistedBlob: DELETE /v1/sweeps/{id} (and
// /v1/traces/{id}) of a finished job evicts the persisted blob, so
// the archive forgets it and a restart cannot resurrect it.
func TestDeleteEvictsPersistedBlob(t *testing.T) {
	dir := t.TempDir()
	s, ts := storeServer(t, dir, Options{})
	sweepJob, _, _ := runSweepJob(t, s, ts, tinySweep("doomed"))

	// A trace job rides along to cover the other DELETE namespace.
	code, _, raw := post(t, ts.URL+"/v1/traces", tinyTrace("doomed-trace"))
	if code != http.StatusAccepted {
		t.Fatalf("trace submit: %d %s", code, raw)
	}
	var traceJob jobDoc
	if err := json.Unmarshal(raw, &traceJob); err != nil {
		t.Fatal(err)
	}
	if st := await(t, s, traceJob.ID); st != StatusDone {
		t.Fatalf("trace status %s", st)
	}
	s.cache.persists.Wait()

	for _, del := range []struct{ path, archiveID string }{
		{"/v1/sweeps/" + sweepJob.ID, sweepJob.Experiment},
		{"/v1/traces/" + traceJob.ID, traceJob.Experiment},
	} {
		if code, _, _ := get(t, ts.URL+"/v1/archive/"+del.archiveID, nil); code != http.StatusOK {
			t.Fatalf("%s not archived before delete: %d", del.archiveID, code)
		}
		req, _ := http.NewRequest("DELETE", ts.URL+del.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("delete %s: %d", del.path, resp.StatusCode)
		}
		if code, _, _ := get(t, ts.URL+"/v1/archive/"+del.archiveID, nil); code != http.StatusNotFound {
			t.Errorf("%s still archived after delete: %d", del.archiveID, code)
		}
		if _, ok := s.opts.Store.Get(del.archiveID); ok {
			t.Errorf("%s still in the store after delete", del.archiveID)
		}
	}
	if st := s.opts.Store.Stats(); st.Deletes != 2 {
		t.Errorf("store deletes %d, want 2", st.Deletes)
	}
}

// BenchmarkArchiveReplay measures the warm replay path end to end:
// GET /v1/archive/{hash} over HTTP against a memory-promoted entry.
func BenchmarkArchiveReplay(b *testing.B) {
	dir := b.TempDir()
	fs, err := store.OpenFS(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	s := New(Options{Store: fs})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(tinySweep("bench"))
	resp, err := http.Post(ts.URL+"/v1/sweeps", ctJSON, strings.NewReader(string(body)))
	if err != nil {
		b.Fatal(err)
	}
	var job jobDoc
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	j, _ := s.jobs.lookup(job.ID)
	<-j.Done()
	s.cache.persists.Wait()

	url := ts.URL + "/v1/archive/" + job.Experiment
	b.ResetTimer()
	for b.Loop() {
		resp, err := http.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil || resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d err %v", resp.StatusCode, err)
		}
		resp.Body.Close()
	}
}
