package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"netpart"
)

// TestExperimentsEndpoint checks the registry listing and its
// kind/cost filters against the real registry.
func TestExperimentsEndpoint(t *testing.T) {
	_, ts := realServer(t, Options{})

	var doc experimentsDoc
	code, _, body := get(t, ts.URL+"/v1/experiments", nil)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	reg := netpart.Registry()
	if len(doc.Experiments) != len(reg) {
		t.Fatalf("%d experiments, want %d", len(doc.Experiments), len(reg))
	}
	for i, e := range doc.Experiments {
		if e.ID != reg[i].ID || e.Kind != reg[i].Kind || e.Cost != reg[i].Cost || e.Title != reg[i].Title {
			t.Errorf("experiment %d = %+v, want %+v", i, e, reg[i])
		}
	}

	for _, tc := range []struct {
		query string
		want  []string
	}{
		{"?kind=table", []string{"table1", "table2", "table3", "table4", "table5", "table6", "table7"}},
		{"?cost=cheap", []string{"table3", "table4", "figure6"}},
		{"?kind=figure&cost=heavy", []string{"figure3", "figure4"}},
		{"?cost=cheap&cost=heavy&kind=figure", []string{"figure3", "figure4", "figure6"}},
		{"?kind=figure&cost=cheap&cost=moderate&cost=heavy", []string{"figure1", "figure2", "figure3", "figure4", "figure5", "figure6", "figure7"}},
	} {
		code, _, body := get(t, ts.URL+"/v1/experiments"+tc.query, nil)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", tc.query, code)
		}
		var doc experimentsDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatal(err)
		}
		var ids []string
		for _, e := range doc.Experiments {
			ids = append(ids, e.ID)
		}
		if len(ids) != len(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.query, ids, tc.want)
			continue
		}
		for i := range ids {
			if ids[i] != tc.want[i] {
				t.Errorf("%s: got %v, want %v", tc.query, ids, tc.want)
				break
			}
		}
	}

	for _, q := range []string{"?kind=chart", "?cost=free"} {
		if code, _, _ := get(t, ts.URL+"/v1/experiments"+q, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, code)
		}
	}
}

// TestSyncResultNegotiationAndETag runs a cheap experiment through
// the synchronous endpoint in all three encodings and checks the
// bytes match the Runner's own encoders, repeated requests are
// byte-identical cache hits with matching strong ETags, and
// If-None-Match revalidates to 304.
func TestSyncResultNegotiationAndETag(t *testing.T) {
	_, ts := realServer(t, Options{Workers: 2})
	url := ts.URL + "/v1/experiments/table3/result"

	res, err := netpart.NewRunner().Run(context.Background(), "table3")
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, err := res.CSV()
	if err != nil {
		t.Fatal(err)
	}
	wantMD := res.Markdown()

	code, hdr, body := get(t, url, nil)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if !bytes.Equal(body, wantJSON) {
		t.Errorf("JSON body differs from Result.JSON()\ngot:  %.80s\nwant: %.80s", body, wantJSON)
	}
	etag := hdr.Get("ETag")
	if etag == "" || etag[0] != '"' {
		t.Fatalf("missing strong ETag, got %q", etag)
	}

	// Hot-cache repeat: byte-identical, same tag.
	code2, hdr2, body2 := get(t, url, nil)
	if code2 != http.StatusOK || !bytes.Equal(body, body2) || hdr2.Get("ETag") != etag {
		t.Errorf("repeat: status %d, etag %q (want %q), identical=%v", code2, hdr2.Get("ETag"), etag, bytes.Equal(body, body2))
	}

	// Revalidation.
	code3, hdr3, body3 := get(t, url, map[string]string{"If-None-Match": etag})
	if code3 != http.StatusNotModified || len(body3) != 0 || hdr3.Get("ETag") != etag {
		t.Errorf("revalidate: status %d, %d body bytes, etag %q", code3, len(body3), hdr3.Get("ETag"))
	}

	// CSV via Accept, Markdown via ?format=; distinct tags per encoding.
	_, hdrCSV, bodyCSV := get(t, url, map[string]string{"Accept": "text/csv"})
	if !bytes.Equal(bodyCSV, wantCSV) {
		t.Errorf("CSV body differs:\n%s", bodyCSV)
	}
	if ct := hdrCSV.Get("Content-Type"); ct != "text/csv; charset=utf-8" {
		t.Errorf("CSV content type %q", ct)
	}
	_, hdrMD, bodyMD := get(t, url+"?format=markdown", nil)
	if !bytes.Equal(bodyMD, wantMD) {
		t.Errorf("Markdown body differs:\n%s", bodyMD)
	}
	if hdrCSV.Get("ETag") == etag || hdrMD.Get("ETag") == etag || hdrCSV.Get("ETag") == hdrMD.Get("ETag") {
		t.Error("encodings share an ETag")
	}

	// Accept listing CSV first wins over later JSON.
	_, _, bodyPref := get(t, url, map[string]string{"Accept": "text/csv, application/json"})
	if !bytes.Equal(bodyPref, wantCSV) {
		t.Error("Accept preference order not honored")
	}

	// q-values: a type refused with q=0 is never served, and a higher
	// q beats listed order.
	_, _, bodyQ0 := get(t, url, map[string]string{"Accept": "text/csv;q=0, application/json"})
	if !bytes.Equal(bodyQ0, wantJSON) {
		t.Error("q=0 type was served")
	}
	_, _, bodyQ := get(t, url, map[string]string{"Accept": "application/json;q=0.4, text/csv;q=0.9"})
	if !bytes.Equal(bodyQ, wantCSV) {
		t.Error("q weighting not honored")
	}
	if code, _, _ := get(t, url, map[string]string{"Accept": "application/json;q=0, text/csv;q=0"}); code != http.StatusNotAcceptable {
		t.Errorf("all-q=0 Accept: status %d, want 406", code)
	}
	// A wildcard must not resurrect a type refused with q=0: the most
	// specific matching member governs each type.
	_, hdrWild, bodyWild := get(t, url, map[string]string{"Accept": "application/json;q=0, */*"})
	if bytes.Equal(bodyWild, wantJSON) {
		t.Error("*/* resurrected the explicitly refused JSON")
	}
	if ct := hdrWild.Get("Content-Type"); !strings.HasPrefix(ct, ctMarkdown) {
		t.Errorf("wildcard fallback content type %q, want markdown", ct)
	}
	// */* alone still defaults to JSON.
	_, _, bodyAny := get(t, url, map[string]string{"Accept": "*/*"})
	if !bytes.Equal(bodyAny, wantJSON) {
		t.Error("*/* did not default to JSON")
	}
	// Media types are case-insensitive.
	_, _, bodyCase := get(t, url, map[string]string{"Accept": "TEXT/CSV"})
	if !bytes.Equal(bodyCase, wantCSV) {
		t.Error("uppercase media type not matched")
	}
	// Empty list members (trailing comma) are ignored, not */*.
	_, _, bodyTrail := get(t, url, map[string]string{"Accept": "text/markdown;q=0.5,"})
	if !bytes.Equal(bodyTrail, wantMD) {
		t.Error("trailing comma overrode the requested type")
	}
	// Weak-comparison revalidation: a proxy-weakened tag still 304s.
	codeWeak, _, _ := get(t, url, map[string]string{"If-None-Match": "W/" + etag})
	if codeWeak != http.StatusNotModified {
		t.Errorf("weakened tag revalidation: status %d, want 304", codeWeak)
	}
}

// TestSyncResultErrors covers the failure paths of the synchronous
// endpoint: unknown experiment, bad options, unacceptable Accept.
func TestSyncResultErrors(t *testing.T) {
	_, ts := realServer(t, Options{})
	for _, tc := range []struct {
		path string
		hdr  map[string]string
		want int
	}{
		{"/v1/experiments/table99/result", nil, http.StatusNotFound},
		{"/v1/experiments/table3/result?workers=lots", nil, http.StatusBadRequest},
		{"/v1/experiments/table3/result?full_rounds=perhaps", nil, http.StatusBadRequest},
		{"/v1/experiments/table3/result?format=yaml", nil, http.StatusNotAcceptable},
		{"/v1/experiments/table3/result", map[string]string{"Accept": "image/png"}, http.StatusNotAcceptable},
	} {
		if code, _, body := get(t, ts.URL+tc.path, tc.hdr); code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.path, code, tc.want, body)
		}
	}
}

// TestSubmitAndFetchResult drives the asynchronous flow end-to-end on
// the real registry: POST, job document, completion, negotiated
// result bytes identical to the synchronous endpoint's.
func TestSubmitAndFetchResult(t *testing.T) {
	s, ts := realServer(t, Options{Workers: 2})
	job := submit(t, ts, map[string]any{"experiment": "table4"})
	if job.Experiment != "table4" || job.Key != "table4?full_rounds=false" {
		t.Fatalf("job doc %+v", job)
	}
	if got := await(t, s, job.ID); got != StatusDone {
		t.Fatalf("status %q", got)
	}

	code, hdr, body := get(t, ts.URL+"/v1/runs/"+job.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	syncCode, syncHdr, syncBody := get(t, ts.URL+"/v1/experiments/table4/result", nil)
	if syncCode != http.StatusOK {
		t.Fatalf("sync status %d", syncCode)
	}
	if !bytes.Equal(body, syncBody) || hdr.Get("ETag") != syncHdr.Get("ETag") {
		t.Error("async and sync results differ for the same key")
	}

	// A second identical submission is served from cache: done
	// immediately after the job unwinds, same bytes.
	job2 := submit(t, ts, map[string]any{"experiment": "table4", "workers": 7})
	if got := await(t, s, job2.ID); got != StatusDone {
		t.Fatalf("cached job status %q", got)
	}
	_, hdr2, body2 := get(t, ts.URL+"/v1/runs/"+job2.ID, nil)
	if !bytes.Equal(body, body2) || hdr2.Get("ETag") != hdr.Get("ETag") {
		t.Error("cached result differs")
	}
}

// TestSubmitErrors covers submission validation.
func TestSubmitErrors(t *testing.T) {
	_, ts := realServer(t, Options{})
	for _, tc := range []struct {
		doc  any
		want int
	}{
		{map[string]any{"experiment": "table99"}, http.StatusNotFound},
		{map[string]any{"experiment": "table3", "workers": -1}, http.StatusBadRequest},
		{map[string]any{"experiment": "table3", "turbo": true}, http.StatusBadRequest},
	} {
		if code, _, body := post(t, ts.URL+"/v1/runs", tc.doc); code != tc.want {
			t.Errorf("%v: status %d, want %d (%s)", tc.doc, code, tc.want, body)
		}
	}
	if code, _, _ := get(t, ts.URL+"/v1/runs/run-999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown run: status %d", code)
	}
}

// TestNormalizationCoalescesIrrelevantOptions pins the cache-key
// semantics: full_rounds on a non-pairing experiment normalizes away
// (same key, shared cache entry), while on a pairing experiment it is
// a distinct key.
func TestNormalizationCoalescesIrrelevantOptions(t *testing.T) {
	table3, _ := netpart.Lookup("table3")
	figure3, _ := netpart.Lookup("figure3")
	if k := keyFor(table3, netpart.RunOptions{Workers: 8, FullRounds: true}); k != (Key{ID: "table3"}) {
		t.Errorf("table3 key = %v", k)
	}
	if k := keyFor(figure3, netpart.RunOptions{FullRounds: true}); k != (Key{ID: "figure3", FullRounds: true}) {
		t.Errorf("figure3 key = %v", k)
	}

	// Over HTTP: requesting table3 with full_rounds=true serves the
	// same cached bytes as without.
	_, ts := realServer(t, Options{})
	_, hdrA, bodyA := get(t, ts.URL+"/v1/experiments/table3/result", nil)
	_, hdrB, bodyB := get(t, ts.URL+"/v1/experiments/table3/result?full_rounds=true&workers=3", nil)
	if !bytes.Equal(bodyA, bodyB) || hdrA.Get("ETag") != hdrB.Get("ETag") {
		t.Error("normalized-identical requests produced different bytes")
	}
}
