package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"netpart/internal/obs"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing a
// server's slog output while it is still serving.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestIDMiddleware: every response carries X-Netpart-Request-Id
// — the client's own when it sent a usable one, a generated one
// otherwise (including when the client's is garbage).
func TestRequestIDMiddleware(t *testing.T) {
	_, ts := realServer(t, Options{})

	_, hdr, _ := get(t, ts.URL+"/v1/healthz", map[string]string{obs.RequestIDHeader: "my-trace-42"})
	if got := hdr.Get(obs.RequestIDHeader); got != "my-trace-42" {
		t.Errorf("honored id = %q, want my-trace-42", got)
	}

	_, hdr, _ = get(t, ts.URL+"/v1/healthz", nil)
	gen := hdr.Get(obs.RequestIDHeader)
	if !obs.ValidRequestID(gen) {
		t.Errorf("generated id %q is not valid", gen)
	}

	// An over-length ID is rejected and replaced with a generated one
	// (control characters are rejected too, but Go's client won't even
	// send those).
	long := strings.Repeat("x", 200)
	_, hdr, _ = get(t, ts.URL+"/v1/healthz", map[string]string{obs.RequestIDHeader: long})
	if got := hdr.Get(obs.RequestIDHeader); got == long || !obs.ValidRequestID(got) {
		t.Errorf("oversized client id echoed back as %q", got)
	}
}

// TestMetricsExposition: GET /metrics serves Prometheus text with the
// request-count family, and the counters actually move.
func TestMetricsExposition(t *testing.T) {
	_, ts := realServer(t, Options{})
	get(t, ts.URL+"/v1/healthz", nil)

	code, hdr, body := get(t, ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("content type %q, want %q", ct, obs.ContentType)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE netpart_http_requests_total counter",
		`netpart_http_requests_total{endpoint="/v1/healthz",method="GET",code="200"} 1`,
		"# TYPE netpart_http_request_duration_seconds histogram",
		`netpart_http_request_duration_seconds_bucket{endpoint="/v1/healthz",le="+Inf"} 1`,
		"# TYPE netpart_sim_contention_memo_hits_total counter",
		"# TYPE netpart_sim_flowset_cache_hits_total counter",
		"# TYPE netpart_sched_plan_cache_hits_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The healthz JSON embeds the same registry.
	doc := healthSnapshot(t, ts)
	names := map[string]bool{}
	for _, fam := range doc.Metrics {
		names[fam.Name] = true
	}
	if !names["netpart_http_requests_total"] || !names["netpart_cache_hits_total"] {
		t.Errorf("healthz metrics families %v missing expected names", names)
	}
}

// TestFleetRequestIDPropagation: the request ID a client sends with a
// coordinator sweep submission reaches the worker — its peer-endpoint
// access lines (logged at Info) carry the coordinator's ID verbatim.
func TestFleetRequestIDPropagation(t *testing.T) {
	var workerLog syncBuffer
	logger := slog.New(slog.NewJSONHandler(&workerLog, nil))
	_, workerTS := realServer(t, Options{Logger: logger})
	coord, coordTS := realServer(t, Options{Peers: []string{workerTS.URL}})

	const reqID = "fleet-trace-7f3a"
	body, err := json.Marshal(tinySweep("propagation"))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", coordTS.URL+"/v1/sweeps", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ctJSON)
	req.Header.Set(obs.RequestIDHeader, reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(obs.RequestIDHeader); got != reqID {
		t.Fatalf("coordinator echoed %q, want %q", got, reqID)
	}
	var job jobDoc
	if err := json.Unmarshal(raw, &job); err != nil {
		t.Fatal(err)
	}
	if st := await(t, coord, job.ID); st != StatusDone {
		t.Fatalf("status %s", st)
	}

	logged := workerLog.String()
	if !strings.Contains(logged, reqID) {
		t.Fatalf("worker log has no %q:\n%s", reqID, logged)
	}
	if !strings.Contains(logged, "/v1/peer/scenarios") {
		t.Errorf("worker log missing peer endpoint lines:\n%s", logged)
	}
}

// TestClusterDroppedFrames: a subscriber that never drains makes the
// lossy fan-out shed frames, and the loss is visible both in the
// session document and in the shared SSE-drop metric.
func TestClusterDroppedFrames(t *testing.T) {
	s, ts := realServer(t, Options{})
	code, _, body := post(t, ts.URL+"/v1/cluster", map[string]any{
		"machine": "mira", "policy": "contention-aware"})
	if code != http.StatusCreated {
		t.Fatalf("open: %d %s", code, body)
	}
	var doc clusterDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	cs, ok := s.clusters.lookup(doc.ID)
	if !ok {
		t.Fatalf("no session %s", doc.ID)
	}

	// Subscribe but never read: the 64-frame buffer fills, the rest drop.
	_, unsub := cs.subscribe()
	defer unsub()
	for i := 0; i < 100; i++ {
		cs.publish(streamEvent{name: "event", data: i})
	}
	if got := cs.dropped.Load(); got != 36 {
		t.Errorf("session dropped %d frames, want 36", got)
	}

	code, _, body = get(t, ts.URL+"/v1/cluster/"+doc.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("get: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DroppedFrames != 36 {
		t.Errorf("snapshot dropped_frames = %d, want 36", doc.DroppedFrames)
	}

	_, _, text := get(t, ts.URL+"/metrics", nil)
	if want := `netpart_sse_dropped_frames_total{stream="cluster"} 36`; !strings.Contains(string(text), want) {
		t.Errorf("exposition missing %q", want)
	}
}

// BenchmarkMetricsScrape measures a full /metrics render on a server
// with live series — the cost a Prometheus scrape imposes per pass.
func BenchmarkMetricsScrape(b *testing.B) {
	s := New(Options{})
	// Populate endpoint series so the scrape formats realistic output.
	for _, path := range []string{"/v1/healthz", "/v1/experiments", "/metrics"} {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != http.StatusOK {
			b.Fatal("scrape failed")
		}
	}
}

// BenchmarkMetricsMiddleware isolates the per-request instrumentation
// overhead: the same no-op handler served bare and through the
// middleware; the delta is what observability costs each request.
func BenchmarkMetricsMiddleware(b *testing.B) {
	noop := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	b.Run("bare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			noop.ServeHTTP(rec, httptest.NewRequest("GET", "/bench", nil))
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		s := newServer(Options{}, nil)
		h := s.instrument("GET /bench", noop)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/bench", nil))
		}
	})
}
