package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// healthSnapshot fetches and decodes /v1/healthz.
func healthSnapshot(t *testing.T, ts *httptest.Server) healthDoc {
	t.Helper()
	code, _, body := get(t, ts.URL+"/v1/healthz", nil)
	if code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, body)
	}
	var doc healthDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	return doc
}

// TestPeerShardedSweep: a sweep run by a coordinator over worker
// daemons is byte-identical (body and ETag) to the same sweep run by
// a single process, and the points actually executed remotely.
func TestPeerShardedSweep(t *testing.T) {
	ref, refTS := realServer(t, Options{})
	_, w1 := realServer(t, Options{})
	_, w2 := realServer(t, Options{})
	coord, coordTS := realServer(t, Options{Peers: []string{w1.URL, w2.URL}})

	_, want, wantTag := runSweepJob(t, ref, refTS, tinySweep("sharded"))
	_, got, gotTag := runSweepJob(t, coord, coordTS, tinySweep("sharded"))
	if string(got) != string(want) || gotTag != wantTag {
		t.Fatal("sharded sweep differs from single-process execution")
	}

	doc := healthSnapshot(t, coordTS)
	if len(doc.Peers) != 2 {
		t.Fatalf("peers %+v", doc.Peers)
	}
	var dispatched, failed int64
	for _, p := range doc.Peers {
		dispatched += p.Dispatched
		failed += p.Failed
	}
	if dispatched != 4 || failed != 0 {
		t.Errorf("dispatched %d failed %d, want 4/0", dispatched, failed)
	}
}

// TestPeerFailover: a peer that dies mid-sweep (after serving one
// point) only costs local recomputation — the result is byte-identical
// to single-process execution and the failure is counted.
func TestPeerFailover(t *testing.T) {
	ref, refTS := realServer(t, Options{})
	_, want, wantTag := runSweepJob(t, ref, refTS, tinySweep("failover"))

	// A worker that drops dead after its first peer response: requests
	// after the first get their connections severed.
	worker := New(Options{})
	var served atomic.Int32
	var once sync.Once
	var flaky *httptest.Server
	flaky = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) > 1 {
			once.Do(flaky.CloseClientConnections)
			panic(http.ErrAbortHandler) // sever this connection too
		}
		worker.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	coord, coordTS := realServer(t, Options{Peers: []string{flaky.URL}})
	_, got, gotTag := runSweepJob(t, coord, coordTS, tinySweep("failover"))
	if string(got) != string(want) || gotTag != wantTag {
		t.Fatal("failover sweep differs from single-process execution")
	}
	// At most the first request succeeded remotely; the first failure
	// marked the peer unhealthy, and every point not already in flight
	// skipped it instead of burning a dispatch. Each of the 4 points is
	// accounted for as dispatched, failed, or skipped.
	doc := healthSnapshot(t, coordTS)
	if len(doc.Peers) != 1 {
		t.Fatalf("peers %+v", doc.Peers)
	}
	p := doc.Peers[0]
	if p.Healthy || p.Dispatched > 1 || p.Failed < 1 || p.Dispatched+p.Failed+p.Skipped < 4 {
		t.Errorf("peer counters %+v, want unhealthy with <= 1 success, >= 1 failure, 4 points accounted", p)
	}

	// A fully dead fleet degrades to all-local execution: one failed
	// dispatch marks the peer down, the rest never try it.
	dead := httptest.NewServer(nil)
	dead.Close()
	coord2, coordTS2 := realServer(t, Options{Peers: []string{dead.URL}})
	_, got2, _ := runSweepJob(t, coord2, coordTS2, tinySweep("failover"))
	if string(got2) != string(want) {
		t.Fatal("dead-fleet sweep differs from single-process execution")
	}
	if p := healthSnapshot(t, coordTS2).Peers[0]; p.Healthy || p.Failed < 1 {
		t.Errorf("dead peer counters %+v, want unhealthy with >= 1 failure", p)
	}
}

// TestPeerRecovery: an unhealthy peer rejoins the ring once a
// background /v1/healthz probe succeeds, and later points dispatch to
// it again.
func TestPeerRecovery(t *testing.T) {
	ref, refTS := realServer(t, Options{})
	_, want, _ := runSweepJob(t, ref, refTS, tinySweep("recovery"))

	// A worker that is down until the test heals it; /v1/healthz and
	// work units alike fail while down.
	worker := New(Options{})
	var healed atomic.Bool
	ws := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healed.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		worker.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(ws.Close)

	coord, coordTS := realServer(t, Options{Peers: []string{ws.URL}})
	coord.peers.probeEvery = time.Millisecond

	// First sweep marks the peer unhealthy (every dispatch 503s).
	_, got, _ := runSweepJob(t, coord, coordTS, tinySweep("recovery"))
	if string(got) != string(want) {
		t.Fatal("degraded sweep differs from single-process execution")
	}
	if p := healthSnapshot(t, coordTS).Peers[0]; p.Healthy || p.Failed < 1 {
		t.Fatalf("peer counters %+v, want unhealthy with >= 1 failure", p)
	}

	// Heal the worker; picks now trigger async probes that restore it.
	healed.Store(true)
	deadline := time.Now().Add(10 * time.Second)
	for {
		coord.peers.pick("any-point-id")
		if p := healthSnapshot(t, coordTS).Peers[0]; p.Healthy {
			if p.Probes < 1 {
				t.Fatalf("peer recovered without a probe: %+v", p)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("peer never recovered")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A fresh sweep dispatches remotely again, byte-identical.
	_, got2, _ := runSweepJob(t, coord, coordTS, tinySweep("recovery-2"))
	_, want2, _ := runSweepJob(t, ref, refTS, tinySweep("recovery-2"))
	if string(got2) != string(want2) {
		t.Fatal("recovered sweep differs from single-process execution")
	}
	if p := healthSnapshot(t, coordTS).Peers[0]; p.Dispatched < 1 {
		t.Errorf("peer counters %+v, want >= 1 dispatch after recovery", p)
	}
}

// TestPeerTraceGrid: trace-grid points dispatch through the peer API
// with the same byte-identity guarantee as sweeps.
func TestPeerTraceGrid(t *testing.T) {
	runGrid := func(s *Server, ts *httptest.Server) (string, string) {
		t.Helper()
		code, _, raw := post(t, ts.URL+"/v1/traces", tinyTraceGrid("peer-grid"))
		if code != http.StatusAccepted {
			t.Fatalf("submit: %d %s", code, raw)
		}
		var job jobDoc
		if err := json.Unmarshal(raw, &job); err != nil {
			t.Fatal(err)
		}
		if st := await(t, s, job.ID); st != StatusDone {
			t.Fatalf("status %s", st)
		}
		code, hdr, body := get(t, ts.URL+"/v1/traces/"+job.ID, nil)
		if code != http.StatusOK {
			t.Fatalf("result: %d %s", code, body)
		}
		return string(body), hdr.Get("ETag")
	}

	ref, refTS := realServer(t, Options{})
	_, w1 := realServer(t, Options{})
	coord, coordTS := realServer(t, Options{Peers: []string{w1.URL}})

	want, wantTag := runGrid(ref, refTS)
	got, gotTag := runGrid(coord, coordTS)
	if got != want || gotTag != wantTag {
		t.Fatal("peer trace grid differs from single-process execution")
	}
	doc := healthSnapshot(t, coordTS)
	if doc.Peers[0].Dispatched != 4 || doc.Peers[0].Failed != 0 {
		t.Errorf("peer counters %+v", doc.Peers)
	}
}

// TestPeerCoalescing: two coordinators sharding the same grid onto
// one worker never make it compute a point twice — the work units are
// content-addressed, so the worker's cache answers duplicates from a
// flight, memory, or its store.
func TestPeerCoalescing(t *testing.T) {
	worker, workerTS := storeServer(t, t.TempDir(), Options{})
	c1, c1TS := realServer(t, Options{Peers: []string{workerTS.URL}})
	c2, c2TS := realServer(t, Options{Peers: []string{workerTS.URL}})

	var wg sync.WaitGroup
	results := make([]string, 2)
	for i, pair := range []struct {
		s  *Server
		ts *httptest.Server
	}{{c1, c1TS}, {c2, c2TS}} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, body, _ := runSweepJob(t, pair.s, pair.ts, tinySweep("coalesce"))
			results[i] = string(body)
		}()
	}
	wg.Wait()
	if results[0] != results[1] {
		t.Error("coordinators disagree")
	}
	stats := worker.cache.stats()
	if stats.Misses != 4 {
		t.Errorf("worker computed %d flights for 4 unique points (hits=%d coalesced=%d store=%d)",
			stats.Misses, stats.Hits, stats.Coalesced, stats.StoreHits)
	}
	// Dispatch totals: every point went remote from both coordinators.
	for _, ts := range []*httptest.Server{c1TS, c2TS} {
		doc := healthSnapshot(t, ts)
		if doc.Peers[0].Dispatched != 4 || doc.Peers[0].Failed != 0 {
			t.Errorf("coordinator counters %+v", doc.Peers)
		}
	}
	// The worker's store holds the per-point blobs for its next boot.
	worker.cache.persists.Wait()
	if st := worker.opts.Store.Stats(); st.Puts != 4 {
		t.Errorf("worker persisted %d blobs, want 4", st.Puts)
	}
}

// TestPeerWorkUnitValidation: the worker-side peer endpoints reject
// malformed work units rather than executing garbage.
func TestPeerWorkUnitValidation(t *testing.T) {
	_, ts := realServer(t, Options{})
	for _, probe := range []struct {
		path string
		doc  any
	}{
		{"/v1/peer/scenarios", map[string]any{"nonsense": true}},
		{"/v1/peer/scenarios", map[string]any{"topology": map[string]any{"kind": "moebius"}, "workload": map[string]any{"pattern": "pairing"}}},
		{"/v1/peer/traces", map[string]any{"machine": "juqueen", "policy": "warp-drive"}},
	} {
		code, _, body := post(t, ts.URL+probe.path, probe.doc)
		if code != http.StatusBadRequest {
			t.Errorf("%s %v: status %d: %s", probe.path, probe.doc, code, body)
		}
	}
}
