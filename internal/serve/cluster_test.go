package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// del issues a DELETE and returns status and body.
func del(t *testing.T, url string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// openClusterSession POSTs a session spec and returns its document.
func openClusterSession(t *testing.T, ts *httptest.Server, spec map[string]any) clusterDoc {
	t.Helper()
	code, hdr, body := post(t, ts.URL+"/v1/cluster", spec)
	if code != http.StatusCreated {
		t.Fatalf("open: %d %s", code, body)
	}
	var doc clusterDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if loc := hdr.Get("Location"); loc != "/v1/cluster/"+doc.ID {
		t.Fatalf("location %q for session %q", loc, doc.ID)
	}
	return doc
}

// TestClusterLifecycle walks the whole session surface: create,
// stream, inject (idempotently), snapshot, delete — and verifies the
// SSE stream saw the engine events and the final metrics.
func TestClusterLifecycle(t *testing.T) {
	_, ts := realServer(t, Options{})
	doc := openClusterSession(t, ts, map[string]any{
		"machine": "2x2x2x1", "policy": "contention-aware", "backfill": true,
	})
	if doc.Snapshot.Submitted != 0 || doc.Links["jobs"] != "/v1/cluster/"+doc.ID+"/jobs" {
		t.Fatalf("session doc %+v", doc)
	}

	stream, cancel := openSSE(t, ts, "cluster/"+doc.ID)
	defer cancel()
	frames := make(chan []sseEvent, 1)
	go func() { frames <- readSSE(t, stream, 64) }()

	jobs := map[string]any{"jobs": []map[string]any{
		{"id": "alpha", "midplanes": 4, "runtime_sec": 120, "pattern": "pairing"},
		{"id": "beta", "midplanes": 8, "runtime_sec": 60, "arrival_sec": 30},
	}}
	code, _, body := post(t, ts.URL+"/v1/cluster/"+doc.ID+"/jobs", jobs)
	if code != http.StatusOK {
		t.Fatalf("jobs: %d %s", code, body)
	}
	var rec struct {
		Accepted   int `json:"accepted"`
		Duplicates int `json:"duplicates"`
		Submitted  int `json:"submitted"`
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Accepted != 2 || rec.Duplicates != 0 || rec.Submitted != 2 {
		t.Fatalf("receipt %+v, want 2 accepted", rec)
	}
	// A retried batch (lost response) is a no-op.
	code, _, body = post(t, ts.URL+"/v1/cluster/"+doc.ID+"/jobs", jobs)
	if code != http.StatusOK {
		t.Fatalf("retry: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Accepted != 0 || rec.Duplicates != 2 || rec.Submitted != 2 {
		t.Fatalf("retry receipt %+v, want pure duplicates", rec)
	}

	code, _, body = get(t, ts.URL+"/v1/cluster/"+doc.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("get: %d %s", code, body)
	}
	var mid clusterDoc
	if err := json.Unmarshal(body, &mid); err != nil {
		t.Fatal(err)
	}
	if mid.Snapshot.Submitted != 2 {
		t.Fatalf("snapshot %+v, want 2 submitted", mid.Snapshot)
	}

	code, body = del(t, ts.URL+"/v1/cluster/"+doc.ID)
	if code != http.StatusOK {
		t.Fatalf("delete: %d %s", code, body)
	}
	var final clusterFinalDoc
	if err := json.Unmarshal(body, &final); err != nil {
		t.Fatal(err)
	}
	if final.ID != doc.ID || final.Metrics.Jobs != 2 || final.Metrics.MakespanSec <= 0 {
		t.Fatalf("final %+v, want metrics over both jobs", final)
	}

	// The stream: a status frame, engine events, and the final metrics
	// in the done frame.
	evs := <-frames
	if len(evs) < 3 || evs[0].name != "status" {
		t.Fatalf("frames %+v, want status first then events", evs)
	}
	kinds := map[string]int{}
	for _, ev := range evs[1 : len(evs)-1] {
		if ev.name != "event" {
			continue
		}
		var engine struct {
			Kind  string `json:"kind"`
			JobID string `json:"job_id"`
		}
		if err := json.Unmarshal([]byte(ev.data), &engine); err != nil {
			t.Fatal(err)
		}
		kinds[engine.Kind]++
		if engine.Kind == "submit" && engine.JobID == "" {
			t.Fatalf("submit event without client job id: %s", ev.data)
		}
	}
	if kinds["submit"] != 2 || kinds["finish"] != 2 {
		t.Fatalf("event kinds %v, want 2 submits and 2 finishes", kinds)
	}
	last := evs[len(evs)-1]
	if last.name != "done" {
		t.Fatalf("last frame %+v, want done", last)
	}
	var done clusterFinalDoc
	if err := json.Unmarshal([]byte(last.data), &done); err != nil {
		t.Fatal(err)
	}
	if done.Metrics.Jobs != 2 {
		t.Fatalf("done frame %+v, want the final metrics", done)
	}

	// The session is gone.
	if code, _, _ := get(t, ts.URL+"/v1/cluster/"+doc.ID, nil); code != http.StatusNotFound {
		t.Fatalf("get after delete: %d", code)
	}
	if code, _, body := post(t, ts.URL+"/v1/cluster/"+doc.ID+"/jobs", jobs); code != http.StatusNotFound {
		t.Fatalf("jobs after delete: %d %s", code, body)
	}
	if code, _ := del(t, ts.URL+"/v1/cluster/"+doc.ID); code != http.StatusNotFound {
		t.Fatalf("double delete: %d", code)
	}
}

// TestClusterHealthzCounters: the healthz document carries the
// session subsystem's counters.
func TestClusterHealthzCounters(t *testing.T) {
	_, ts := realServer(t, Options{})
	if st := healthSnapshot(t, ts).Cluster; st.ActiveSessions != 0 || st.JobsSubmitted != 0 {
		t.Fatalf("fresh stats %+v", st)
	}
	doc := openClusterSession(t, ts, map[string]any{"machine": "2x2x2x1"})
	code, _, body := post(t, ts.URL+"/v1/cluster/"+doc.ID+"/jobs", map[string]any{
		"jobs": []map[string]any{{"id": "a", "midplanes": 1, "runtime_sec": 10}},
	})
	if code != http.StatusOK {
		t.Fatalf("jobs: %d %s", code, body)
	}
	st := healthSnapshot(t, ts).Cluster
	if st.ActiveSessions != 1 || st.JobsSubmitted != 1 || st.SessionsReaped != 0 {
		t.Fatalf("stats %+v, want 1 active / 1 submitted / 0 reaped", st)
	}
	if code, body := del(t, ts.URL+"/v1/cluster/"+doc.ID); code != http.StatusOK {
		t.Fatalf("delete: %d %s", code, body)
	}
	if st := healthSnapshot(t, ts).Cluster; st.ActiveSessions != 0 || st.JobsSubmitted != 1 {
		t.Fatalf("stats after delete %+v", st)
	}
}

// TestClusterIdleReap: a session nobody touches is aborted by the
// idle reaper and counted in healthz.
func TestClusterIdleReap(t *testing.T) {
	_, ts := realServer(t, Options{ClusterIdleTimeout: 20 * time.Millisecond})
	doc := openClusterSession(t, ts, map[string]any{"machine": "2x2x2x1"})
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := healthSnapshot(t, ts).Cluster
		if st.SessionsReaped >= 1 && st.ActiveSessions == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session never reaped: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _, _ := get(t, ts.URL+"/v1/cluster/"+doc.ID, nil); code != http.StatusNotFound {
		t.Fatalf("get after reap: %d", code)
	}
}

// TestClusterSessionBound: session creation beyond the bound is a
// 503, and deleting a session frees its slot.
func TestClusterSessionBound(t *testing.T) {
	_, ts := realServer(t, Options{ClusterSessions: 1})
	doc := openClusterSession(t, ts, map[string]any{"machine": "2x2x2x1"})
	code, _, body := post(t, ts.URL+"/v1/cluster", map[string]any{"machine": "2x2x2x1"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("over-bound open: %d %s", code, body)
	}
	if code, body := del(t, ts.URL+"/v1/cluster/"+doc.ID); code != http.StatusOK {
		t.Fatalf("delete: %d %s", code, body)
	}
	openClusterSession(t, ts, map[string]any{"machine": "2x2x2x1"})
}

// TestClusterValidation: malformed specs and job batches are the
// client's problem, with statuses that say whose.
func TestClusterValidation(t *testing.T) {
	_, ts := realServer(t, Options{})
	for _, probe := range []struct {
		doc  map[string]any
		want int
	}{
		{map[string]any{}, http.StatusBadRequest},                                             // no machine
		{map[string]any{"machine": "2x2x2x1", "policy": "warp-drive"}, http.StatusBadRequest}, // unknown policy
		{map[string]any{"machine": "2x2x2x1", "nonsense": true}, http.StatusBadRequest},       // unknown field
		{map[string]any{"machine": "2x2x2x1", "time_scale": -1}, http.StatusBadRequest},       // bad clock
	} {
		if code, _, body := post(t, ts.URL+"/v1/cluster", probe.doc); code != probe.want {
			t.Errorf("spec %v: status %d (%s), want %d", probe.doc, code, body, probe.want)
		}
	}

	doc := openClusterSession(t, ts, map[string]any{"machine": "2x2x2x1"})
	base := ts.URL + "/v1/cluster/" + doc.ID + "/jobs"
	for _, probe := range []struct {
		doc  map[string]any
		want int
	}{
		{map[string]any{"jobs": []map[string]any{}}, http.StatusBadRequest},                                                           // empty batch
		{map[string]any{"jobs": []map[string]any{{"midplanes": 1, "runtime_sec": 10}}}, http.StatusBadRequest},                        // no id
		{map[string]any{"jobs": []map[string]any{{"id": "x", "midplanes": 0, "runtime_sec": 10}}}, http.StatusBadRequest},             // bad size
		{map[string]any{"jobs": []map[string]any{{"id": "x", "midplanes": 9999, "runtime_sec": 10}}}, http.StatusUnprocessableEntity}, // never fits
	} {
		if code, _, body := post(t, base, probe.doc); code != probe.want {
			t.Errorf("jobs %v: status %d (%s), want %d", probe.doc, code, body, probe.want)
		}
	}
	// None of the rejected batches leaked into the session.
	code, _, body := get(t, ts.URL+"/v1/cluster/"+doc.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("get: %d %s", code, body)
	}
	var after clusterDoc
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if after.Snapshot.Submitted != 0 {
		t.Fatalf("rejected batches leaked: %+v", after.Snapshot)
	}
}

// TestClusterShutdownDrain: server shutdown gracefully drains open
// sessions — the SSE consumer still gets its done frame with the
// final metrics.
func TestClusterShutdownDrain(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	doc := openClusterSession(t, ts, map[string]any{"machine": "2x2x2x1"})
	code, _, body := post(t, ts.URL+"/v1/cluster/"+doc.ID+"/jobs", map[string]any{
		"jobs": []map[string]any{{"id": "drain-me", "midplanes": 2, "runtime_sec": 500}},
	})
	if code != http.StatusOK {
		t.Fatalf("jobs: %d %s", code, body)
	}
	stream, cancel := openSSE(t, ts, "cluster/"+doc.ID)
	defer cancel()
	frames := make(chan []sseEvent, 1)
	go func() { frames <- readSSE(t, stream, 64) }()

	ctx, cancelShutdown := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelShutdown()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	evs := <-frames
	if len(evs) == 0 {
		t.Fatal("no frames before shutdown close")
	}
	last := evs[len(evs)-1]
	if last.name != "done" {
		t.Fatalf("last frame %+v, want done", last)
	}
	var done clusterFinalDoc
	if err := json.Unmarshal([]byte(last.data), &done); err != nil {
		t.Fatal(err)
	}
	if done.Metrics.Jobs != 1 {
		t.Fatalf("drained done frame %+v, want the job's final metrics", done)
	}
}
