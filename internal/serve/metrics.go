package serve

import (
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"netpart/internal/obs"
	"netpart/internal/sched"
	"netpart/internal/sched/cluster"
	"netpart/internal/store"
)

// Observability wiring. Every subsystem's counters live in one
// obs.Registry per Server (the paper's thesis applied to the serving
// stack: contention — queue waits, cache misses, dropped frames,
// failed dispatches — is measurable, so measure it):
//
//   - request middleware: per-endpoint request counts, latency
//     histograms, in-flight gauges, and request-ID minting
//   - admission: per-cost-class queue-wait histograms and held-slot
//     gauges (the semaphores' contention, measured)
//   - cache / store / cluster / peers: their ad-hoc healthz counters,
//     re-homed as first-class metrics (healthz reads these back)
//   - simulation internals: contention-memo hit rate and stepper
//     events, sampled from their process-wide counters at scrape time
//
// The registry serves Prometheus text at GET /metrics and rides the
// /v1/healthz document as a JSON snapshot.

// serverMetrics holds the server's metric handles. Everything is
// created up front so handler hot paths never take the registry lock.
type serverMetrics struct {
	reg *obs.Registry

	requests *obs.CounterVec   // endpoint, method, code
	latency  *obs.HistogramVec // endpoint
	inflight *obs.GaugeVec     // endpoint
	dropped  *obs.CounterVec   // stream kind (run/sweep/trace/cluster)

	admissionWait *obs.HistogramVec // class
	admissionHeld *obs.GaugeVec     // class

	cacheHits        *obs.Counter
	cacheStoreHits   *obs.Counter
	cacheMisses      *obs.Counter
	cacheCoalesced   *obs.Counter
	cacheEvictions   *obs.Counter
	cachePersists    *obs.Counter
	cachePersistErrs *obs.Counter

	clusterJobs   *obs.Counter
	clusterReaped *obs.Counter
	clusterEvents *obs.CounterVec // kind
}

// newServerMetrics registers the static families plus the sampled
// bridges over the process-wide simulation counters.
func newServerMetrics(reg *obs.Registry) *serverMetrics {
	if reg == nil {
		reg = obs.New()
	}
	m := &serverMetrics{
		reg: reg,
		requests: reg.CounterVec("netpart_http_requests_total",
			"HTTP requests served, by route pattern, method and status code.",
			"endpoint", "method", "code"),
		latency: reg.HistogramVec("netpart_http_request_duration_seconds",
			"HTTP request latency by route pattern (SSE streams observe their full stream duration).",
			nil, "endpoint"),
		inflight: reg.GaugeVec("netpart_http_inflight_requests",
			"Requests currently being served, by route pattern.",
			"endpoint"),
		dropped: reg.CounterVec("netpart_sse_dropped_frames_total",
			"Frames dropped by the lossy SSE fan-out buffers, by stream kind.",
			"stream"),
		admissionWait: reg.HistogramVec("netpart_admission_wait_seconds",
			"Time spent queued on the per-cost-class admission semaphores.",
			nil, "class"),
		admissionHeld: reg.GaugeVec("netpart_admission_held_slots",
			"Admission slots currently held, by cost class.",
			"class"),
		cacheHits: reg.Counter("netpart_cache_hits_total",
			"Requests answered from a completed in-memory cache entry."),
		cacheStoreHits: reg.Counter("netpart_cache_store_hits_total",
			"Requests answered by restoring a persisted blob from the store."),
		cacheMisses: reg.Counter("netpart_cache_misses_total",
			"Flights started (actual computations)."),
		cacheCoalesced: reg.Counter("netpart_cache_coalesced_total",
			"Waiters that joined an existing flight instead of recomputing."),
		cacheEvictions: reg.Counter("netpart_cache_evictions_total",
			"Dynamic memory cache entries evicted past the retention bound."),
		cachePersists: reg.Counter("netpart_store_persists_total",
			"Write-behind persists of freshly computed results."),
		cachePersistErrs: reg.Counter("netpart_store_persist_errors_total",
			"Write-behind persists that failed (costing a future recomputation)."),
		clusterJobs: reg.Counter("netpart_cluster_jobs_submitted_total",
			"Cluster-session jobs accepted across all sessions (duplicates excluded)."),
		clusterReaped: reg.Counter("netpart_cluster_sessions_reaped_total",
			"Cluster sessions aborted by the idle-timeout reaper."),
		clusterEvents: reg.CounterVec("netpart_cluster_events_total",
			"Cluster-session engine events published, by kind.",
			"kind"),
	}
	reg.CounterFunc("netpart_sim_contention_memo_hits_total",
		"Process-wide contention-memo lookups answered from the memo.",
		func() float64 { hits, _ := cluster.MemoCounts(); return float64(hits) })
	reg.CounterFunc("netpart_sim_contention_memo_misses_total",
		"Process-wide contention-memo lookups that ran a flow-level simulation.",
		func() float64 { _, misses := cluster.MemoCounts(); return float64(misses) })
	reg.CounterFunc("netpart_sim_stepper_events_total",
		"Process-wide scheduler stepper events processed (starts, finishes, boundaries).",
		func() float64 { return float64(sched.StepperEventsProcessed()) })
	reg.CounterFunc("netpart_sim_flowset_cache_hits_total",
		"Process-wide compiled flow-set cache lookups answered from the cache.",
		func() float64 { hits, _, _ := cluster.FlowSetCounts(); return float64(hits) })
	reg.CounterFunc("netpart_sim_flowset_cache_misses_total",
		"Process-wide flow-set cache lookups that compiled routes and demands.",
		func() float64 { _, misses, _ := cluster.FlowSetCounts(); return float64(misses) })
	reg.CounterFunc("netpart_sim_flowset_cache_evictions_total",
		"Compiled flow sets evicted past the cache bound.",
		func() float64 { _, _, ev := cluster.FlowSetCounts(); return float64(ev) })
	reg.CounterFunc("netpart_sched_plan_cache_hits_total",
		"Process-wide placement-plan cache lookups answered from the cache.",
		func() float64 { hits, _, _ := sched.PlanCacheCounts(); return float64(hits) })
	reg.CounterFunc("netpart_sched_plan_cache_misses_total",
		"Process-wide plan-cache lookups that compiled a candidate space.",
		func() float64 { _, misses, _ := sched.PlanCacheCounts(); return float64(misses) })
	reg.CounterFunc("netpart_sched_plan_cache_evictions_total",
		"Compiled placement plans evicted past the cache bound.",
		func() float64 { _, _, ev := sched.PlanCacheCounts(); return float64(ev) })
	return m
}

// registerStoreMetrics bridges the store's own stats into the
// registry, sampled at scrape time — no double bookkeeping.
func (m *serverMetrics) registerStoreMetrics(st store.Store) {
	sample := func(pick func(store.Stats) float64) func() float64 {
		return func() float64 { return pick(st.Stats()) }
	}
	m.reg.GaugeFunc("netpart_store_entries", "Blobs in the persistent store.",
		sample(func(s store.Stats) float64 { return float64(s.Entries) }))
	m.reg.GaugeFunc("netpart_store_bytes", "Bytes in the persistent store.",
		sample(func(s store.Stats) float64 { return float64(s.Bytes) }))
	m.reg.CounterFunc("netpart_store_hits_total", "Store reads that found an intact blob.",
		sample(func(s store.Stats) float64 { return float64(s.Hits) }))
	m.reg.CounterFunc("netpart_store_misses_total", "Store reads that missed.",
		sample(func(s store.Stats) float64 { return float64(s.Misses) }))
	m.reg.CounterFunc("netpart_store_puts_total", "Blobs written to the store.",
		sample(func(s store.Stats) float64 { return float64(s.Puts) }))
	m.reg.CounterFunc("netpart_store_deletes_total", "Blobs deleted from the store.",
		sample(func(s store.Stats) float64 { return float64(s.Deletes) }))
	m.reg.CounterFunc("netpart_store_evictions_total", "Blobs evicted by the byte budget.",
		sample(func(s store.Stats) float64 { return float64(s.Evictions) }))
	m.reg.CounterFunc("netpart_store_corrupt_total", "Blobs dropped as corrupt (truncation, checksum, header damage).",
		sample(func(s store.Stats) float64 { return float64(s.Corrupt) }))
}

// endpointInstruments are one route's precomputed metric handles, so
// the per-request path is a few atomics, not registry lookups.
type endpointInstruments struct {
	m        *serverMetrics
	endpoint string
	method   string
	latency  *obs.Histogram
	inflight *obs.Gauge

	mu    sync.RWMutex
	codes map[int]*obs.Counter
}

func (m *serverMetrics) endpointFor(pattern string) *endpointInstruments {
	method, endpoint, ok := strings.Cut(pattern, " ")
	if !ok {
		method, endpoint = "", pattern
	}
	return &endpointInstruments{
		m:        m,
		endpoint: endpoint,
		method:   method,
		latency:  m.latency.With(endpoint),
		inflight: m.inflight.With(endpoint),
		codes:    map[int]*obs.Counter{},
	}
}

// counter returns the request counter for a status code, caching the
// resolved handle per endpoint.
func (ei *endpointInstruments) counter(code int) *obs.Counter {
	ei.mu.RLock()
	c, ok := ei.codes[code]
	ei.mu.RUnlock()
	if ok {
		return c
	}
	c = ei.m.requests.With(ei.endpoint, ei.method, strconv.Itoa(code))
	ei.mu.Lock()
	ei.codes[code] = c
	ei.mu.Unlock()
	return c
}

// statusWriter captures the response status code. Unwrap keeps
// http.ResponseController (and thus the SSE flusher) working.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps one route's handler with the observability
// middleware: request ID (honored from X-Netpart-Request-Id or
// minted), per-endpoint count + latency + in-flight, and the access
// log. Peer-API requests log at Info — they are the fleet's
// cross-node traffic, whose request IDs correlate a coordinator's
// sweep with its workers — everything else at Debug.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	ei := s.metrics.endpointFor(pattern)
	level := slog.LevelDebug
	if strings.HasPrefix(ei.endpoint, "/v1/peer/") {
		level = slog.LevelInfo
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		// Direct map access: RequestIDHeader is already in canonical
		// form, so this skips textproto canonicalization on the hot path.
		var id string
		if vs := r.Header[obs.RequestIDHeader]; len(vs) > 0 {
			id = vs[0]
		}
		if !obs.ValidRequestID(id) {
			id = obs.NewRequestID()
		}
		w.Header()[obs.RequestIDHeader] = []string{id}
		r = r.WithContext(obs.WithRequestID(r.Context(), id))

		sw := &statusWriter{ResponseWriter: w}
		ei.inflight.Add(1)
		h(sw, r)
		ei.inflight.Add(-1)

		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		elapsed := time.Since(start)
		ei.counter(code).Inc()
		ei.latency.Observe(elapsed.Seconds())
		if s.log.Enabled(r.Context(), level) {
			s.log.Log(r.Context(), level, "request",
				"request_id", id,
				"method", r.Method,
				"path", r.URL.Path,
				"endpoint", ei.endpoint,
				"code", code,
				"duration_ms", float64(elapsed.Microseconds())/1e3)
		}
	}
}

// handle registers an instrumented route.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, s.instrument(pattern, h))
}

// handleMetrics serves the registry in Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	s.metrics.reg.WritePrometheus(w) //nolint:errcheck // client gone; nothing to do
}
