package serve

import (
	"net/http"
	"strconv"
	"strings"

	"netpart/internal/store"
)

// Archive endpoints: the REST surface over the persistent result
// store. Every dynamic result netpartd ever computed (and has not
// evicted) is listable and replayable by its content hash, across
// restarts, without recomputation:
//
//	GET /v1/archive               paginated listing (?after=, ?limit=)
//	GET /v1/archive/{hash}        replay a persisted result
//
// Replays run through the regular entry machinery, so content
// negotiation, strong ETags and If-None-Match revalidation behave
// exactly as on the original computation — byte-identically, since
// the persisted encodings are the original bytes and tags.

// maxArchivePage bounds one listing page; defaultArchivePage applies
// when the client does not choose.
const (
	maxArchivePage     = 1000
	defaultArchivePage = 100
)

// archiveDoc is the GET /v1/archive response: one page of entries in
// ascending ID order, plus the cursor for the next page when more may
// follow.
type archiveDoc struct {
	Results []store.Info `json:"results"`
	Next    string       `json:"next,omitempty"`
	Store   store.Stats  `json:"store"`
}

// handleArchiveList pages through the persisted results. Cursor
// pagination on the content-hash ID: pass next back as ?after= until
// next disappears.
func (s *Server) handleArchiveList(w http.ResponseWriter, r *http.Request) {
	st := s.opts.Store
	if st == nil {
		writeError(w, http.StatusNotImplemented, "no persistent store configured (start netpartd with --store-dir)")
		return
	}
	q := r.URL.Query()
	limit := defaultArchivePage
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > maxArchivePage {
			writeError(w, http.StatusBadRequest, "bad limit %q (want 1..%d)", v, maxArchivePage)
			return
		}
		limit = n
	}
	doc := archiveDoc{Results: st.List(q.Get("after"), limit), Store: st.Stats()}
	if doc.Results == nil {
		doc.Results = []store.Info{}
	}
	if len(doc.Results) == limit {
		doc.Next = doc.Results[len(doc.Results)-1].ID
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleArchiveReplay serves one persisted result by its content hash
// ("sweep:<hash>", "trace:<hash>", ...). The read path is memory
// first, then the store — a replay after a restart restores the blob
// into the memory tier, so the second hit is RAM-speed. Content
// negotiation and ETags work exactly as on the original response.
func (s *Server) handleArchiveReplay(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("hash")
	if !strings.ContainsRune(id, ':') {
		// Registry results are never archived: they depend on the code
		// version, not on a content-hashed definition.
		writeError(w, http.StatusNotFound, "no archived result %q (archive IDs look like \"sweep:<hash>\")", id)
		return
	}
	e, ok := s.cache.replay(Key{ID: id})
	if !ok {
		writeError(w, http.StatusNotFound, "no archived result %q", id)
		return
	}
	writeEntry(w, r, e)
}
