package mpi

import (
	"testing"

	"netpart/internal/torus"
)

func TestScatter(t *testing.T) {
	cfg := Config{Topology: torus.MustNew(4)}
	_, err := Run(cfg, func(c *Comm) {
		var blocks [][]float64
		if c.Rank() == 2 {
			blocks = [][]float64{{0}, {10}, {20}, {30}}
		}
		mine := c.Scatter(2, blocks)
		if len(mine) != 1 || mine[0] != float64(10*c.Rank()) {
			t.Errorf("rank %d got %v", c.Rank(), mine)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterWrongBlockCount(t *testing.T) {
	cfg := Config{Topology: torus.MustNew(2)}
	_, err := Run(cfg, func(c *Comm) {
		var blocks [][]float64
		if c.Rank() == 0 {
			blocks = [][]float64{{1}} // too few
		}
		c.Scatter(0, blocks)
	})
	if err == nil {
		t.Error("expected error")
	}
}

func TestScanPrefixSums(t *testing.T) {
	cfg := Config{Topology: torus.MustNew(8), Ranks: 5}
	_, err := Run(cfg, func(c *Comm) {
		mine := []float64{float64(c.Rank() + 1)} // 1..5
		pre := c.Scan(mine, SumOp)
		want := float64((c.Rank() + 1) * (c.Rank() + 2) / 2)
		if pre[0] != want {
			t.Errorf("rank %d scan = %v, want %v", c.Rank(), pre[0], want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanSingleRank(t *testing.T) {
	cfg := Config{Topology: torus.MustNew(2), Ranks: 1}
	_, err := Run(cfg, func(c *Comm) {
		out := c.Scan([]float64{7}, SumOp)
		if out[0] != 7 {
			t.Errorf("scan = %v", out)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatter(t *testing.T) {
	cfg := Config{Topology: torus.MustNew(4)}
	_, err := Run(cfg, func(c *Comm) {
		// Rank r contributes blocks[i] = [r*10 + i].
		blocks := make([][]float64, 4)
		for i := range blocks {
			blocks[i] = []float64{float64(10*c.Rank() + i)}
		}
		out := c.ReduceScatter(blocks, SumOp)
		// out = sum over r of (10r + me) = 10*(0+1+2+3) + 4*me.
		want := float64(60 + 4*c.Rank())
		if len(out) != 1 || out[0] != want {
			t.Errorf("rank %d reduce-scatter = %v, want %v", c.Rank(), out, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterMatchesReduceThenScatter(t *testing.T) {
	cfg := Config{Topology: torus.MustNew(4)}
	_, err := Run(cfg, func(c *Comm) {
		blocks := make([][]float64, 4)
		for i := range blocks {
			blocks[i] = []float64{float64(c.Rank()*i + i + 1), float64(c.Rank() - i)}
		}
		direct := c.ReduceScatter(blocks, SumOp)

		// Reference: allreduce the concatenation, then slice.
		flat := make([]float64, 0, 8)
		for _, b := range blocks {
			flat = append(flat, b...)
		}
		all := c.Allreduce(flat, SumOp)
		ref := all[c.Rank()*2 : c.Rank()*2+2]
		for i := range ref {
			if direct[i] != ref[i] {
				t.Errorf("rank %d: %v vs reference %v", c.Rank(), direct, ref)
				break
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
