// Package mpi is a simulated message-passing layer in the style of MPI,
// running over the flow-level network simulator of package netsim on a
// torus topology routed by package route. Each rank executes as its
// own goroutine against a conservative virtual-time engine: simulated
// time advances only when every live rank is blocked in the engine, so
// results are deterministic regardless of host scheduling and
// GOMAXPROCS — the property that lets the benchmark harness reproduce
// the paper's experiments bit-for-bit across runs.
//
// The layer provides blocking and nonblocking point-to-point
// operations (Send, Recv, Sendrecv, Isend, Irecv, Wait), compute-time
// accounting (Compute), the collectives the CAPS matrix-multiplication
// code needs (Barrier, Bcast, Reduce, Allreduce, Allgather, Alltoall),
// and communicator splitting (Split).
package mpi

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync"

	"netpart/internal/netsim"
	"netpart/internal/route"
	"netpart/internal/torus"
)

// Wildcards for Recv matching.
const (
	// AnySource matches a message from any rank.
	AnySource = -1
	// AnyTag matches a message with any tag.
	AnyTag = -1
)

// Config describes the simulated machine and job layout.
type Config struct {
	// Topology is the node-level torus network (required).
	Topology *torus.Torus
	// Ranks is the number of MPI ranks; defaults to the node count.
	Ranks int
	// RankToNode maps each rank to its compute node; defaults to the
	// identity (requires Ranks <= node count). Multiple ranks may
	// share a node (multi-core placement, as in the paper's Table 3).
	RankToNode []int
	// LinkGBps is the per-direction link bandwidth in GB/s; defaults
	// to the Blue Gene/Q value 2.0 [12].
	LinkGBps float64
	// AlphaSec is the per-message startup latency; defaults to 2e-6.
	AlphaSec float64
	// PerHopSec is the per-hop latency; defaults to 45e-9.
	PerHopSec float64
}

func (c Config) withDefaults() (Config, error) {
	if c.Topology == nil {
		return c, fmt.Errorf("mpi: Config.Topology is required")
	}
	nodes := c.Topology.NumVertices()
	if c.Ranks == 0 {
		c.Ranks = nodes
	}
	if c.Ranks < 1 {
		return c, fmt.Errorf("mpi: invalid rank count %d", c.Ranks)
	}
	if c.RankToNode == nil {
		if c.Ranks > nodes {
			return c, fmt.Errorf("mpi: %d ranks exceed %d nodes and no RankToNode mapping given", c.Ranks, nodes)
		}
		c.RankToNode = make([]int, c.Ranks)
		for i := range c.RankToNode {
			c.RankToNode[i] = i
		}
	}
	if len(c.RankToNode) != c.Ranks {
		return c, fmt.Errorf("mpi: RankToNode has %d entries for %d ranks", len(c.RankToNode), c.Ranks)
	}
	for r, n := range c.RankToNode {
		if n < 0 || n >= nodes {
			return c, fmt.Errorf("mpi: rank %d mapped to invalid node %d", r, n)
		}
	}
	if c.LinkGBps == 0 {
		c.LinkGBps = 2.0
	}
	if c.LinkGBps < 0 {
		return c, fmt.Errorf("mpi: negative link bandwidth")
	}
	if c.AlphaSec == 0 {
		c.AlphaSec = 2e-6
	}
	if c.PerHopSec == 0 {
		c.PerHopSec = 45e-9
	}
	if c.AlphaSec < 0 || c.PerHopSec < 0 {
		return c, fmt.Errorf("mpi: negative latency")
	}
	return c, nil
}

// Stats summarizes a completed run.
type Stats struct {
	// Elapsed is the total simulated wall-clock time in seconds.
	Elapsed float64
	// Messages is the number of point-to-point messages delivered
	// (collectives count their constituent messages).
	Messages int
	// TotalBytes is the total payload volume moved over the network.
	TotalBytes float64
	// MaxLinkBytes is the cumulative volume of the busiest directed
	// link.
	MaxLinkBytes float64
	// ComputeSeconds is the total per-rank compute time accounted via
	// Compute, summed over ranks.
	ComputeSeconds float64
}

type opKind int

const (
	opSend opKind = iota
	opRecv
	opCompute
	opSplit
)

func (k opKind) String() string {
	switch k {
	case opSend:
		return "send"
	case opRecv:
		return "recv"
	case opCompute:
		return "compute"
	case opSplit:
		return "split"
	default:
		return "op?"
	}
}

type op struct {
	kind opKind
	ctx  int // communicator context id
	rank int // issuing global rank
	seq  int64

	// send/recv
	peer  int // destination (send) / source filter (recv), global rank or AnySource
	tag   int
	data  any
	bytes float64

	// recv results
	recvData any
	recvSrc  int
	recvTag  int

	// compute
	dur      float64
	deadline float64

	// split
	color, key int
	newComm    *Comm

	parked bool
	done   bool
	ch     chan struct{}
}

type simError struct{ err error }

type engine struct {
	mu  sync.Mutex
	cfg Config

	router *route.Router
	sim    *netsim.Sim

	now     float64
	nLive   int
	blocked int
	err     error

	pendingSends []*op
	pendingRecvs []*op
	computes     computeHeap
	splits       map[splitKey][]*op
	groupSize    map[int]int // ctx -> member count, for split rendezvous
	nextCtx      int
	seqs         []int64 // per-global-rank op sequence counters

	flowOps map[netsim.FlowID][2]*op // flow -> {send, recv}

	// routeBuf is the reusable DOR route scratch; netsim.StartFlow
	// copies the route, so one buffer serves every flow creation.
	routeBuf []int

	messages       int
	totalBytes     float64
	computeSeconds float64
}

type splitKey struct{ ctx int }

type computeHeap []*op

func (h computeHeap) Len() int           { return len(h) }
func (h computeHeap) Less(i, j int) bool { return h[i].deadline < h[j].deadline }
func (h computeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *computeHeap) Push(x any)        { *h = append(*h, x.(*op)) }
func (h *computeHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Run executes body on every rank of the simulated machine and returns
// the run statistics. body receives the rank's world communicator.
// A panic in any rank's body (including engine-detected deadlock)
// aborts the run and is returned as an error.
func Run(cfg Config, body func(c *Comm)) (Stats, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Stats{}, err
	}
	e := &engine{
		cfg:       cfg,
		router:    route.NewRouter(cfg.Topology),
		splits:    make(map[splitKey][]*op),
		groupSize: make(map[int]int),
		flowOps:   make(map[netsim.FlowID][2]*op),
	}
	e.sim = netsim.New(e.router.NumLinks(), cfg.LinkGBps*1e9)
	e.nLive = cfg.Ranks
	e.groupSize[0] = cfg.Ranks
	e.nextCtx = 1
	e.seqs = make([]int64, cfg.Ranks)

	world := make([]int, cfg.Ranks)
	for i := range world {
		world[i] = i
	}

	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicErr error
	for r := 0; r < cfg.Ranks; r++ {
		comm := &Comm{e: e, ctx: 0, group: world, myIndex: r}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					var perr error
					if se, ok := rec.(simError); ok {
						perr = se.err
					} else {
						perr = fmt.Errorf("mpi: rank %d panicked: %v", comm.myIndex, rec)
					}
					panicOnce.Do(func() { panicErr = perr })
					e.abort(perr)
				}
				e.finishRank()
			}()
			body(comm)
		}()
	}
	wg.Wait()

	e.mu.Lock()
	defer e.mu.Unlock()
	if panicErr != nil {
		return Stats{}, panicErr
	}
	if e.err != nil {
		return Stats{}, e.err
	}
	simStats := e.sim.Stats()
	return Stats{
		Elapsed:        e.now,
		Messages:       e.messages,
		TotalBytes:     e.totalBytes,
		MaxLinkBytes:   simStats.MaxLinkBytes,
		ComputeSeconds: e.computeSeconds,
	}, nil
}

// abort wakes every parked rank with the error; each wakes, observes
// e.err and panics with simError, unwinding its goroutine.
func (e *engine) abort(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return
	}
	e.err = err
	wake := func(ops []*op) {
		for _, o := range ops {
			if o.parked && !o.done {
				o.done = true
				e.blocked--
				close(o.ch)
			}
		}
	}
	wake(e.pendingSends)
	wake(e.pendingRecvs)
	wake(e.computes)
	for _, ops := range e.splits {
		wake(ops)
	}
	for _, pair := range e.flowOps {
		wake(pair[:])
	}
}

// finishRank marks a rank goroutine as exited; remaining ranks may
// then satisfy the all-blocked condition.
func (e *engine) finishRank() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nLive--
	e.stepWhileStuckLocked(nil)
}

// submitLocked registers an op with the engine (lock held).
func (e *engine) submitLocked(o *op) {
	o.ch = make(chan struct{})
	o.seq = e.seqs[o.rank]
	e.seqs[o.rank]++
	switch o.kind {
	case opSend:
		e.pendingSends = append(e.pendingSends, o)
	case opRecv:
		e.pendingRecvs = append(e.pendingRecvs, o)
	case opCompute:
		o.deadline = e.now + o.dur
		e.computeSeconds += o.dur
		heap.Push(&e.computes, o)
	case opSplit:
		k := splitKey{ctx: o.ctx}
		e.splits[k] = append(e.splits[k], o)
	}
}

// parkLocked blocks the calling rank until o completes. Called with
// the lock held; releases it before sleeping. Panics (with the lock
// released) when the engine has aborted.
func (e *engine) parkLocked(o *op) {
	if e.err != nil {
		err := e.err
		e.mu.Unlock()
		panic(simError{err})
	}
	if o.done {
		e.mu.Unlock()
		return
	}
	o.parked = true
	e.blocked++
	e.stepWhileStuckLocked(o)
	if e.err != nil {
		err := e.err
		e.mu.Unlock()
		panic(simError{err})
	}
	done := o.done
	e.mu.Unlock()
	if !done {
		<-o.ch
		e.mu.Lock()
		err := e.err
		e.mu.Unlock()
		if err != nil {
			panic(simError{err})
		}
	}
}

// stepWhileStuckLocked advances simulated time while every live rank
// is blocked. If o is non-nil the loop exits once o completes.
func (e *engine) stepWhileStuckLocked(o *op) {
	for e.err == nil && e.nLive > 0 && e.blocked == e.nLive {
		if o != nil && o.done {
			return
		}
		e.stepLocked()
	}
}

// stepLocked performs one round of matching and advances time to the
// next event, completing ops. Deadlock (no events while everyone is
// blocked) aborts the run.
func (e *engine) stepLocked() {
	e.matchLocked()
	if len(e.splits) > 0 {
		ctxs := make([]int, 0, len(e.splits))
		for k := range e.splits {
			ctxs = append(ctxs, k.ctx)
		}
		sort.Ints(ctxs)
		resolved := false
		for _, ctx := range ctxs {
			if e.completeSplitsLocked(ctx) {
				resolved = true
			}
		}
		if resolved {
			return // splits completed ops; let woken ranks run
		}
	}

	next := math.Inf(1)
	if len(e.computes) > 0 && e.computes[0].deadline < next {
		next = e.computes[0].deadline
	}
	if dt, ok := e.sim.TimeToNextCompletion(); ok && e.now+dt < next {
		next = e.now + dt
	}
	if math.IsInf(next, 1) {
		e.deadlockLocked()
		return
	}
	dt := next - e.now
	if dt < 0 {
		dt = 0
	}
	progressed := false
	for try := 0; ; try++ {
		completedFlows := e.sim.Advance(dt)
		e.now = e.sim.Now()
		for _, fid := range completedFlows {
			pair := e.flowOps[fid]
			delete(e.flowOps, fid)
			// Deliver payload to the receiver.
			pair[1].recvData = pair[0].data
			pair[1].recvSrc = pair[0].rank
			pair[1].recvTag = pair[0].tag
			e.completeLocked(pair[0])
			e.completeLocked(pair[1])
			progressed = true
		}
		for len(e.computes) > 0 && e.computes[0].deadline <= e.now*(1+1e-12)+1e-15 {
			c := heap.Pop(&e.computes).(*op)
			e.completeLocked(c)
			progressed = true
		}
		if progressed || try > 64 {
			break
		}
		// Numerical guard: force a tiny advance so the imminent event
		// actually fires.
		dt = 1e-12 * (1 + e.now)
	}
	if !progressed {
		e.deadlockLocked()
	}
}

func (e *engine) completeLocked(o *op) {
	if o.done {
		return
	}
	o.done = true
	if o.parked {
		e.blocked--
	}
	close(o.ch)
}

// sendKey indexes unmatched sends for exact-match receives.
type sendKey struct{ ctx, dst, src, tag int }

// dstKey indexes unmatched sends for wildcard receives.
type dstKey struct{ ctx, dst int }

// matchLocked pairs pending sends with pending receives
// deterministically: receives are processed in (rank, seq) order; each
// picks the matching send with the smallest (rank, seq). Exact
// receives use a hash index; wildcard receives scan the per-destination
// list. Matched pairs become network flows.
func (e *engine) matchLocked() {
	if len(e.pendingRecvs) == 0 || len(e.pendingSends) == 0 {
		return
	}
	bySeq := func(ops []*op) func(i, j int) bool {
		return func(i, j int) bool {
			a, b := ops[i], ops[j]
			if a.rank != b.rank {
				return a.rank < b.rank
			}
			return a.seq < b.seq
		}
	}
	sort.Slice(e.pendingRecvs, bySeq(e.pendingRecvs))
	sort.Slice(e.pendingSends, bySeq(e.pendingSends))

	exact := make(map[sendKey][]*op)
	byDst := make(map[dstKey][]*op)
	for _, sd := range e.pendingSends {
		ek := sendKey{sd.ctx, sd.peer, sd.rank, sd.tag}
		exact[ek] = append(exact[ek], sd)
		dk := dstKey{sd.ctx, sd.peer}
		byDst[dk] = append(byDst[dk], sd)
	}

	matched := make(map[*op]bool)
	anyMatched := false
	for _, rv := range e.pendingRecvs {
		var found *op
		if rv.peer != AnySource && rv.tag != AnyTag {
			for _, sd := range exact[sendKey{rv.ctx, rv.rank, rv.peer, rv.tag}] {
				if !matched[sd] {
					found = sd
					break
				}
			}
		} else {
			// Wildcard: scan this destination's sends in (rank, seq)
			// order for the first compatible one.
			for _, sd := range byDst[dstKey{rv.ctx, rv.rank}] {
				if matched[sd] {
					continue
				}
				if rv.peer != AnySource && rv.peer != sd.rank {
					continue
				}
				if rv.tag != AnyTag && rv.tag != sd.tag {
					continue
				}
				found = sd
				break
			}
		}
		if found != nil {
			matched[found] = true
			matched[rv] = true
			anyMatched = true
			e.createFlowLocked(found, rv)
		}
	}
	if !anyMatched {
		return
	}
	filter := func(ops []*op) []*op {
		out := ops[:0]
		for _, o := range ops {
			if !matched[o] {
				out = append(out, o)
			}
		}
		return out
	}
	e.pendingSends = filter(e.pendingSends)
	e.pendingRecvs = filter(e.pendingRecvs)
}

func (e *engine) createFlowLocked(sd, rv *op) {
	srcNode := e.cfg.RankToNode[sd.rank]
	dstNode := e.cfg.RankToNode[rv.rank]
	var links []int
	if srcNode != dstNode {
		links = e.router.Route(srcNode, dstNode, e.routeBuf[:0])
		e.routeBuf = links
	}
	latency := e.cfg.AlphaSec + e.cfg.PerHopSec*float64(len(links))
	fid := e.sim.StartFlow(links, sd.bytes, latency)
	e.flowOps[fid] = [2]*op{sd, rv}
	e.messages++
	e.totalBytes += sd.bytes
}

// completeSplitsLocked resolves a communicator split once every member
// has arrived, reporting whether it did.
func (e *engine) completeSplitsLocked(ctx int) bool {
	k := splitKey{ctx: ctx}
	ops := e.splits[k]
	if len(ops) < e.groupSize[ctx] {
		return false
	}
	delete(e.splits, k)
	// Group by color; order members by (key, rank).
	byColor := make(map[int][]*op)
	colors := []int{}
	for _, o := range ops {
		if _, seen := byColor[o.color]; !seen {
			colors = append(colors, o.color)
		}
		byColor[o.color] = append(byColor[o.color], o)
	}
	sort.Ints(colors)
	for _, c := range colors {
		members := byColor[c]
		sort.Slice(members, func(i, j int) bool {
			a, b := members[i], members[j]
			if a.key != b.key {
				return a.key < b.key
			}
			return a.rank < b.rank
		})
		ctxID := e.nextCtx
		e.nextCtx++
		group := make([]int, len(members))
		for i, m := range members {
			group[i] = m.rank
		}
		e.groupSize[ctxID] = len(members)
		for i, m := range members {
			m.newComm = &Comm{e: e, ctx: ctxID, group: group, myIndex: i}
			e.completeLocked(m)
		}
	}
	return true
}

// deadlockLocked reports an unresolvable blocked state.
func (e *engine) deadlockLocked() {
	msg := fmt.Sprintf("mpi: deadlock at t=%.9fs: %d ranks blocked, no pending events;", e.now, e.blocked)
	describe := func(kind string, ops []*op) string {
		if len(ops) == 0 {
			return ""
		}
		limit := len(ops)
		if limit > 8 {
			limit = 8
		}
		s := fmt.Sprintf(" %d unmatched %s [", len(ops), kind)
		for i := 0; i < limit; i++ {
			o := ops[i]
			s += fmt.Sprintf("r%d->r%d tag%d ", o.rank, o.peer, o.tag)
		}
		return s + "]"
	}
	msg += describe("sends", e.pendingSends)
	msg += describe("recvs", e.pendingRecvs)
	for k, ops := range e.splits {
		msg += fmt.Sprintf(" split(ctx %d): %d/%d arrived", k.ctx, len(ops), e.groupSize[k.ctx])
	}
	err := fmt.Errorf("%s", msg)
	e.err = err
	// Wake everyone (they panic with simError on observing e.err).
	wakeAll := func(ops []*op) {
		for _, o := range ops {
			e.completeLocked(o)
		}
	}
	wakeAll(e.pendingSends)
	wakeAll(e.pendingRecvs)
	wakeAll(e.computes)
	e.computes = e.computes[:0]
	for _, ops := range e.splits {
		wakeAll(ops)
	}
	for _, pair := range e.flowOps {
		wakeAll(pair[:])
	}
}
