package mpi

import (
	"math"
	"runtime"
	"strings"
	"testing"

	"netpart/internal/route"
	"netpart/internal/torus"
)

func line4() Config {
	return Config{Topology: torus.MustNew(4)}
}

func TestConfigDefaults(t *testing.T) {
	cfg, err := line4().withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Ranks != 4 || cfg.LinkGBps != 2.0 || cfg.AlphaSec != 2e-6 || cfg.PerHopSec != 45e-9 {
		t.Errorf("defaults: %+v", cfg)
	}
	if len(cfg.RankToNode) != 4 || cfg.RankToNode[3] != 3 {
		t.Errorf("identity mapping: %v", cfg.RankToNode)
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := Run(Config{}, func(c *Comm) {}); err == nil {
		t.Error("missing topology should fail")
	}
	if _, err := Run(Config{Topology: torus.MustNew(2), Ranks: 5}, func(c *Comm) {}); err == nil {
		t.Error("more ranks than nodes without mapping should fail")
	}
	if _, err := Run(Config{Topology: torus.MustNew(2), Ranks: 2, RankToNode: []int{0}}, func(c *Comm) {}); err == nil {
		t.Error("short mapping should fail")
	}
	if _, err := Run(Config{Topology: torus.MustNew(2), Ranks: 1, RankToNode: []int{7}}, func(c *Comm) {}); err == nil {
		t.Error("invalid node should fail")
	}
	if _, err := Run(Config{Topology: torus.MustNew(2), LinkGBps: -1}, func(c *Comm) {}); err == nil {
		t.Error("negative bandwidth should fail")
	}
}

func TestPingPong(t *testing.T) {
	cfg := Config{Topology: torus.MustNew(4), AlphaSec: 1e-6, PerHopSec: 1e-7, LinkGBps: 2.0}
	const bytes = 2e9 // 1 second at 2 GB/s
	stats, err := Run(cfg, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 7, "hello", bytes)
			data, st := c.Recv(1, 8)
			if data.(string) != "world" || st.Source != 1 || st.Tag != 8 {
				t.Errorf("reply: %v %+v", data, st)
			}
		case 1:
			data, st := c.Recv(0, 7)
			if data.(string) != "hello" || st.Source != 0 || st.Tag != 7 {
				t.Errorf("message: %v %+v", data, st)
			}
			c.Send(0, 8, "world", bytes)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two sequential 1-second transfers (latency floor is far below).
	if math.Abs(stats.Elapsed-2.0) > 1e-6 {
		t.Errorf("elapsed = %v, want 2.0", stats.Elapsed)
	}
	if stats.Messages != 2 || stats.TotalBytes != 2*bytes {
		t.Errorf("stats: %+v", stats)
	}
}

func TestLatencyFloor(t *testing.T) {
	cfg := Config{Topology: torus.MustNew(4), AlphaSec: 1e-3, PerHopSec: 0}
	stats, err := Run(cfg, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 1, nil, 8) // tiny message: latency-bound
		case 1:
			c.Recv(0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// PerHopSec zero means "default", so allow the default per-hop cost.
	if math.Abs(stats.Elapsed-1e-3) > 1e-6 {
		t.Errorf("elapsed = %v, want ~1e-3", stats.Elapsed)
	}
}

func TestSendrecvBidirectionalNoContention(t *testing.T) {
	// Directed links: simultaneous opposite transfers do not share
	// capacity, so the exchange takes one transfer time.
	cfg := Config{Topology: torus.MustNew(4), LinkGBps: 2.0}
	const bytes = 2e9
	stats, err := Run(cfg, func(c *Comm) {
		if c.Rank() > 1 {
			return
		}
		peer := 1 - c.Rank()
		data, _ := c.Sendrecv(peer, 3, c.Rank(), bytes, peer, 3)
		if data.(int) != peer {
			t.Errorf("rank %d received %v", c.Rank(), data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats.Elapsed-1.0) > 1e-5 {
		t.Errorf("elapsed = %v, want ~1.0", stats.Elapsed)
	}
}

func TestContentionSharedLink(t *testing.T) {
	// Ranks 0 and 1 both send to their +1 neighbour... on a ring of 4
	// with DOR, 0->1 uses link (0,+) and 1->2 uses link (1,+): no
	// sharing. To force sharing, send 0->2 and 0->... use two messages
	// from rank 0's node: both traverse link (0,+).
	tor := torus.MustNew(4)
	cfg := Config{Topology: tor, Ranks: 4, RankToNode: []int{0, 0, 2, 2}, LinkGBps: 2.0}
	const bytes = 2e9
	stats, err := Run(cfg, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(2, 1, nil, bytes)
		case 1:
			c.Send(3, 1, nil, bytes)
		case 2:
			c.Recv(0, 1)
		case 3:
			c.Recv(1, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both flows share links (0,+) and (1,+): 2 flows at 1 GB/s each ->
	// 2 seconds.
	if math.Abs(stats.Elapsed-2.0) > 1e-5 {
		t.Errorf("elapsed = %v, want ~2.0", stats.Elapsed)
	}
	_ = stats
}

func TestComputeOverlap(t *testing.T) {
	cfg := line4()
	stats, err := Run(cfg, func(c *Comm) {
		c.Compute(float64(c.Rank()) * 0.5)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Computes overlap: elapsed = max = 1.5; total accounted = 3.0.
	if math.Abs(stats.Elapsed-1.5) > 1e-9 {
		t.Errorf("elapsed = %v, want 1.5", stats.Elapsed)
	}
	if math.Abs(stats.ComputeSeconds-3.0) > 1e-9 {
		t.Errorf("compute seconds = %v, want 3.0", stats.ComputeSeconds)
	}
}

func TestFIFOOrdering(t *testing.T) {
	cfg := line4()
	_, err := Run(cfg, func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < 5; i++ {
				c.Send(1, 4, i, 8)
			}
		case 1:
			for i := 0; i < 5; i++ {
				data, _ := c.Recv(0, 4)
				if data.(int) != i {
					t.Errorf("message %d arrived out of order: %v", i, data)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWildcards(t *testing.T) {
	cfg := line4()
	_, err := Run(cfg, func(c *Comm) {
		switch c.Rank() {
		case 1, 2, 3:
			c.Send(0, c.Rank(), c.Rank()*10, 8)
		case 0:
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				data, st := c.Recv(AnySource, AnyTag)
				if data.(int) != st.Source*10 || st.Tag != st.Source {
					t.Errorf("mismatched wildcard recv: %v %+v", data, st)
				}
				if seen[st.Source] {
					t.Errorf("duplicate source %d", st.Source)
				}
				seen[st.Source] = true
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	cfg := line4()
	_, err := Run(cfg, func(c *Comm) {
		if c.Rank() == 0 {
			c.Recv(1, 9) // no one sends
		}
	})
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("error %q should mention deadlock", err)
	}
}

func TestRankPanicPropagates(t *testing.T) {
	cfg := line4()
	_, err := Run(cfg, func(c *Comm) {
		if c.Rank() == 2 {
			panic("boom")
		}
		if c.Rank() == 0 {
			c.Recv(1, 1) // would deadlock; must be aborted by the panic
		}
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("expected panic error, got %v", err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	cfg := line4()
	var after [4]float64
	_, err := Run(cfg, func(c *Comm) {
		c.Compute(float64(c.Rank()) * 0.25) // stagger arrivals
		c.Barrier()
		after[c.Rank()] = c.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	// No rank may leave the barrier before the slowest arrival (0.75s).
	for r, ts := range after {
		if ts < 0.75 {
			t.Errorf("rank %d left barrier at %v, before slowest arrival", r, ts)
		}
	}
}

func TestBcast(t *testing.T) {
	cfg := Config{Topology: torus.MustNew(8)}
	_, err := Run(cfg, func(c *Comm) {
		buf := make([]float64, 4)
		if c.Rank() == 3 {
			copy(buf, []float64{1, 2, 3, 4})
		}
		c.Bcast(3, buf)
		for i, v := range buf {
			if v != float64(i+1) {
				t.Errorf("rank %d buf[%d] = %v", c.Rank(), i, v)
				break
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	cfg := Config{Topology: torus.MustNew(8), Ranks: 7} // non-power-of-2
	_, err := Run(cfg, func(c *Comm) {
		mine := []float64{float64(c.Rank()), 1}
		sum := c.Reduce(2, mine, SumOp)
		if c.Rank() == 2 {
			if sum[0] != 21 || sum[1] != 7 { // 0+..+6=21
				t.Errorf("reduce = %v", sum)
			}
		} else if sum != nil {
			t.Errorf("non-root got %v", sum)
		}
		all := c.Allreduce(mine, SumOp)
		if all[0] != 21 || all[1] != 7 {
			t.Errorf("allreduce = %v at rank %d", all, c.Rank())
		}
		mx := c.Allreduce(mine, MaxOp)
		if mx[0] != 6 || mx[1] != 1 {
			t.Errorf("allreduce max = %v", mx)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	cfg := Config{Topology: torus.MustNew(5)}
	_, err := Run(cfg, func(c *Comm) {
		mine := []float64{float64(c.Rank() * 100)}
		all := c.Allgather(mine)
		if len(all) != 5 {
			t.Fatalf("allgather size %d", len(all))
		}
		for r, blk := range all {
			if len(blk) != 1 || blk[0] != float64(r*100) {
				t.Errorf("rank %d block %d = %v", c.Rank(), r, blk)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	cfg := Config{Topology: torus.MustNew(4)}
	_, err := Run(cfg, func(c *Comm) {
		blocks := make([][]float64, 4)
		for j := range blocks {
			blocks[j] = []float64{float64(10*c.Rank() + j)}
		}
		out := c.Alltoall(blocks)
		for i, blk := range out {
			want := float64(10*i + c.Rank())
			if len(blk) != 1 || blk[0] != want {
				t.Errorf("rank %d out[%d] = %v, want %v", c.Rank(), i, blk, want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	cfg := Config{Topology: torus.MustNew(4)}
	_, err := Run(cfg, func(c *Comm) {
		out := c.Gather(1, []float64{float64(c.Rank())})
		if c.Rank() == 1 {
			for r := 0; r < 4; r++ {
				if out[r][0] != float64(r) {
					t.Errorf("gather[%d] = %v", r, out[r])
				}
			}
		} else if out != nil {
			t.Error("non-root gather should be nil")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplit(t *testing.T) {
	cfg := Config{Topology: torus.MustNew(8)}
	_, err := Run(cfg, func(c *Comm) {
		// Even/odd split, ordered by descending rank via key.
		sub := c.Split(c.Rank()%2, -c.Rank())
		if sub.Size() != 4 {
			t.Fatalf("subcomm size %d", sub.Size())
		}
		// Ranks ordered by key: descending global rank.
		wantGlobal := []int{6, 4, 2, 0}
		if c.Rank()%2 == 1 {
			wantGlobal = []int{7, 5, 3, 1}
		}
		if sub.GlobalRank() != c.Rank() {
			t.Errorf("global rank %d != %d", sub.GlobalRank(), c.Rank())
		}
		if got := sub.group[sub.Rank()]; got != c.Rank() {
			t.Errorf("group[%d] = %d, want %d", sub.Rank(), got, c.Rank())
		}
		for i, g := range sub.group {
			if g != wantGlobal[i] {
				t.Errorf("subgroup %v, want %v", sub.group, wantGlobal)
				break
			}
		}
		// Communication within the subcommunicator.
		sum := sub.Allreduce([]float64{float64(c.Rank())}, SumOp)
		want := 12.0 // 0+2+4+6
		if c.Rank()%2 == 1 {
			want = 16.0
		}
		if sum[0] != want {
			t.Errorf("subcomm allreduce = %v, want %v", sum[0], want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitTagIsolation(t *testing.T) {
	// Same tags in different communicators must not cross-match.
	cfg := Config{Topology: torus.MustNew(4)}
	_, err := Run(cfg, func(c *Comm) {
		sub := c.Split(c.Rank()%2, c.Rank())
		// In each subcomm: rank 0 sends to rank 1 with tag 5.
		if sub.Rank() == 0 {
			sub.Send(1, 5, c.Rank(), 8)
		} else {
			data, _ := sub.Recv(0, 5)
			// Even subcomm: sender global 0; odd: global 1.
			want := c.Rank() % 2
			if data.(int) != want {
				t.Errorf("cross-communicator leak: got %v, want %v", data, want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(procs int) Stats {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		tor := torus.MustNew(8, 2)
		cfg := Config{Topology: tor}
		stats, err := Run(cfg, func(c *Comm) {
			r := route.NewRouter(tor)
			peer := r.FurthestNode(c.e.cfg.RankToNode[c.GlobalRank()])
			for round := 0; round < 3; round++ {
				c.Sendrecv(peer, 1, nil, 1e8, peer, 1)
			}
			c.Compute(1e-3)
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	a := run(1)
	b := run(runtime.NumCPU())
	if a.Elapsed != b.Elapsed || a.Messages != b.Messages || a.TotalBytes != b.TotalBytes {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestPairingMatchesStaticPrediction runs the furthest-node pairing on
// a small torus through the full goroutine engine and checks the
// elapsed time equals the static bottleneck model — the consistency
// underlying Figures 3 and 4.
func TestPairingMatchesStaticPrediction(t *testing.T) {
	tor := torus.MustNew(8, 4, 2)
	cfg := Config{Topology: tor, AlphaSec: 1e-9, PerHopSec: 0}
	const bytes = 2e9
	r := route.NewRouter(tor)
	stats, err := Run(cfg, func(c *Comm) {
		me := c.GlobalRank()
		peer := r.FurthestNode(me)
		c.Sendrecv(peer, 1, nil, bytes, peer, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	demands := make([]route.Demand, tor.NumVertices())
	for v := range demands {
		demands[v] = route.Demand{Src: v, Dst: r.FurthestNode(v), Bytes: bytes}
	}
	want := r.PredictTransferTime(demands, 2e9)
	if math.Abs(stats.Elapsed-want)/want > 1e-6 {
		t.Errorf("simulated %v vs static prediction %v", stats.Elapsed, want)
	}
}

func TestInvalidArgsPanicBecomeErrors(t *testing.T) {
	cases := map[string]func(c *Comm){
		"bad dst":      func(c *Comm) { c.Send(99, 1, nil, 8) },
		"neg bytes":    func(c *Comm) { c.Send(0, 1, nil, -8) },
		"neg tag":      func(c *Comm) { c.Send(0, -3, nil, 8) },
		"neg compute":  func(c *Comm) { c.Compute(-1) },
		"bad recv src": func(c *Comm) { c.Recv(99, 1) },
	}
	for name, body := range cases {
		_, err := Run(line4(), func(c *Comm) {
			if c.Rank() == 0 {
				body(c)
			}
		})
		if err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMultiRankPerNode(t *testing.T) {
	// Two ranks per node; messages between co-located ranks cost only
	// latency.
	tor := torus.MustNew(2)
	cfg := Config{Topology: tor, Ranks: 4, RankToNode: []int{0, 0, 1, 1}, AlphaSec: 1e-6}
	stats, err := Run(cfg, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 1, nil, 1e9)
		case 1:
			c.Recv(0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats.Elapsed-1e-6) > 1e-12 {
		t.Errorf("intra-node transfer took %v, want latency only", stats.Elapsed)
	}
}

func BenchmarkEngineSendrecvRound(b *testing.B) {
	tor := torus.MustNew(8, 4, 4, 4, 2) // 2 midplanes, 1024 nodes
	r := route.NewRouter(tor)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := Run(Config{Topology: tor}, func(c *Comm) {
			peer := r.FurthestNode(c.GlobalRank())
			c.Sendrecv(peer, 1, nil, 1e8, peer, 1)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
