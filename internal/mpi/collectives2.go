package mpi

import "fmt"

// Additional collectives: Scatter, Scan and ReduceScatter, rounding
// out the set a CAPS-style dense linear algebra code touches.
const (
	tagScatter = collTagBase + 16 + iota
	tagScan
	tagReduceScatter
)

// Scatter distributes root's blocks: rank i receives blocks[i]
// (blocks is consulted only at root). Linear algorithm.
func (c *Comm) Scatter(root int, blocks [][]float64) []float64 {
	p := c.Size()
	me := c.Rank()
	c.checkPeer(root, false)
	if me == root {
		if len(blocks) != p {
			panic(fmt.Sprintf("mpi: Scatter needs %d blocks, got %d", p, len(blocks)))
		}
		for i := 0; i < p; i++ {
			if i == root {
				continue
			}
			c.Send(i, tagScatter, append([]float64(nil), blocks[i]...), float64(8*len(blocks[i])))
		}
		return append([]float64(nil), blocks[root]...)
	}
	data, _ := c.Recv(root, tagScatter)
	blk, ok := data.([]float64)
	if !ok {
		panic(fmt.Sprintf("mpi: Scatter expects []float64 payload, got %T", data))
	}
	return blk
}

// Scan computes the inclusive prefix reduction: rank i receives
// op(buf_0, ..., buf_i). Linear-chain algorithm (the dependency is
// inherently sequential).
func (c *Comm) Scan(buf []float64, op ReduceOp) []float64 {
	p := c.Size()
	me := c.Rank()
	acc := append([]float64(nil), buf...)
	if me > 0 {
		data, _ := c.Recv(me-1, tagScan)
		prev, ok := data.([]float64)
		if !ok {
			panic(fmt.Sprintf("mpi: Scan expects []float64 payload, got %T", data))
		}
		if len(prev) != len(acc) {
			panic(fmt.Sprintf("mpi: Scan length mismatch %d vs %d", len(prev), len(acc)))
		}
		// acc = prev op buf, preserving order: accumulate prev into a
		// copy of itself then add ours.
		tmp := append([]float64(nil), prev...)
		op(tmp, acc)
		acc = tmp
	}
	if me+1 < p {
		c.Send(me+1, tagScan, append([]float64(nil), acc...), float64(8*len(acc)))
	}
	return acc
}

// ReduceScatter reduces blocks element-wise across ranks and scatters
// the result: rank i receives op-combination of every rank's
// blocks[i]. Implemented as pairwise exchange-and-accumulate over
// p-1 steps.
func (c *Comm) ReduceScatter(blocks [][]float64, op ReduceOp) []float64 {
	p := c.Size()
	me := c.Rank()
	if len(blocks) != p {
		panic(fmt.Sprintf("mpi: ReduceScatter needs %d blocks, got %d", p, len(blocks)))
	}
	acc := append([]float64(nil), blocks[me]...)
	for step := 1; step < p; step++ {
		dst := (me + step) % p
		src := (me - step + p) % p
		blk := blocks[dst]
		data, _ := c.Sendrecv(dst, tagReduceScatter, append([]float64(nil), blk...), float64(8*len(blk)), src, tagReduceScatter)
		recv, ok := data.([]float64)
		if !ok {
			panic(fmt.Sprintf("mpi: ReduceScatter expects []float64 payload, got %T", data))
		}
		if len(recv) != len(acc) {
			panic(fmt.Sprintf("mpi: ReduceScatter length mismatch %d vs %d", len(recv), len(acc)))
		}
		op(acc, recv)
	}
	return acc
}
