package mpi

import (
	"fmt"
	"math"
)

// Comm is a communicator: an ordered group of ranks with an isolated
// tag space. Every method must be called from the owning rank's
// goroutine inside Run.
type Comm struct {
	e       *engine
	ctx     int
	group   []int // global ranks, ordered
	myIndex int   // this rank's index within group
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.myIndex }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// GlobalRank returns the caller's rank in the world communicator.
func (c *Comm) GlobalRank() int { return c.group[c.myIndex] }

// Now returns the current simulated time in seconds.
func (c *Comm) Now() float64 {
	c.e.mu.Lock()
	defer c.e.mu.Unlock()
	return c.e.now
}

// Status describes a received message.
type Status struct {
	// Source is the sender's rank within the communicator.
	Source int
	// Tag is the message tag.
	Tag int
}

func (c *Comm) checkPeer(peer int, wildcardOK bool) {
	if wildcardOK && peer == AnySource {
		return
	}
	if peer < 0 || peer >= len(c.group) {
		panic(fmt.Sprintf("mpi: peer rank %d out of range [0,%d)", peer, len(c.group)))
	}
}

// globalOf translates a communicator rank to a global rank.
func (c *Comm) globalOf(rank int) int { return c.group[rank] }

// localOf translates a global rank to a communicator rank (-1 if not a
// member).
func (c *Comm) localOf(global int) int {
	for i, g := range c.group {
		if g == global {
			return i
		}
	}
	return -1
}

// Request is a handle for a nonblocking operation.
type Request struct {
	o *op
	c *Comm
}

// Send delivers data (bytes long) to rank dst with the given tag,
// blocking until the transfer completes (rendezvous semantics: the
// matching Recv must be posted and the message fully drained through
// the network).
func (c *Comm) Send(dst, tag int, data any, bytes float64) {
	r := c.Isend(dst, tag, data, bytes)
	r.Wait()
}

// Isend starts a nonblocking send and returns a request to Wait on.
func (c *Comm) Isend(dst, tag int, data any, bytes float64) *Request {
	c.checkPeer(dst, false)
	if bytes < 0 || math.IsNaN(bytes) {
		panic(fmt.Sprintf("mpi: invalid message size %v", bytes))
	}
	if tag < 0 {
		panic(fmt.Sprintf("mpi: negative tag %d", tag))
	}
	o := &op{
		kind:  opSend,
		ctx:   c.ctx,
		rank:  c.GlobalRank(),
		peer:  c.globalOf(dst),
		tag:   tag,
		data:  data,
		bytes: bytes,
	}
	c.e.mu.Lock()
	if c.e.err != nil {
		err := c.e.err
		c.e.mu.Unlock()
		panic(simError{err})
	}
	c.e.submitLocked(o)
	c.e.mu.Unlock()
	return &Request{o: o, c: c}
}

// Recv blocks until a message matching (src, tag) arrives and returns
// its payload and status. src may be AnySource and tag AnyTag.
func (c *Comm) Recv(src, tag int) (any, Status) {
	r := c.Irecv(src, tag)
	return r.WaitRecv()
}

// Irecv posts a nonblocking receive.
func (c *Comm) Irecv(src, tag int) *Request {
	c.checkPeer(src, true)
	if tag < 0 && tag != AnyTag {
		panic(fmt.Sprintf("mpi: negative tag %d", tag))
	}
	peer := AnySource
	if src != AnySource {
		peer = c.globalOf(src)
	}
	o := &op{
		kind: opRecv,
		ctx:  c.ctx,
		rank: c.GlobalRank(),
		peer: peer,
		tag:  tag,
	}
	c.e.mu.Lock()
	if c.e.err != nil {
		err := c.e.err
		c.e.mu.Unlock()
		panic(simError{err})
	}
	c.e.submitLocked(o)
	c.e.mu.Unlock()
	return &Request{o: o, c: c}
}

// Wait blocks until the request completes.
func (r *Request) Wait() {
	r.c.e.mu.Lock()
	r.c.e.parkLocked(r.o) // unlocks
}

// WaitRecv blocks until a receive request completes and returns the
// payload and status.
func (r *Request) WaitRecv() (any, Status) {
	r.Wait()
	src := r.c.localOf(r.o.recvSrc)
	return r.o.recvData, Status{Source: src, Tag: r.o.recvTag}
}

// Done reports whether the request has completed without blocking.
func (r *Request) Done() bool {
	r.c.e.mu.Lock()
	defer r.c.e.mu.Unlock()
	return r.o.done
}

// Sendrecv simultaneously sends to dst and receives from src (both
// with the same tag), the primitive of the bisection-pairing
// benchmark. It blocks until both complete and returns the received
// payload.
func (c *Comm) Sendrecv(dst, sendTag int, data any, bytes float64, src, recvTag int) (any, Status) {
	sreq := c.Isend(dst, sendTag, data, bytes)
	rreq := c.Irecv(src, recvTag)
	payload, st := rreq.WaitRecv()
	sreq.Wait()
	return payload, st
}

// Compute advances the caller's simulated clock by the given number of
// seconds of local computation.
func (c *Comm) Compute(seconds float64) {
	if seconds < 0 || math.IsNaN(seconds) {
		panic(fmt.Sprintf("mpi: invalid compute time %v", seconds))
	}
	o := &op{kind: opCompute, ctx: c.ctx, rank: c.GlobalRank(), dur: seconds}
	c.e.mu.Lock()
	if c.e.err != nil {
		err := c.e.err
		c.e.mu.Unlock()
		panic(simError{err})
	}
	c.e.submitLocked(o)
	c.e.parkLocked(o) // unlocks
}

// Split partitions the communicator: ranks passing the same color form
// a new communicator, ordered by (key, rank). Every rank of c must
// call Split. Communicator construction is treated as free in
// simulated time.
func (c *Comm) Split(color, key int) *Comm {
	o := &op{kind: opSplit, ctx: c.ctx, rank: c.GlobalRank(), color: color, key: key}
	c.e.mu.Lock()
	if c.e.err != nil {
		err := c.e.err
		c.e.mu.Unlock()
		panic(simError{err})
	}
	c.e.submitLocked(o)
	c.e.parkLocked(o) // unlocks
	return o.newComm
}
