package mpi

import "fmt"

// Collective operations implemented over point-to-point messaging with
// the standard algorithms (dissemination barrier, binomial trees, ring
// allgather, pairwise all-to-all), so their network cost is simulated
// faithfully rather than modeled. Tags above collTagBase are reserved;
// user point-to-point traffic must use smaller tags.
const collTagBase = 1 << 20

const (
	tagBarrier = collTagBase + iota
	tagBcast
	tagReduce
	tagAllgather
	tagAlltoall
	tagGather
)

// ReduceOp combines src into acc element-wise; both slices have equal
// length.
type ReduceOp func(acc, src []float64)

// SumOp accumulates element-wise sums.
func SumOp(acc, src []float64) {
	for i := range acc {
		acc[i] += src[i]
	}
}

// MaxOp accumulates element-wise maxima.
func MaxOp(acc, src []float64) {
	for i := range acc {
		if src[i] > acc[i] {
			acc[i] = src[i]
		}
	}
}

// Barrier blocks until every rank of the communicator has entered it,
// using the dissemination algorithm: ceil(log2 p) rounds of zero-byte
// messages to exponentially growing offsets.
func (c *Comm) Barrier() {
	p := c.Size()
	me := c.Rank()
	for k := 1; k < p; k <<= 1 {
		dst := (me + k) % p
		src := (me - k + p) % p
		sreq := c.Isend(dst, tagBarrier, nil, 0)
		rreq := c.Irecv(src, tagBarrier)
		rreq.Wait()
		sreq.Wait()
	}
}

// Bcast distributes root's buf to every rank's buf (overwriting it)
// along a binomial tree. All ranks must pass buffers of equal length.
func (c *Comm) Bcast(root int, buf []float64) {
	p := c.Size()
	c.checkPeer(root, false)
	if p == 1 {
		return
	}
	me := c.Rank()
	rel := (me - root + p) % p
	bytes := float64(8 * len(buf))

	// Receive from parent (highest set bit of rel).
	if rel != 0 {
		mask := 1
		for mask<<1 <= rel {
			mask <<= 1
		}
		parent := (rel - mask + root) % p
		data, _ := c.Recv(parent, tagBcast)
		copyPayload(buf, data)
	}
	// Forward to children.
	mask := 1
	for mask <= rel {
		mask <<= 1
	}
	for ; mask < p; mask <<= 1 {
		childRel := rel + mask
		if childRel >= p {
			break
		}
		child := (childRel + root) % p
		c.Send(child, tagBcast, append([]float64(nil), buf...), bytes)
	}
}

// Reduce combines every rank's buf with op down a binomial tree and
// returns the result at root (nil elsewhere). buf is not modified.
func (c *Comm) Reduce(root int, buf []float64, op ReduceOp) []float64 {
	p := c.Size()
	c.checkPeer(root, false)
	acc := append([]float64(nil), buf...)
	if p == 1 {
		return acc
	}
	me := c.Rank()
	rel := (me - root + p) % p
	bytes := float64(8 * len(buf))

	for mask := 1; mask < p; mask <<= 1 {
		if rel&mask != 0 {
			parent := (rel - mask + root) % p
			c.Send(parent, tagReduce, acc, bytes)
			return nil
		}
		childRel := rel + mask
		if childRel < p {
			child := (childRel + root) % p
			data, _ := c.Recv(child, tagReduce)
			src, ok := data.([]float64)
			if !ok {
				panic(fmt.Sprintf("mpi: Reduce expects []float64 payload, got %T", data))
			}
			if len(src) != len(acc) {
				panic(fmt.Sprintf("mpi: Reduce length mismatch: %d vs %d", len(src), len(acc)))
			}
			op(acc, src)
		}
	}
	return acc
}

// Allreduce combines every rank's buf with op and returns the result
// on all ranks (Reduce to rank 0 followed by Bcast).
func (c *Comm) Allreduce(buf []float64, op ReduceOp) []float64 {
	res := c.Reduce(0, buf, op)
	if c.Rank() != 0 {
		res = make([]float64, len(buf))
	}
	c.Bcast(0, res)
	return res
}

// Allgather collects every rank's mine slice; the result is indexed by
// rank. Uses the ring algorithm: p-1 steps, each forwarding the block
// received in the previous step.
func (c *Comm) Allgather(mine []float64) [][]float64 {
	p := c.Size()
	me := c.Rank()
	out := make([][]float64, p)
	out[me] = append([]float64(nil), mine...)
	if p == 1 {
		return out
	}
	right := (me + 1) % p
	left := (me - 1 + p) % p
	sendBlock := me
	for step := 0; step < p-1; step++ {
		blk := out[sendBlock]
		data, _ := c.Sendrecv(right, tagAllgather, blk, float64(8*len(blk)), left, tagAllgather)
		recvBlock := (sendBlock - 1 + p) % p
		src, ok := data.([]float64)
		if !ok {
			panic(fmt.Sprintf("mpi: Allgather expects []float64 payload, got %T", data))
		}
		out[recvBlock] = src
		sendBlock = recvBlock
	}
	return out
}

// Alltoall exchanges blocks: rank i's blocks[j] is delivered to rank
// j's result[i]. Uses pairwise exchange over p-1 steps.
func (c *Comm) Alltoall(blocks [][]float64) [][]float64 {
	p := c.Size()
	me := c.Rank()
	if len(blocks) != p {
		panic(fmt.Sprintf("mpi: Alltoall needs %d blocks, got %d", p, len(blocks)))
	}
	out := make([][]float64, p)
	out[me] = append([]float64(nil), blocks[me]...)
	for step := 1; step < p; step++ {
		dst := (me + step) % p
		src := (me - step + p) % p
		blk := blocks[dst]
		data, _ := c.Sendrecv(dst, tagAlltoall, blk, float64(8*len(blk)), src, tagAlltoall)
		recv, ok := data.([]float64)
		if !ok {
			panic(fmt.Sprintf("mpi: Alltoall expects []float64 payload, got %T", data))
		}
		out[src] = recv
	}
	return out
}

// Gather collects every rank's mine slice at root (linear algorithm);
// the result is indexed by rank and nil at non-roots.
func (c *Comm) Gather(root int, mine []float64) [][]float64 {
	p := c.Size()
	me := c.Rank()
	c.checkPeer(root, false)
	if me != root {
		c.Send(root, tagGather, append([]float64(nil), mine...), float64(8*len(mine)))
		return nil
	}
	out := make([][]float64, p)
	out[me] = append([]float64(nil), mine...)
	for i := 0; i < p; i++ {
		if i == root {
			continue
		}
		data, _ := c.Recv(i, tagGather)
		src, ok := data.([]float64)
		if !ok {
			panic(fmt.Sprintf("mpi: Gather expects []float64 payload, got %T", data))
		}
		out[i] = src
	}
	return out
}

// copyPayload copies a received []float64 payload into dst.
func copyPayload(dst []float64, data any) {
	src, ok := data.([]float64)
	if !ok {
		panic(fmt.Sprintf("mpi: expected []float64 payload, got %T", data))
	}
	if len(src) != len(dst) {
		panic(fmt.Sprintf("mpi: payload length %d != buffer length %d", len(src), len(dst)))
	}
	copy(dst, src)
}
