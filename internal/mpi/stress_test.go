package mpi

import (
	"math/rand"
	"testing"

	"netpart/internal/torus"
)

// TestRandomMatchedTrafficDeterministic generates random but
// deadlock-free communication scripts (every send has a matching
// receive) and checks that repeated executions agree exactly — the
// virtual-time engine's core guarantee under goroutine scheduling
// noise.
func TestRandomMatchedTrafficDeterministic(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		script := randomScript(16, 40, seed)
		a := runScript(t, script)
		b := runScript(t, script)
		if a.Elapsed != b.Elapsed || a.Messages != b.Messages || a.TotalBytes != b.TotalBytes {
			t.Errorf("seed %d: nondeterministic: %+v vs %+v", seed, a, b)
		}
		if a.Messages != len(script) {
			t.Errorf("seed %d: %d messages delivered, want %d", seed, a.Messages, len(script))
		}
	}
}

// message is one scripted transfer.
type message struct {
	src, dst, tag int
	bytes         float64
	// order indices give each rank a deterministic program order.
	srcSeq, dstSeq int
}

// randomScript builds a random set of messages with per-rank program
// orders that are always satisfiable: each rank issues its sends and
// receives through nonblocking operations and waits at the end, so any
// matching is deadlock-free.
func randomScript(ranks, n int, seed int64) []message {
	rng := rand.New(rand.NewSource(seed))
	msgs := make([]message, 0, n)
	srcCount := make([]int, ranks)
	dstCount := make([]int, ranks)
	for i := 0; i < n; i++ {
		s := rng.Intn(ranks)
		d := rng.Intn(ranks)
		if s == d {
			d = (d + 1) % ranks
		}
		msgs = append(msgs, message{
			src: s, dst: d, tag: rng.Intn(4),
			bytes:  float64(1+rng.Intn(1000)) * 1e4,
			srcSeq: srcCount[s], dstSeq: dstCount[d],
		})
		srcCount[s]++
		dstCount[d]++
	}
	return msgs
}

func runScript(t *testing.T, script []message) Stats {
	t.Helper()
	tor := torus.MustNew(4, 2, 2)
	stats, err := Run(Config{Topology: tor}, func(c *Comm) {
		me := c.Rank()
		var reqs []*Request
		for _, m := range script {
			if m.src == me {
				reqs = append(reqs, c.Isend(m.dst, m.tag, nil, m.bytes))
			}
			if m.dst == me {
				// Ranks divisible by 3 receive exclusively through
				// wildcards (exercising the deterministic tie-break);
				// the rest use explicit receives (exercising the FIFO
				// index). Mixing both on one rank would be a genuine
				// MPI matching race: an earlier-posted wildcard can
				// consume a message a later explicit receive needs.
				if me%3 == 0 {
					reqs = append(reqs, c.Irecv(AnySource, AnyTag))
				} else {
					reqs = append(reqs, c.Irecv(m.src, m.tag))
				}
			}
		}
		for _, r := range reqs {
			r.Wait()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestManyRanksBarrierStorm: a larger engine workout — repeated
// barriers across 256 goroutine ranks complete and stay deterministic.
func TestManyRanksBarrierStorm(t *testing.T) {
	tor := torus.MustNew(8, 8, 4)
	run := func() float64 {
		stats, err := Run(Config{Topology: tor}, func(c *Comm) {
			for i := 0; i < 3; i++ {
				c.Barrier()
				c.Compute(1e-6)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Elapsed
	}
	a := run()
	b := run()
	if a != b {
		t.Errorf("barrier storm nondeterministic: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Error("no time elapsed")
	}
}
