package sched

import (
	"context"
	"reflect"
	"testing"

	"netpart/internal/bgq"
)

// stepperTrace is a workload that exercises the whole event loop:
// contention-bound jobs, backfill candidates, and arrivals spanning a
// hard-outage window and a degrade window.
func stepperTrace() []Job {
	// Sizes that place on JUQUEEN's 7x2x2x2 grid (a cuboid of the
	// requested volume must fit the dimensions).
	sizes := []int{1, 2, 3, 4, 6, 7, 8, 12, 14, 16, 28}
	var jobs []Job
	for i := 0; i < 24; i++ {
		jobs = append(jobs, Job{
			ID:              i,
			Midplanes:       sizes[(i*5)%len(sizes)],
			ArrivalSec:      float64(i * 20),
			BaseDurationSec: 40 + float64((i*13)%90),
			ContentionBound: i%2 == 0,
		})
	}
	return jobs
}

func stepperOutages() []Outage {
	return []Outage{
		{StartSec: 100, EndSec: 220, Cells: []int{0, 1, 2, 3}, Factor: 0},
		{StartSec: 300, EndSec: 500, Cells: []int{8, 9, 10, 11}, Factor: 0.5},
	}
}

// TestStepperMatchesBatch: a Stepper fed the trace incrementally —
// jobs injected in chunks while the clock is mid-flight, time advanced
// in bounded increments, the tail single-stepped — produces a Result
// identical to RunContext's one-call batch schedule.
func TestStepperMatchesBatch(t *testing.T) {
	m := bgq.Juqueen()
	jobs := stepperTrace()
	opts := Options{Backfill: true, Outages: stepperOutages()}
	ctx := context.Background()

	want, err := RunContext(ctx, m, FirstFit{}, jobs, opts)
	if err != nil {
		t.Fatal(err)
	}

	st, err := NewStepper(m, FirstFit{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Chunked injection: each chunk is submitted before the clock
	// reaches its first arrival, the batch-equivalence contract.
	for at := 0; at < len(jobs); at += 6 {
		end := at + 6
		if end > len(jobs) {
			end = len(jobs)
		}
		if err := st.Submit(jobs[at:end]...); err != nil {
			t.Fatal(err)
		}
		if end < len(jobs) {
			if err := st.Advance(ctx, jobs[end].ArrivalSec-1); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Finish by single-stepping: every pending event fires one Step at
	// a time until the schedule is idle.
	for !st.Idle() {
		did, err := st.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !did {
			t.Fatalf("stepper stalled at t=%v with %d queued / %d active", st.Now(), st.Queued(), st.Active())
		}
	}
	got := st.Result()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("incremental schedule differs from batch:\n got %+v\nwant %+v", got, want)
	}
	if st.Kills() != len(want.Kills) {
		t.Errorf("kills %d, want %d", st.Kills(), len(want.Kills))
	}
}

// TestStepperLateSubmission: a job submitted with its arrival already
// in the past is eligible immediately and joins the FCFS queue behind
// earlier arrivals — the clock never runs backwards for it.
func TestStepperLateSubmission(t *testing.T) {
	m := bgq.Juqueen()
	st, err := NewStepper(m, FirstFit{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := st.Submit(Job{ID: 0, Midplanes: 2, ArrivalSec: 0, BaseDurationSec: 100}); err != nil {
		t.Fatal(err)
	}
	if err := st.Advance(ctx, 50); err != nil {
		t.Fatal(err)
	}
	// Arrival 10 is in the past: the job must start at the current
	// clock (50), not rewind.
	if err := st.Submit(Job{ID: 1, Midplanes: 2, ArrivalSec: 10, BaseDurationSec: 20}); err != nil {
		t.Fatal(err)
	}
	if err := st.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	res := st.Result()
	if res.Allocations[1].StartSec != 50 {
		t.Errorf("late job started at %v, want 50", res.Allocations[1].StartSec)
	}
	if !st.Idle() || st.Now() != res.MakespanSec {
		t.Errorf("drained stepper at t=%v idle=%v, want parked at makespan %v", st.Now(), st.Idle(), res.MakespanSec)
	}
}

// TestStepperRejectsBatchWhole: one invalid job poisons its whole
// Submit batch, leaving the queue untouched.
func TestStepperRejectsBatchWhole(t *testing.T) {
	m := bgq.Juqueen()
	st, err := NewStepper(m, FirstFit{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = st.Submit(
		Job{ID: 0, Midplanes: 2, ArrivalSec: 0, BaseDurationSec: 10},
		Job{ID: 1, Midplanes: m.Midplanes() + 1, ArrivalSec: 0, BaseDurationSec: 10},
	)
	if err == nil {
		t.Fatal("batch with a never-fitting job accepted")
	}
	if st.Queued() != 0 {
		t.Fatalf("queue holds %d jobs after a rejected batch", st.Queued())
	}
}
