package sched

import (
	"context"
	"math"
	"sort"
	"sync/atomic"

	"netpart/internal/bgq"
)

// stepperEvents counts scheduler actions (job starts and clock-advance
// events) across every Stepper in the process — a cheap liveness and
// throughput signal for the observability layer, sampled at scrape
// time. Process-wide rather than per-Stepper so the serving layer can
// expose it without threading a handle through every constructor.
var stepperEvents atomic.Uint64

// StepperEventsProcessed returns the process-wide count of scheduler
// actions (starts, completions, boundary and arrival clock advances)
// applied by all Steppers since process start.
func StepperEventsProcessed() uint64 { return stepperEvents.Load() }

// Stepper is the incremental form of the scheduling event loop: the
// exact machinery of RunContext — FCFS head placement with EASY
// backfill, outage boundaries, degrade repricing, hard-outage kill and
// requeue — factored so jobs can be injected while the simulation is
// in flight and the clock advanced in bounded increments. RunContext
// is a Stepper driven to completion in one call, so a Submit-then-
// Drain sequence is byte-identical (same event order, same float
// accumulation order) to the batch run it replaced.
//
// A Stepper is not safe for concurrent use; callers serialize access
// (the cluster session layer wraps one in a mutex).
type Stepper struct {
	m      *bgq.Machine
	policy PlacementPolicy
	opts   Options
	grid   *Grid
	queue  []Job
	active []running
	now    float64
	res    Result

	boundaries []boundary
	masks      [][]bool
	outageOpen []bool
	nextB      int

	// fits memoizes neverFits per midplane count across Submit calls.
	fits        map[int]bool
	jobDuration func(Job, Placement) float64

	// shadowEnds is scratch reused by shadowTime so each backfill
	// admission test does not allocate a fresh slice.
	shadowEnds []Allocation
}

// running is an active allocation plus the dilation it was priced at
// (the product of 1/factor over open degrade windows overlapping its
// placement at the last (re)pricing).
type running struct {
	alloc Allocation
	price float64
}

// boundary is one outage window edge in the time-sorted event list.
type boundary struct {
	timeSec float64
	outage  int
	open    bool
}

// event kinds the clock can advance to.
const (
	evNone = iota
	evFinish
	evBoundary
	evArrival
)

// NewStepper validates the outage windows and prepares an empty
// schedule at time zero. Jobs arrive later via Submit.
func NewStepper(m *bgq.Machine, policy PlacementPolicy, opts Options) (*Stepper, error) {
	st := &Stepper{
		m:      m,
		policy: policy,
		opts:   opts,
		grid:   NewGrid(m),
		res:    Result{Policy: policy.Name()},
		fits:   map[int]bool{},
	}
	for i, o := range opts.Outages {
		if err := validateOutage(i, o, len(st.grid.used)); err != nil {
			return nil, err
		}
	}
	// Outage machinery: per-outage cell masks for overlap tests, a
	// time-sorted boundary list (heals before failures at ties, so a
	// cell leaving one window can immediately enter another), and the
	// open set for pricing.
	st.masks = make([][]bool, len(opts.Outages))
	st.outageOpen = make([]bool, len(opts.Outages))
	for i, o := range opts.Outages {
		if o.Factor == 1 || len(o.Cells) == 0 {
			continue // explicit no-op window
		}
		st.masks[i] = make([]bool, len(st.grid.used))
		for _, c := range o.Cells {
			st.masks[i][c] = true
		}
		st.boundaries = append(st.boundaries, boundary{o.StartSec, i, true})
		if !math.IsInf(o.EndSec, 1) {
			st.boundaries = append(st.boundaries, boundary{o.EndSec, i, false})
		}
	}
	sort.Slice(st.boundaries, func(i, j int) bool {
		a, b := st.boundaries[i], st.boundaries[j]
		if a.timeSec != b.timeSec {
			return a.timeSec < b.timeSec
		}
		if a.open != b.open {
			return !a.open
		}
		return a.outage < b.outage
	})
	// jobDuration applies the configured runtime model (default: the
	// contention-bound bisection stretch) for a placement.
	st.jobDuration = opts.Duration
	if st.jobDuration == nil {
		st.jobDuration = func(job Job, pl Placement) float64 {
			duration := job.BaseDurationSec
			if job.ContentionBound {
				best, _ := m.Best(job.Midplanes)
				duration *= float64(best.BisectionBW()) / float64(pl.Partition().BisectionBW())
			}
			return duration
		}
	}
	return st, nil
}

// Submit validates a batch of jobs and inserts them into the queue.
// The whole batch is rejected (queue untouched) if any job is invalid
// or can never fit the machine. Insertion keeps the queue sorted by
// arrival with ties in submission order — the same order a stable
// sort over all jobs up front would produce, so incremental
// submission reproduces the batch schedule. A job whose arrival is
// already in the past is eligible immediately; it simply joins the
// FCFS queue behind earlier arrivals.
func (st *Stepper) Submit(jobs ...Job) error {
	for _, j := range jobs {
		if err := validateJob(j); err != nil {
			return err
		}
		ok, checked := st.fits[j.Midplanes]
		if !checked {
			ok = !neverFits(st.m, j.Midplanes)
			st.fits[j.Midplanes] = ok
		}
		if !ok {
			return &NeverFitsError{Job: j.ID, Midplanes: j.Midplanes, Machine: st.m.Name}
		}
	}
	for _, j := range jobs {
		pos := sort.Search(len(st.queue), func(k int) bool { return st.queue[k].ArrivalSec > j.ArrivalSec })
		st.queue = append(st.queue, Job{})
		copy(st.queue[pos+1:], st.queue[pos:])
		st.queue[pos] = j
	}
	return nil
}

// Now returns the simulation clock.
func (st *Stepper) Now() float64 { return st.now }

// Queued returns the number of jobs waiting (arrived or future).
func (st *Stepper) Queued() int { return len(st.queue) }

// Active returns the number of running jobs.
func (st *Stepper) Active() int { return len(st.active) }

// Idle reports whether no queued or running work remains.
func (st *Stepper) Idle() bool { return len(st.queue) == 0 && len(st.active) == 0 }

// FreeMidplanes returns the machine's free (unoccupied, unblocked)
// midplane count.
func (st *Stepper) FreeMidplanes() int { return st.grid.FreeMidplanes() }

// Totals exposes the running aggregates of the schedule so far.
func (st *Stepper) Totals() (makespanSec, totalWaitSec, totalRunSec, midplaneSeconds float64) {
	return st.res.MakespanSec, st.res.TotalWaitSec, st.res.TotalRunSec, st.res.MidplaneSeconds
}

// Kills returns the number of hard-outage evictions so far.
func (st *Stepper) Kills() int { return len(st.res.Kills) }

// Result snapshots the schedule so far: allocations sorted by job ID
// (the batch contract), in fresh slices so later stepping does not
// mutate the snapshot.
func (st *Stepper) Result() Result {
	res := st.res
	res.Allocations = append([]Allocation(nil), st.res.Allocations...)
	res.Kills = append([]Kill(nil), st.res.Kills...)
	sort.Slice(res.Allocations, func(i, j int) bool { return res.Allocations[i].Job.ID < res.Allocations[j].Job.ID })
	return res
}

func (st *Stepper) finishEarliest() int {
	best := -1
	for i, r := range st.active {
		if best < 0 || r.alloc.EndSec < st.active[best].alloc.EndSec {
			best = i
		}
	}
	return best
}

func (st *Stepper) overlaps(mask []bool, pl Placement) bool {
	for _, c := range st.grid.cellsOf(pl.Origin, pl.Lens) {
		if mask[c] {
			return true
		}
	}
	return false
}

// price returns the runtime dilation a placement suffers from the
// currently open degrade windows (1 when healthy).
func (st *Stepper) price(pl Placement) float64 {
	p := 1.0
	for i, o := range st.opts.Outages {
		if st.outageOpen[i] && o.Factor > 0 && o.Factor < 1 && st.overlaps(st.masks[i], pl) {
			p /= o.Factor
		}
	}
	return p
}

func (st *Stepper) startJob(job Job, pl Placement, backfilled bool) {
	stepperEvents.Add(1)
	p := st.price(pl)
	duration := st.jobDuration(job, pl) * p
	alloc := Allocation{Job: job, Placement: pl, StartSec: st.now, EndSec: st.now + duration, Backfilled: backfilled}
	st.grid.occupy(job.ID, pl.Origin, pl.Lens)
	st.active = append(st.active, running{alloc, p})
	st.res.TotalWaitSec += st.now - job.ArrivalSec
	st.res.TotalRunSec += duration
	st.res.MidplaneSeconds += float64(job.Midplanes) * duration
	if st.opts.OnStart != nil {
		st.opts.OnStart(alloc)
	}
}

// applyBoundary opens or heals one outage window at the current time:
// hard windows kill overlapping jobs (requeued at the kill time) and
// block/unblock their cells; degrade windows reprice the remaining
// work of every running job whose dilation changed.
func (st *Stepper) applyBoundary(b boundary) {
	o := st.opts.Outages[b.outage]
	if b.open && o.Factor == 0 {
		// Kill overlapping running jobs in deterministic (start order)
		// sequence. A job finishing exactly now is spared — its
		// completion event is already due at this timestamp.
		for i := 0; i < len(st.active); {
			a := st.active[i].alloc
			if a.EndSec > st.now && st.overlaps(st.masks[b.outage], a.Placement) {
				remaining := a.EndSec - st.now
				st.grid.release(a.Job.ID, a.Placement.Origin, a.Placement.Lens)
				st.res.TotalRunSec -= remaining
				st.res.MidplaneSeconds -= float64(a.Job.Midplanes) * remaining
				st.res.Kills = append(st.res.Kills, Kill{Job: a.Job, Placement: a.Placement, StartSec: a.StartSec, KillSec: st.now})
				st.active = append(st.active[:i], st.active[i+1:]...)
				requeued := a.Job
				requeued.ArrivalSec = st.now
				pos := sort.Search(len(st.queue), func(k int) bool { return st.queue[k].ArrivalSec > st.now })
				st.queue = append(st.queue, Job{})
				copy(st.queue[pos+1:], st.queue[pos:])
				st.queue[pos] = requeued
				if st.opts.OnKill != nil {
					st.opts.OnKill(a, st.now, st.grid.FreeMidplanes())
				}
			} else {
				i++
			}
		}
	}
	st.outageOpen[b.outage] = b.open
	if o.Factor == 0 {
		if b.open {
			st.grid.block(o.Cells)
		} else {
			st.grid.unblock(o.Cells)
		}
	} else {
		// Degrade boundary: reprice every running job whose open window
		// set changed. Remaining work scales by the price ratio;
		// elapsed work stays paid.
		for i := range st.active {
			a := &st.active[i].alloc
			newP := st.price(a.Placement)
			oldP := st.active[i].price
			if newP == oldP || a.EndSec <= st.now {
				continue
			}
			remaining := a.EndSec - st.now
			adjusted := remaining * newP / oldP
			a.EndSec = st.now + adjusted
			st.res.TotalRunSec += adjusted - remaining
			st.res.MidplaneSeconds += float64(a.Job.Midplanes) * (adjusted - remaining)
			st.active[i].price = newP
		}
	}
	if st.opts.OnOutage != nil {
		st.opts.OnOutage(b.outage, b.open, st.now, st.grid.FreeMidplanes())
	}
}

// applyDue applies every outage boundary that is due. This runs before
// placement so a window opening at the current instant affects the
// occupancy the queue head sees (including windows at t=0).
func (st *Stepper) applyDue() {
	for st.nextB < len(st.boundaries) && st.boundaries[st.nextB].timeSec <= st.now {
		st.applyBoundary(st.boundaries[st.nextB])
		st.nextB++
	}
}

// shadowTime estimates when the head job could start: the earliest
// completion prefix after which free midplanes cover the request
// (count-based, optimistic about fragmentation — conservative for
// backfill admission because it never overestimates the wait).
func (st *Stepper) shadowTime(need int) float64 {
	free := st.grid.FreeMidplanes()
	if free >= need {
		return st.now
	}
	ends := st.shadowEnds[:0]
	for _, r := range st.active {
		ends = append(ends, r.alloc)
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i].EndSec < ends[j].EndSec })
	st.shadowEnds = ends
	for _, a := range ends {
		free += a.Job.Midplanes
		if free >= need {
			return a.EndSec
		}
	}
	return math.Inf(1)
}

// tryStart attempts to start the head of the queue (strict FCFS), or —
// when the head waits and backfill is on — one later job that is
// guaranteed to finish by the head's shadow time.
func (st *Stepper) tryStart() bool {
	if len(st.queue) == 0 || st.queue[0].ArrivalSec > st.now {
		return false
	}
	job := st.queue[0]
	if pl, ok := st.grid.placeFor(job, st.policy); ok {
		st.startJob(job, pl, false)
		st.queue = st.queue[1:]
		return true
	}
	if !st.opts.Backfill {
		return false
	}
	// The head waits: admit later arrived jobs that finish by the
	// head's shadow time. An infinite shadow (a permanent outage holds
	// the cells the head needs) would admit everything and starve the
	// head, so backfill is skipped entirely.
	shadow := st.shadowTime(job.Midplanes)
	for i := 1; !math.IsInf(shadow, 1) && i < len(st.queue); i++ {
		cand := st.queue[i]
		if cand.ArrivalSec > st.now {
			continue
		}
		pl, ok := st.grid.placeFor(cand, st.policy)
		if !ok {
			continue
		}
		if st.now+st.jobDuration(cand, pl)*st.price(pl) <= shadow {
			st.startJob(cand, pl, true)
			st.queue = append(st.queue[:i], st.queue[i+1:]...)
			return true
		}
	}
	return false
}

// nextEvent selects the next clock advance: a completion, an outage
// boundary or an arrival — in that order at ties, so jobs finishing
// exactly when a window opens complete instead of being killed, and
// healed cells are visible to an arrival at the same instant.
func (st *Stepper) nextEvent() (kind, fi int, t float64) {
	// The queue is sorted by arrival, so the next future arrival is
	// the first entry past the clock.
	nextArrival := -1.0
	if i := sort.Search(len(st.queue), func(k int) bool { return st.queue[k].ArrivalSec > st.now }); i < len(st.queue) {
		nextArrival = st.queue[i].ArrivalSec
	}
	nextBoundary := math.Inf(1)
	if st.nextB < len(st.boundaries) {
		nextBoundary = st.boundaries[st.nextB].timeSec
	}
	fi = st.finishEarliest()
	switch {
	case fi >= 0 && st.active[fi].alloc.EndSec <= nextBoundary && (nextArrival < 0 || st.active[fi].alloc.EndSec <= nextArrival):
		return evFinish, fi, st.active[fi].alloc.EndSec
	case !math.IsInf(nextBoundary, 1) && (nextArrival < 0 || nextBoundary <= nextArrival):
		return evBoundary, -1, nextBoundary
	case nextArrival >= 0:
		return evArrival, -1, nextArrival
	default:
		return evNone, -1, 0
	}
}

// applyEvent advances the clock to the selected event. Completions
// release and record the allocation; boundary and arrival times are
// only clock moves — the top-of-loop applyDue and tryStart act on
// them.
func (st *Stepper) applyEvent(kind, fi int, t float64) {
	stepperEvents.Add(1)
	st.now = t
	if kind != evFinish {
		return
	}
	a := st.active[fi].alloc
	st.grid.release(a.Job.ID, a.Placement.Origin, a.Placement.Lens)
	st.res.Allocations = append(st.res.Allocations, a)
	st.active = append(st.active[:fi], st.active[fi+1:]...)
	if a.EndSec > st.res.MakespanSec {
		st.res.MakespanSec = a.EndSec
	}
	if st.opts.OnFinish != nil {
		st.opts.OnFinish(a)
	}
}

// Step executes the next pending scheduler action — due boundaries,
// one job start, or one clock advance to the next event — and reports
// whether anything happened. False means the schedule is idle (or the
// head is stuck with no event that could unstick it; Drain
// distinguishes the two).
func (st *Stepper) Step(ctx context.Context) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	st.applyDue()
	if st.tryStart() {
		return true, nil
	}
	kind, fi, t := st.nextEvent()
	if kind == evNone {
		return false, nil
	}
	st.applyEvent(kind, fi, t)
	return true, nil
}

// Advance processes every event with a timestamp at or before `to` and
// then moves the clock to `to` (when finite). Unlike Drain it is not
// an error for the queue head to be unplaceable — it simply stays
// queued. The clock never moves backward: `to` before the current time
// only processes work already due.
//
// Advancing in increments is byte-identical to one uninterrupted
// Drain: events fire in the same order at the same times, and the
// extra placement attempts at each horizon are no-ops (nothing new
// arrives or frees between the last event and the horizon, and the
// backfill admission test only gets stricter as the clock grows).
func (st *Stepper) Advance(ctx context.Context, to float64) error {
	if to < st.now {
		to = st.now
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		st.applyDue()
		if st.tryStart() {
			continue
		}
		kind, fi, t := st.nextEvent()
		if kind == evNone || t > to {
			break
		}
		st.applyEvent(kind, fi, t)
	}
	if !math.IsInf(to, 1) && to > st.now {
		st.now = to
	}
	return nil
}

// Drain runs the schedule to completion: the batch semantics of
// RunContext, including its error contract — a head job that can
// never start is a StarvedError (when outage boundaries exist) or a
// NeverFitsError. The context is checked once per event-loop
// iteration.
func (st *Stepper) Drain(ctx context.Context) error {
	for {
		st.applyDue()
		if len(st.queue) == 0 && len(st.active) == 0 {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if st.tryStart() {
			continue
		}
		kind, fi, t := st.nextEvent()
		if kind == evNone {
			if len(st.boundaries) > 0 {
				// The head cannot be placed and nothing will ever free
				// or heal a midplane: a permanent outage starved it.
				return &StarvedError{Job: st.queue[0].ID, Midplanes: st.queue[0].Midplanes, Machine: st.m.Name}
			}
			// Unreachable after the Submit feasibility pass: the head
			// could be placed on an empty machine, and with nothing
			// running and no future arrival the machine is empty.
			return &NeverFitsError{Job: st.queue[0].ID, Midplanes: st.queue[0].Midplanes, Machine: st.m.Name}
		}
		st.applyEvent(kind, fi, t)
	}
}

// Stuck reports whether the queue head is unplaceable with no pending
// event left to change the occupancy — the condition Drain turns into
// an error and session layers surface as a wedged session.
func (st *Stepper) Stuck() bool {
	if st.Idle() || len(st.queue) == 0 || st.queue[0].ArrivalSec > st.now {
		return false
	}
	if kind, _, _ := st.nextEvent(); kind != evNone {
		return false
	}
	return !st.grid.anyFit(st.queue[0].Midplanes)
}
