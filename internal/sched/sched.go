// Package sched implements the paper's §5 "Future Work" proposal: a
// job scheduler whose processor-allocation policy is informed by
// partition bisection bandwidth. It models the midplane grid of a
// Blue Gene/Q machine as a 4D occupancy map, places jobs as cuboids
// (with wrap-around, as the torus wiring permits), and compares a
// geometry-oblivious first-fit policy against a contention-aware
// policy that maximizes the internal bisection of the allocated
// partition for jobs declared contention-bound.
//
// The payoff modeled is the paper's central observation: a
// contention-bound job on a partition with bisection B runs
// best-B / B times longer than on the best geometry of the same size,
// so allocation geometry feeds directly back into queue throughput.
package sched

import (
	"context"
	"fmt"
	"math"
	"sort"

	"netpart/internal/bgq"
	"netpart/internal/torus"
)

// Grid tracks midplane occupancy of a machine.
type Grid struct {
	machine *bgq.Machine
	dims    torus.Shape
	strides []int
	used    []int // job ID + 1, or 0 when free
}

// NewGrid creates an empty occupancy grid for a machine.
func NewGrid(m *bgq.Machine) *Grid {
	dims := m.Grid
	strides := make([]int, len(dims))
	s := 1
	for i := len(dims) - 1; i >= 0; i-- {
		strides[i] = s
		s *= dims[i]
	}
	return &Grid{machine: m, dims: dims, strides: strides, used: make([]int, s)}
}

// Machine returns the underlying machine.
func (g *Grid) Machine() *bgq.Machine { return g.machine }

// FreeMidplanes returns the number of unoccupied midplanes.
func (g *Grid) FreeMidplanes() int {
	n := 0
	for _, u := range g.used {
		if u == 0 {
			n++
		}
	}
	return n
}

// cellsOf enumerates the linear cell indices of a cuboid placement.
func (g *Grid) cellsOf(origin torus.Coord, lens torus.Shape) []int {
	cells := make([]int, 0, lens.Volume())
	var rec func(dim, base int)
	rec = func(dim, base int) {
		if dim == len(g.dims) {
			cells = append(cells, base)
			return
		}
		for off := 0; off < lens[dim]; off++ {
			c := (origin[dim] + off) % g.dims[dim]
			rec(dim+1, base+c*g.strides[dim])
		}
	}
	rec(0, 0)
	return cells
}

// fits reports whether the cuboid placement is entirely free. It is
// the candidate-enumeration hot path (one probe per origin × length
// assignment), so it walks the cells directly — no slice
// materialization — and exits on the first occupied cell.
func (g *Grid) fits(origin torus.Coord, lens torus.Shape) bool {
	var rec func(dim, base int) bool
	rec = func(dim, base int) bool {
		if dim == len(g.dims) {
			return g.used[base] == 0
		}
		for off := 0; off < lens[dim]; off++ {
			c := (origin[dim] + off) % g.dims[dim]
			if !rec(dim+1, base+c*g.strides[dim]) {
				return false
			}
		}
		return true
	}
	return rec(0, 0)
}

// occupy marks a placement as owned by a job.
func (g *Grid) occupy(jobID int, origin torus.Coord, lens torus.Shape) {
	for _, c := range g.cellsOf(origin, lens) {
		if g.used[c] != 0 {
			panic(fmt.Sprintf("sched: double allocation of midplane %d", c))
		}
		g.used[c] = jobID + 1
	}
}

// release frees a job's cells.
func (g *Grid) release(jobID int, origin torus.Coord, lens torus.Shape) {
	for _, c := range g.cellsOf(origin, lens) {
		if g.used[c] != jobID+1 {
			panic(fmt.Sprintf("sched: releasing midplane %d not owned by job %d", c, jobID))
		}
		g.used[c] = 0
	}
}

// Placement is a concrete allocation: cuboid lengths in host dimension
// order plus an origin.
type Placement struct {
	Origin torus.Coord
	Lens   torus.Shape
}

// Partition returns the bgq partition of the placement.
func (p Placement) Partition() bgq.Partition {
	part, err := bgq.NewPartition(p.Lens)
	if err != nil {
		panic(err)
	}
	return part
}

// Candidates enumerates every feasible placement of a midplane count
// on the current occupancy, in deterministic order: geometries
// (canonical order), then length assignments, then origins
// (lexicographic). It is the seam the scenario layer uses to drive
// the placement policies outside a full scheduling run (policy
// selection for a single job on an empty machine).
func (g *Grid) Candidates(midplanes int) []Placement {
	return g.candidates(midplanes)
}

// candidates enumerates every feasible placement of a midplane count,
// in deterministic order: geometries (canonical order), then length
// assignments, then origins (lexicographic).
func (g *Grid) candidates(midplanes int) []Placement {
	var out []Placement
	for _, geo := range torus.EnumerateGeometries(g.dims, len(g.dims), midplanes) {
		for _, lens := range torus.Placements(g.dims, geo) {
			g.forEachOrigin(func(origin torus.Coord) {
				if g.fits(origin, lens) {
					out = append(out, Placement{Origin: origin.Clone(), Lens: lens.Clone()})
				}
			})
		}
	}
	return out
}

func (g *Grid) forEachOrigin(fn func(origin torus.Coord)) {
	origin := make(torus.Coord, len(g.dims))
	var rec func(dim int)
	rec = func(dim int) {
		if dim == len(g.dims) {
			fn(origin)
			return
		}
		for c := 0; c < g.dims[dim]; c++ {
			origin[dim] = c
			rec(dim + 1)
		}
	}
	rec(0)
}

// PlacementPolicy selects a placement from the feasible candidates.
type PlacementPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// Choose picks one of the candidate placements for the job (the
	// candidate list is non-empty and deterministic).
	Choose(job Job, candidates []Placement) Placement
}

// FirstFit takes the first feasible placement — geometry-oblivious,
// the baseline the paper's schedulers approximate when users request
// sizes only.
type FirstFit struct{}

// Name implements PlacementPolicy.
func (FirstFit) Name() string { return "first-fit" }

// Choose implements PlacementPolicy.
func (FirstFit) Choose(_ Job, candidates []Placement) Placement { return candidates[0] }

// BestBisection picks the placement whose partition has maximal
// internal bisection bandwidth (ties: first).
type BestBisection struct{}

// Name implements PlacementPolicy.
func (BestBisection) Name() string { return "best-bisection" }

// Choose implements PlacementPolicy.
func (BestBisection) Choose(_ Job, candidates []Placement) Placement {
	best := candidates[0]
	bestBW := best.Partition().BisectionBW()
	for _, c := range candidates[1:] {
		if bw := c.Partition().BisectionBW(); bw > bestBW {
			best, bestBW = c, bw
		}
	}
	return best
}

// ContentionAware applies BestBisection to jobs that declare
// themselves contention-bound (the user hint of the paper's §5) and
// FirstFit to the rest.
type ContentionAware struct{}

// Name implements PlacementPolicy.
func (ContentionAware) Name() string { return "contention-aware" }

// Choose implements PlacementPolicy.
func (ContentionAware) Choose(job Job, candidates []Placement) Placement {
	if job.ContentionBound {
		return BestBisection{}.Choose(job, candidates)
	}
	return FirstFit{}.Choose(job, candidates)
}

// PolicyByName resolves a policy's Name() spelling to its
// implementation — the single mapping every layer (scenario
// resolution, the trace simulator) shares, so a new policy is wired
// in exactly one place.
func PolicyByName(name string) (PlacementPolicy, bool) {
	switch name {
	case FirstFit{}.Name():
		return FirstFit{}, true
	case BestBisection{}.Name():
		return BestBisection{}, true
	case ContentionAware{}.Name():
		return ContentionAware{}, true
	}
	return nil, false
}

// Job is a queue entry.
type Job struct {
	ID        int
	Midplanes int
	// ArrivalSec is the submission time.
	ArrivalSec float64
	// BaseDurationSec is the runtime on a best-bisection geometry.
	BaseDurationSec float64
	// ContentionBound marks jobs whose runtime stretches by
	// bestBW/allocatedBW on inferior geometries.
	ContentionBound bool
}

// NeverFitsError reports a job that can never be placed: no cuboid of
// the requested midplane count fits the machine even when it is empty.
// The job is rejected up front — a queue whose head can never start
// would otherwise deadlock the schedule (and hand the placement
// policies an empty candidate list, which their contract forbids).
type NeverFitsError struct {
	Job       int
	Midplanes int
	Machine   string
}

func (e *NeverFitsError) Error() string {
	return fmt.Sprintf("sched: job %d requests %d midplanes, which can never be placed on %s", e.Job, e.Midplanes, e.Machine)
}

// Allocation records a placed job.
type Allocation struct {
	Job       Job
	Placement Placement
	StartSec  float64
	EndSec    float64
	// Backfilled marks jobs admitted ahead of the queue head by the
	// EASY backfill path.
	Backfilled bool
}

// Result summarizes a scheduling run.
type Result struct {
	Policy      string
	Allocations []Allocation
	// MakespanSec is the completion time of the last job.
	MakespanSec float64
	// TotalWaitSec sums queue waits.
	TotalWaitSec float64
	// TotalRunSec sums actual runtimes (stretched by bad geometries).
	TotalRunSec float64
	// MidplaneSeconds is the utilization integral (allocated midplanes
	// x time).
	MidplaneSeconds float64
}

// AvgStretch returns mean actual/base runtime over jobs.
func (r Result) AvgStretch() float64 {
	if len(r.Allocations) == 0 {
		return 1
	}
	s := 0.0
	for _, a := range r.Allocations {
		s += (a.EndSec - a.StartSec) / a.Job.BaseDurationSec
	}
	return s / float64(len(r.Allocations))
}

// Options tunes the scheduling loop.
type Options struct {
	// Backfill enables conservative EASY-style backfilling: while the
	// queue head waits for space, later jobs may start if (a) a
	// placement exists right now and (b) they are guaranteed to finish
	// by the head job's shadow time — the earliest instant at which
	// enough midplanes will be free (count-based estimate) — so the
	// head's start is never delayed.
	Backfill bool

	// Duration computes a job's actual runtime on a placement. Nil
	// means the built-in model: BaseDurationSec, stretched by
	// bestBW/placedBW for contention-bound jobs. The trace simulator
	// substitutes a route/netsim-scored dilation here, so runtime
	// feedback from allocation geometry flows back into the queue.
	Duration func(job Job, pl Placement) float64

	// OnStart and OnFinish, when non-nil, observe the schedule as it
	// unfolds. Calls arrive in simulation-time order (the loop is
	// sequential); OnStart fires when a job is placed, OnFinish when
	// it completes and its midplanes are released.
	OnStart  func(Allocation)
	OnFinish func(Allocation)
}

// Run schedules the jobs FCFS under the policy and returns the
// outcome. Jobs must fit the machine; an infeasible size fails.
func Run(m *bgq.Machine, policy PlacementPolicy, jobs []Job) (Result, error) {
	return RunWithOptions(m, policy, jobs, Options{})
}

// RunWithOptions is Run with scheduling options.
func RunWithOptions(m *bgq.Machine, policy PlacementPolicy, jobs []Job, opts Options) (Result, error) {
	return RunContext(context.Background(), m, policy, jobs, opts)
}

// validateJob rejects jobs the scheduling loop cannot make sense of:
// non-positive sizes, non-positive or non-finite runtimes, negative or
// non-finite arrivals.
func validateJob(j Job) error {
	if j.Midplanes < 1 {
		return fmt.Errorf("sched: job %d requests %d midplanes, want >= 1", j.ID, j.Midplanes)
	}
	if j.BaseDurationSec <= 0 || math.IsInf(j.BaseDurationSec, 0) || math.IsNaN(j.BaseDurationSec) {
		return fmt.Errorf("sched: job %d duration %v is not positive and finite", j.ID, j.BaseDurationSec)
	}
	if j.ArrivalSec < 0 || math.IsInf(j.ArrivalSec, 0) || math.IsNaN(j.ArrivalSec) {
		return fmt.Errorf("sched: job %d arrival %v is not non-negative and finite", j.ID, j.ArrivalSec)
	}
	return nil
}

// neverFits reports whether no cuboid of the midplane count fits the
// machine even when empty (no geometry, or no length assignment of any
// geometry fits the host dimensions).
func neverFits(m *bgq.Machine, midplanes int) bool {
	for _, geo := range torus.EnumerateGeometries(m.Grid, len(m.Grid), midplanes) {
		if len(torus.Placements(m.Grid, geo)) > 0 {
			return false
		}
	}
	return true
}

// RunContext is RunWithOptions with cancellation: the context is
// checked once per event-loop iteration, so a canceled simulation
// stops between events and returns ctx.Err().
func RunContext(ctx context.Context, m *bgq.Machine, policy PlacementPolicy, jobs []Job, opts Options) (Result, error) {
	fits := map[int]bool{}
	for _, j := range jobs {
		if err := validateJob(j); err != nil {
			return Result{}, err
		}
		ok, checked := fits[j.Midplanes]
		if !checked {
			ok = !neverFits(m, j.Midplanes)
			fits[j.Midplanes] = ok
		}
		if !ok {
			return Result{}, &NeverFitsError{Job: j.ID, Midplanes: j.Midplanes, Machine: m.Name}
		}
	}
	grid := NewGrid(m)
	queue := append([]Job(nil), jobs...)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].ArrivalSec < queue[j].ArrivalSec })

	res := Result{Policy: policy.Name()}
	type running struct {
		alloc Allocation
	}
	var active []running
	now := 0.0

	finishEarliest := func() int {
		best := -1
		for i, r := range active {
			if best < 0 || r.alloc.EndSec < active[best].alloc.EndSec {
				best = i
			}
		}
		return best
	}

	// jobDuration applies the configured runtime model (default: the
	// contention-bound bisection stretch) for a placement.
	jobDuration := opts.Duration
	if jobDuration == nil {
		jobDuration = func(job Job, pl Placement) float64 {
			duration := job.BaseDurationSec
			if job.ContentionBound {
				best, _ := m.Best(job.Midplanes)
				duration *= float64(best.BisectionBW()) / float64(pl.Partition().BisectionBW())
			}
			return duration
		}
	}

	startJob := func(job Job, pl Placement, backfilled bool) {
		duration := jobDuration(job, pl)
		alloc := Allocation{Job: job, Placement: pl, StartSec: now, EndSec: now + duration, Backfilled: backfilled}
		grid.occupy(job.ID, pl.Origin, pl.Lens)
		active = append(active, running{alloc})
		res.TotalWaitSec += now - job.ArrivalSec
		res.TotalRunSec += duration
		res.MidplaneSeconds += float64(job.Midplanes) * duration
		if opts.OnStart != nil {
			opts.OnStart(alloc)
		}
	}

	// shadowTime estimates when the head job could start: the earliest
	// completion prefix after which free midplanes cover the request
	// (count-based, optimistic about fragmentation — conservative for
	// backfill admission because it never overestimates the wait).
	shadowTime := func(need int) float64 {
		free := grid.FreeMidplanes()
		if free >= need {
			return now
		}
		ends := make([]Allocation, 0, len(active))
		for _, r := range active {
			ends = append(ends, r.alloc)
		}
		sort.Slice(ends, func(i, j int) bool { return ends[i].EndSec < ends[j].EndSec })
		for _, a := range ends {
			free += a.Job.Midplanes
			if free >= need {
				return a.EndSec
			}
		}
		return math.Inf(1)
	}

	for len(queue) > 0 || len(active) > 0 {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		// Try to start the head of the queue (strict FCFS).
		started := false
		if len(queue) > 0 && queue[0].ArrivalSec <= now {
			job := queue[0]
			if cands := grid.candidates(job.Midplanes); len(cands) > 0 {
				startJob(job, policy.Choose(job, cands), false)
				queue = queue[1:]
				started = true
			} else if opts.Backfill {
				// The head waits: admit later arrived jobs that finish
				// by the head's shadow time.
				shadow := shadowTime(job.Midplanes)
				for i := 1; i < len(queue); i++ {
					cand := queue[i]
					if cand.ArrivalSec > now {
						continue
					}
					cs := grid.candidates(cand.Midplanes)
					if len(cs) == 0 {
						continue
					}
					pl := policy.Choose(cand, cs)
					if now+jobDuration(cand, pl) <= shadow {
						startJob(cand, pl, true)
						queue = append(queue[:i], queue[i+1:]...)
						started = true
						break
					}
				}
			}
		}
		if started {
			continue
		}
		// Advance time to the next event: an arrival or a completion.
		nextArrival := -1.0
		for _, j := range queue {
			if j.ArrivalSec > now && (nextArrival < 0 || j.ArrivalSec < nextArrival) {
				nextArrival = j.ArrivalSec
			}
		}
		fi := finishEarliest()
		switch {
		case fi >= 0 && (nextArrival < 0 || active[fi].alloc.EndSec <= nextArrival):
			a := active[fi].alloc
			now = a.EndSec
			grid.release(a.Job.ID, a.Placement.Origin, a.Placement.Lens)
			res.Allocations = append(res.Allocations, a)
			active = append(active[:fi], active[fi+1:]...)
			if a.EndSec > res.MakespanSec {
				res.MakespanSec = a.EndSec
			}
			if opts.OnFinish != nil {
				opts.OnFinish(a)
			}
		case nextArrival >= 0:
			now = nextArrival
		default:
			// Unreachable after the up-front feasibility pass: the head
			// could be placed on an empty machine, and with nothing
			// running and no future arrival the machine is empty.
			return Result{}, &NeverFitsError{Job: queue[0].ID, Midplanes: queue[0].Midplanes, Machine: m.Name}
		}
	}
	sort.Slice(res.Allocations, func(i, j int) bool { return res.Allocations[i].Job.ID < res.Allocations[j].Job.ID })
	return res, nil
}
