// Package sched implements the paper's §5 "Future Work" proposal: a
// job scheduler whose processor-allocation policy is informed by
// partition bisection bandwidth. It models the midplane grid of a
// Blue Gene/Q machine as a 4D occupancy map, places jobs as cuboids
// (with wrap-around, as the torus wiring permits), and compares a
// geometry-oblivious first-fit policy against a contention-aware
// policy that maximizes the internal bisection of the allocated
// partition for jobs declared contention-bound.
//
// The payoff modeled is the paper's central observation: a
// contention-bound job on a partition with bisection B runs
// best-B / B times longer than on the best geometry of the same size,
// so allocation geometry feeds directly back into queue throughput.
package sched

import (
	"context"
	"fmt"
	"math"

	"netpart/internal/bgq"
	"netpart/internal/torus"
)

// Grid tracks midplane occupancy of a machine.
type Grid struct {
	machine *bgq.Machine
	dims    torus.Shape
	strides []int
	used    []int // job ID + 1, or 0 when free
	// blocked counts how many failure sources currently remove each
	// cell from service (static failures plus open outage windows may
	// overlap, so this is a refcount, not a flag). A blocked cell is
	// never free and never placeable.
	blocked []int
	// free counts cells that are neither occupied nor blocked,
	// maintained incrementally by occupy/release/block/unblock so
	// FreeMidplanes (and the fused placement scans' capacity precheck)
	// are O(1) instead of a grid sweep.
	free int
}

// NewGrid creates an empty occupancy grid for a machine.
func NewGrid(m *bgq.Machine) *Grid {
	dims := m.Grid
	strides := make([]int, len(dims))
	s := 1
	for i := len(dims) - 1; i >= 0; i-- {
		strides[i] = s
		s *= dims[i]
	}
	return &Grid{machine: m, dims: dims, strides: strides, used: make([]int, s), blocked: make([]int, s), free: s}
}

// Machine returns the underlying machine.
func (g *Grid) Machine() *bgq.Machine { return g.machine }

// FreeMidplanes returns the number of midplanes that are neither
// occupied nor blocked by a failure.
func (g *Grid) FreeMidplanes() int { return g.free }

// BlockCells removes midplanes from service before any job is placed:
// the cells disappear from candidate enumeration exactly as if they
// were occupied. It is the seam the scenario layer uses to model
// statically failed midplanes. Cells must be in range and unoccupied.
func (g *Grid) BlockCells(cells []int) error {
	for _, c := range cells {
		if c < 0 || c >= len(g.used) {
			return fmt.Errorf("sched: blocked midplane %d out of range [0, %d)", c, len(g.used))
		}
		if g.used[c] != 0 {
			return fmt.Errorf("sched: blocked midplane %d is occupied", c)
		}
	}
	g.block(cells)
	return nil
}

// block and unblock adjust the failure refcount of cells (outage
// windows opening and healing). Unlike BlockCells, block tolerates
// occupied cells: a hard outage kills the overlapping jobs first, and
// a finishing job may still hold a cell at the instant its window
// opens.
func (g *Grid) block(cells []int) {
	for _, c := range cells {
		if g.blocked[c] == 0 && g.used[c] == 0 {
			g.free--
		}
		g.blocked[c]++
	}
}

func (g *Grid) unblock(cells []int) {
	for _, c := range cells {
		if g.blocked[c] == 0 {
			panic(fmt.Sprintf("sched: unblocking midplane %d that is not blocked", c))
		}
		g.blocked[c]--
		if g.blocked[c] == 0 && g.used[c] == 0 {
			g.free++
		}
	}
}

// cellsOf enumerates the linear cell indices of a cuboid placement.
func (g *Grid) cellsOf(origin torus.Coord, lens torus.Shape) []int {
	cells := make([]int, 0, lens.Volume())
	var rec func(dim, base int)
	rec = func(dim, base int) {
		if dim == len(g.dims) {
			cells = append(cells, base)
			return
		}
		for off := 0; off < lens[dim]; off++ {
			c := (origin[dim] + off) % g.dims[dim]
			rec(dim+1, base+c*g.strides[dim])
		}
	}
	rec(0, 0)
	return cells
}

// fits reports whether the cuboid placement is entirely free. It is
// the candidate-enumeration hot path (one probe per origin × length
// assignment), so it walks the cells directly — no slice
// materialization — and exits on the first occupied cell.
func (g *Grid) fits(origin torus.Coord, lens torus.Shape) bool {
	var rec func(dim, base int) bool
	rec = func(dim, base int) bool {
		if dim == len(g.dims) {
			return g.used[base] == 0 && g.blocked[base] == 0
		}
		for off := 0; off < lens[dim]; off++ {
			c := (origin[dim] + off) % g.dims[dim]
			if !rec(dim+1, base+c*g.strides[dim]) {
				return false
			}
		}
		return true
	}
	return rec(0, 0)
}

// occupy marks a placement as owned by a job.
func (g *Grid) occupy(jobID int, origin torus.Coord, lens torus.Shape) {
	for _, c := range g.cellsOf(origin, lens) {
		if g.used[c] != 0 {
			panic(fmt.Sprintf("sched: double allocation of midplane %d", c))
		}
		if g.blocked[c] != 0 {
			panic(fmt.Sprintf("sched: allocating failed midplane %d", c))
		}
		g.used[c] = jobID + 1
		g.free--
	}
}

// release frees a job's cells.
func (g *Grid) release(jobID int, origin torus.Coord, lens torus.Shape) {
	for _, c := range g.cellsOf(origin, lens) {
		if g.used[c] != jobID+1 {
			panic(fmt.Sprintf("sched: releasing midplane %d not owned by job %d", c, jobID))
		}
		g.used[c] = 0
		if g.blocked[c] == 0 {
			g.free++
		}
	}
}

// Placement is a concrete allocation: cuboid lengths in host dimension
// order plus an origin.
type Placement struct {
	Origin torus.Coord
	Lens   torus.Shape
}

// Partition returns the bgq partition of the placement.
func (p Placement) Partition() bgq.Partition {
	part, err := bgq.NewPartition(p.Lens)
	if err != nil {
		panic(err)
	}
	return part
}

// Candidates enumerates every feasible placement of a midplane count
// on the current occupancy, in deterministic order: geometries
// (canonical order), then length assignments, then origins
// (lexicographic). It is the seam the scenario layer uses to drive
// the placement policies outside a full scheduling run (policy
// selection for a single job on an empty machine).
func (g *Grid) Candidates(midplanes int) []Placement {
	return g.candidates(midplanes)
}

// candidates enumerates every feasible placement of a midplane count,
// in deterministic order: geometries (canonical order), then length
// assignments, then origins (lexicographic).
func (g *Grid) candidates(midplanes int) []Placement {
	var out []Placement
	for _, geo := range torus.EnumerateGeometries(g.dims, len(g.dims), midplanes) {
		for _, lens := range torus.Placements(g.dims, geo) {
			g.forEachOrigin(func(origin torus.Coord) {
				if g.fits(origin, lens) {
					out = append(out, Placement{Origin: origin.Clone(), Lens: lens.Clone()})
				}
			})
		}
	}
	return out
}

func (g *Grid) forEachOrigin(fn func(origin torus.Coord)) {
	origin := make(torus.Coord, len(g.dims))
	var rec func(dim int)
	rec = func(dim int) {
		if dim == len(g.dims) {
			fn(origin)
			return
		}
		for c := 0; c < g.dims[dim]; c++ {
			origin[dim] = c
			rec(dim + 1)
		}
	}
	rec(0)
}

// PlacementPolicy selects a placement from the feasible candidates.
type PlacementPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// Choose picks one of the candidate placements for the job (the
	// candidate list is non-empty and deterministic).
	Choose(job Job, candidates []Placement) Placement
}

// FirstFit takes the first feasible placement — geometry-oblivious,
// the baseline the paper's schedulers approximate when users request
// sizes only.
type FirstFit struct{}

// Name implements PlacementPolicy.
func (FirstFit) Name() string { return "first-fit" }

// Choose implements PlacementPolicy.
func (FirstFit) Choose(_ Job, candidates []Placement) Placement { return candidates[0] }

// BestBisection picks the placement whose partition has maximal
// internal bisection bandwidth (ties: first).
type BestBisection struct{}

// Name implements PlacementPolicy.
func (BestBisection) Name() string { return "best-bisection" }

// Choose implements PlacementPolicy.
func (BestBisection) Choose(_ Job, candidates []Placement) Placement {
	best := candidates[0]
	bestBW := best.Partition().BisectionBW()
	for _, c := range candidates[1:] {
		if bw := c.Partition().BisectionBW(); bw > bestBW {
			best, bestBW = c, bw
		}
	}
	return best
}

// ContentionAware applies BestBisection to jobs that declare
// themselves contention-bound (the user hint of the paper's §5) and
// FirstFit to the rest.
type ContentionAware struct{}

// Name implements PlacementPolicy.
func (ContentionAware) Name() string { return "contention-aware" }

// Choose implements PlacementPolicy.
func (ContentionAware) Choose(job Job, candidates []Placement) Placement {
	if job.ContentionBound {
		return BestBisection{}.Choose(job, candidates)
	}
	return FirstFit{}.Choose(job, candidates)
}

// PolicyByName resolves a policy's Name() spelling to its
// implementation — the single mapping every layer (scenario
// resolution, the trace simulator) shares, so a new policy is wired
// in exactly one place.
func PolicyByName(name string) (PlacementPolicy, bool) {
	switch name {
	case FirstFit{}.Name():
		return FirstFit{}, true
	case BestBisection{}.Name():
		return BestBisection{}, true
	case ContentionAware{}.Name():
		return ContentionAware{}, true
	}
	return nil, false
}

// Job is a queue entry.
type Job struct {
	ID        int
	Midplanes int
	// ArrivalSec is the submission time.
	ArrivalSec float64
	// BaseDurationSec is the runtime on a best-bisection geometry.
	BaseDurationSec float64
	// ContentionBound marks jobs whose runtime stretches by
	// bestBW/allocatedBW on inferior geometries.
	ContentionBound bool
}

// NeverFitsError reports a job that can never be placed: no cuboid of
// the requested midplane count fits the machine even when it is empty.
// The job is rejected up front — a queue whose head can never start
// would otherwise deadlock the schedule (and hand the placement
// policies an empty candidate list, which their contract forbids).
type NeverFitsError struct {
	Job       int
	Midplanes int
	Machine   string
}

func (e *NeverFitsError) Error() string {
	return fmt.Sprintf("sched: job %d requests %d midplanes, which can never be placed on %s", e.Job, e.Midplanes, e.Machine)
}

// StarvedError reports a schedule that cannot make progress under
// failures: the queue head cannot be placed and no completion, arrival
// or outage boundary remains to change the occupancy — typically a
// permanent outage that leaves no cuboid of the requested size.
type StarvedError struct {
	Job       int
	Midplanes int
	Machine   string
}

func (e *StarvedError) Error() string {
	return fmt.Sprintf("sched: job %d (%d midplanes) cannot be placed on %s and no completion, arrival or outage boundary remains", e.Job, e.Midplanes, e.Machine)
}

// Outage is a time-varying failure window over a set of midplane
// cells. Factor 0 is a hard outage: when the window opens, running
// jobs overlapping the cells are killed (and requeued at the kill
// time), and the cells are blocked until the window closes. A factor
// in (0, 1) is degradation: the cells stay in service but jobs
// overlapping them run dilated by 1/Factor while the window is open —
// mid-run, their remaining work is repriced when the window opens or
// closes. Factor 1 is an explicit no-op window.
type Outage struct {
	// StartSec and EndSec bound the window; EndSec may be +Inf for a
	// failure that never heals.
	StartSec float64
	EndSec   float64
	// Cells are the affected midplane cell indices.
	Cells []int
	// Factor is the capacity multiplier: 0 removes, (0,1) degrades.
	Factor float64
}

// Kill records a job evicted mid-run by a hard outage. The job is
// requeued with its arrival reset to the kill time; its eventual
// successful run appears in Allocations as usual.
type Kill struct {
	Job       Job
	Placement Placement
	StartSec  float64
	KillSec   float64
}

// Allocation records a placed job.
type Allocation struct {
	Job       Job
	Placement Placement
	StartSec  float64
	EndSec    float64
	// Backfilled marks jobs admitted ahead of the queue head by the
	// EASY backfill path.
	Backfilled bool
}

// Result summarizes a scheduling run.
type Result struct {
	Policy      string
	Allocations []Allocation
	// Kills records jobs evicted by hard outages (each killed run's
	// partial work counts toward nothing; the job's final successful
	// run is in Allocations).
	Kills []Kill
	// MakespanSec is the completion time of the last job.
	MakespanSec float64
	// TotalWaitSec sums queue waits.
	TotalWaitSec float64
	// TotalRunSec sums actual runtimes (stretched by bad geometries).
	TotalRunSec float64
	// MidplaneSeconds is the utilization integral (allocated midplanes
	// x time).
	MidplaneSeconds float64
}

// AvgStretch returns mean actual/base runtime over jobs.
func (r Result) AvgStretch() float64 {
	if len(r.Allocations) == 0 {
		return 1
	}
	s := 0.0
	for _, a := range r.Allocations {
		s += (a.EndSec - a.StartSec) / a.Job.BaseDurationSec
	}
	return s / float64(len(r.Allocations))
}

// Options tunes the scheduling loop.
type Options struct {
	// Backfill enables conservative EASY-style backfilling: while the
	// queue head waits for space, later jobs may start if (a) a
	// placement exists right now and (b) they are guaranteed to finish
	// by the head job's shadow time — the earliest instant at which
	// enough midplanes will be free (count-based estimate) — so the
	// head's start is never delayed.
	Backfill bool

	// Duration computes a job's actual runtime on a placement. Nil
	// means the built-in model: BaseDurationSec, stretched by
	// bestBW/placedBW for contention-bound jobs. The trace simulator
	// substitutes a route/netsim-scored dilation here, so runtime
	// feedback from allocation geometry flows back into the queue.
	Duration func(job Job, pl Placement) float64

	// OnStart and OnFinish, when non-nil, observe the schedule as it
	// unfolds. Calls arrive in simulation-time order (the loop is
	// sequential); OnStart fires when a job is placed, OnFinish when
	// it completes and its midplanes are released.
	OnStart  func(Allocation)
	OnFinish func(Allocation)

	// Outages are time-varying failure windows applied during the run.
	Outages []Outage

	// OnOutage observes outage boundaries: index into Outages, whether
	// the window opened (true) or healed (false), the simulation time,
	// and the free-midplane count after the boundary took effect.
	OnOutage func(outage int, open bool, timeSec float64, free int)

	// OnKill observes hard-outage evictions, after the job's cells are
	// released (and before they are blocked).
	OnKill func(a Allocation, timeSec float64, free int)
}

// validateOutage rejects windows the event loop cannot order: factors
// outside [0, 1], non-finite or inverted bounds (EndSec may be +Inf),
// cells outside the machine.
func validateOutage(i int, o Outage, cells int) error {
	if math.IsNaN(o.Factor) || o.Factor < 0 || o.Factor > 1 {
		return fmt.Errorf("sched: outage %d factor %v out of range [0, 1]", i, o.Factor)
	}
	if o.StartSec < 0 || math.IsInf(o.StartSec, 0) || math.IsNaN(o.StartSec) {
		return fmt.Errorf("sched: outage %d start %v is not non-negative and finite", i, o.StartSec)
	}
	if math.IsNaN(o.EndSec) || o.EndSec <= o.StartSec {
		return fmt.Errorf("sched: outage %d window [%v, %v) is empty or inverted", i, o.StartSec, o.EndSec)
	}
	for _, c := range o.Cells {
		if c < 0 || c >= cells {
			return fmt.Errorf("sched: outage %d midplane %d out of range [0, %d)", i, c, cells)
		}
	}
	return nil
}

// Run schedules the jobs FCFS under the policy and returns the
// outcome. Jobs must fit the machine; an infeasible size fails.
func Run(m *bgq.Machine, policy PlacementPolicy, jobs []Job) (Result, error) {
	return RunWithOptions(m, policy, jobs, Options{})
}

// RunWithOptions is Run with scheduling options.
func RunWithOptions(m *bgq.Machine, policy PlacementPolicy, jobs []Job, opts Options) (Result, error) {
	return RunContext(context.Background(), m, policy, jobs, opts)
}

// validateJob rejects jobs the scheduling loop cannot make sense of:
// non-positive sizes, non-positive or non-finite runtimes, negative or
// non-finite arrivals.
func validateJob(j Job) error {
	if j.Midplanes < 1 {
		return fmt.Errorf("sched: job %d requests %d midplanes, want >= 1", j.ID, j.Midplanes)
	}
	if j.BaseDurationSec <= 0 || math.IsInf(j.BaseDurationSec, 0) || math.IsNaN(j.BaseDurationSec) {
		return fmt.Errorf("sched: job %d duration %v is not positive and finite", j.ID, j.BaseDurationSec)
	}
	if j.ArrivalSec < 0 || math.IsInf(j.ArrivalSec, 0) || math.IsNaN(j.ArrivalSec) {
		return fmt.Errorf("sched: job %d arrival %v is not non-negative and finite", j.ID, j.ArrivalSec)
	}
	return nil
}

// neverFits reports whether no cuboid of the midplane count fits the
// machine even when empty (no geometry, or no length assignment of any
// geometry fits the host dimensions).
func neverFits(m *bgq.Machine, midplanes int) bool {
	for _, geo := range torus.EnumerateGeometries(m.Grid, len(m.Grid), midplanes) {
		if len(torus.Placements(m.Grid, geo)) > 0 {
			return false
		}
	}
	return true
}

// RunContext is RunWithOptions with cancellation: the context is
// checked once per event-loop iteration, so a canceled simulation
// stops between events and returns ctx.Err().
//
// It is a Stepper (the incremental form of the event loop) driven to
// completion: submit everything, drain, snapshot. The operation order
// — validation, boundary application, placement attempts, float
// accumulation — is exactly the incremental core's, so batch and
// incremental runs of one workload are byte-identical.
func RunContext(ctx context.Context, m *bgq.Machine, policy PlacementPolicy, jobs []Job, opts Options) (Result, error) {
	st, err := NewStepper(m, policy, opts)
	if err != nil {
		return Result{}, err
	}
	if err := st.Submit(jobs...); err != nil {
		return Result{}, err
	}
	if err := st.Drain(ctx); err != nil {
		return Result{}, err
	}
	return st.Result(), nil
}
