package sched

import (
	"strconv"

	"netpart/internal/lru"
	"netpart/internal/torus"
)

// This file is the allocation-free fast path of placement selection.
//
// The generic path — Grid.candidates materializing every feasible
// Placement and PlacementPolicy.Choose scanning the list — re-derives,
// on every placement attempt, work that depends only on the machine
// shape and the requested midplane count: geometry enumeration, length
// assignments, and the bisection bandwidth of each assignment. On a
// trace simulation that is one full enumeration per scheduling
// decision (and per backfill probe), which is why candidate
// enumeration dominated the trace-simulator profile.
//
// A placementPlan hoists all of it: for one (machine grid, midplanes)
// pair it records every length assignment in the exact order the
// generic path enumerates candidates, each with its precomputed
// bisection bandwidth and per-dimension cell-offset tables that turn
// the occupancy probe into flat array reads (no recursion, no modulo,
// no closures). Plans are cached process-wide in a bounded LRU shared
// by every simulation, grid point, serving flight and cluster session.
//
// The fused scans (placeFirstFit, placeBestBisection) must be
// byte-identical to candidates()+Choose; TestPlanMatchesOracle pins
// the equivalence against the retained generic path under randomized
// occupancy, and the trace-simulator differential harness pins it end
// to end. The generic path stays alive as that oracle — and as the
// fallback for policies the type switch does not know.

// planRank is the grid rank the fused path specializes on: bgq
// machines are always 4-dimensional midplane grids. Other ranks fall
// back to the generic path.
const planRank = 4

// lensPlan is one length assignment of a geometry to the host
// dimensions, with everything a placement scan needs precomputed.
type lensPlan struct {
	lens torus.Shape // host-dimension order, rank 4
	bw   int         // internal bisection bandwidth of the partition
	// offs[d] is a dims[d]×lens[d] table of linear cell offsets:
	// offs[d][c*lens[d]+i] = ((c+i) % dims[d]) * strides[d]. A cuboid
	// cell index is the sum over dimensions of one entry per
	// dimension, so the fits probe is four nested loops of adds and
	// array reads.
	offs [planRank][]int32
}

// placementPlan is the compiled candidate space of one (grid shape,
// midplanes) pair: length assignments in generic-enumeration order.
type placementPlan struct {
	lenses []lensPlan
}

// planCache is the process-wide bounded plan cache. The working set
// is tiny in practice — machine catalog × distinct request sizes —
// but stays bounded against adversarial custom-grid request streams.
var planCache = lru.New[string, *placementPlan](1024)

// PlanCacheCounts returns the process-wide placement-plan cache hits,
// misses and evictions since process start, for the observability
// layer.
func PlanCacheCounts() (hits, misses, evictions uint64) {
	return planCache.Counts()
}

// planKey identifies a plan: the grid shape plus the request size.
func (g *Grid) planKey(midplanes int) string {
	return g.dims.String() + "|" + strconv.Itoa(midplanes)
}

// planFor returns the compiled plan for a midplane count on this
// grid's shape, building and caching it on first use. Only rank-4
// grids are compiled (ok=false otherwise; callers fall back to the
// generic path).
func (g *Grid) planFor(midplanes int) (*placementPlan, bool) {
	if len(g.dims) != planRank {
		return nil, false
	}
	key := g.planKey(midplanes)
	if p, ok := planCache.Get(key); ok {
		return p, true
	}
	p := g.buildPlan(midplanes)
	planCache.Put(key, p)
	return p, true
}

// buildPlan compiles the candidate space, enumerating geometries and
// length assignments with the exact generic-path calls so the lens
// order (and therefore every fused policy decision) matches
// candidates() byte for byte.
func (g *Grid) buildPlan(midplanes int) *placementPlan {
	p := &placementPlan{}
	for _, geo := range torus.EnumerateGeometries(g.dims, len(g.dims), midplanes) {
		for _, lens := range torus.Placements(g.dims, geo) {
			lp := lensPlan{lens: lens.Clone(), bw: Placement{Lens: lens}.Partition().BisectionBW()}
			for d := 0; d < planRank; d++ {
				dim, l, stride := g.dims[d], lens[d], g.strides[d]
				tab := make([]int32, dim*l)
				for c := 0; c < dim; c++ {
					for i := 0; i < l; i++ {
						tab[c*l+i] = int32(((c + i) % dim) * stride)
					}
				}
				lp.offs[d] = tab
			}
			p.lenses = append(p.lenses, lp)
		}
	}
	return p
}

// fitsPlan reports whether the cuboid of lp placed at the origin is
// entirely free, probing cells in the same order as the generic fits
// (dimension-major) with precomputed offsets.
func (g *Grid) fitsPlan(lp *lensPlan, o0, o1, o2, o3 int) bool {
	l0, l1, l2, l3 := lp.lens[0], lp.lens[1], lp.lens[2], lp.lens[3]
	t0 := lp.offs[0][o0*l0 : o0*l0+l0]
	t1 := lp.offs[1][o1*l1 : o1*l1+l1]
	t2 := lp.offs[2][o2*l2 : o2*l2+l2]
	t3 := lp.offs[3][o3*l3 : o3*l3+l3]
	used, blocked := g.used, g.blocked
	for _, b0 := range t0 {
		for _, b1 := range t1 {
			b01 := b0 + b1
			for _, b2 := range t2 {
				b012 := b01 + b2
				for _, b3 := range t3 {
					c := b012 + b3
					if used[c] != 0 || blocked[c] != 0 {
						return false
					}
				}
			}
		}
	}
	return true
}

// firstOrigin returns the lexicographically first feasible origin of
// one length assignment — the first candidate the generic path would
// emit for this lens.
func (g *Grid) firstOrigin(lp *lensPlan) (torus.Coord, bool) {
	d0, d1, d2, d3 := g.dims[0], g.dims[1], g.dims[2], g.dims[3]
	for o0 := 0; o0 < d0; o0++ {
		for o1 := 0; o1 < d1; o1++ {
			for o2 := 0; o2 < d2; o2++ {
				for o3 := 0; o3 < d3; o3++ {
					if g.fitsPlan(lp, o0, o1, o2, o3) {
						return torus.Coord{o0, o1, o2, o3}, true
					}
				}
			}
		}
	}
	return nil, false
}

// placeFirstFit returns the first feasible candidate — what
// FirstFit.Choose picks from the materialized list — without
// enumerating past it.
func (g *Grid) placeFirstFit(p *placementPlan, volume int) (Placement, bool) {
	if g.free < volume {
		return Placement{}, false
	}
	for li := range p.lenses {
		lp := &p.lenses[li]
		if origin, ok := g.firstOrigin(lp); ok {
			return Placement{Origin: origin, Lens: lp.lens.Clone()}, true
		}
	}
	return Placement{}, false
}

// placeBestBisection returns the first candidate of maximal bisection
// bandwidth — what BestBisection.Choose picks — probing each length
// assignment for its first feasible origin only when its bandwidth
// strictly beats the best found so far (later equal-bandwidth
// candidates lose ties, exactly like the generic scan).
func (g *Grid) placeBestBisection(p *placementPlan, volume int) (Placement, bool) {
	if g.free < volume {
		return Placement{}, false
	}
	var best Placement
	bestBW := -1
	found := false
	for li := range p.lenses {
		lp := &p.lenses[li]
		if lp.bw <= bestBW {
			continue
		}
		if origin, ok := g.firstOrigin(lp); ok {
			best = Placement{Origin: origin, Lens: lp.lens.Clone()}
			bestBW = lp.bw
			found = true
		}
	}
	return best, found
}

// placeFor selects a placement for the job under the policy: the
// fused allocation-free scan for the built-in policies, or the
// generic materialize-and-Choose path for anything else (including
// the differential-test oracle wrappers). ok=false means no feasible
// placement exists right now.
func (g *Grid) placeFor(job Job, policy PlacementPolicy) (Placement, bool) {
	switch policy.(type) {
	case FirstFit, BestBisection, ContentionAware:
		if p, ok := g.planFor(job.Midplanes); ok {
			bestBisection := false
			switch policy.(type) {
			case BestBisection:
				bestBisection = true
			case ContentionAware:
				bestBisection = job.ContentionBound
			}
			if bestBisection {
				return g.placeBestBisection(p, job.Midplanes)
			}
			return g.placeFirstFit(p, job.Midplanes)
		}
	}
	cands := g.candidates(job.Midplanes)
	if len(cands) == 0 {
		return Placement{}, false
	}
	return policy.Choose(job, cands), true
}

// anyFit reports whether any placement of the midplane count is
// feasible on the current occupancy — len(candidates) > 0 without
// materializing them.
func (g *Grid) anyFit(midplanes int) bool {
	if p, ok := g.planFor(midplanes); ok {
		if g.free < midplanes {
			return false
		}
		for li := range p.lenses {
			if _, ok := g.firstOrigin(&p.lenses[li]); ok {
				return true
			}
		}
		return false
	}
	return len(g.candidates(midplanes)) > 0
}
