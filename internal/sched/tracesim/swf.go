package tracesim

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// SWFOptions tunes the Standard Workload Format mapping.
type SWFOptions struct {
	// ProcsPerMidplane scales SWF processor counts to midplanes
	// (ceiling division). Zero means 1: the trace's processor counts
	// are already midplane counts.
	ProcsPerMidplane int
	// MaxJobs truncates the parse after this many usable jobs (0 = no
	// truncation; the MaxJobs package bound still applies to the
	// resulting Spec).
	MaxJobs int
	// Pattern is the communication pattern imposed on every
	// ContentionEvery-th *usable* job (SWF carries no communication
	// information, so contention-boundness has to be declared here;
	// skipped lines — cancelled or unrecorded jobs — do not advance
	// the count, so the assignment is deterministic over the jobs that
	// actually enter the trace). An empty Pattern with
	// ContentionEvery > 0 still marks those jobs ContentionBound, so
	// they stretch by the bisection-ratio model instead of a
	// pattern-scored round time.
	Pattern string
	// ContentionEvery marks every n-th usable job (0 = none).
	ContentionEvery int
}

// ParseSWF parses a Standard Workload Format trace — the archive
// format of the Parallel Workloads Archive: `;` header/comment lines,
// then one job per line with ≥ 9 whitespace-separated fields — into
// inline trace entries ready to embed in a Spec.
//
// Field mapping (1-based SWF columns):
//
//	2  submit time     → ArrivalSec, shifted so the first job arrives at 0
//	4  run time        → RuntimeSec (fallback: 9, requested time)
//	5  allocated procs → Midplanes  (fallback: 8, requested procs),
//	                     scaled by ProcsPerMidplane
//
// Jobs with no usable runtime or processor count (both the primary
// and fallback fields missing, i.e. -1 in the archive convention) are
// skipped, matching the archive's "cleaned trace" guidance; malformed
// lines are errors.
func ParseSWF(r io.Reader, opts SWFOptions) ([]JobSpec, error) {
	perMid := opts.ProcsPerMidplane
	if perMid <= 0 {
		perMid = 1
	}
	if opts.Pattern != "" && !knownPattern(strings.ToLower(opts.Pattern)) {
		return nil, fmt.Errorf("tracesim: swf: unknown pattern %q (want pairing, all-to-all or neighbor)", opts.Pattern)
	}

	var jobs []JobSpec
	firstSubmit, haveFirst := 0.0, false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 9 {
			return nil, fmt.Errorf("tracesim: swf line %d: %d fields, want >= 9", lineNo, len(fields))
		}
		num := func(i int) (float64, error) {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return 0, fmt.Errorf("tracesim: swf line %d field %d: %w", lineNo, i, err)
			}
			return v, nil
		}
		submit, err := num(2)
		if err != nil {
			return nil, err
		}
		runSec, err := num(4)
		if err != nil {
			return nil, err
		}
		procs, err := num(5)
		if err != nil {
			return nil, err
		}
		if runSec <= 0 {
			if runSec, err = num(9); err != nil {
				return nil, err
			}
		}
		if procs <= 0 {
			if procs, err = num(8); err != nil {
				return nil, err
			}
		}
		if runSec <= 0 || procs <= 0 {
			continue // cancelled or unrecorded job
		}
		if !haveFirst {
			firstSubmit, haveFirst = submit, true
		}
		arrival := submit - firstSubmit
		if arrival < 0 {
			return nil, fmt.Errorf("tracesim: swf line %d: submit time %v precedes the trace start", lineNo, submit)
		}
		job := JobSpec{
			Midplanes:  (int(procs) + perMid - 1) / perMid,
			ArrivalSec: arrival,
			RuntimeSec: runSec,
		}
		if opts.ContentionEvery > 0 && len(jobs)%opts.ContentionEvery == 0 {
			job.Pattern = strings.ToLower(opts.Pattern)
			job.ContentionBound = true
		}
		jobs = append(jobs, job)
		if opts.MaxJobs > 0 && len(jobs) >= opts.MaxJobs {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tracesim: swf: %w", err)
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("tracesim: swf: no usable jobs in trace")
	}
	return jobs, nil
}
