// Package tracesim is the trace-driven multi-job scheduling simulator
// the paper's §5 scheduler extension builds toward: a discrete-event
// queue simulation over internal/sched (Grid, PlacementPolicy, EASY
// backfill) that answers "what would this allocation policy have done
// on a month of real jobs" instead of scoring policies on static job
// sets.
//
// A Spec composes a machine (the internal/scenario machine references:
// catalog names or explicit midplane grids), a placement policy, and a
// job trace from one of three sources — an inline job list, a seeded
// synthetic generator (Poisson / heavy-tail / burst arrivals × size
// and runtime distributions), or an SWF-style trace file parsed with
// ParseSWF into the inline form. Per-job contention is scored at
// placement time through the route/netsim machinery: a job that
// declares a communication pattern has its placed geometry's max-min
// fair round time compared against the best geometry of the same
// size, and the resulting dilation stretches its runtime — so
// allocation geometry feeds back into queue wait, exactly the
// avoidable contention the paper argues the scheduler owns.
//
// Specs are wire-friendly, validated and normalized: Normalize fills
// defaults and canonicalizes spellings so a normalized Spec's
// canonical JSON (Key) is a true result identity — the serving layer
// coalesces identical traces onto one simulation, like scenarios and
// sweeps. Runs are byte-deterministic: synthetic traces derive from
// the Spec's seed, the event loop is sequential, and per-job results
// land in job order.
package tracesim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"netpart/internal/faults"
	"netpart/internal/scenario"
	"netpart/internal/sched"
)

// Placement policies a trace may schedule under (the sched policies;
// spellings shared with package scenario).
const (
	PolicyFirstFit        = scenario.PolicyFirstFit
	PolicyBestBisection   = scenario.PolicyBestBisection
	PolicyContentionAware = scenario.PolicyContentionAware
)

// Communication patterns a job may declare. Patterned jobs are scored
// at midplane granularity on their placed geometry; the pattern
// spellings are shared with package scenario.
const (
	PatternPairing  = scenario.PatternPairing
	PatternAllToAll = scenario.PatternAllToAll
	PatternNeighbor = scenario.PatternNeighbor
)

// Synthetic arrival processes.
const (
	ArrivalPoisson   = "poisson"    // exponential interarrivals
	ArrivalHeavyTail = "heavy-tail" // Pareto (α=1.5) interarrivals, same mean
	ArrivalBurst     = "burst"      // BurstSize simultaneous arrivals per burst
)

// Synthetic runtime distributions.
const (
	RuntimeExp       = "exp"        // exponential around the mean
	RuntimeHeavyTail = "heavy-tail" // Pareto (α=1.5) around the mean
	RuntimeFixed     = "fixed"      // every job runs the mean
)

// Bounds and defaults.
const (
	// MaxJobs bounds one trace (inline or synthetic).
	MaxJobs = 4096
	// MaxMachineMidplanes bounds the simulated machine.
	MaxMachineMidplanes = 4096
	// MaxAllToAllMidplanes bounds jobs declaring the quadratic
	// all-to-all pattern (the dilation scorer routes every ordered
	// midplane pair of the placed geometry).
	MaxAllToAllMidplanes = 128
	// DefaultSeed seeds synthetic traces.
	DefaultSeed = int64(1)
	// DefaultRateHz is the synthetic mean arrival rate.
	DefaultRateHz = 0.05
	// DefaultBurstSize is the synthetic burst arrival batch.
	DefaultBurstSize = 8
	// DefaultMeanRuntimeSec is the synthetic mean job runtime.
	DefaultMeanRuntimeSec = 600.0
)

// defaultSizes is the synthetic size distribution's support when the
// spec leaves Sizes empty.
var defaultSizes = []int{1, 2, 4, 8}

// JobSpec is one trace entry: a job's size, submission time, base
// runtime (its runtime on the best geometry of its size) and optional
// contention declaration.
type JobSpec struct {
	Midplanes  int     `json:"midplanes"`
	ArrivalSec float64 `json:"arrival_sec"`
	RuntimeSec float64 `json:"runtime_sec"`
	// Pattern declares the job's communication pattern (pairing,
	// all-to-all or neighbor). Patterned jobs are contention-scored on
	// their placed geometry; empty means no pattern.
	Pattern string `json:"pattern,omitempty"`
	// ContentionBound applies the bisection-ratio stretch to jobs
	// without a declared pattern (the coarse model internal/sched
	// uses). It is implied for patterned jobs.
	ContentionBound bool `json:"contention_bound,omitempty"`
}

// Synthetic is the seeded trace generator: an arrival process × a
// size distribution × a runtime distribution, deterministic in Seed.
type Synthetic struct {
	// Jobs is the trace length.
	Jobs int `json:"jobs"`
	// Seed drives every draw (default DefaultSeed).
	Seed int64 `json:"seed,omitempty"`
	// Arrival selects the arrival process (default poisson).
	Arrival string `json:"arrival,omitempty"`
	// RateHz is the mean arrival rate in jobs per second (default
	// DefaultRateHz).
	RateHz float64 `json:"rate_hz,omitempty"`
	// BurstSize is the batch size of the burst process (default
	// DefaultBurstSize; zeroed for other processes).
	BurstSize int `json:"burst_size,omitempty"`
	// Sizes is the support of the size distribution in midplanes
	// (default 1,2,4,8).
	Sizes []int `json:"sizes,omitempty"`
	// SizeWeights weights Sizes (uniform when empty; same length as
	// Sizes otherwise).
	SizeWeights []float64 `json:"size_weights,omitempty"`
	// Runtime selects the runtime distribution (default exp).
	Runtime string `json:"runtime,omitempty"`
	// MeanRuntimeSec is the runtime distribution's mean (default
	// DefaultMeanRuntimeSec).
	MeanRuntimeSec float64 `json:"mean_runtime_sec,omitempty"`
	// Pattern is the communication pattern assigned to patterned jobs
	// (default pairing; zeroed when PatternFraction is 0).
	Pattern string `json:"pattern,omitempty"`
	// PatternFraction is the probability a job declares Pattern and
	// becomes contention-bound (default 0: no patterned jobs).
	PatternFraction float64 `json:"pattern_fraction,omitempty"`
}

// Spec is one declarative trace simulation. The zero value is
// invalid; construct with a machine, a policy and exactly one job
// source and call Normalize.
type Spec struct {
	// Name is an optional human label, reported in titles.
	Name string `json:"name,omitempty"`
	// Machine is the simulated host: a catalog name or a midplane
	// grid shape (the scenario machine references).
	Machine string `json:"machine"`
	// Policy is the placement policy (default first-fit).
	Policy string `json:"policy,omitempty"`
	// Backfill enables EASY backfilling.
	Backfill bool `json:"backfill,omitempty"`
	// Jobs is the inline trace (exclusive with Synthetic).
	Jobs []JobSpec `json:"jobs,omitempty"`
	// Synthetic generates the trace (exclusive with Jobs).
	Synthetic *Synthetic `json:"synthetic,omitempty"`
	// Failures is the optional midplane failure model. Its windows
	// open and heal during the simulation: factor-0 windows kill and
	// requeue overlapping jobs and block their midplanes, fractional
	// factors dilate overlapping jobs' runtimes by 1/factor. No
	// windows means the failure holds for the whole run. nil is a
	// healthy machine; a failed run's metrics carry the healthy
	// baseline of the same spec and the deltas against it.
	Failures *faults.Spec `json:"failures,omitempty"`
}

// knownPolicy defers to the scheduler's own name mapping, so a policy
// added to sched.PolicyByName is immediately schedulable here.
func knownPolicy(p string) bool {
	_, ok := sched.PolicyByName(p)
	return ok
}

func knownPattern(p string) bool {
	switch p {
	case PatternPairing, PatternAllToAll, PatternNeighbor:
		return true
	}
	return false
}

func finitePositive(v float64) bool {
	return v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v)
}

// normalizeJob validates one inline trace entry.
func normalizeJob(i int, j JobSpec) (JobSpec, error) {
	if j.Midplanes < 1 {
		return JobSpec{}, fmt.Errorf("tracesim: job %d requests %d midplanes, want >= 1", i, j.Midplanes)
	}
	if !finitePositive(j.RuntimeSec) {
		return JobSpec{}, fmt.Errorf("tracesim: job %d runtime %v is not positive and finite", i, j.RuntimeSec)
	}
	if j.ArrivalSec < 0 || math.IsInf(j.ArrivalSec, 0) || math.IsNaN(j.ArrivalSec) {
		return JobSpec{}, fmt.Errorf("tracesim: job %d arrival %v is not non-negative and finite", i, j.ArrivalSec)
	}
	j.Pattern = strings.ToLower(strings.TrimSpace(j.Pattern))
	if j.Pattern != "" {
		if !knownPattern(j.Pattern) {
			return JobSpec{}, fmt.Errorf("tracesim: job %d pattern %q (want pairing, all-to-all or neighbor)", i, j.Pattern)
		}
		if j.Pattern == PatternAllToAll && j.Midplanes > MaxAllToAllMidplanes {
			return JobSpec{}, fmt.Errorf("tracesim: job %d declares all-to-all on %d midplanes, exceeding the %d-midplane bound", i, j.Midplanes, MaxAllToAllMidplanes)
		}
		// Patterned jobs are contention-bound by definition; fold the
		// flag in so the two spellings share cache identity.
		j.ContentionBound = true
	}
	return j, nil
}

// normalizeSynthetic validates the generator and fills its defaults.
func (sy Synthetic) normalize() (Synthetic, error) {
	n := Synthetic{Jobs: sy.Jobs}
	if sy.Jobs < 1 || sy.Jobs > MaxJobs {
		return Synthetic{}, fmt.Errorf("tracesim: synthetic jobs %d out of range [1, %d]", sy.Jobs, MaxJobs)
	}
	n.Seed = sy.Seed
	if n.Seed == 0 {
		n.Seed = DefaultSeed
	}
	n.Arrival = strings.ToLower(strings.TrimSpace(sy.Arrival))
	if n.Arrival == "" {
		n.Arrival = ArrivalPoisson
	}
	switch n.Arrival {
	case ArrivalPoisson, ArrivalHeavyTail:
	case ArrivalBurst:
		n.BurstSize = sy.BurstSize
		if n.BurstSize == 0 {
			n.BurstSize = DefaultBurstSize
		}
		if n.BurstSize < 1 || n.BurstSize > MaxJobs {
			return Synthetic{}, fmt.Errorf("tracesim: burst size %d out of range [1, %d]", sy.BurstSize, MaxJobs)
		}
	default:
		return Synthetic{}, fmt.Errorf("tracesim: unknown arrival process %q (want poisson, heavy-tail or burst)", sy.Arrival)
	}
	if sy.BurstSize != 0 && n.Arrival != ArrivalBurst {
		return Synthetic{}, fmt.Errorf("tracesim: burst_size only applies to the burst arrival process")
	}
	n.RateHz = sy.RateHz
	if n.RateHz == 0 {
		n.RateHz = DefaultRateHz
	}
	if !finitePositive(n.RateHz) {
		return Synthetic{}, fmt.Errorf("tracesim: arrival rate %v is not positive and finite", sy.RateHz)
	}
	n.Sizes = sy.Sizes
	if len(n.Sizes) == 0 {
		n.Sizes = defaultSizes
	}
	n.Sizes = append([]int(nil), n.Sizes...)
	for i, s := range n.Sizes {
		if s < 1 {
			return Synthetic{}, fmt.Errorf("tracesim: size[%d] = %d, want >= 1", i, s)
		}
	}
	if len(sy.SizeWeights) > 0 {
		if len(sy.SizeWeights) != len(n.Sizes) {
			return Synthetic{}, fmt.Errorf("tracesim: %d size weights for %d sizes", len(sy.SizeWeights), len(n.Sizes))
		}
		for i, w := range sy.SizeWeights {
			if !finitePositive(w) {
				return Synthetic{}, fmt.Errorf("tracesim: size weight[%d] = %v is not positive and finite", i, w)
			}
		}
		n.SizeWeights = append([]float64(nil), sy.SizeWeights...)
	}
	n.Runtime = strings.ToLower(strings.TrimSpace(sy.Runtime))
	if n.Runtime == "" {
		n.Runtime = RuntimeExp
	}
	switch n.Runtime {
	case RuntimeExp, RuntimeHeavyTail, RuntimeFixed:
	default:
		return Synthetic{}, fmt.Errorf("tracesim: unknown runtime distribution %q (want exp, heavy-tail or fixed)", sy.Runtime)
	}
	n.MeanRuntimeSec = sy.MeanRuntimeSec
	if n.MeanRuntimeSec == 0 {
		n.MeanRuntimeSec = DefaultMeanRuntimeSec
	}
	if !finitePositive(n.MeanRuntimeSec) {
		return Synthetic{}, fmt.Errorf("tracesim: mean runtime %v is not positive and finite", sy.MeanRuntimeSec)
	}
	if sy.PatternFraction < 0 || sy.PatternFraction > 1 || math.IsNaN(sy.PatternFraction) {
		return Synthetic{}, fmt.Errorf("tracesim: pattern fraction %v out of range [0, 1]", sy.PatternFraction)
	}
	n.PatternFraction = sy.PatternFraction
	if n.PatternFraction > 0 {
		n.Pattern = strings.ToLower(strings.TrimSpace(sy.Pattern))
		if n.Pattern == "" {
			n.Pattern = PatternPairing
		}
		if !knownPattern(n.Pattern) {
			return Synthetic{}, fmt.Errorf("tracesim: unknown pattern %q (want pairing, all-to-all or neighbor)", sy.Pattern)
		}
		if n.Pattern == PatternAllToAll {
			for i, s := range n.Sizes {
				if s > MaxAllToAllMidplanes {
					return Synthetic{}, fmt.Errorf("tracesim: all-to-all size[%d] = %d exceeds the %d-midplane bound", i, s, MaxAllToAllMidplanes)
				}
			}
		}
	} else if strings.TrimSpace(sy.Pattern) != "" {
		return Synthetic{}, fmt.Errorf("tracesim: pattern set but pattern_fraction is 0")
	}
	return n, nil
}

// Normalize validates the spec and returns its canonical form:
// machine and policy spellings canonicalized, generator defaults
// filled, every knob that cannot affect the result zeroed. The
// returned spec's Key is the trace's cache identity.
func (s Spec) Normalize() (Spec, error) {
	n := Spec{Name: strings.TrimSpace(s.Name), Backfill: s.Backfill}
	if strings.TrimSpace(s.Machine) == "" {
		return Spec{}, fmt.Errorf("tracesim: trace needs a machine (catalog name or midplane grid shape)")
	}
	machine, err := scenario.CanonicalMachine(s.Machine)
	if err != nil {
		return Spec{}, err
	}
	n.Machine = machine
	n.Policy = strings.ToLower(strings.TrimSpace(s.Policy))
	if n.Policy == "" {
		n.Policy = PolicyFirstFit
	}
	if !knownPolicy(n.Policy) {
		return Spec{}, fmt.Errorf("tracesim: unknown policy %q (want first-fit, best-bisection or contention-aware)", s.Policy)
	}
	switch {
	case len(s.Jobs) > 0 && s.Synthetic != nil:
		return Spec{}, fmt.Errorf("tracesim: trace declares both inline jobs and a synthetic generator; want exactly one")
	case len(s.Jobs) > 0:
		if len(s.Jobs) > MaxJobs {
			return Spec{}, fmt.Errorf("tracesim: %d inline jobs exceed the %d-job bound", len(s.Jobs), MaxJobs)
		}
		n.Jobs = make([]JobSpec, len(s.Jobs))
		for i, j := range s.Jobs {
			nj, err := normalizeJob(i, j)
			if err != nil {
				return Spec{}, err
			}
			n.Jobs[i] = nj
		}
	case s.Synthetic != nil:
		sy, err := s.Synthetic.normalize()
		if err != nil {
			return Spec{}, err
		}
		n.Synthetic = &sy
	default:
		return Spec{}, fmt.Errorf("tracesim: trace has no jobs (want an inline job list or a synthetic generator)")
	}
	if s.Failures != nil {
		f, err := s.Failures.Normalize()
		if err != nil {
			return Spec{}, err
		}
		// Traces model failures at midplane granularity; the
		// correlated region grows in midplane space here (a rack-level
		// outage), unlike in scenarios where it grows over links.
		if !f.MidplaneScoped() && f.Model != faults.ModelCorrelatedRegion {
			return Spec{}, fmt.Errorf("tracesim: failure model %q: trace simulations model failures at midplane granularity (want midplanes, random_midplanes or correlated_region)", f.Model)
		}
		if f.Model == faults.ModelMidplanes {
			m, err := scenario.ResolveMachine(n.Machine)
			if err != nil {
				return Spec{}, err
			}
			for _, id := range f.Midplanes {
				if id >= m.Midplanes() {
					return Spec{}, fmt.Errorf("tracesim: failed midplane %d out of range [0, %d) on %s", id, m.Midplanes(), n.Machine)
				}
			}
		}
		n.Failures = &f
	}
	return n, nil
}

// Validate reports whether the spec normalizes cleanly.
func (s Spec) Validate() error {
	_, err := s.Normalize()
	return err
}

// Key returns the canonical JSON encoding of the spec — the trace's
// cache identity. Call on a normalized Spec.
func (s Spec) Key() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Spec contains only marshalable fields; unreachable.
		panic(fmt.Sprintf("tracesim: marshal spec: %v", err))
	}
	return string(b)
}

// Hash returns a short content hash of Key, used in experiment IDs.
func (s Spec) Hash() string {
	sum := sha256.Sum256([]byte(s.Key()))
	return hex.EncodeToString(sum[:6])
}

// ID returns the synthesized experiment ID of the trace
// ("trace:abcdef012345"); like every dynamic ID it carries a ':', so
// it cannot collide with registry IDs.
func (s Spec) ID() string { return "trace:" + s.Hash() }

// JobCount returns the trace length without materializing it.
func (s Spec) JobCount() int {
	if s.Synthetic != nil {
		return s.Synthetic.Jobs
	}
	return len(s.Jobs)
}

// Cost classifies the trace for admission control. Queue simulations
// are never cheap — like sweeps, they must not starve the cheap
// registry artifacts they share the serving layer with — and long or
// machine-scale traces are heavy.
func (s Spec) Cost() string {
	if s.JobCount() > 1024 {
		return scenario.CostHeavy
	}
	if m, err := scenario.ResolveMachine(strings.ToLower(strings.TrimSpace(s.Machine))); err == nil && m.Midplanes() > 512 {
		return scenario.CostHeavy
	}
	return scenario.CostModerate
}

// Title returns the human label for reports.
func (s Spec) Title() string {
	if s.Name != "" {
		return s.Name
	}
	src := fmt.Sprintf("%d jobs", s.JobCount())
	if s.Synthetic != nil {
		src = fmt.Sprintf("%d %s jobs", s.Synthetic.Jobs, s.Synthetic.Arrival)
	}
	title := fmt.Sprintf("trace %s · %s · %s", s.Machine, s.Policy, src)
	if s.Backfill {
		title += " · backfill"
	}
	if s.Failures != nil {
		title += " · " + s.Failures.Model
	}
	return title
}
