package tracesim

import (
	"context"
	"encoding/json"
	"testing"

	"netpart/internal/faults"
)

// differentialSpecs is the oracle-equivalence matrix: every golden
// trace (synthetic and SWF, all three policies, backfill on) plus
// backfill-off, hard-outage (kill + requeue) and degrade-window
// variants per policy. Short mode (the CI race matrix) shrinks the
// synthetic variants but drops nothing — every code path keeps its
// differential check.
func differentialSpecs(t *testing.T) map[string]Spec {
	t.Helper()
	specs := goldenSpecs(t)
	jobs := 50
	if testing.Short() {
		jobs = 18
	}
	for _, policy := range allPolicies {
		variant := func(pattern string) Spec {
			return Spec{
				Machine: "4x2x2x1", Policy: policy, Backfill: true,
				Synthetic: &Synthetic{
					Jobs: jobs, Seed: 17, RateHz: 0.05, Sizes: []int{1, 2, 4},
					Runtime: RuntimeExp, MeanRuntimeSec: 200,
					Pattern: pattern, PatternFraction: 0.6,
				},
			}
		}
		nb := variant(PatternPairing)
		nb.Backfill = false
		specs["diff_nobackfill_"+policy] = nb

		hard := variant(PatternAllToAll)
		hard.Failures = &faults.Spec{
			Model: faults.ModelMidplanes, Midplanes: []int{0, 5},
			Windows: []faults.Window{{StartSec: 100, EndSec: 400}},
		}
		specs["diff_hard_outage_"+policy] = hard

		deg := variant(PatternNeighbor)
		deg.Failures = &faults.Spec{
			Model: faults.ModelMidplanes, Midplanes: []int{2, 3}, Factor: 0.5,
			Windows: []faults.Window{{StartSec: 0, EndSec: 600}},
		}
		specs["diff_degrade_"+policy] = deg
	}
	return specs
}

// runCaptured executes one spec and returns the Result JSON and the
// full event stream JSON.
func runCaptured(t *testing.T, spec Spec, oracle bool) (resultJSON, eventsJSON []byte) {
	t.Helper()
	var events []Event
	out, err := Run(context.Background(), spec, Options{
		Oracle:  oracle,
		OnEvent: func(ev Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatalf("oracle=%v: %v", oracle, err)
	}
	resultJSON, err = out.JSON()
	if err != nil {
		t.Fatal(err)
	}
	eventsJSON, err = json.MarshalIndent(events, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return resultJSON, eventsJSON
}

// TestDifferentialOracle holds the cached fast path — fused placement
// scans, plan cache, scalar contention memo, flow-set cache, pooled
// simulators — byte-identical to the uncached reference
// implementation on every trace of the matrix: same Result JSON (the
// golden shape), same event stream. Any divergence is a correctness
// bug in a cache or fused scan, not a tolerance question.
func TestDifferentialOracle(t *testing.T) {
	for name, spec := range differentialSpecs(t) {
		t.Run(name, func(t *testing.T) {
			fastRes, fastEv := runCaptured(t, spec, false)
			oracleRes, oracleEv := runCaptured(t, spec, true)
			if string(fastRes) != string(oracleRes) {
				t.Errorf("result JSON diverges from the oracle")
			}
			if string(fastEv) != string(oracleEv) {
				t.Errorf("event stream diverges from the oracle")
			}
		})
	}
}

// TestDifferentialOracleRepeatable: a second fast-path run over a spec
// the caches are now hot for still matches the oracle — hits are as
// correct as misses.
func TestDifferentialOracleRepeatable(t *testing.T) {
	spec := Spec{
		Machine: "juqueen", Policy: PolicyContentionAware, Backfill: true,
		Synthetic: &Synthetic{
			Jobs: 30, Seed: 23, RateHz: 0.04, Sizes: []int{1, 2, 4, 8},
			Pattern: PatternPairing, PatternFraction: 0.5,
		},
	}
	oracleRes, oracleEv := runCaptured(t, spec, true)
	for round := 0; round < 2; round++ {
		fastRes, fastEv := runCaptured(t, spec, false)
		if string(fastRes) != string(oracleRes) || string(fastEv) != string(oracleEv) {
			t.Fatalf("round %d: hot-cache run diverges from the oracle", round)
		}
	}
}
