package tracesim

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"netpart/internal/experiments"
	"netpart/internal/scenario"
	"netpart/internal/scenario/sweep"
	"netpart/internal/tabulate"
)

// Grid point bounds: trace points are whole queue simulations, so the
// caps sit well below the scenario sweep's.
const (
	// DefaultMaxGridPoints caps expansion when the grid does not set
	// MaxPoints.
	DefaultMaxGridPoints = 256
	// HardMaxGridPoints is the ceiling no grid may raise MaxPoints
	// above.
	HardMaxGridPoints = 1024
	// MaxGridJobs bounds the summed trace length across a grid's
	// points. MaxJobs and HardMaxGridPoints are each enforced, but
	// their product would let one small request pin gigabytes of
	// per-job state (expanded specs, outcomes, the cached result), so
	// the total is bounded too.
	MaxGridJobs = 65536
)

// Grid is a declarative trace sweep: a base Spec plus dot-path axes
// (the sweep axis machinery — cartesian by default, zipped on
// request), e.g. policy × arrival-rate grids via "policy" and
// "synthetic.rate_hz".
type Grid struct {
	Name string       `json:"name,omitempty"`
	Base Spec         `json:"base"`
	Axes []sweep.Axis `json:"axes,omitempty"`
	// MaxPoints overrides DefaultMaxGridPoints (min 1, max
	// HardMaxGridPoints).
	MaxPoints int `json:"max_points,omitempty"`
}

// Point is one expanded grid point: a validated, normalized trace
// spec plus the axis assignment that produced it.
type Point struct {
	Index  int
	Spec   Spec
	Coords []sweep.Coord
}

// Expand materializes the grid through the shared dot-path expander:
// every combination of axis values applied to the base spec, strictly
// decoded, validated and normalized, row-major and bounded by
// MaxPoints.
func (g Grid) Expand() ([]Point, error) {
	maxPoints := g.MaxPoints
	switch {
	case maxPoints == 0:
		maxPoints = DefaultMaxGridPoints
	case maxPoints < 1 || maxPoints > HardMaxGridPoints:
		return nil, fmt.Errorf("tracesim: max_points %d out of range [1, %d]", g.MaxPoints, HardMaxGridPoints)
	}
	var points []Point
	totalJobs := 0
	err := sweep.ExpandAxes(g.Base, g.Axes, maxPoints, func(idx int, patched []byte, coords []sweep.Coord) error {
		var spec Spec
		dec := json.NewDecoder(bytes.NewReader(patched))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return fmt.Errorf("tracesim: point %d (%s): %w", idx, sweep.DescribeCoords(coords), err)
		}
		norm, err := spec.Normalize()
		if err != nil {
			return fmt.Errorf("tracesim: point %d (%s): %w", idx, sweep.DescribeCoords(coords), err)
		}
		if totalJobs += norm.JobCount(); totalJobs > MaxGridJobs {
			return fmt.Errorf("tracesim: grid expands past %d total jobs at point %d", MaxGridJobs, idx)
		}
		points = append(points, Point{Index: idx, Spec: norm, Coords: coords})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// GridID returns the grid's content identity: "tracegrid:" plus a
// hash over the name and, per expanded point, the canonical spec and
// the rendered axis assignment — everything that reaches the output
// bytes, mirroring sweep.ID.
func GridID(name string, points []Point) string {
	h := sha256.New()
	h.Write([]byte(name))
	for _, p := range points {
		h.Write([]byte{0})
		h.Write([]byte(p.Spec.Key()))
		for _, c := range p.Coords {
			h.Write([]byte{1})
			h.Write([]byte(c.Path))
			h.Write([]byte{2})
			h.Write([]byte(c.Value))
		}
	}
	return "tracegrid:" + hex.EncodeToString(h.Sum(nil)[:6])
}

// GridCost derives the admission cost class from the expanded points:
// never cheap, heavy when the grid is large or any point is heavy.
func GridCost(points []Point) string {
	if len(points) > 8 {
		return scenario.CostHeavy
	}
	for _, p := range points {
		if p.Spec.Cost() == scenario.CostHeavy {
			return scenario.CostHeavy
		}
	}
	return scenario.CostModerate
}

// Title returns the grid's human label.
func (g Grid) Title() string {
	if g.Name != "" {
		return g.Name
	}
	if len(g.Axes) == 0 {
		return g.Base.Title()
	}
	paths := make([]string, len(g.Axes))
	for i, ax := range g.Axes {
		paths[i] = ax.Path
	}
	return "trace sweep over " + strings.Join(paths, " × ")
}

// PointResult is one executed grid point. Exactly one of Result and
// Err is set: a point that fails at run time is isolated — its error
// is recorded and the grid continues.
type PointResult struct {
	Index  int           `json:"index"`
	Coords []sweep.Coord `json:"coords"`
	Result *Result       `json:"result,omitempty"`
	Err    string        `json:"error,omitempty"`
}

// GridResult is a completed trace grid: every point in index order.
type GridResult struct {
	ID        string        `json:"id"`
	Name      string        `json:"name,omitempty"`
	AxisPaths []string      `json:"axis_paths"`
	Points    []PointResult `json:"points"`
	Failed    int           `json:"failed"`
}

// GridOptions tunes a grid execution.
type GridOptions struct {
	// Workers bounds the worker pool (0 = runnable CPUs, 1 =
	// sequential). Output is byte-identical at any pool size.
	Workers int
	// OnPoint, when non-nil, receives every completed point in
	// completion order. Calls are serialized.
	OnPoint func(PointResult)
	// OnProgress, when non-nil, receives (completedPoints, total)
	// after every point. Calls are serialized and monotone.
	OnProgress func(done, total int)
	// RunPoint, when non-nil, replaces Run as the per-point executor —
	// the seam a distributed coordinator uses to dispatch points to
	// worker daemons. It must be byte-equivalent to Run for the same
	// spec (including error strings), or the grid result stops being
	// deterministic.
	RunPoint func(ctx context.Context, spec Spec) (*Result, error)
}

// RunGrid executes pre-expanded grid points on the experiment
// worker-pool driver (one point per pool unit — every point is a
// whole queue simulation, so there is nothing to amortize by
// sharding). Point failures are isolated into PointResult.Err; only
// context cancellation aborts the grid. Results land in
// index-addressed slots, so the returned GridResult is
// byte-deterministic regardless of worker count.
func RunGrid(ctx context.Context, g Grid, points []Point, opts GridOptions) (*GridResult, error) {
	res := &GridResult{
		ID:     GridID(g.Name, points),
		Name:   g.Name,
		Points: make([]PointResult, len(points)),
	}
	for _, ax := range g.Axes {
		res.AxisPaths = append(res.AxisPaths, ax.Path)
	}
	if len(points) == 0 {
		return res, nil
	}

	runPoint := opts.RunPoint
	if runPoint == nil {
		runPoint = func(ctx context.Context, spec Spec) (*Result, error) {
			return Run(ctx, spec, Options{})
		}
	}

	cfg := experiments.Config{Workers: opts.Workers}
	var mu sync.Mutex
	done := 0
	err := cfg.ForEach(ctx, len(points), func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		pr := PointResult{Index: i, Coords: points[i].Coords}
		out, err := runPoint(ctx, points[i].Spec)
		switch {
		case err != nil && ctx.Err() != nil:
			return ctx.Err()
		case err != nil:
			pr.Err = err.Error()
		default:
			pr.Result = out
		}
		res.Points[i] = pr

		mu.Lock()
		done++
		d := done
		if opts.OnPoint != nil {
			opts.OnPoint(pr)
		}
		if opts.OnProgress != nil {
			opts.OnProgress(d, len(points))
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range res.Points {
		if res.Points[i].Err != "" {
			res.Failed++
		}
	}
	return res, nil
}

// Table renders the grid as one row per point, in index order: the
// axis assignment followed by the headline trace metrics. The
// rendering is byte-deterministic.
func (r *GridResult) Table(title string) tabulate.Table {
	headers := []string{"#"}
	headers = append(headers, r.AxisPaths...)
	headers = append(headers, "jobs", "makespan (s)", "avg wait (s)", "avg stretch",
		"contention", "utilization", "fragmentation", "backfilled", "Δmakespan", "error")
	t := tabulate.Table{Title: title, Headers: headers}
	for _, p := range r.Points {
		row := make([]any, 0, len(headers))
		row = append(row, p.Index)
		byPath := map[string]string{}
		for _, c := range p.Coords {
			byPath[c.Path] = c.Value
		}
		for _, path := range r.AxisPaths {
			row = append(row, byPath[path])
		}
		if res := p.Result; res != nil {
			m := res.Metrics
			dm := any("-")
			if m.MakespanDeltaX != 0 {
				dm = m.MakespanDeltaX
			}
			row = append(row, m.Jobs, m.MakespanSec, m.AvgWaitSec, m.AvgStretch,
				m.ContentionX, m.Utilization, m.Fragmentation, m.Backfilled, dm, "")
		} else {
			row = append(row, "-", "-", "-", "-", "-", "-", "-", "-", "-", p.Err)
		}
		t.AddRow(row...)
	}
	return t
}
