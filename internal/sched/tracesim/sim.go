package tracesim

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"

	"netpart/internal/bgq"
	"netpart/internal/faults"
	"netpart/internal/model"
	"netpart/internal/netsim"
	"netpart/internal/route"
	"netpart/internal/scenario"
	"netpart/internal/sched"
	"netpart/internal/tabulate"
	"netpart/internal/torus"
	"netpart/internal/workload"
)

// Event is one simulator occurrence, emitted in simulation-time order
// (the event loop is sequential, so callbacks are serialized).
type Event struct {
	// Kind is "start", "finish", "kill" (a hard outage evicted the
	// job mid-run; it requeues), "outage" (a failure window opened) or
	// "heal" (it closed). Outage and heal events carry Job -1 and the
	// affected cell count in Midplanes.
	Kind    string  `json:"kind"`
	TimeSec float64 `json:"time_sec"`
	Job     int     `json:"job"`

	Midplanes int    `json:"midplanes"`
	Geometry  string `json:"geometry,omitempty"`
	// Dilation is the job's runtime stretch from its placed geometry.
	Dilation float64 `json:"dilation,omitempty"`
	// FreeMidplanes is the machine's free count after the event
	// (midplanes inside an open hard-outage window are not free).
	FreeMidplanes int  `json:"free_midplanes"`
	Backfilled    bool `json:"backfilled,omitempty"`
}

// Options tunes one simulation run.
type Options struct {
	// OnEvent, when non-nil, receives every start/finish event in
	// simulation-time order.
	OnEvent func(Event)
	// OnProgress, when non-nil, receives (finishedJobs, totalJobs)
	// after every completion.
	OnProgress func(done, total int)
}

// JobOutcome is one job's simulated fate.
type JobOutcome struct {
	ID         int     `json:"id"`
	Midplanes  int     `json:"midplanes"`
	ArrivalSec float64 `json:"arrival_sec"`
	StartSec   float64 `json:"start_sec"`
	EndSec     float64 `json:"end_sec"`
	WaitSec    float64 `json:"wait_sec"`
	// RuntimeSec is the actual (dilated) runtime; BaseSec the runtime
	// on the best geometry of the job's size.
	RuntimeSec float64 `json:"runtime_sec"`
	BaseSec    float64 `json:"base_sec"`
	// Dilation = RuntimeSec / BaseSec: the contention the allocation
	// geometry cost this job.
	Dilation float64 `json:"dilation"`
	// Stretch = (WaitSec + RuntimeSec) / BaseSec: the queue's total
	// slowdown of the job.
	Stretch     float64 `json:"stretch"`
	Geometry    string  `json:"geometry"`
	BisectionBW int     `json:"bisection_bw"`
	Pattern     string  `json:"pattern,omitempty"`
	Backfilled  bool    `json:"backfilled,omitempty"`
	// Restarts counts hard-outage evictions the job survived before
	// its recorded (successful) run.
	Restarts int `json:"restarts,omitempty"`
}

// Metrics are the trace's headline numbers.
type Metrics struct {
	Jobs        int     `json:"jobs"`
	Patterned   int     `json:"patterned"`
	Backfilled  int     `json:"backfilled"`
	MakespanSec float64 `json:"makespan_sec"`
	AvgWaitSec  float64 `json:"avg_wait_sec"`
	MaxWaitSec  float64 `json:"max_wait_sec"`
	AvgStretch  float64 `json:"avg_stretch"`
	MaxStretch  float64 `json:"max_stretch"`
	// ContentionX is the run-weighted mean dilation (total actual
	// runtime over total base runtime): the queue-wide contention
	// factor the policy left on the table.
	ContentionX float64 `json:"contention_x"`
	// Utilization is allocated midplane-seconds over machine
	// midplane-seconds across the makespan.
	Utilization float64 `json:"utilization"`
	// Fragmentation is the time-weighted mean fraction of midplanes
	// idle while at least one job was waiting: capacity the schedule
	// could not use because no fitting cuboid existed (or FCFS order
	// forbade it).
	Fragmentation float64 `json:"fragmentation"`
	// MidplaneSeconds is the utilization integral.
	MidplaneSeconds float64 `json:"midplane_seconds"`

	// Failure metrics (Spec.Failures; all zero on a healthy machine).
	// FailedMidplanes and DegradedMidplanes count the affected cells;
	// Kills the hard-outage evictions. The Healthy* fields are the
	// baseline run of the same spec with failures stripped, and the
	// Delta ratios failed/healthy — the robustness cost of the failure
	// under this policy.
	FailedMidplanes    int     `json:"failed_midplanes,omitempty"`
	DegradedMidplanes  int     `json:"degraded_midplanes,omitempty"`
	Kills              int     `json:"kills,omitempty"`
	HealthyMakespanSec float64 `json:"healthy_makespan_sec,omitempty"`
	HealthyAvgStretch  float64 `json:"healthy_avg_stretch,omitempty"`
	HealthyContentionX float64 `json:"healthy_contention_x,omitempty"`
	MakespanDeltaX     float64 `json:"makespan_delta_x,omitempty"`
	StretchDeltaX      float64 `json:"stretch_delta_x,omitempty"`
	ContentionDeltaX   float64 `json:"contention_delta_x,omitempty"`
}

// Result is a completed trace simulation: the normalized spec, the
// resolved machine, every job in ID order and the headline metrics.
// All fields are deterministic functions of the normalized Spec.
type Result struct {
	Spec    Spec   `json:"spec"`
	Machine string `json:"machine"`
	// MachineMidplanes is the simulated host's capacity.
	MachineMidplanes int          `json:"machine_midplanes"`
	Jobs             []JobOutcome `json:"jobs"`
	Metrics          Metrics      `json:"metrics"`
}

// JSON encodes the result as indented, byte-deterministic JSON (the
// encoding the golden files pin).
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}


// patternSecMemo caches pattern round times by "geometry|pattern".
// The value is machine-independent and a deterministic function of
// the key, so one process-wide cache (mirroring iso.Bisection's
// memoized cuboid search) serves every simulation, grid point and
// serving flight without recomputing the flow-level netsim rounds.
var patternSecMemo sync.Map

// scorer computes placement-time contention dilation: the max-min
// fair round time of a job's communication pattern on its placed
// geometry, relative to the best geometry of the same size.
type scorer struct {
	m *bgq.Machine
}

func newScorer(m *bgq.Machine) *scorer {
	return &scorer{m: m}
}

// patternSec returns the flow-level simulated time of one pattern
// round on the midplane-level torus of the geometry (0 when the
// geometry has no links, i.e. a single midplane).
func (sc *scorer) patternSec(geom torus.Shape, pattern string) (float64, error) {
	key := geom.String() + "|" + pattern
	if v, ok := patternSecMemo.Load(key); ok {
		return v.(float64), nil
	}
	// Length-1 dimensions carry no links; drop them so the torus is
	// the real communication graph of the cuboid.
	dims := make([]int, 0, len(geom))
	for _, d := range geom {
		if d > 1 {
			dims = append(dims, d)
		}
	}
	if len(dims) == 0 {
		patternSecMemo.Store(key, 0.0)
		return 0, nil
	}
	tor, err := torus.New(dims...)
	if err != nil {
		return 0, fmt.Errorf("tracesim: geometry %s: %w", geom, err)
	}
	r := route.NewRouter(tor)
	var demands []route.Demand
	switch pattern {
	case PatternPairing:
		demands, err = workload.BisectionPairing(r, scenario.DefaultBytes)
	case PatternAllToAll:
		demands, err = workload.AllToAll(tor, scenario.DefaultBytes)
	case PatternNeighbor:
		demands, err = workload.NearestNeighbor(tor, scenario.DefaultBytes)
	default:
		err = fmt.Errorf("tracesim: unknown pattern %q", pattern)
	}
	if err != nil {
		return 0, err
	}
	caps := make([]float64, r.NumLinks())
	for i := range caps {
		caps[i] = model.LinkBytesPerSec
	}
	sim := netsim.NewWithCapacities(caps)
	started := false
	for _, d := range demands {
		if path := r.Route(d.Src, d.Dst, nil); len(path) > 0 {
			sim.StartFlow(path, d.Bytes, 0)
			started = true
		}
	}
	var sec float64
	if started {
		sec = sim.RunUntilIdle()
	}
	patternSecMemo.Store(key, sec)
	return sec, nil
}

// dilation scores one placement: patterned jobs by the flow-level
// pattern round time relative to the best geometry of the size,
// contention-bound jobs without a pattern by the bisection-bandwidth
// ratio, everything else 1.
func (sc *scorer) dilation(js JobSpec, pl sched.Placement) (float64, error) {
	if js.Pattern == "" {
		if !js.ContentionBound {
			return 1, nil
		}
		best, ok := sc.m.Best(js.Midplanes)
		if !ok {
			return 1, nil
		}
		return float64(best.BisectionBW()) / float64(pl.Partition().BisectionBW()), nil
	}
	best, ok := sc.m.Best(js.Midplanes)
	if !ok {
		return 1, nil
	}
	bestSec, err := sc.patternSec(best.Geometry(), js.Pattern)
	if err != nil {
		return 0, err
	}
	placedSec, err := sc.patternSec(pl.Lens, js.Pattern)
	if err != nil {
		return 0, err
	}
	if bestSec <= 0 || placedSec <= bestSec {
		// The placed geometry is no worse than the bisection-best one
		// for this pattern; base runtime already covers it.
		return 1, nil
	}
	return placedSec / bestSec, nil
}

// Run executes the trace simulation: normalize, resolve the machine,
// materialize the trace, schedule it under the policy with
// placement-time contention feedback, and reduce the schedule to
// metrics. The context is checked once per event-loop iteration.
func Run(ctx context.Context, spec Spec, opts Options) (*Result, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m, err := scenario.ResolveMachine(norm.Machine)
	if err != nil {
		return nil, err
	}
	if m.Midplanes() > MaxMachineMidplanes {
		return nil, fmt.Errorf("tracesim: machine %s has %d midplanes, exceeding the %d bound", norm.Machine, m.Midplanes(), MaxMachineMidplanes)
	}

	trace := norm.trace()
	n := len(trace)
	jobs := make([]sched.Job, n)
	for i, j := range trace {
		jobs[i] = sched.Job{
			ID:              i,
			Midplanes:       j.Midplanes,
			ArrivalSec:      j.ArrivalSec,
			BaseDurationSec: j.RuntimeSec,
			ContentionBound: j.ContentionBound,
		}
	}

	sc := newScorer(m)
	total := m.Midplanes()
	free := total
	done := 0
	restarts := make([]int, n)

	// Failure model: resolve the affected cells once, then one sched
	// outage per window (no windows: the failure holds for the whole
	// run).
	var outages []sched.Outage
	var failCells []int
	if f := norm.Failures; f != nil {
		failCells, err = f.ResolveMidplanes(m.Grid)
		if err != nil {
			return nil, err
		}
		windows := f.Windows
		if len(windows) == 0 {
			windows = []faults.Window{{StartSec: 0, EndSec: math.Inf(1)}}
		}
		for _, w := range windows {
			outages = append(outages, sched.Outage{StartSec: w.StartSec, EndSec: w.EndSec, Cells: failCells, Factor: f.Factor})
		}
	}
	// dilations records the scored dilation per job. The Duration hook
	// may run several times for one job (backfill admission probes),
	// but its final call for a job is always for the placement actually
	// used, so the last write is the one that held.
	dilations := make([]float64, n)
	var scoreErr error
	sopts := sched.Options{
		Backfill: norm.Backfill,
		Duration: func(j sched.Job, pl sched.Placement) float64 {
			d, err := sc.dilation(trace[j.ID], pl)
			if err != nil && scoreErr == nil {
				scoreErr = err
				d = 1
			}
			dilations[j.ID] = d
			return j.BaseDurationSec * d
		},
		OnStart: func(a sched.Allocation) {
			free -= a.Job.Midplanes
			if opts.OnEvent != nil {
				opts.OnEvent(Event{
					Kind: "start", TimeSec: a.StartSec, Job: a.Job.ID,
					Midplanes: a.Job.Midplanes, Geometry: a.Placement.Lens.String(),
					Dilation:      dilations[a.Job.ID],
					FreeMidplanes: free, Backfilled: a.Backfilled,
				})
			}
		},
		OnFinish: func(a sched.Allocation) {
			free += a.Job.Midplanes
			done++
			if opts.OnEvent != nil {
				opts.OnEvent(Event{
					Kind: "finish", TimeSec: a.EndSec, Job: a.Job.ID,
					Midplanes: a.Job.Midplanes, Geometry: a.Placement.Lens.String(),
					Dilation:      dilations[a.Job.ID],
					FreeMidplanes: free, Backfilled: a.Backfilled,
				})
			}
			if opts.OnProgress != nil {
				opts.OnProgress(done, n)
			}
		},
		Outages: outages,
		OnOutage: func(_ int, open bool, timeSec float64, gridFree int) {
			free = gridFree // resync: blocking/healing changes free capacity
			if opts.OnEvent != nil {
				kind := "outage"
				if !open {
					kind = "heal"
				}
				opts.OnEvent(Event{
					Kind: kind, TimeSec: timeSec, Job: -1,
					Midplanes: len(failCells), FreeMidplanes: free,
				})
			}
		},
		OnKill: func(a sched.Allocation, timeSec float64, gridFree int) {
			free = gridFree
			restarts[a.Job.ID]++
			if opts.OnEvent != nil {
				opts.OnEvent(Event{
					Kind: "kill", TimeSec: timeSec, Job: a.Job.ID,
					Midplanes: a.Job.Midplanes, Geometry: a.Placement.Lens.String(),
					Dilation:      dilations[a.Job.ID],
					FreeMidplanes: free, Backfilled: a.Backfilled,
				})
			}
		},
	}
	policy, ok := sched.PolicyByName(norm.Policy)
	if !ok {
		// Normalize validated the spelling; unreachable.
		return nil, fmt.Errorf("tracesim: unknown policy %q", norm.Policy)
	}
	sres, err := sched.RunContext(ctx, m, policy, jobs, sopts)
	if err != nil {
		return nil, err
	}
	if scoreErr != nil {
		return nil, scoreErr
	}

	res := &Result{
		Spec:             norm,
		Machine:          m.Name,
		MachineMidplanes: total,
		Jobs:             make([]JobOutcome, 0, n),
	}
	for _, a := range sres.Allocations {
		js := trace[a.Job.ID]
		run := a.EndSec - a.StartSec
		// Killed jobs are requeued with their arrival reset to the
		// kill time; the outcome reports against the original trace
		// arrival, so wait and stretch include the evicted partial run.
		arrival := js.ArrivalSec
		out := JobOutcome{
			ID:         a.Job.ID,
			Midplanes:  a.Job.Midplanes,
			ArrivalSec: arrival,
			StartSec:   a.StartSec,
			EndSec:     a.EndSec,
			WaitSec:    a.StartSec - arrival,
			RuntimeSec: run,
			BaseSec:    a.Job.BaseDurationSec,
			Dilation:   dilations[a.Job.ID],
			Stretch:    (a.EndSec - arrival) / a.Job.BaseDurationSec,
			Geometry:   a.Placement.Lens.String(),
			Pattern:    js.Pattern,
			Backfilled: a.Backfilled,
			Restarts:   restarts[a.Job.ID],
		}
		out.BisectionBW = a.Placement.Partition().BisectionBW()
		res.Jobs = append(res.Jobs, out)
	}
	res.Metrics = reduce(res.Jobs, total, sres)
	for _, j := range trace {
		if j.Pattern != "" {
			res.Metrics.Patterned++
		}
	}
	if f := norm.Failures; f != nil {
		met := &res.Metrics
		met.Kills = len(sres.Kills)
		if f.Factor == 0 {
			met.FailedMidplanes = len(failCells)
		} else if f.Factor < 1 {
			met.DegradedMidplanes = len(failCells)
		}
		hm, err := healthyMetrics(ctx, norm)
		if err != nil {
			return nil, fmt.Errorf("tracesim: healthy baseline: %w", err)
		}
		met.HealthyMakespanSec = hm.MakespanSec
		met.HealthyAvgStretch = hm.AvgStretch
		met.HealthyContentionX = hm.ContentionX
		if hm.MakespanSec > 0 {
			met.MakespanDeltaX = met.MakespanSec / hm.MakespanSec
		}
		if hm.AvgStretch > 0 {
			met.StretchDeltaX = met.AvgStretch / hm.AvgStretch
		}
		if hm.ContentionX > 0 {
			met.ContentionDeltaX = met.ContentionX / hm.ContentionX
		}
	}
	return res, nil
}

// healthyMemo caches the healthy-baseline metrics by the healthy
// spec's Key. Sweeping a failure axis re-runs the same healthy twin
// for every point, so one process-wide cache (the patternSecMemo
// precedent) pays for the baseline once per distinct spec.
var healthyMemo sync.Map

// healthyMetrics runs the failure-stripped twin of a normalized spec
// and returns its metrics (memoized process-wide).
func healthyMetrics(ctx context.Context, norm Spec) (Metrics, error) {
	healthy := norm
	healthy.Failures = nil
	key := healthy.Key()
	if v, ok := healthyMemo.Load(key); ok {
		return v.(Metrics), nil
	}
	hres, err := Run(ctx, healthy, Options{})
	if err != nil {
		return Metrics{}, err
	}
	healthyMemo.Store(key, hres.Metrics)
	return hres.Metrics, nil
}

// reduce computes the headline metrics from the per-job outcomes.
func reduce(jobs []JobOutcome, machineMidplanes int, sres sched.Result) Metrics {
	met := Metrics{Jobs: len(jobs), MakespanSec: sres.MakespanSec, MidplaneSeconds: sres.MidplaneSeconds}
	if len(jobs) == 0 {
		return met
	}
	totalBase := 0.0
	for _, j := range jobs {
		met.AvgWaitSec += j.WaitSec
		if j.WaitSec > met.MaxWaitSec {
			met.MaxWaitSec = j.WaitSec
		}
		met.AvgStretch += j.Stretch
		if j.Stretch > met.MaxStretch {
			met.MaxStretch = j.Stretch
		}
		totalBase += j.BaseSec
		if j.Backfilled {
			met.Backfilled++
		}
	}
	met.AvgWaitSec /= float64(len(jobs))
	met.AvgStretch /= float64(len(jobs))
	if totalBase > 0 {
		met.ContentionX = sres.TotalRunSec / totalBase
	}
	if met.MakespanSec > 0 && machineMidplanes > 0 {
		met.Utilization = met.MidplaneSeconds / (float64(machineMidplanes) * met.MakespanSec)
	}
	met.Fragmentation = fragmentation(jobs, machineMidplanes)
	return met
}

// fragmentation integrates the free-midplane fraction over the
// intervals during which at least one job was waiting (arrived but
// not started), normalized by the total waiting time. It is computed
// from the completed schedule in one O(n log n) sweep: every boundary
// is an arrival, start or end, so the waiting count and occupancy are
// constant inside each interval and maintained as running counters —
// an arrival adds a waiter, a start retires one and occupies the
// job's midplanes, an end releases them. Deltas at equal times all
// apply before their interval is scored (integer sums, so the result
// does not depend on tie order).
func fragmentation(jobs []JobOutcome, machineMidplanes int) float64 {
	if machineMidplanes <= 0 || len(jobs) == 0 {
		return 0
	}
	type delta struct {
		timeSec float64
		waiting int
		busy    int
	}
	events := make([]delta, 0, 3*len(jobs))
	for _, j := range jobs {
		events = append(events,
			delta{j.ArrivalSec, 1, 0},
			delta{j.StartSec, -1, j.Midplanes},
			delta{j.EndSec, 0, -j.Midplanes})
	}
	sort.Slice(events, func(i, k int) bool { return events[i].timeSec < events[k].timeSec })
	fragSec, waitSec := 0.0, 0.0
	waiting, busy := 0, 0
	for i := 0; i < len(events); {
		t := events[i].timeSec
		for i < len(events) && events[i].timeSec == t {
			waiting += events[i].waiting
			busy += events[i].busy
			i++
		}
		if i == len(events) || waiting <= 0 {
			continue
		}
		dt := events[i].timeSec - t
		waitSec += dt
		fragSec += dt * float64(machineMidplanes-busy) / float64(machineMidplanes)
	}
	if waitSec == 0 {
		return 0
	}
	return fragSec / waitSec
}

// Table renders the result as a deterministic metric/value table —
// the uniform Result encoding every other experiment kind uses.
func (r *Result) Table() tabulate.Table {
	t := tabulate.Table{
		Title:   "Trace: " + r.Spec.Title(),
		Headers: []string{"metric", "value"},
	}
	m := r.Metrics
	t.AddRow("machine", r.Machine)
	t.AddRow("machine midplanes", r.MachineMidplanes)
	t.AddRow("policy", r.Spec.Policy)
	t.AddRow("backfill", r.Spec.Backfill)
	t.AddRow("jobs", m.Jobs)
	t.AddRow("patterned jobs", m.Patterned)
	t.AddRow("backfilled jobs", m.Backfilled)
	t.AddRow("makespan (s)", m.MakespanSec)
	t.AddRow("avg wait (s)", m.AvgWaitSec)
	t.AddRow("max wait (s)", m.MaxWaitSec)
	t.AddRow("avg stretch", m.AvgStretch)
	t.AddRow("max stretch", m.MaxStretch)
	t.AddRow("contention factor", m.ContentionX)
	t.AddRow("utilization", m.Utilization)
	t.AddRow("fragmentation", m.Fragmentation)
	t.AddRow("midplane-seconds", m.MidplaneSeconds)
	if f := r.Spec.Failures; f != nil {
		t.AddRow("failure model", f.Model)
		t.AddRow("capacity factor", f.Factor)
		if m.FailedMidplanes > 0 {
			t.AddRow("failed midplanes", m.FailedMidplanes)
		}
		if m.DegradedMidplanes > 0 {
			t.AddRow("degraded midplanes", m.DegradedMidplanes)
		}
		t.AddRow("kills", m.Kills)
		t.AddRow("healthy makespan (s)", m.HealthyMakespanSec)
		t.AddRow("makespan delta (x)", m.MakespanDeltaX)
		t.AddRow("stretch delta (x)", m.StretchDeltaX)
	}
	return t
}
