package tracesim

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"netpart/internal/scenario"
	"netpart/internal/sched/cluster"
	"netpart/internal/tabulate"
)

// Event is one simulator occurrence, emitted in simulation-time order
// (the event loop is sequential, so callbacks are serialized). It is
// the cluster engine's event type; batch runs forward the
// start/finish/kill/outage/heal kinds.
type Event = cluster.Event

// JobOutcome is one job's simulated fate.
type JobOutcome = cluster.JobOutcome

// Metrics are the trace's headline numbers.
type Metrics = cluster.Metrics

// Options tunes one simulation run.
type Options struct {
	// OnEvent, when non-nil, receives every start/finish/kill/outage/
	// heal event in simulation-time order.
	OnEvent func(Event)
	// OnProgress, when non-nil, receives (finishedJobs, totalJobs)
	// after every completion.
	OnProgress func(done, total int)
	// Oracle runs the simulation through the uncached reference
	// implementation (generic candidate enumeration, fresh contention
	// simulators, no process-wide caches — including the healthy-
	// baseline memo). The differential tests hold the fast path to
	// this mode byte for byte; production runs leave it off.
	Oracle bool
}

// Result is a completed trace simulation: the normalized spec, the
// resolved machine, every job in ID order and the headline metrics.
// All fields are deterministic functions of the normalized Spec.
type Result struct {
	Spec    Spec   `json:"spec"`
	Machine string `json:"machine"`
	// MachineMidplanes is the simulated host's capacity.
	MachineMidplanes int          `json:"machine_midplanes"`
	Jobs             []JobOutcome `json:"jobs"`
	Metrics          Metrics      `json:"metrics"`
}

// JSON encodes the result as indented, byte-deterministic JSON (the
// encoding the golden files pin).
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Run executes the trace simulation: normalize, resolve the machine,
// materialize the trace, and drive it through the incremental cluster
// engine — submit everything, drain to completion, reduce to metrics.
// Batch runs are byte-identical to the pre-engine event loop (the
// goldens pin this). The context is checked once per event-loop
// iteration.
func Run(ctx context.Context, spec Spec, opts Options) (*Result, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m, err := scenario.ResolveMachine(norm.Machine)
	if err != nil {
		return nil, err
	}
	if m.Midplanes() > MaxMachineMidplanes {
		return nil, fmt.Errorf("tracesim: machine %s has %d midplanes, exceeding the %d bound", norm.Machine, m.Midplanes(), MaxMachineMidplanes)
	}

	trace := norm.trace()
	n := len(trace)
	done := 0
	eng, err := cluster.NewEngine(cluster.Config{
		Machine:  m,
		Policy:   norm.Policy,
		Backfill: norm.Backfill,
		Failures: norm.Failures,
		Oracle:   opts.Oracle,
		OnEvent: func(ev Event) {
			// The engine also emits submit/place/contention events;
			// batch consumers see the classic stream.
			switch ev.Kind {
			case "start", "finish", "kill", "outage", "heal":
			default:
				return
			}
			if opts.OnEvent != nil {
				opts.OnEvent(ev)
			}
			if ev.Kind == "finish" {
				done++
				if opts.OnProgress != nil {
					opts.OnProgress(done, n)
				}
			}
		},
	})
	if err != nil {
		return nil, err
	}
	jobs := make([]cluster.Job, n)
	for i, j := range trace {
		jobs[i] = cluster.Job{
			Midplanes:       j.Midplanes,
			ArrivalSec:      j.ArrivalSec,
			RuntimeSec:      j.RuntimeSec,
			Pattern:         j.Pattern,
			ContentionBound: j.ContentionBound,
		}
	}
	if _, err := eng.Submit(jobs); err != nil {
		return nil, err
	}
	if err := eng.Drain(ctx); err != nil {
		return nil, err
	}

	res := &Result{
		Spec:             norm,
		Machine:          m.Name,
		MachineMidplanes: m.Midplanes(),
		Jobs:             eng.Outcomes(),
	}
	res.Metrics = eng.Metrics()
	if norm.Failures != nil {
		hm, err := healthyMetrics(ctx, norm, opts.Oracle)
		if err != nil {
			return nil, fmt.Errorf("tracesim: healthy baseline: %w", err)
		}
		cluster.ApplyHealthyDeltas(&res.Metrics, hm)
	}
	return res, nil
}

// healthyMemo caches the healthy-baseline metrics by the healthy
// spec's Key. Sweeping a failure axis re-runs the same healthy twin
// for every point, so one process-wide cache pays for the baseline
// once per distinct spec.
var healthyMemo sync.Map

// healthyMetrics runs the failure-stripped twin of a normalized spec
// and returns its metrics (memoized process-wide, except in oracle
// mode, which bypasses every cache and recomputes the twin).
func healthyMetrics(ctx context.Context, norm Spec, oracle bool) (Metrics, error) {
	healthy := norm
	healthy.Failures = nil
	if oracle {
		hres, err := Run(ctx, healthy, Options{Oracle: true})
		if err != nil {
			return Metrics{}, err
		}
		return hres.Metrics, nil
	}
	key := healthy.Key()
	if v, ok := healthyMemo.Load(key); ok {
		return v.(Metrics), nil
	}
	hres, err := Run(ctx, healthy, Options{})
	if err != nil {
		return Metrics{}, err
	}
	healthyMemo.Store(key, hres.Metrics)
	return hres.Metrics, nil
}

// Table renders the result as a deterministic metric/value table —
// the uniform Result encoding every other experiment kind uses.
func (r *Result) Table() tabulate.Table {
	t := tabulate.Table{
		Title:   "Trace: " + r.Spec.Title(),
		Headers: []string{"metric", "value"},
	}
	m := r.Metrics
	t.AddRow("machine", r.Machine)
	t.AddRow("machine midplanes", r.MachineMidplanes)
	t.AddRow("policy", r.Spec.Policy)
	t.AddRow("backfill", r.Spec.Backfill)
	t.AddRow("jobs", m.Jobs)
	t.AddRow("patterned jobs", m.Patterned)
	t.AddRow("backfilled jobs", m.Backfilled)
	t.AddRow("makespan (s)", m.MakespanSec)
	t.AddRow("avg wait (s)", m.AvgWaitSec)
	t.AddRow("max wait (s)", m.MaxWaitSec)
	t.AddRow("avg stretch", m.AvgStretch)
	t.AddRow("max stretch", m.MaxStretch)
	t.AddRow("contention factor", m.ContentionX)
	t.AddRow("utilization", m.Utilization)
	t.AddRow("fragmentation", m.Fragmentation)
	t.AddRow("midplane-seconds", m.MidplaneSeconds)
	if f := r.Spec.Failures; f != nil {
		t.AddRow("failure model", f.Model)
		t.AddRow("capacity factor", f.Factor)
		if m.FailedMidplanes > 0 {
			t.AddRow("failed midplanes", m.FailedMidplanes)
		}
		if m.DegradedMidplanes > 0 {
			t.AddRow("degraded midplanes", m.DegradedMidplanes)
		}
		t.AddRow("kills", m.Kills)
		t.AddRow("healthy makespan (s)", m.HealthyMakespanSec)
		t.AddRow("makespan delta (x)", m.MakespanDeltaX)
		t.AddRow("stretch delta (x)", m.StretchDeltaX)
	}
	return t
}
