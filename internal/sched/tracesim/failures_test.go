package tracesim

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"netpart/internal/faults"
)

func TestTraceFailureNormalize(t *testing.T) {
	base := func() Spec {
		return Spec{Machine: "4x2x2x1", Jobs: []JobSpec{{Midplanes: 4, RuntimeSec: 100}}}
	}

	// Link-scoped models have no meaning at midplane granularity.
	s := base()
	s.Failures = &faults.Spec{Model: faults.ModelRandomLinks, Fraction: 0.1}
	if _, err := s.Normalize(); err == nil || !strings.Contains(err.Error(), "midplane granularity") {
		t.Fatalf("random_links accepted by a trace spec: %v", err)
	}

	// correlated_region is midplane-scoped here (it is link-scoped in
	// static scenarios — the scope follows the host).
	s = base()
	s.Failures = &faults.Spec{Model: faults.ModelCorrelatedRegion, Fraction: 0.2}
	n, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Failures == nil || n.Failures.Seed != faults.DefaultSeed {
		t.Fatalf("normalized failures = %+v", n.Failures)
	}
	if !strings.Contains(n.Title(), faults.ModelCorrelatedRegion) {
		t.Fatalf("title %q does not name the failure model", n.Title())
	}

	// Explicit midplane IDs are bound-checked against the machine.
	s = base()
	s.Failures = &faults.Spec{Model: faults.ModelMidplanes, Midplanes: []int{16}}
	if _, err := s.Normalize(); err == nil {
		t.Fatal("midplane 16 of 16 accepted")
	}

	// Failure identity fragments trace identity.
	a := mustNormalize(t, base())
	b := base()
	b.Failures = &faults.Spec{Model: faults.ModelMidplanes, Midplanes: []int{0}}
	if a.ID() == mustNormalize(t, b).ID() {
		t.Fatal("failure model does not change the trace ID")
	}
}

func TestTraceHardOutageKillRequeue(t *testing.T) {
	spec := Spec{
		Machine: "4x2x2x1", // 16 midplanes
		Jobs:    []JobSpec{{Midplanes: 16, RuntimeSec: 100}},
		Failures: &faults.Spec{
			Model:     faults.ModelMidplanes,
			Midplanes: []int{0},
			Windows:   []faults.Window{{StartSec: 50, EndSec: 60}},
		},
	}
	kinds := map[string]int{}
	res, err := Run(context.Background(), spec, Options{
		OnEvent: func(ev Event) { kinds[ev.Kind]++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	// Killed at 50, requeued, blocked until the heal at 60, rerun
	// 60..160. The outcome reports the original trace arrival, not the
	// requeue arrival.
	if j.ArrivalSec != 0 || j.StartSec != 60 || j.EndSec != 160 {
		t.Fatalf("outcome arrival=%v start=%v end=%v, want 0/60/160", j.ArrivalSec, j.StartSec, j.EndSec)
	}
	if j.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", j.Restarts)
	}
	if j.Stretch != 1.6 { // (160 - 0) / 100
		t.Fatalf("stretch = %v, want 1.6", j.Stretch)
	}
	m := res.Metrics
	if m.Kills != 1 || m.FailedMidplanes != 1 || m.DegradedMidplanes != 0 {
		t.Fatalf("metrics kills=%d failed=%d degraded=%d", m.Kills, m.FailedMidplanes, m.DegradedMidplanes)
	}
	if m.MakespanSec != 160 || m.HealthyMakespanSec != 100 {
		t.Fatalf("makespan %v healthy %v", m.MakespanSec, m.HealthyMakespanSec)
	}
	if m.MakespanDeltaX != 1.6 {
		t.Fatalf("makespan delta %v, want 1.6", m.MakespanDeltaX)
	}
	if kinds["outage"] != 1 || kinds["heal"] != 1 || kinds["kill"] != 1 {
		t.Fatalf("event kinds %v", kinds)
	}
}

func TestTraceDegradedDilation(t *testing.T) {
	spec := Spec{
		Machine: "4x2x2x1",
		Jobs:    []JobSpec{{Midplanes: 16, RuntimeSec: 100}},
		// No windows: degraded for the whole run. The whole-machine job
		// overlaps the degraded cell, so it runs at 1/0.5 dilation.
		Failures: &faults.Spec{Model: faults.ModelMidplanes, Midplanes: []int{3}, Factor: 0.5},
	}
	res, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].EndSec != 200 {
		t.Fatalf("end %v, want 200 (100 at half speed)", res.Jobs[0].EndSec)
	}
	m := res.Metrics
	if m.DegradedMidplanes != 1 || m.FailedMidplanes != 0 || m.Kills != 0 {
		t.Fatalf("metrics %+v", m)
	}
	if m.MakespanDeltaX != 2 {
		t.Fatalf("makespan delta %v, want 2", m.MakespanDeltaX)
	}
}

// TestTraceFailureReplay runs a failure-laden synthetic trace under
// every policy × backfill combination and asserts each run is
// byte-deterministic and carries populated robustness deltas.
func TestTraceFailureReplay(t *testing.T) {
	for _, policy := range []string{PolicyFirstFit, PolicyBestBisection, PolicyContentionAware} {
		for _, backfill := range []bool{false, true} {
			spec := Spec{
				Machine:  "juqueen",
				Policy:   policy,
				Backfill: backfill,
				Synthetic: &Synthetic{
					Jobs: 40, Seed: 3, Pattern: PatternPairing, PatternFraction: 0.4,
				},
				Failures: &faults.Spec{
					Model:    faults.ModelCorrelatedRegion,
					Fraction: 0.15,
					Windows:  []faults.Window{{StartSec: 0, EndSec: 400}, {StartSec: 900, EndSec: 1300}},
				},
			}
			a, err := Run(context.Background(), spec, Options{})
			if err != nil {
				t.Fatalf("%s backfill=%v: %v", policy, backfill, err)
			}
			b, err := Run(context.Background(), spec, Options{})
			if err != nil {
				t.Fatal(err)
			}
			aj, err := a.JSON()
			if err != nil {
				t.Fatal(err)
			}
			bj, err := b.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(aj, bj) {
				t.Fatalf("%s backfill=%v: replay is not byte-identical", policy, backfill)
			}
			m := a.Metrics
			if m.FailedMidplanes == 0 {
				t.Fatalf("%s backfill=%v: no failed midplanes resolved", policy, backfill)
			}
			if m.HealthyMakespanSec <= 0 || m.MakespanDeltaX <= 0 || m.StretchDeltaX <= 0 {
				t.Fatalf("%s backfill=%v: robustness deltas missing: %+v", policy, backfill, m)
			}
			// Every job still completes exactly once, in ID order.
			if len(a.Jobs) != 40 {
				t.Fatalf("%d outcomes", len(a.Jobs))
			}
			for i, j := range a.Jobs {
				if j.ID != i {
					t.Fatalf("outcome %d has ID %d", i, j.ID)
				}
				if j.EndSec < j.StartSec || j.StartSec < j.ArrivalSec {
					t.Fatalf("job %d times inverted: %+v", i, j)
				}
			}
		}
	}
}
