package tracesim

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"netpart/internal/sched"
)

func mustNormalize(t *testing.T, s Spec) Spec {
	t.Helper()
	n, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNormalizeDefaultsAndIdentity(t *testing.T) {
	a := mustNormalize(t, Spec{
		Machine:   " JuQueen ",
		Synthetic: &Synthetic{Jobs: 10},
	})
	if a.Machine != "juqueen" || a.Policy != PolicyFirstFit {
		t.Fatalf("normalized = %+v", a)
	}
	sy := a.Synthetic
	if sy.Seed != DefaultSeed || sy.Arrival != ArrivalPoisson || sy.RateHz != DefaultRateHz ||
		sy.Runtime != RuntimeExp || sy.MeanRuntimeSec != DefaultMeanRuntimeSec || len(sy.Sizes) != 4 {
		t.Fatalf("generator defaults = %+v", sy)
	}
	// Spellings that normalize identically share identity.
	b := mustNormalize(t, Spec{
		Machine:   "juqueen",
		Policy:    "First-Fit",
		Synthetic: &Synthetic{Jobs: 10, Seed: 1, Arrival: "POISSON"},
	})
	if a.Key() != b.Key() || a.ID() != b.ID() {
		t.Fatalf("equivalent spellings split identity:\n%s\n%s", a.Key(), b.Key())
	}
	if !strings.HasPrefix(a.ID(), "trace:") {
		t.Fatalf("ID = %q", a.ID())
	}
	// Different seeds are different traces.
	c := mustNormalize(t, Spec{Machine: "juqueen", Synthetic: &Synthetic{Jobs: 10, Seed: 7}})
	if a.ID() == c.ID() {
		t.Fatal("distinct seeds share identity")
	}
	// A custom midplane grid canonicalizes like scenario machines.
	d := mustNormalize(t, Spec{Machine: "4X2x 2x1", Synthetic: &Synthetic{Jobs: 5}})
	if d.Machine != "4x2x2x1" {
		t.Fatalf("grid machine = %q", d.Machine)
	}
}

func TestNormalizeRejections(t *testing.T) {
	cases := []Spec{
		{},                        // no machine
		{Machine: "nonexistent9"}, // unknown machine
		{Machine: "juqueen"},      // no jobs
		{Machine: "juqueen", Policy: "best-case", Synthetic: &Synthetic{Jobs: 4}},                            // bgq policy, not a sched one
		{Machine: "juqueen", Jobs: []JobSpec{{Midplanes: 4, RuntimeSec: 1}}, Synthetic: &Synthetic{Jobs: 4}}, // both sources
		{Machine: "juqueen", Jobs: []JobSpec{{Midplanes: 0, RuntimeSec: 1}}},
		{Machine: "juqueen", Jobs: []JobSpec{{Midplanes: 4, RuntimeSec: 0}}},
		{Machine: "juqueen", Jobs: []JobSpec{{Midplanes: 4, RuntimeSec: math.NaN()}}},
		{Machine: "juqueen", Jobs: []JobSpec{{Midplanes: 4, RuntimeSec: 1, ArrivalSec: -1}}},
		{Machine: "juqueen", Jobs: []JobSpec{{Midplanes: 4, RuntimeSec: 1, Pattern: "warp"}}},
		{Machine: "juqueen", Jobs: []JobSpec{{Midplanes: MaxAllToAllMidplanes + 1, RuntimeSec: 1, Pattern: PatternAllToAll}}},
		{Machine: "juqueen", Synthetic: &Synthetic{Jobs: 0}},
		{Machine: "juqueen", Synthetic: &Synthetic{Jobs: MaxJobs + 1}},
		{Machine: "juqueen", Synthetic: &Synthetic{Jobs: 4, Arrival: "steady"}},
		{Machine: "juqueen", Synthetic: &Synthetic{Jobs: 4, RateHz: -1}},
		{Machine: "juqueen", Synthetic: &Synthetic{Jobs: 4, BurstSize: 4}}, // burst_size without burst
		{Machine: "juqueen", Synthetic: &Synthetic{Jobs: 4, Sizes: []int{0}}},
		{Machine: "juqueen", Synthetic: &Synthetic{Jobs: 4, SizeWeights: []float64{1}}},
		{Machine: "juqueen", Synthetic: &Synthetic{Jobs: 4, Runtime: "bimodal"}},
		{Machine: "juqueen", Synthetic: &Synthetic{Jobs: 4, MeanRuntimeSec: -5}},
		{Machine: "juqueen", Synthetic: &Synthetic{Jobs: 4, PatternFraction: 1.5}},
		{Machine: "juqueen", Synthetic: &Synthetic{Jobs: 4, Pattern: PatternPairing}}, // pattern without fraction
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d (%+v) accepted", i, s)
		}
	}
}

func TestPatternImpliesContentionBound(t *testing.T) {
	n := mustNormalize(t, Spec{Machine: "juqueen", Jobs: []JobSpec{
		{Midplanes: 8, RuntimeSec: 100, Pattern: "Pairing"},
	}})
	if !n.Jobs[0].ContentionBound || n.Jobs[0].Pattern != PatternPairing {
		t.Fatalf("normalized job = %+v", n.Jobs[0])
	}
	// The two spellings (with and without the redundant flag) share
	// identity.
	m := mustNormalize(t, Spec{Machine: "juqueen", Jobs: []JobSpec{
		{Midplanes: 8, RuntimeSec: 100, Pattern: "pairing", ContentionBound: true},
	}})
	if n.Key() != m.Key() {
		t.Fatal("redundant contention_bound fragments identity")
	}
}

func TestSyntheticDeterministicAndShaped(t *testing.T) {
	gen := Synthetic{Jobs: 200, Seed: 42, Arrival: ArrivalBurst, BurstSize: 8, RateHz: 0.1,
		Sizes: []int{1, 2, 4}, SizeWeights: []float64{1, 2, 1}, Runtime: RuntimeHeavyTail,
		MeanRuntimeSec: 100, Pattern: PatternNeighbor, PatternFraction: 0.3}
	n, err := gen.normalize()
	if err != nil {
		t.Fatal(err)
	}
	a, b := n.materialize(), n.materialize()
	if len(a) != 200 {
		t.Fatalf("%d jobs", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs between identical materializations", i)
		}
	}
	// Burst arrivals: the first BurstSize jobs share an arrival.
	for i := 1; i < 8; i++ {
		if a[i].ArrivalSec != a[0].ArrivalSec {
			t.Fatalf("burst job %d arrives at %v, job 0 at %v", i, a[i].ArrivalSec, a[0].ArrivalSec)
		}
	}
	if a[8].ArrivalSec <= a[0].ArrivalSec {
		t.Fatal("second burst does not advance time")
	}
	patterned := 0
	for _, j := range a {
		if j.RuntimeSec <= 0 {
			t.Fatal("non-positive synthetic runtime")
		}
		if j.Pattern != "" {
			patterned++
			if j.Pattern != PatternNeighbor || !j.ContentionBound {
				t.Fatalf("patterned job = %+v", j)
			}
		}
	}
	if patterned == 0 || patterned == len(a) {
		t.Fatalf("patterned = %d of %d, want a real fraction", patterned, len(a))
	}
	// Arrivals are non-decreasing under every process.
	for _, arrival := range []string{ArrivalPoisson, ArrivalHeavyTail} {
		n, err := (Synthetic{Jobs: 100, Arrival: arrival}).normalize()
		if err != nil {
			t.Fatal(err)
		}
		jobs := n.materialize()
		for i := 1; i < len(jobs); i++ {
			if jobs[i].ArrivalSec < jobs[i-1].ArrivalSec {
				t.Fatalf("%s arrivals regress at %d", arrival, i)
			}
		}
	}
}

func TestDilationFavorsBisectionAwarePolicies(t *testing.T) {
	// One contention-bound pairing job on an empty JUQUEEN: first-fit
	// lands on the worst 8-midplane geometry (4x2x1x1) and dilates;
	// best-bisection and contention-aware stay at 1.
	job := []JobSpec{{Midplanes: 8, RuntimeSec: 100, Pattern: PatternPairing}}
	run := func(policy string) *Result {
		out, err := Run(context.Background(), Spec{Machine: "juqueen", Policy: policy, Jobs: job}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ff := run(PolicyFirstFit)
	bb := run(PolicyBestBisection)
	ca := run(PolicyContentionAware)
	if ff.Jobs[0].Dilation <= 1 {
		t.Errorf("first-fit dilation = %v, want > 1", ff.Jobs[0].Dilation)
	}
	if bb.Jobs[0].Dilation != 1 || ca.Jobs[0].Dilation != 1 {
		t.Errorf("bisection-aware dilations = %v, %v, want 1", bb.Jobs[0].Dilation, ca.Jobs[0].Dilation)
	}
	if ff.Metrics.ContentionX <= ca.Metrics.ContentionX {
		t.Errorf("first-fit contention %v should exceed contention-aware %v", ff.Metrics.ContentionX, ca.Metrics.ContentionX)
	}
}

func TestRunMetricsSane(t *testing.T) {
	out, err := Run(context.Background(), Spec{
		Machine: "juqueen", Policy: PolicyContentionAware, Backfill: true,
		Synthetic: &Synthetic{Jobs: 120, RateHz: 0.05, PatternFraction: 0.5, Pattern: PatternPairing},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := out.Metrics
	if m.Jobs != 120 || len(out.Jobs) != 120 {
		t.Fatalf("jobs = %d / %d", m.Jobs, len(out.Jobs))
	}
	if m.Utilization <= 0 || m.Utilization > 1 {
		t.Errorf("utilization = %v", m.Utilization)
	}
	if m.Fragmentation < 0 || m.Fragmentation > 1 {
		t.Errorf("fragmentation = %v", m.Fragmentation)
	}
	if m.AvgStretch < 1 || m.MaxStretch < m.AvgStretch {
		t.Errorf("stretch avg %v max %v", m.AvgStretch, m.MaxStretch)
	}
	if m.ContentionX < 1 {
		t.Errorf("contention factor = %v", m.ContentionX)
	}
	if m.MaxWaitSec < m.AvgWaitSec {
		t.Errorf("wait avg %v max %v", m.AvgWaitSec, m.MaxWaitSec)
	}
	for i, j := range out.Jobs {
		if j.ID != i {
			t.Fatalf("jobs not in ID order at %d", i)
		}
		if j.StartSec < j.ArrivalSec || j.EndSec <= j.StartSec {
			t.Fatalf("job %d timeline %+v", i, j)
		}
		if j.Dilation < 1 {
			t.Fatalf("job %d dilation %v < 1", i, j.Dilation)
		}
	}
}

func TestRunEventsStream(t *testing.T) {
	var events []Event
	done := 0
	_, err := Run(context.Background(), Spec{
		Machine:   "juqueen",
		Synthetic: &Synthetic{Jobs: 30, RateHz: 0.05},
	}, Options{
		OnEvent: func(ev Event) { events = append(events, ev) },
		OnProgress: func(d, total int) {
			if total != 30 || d != done+1 {
				t.Fatalf("progress %d/%d after %d", d, total, done)
			}
			done = d
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if done != 30 {
		t.Fatalf("progress reached %d", done)
	}
	if len(events) != 60 {
		t.Fatalf("%d events, want 60", len(events))
	}
	last := math.Inf(-1)
	starts, finishes := 0, 0
	for _, ev := range events {
		if ev.TimeSec < last {
			t.Fatalf("event at %v out of order", ev.TimeSec)
		}
		last = ev.TimeSec
		switch ev.Kind {
		case "start":
			starts++
		case "finish":
			finishes++
		default:
			t.Fatalf("event kind %q", ev.Kind)
		}
		if ev.FreeMidplanes < 0 || ev.FreeMidplanes > 56 {
			t.Fatalf("free midplanes %d", ev.FreeMidplanes)
		}
	}
	if starts != 30 || finishes != 30 {
		t.Fatalf("%d starts, %d finishes", starts, finishes)
	}
}

func TestRunNeverFitsSurfacesTypedError(t *testing.T) {
	_, err := Run(context.Background(), Spec{
		Machine: "juqueen",
		Jobs:    []JobSpec{{Midplanes: 57, RuntimeSec: 10}},
	}, Options{})
	var nf *sched.NeverFitsError
	if !errors.As(err, &nf) {
		t.Fatalf("err = %v, want NeverFitsError", err)
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Spec{Machine: "juqueen", Synthetic: &Synthetic{Jobs: 50}}, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestCostNeverCheap(t *testing.T) {
	small := Spec{Machine: "juqueen", Synthetic: &Synthetic{Jobs: 2}}
	if c := small.Cost(); c != "moderate" {
		t.Errorf("small trace cost = %q", c)
	}
	long := Spec{Machine: "juqueen", Synthetic: &Synthetic{Jobs: 2000}}
	if c := long.Cost(); c != "heavy" {
		t.Errorf("long trace cost = %q", c)
	}
}

func TestTitle(t *testing.T) {
	s := mustNormalize(t, Spec{Machine: "juqueen", Backfill: true, Synthetic: &Synthetic{Jobs: 10}})
	want := "trace juqueen · first-fit · 10 poisson jobs · backfill"
	if s.Title() != want {
		t.Errorf("title = %q, want %q", s.Title(), want)
	}
	named := Spec{Name: "my trace", Machine: "juqueen", Jobs: []JobSpec{{Midplanes: 1, RuntimeSec: 1}}}
	if named.Title() != "my trace" {
		t.Errorf("named title = %q", named.Title())
	}
}
