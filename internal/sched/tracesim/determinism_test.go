package tracesim

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"netpart/internal/scenario/sweep"
)

// policies under test everywhere below.
var allPolicies = []string{PolicyFirstFit, PolicyBestBisection, PolicyContentionAware}

// bigTrace is the 200+ job acceptance trace: bursty arrivals, mixed
// sizes, half the jobs contention-patterned, backfill on. Short mode
// (the CI race matrix) shrinks it — race safety does not need the
// full queue depth the byte-determinism acceptance run pins.
func bigTrace(policy string) Spec {
	jobs := 220
	if testing.Short() {
		jobs = 60
	}
	return Spec{
		Machine: "juqueen", Policy: policy, Backfill: true,
		Synthetic: &Synthetic{
			Jobs: jobs, Seed: 11, Arrival: ArrivalBurst, BurstSize: 6, RateHz: 0.08,
			Sizes: []int{1, 2, 4, 8, 16}, Runtime: RuntimeHeavyTail, MeanRuntimeSec: 300,
			Pattern: PatternPairing, PatternFraction: 0.5,
		},
	}
}

// TestTraceByteDeterminism: an identical trace + seed is byte-identical
// across repeated runs and across GOMAXPROCS settings (what `go test
// -cpu=1,4` varies), under every policy.
func TestTraceByteDeterminism(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	reps := 2
	if testing.Short() {
		reps = 1
	}
	for _, policy := range allPolicies {
		var want []byte
		for run := 0; run < reps; run++ {
			for _, procs := range []int{1, 4} {
				runtime.GOMAXPROCS(procs)
				out, err := Run(context.Background(), bigTrace(policy), Options{})
				if err != nil {
					t.Fatal(err)
				}
				if len(out.Jobs) != bigTrace(policy).Synthetic.Jobs {
					t.Fatalf("%s: %d jobs", policy, len(out.Jobs))
				}
				got, err := out.JSON()
				if err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want = got
					continue
				}
				if string(got) != string(want) {
					t.Fatalf("%s: result JSON differs between runs (run %d, GOMAXPROCS %d)", policy, run, procs)
				}
			}
		}
	}
}

// TestPoliciesOrderOnBigTrace: on the contention-heavy acceptance
// trace, the contention-aware policy never loses to first-fit on the
// queue-wide contention factor.
func TestPoliciesOrderOnBigTrace(t *testing.T) {
	byPolicy := map[string]*Result{}
	for _, policy := range allPolicies {
		out, err := Run(context.Background(), bigTrace(policy), Options{})
		if err != nil {
			t.Fatal(err)
		}
		byPolicy[policy] = out
	}
	ff := byPolicy[PolicyFirstFit].Metrics
	ca := byPolicy[PolicyContentionAware].Metrics
	if ca.ContentionX > ff.ContentionX {
		t.Errorf("contention-aware factor %v exceeds first-fit %v", ca.ContentionX, ff.ContentionX)
	}
	if ff.ContentionX <= 1 {
		t.Errorf("first-fit contention factor %v: the trace should exhibit avoidable contention", ff.ContentionX)
	}
}

// TestGridDeterministicAcrossWorkers: a policy × arrival-rate grid is
// byte-identical at any worker-pool size.
func TestGridDeterministicAcrossWorkers(t *testing.T) {
	grid := Grid{
		Name: "determinism",
		Base: Spec{
			Machine: "juqueen", Backfill: true,
			Synthetic: &Synthetic{Jobs: 60, Seed: 3, Pattern: PatternPairing, PatternFraction: 0.4},
		},
		Axes: []sweep.Axis{
			{Path: "policy", Values: sweep.Strings(allPolicies...)},
			{Path: "synthetic.rate_hz", Values: sweep.Floats(0.02, 0.1)},
		},
	}
	points, err := grid.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("%d points", len(points))
	}
	var want []byte
	for _, workers := range []int{1, 3, 8} {
		res, err := RunGrid(context.Background(), grid, points, GridOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("grid result differs at %d workers", workers)
		}
	}
}

// goldenSpecs are the pinned traces: one synthetic and one SWF-parsed
// trace per policy.
func goldenSpecs(t *testing.T) map[string]Spec {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "sample.swf"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	swfJobs, err := ParseSWF(f, SWFOptions{ProcsPerMidplane: 512, Pattern: PatternPairing, ContentionEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	specs := map[string]Spec{}
	for _, policy := range allPolicies {
		specs["golden_synth_"+policy+".json"] = Spec{
			Machine: "juqueen", Policy: policy, Backfill: true,
			Synthetic: &Synthetic{
				Jobs: 40, Seed: 5, RateHz: 0.02, Runtime: RuntimeExp, MeanRuntimeSec: 240,
				Pattern: PatternPairing, PatternFraction: 0.5,
			},
		}
		specs["golden_swf_"+policy+".json"] = Spec{
			Machine: "juqueen", Policy: policy, Backfill: true, Jobs: swfJobs,
		}
	}
	return specs
}

// TestGoldenTraces pins the full Result JSON of one synthetic and one
// SWF trace per policy. Regenerate with UPDATE_GOLDEN=1.
func TestGoldenTraces(t *testing.T) {
	for file, spec := range goldenSpecs(t) {
		out, err := Run(context.Background(), spec, Options{})
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		got, err := out.JSON()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, '\n')
		path := filepath.Join("testdata", file)
		if os.Getenv("UPDATE_GOLDEN") != "" {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
		}
		if string(got) != string(want) {
			t.Errorf("golden mismatch for %s (regenerate with UPDATE_GOLDEN=1 if the change is intended)", path)
		}
	}
}
