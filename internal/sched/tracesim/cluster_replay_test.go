package tracesim

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"netpart/internal/faults"
	"netpart/internal/sched/cluster"
)

// replayThroughSession replays a complete normalized trace through a
// fresh free-running cluster session in nchunks submissions and
// returns the final metrics. The last chunk is resubmitted before
// closing to prove idempotency never perturbs the schedule.
func replayThroughSession(t *testing.T, norm Spec, trace []JobSpec, nchunks int) Metrics {
	t.Helper()
	sess, err := cluster.Open(cluster.Spec{
		Machine:  norm.Machine,
		Policy:   norm.Policy,
		Backfill: norm.Backfill,
		Failures: norm.Failures,
	}, cluster.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]cluster.SubmitJob, len(trace))
	for i, j := range trace {
		jobs[i] = cluster.SubmitJob{
			ID:              fmt.Sprintf("job-%04d", i),
			Midplanes:       j.Midplanes,
			ArrivalSec:      j.ArrivalSec,
			RuntimeSec:      j.RuntimeSec,
			Pattern:         j.Pattern,
			ContentionBound: j.ContentionBound,
		}
	}
	ctx := context.Background()
	size := (len(jobs) + nchunks - 1) / nchunks
	accepted := 0
	var lastChunk []cluster.SubmitJob
	for at := 0; at < len(jobs); at += size {
		end := at + size
		if end > len(jobs) {
			end = len(jobs)
		}
		lastChunk = jobs[at:end]
		rec, err := sess.Submit(ctx, lastChunk)
		if err != nil {
			t.Fatal(err)
		}
		accepted += rec.Accepted
	}
	if accepted != len(jobs) {
		t.Fatalf("accepted %d of %d jobs", accepted, len(jobs))
	}
	if len(lastChunk) > 0 { // a retried submission is a no-op
		rec, err := sess.Submit(ctx, lastChunk)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Accepted != 0 || rec.Duplicates != len(lastChunk) {
			t.Fatalf("retry accepted %d, duplicates %d, want 0/%d", rec.Accepted, rec.Duplicates, len(lastChunk))
		}
	}
	met, err := sess.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return met
}

// replaySpecs is the property-test matrix: synthetic traces under
// every policy × backfill × failure-model combination, plus SWF
// traces (plain and failure-laden).
func replaySpecs(t *testing.T) []Spec {
	t.Helper()
	outages := &faults.Spec{
		Model:    faults.ModelCorrelatedRegion,
		Fraction: 0.15,
		Windows:  []faults.Window{{StartSec: 0, EndSec: 400}, {StartSec: 900, EndSec: 1300}},
	}
	var specs []Spec
	for _, policy := range allPolicies {
		for _, backfill := range []bool{false, true} {
			for _, failures := range []*faults.Spec{nil, outages} {
				specs = append(specs, Spec{
					Machine: "juqueen", Policy: policy, Backfill: backfill, Failures: failures,
					Synthetic: &Synthetic{
						Jobs: 24, Seed: 7, RateHz: 0.05,
						Pattern: PatternPairing, PatternFraction: 0.5,
					},
				})
			}
		}
	}
	f, err := os.Open(filepath.Join("testdata", "sample.swf"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	swfJobs, err := ParseSWF(f, SWFOptions{ProcsPerMidplane: 512, Pattern: PatternPairing, ContentionEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	specs = append(specs,
		Spec{Machine: "juqueen", Policy: PolicyContentionAware, Backfill: true, Jobs: swfJobs},
		Spec{Machine: "juqueen", Policy: PolicyFirstFit, Jobs: swfJobs, Failures: outages},
	)
	return specs
}

// TestClusterReplayMatchesRun is the ISSUE 8 acceptance property:
// replaying any complete trace through a cluster session — in one
// submission or chunked — yields metrics byte-identical to the batch
// simulator's, including the healthy-baseline deltas of failure
// specs.
func TestClusterReplayMatchesRun(t *testing.T) {
	specs := replaySpecs(t)
	if testing.Short() {
		specs = append(specs[:3], specs[len(specs)-2:]...)
	}
	for _, spec := range specs {
		norm, err := spec.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		batch, err := Run(context.Background(), spec, Options{})
		if err != nil {
			t.Fatalf("%s: %v", norm.Title(), err)
		}
		want, err := json.Marshal(batch.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		trace := norm.trace()
		for _, chunks := range []int{1, 5} {
			met := replayThroughSession(t, norm, trace, chunks)
			got, err := json.Marshal(met)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("%s in %d chunk(s): session metrics differ from batch run\n got %s\nwant %s",
					norm.Title(), chunks, got, want)
			}
		}
	}
}
