package tracesim

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parseSample(t *testing.T, opts SWFOptions) []JobSpec {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "sample.swf"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	jobs, err := ParseSWF(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func TestParseSWF(t *testing.T) {
	jobs := parseSample(t, SWFOptions{ProcsPerMidplane: 512})
	// 26 lines, one cancelled (job 9) is skipped.
	if len(jobs) != 25 {
		t.Fatalf("%d jobs, want 25", len(jobs))
	}
	// Job 1: submit 0, run 1800, 4096 procs → 8 midplanes.
	if jobs[0].ArrivalSec != 0 || jobs[0].RuntimeSec != 1800 || jobs[0].Midplanes != 8 {
		t.Fatalf("job 0 = %+v", jobs[0])
	}
	// Arrivals are shifted to the first submit and non-decreasing.
	for i := 1; i < len(jobs); i++ {
		if jobs[i].ArrivalSec < jobs[i-1].ArrivalSec {
			t.Fatalf("arrival regresses at %d", i)
		}
	}
	// Job 7 (line 7): run -1 falls back to requested time 1800.
	if jobs[6].RuntimeSec != 1800 || jobs[6].Midplanes != 4 {
		t.Fatalf("runtime fallback job = %+v", jobs[6])
	}
	// Line 11 (after the skipped cancellation): 8192 procs → 16.
	if jobs[9].Midplanes != 16 {
		t.Fatalf("line-11 job = %+v", jobs[9])
	}
	// Line 12: procs -1 falls back to requested 4096 → 8.
	if jobs[10].Midplanes != 8 || jobs[10].RuntimeSec != 1500 {
		t.Fatalf("procs fallback job = %+v", jobs[10])
	}
	// The parsed trace embeds in a Spec that validates.
	spec := Spec{Machine: "juqueen", Jobs: jobs}
	if err := spec.Validate(); err != nil {
		t.Fatalf("parsed trace does not validate: %v", err)
	}
}

func TestParseSWFDeterministic(t *testing.T) {
	a := parseSample(t, SWFOptions{ProcsPerMidplane: 512})
	b := parseSample(t, SWFOptions{ProcsPerMidplane: 512})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs between identical parses", i)
		}
	}
}

func TestParseSWFOptions(t *testing.T) {
	// Default scaling: procs are midplanes.
	raw := parseSample(t, SWFOptions{})
	if raw[0].Midplanes != 4096 {
		t.Fatalf("unscaled midplanes = %d", raw[0].Midplanes)
	}
	// Truncation.
	few := parseSample(t, SWFOptions{ProcsPerMidplane: 512, MaxJobs: 5})
	if len(few) != 5 {
		t.Fatalf("%d jobs, want 5", len(few))
	}
	// Deterministic pattern assignment.
	pat := parseSample(t, SWFOptions{ProcsPerMidplane: 512, Pattern: "pairing", ContentionEvery: 3})
	marked := 0
	for i, j := range pat {
		want := i%3 == 0
		if (j.Pattern != "") != want {
			t.Fatalf("job %d pattern = %q", i, j.Pattern)
		}
		if j.Pattern != "" {
			marked++
			if !j.ContentionBound {
				t.Fatal("patterned SWF job not contention-bound")
			}
		}
	}
	if marked == 0 {
		t.Fatal("no patterned jobs")
	}
}

func TestParseSWFErrors(t *testing.T) {
	cases := map[string]string{
		"short line":      "1 0 0 100 4\n",
		"bad number":      "1 zero 0 100 4 -1 -1 4 200 -1 1 1 1 1 1 -1 -1 -1\n",
		"no usable jobs":  "; empty\n1 0 0 -1 4 -1 -1 4 -1 -1 0 1 1 1 1 -1 -1 -1\n",
		"time regression": "1 100 0 60 4 -1 -1 4 60 -1 1 1 1 1 1 -1 -1 -1\n2 50 0 60 4 -1 -1 4 60 -1 1 1 1 1 1 -1 -1 -1\n",
		"bad pattern":     "", // via options below
	}
	for name, body := range cases {
		opts := SWFOptions{}
		if name == "bad pattern" {
			body = "1 0 0 100 4 -1 -1 4 200 -1 1 1 1 1 1 -1 -1 -1\n"
			opts.Pattern = "warp"
			opts.ContentionEvery = 1
		}
		if _, err := ParseSWF(strings.NewReader(body), opts); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
