package tracesim

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"netpart/internal/scenario/sweep"
)

func boolValues(vals ...bool) []json.RawMessage {
	out := make([]json.RawMessage, len(vals))
	for i, v := range vals {
		b, _ := json.Marshal(v)
		out[i] = b
	}
	return out
}

func TestGridExpand(t *testing.T) {
	grid := Grid{
		Base: Spec{Machine: "juqueen", Synthetic: &Synthetic{Jobs: 5}},
		Axes: []sweep.Axis{
			{Path: "policy", Values: sweep.Strings("first-fit", "contention-aware")},
			{Path: "synthetic.rate_hz", Values: sweep.Floats(0.01, 0.1)},
			{Path: "backfill", Values: boolValues(false, true)},
		},
	}
	points, err := grid.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("%d points, want 8", len(points))
	}
	// Row-major: the last axis advances fastest.
	if points[0].Spec.Backfill || !points[1].Spec.Backfill {
		t.Fatal("last axis does not advance fastest")
	}
	if points[0].Spec.Policy != PolicyFirstFit || points[7].Spec.Policy != PolicyContentionAware {
		t.Fatal("first axis does not advance slowest")
	}
	for _, p := range points {
		if len(p.Coords) != 3 {
			t.Fatalf("point %d coords = %v", p.Index, p.Coords)
		}
		if p.Spec.Synthetic.Seed != DefaultSeed {
			t.Fatal("points are not normalized")
		}
	}
	// Identity is content-derived and namespaced.
	id := GridID(grid.Name, points)
	if !strings.HasPrefix(id, "tracegrid:") {
		t.Fatalf("grid ID = %q", id)
	}
	if id != GridID(grid.Name, points) {
		t.Fatal("grid ID unstable")
	}
}

func TestGridExpandRejections(t *testing.T) {
	base := Spec{Machine: "juqueen", Synthetic: &Synthetic{Jobs: 5}}
	cases := []Grid{
		{Base: base, Axes: []sweep.Axis{{Path: "", Values: sweep.Ints(1)}}},
		{Base: base, Axes: []sweep.Axis{{Path: "policy", Values: nil}}},
		{Base: base, Axes: []sweep.Axis{{Path: "policy", Values: sweep.Strings("no-such-policy")}}},
		{Base: base, Axes: []sweep.Axis{{Path: "nonexistent_field", Values: sweep.Ints(1)}}},
		{Base: base, Axes: []sweep.Axis{{Path: "synthetic.jobs", Values: sweep.Ints(0)}}},
		{Base: base, MaxPoints: HardMaxGridPoints + 1, Axes: []sweep.Axis{{Path: "synthetic.seed", Values: sweep.Ints(1, 2)}}},
		{Base: base, MaxPoints: 1, Axes: []sweep.Axis{{Path: "synthetic.seed", Values: sweep.Ints(1, 2)}}},
		// 17 max-length points exceed the MaxGridJobs total bound.
		{Base: Spec{Machine: "juqueen", Synthetic: &Synthetic{Jobs: MaxJobs}},
			Axes: []sweep.Axis{{Path: "synthetic.seed",
				Values: sweep.Ints(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17)}}},
	}
	for i, g := range cases {
		if _, err := g.Expand(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGridPartialFailureIsolation(t *testing.T) {
	// The second point's jobs can never fit (64 midplanes on a
	// 56-midplane JUQUEEN); the grid must record the error and finish
	// the rest.
	grid := Grid{
		Base: Spec{Machine: "juqueen", Synthetic: &Synthetic{Jobs: 4, Sizes: []int{4}}},
		Axes: []sweep.Axis{
			{Path: "synthetic.sizes", Values: []json.RawMessage{
				json.RawMessage(`[4]`), json.RawMessage(`[64]`), json.RawMessage(`[8]`),
			}},
		},
	}
	points, err := grid.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var streamed []PointResult
	res, err := RunGrid(context.Background(), grid, points, GridOptions{
		Workers: 2,
		OnPoint: func(p PointResult) { streamed = append(streamed, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 {
		t.Fatalf("failed = %d, want 1", res.Failed)
	}
	if res.Points[1].Err == "" || !strings.Contains(res.Points[1].Err, "never be placed") {
		t.Fatalf("point 1 error = %q", res.Points[1].Err)
	}
	if res.Points[0].Result == nil || res.Points[2].Result == nil {
		t.Fatal("healthy points missing results")
	}
	if len(streamed) != 3 {
		t.Fatalf("streamed %d points", len(streamed))
	}
	// The rendered table carries the error row.
	table := res.Table("isolation")
	var buf strings.Builder
	for _, enc := range [][]byte{table.Markdown()} {
		buf.Write(enc)
	}
	if !strings.Contains(buf.String(), "never be placed") {
		t.Error("table drops the point error")
	}
}

func TestGridCostNeverCheap(t *testing.T) {
	small := Grid{Base: Spec{Machine: "juqueen", Synthetic: &Synthetic{Jobs: 3}},
		Axes: []sweep.Axis{{Path: "policy", Values: sweep.Strings("first-fit", "best-bisection")}}}
	points, err := small.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if c := GridCost(points); c != "moderate" {
		t.Errorf("small grid cost = %q", c)
	}
	big := Grid{Base: Spec{Machine: "juqueen", Synthetic: &Synthetic{Jobs: 3}},
		Axes: []sweep.Axis{{Path: "synthetic.seed", Values: sweep.Ints(1, 2, 3, 4, 5, 6, 7, 8, 9)}}}
	bigPoints, err := big.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if c := GridCost(bigPoints); c != "heavy" {
		t.Errorf("big grid cost = %q", c)
	}
}

func TestGridTitles(t *testing.T) {
	named := Grid{Name: "rates"}
	if named.Title() != "rates" {
		t.Errorf("named = %q", named.Title())
	}
	axed := Grid{
		Base: Spec{Machine: "juqueen", Synthetic: &Synthetic{Jobs: 1}},
		Axes: []sweep.Axis{{Path: "policy", Values: sweep.Strings("first-fit")}},
	}
	if got := axed.Title(); got != "trace sweep over policy" {
		t.Errorf("axed = %q", got)
	}
	bare := Grid{Base: Spec{Machine: "juqueen", Synthetic: &Synthetic{Jobs: 1, Arrival: "poisson"}}}
	if got := bare.Title(); !strings.Contains(got, "trace juqueen") {
		t.Errorf("bare = %q", got)
	}
}
