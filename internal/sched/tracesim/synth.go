package tracesim

import (
	"math"
	"math/rand"
)

// paretoAlpha is the tail index of the heavy-tail draws: finite mean,
// infinite variance — the classic supercomputer-workload shape.
const paretoAlpha = 1.5

// minRuntimeSec floors synthetic runtimes so a tiny exponential draw
// cannot produce a zero-length (invalid) job.
const minRuntimeSec = 1e-3

// paretoMean draws from a Pareto(α=paretoAlpha) with the given mean.
func paretoMean(rng *rand.Rand, mean float64) float64 {
	xm := mean * (paretoAlpha - 1) / paretoAlpha
	u := 1 - rng.Float64() // (0, 1]
	return xm * math.Pow(u, -1/paretoAlpha)
}

// pickSize draws one size index from the (optionally weighted)
// distribution.
func pickSize(rng *rand.Rand, n int, weights []float64) int {
	if len(weights) == 0 {
		return rng.Intn(n)
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return i
		}
	}
	return n - 1
}

// materialize expands a normalized generator into its job list. The
// draw order per job is fixed — interarrival, size, runtime, pattern
// coin — so a given (generator, seed) always yields the same trace;
// new knobs must extend the sequence, never reorder it.
func (sy Synthetic) materialize() []JobSpec {
	rng := rand.New(rand.NewSource(sy.Seed))
	jobs := make([]JobSpec, sy.Jobs)
	now := 0.0
	for i := range jobs {
		switch sy.Arrival {
		case ArrivalPoisson:
			now += rng.ExpFloat64() / sy.RateHz
		case ArrivalHeavyTail:
			now += paretoMean(rng, 1/sy.RateHz)
		case ArrivalBurst:
			// BurstSize simultaneous arrivals; bursts spaced so the
			// long-run rate still matches RateHz.
			if i > 0 && i%sy.BurstSize == 0 {
				now += float64(sy.BurstSize) / sy.RateHz
			}
		}
		size := sy.Sizes[pickSize(rng, len(sy.Sizes), sy.SizeWeights)]
		var runSec float64
		switch sy.Runtime {
		case RuntimeExp:
			runSec = rng.ExpFloat64() * sy.MeanRuntimeSec
		case RuntimeHeavyTail:
			runSec = paretoMean(rng, sy.MeanRuntimeSec)
		case RuntimeFixed:
			runSec = sy.MeanRuntimeSec
		}
		if runSec < minRuntimeSec {
			runSec = minRuntimeSec
		}
		job := JobSpec{Midplanes: size, ArrivalSec: now, RuntimeSec: runSec}
		if sy.PatternFraction > 0 && rng.Float64() < sy.PatternFraction {
			job.Pattern = sy.Pattern
			job.ContentionBound = true
		}
		jobs[i] = job
	}
	return jobs
}

// trace materializes the spec's job list (inline or synthetic). Call
// on a normalized Spec.
func (s Spec) trace() []JobSpec {
	if s.Synthetic != nil {
		return s.Synthetic.materialize()
	}
	return s.Jobs
}
