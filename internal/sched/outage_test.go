package sched

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"netpart/internal/bgq"
	"netpart/internal/torus"
)

func tinyMachine(t *testing.T) *bgq.Machine {
	t.Helper()
	m, err := bgq.NewMachine("tiny", torus.Shape{4, 2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBlockCellsRemovesFromService(t *testing.T) {
	m := tinyMachine(t)
	g := NewGrid(m)
	total := g.FreeMidplanes()
	if err := g.BlockCells([]int{0, 3}); err != nil {
		t.Fatal(err)
	}
	if free := g.FreeMidplanes(); free != total-2 {
		t.Fatalf("free = %d after blocking 2 of %d", free, total)
	}
	for _, pl := range g.Candidates(1) {
		for _, c := range cellsForTest(m, pl) {
			if c == 0 || c == 3 {
				t.Fatalf("candidate %v covers blocked cell %d", pl, c)
			}
		}
	}
	// Whole-machine placements are gone entirely.
	if cands := g.Candidates(total); len(cands) != 0 {
		t.Fatalf("%d whole-machine candidates despite blocked cells", len(cands))
	}

	if err := g.BlockCells([]int{99}); err == nil {
		t.Fatal("out-of-range block accepted")
	}
	g.occupy(7, torus.Coord{1, 0, 0, 0}, torus.Shape{1, 1, 1, 1})
	if err := g.BlockCells([]int{2}); err == nil {
		t.Fatal("blocking an occupied cell accepted")
	}
}

// cellsForTest recomputes a placement's row-major cells with the
// scheduler's stride convention (last dimension fastest).
func cellsForTest(m *bgq.Machine, pl Placement) []int {
	dims := m.Grid
	strides := make([]int, len(dims))
	s := 1
	for i := len(dims) - 1; i >= 0; i-- {
		strides[i] = s
		s *= dims[i]
	}
	var cells []int
	var rec func(dim, base int)
	rec = func(dim, base int) {
		if dim == len(dims) {
			cells = append(cells, base)
			return
		}
		for off := 0; off < pl.Lens[dim]; off++ {
			c := (pl.Origin[dim] + off) % dims[dim]
			rec(dim+1, base+c*strides[dim])
		}
	}
	rec(0, 0)
	return cells
}

func TestHardOutageKillsAndRequeues(t *testing.T) {
	m := tinyMachine(t)
	jobs := []Job{{ID: 0, Midplanes: 8, ArrivalSec: 0, BaseDurationSec: 100}}
	outages, heals := 0, 0
	kills := 0
	res, err := RunWithOptions(m, FirstFit{}, jobs, Options{
		Outages: []Outage{{StartSec: 50, EndSec: 60, Cells: []int{0}, Factor: 0}},
		OnOutage: func(_ int, open bool, timeSec float64, free int) {
			if open {
				outages++
				if timeSec != 50 {
					t.Errorf("outage opened at %v", timeSec)
				}
				if free != 7 {
					t.Errorf("free = %d after hard open (job killed, 1 cell blocked)", free)
				}
			} else {
				heals++
				if timeSec != 60 {
					t.Errorf("outage healed at %v", timeSec)
				}
			}
		},
		OnKill: func(a Allocation, timeSec float64, _ int) {
			kills++
			if a.Job.ID != 0 || timeSec != 50 {
				t.Errorf("killed job %d at %v", a.Job.ID, timeSec)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if outages != 1 || heals != 1 || kills != 1 {
		t.Fatalf("outages=%d heals=%d kills=%d", outages, heals, kills)
	}
	if len(res.Kills) != 1 || res.Kills[0].KillSec != 50 || res.Kills[0].StartSec != 0 {
		t.Fatalf("kills %+v", res.Kills)
	}
	if len(res.Allocations) != 1 {
		t.Fatalf("%d allocations", len(res.Allocations))
	}
	a := res.Allocations[0]
	// Killed at 50, requeued, blocked until 60, rerun 60..160.
	if a.StartSec != 60 || a.EndSec != 160 {
		t.Fatalf("rerun [%v, %v], want [60, 160]", a.StartSec, a.EndSec)
	}
	if res.MakespanSec != 160 {
		t.Fatalf("makespan %v", res.MakespanSec)
	}
	// The wasted partial run stays in the utilization integral: 50s
	// before the kill plus the full 100s rerun.
	if res.TotalRunSec != 150 {
		t.Fatalf("total run %v, want 150", res.TotalRunSec)
	}
	if res.MidplaneSeconds != 8*150 {
		t.Fatalf("midplane-seconds %v, want %v", res.MidplaneSeconds, 8*150)
	}
	// Wait: 0 for the first start, 10 from the requeue (arrival reset
	// to the kill time).
	if res.TotalWaitSec != 10 {
		t.Fatalf("total wait %v, want 10", res.TotalWaitSec)
	}
}

func TestCompletionAtOutageOpenIsSpared(t *testing.T) {
	m := tinyMachine(t)
	jobs := []Job{{ID: 0, Midplanes: 8, ArrivalSec: 0, BaseDurationSec: 50}}
	res, err := RunWithOptions(m, FirstFit{}, jobs, Options{
		Outages: []Outage{{StartSec: 50, EndSec: 60, Cells: []int{0}, Factor: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kills) != 0 {
		t.Fatalf("job finishing exactly at the window open was killed: %+v", res.Kills)
	}
	if res.MakespanSec != 50 {
		t.Fatalf("makespan %v", res.MakespanSec)
	}
}

func TestDegradeOutageRepricesMidRun(t *testing.T) {
	m := tinyMachine(t)
	jobs := []Job{{ID: 0, Midplanes: 8, ArrivalSec: 0, BaseDurationSec: 100}}
	res, err := RunWithOptions(m, FirstFit{}, jobs, Options{
		Outages: []Outage{{StartSec: 20, EndSec: 40, Cells: []int{0}, Factor: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kills) != 0 {
		t.Fatalf("degrade window killed: %+v", res.Kills)
	}
	a := res.Allocations[0]
	// 20s at full speed, 20s at half speed (10 units of work), then
	// the remaining 70 units at full speed: end = 110.
	if a.EndSec != 110 {
		t.Fatalf("end %v, want 110 (20 + 20 + 70)", a.EndSec)
	}
	if res.TotalRunSec != 110 {
		t.Fatalf("total run %v", res.TotalRunSec)
	}
}

func TestDegradeOutagePricesNewJobs(t *testing.T) {
	m := tinyMachine(t)
	jobs := []Job{{ID: 0, Midplanes: 8, ArrivalSec: 0, BaseDurationSec: 100}}
	res, err := RunWithOptions(m, FirstFit{}, jobs, Options{
		Outages: []Outage{{StartSec: 0, EndSec: math.Inf(1), Cells: []int{0}, Factor: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a := res.Allocations[0]; a.EndSec != 200 {
		t.Fatalf("end %v, want 200 (whole run at half speed)", a.EndSec)
	}
}

func TestPermanentOutageStarves(t *testing.T) {
	m := tinyMachine(t)
	cells := []int{0, 1, 2, 3, 4, 5, 6, 7}
	jobs := []Job{{ID: 0, Midplanes: 1, ArrivalSec: 0, BaseDurationSec: 10}}
	_, err := RunWithOptions(m, FirstFit{}, jobs, Options{
		Outages: []Outage{{StartSec: 0, EndSec: math.Inf(1), Cells: cells, Factor: 0}},
	})
	var starved *StarvedError
	if !errors.As(err, &starved) {
		t.Fatalf("err = %v, want StarvedError", err)
	}
	if starved.Job != 0 || starved.Midplanes != 1 {
		t.Fatalf("starved %+v", starved)
	}
}

func TestBackfillSkipsInfiniteShadow(t *testing.T) {
	m := tinyMachine(t)
	// The head needs the whole machine, but a permanent outage holds
	// half of it: its shadow time is infinite. Without the guard the
	// small job would backfill forever ahead of it.
	jobs := []Job{
		{ID: 0, Midplanes: 8, ArrivalSec: 0, BaseDurationSec: 10},
		{ID: 1, Midplanes: 1, ArrivalSec: 0, BaseDurationSec: 1},
	}
	_, err := RunWithOptions(m, FirstFit{}, jobs, Options{
		Backfill: true,
		Outages:  []Outage{{StartSec: 0, EndSec: math.Inf(1), Cells: []int{0, 1, 2, 3}, Factor: 0}},
	})
	var starved *StarvedError
	if !errors.As(err, &starved) {
		t.Fatalf("err = %v, want StarvedError (head can never start)", err)
	}
}

func TestOutageValidation(t *testing.T) {
	m := tinyMachine(t)
	jobs := []Job{{ID: 0, Midplanes: 1, ArrivalSec: 0, BaseDurationSec: 1}}
	bad := []Outage{
		{StartSec: 0, EndSec: 10, Cells: []int{0}, Factor: 1.5},
		{StartSec: 0, EndSec: 10, Cells: []int{0}, Factor: math.NaN()},
		{StartSec: 10, EndSec: 10, Cells: []int{0}, Factor: 0},
		{StartSec: -1, EndSec: 10, Cells: []int{0}, Factor: 0},
		{StartSec: math.Inf(1), EndSec: math.Inf(1), Cells: []int{0}, Factor: 0},
		{StartSec: 0, EndSec: 10, Cells: []int{8}, Factor: 0},
		{StartSec: 0, EndSec: 10, Cells: []int{-1}, Factor: 0},
	}
	for i, o := range bad {
		if _, err := RunWithOptions(m, FirstFit{}, jobs, Options{Outages: []Outage{o}}); err == nil {
			t.Errorf("outage %d (%+v) accepted", i, o)
		}
	}
}

// TestNoJobOnFailedMidplaneInvariant runs randomized traces against
// randomized hard outage windows, across all three placement policies
// with backfill on and off, and asserts the core safety properties:
// no job is ever started on a cell inside an open hard window, every
// job killed by a window overlapped it, no cell is double-occupied,
// and every occupied cell is released (finish or kill) by the end.
func TestNoJobOnFailedMidplaneInvariant(t *testing.T) {
	m := bgq.Juqueen()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		var jobs []Job
		arr := 0.0
		for i := 0; i < 12; i++ {
			arr += rng.Float64() * 40
			jobs = append(jobs, Job{
				ID:              i,
				Midplanes:       1 << rng.Intn(4),
				ArrivalSec:      arr,
				BaseDurationSec: 10 + rng.Float64()*90,
				ContentionBound: rng.Intn(2) == 0,
			})
		}
		var outages []Outage
		for i := 0; i < 3; i++ {
			start := rng.Float64() * 300
			cells := rng.Perm(m.Midplanes())[:1+rng.Intn(8)]
			outages = append(outages, Outage{
				StartSec: start,
				EndSec:   start + 20 + rng.Float64()*100,
				Cells:    cells,
				Factor:   0,
			})
		}
		// A cell is failed at time ts iff some hard window contains ts.
		// Windows are half-open [start, end): a job may start on a cell
		// the instant its window closes, never the instant one opens.
		failedAt := func(c int, ts float64) bool {
			for _, o := range outages {
				if ts < o.StartSec || ts >= o.EndSec {
					continue
				}
				for _, oc := range o.Cells {
					if oc == c {
						return true
					}
				}
			}
			return false
		}
		for _, pl := range []PlacementPolicy{FirstFit{}, BestBisection{}, ContentionAware{}} {
			for _, backfill := range []bool{false, true} {
				// Occupy/release inversion: each cell a start claims must
				// be free, and each finish/kill must return exactly the
				// cells its start claimed.
				occupied := make(map[int]int) // cell -> job ID holding it
				release := func(a Allocation, what string) {
					for _, c := range cellsForTest(m, a.Placement) {
						holder, ok := occupied[c]
						if !ok || holder != a.Job.ID {
							t.Fatalf("trial %d: %s of job %d released cell %d it did not hold (holder %d, held %v)", trial, what, a.Job.ID, c, holder, ok)
						}
						delete(occupied, c)
					}
				}
				_, err := RunWithOptions(m, pl, jobs, Options{
					Backfill: backfill,
					Outages:  outages,
					OnStart: func(a Allocation) {
						for _, c := range cellsForTest(m, a.Placement) {
							if failedAt(c, a.StartSec) {
								t.Fatalf("trial %d: job %d started on failed cell %d at %v", trial, a.Job.ID, c, a.StartSec)
							}
							if holder, ok := occupied[c]; ok {
								t.Fatalf("trial %d: job %d started on cell %d already held by job %d", trial, a.Job.ID, c, holder)
							}
							occupied[c] = a.Job.ID
						}
					},
					OnFinish: func(a Allocation) { release(a, "finish") },
					OnKill: func(a Allocation, ts float64, _ int) {
						hit := false
						for _, c := range cellsForTest(m, a.Placement) {
							if failedAt(c, ts) {
								hit = true
							}
						}
						if !hit {
							t.Fatalf("trial %d: job %d killed at %v without overlapping an open window", trial, a.Job.ID, ts)
						}
						release(a, "kill")
					},
				})
				if err != nil {
					var starved *StarvedError
					if errors.As(err, &starved) {
						continue // permanent starvation is legal under random windows
					}
					t.Fatalf("trial %d: %v", trial, err)
				}
				if len(occupied) != 0 {
					t.Fatalf("trial %d: %d cells still occupied after the schedule drained: %v", trial, len(occupied), occupied)
				}
			}
		}
	}
}

// TestOutageDeterminism replays the same failure-laden schedule twice
// and asserts identical results.
func TestOutageDeterminism(t *testing.T) {
	m := bgq.Juqueen()
	var jobs []Job
	rng := rand.New(rand.NewSource(7))
	arr := 0.0
	for i := 0; i < 15; i++ {
		arr += rng.Float64() * 30
		jobs = append(jobs, Job{ID: i, Midplanes: 1 << rng.Intn(4), ArrivalSec: arr, BaseDurationSec: 20 + rng.Float64()*80})
	}
	opts := Options{
		Backfill: true,
		Outages: []Outage{
			{StartSec: 40, EndSec: 120, Cells: []int{0, 1, 2, 3}, Factor: 0},
			{StartSec: 80, EndSec: 200, Cells: []int{10, 11}, Factor: 0.25},
		},
	}
	a, err := RunWithOptions(m, BestBisection{}, jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWithOptions(m, BestBisection{}, jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanSec != b.MakespanSec || a.TotalRunSec != b.TotalRunSec || len(a.Kills) != len(b.Kills) {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
	for i := range a.Allocations {
		if a.Allocations[i].StartSec != b.Allocations[i].StartSec || a.Allocations[i].EndSec != b.Allocations[i].EndSec {
			t.Fatalf("allocation %d diverged", i)
		}
	}
}
