package sched

import (
	"math/rand"
	"testing"

	"netpart/internal/bgq"
	"netpart/internal/lru"
	"netpart/internal/torus"
)

// planTestPolicies are every policy the fused scans specialize on,
// paired with the ContentionBound flag values that change their
// behavior.
func planTestPolicies() []struct {
	policy          PlacementPolicy
	contentionBound bool
} {
	return []struct {
		policy          PlacementPolicy
		contentionBound bool
	}{
		{FirstFit{}, false},
		{FirstFit{}, true},
		{BestBisection{}, false},
		{BestBisection{}, true},
		{ContentionAware{}, false},
		{ContentionAware{}, true},
	}
}

// checkPlanAgainstOracle asserts that placeFor and anyFit agree with
// the generic candidates()+Choose path for every policy and size on
// the grid's current occupancy.
func checkPlanAgainstOracle(t *testing.T, g *Grid, sizes []int) {
	t.Helper()
	for _, size := range sizes {
		cands := g.candidates(size)
		if got, want := g.anyFit(size), len(cands) > 0; got != want {
			t.Fatalf("size %d: anyFit = %v, candidates = %d", size, got, len(cands))
		}
		for _, pc := range planTestPolicies() {
			job := Job{ID: 0, Midplanes: size, BaseDurationSec: 1, ContentionBound: pc.contentionBound}
			pl, ok := g.placeFor(job, pc.policy)
			if ok != (len(cands) > 0) {
				t.Fatalf("size %d policy %s cb=%v: ok = %v, candidates = %d", size, pc.policy.Name(), pc.contentionBound, ok, len(cands))
			}
			if !ok {
				continue
			}
			want := pc.policy.Choose(job, cands)
			if !coordEqual(pl.Origin, want.Origin) || pl.Lens.String() != want.Lens.String() {
				t.Fatalf("size %d policy %s cb=%v: placeFor %v/%v, oracle %v/%v",
					size, pc.policy.Name(), pc.contentionBound, pl.Origin, pl.Lens, want.Origin, want.Lens)
			}
		}
	}
}

func coordEqual(a, b torus.Coord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// freeSweep recounts free midplanes the brute-force way, checking the
// incrementally maintained counter.
func freeSweep(g *Grid) int {
	n := 0
	for c, u := range g.used {
		if u == 0 && g.blocked[c] == 0 {
			n++
		}
	}
	return n
}

// TestPlanMatchesOracle drives randomized occupancy — placements,
// releases, blocked cells — and pins the fused placement scans to the
// generic materialize-and-Choose path at every step, on both a
// production machine shape and a degenerate one with length-1
// dimensions.
func TestPlanMatchesOracle(t *testing.T) {
	machines := []*bgq.Machine{bgq.Juqueen()}
	if m, err := bgq.NewMachine("slab", torus.Shape{4, 2, 2, 1}); err == nil {
		machines = append(machines, m)
	} else {
		t.Fatalf("slab machine: %v", err)
	}
	sizes := []int{1, 2, 3, 4, 6, 8}
	for _, m := range machines {
		rng := rand.New(rand.NewSource(7))
		g := NewGrid(m)
		type placed struct {
			id     int
			origin torus.Coord
			lens   torus.Shape
		}
		var live []placed
		var blockedCells [][]int
		checkPlanAgainstOracle(t, g, sizes)
		for step := 0; step < 60; step++ {
			switch op := rng.Intn(10); {
			case op < 5: // occupy a random feasible placement
				size := sizes[rng.Intn(len(sizes))]
				cands := g.candidates(size)
				if len(cands) == 0 {
					continue
				}
				pl := cands[rng.Intn(len(cands))]
				g.occupy(step, pl.Origin, pl.Lens)
				live = append(live, placed{step, pl.Origin, pl.Lens})
			case op < 8: // release a random live placement
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				p := live[i]
				g.release(p.id, p.origin, p.lens)
				live = append(live[:i], live[i+1:]...)
			case op < 9: // block a few random cells (overlap allowed)
				cells := []int{rng.Intn(len(g.used)), rng.Intn(len(g.used))}
				g.block(cells)
				blockedCells = append(blockedCells, cells)
			default: // unblock the oldest block
				if len(blockedCells) == 0 {
					continue
				}
				g.unblock(blockedCells[0])
				blockedCells = blockedCells[1:]
			}
			if got, want := g.FreeMidplanes(), freeSweep(g); got != want {
				t.Fatalf("machine %s step %d: free counter %d, sweep %d", m.Name, step, got, want)
			}
			checkPlanAgainstOracle(t, g, sizes)
		}
	}
}

// TestPlanCacheCounters pins the hits+misses accounting: scoring the
// same (shape, size) pair repeatedly misses once and hits after.
func TestPlanCacheCounters(t *testing.T) {
	m, err := bgq.NewMachine("counter-probe", torus.Shape{5, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGrid(m)
	h0, m0, _ := PlanCacheCounts()
	// A size no other test uses on this unique shape: first use
	// compiles, the rest hit.
	for i := 0; i < 4; i++ {
		if _, ok := g.planFor(5); !ok {
			t.Fatal("rank-4 grid not compiled")
		}
	}
	h1, m1, _ := PlanCacheCounts()
	if m1-m0 != 1 {
		t.Fatalf("misses grew by %d, want 1", m1-m0)
	}
	if h1-h0 != 3 {
		t.Fatalf("hits grew by %d, want 3", h1-h0)
	}
}

// TestPlanCacheEvictionSameResults shrinks the plan cache to one
// entry so alternating sizes evict on every call, and checks the
// fused scans still match the oracle — eviction may cost time, never
// correctness.
func TestPlanCacheEvictionSameResults(t *testing.T) {
	saved := planCache
	planCache = lru.New[string, *placementPlan](1)
	defer func() { planCache = saved }()

	g := NewGrid(bgq.Juqueen())
	g.occupy(1, torus.Coord{0, 0, 0, 0}, torus.Shape{3, 2, 1, 1})
	for round := 0; round < 3; round++ {
		checkPlanAgainstOracle(t, g, []int{2, 4, 8}) // every size evicts the last
	}
	if _, _, ev := planCache.Counts(); ev == 0 {
		t.Fatal("capacity-1 cache never evicted")
	}
}
