package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"netpart/internal/bgq"
	"netpart/internal/torus"
)

func TestGridBasics(t *testing.T) {
	g := NewGrid(bgq.Juqueen())
	if g.FreeMidplanes() != 56 {
		t.Errorf("free = %d", g.FreeMidplanes())
	}
	origin := torus.Coord{0, 0, 0, 0}
	lens := torus.Shape{2, 2, 1, 1}
	if !g.fits(origin, lens) {
		t.Error("empty grid should fit")
	}
	g.occupy(1, origin, lens)
	if g.FreeMidplanes() != 52 {
		t.Errorf("free after occupy = %d", g.FreeMidplanes())
	}
	if g.fits(origin, lens) {
		t.Error("occupied region reported free")
	}
	// Overlapping placement rejected.
	if g.fits(torus.Coord{1, 1, 0, 0}, torus.Shape{1, 1, 1, 1}) {
		t.Error("overlap not detected")
	}
	// Disjoint placement fits.
	if !g.fits(torus.Coord{2, 0, 0, 0}, torus.Shape{2, 2, 1, 1}) {
		t.Error("disjoint region should fit")
	}
	g.release(1, origin, lens)
	if g.FreeMidplanes() != 56 {
		t.Error("release did not free")
	}
}

func TestGridWraparound(t *testing.T) {
	g := NewGrid(bgq.Juqueen()) // 7x2x2x2
	// A length-3 cuboid starting at coordinate 5 wraps 5,6,0.
	origin := torus.Coord{5, 0, 0, 0}
	lens := torus.Shape{3, 1, 1, 1}
	g.occupy(9, origin, lens)
	if g.fits(torus.Coord{0, 0, 0, 0}, torus.Shape{1, 1, 1, 1}) {
		t.Error("wrapped cell 0 should be occupied")
	}
	if !g.fits(torus.Coord{1, 0, 0, 0}, torus.Shape{1, 1, 1, 1}) {
		t.Error("cell 1 should be free")
	}
	g.release(9, origin, lens)
}

func TestGridPanics(t *testing.T) {
	g := NewGrid(bgq.Juqueen())
	g.occupy(1, torus.Coord{0, 0, 0, 0}, torus.Shape{1, 1, 1, 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double occupy should panic")
			}
		}()
		g.occupy(2, torus.Coord{0, 0, 0, 0}, torus.Shape{1, 1, 1, 1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("foreign release should panic")
			}
		}()
		g.release(3, torus.Coord{0, 0, 0, 0}, torus.Shape{1, 1, 1, 1})
	}()
}

func TestCandidatesDeterministicAndValid(t *testing.T) {
	g := NewGrid(bgq.Juqueen())
	a := g.candidates(8)
	b := g.candidates(8)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("candidates: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Lens.Equal(b[i].Lens) {
			t.Fatal("nondeterministic candidates")
		}
		if a[i].Lens.Volume() != 8 {
			t.Errorf("candidate volume %d", a[i].Lens.Volume())
		}
	}
}

func TestPoliciesPickExpectedGeometry(t *testing.T) {
	g := NewGrid(bgq.Juqueen())
	cands := g.candidates(8)
	job := Job{ID: 1, Midplanes: 8, BaseDurationSec: 1, ContentionBound: true}
	ff := FirstFit{}.Choose(job, cands)
	bb := BestBisection{}.Choose(job, cands)
	ca := ContentionAware{}.Choose(job, cands)
	if bb.Partition().BisectionBW() != 1024 {
		t.Errorf("best-bisection chose %v (BW %d), want 2x2x2x1/1024", bb.Lens, bb.Partition().BisectionBW())
	}
	if !ca.Lens.Equal(bb.Lens) {
		t.Error("contention-aware should match best-bisection for bound jobs")
	}
	job.ContentionBound = false
	ca = ContentionAware{}.Choose(job, cands)
	if !ca.Lens.Equal(ff.Lens) {
		t.Error("contention-aware should match first-fit for unbound jobs")
	}
	// First-fit on JUQUEEN picks the 4x2x1x1 geometry (enumeration
	// order), which is the worst case.
	if ff.Partition().BisectionBW() != 512 {
		t.Errorf("first-fit BW %d, want 512", ff.Partition().BisectionBW())
	}
}

func TestRunSingleJob(t *testing.T) {
	m := bgq.Juqueen()
	jobs := []Job{{ID: 0, Midplanes: 8, BaseDurationSec: 100, ContentionBound: true}}
	res, err := Run(m, ContentionAware{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Allocations) != 1 {
		t.Fatal("one allocation expected")
	}
	a := res.Allocations[0]
	if a.EndSec-a.StartSec != 100 {
		t.Errorf("contention-aware run stretched: %v", a.EndSec-a.StartSec)
	}
	// The same job under first-fit lands on the worst geometry and
	// stretches 2x.
	res2, err := Run(m, FirstFit{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	a2 := res2.Allocations[0]
	if a2.EndSec-a2.StartSec != 200 {
		t.Errorf("first-fit run = %v, want 200 (2x stretch)", a2.EndSec-a2.StartSec)
	}
}

func TestRunQueueContention(t *testing.T) {
	// Many contention-bound jobs: the aware policy finishes the queue
	// sooner and with lower average stretch.
	m := bgq.Juqueen()
	var jobs []Job
	for i := 0; i < 10; i++ {
		jobs = append(jobs, Job{ID: i, Midplanes: 8, ArrivalSec: 0, BaseDurationSec: 50, ContentionBound: true})
	}
	aware, err := Run(m, ContentionAware{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Run(m, FirstFit{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if aware.AvgStretch() >= naive.AvgStretch() {
		t.Errorf("aware stretch %v should beat first-fit %v", aware.AvgStretch(), naive.AvgStretch())
	}
	if aware.TotalRunSec >= naive.TotalRunSec {
		t.Errorf("aware total runtime %v should beat first-fit %v", aware.TotalRunSec, naive.TotalRunSec)
	}
	if aware.MakespanSec > naive.MakespanSec {
		t.Errorf("aware makespan %v should not exceed first-fit %v", aware.MakespanSec, naive.MakespanSec)
	}
	if aware.AvgStretch() != 1.0 {
		t.Errorf("aware stretch = %v, want 1.0 on an empty machine", aware.AvgStretch())
	}
}

func TestRunArrivalOrderAndWaits(t *testing.T) {
	m := bgq.Juqueen()
	jobs := []Job{
		{ID: 0, Midplanes: 56, ArrivalSec: 0, BaseDurationSec: 10},
		{ID: 1, Midplanes: 56, ArrivalSec: 1, BaseDurationSec: 10},
	}
	res, err := Run(m, FirstFit{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocations[1].StartSec != 10 {
		t.Errorf("second full-machine job started at %v, want 10", res.Allocations[1].StartSec)
	}
	if res.TotalWaitSec != 9 {
		t.Errorf("total wait %v, want 9", res.TotalWaitSec)
	}
	if res.MakespanSec != 20 {
		t.Errorf("makespan %v, want 20", res.MakespanSec)
	}
}

func TestRunErrors(t *testing.T) {
	m := bgq.Juqueen()
	if _, err := Run(m, FirstFit{}, []Job{{ID: 0, Midplanes: 9, BaseDurationSec: 1}}); err == nil {
		t.Error("9 midplanes infeasible on JUQUEEN should fail")
	}
	if _, err := Run(m, FirstFit{}, []Job{{ID: 0, Midplanes: 8, BaseDurationSec: 0}}); err == nil {
		t.Error("zero duration should fail")
	}
}

// TestNoOverlapInvariant: random job streams never double-book a
// midplane (checked by the occupy panic) and always terminate.
func TestNoOverlapInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := bgq.Juqueen()
		sizes := []int{1, 2, 4, 8, 16, 28}
		var jobs []Job
		for i := 0; i < 12; i++ {
			jobs = append(jobs, Job{
				ID:              i,
				Midplanes:       sizes[rng.Intn(len(sizes))],
				ArrivalSec:      float64(rng.Intn(5)),
				BaseDurationSec: 1 + float64(rng.Intn(20)),
				ContentionBound: rng.Intn(2) == 0,
			})
		}
		for _, pol := range []PlacementPolicy{FirstFit{}, BestBisection{}, ContentionAware{}} {
			res, err := Run(m, pol, jobs)
			if err != nil {
				return false
			}
			if len(res.Allocations) != len(jobs) {
				return false
			}
			// Jobs never run before arrival.
			for _, a := range res.Allocations {
				if a.StartSec < a.Job.ArrivalSec {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []PlacementPolicy{FirstFit{}, BestBisection{}, ContentionAware{}} {
		if p.Name() == "" {
			t.Error("empty policy name")
		}
	}
}

func BenchmarkSchedulerPolicies(b *testing.B) {
	m := bgq.Juqueen()
	var jobs []Job
	for i := 0; i < 16; i++ {
		jobs = append(jobs, Job{ID: i, Midplanes: []int{4, 8, 12}[i%3], BaseDurationSec: 10, ContentionBound: true})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, ContentionAware{}, jobs); err != nil {
			b.Fatal(err)
		}
	}
}
