package sched

import (
	"testing"

	"netpart/internal/bgq"
)

// TestBackfillRunsShortJobInShadow: a full-machine job waits behind a
// half-machine job; a short small job behind them fits the gap.
func TestBackfillRunsShortJobInShadow(t *testing.T) {
	m := bgq.Juqueen()
	jobs := []Job{
		{ID: 0, Midplanes: 28, ArrivalSec: 0, BaseDurationSec: 100},
		{ID: 1, Midplanes: 56, ArrivalSec: 1, BaseDurationSec: 10}, // must wait for job 0
		{ID: 2, Midplanes: 4, ArrivalSec: 2, BaseDurationSec: 50},  // fits before job 0 ends
	}
	plain, err := Run(m, FirstFit{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := RunWithOptions(m, FirstFit{}, jobs, Options{Backfill: true})
	if err != nil {
		t.Fatal(err)
	}
	// Without backfill job 2 waits for the full-machine job: starts
	// after 0 and 1 complete.
	if plain.Allocations[2].StartSec <= plain.Allocations[1].StartSec {
		t.Errorf("plain FCFS should hold job 2 behind job 1: %+v", plain.Allocations)
	}
	// With backfill job 2 starts immediately (finishes at 52 <= 100).
	if back.Allocations[2].StartSec != 2 {
		t.Errorf("backfilled job 2 started at %v, want 2", back.Allocations[2].StartSec)
	}
	// EASY guarantee: the head job (1) starts no later than without
	// backfill.
	if back.Allocations[1].StartSec > plain.Allocations[1].StartSec {
		t.Errorf("backfill delayed the head job: %v > %v",
			back.Allocations[1].StartSec, plain.Allocations[1].StartSec)
	}
	if back.MakespanSec > plain.MakespanSec {
		t.Errorf("backfill worsened makespan: %v > %v", back.MakespanSec, plain.MakespanSec)
	}
	if back.TotalWaitSec >= plain.TotalWaitSec {
		t.Errorf("backfill should reduce waiting: %v vs %v", back.TotalWaitSec, plain.TotalWaitSec)
	}
}

// TestBackfillRespectsShadow: a long small job must NOT backfill when
// it would outlive the shadow window.
func TestBackfillRespectsShadow(t *testing.T) {
	m := bgq.Juqueen()
	jobs := []Job{
		{ID: 0, Midplanes: 28, ArrivalSec: 0, BaseDurationSec: 100},
		{ID: 1, Midplanes: 56, ArrivalSec: 1, BaseDurationSec: 10},
		{ID: 2, Midplanes: 4, ArrivalSec: 2, BaseDurationSec: 200}, // too long to hide
	}
	back, err := RunWithOptions(m, FirstFit{}, jobs, Options{Backfill: true})
	if err != nil {
		t.Fatal(err)
	}
	// Job 2 may not start before the full-machine job.
	if back.Allocations[2].StartSec < back.Allocations[1].EndSec {
		t.Errorf("long job backfilled into the shadow: started %v, head job ends %v",
			back.Allocations[2].StartSec, back.Allocations[1].EndSec)
	}
	// And the head job still starts as soon as job 0 finishes.
	if back.Allocations[1].StartSec != 100 {
		t.Errorf("head start = %v, want 100", back.Allocations[1].StartSec)
	}
}

// TestBackfillStretchAware: a contention-bound backfill candidate's
// *stretched* duration decides admission.
func TestBackfillStretchAware(t *testing.T) {
	m := bgq.Juqueen()
	// Shadow window is 100 s. The candidate's base duration (60 s)
	// fits, but first-fit places it on the worst geometry, stretching
	// it to 120 s — it must not backfill under first-fit, yet does
	// under the contention-aware policy (stays 60 s).
	jobs := []Job{
		{ID: 0, Midplanes: 28, ArrivalSec: 0, BaseDurationSec: 100},
		{ID: 1, Midplanes: 56, ArrivalSec: 1, BaseDurationSec: 10},
		{ID: 2, Midplanes: 8, ArrivalSec: 2, BaseDurationSec: 60, ContentionBound: true},
	}
	ff, err := RunWithOptions(m, FirstFit{}, jobs, Options{Backfill: true})
	if err != nil {
		t.Fatal(err)
	}
	if ff.Allocations[2].StartSec < 100 {
		t.Errorf("stretched job backfilled under first-fit: start %v", ff.Allocations[2].StartSec)
	}
	ca, err := RunWithOptions(m, ContentionAware{}, jobs, Options{Backfill: true})
	if err != nil {
		t.Fatal(err)
	}
	if ca.Allocations[2].StartSec != 2 {
		t.Errorf("contention-aware backfill should admit the job at 2, got %v", ca.Allocations[2].StartSec)
	}
}

func TestBackfillNoCandidates(t *testing.T) {
	// Backfill with nothing admissible behaves exactly like FCFS.
	m := bgq.Juqueen()
	jobs := []Job{
		{ID: 0, Midplanes: 56, ArrivalSec: 0, BaseDurationSec: 5},
		{ID: 1, Midplanes: 56, ArrivalSec: 0, BaseDurationSec: 5},
	}
	plain, err := Run(m, FirstFit{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := RunWithOptions(m, FirstFit{}, jobs, Options{Backfill: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.MakespanSec != back.MakespanSec {
		t.Errorf("makespans differ: %v vs %v", plain.MakespanSec, back.MakespanSec)
	}
}
