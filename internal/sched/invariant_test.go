package sched

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"netpart/internal/bgq"
)

// gridSnapshot copies the occupancy array.
func gridSnapshot(g *Grid) []int { return append([]int(nil), g.used...) }

func gridsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOccupyReleaseInverse: release restores the exact occupancy that
// preceded the matching occupy, under random interleaved sequences of
// placements and releases.
func TestOccupyReleaseInverse(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := NewGrid(bgq.Juqueen())
		total := g.Machine().Midplanes()
		type live struct {
			id     int
			pl     Placement
			before []int // snapshot at occupy time, for LIFO inverse checks
		}
		var stack []live
		nextID := 0
		for step := 0; step < 60; step++ {
			if len(stack) > 0 && rng.Intn(2) == 0 {
				// Release the most recent placement: the grid must return
				// byte-exactly to its pre-occupy state.
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				g.release(top.id, top.pl.Origin, top.pl.Lens)
				if !gridsEqual(gridSnapshot(g), top.before) {
					t.Fatalf("seed %d step %d: release is not the inverse of occupy", seed, step)
				}
				continue
			}
			size := []int{1, 2, 4, 8}[rng.Intn(4)]
			cands := g.candidates(size)
			if len(cands) == 0 {
				continue
			}
			pl := cands[rng.Intn(len(cands))]
			before := gridSnapshot(g)
			g.occupy(nextID, pl.Origin, pl.Lens)
			stack = append(stack, live{id: nextID, pl: pl, before: before})
			nextID++

			// FreeMidplanes must equal grid size minus occupied cells.
			occupied := 0
			for _, s := range stack {
				occupied += s.pl.Lens.Volume()
			}
			if free := g.FreeMidplanes(); free != total-occupied {
				t.Fatalf("seed %d step %d: FreeMidplanes = %d, want %d", seed, step, free, total-occupied)
			}
		}
	}
}

// replayEvent is a start or finish in the completed schedule.
type replayEvent struct {
	timeSec float64
	finish  bool // finishes sort before starts at equal times
	alloc   Allocation
}

// TestScheduleInvariants fuzzes random job streams through every
// policy with backfill on and off, then replays the completed
// schedule through a fresh Grid: any midplane double-booking panics
// the occupy, finishes must release exactly what starts occupied, and
// the running free count must equal grid size minus occupied cells at
// every event.
func TestScheduleInvariants(t *testing.T) {
	machines := []*bgq.Machine{bgq.Juqueen(), bgq.Mira()}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := machines[seed%2]
		sizes := []int{1, 2, 4, 8, 16}
		var jobs []Job
		for i := 0; i < 14; i++ {
			jobs = append(jobs, Job{
				ID:              i,
				Midplanes:       sizes[rng.Intn(len(sizes))],
				ArrivalSec:      float64(rng.Intn(40)),
				BaseDurationSec: 1 + float64(rng.Intn(30)),
				ContentionBound: rng.Intn(2) == 0,
			})
		}
		for _, pol := range []PlacementPolicy{FirstFit{}, BestBisection{}, ContentionAware{}} {
			for _, backfill := range []bool{false, true} {
				res, err := RunWithOptions(m, pol, jobs, Options{Backfill: backfill})
				if err != nil {
					t.Fatalf("seed %d %s backfill=%v: %v", seed, pol.Name(), backfill, err)
				}
				if len(res.Allocations) != len(jobs) {
					t.Fatalf("seed %d %s: %d allocations for %d jobs", seed, pol.Name(), len(res.Allocations), len(jobs))
				}
				var events []replayEvent
				for _, a := range res.Allocations {
					if a.StartSec < a.Job.ArrivalSec {
						t.Fatalf("seed %d %s: job %d started %v before arrival %v", seed, pol.Name(), a.Job.ID, a.StartSec, a.Job.ArrivalSec)
					}
					if a.EndSec <= a.StartSec {
						t.Fatalf("seed %d %s: job %d has empty runtime", seed, pol.Name(), a.Job.ID)
					}
					events = append(events,
						replayEvent{a.StartSec, false, a},
						replayEvent{a.EndSec, true, a})
				}
				// Finishes precede starts at equal times: the simulator
				// releases a completion before placing at the same instant.
				sort.SliceStable(events, func(i, j int) bool {
					if events[i].timeSec != events[j].timeSec {
						return events[i].timeSec < events[j].timeSec
					}
					return events[i].finish && !events[j].finish
				})
				g := NewGrid(m)
				total := m.Midplanes()
				occupied := 0
				for _, ev := range events {
					if ev.finish {
						g.release(ev.alloc.Job.ID, ev.alloc.Placement.Origin, ev.alloc.Placement.Lens)
						occupied -= ev.alloc.Job.Midplanes
					} else {
						g.occupy(ev.alloc.Job.ID, ev.alloc.Placement.Origin, ev.alloc.Placement.Lens)
						occupied += ev.alloc.Job.Midplanes
					}
					if free := g.FreeMidplanes(); free != total-occupied {
						t.Fatalf("seed %d %s: FreeMidplanes = %d, want %d", seed, pol.Name(), free, total-occupied)
					}
				}
				if g.FreeMidplanes() != total {
					t.Fatalf("seed %d %s: schedule did not drain the machine", seed, pol.Name())
				}
			}
		}
	}
}

// TestNeverFitsTyped: infeasible sizes surface the typed error, both
// oversize and geometry-infeasible requests.
func TestNeverFitsTyped(t *testing.T) {
	m := bgq.Juqueen() // 7x2x2x2, 56 midplanes
	for _, midplanes := range []int{9, 57, 100} {
		_, err := Run(m, FirstFit{}, []Job{{ID: 3, Midplanes: midplanes, BaseDurationSec: 1}})
		var nf *NeverFitsError
		if !errors.As(err, &nf) {
			t.Fatalf("%d midplanes: err = %v, want NeverFitsError", midplanes, err)
		}
		if nf.Job != 3 || nf.Midplanes != midplanes || nf.Machine != m.Name {
			t.Errorf("NeverFitsError fields = %+v", nf)
		}
	}
	// Feasible sizes do not trip it.
	if _, err := Run(m, FirstFit{}, []Job{{ID: 0, Midplanes: 8, BaseDurationSec: 1}}); err != nil {
		t.Fatalf("feasible job failed: %v", err)
	}
}

// TestJobValidation: non-positive sizes and non-finite runtimes and
// arrivals are rejected up front.
func TestJobValidation(t *testing.T) {
	m := bgq.Juqueen()
	bad := []Job{
		{ID: 0, Midplanes: 0, BaseDurationSec: 1},
		{ID: 0, Midplanes: -2, BaseDurationSec: 1},
		{ID: 0, Midplanes: 4, BaseDurationSec: 0},
		{ID: 0, Midplanes: 4, BaseDurationSec: -1},
		{ID: 0, Midplanes: 4, BaseDurationSec: math.NaN()},
		{ID: 0, Midplanes: 4, BaseDurationSec: math.Inf(1)},
		{ID: 0, Midplanes: 4, BaseDurationSec: 1, ArrivalSec: -1},
		{ID: 0, Midplanes: 4, BaseDurationSec: 1, ArrivalSec: math.NaN()},
		{ID: 0, Midplanes: 4, BaseDurationSec: 1, ArrivalSec: math.Inf(1)},
	}
	for i, j := range bad {
		if _, err := Run(m, FirstFit{}, []Job{j}); err == nil {
			t.Errorf("bad job %d (%+v) accepted", i, j)
		}
	}
}

// TestDurationHookAndEvents: the pluggable runtime model drives the
// schedule, and OnStart/OnFinish observe it in simulation-time order
// with the backfill flag set on backfilled jobs.
func TestDurationHookAndEvents(t *testing.T) {
	m := bgq.Juqueen()
	jobs := []Job{
		{ID: 0, Midplanes: 48, ArrivalSec: 0, BaseDurationSec: 10},
		{ID: 1, Midplanes: 48, ArrivalSec: 1, BaseDurationSec: 10},
		{ID: 2, Midplanes: 4, ArrivalSec: 2, BaseDurationSec: 3},
	}
	var starts, finishes []Allocation
	lastTime := math.Inf(-1)
	opts := Options{
		Backfill: true,
		Duration: func(j Job, _ Placement) float64 { return 2 * j.BaseDurationSec },
		OnStart: func(a Allocation) {
			if a.StartSec < lastTime {
				t.Errorf("start of job %d at %v out of order", a.Job.ID, a.StartSec)
			}
			lastTime = a.StartSec
			starts = append(starts, a)
		},
		OnFinish: func(a Allocation) {
			if a.EndSec < lastTime {
				t.Errorf("finish of job %d at %v out of order", a.Job.ID, a.EndSec)
			}
			lastTime = a.EndSec
			finishes = append(finishes, a)
		},
	}
	res, err := RunWithOptions(m, FirstFit{}, jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 3 || len(finishes) != 3 {
		t.Fatalf("%d starts, %d finishes, want 3 each", len(starts), len(finishes))
	}
	for _, a := range res.Allocations {
		if got, want := a.EndSec-a.StartSec, 2*a.Job.BaseDurationSec; math.Abs(got-want) > 1e-9 {
			t.Errorf("job %d ran %v, want %v under the doubled model", a.Job.ID, got, want)
		}
	}
	// Job 1 (48 midplanes) blocks behind job 0; job 2 (4 midplanes,
	// 6s doubled) finishes by job 0's shadow time (20s) and backfills.
	byID := map[int]Allocation{}
	for _, a := range res.Allocations {
		byID[a.Job.ID] = a
	}
	if !byID[2].Backfilled {
		t.Error("job 2 should be backfilled")
	}
	if byID[0].Backfilled || byID[1].Backfilled {
		t.Error("jobs 0/1 wrongly marked backfilled")
	}
}

// TestRunContextCancellation: a canceled context stops the event loop.
func TestRunContextCancellation(t *testing.T) {
	m := bgq.Juqueen()
	var jobs []Job
	for i := 0; i < 50; i++ {
		jobs = append(jobs, Job{ID: i, Midplanes: 8, ArrivalSec: float64(i), BaseDurationSec: 5})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, m, FirstFit{}, jobs, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancel mid-run from an event hook.
	ctx2, cancel2 := context.WithCancel(context.Background())
	n := 0
	opts := Options{OnFinish: func(Allocation) {
		n++
		if n == 3 {
			cancel2()
		}
	}}
	if _, err := RunContext(ctx2, m, FirstFit{}, jobs, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run err = %v, want context.Canceled", err)
	}
	if n < 3 || n >= 50 {
		t.Fatalf("loop stopped after %d finishes", n)
	}
	cancel()
}

// TestNeverFitsVsGeometry: sanity that the neverFits pre-pass agrees
// with candidate enumeration on an empty machine.
func TestNeverFitsVsGeometry(t *testing.T) {
	m := bgq.Juqueen()
	g := NewGrid(m)
	for size := 1; size <= m.Midplanes(); size++ {
		pre := neverFits(m, size)
		enum := len(g.candidates(size)) == 0
		if pre != enum {
			t.Errorf("size %d: neverFits = %v, empty candidates = %v", size, pre, enum)
		}
	}
}
