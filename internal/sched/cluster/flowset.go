package cluster

import (
	"fmt"
	"sync"

	"netpart/internal/lru"
	"netpart/internal/model"
	"netpart/internal/netsim"
	"netpart/internal/route"
	"netpart/internal/scenario"
	"netpart/internal/torus"
	"netpart/internal/workload"
)

// flowSet is the compiled network workload of one (geometry, pattern)
// pair: every routed flow of one pattern round on the midplane-level
// torus of the geometry, ready to replay into a recycled simulator.
// Compiling it — torus construction, router setup, demand generation,
// routing — is the expensive prefix of a contention score; the replay
// is just StartFlow calls and the max-min filling rounds. The set is
// immutable after construction, so one cached copy serves concurrent
// scorers.
type flowSet struct {
	numLinks int
	paths    [][]int
	bytes    []float64
}

// flowSetCache is the process-wide bounded cache of compiled flow
// sets, keyed "geometry|pattern" like the scalar patternSecMemo it
// backs: the scalar memo answers repeat scores, the flow-set cache
// answers the replay that fills scalar misses (and the live flow
// accounting in the engine). The working set is small — geometries of
// the machine catalog × three patterns — but bounded against
// adversarial custom-machine streams.
var flowSetCache = lru.New[string, *flowSet](512)

// FlowSetCounts returns the process-wide flow-set cache hits, misses
// and evictions since process start, for the observability layer.
func FlowSetCounts() (hits, misses, evictions uint64) {
	return flowSetCache.Counts()
}

// buildFlowSet compiles the routed flow set of one pattern round on
// the geometry. Length-1 dimensions carry no links and are dropped so
// the torus is the real communication graph of the cuboid; a geometry
// with no remaining dimensions (a single midplane) has no flows.
func buildFlowSet(geom torus.Shape, pattern string) (*flowSet, error) {
	dims := make([]int, 0, len(geom))
	for _, d := range geom {
		if d > 1 {
			dims = append(dims, d)
		}
	}
	fs := &flowSet{}
	if len(dims) == 0 {
		return fs, nil
	}
	tor, err := torus.New(dims...)
	if err != nil {
		return nil, fmt.Errorf("cluster: geometry %s: %w", geom, err)
	}
	r := route.NewRouter(tor)
	var demands []route.Demand
	switch pattern {
	case PatternPairing:
		demands, err = workload.BisectionPairing(r, scenario.DefaultBytes)
	case PatternAllToAll:
		demands, err = workload.AllToAll(tor, scenario.DefaultBytes)
	case PatternNeighbor:
		demands, err = workload.NearestNeighbor(tor, scenario.DefaultBytes)
	default:
		err = fmt.Errorf("cluster: unknown pattern %q", pattern)
	}
	if err != nil {
		return nil, err
	}
	fs.numLinks = r.NumLinks()
	for _, d := range demands {
		if path := r.Route(d.Src, d.Dst, nil); len(path) > 0 {
			fs.paths = append(fs.paths, path)
			fs.bytes = append(fs.bytes, d.Bytes)
		}
	}
	return fs, nil
}

// flowSetFor returns the cached flow set of the pair, compiling it on
// first use.
func flowSetFor(geom torus.Shape, pattern string) (*flowSet, error) {
	key := geom.String() + "|" + pattern
	if fs, ok := flowSetCache.Get(key); ok {
		return fs, nil
	}
	fs, err := buildFlowSet(geom, pattern)
	if err != nil {
		return nil, err
	}
	flowSetCache.Put(key, fs)
	return fs, nil
}

// simPool recycles flow simulators across replays so a scalar-memo
// miss does not allocate a fresh arena. netsim.Reset reproduces a
// fresh simulator bit for bit, so pooling cannot perturb scores.
var simPool = sync.Pool{New: func() any { return netsim.New(1, model.LinkBytesPerSec) }}

// replay runs one pattern round of the flow set on uniform-capacity
// links and returns the simulated round time. Flows start at time
// zero in compilation order — the same order, bytes and capacities as
// a fresh simulator run, so the result is byte-identical to the
// unpooled path.
func (fs *flowSet) replay() float64 {
	if len(fs.paths) == 0 {
		return 0
	}
	sim := simPool.Get().(*netsim.Sim)
	sim.ResetUniform(fs.numLinks, model.LinkBytesPerSec)
	for i, p := range fs.paths {
		sim.StartFlow(p, fs.bytes[i], 0)
	}
	sec := sim.RunUntilIdle()
	simPool.Put(sim)
	return sec
}
