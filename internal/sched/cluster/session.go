package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"netpart/internal/scenario"
)

// ErrClosed reports an operation on a closed session.
var ErrClosed = errors.New("cluster: session is closed")

// clockTick is the wall interval at which a real-time session's
// background clock syncs the engine, so events stream out without
// API traffic driving them.
const clockTick = 100 * time.Millisecond

// SubmitJob is one wire-level job submission: a Job plus the
// client-supplied identifier that makes resubmission idempotent.
type SubmitJob struct {
	// ID identifies the job across retries: a job whose ID the session
	// has already accepted is counted as a duplicate and not submitted
	// again. Required.
	ID string `json:"id"`
	// Midplanes and RuntimeSec are the job request (tracesim JobSpec
	// semantics).
	Midplanes  int     `json:"midplanes"`
	RuntimeSec float64 `json:"runtime_sec"`
	// ArrivalSec is the requested virtual arrival. Arrivals in the
	// session's past (including the default 0) are clamped to the
	// current virtual time — a job cannot be submitted into history.
	ArrivalSec float64 `json:"arrival_sec,omitempty"`
	// Pattern and ContentionBound declare the job's contention model.
	Pattern         string `json:"pattern,omitempty"`
	ContentionBound bool   `json:"contention_bound,omitempty"`
}

// Receipt summarizes one Submit call.
type Receipt struct {
	// Accepted is the number of newly enqueued jobs; Duplicates the
	// number skipped because their ID was already accepted.
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates"`
	// Submitted is the session's lifetime accepted-job count.
	Submitted int `json:"submitted"`
	// TimeSec is the virtual clock after the submission was processed.
	TimeSec float64 `json:"time_sec"`
}

// SessionOptions tunes one session.
type SessionOptions struct {
	// OnEvent, when non-nil, receives every engine event (annotated
	// with the client job ID). Callbacks run under the session lock on
	// the goroutine that triggered the work — the submitting caller,
	// or the background clock of a real-time session — so they must
	// not call back into the session and should not block.
	OnEvent func(Event)
	// MaxJobs bounds the session's lifetime accepted-job count
	// (default DefaultMaxSessionJobs).
	MaxJobs int
}

// Session is a live simulated cluster: an Engine behind a mutex, a
// virtual clock, and idempotent client job IDs. Concurrent Submit /
// Snapshot / Close calls from many goroutines are safe; the engine's
// event loop stays sequential under the lock.
//
// The virtual clock has two modes. Free-running (TimeScale 0): the
// clock advances to the latest submitted arrival on every submission
// and to completion on Close — so a complete trace replayed through a
// session (in one batch, or chunks with non-decreasing arrivals)
// yields metrics byte-identical to tracesim.Run. Real-time-scaled
// (TimeScale > 0): TimeScale virtual seconds elapse per wall second,
// a background ticker advances the engine between calls, and arrivals
// default to "now" — the live-dashboard mode.
type Session struct {
	mu   sync.Mutex
	spec Spec
	eng  *Engine

	byID    map[string]int // client job ID → engine ID
	ids     []string       // engine ID → client job ID
	horizon float64        // latest submitted arrival (free-running advance target)
	maxJobs int

	scale float64
	epoch time.Time
	stop  chan struct{}

	closed  bool
	onEvent func(Event)
}

// Open normalizes the spec, resolves its machine and starts a session
// at virtual time zero.
func Open(spec Spec, opts SessionOptions) (*Session, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	m, err := scenario.ResolveMachine(norm.Machine)
	if err != nil {
		return nil, err
	}
	s := &Session{
		spec:    norm,
		byID:    map[string]int{},
		maxJobs: opts.MaxJobs,
		scale:   norm.TimeScale,
		epoch:   time.Now(),
		onEvent: opts.OnEvent,
	}
	if s.maxJobs <= 0 {
		s.maxJobs = DefaultMaxSessionJobs
	}
	s.eng, err = NewEngine(Config{
		Machine:  m,
		Policy:   norm.Policy,
		Backfill: norm.Backfill,
		Failures: norm.Failures,
		OnEvent: func(ev Event) {
			if ev.Job >= 0 && ev.Job < len(s.ids) {
				ev.JobID = s.ids[ev.Job]
			}
			if s.onEvent != nil {
				s.onEvent(ev)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	if s.scale > 0 {
		s.stop = make(chan struct{})
		go s.runClock()
	}
	return s, nil
}

// Spec returns the normalized session spec.
func (s *Session) Spec() Spec { return s.spec }

// runClock drives a real-time session's engine between API calls.
func (s *Session) runClock() {
	t := time.NewTicker(clockTick)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed {
				// Bounded work: every due event fires, then the clock
				// parks at the wall-derived virtual time.
				_ = s.eng.Advance(context.Background(), s.virtualNow())
			}
			s.mu.Unlock()
		}
	}
}

// virtualNow returns the wall-derived virtual time of a real-time
// session (callers hold the lock; free-running sessions never call
// it).
func (s *Session) virtualNow() float64 {
	return s.scale * time.Since(s.epoch).Seconds()
}

// Submit validates and enqueues a batch of jobs, skipping IDs the
// session has already accepted (idempotent resubmission), then
// advances the virtual clock: free-running sessions to the latest
// submitted arrival, real-time sessions to wall-derived virtual now.
// The whole batch is rejected — nothing enqueued — when any
// non-duplicate job is invalid.
func (s *Session) Submit(ctx context.Context, jobs []SubmitJob) (Receipt, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Receipt{}, ErrClosed
	}
	if s.scale > 0 {
		if err := s.eng.Advance(ctx, s.virtualNow()); err != nil {
			return Receipt{}, err
		}
	}
	now := s.eng.Now()

	var rec Receipt
	batch := make([]Job, 0, len(jobs))
	batchIDs := make([]string, 0, len(jobs))
	inBatch := map[string]bool{}
	for _, sj := range jobs {
		id := strings.TrimSpace(sj.ID)
		if id == "" {
			return Receipt{}, fmt.Errorf("cluster: every job needs a client-supplied id")
		}
		if _, dup := s.byID[id]; dup || inBatch[id] {
			rec.Duplicates++
			continue
		}
		if len(s.ids)+len(batch) >= s.maxJobs {
			return Receipt{}, fmt.Errorf("cluster: session job bound %d reached", s.maxJobs)
		}
		arrival := sj.ArrivalSec
		if math.IsNaN(arrival) || math.IsInf(arrival, 0) {
			return Receipt{}, fmt.Errorf("cluster: job %q arrival %v is not finite", id, sj.ArrivalSec)
		}
		if arrival < now {
			arrival = now
		}
		inBatch[id] = true
		batchIDs = append(batchIDs, id)
		batch = append(batch, Job{
			Midplanes:       sj.Midplanes,
			ArrivalSec:      arrival,
			RuntimeSec:      sj.RuntimeSec,
			Pattern:         sj.Pattern,
			ContentionBound: sj.ContentionBound,
		})
	}
	if len(batch) > 0 {
		// The engine emits submit events during Submit and annotates
		// them with client IDs from s.ids, so the IDs go in first; they
		// come back out if the batch is rejected.
		s.ids = append(s.ids, batchIDs...)
		base, err := s.eng.Submit(batch)
		if err != nil {
			s.ids = s.ids[:len(s.ids)-len(batchIDs)]
			return Receipt{}, err
		}
		for i, id := range batchIDs {
			s.byID[id] = base + i
		}
		for _, j := range batch {
			if j.ArrivalSec > s.horizon {
				s.horizon = j.ArrivalSec
			}
		}
		rec.Accepted = len(batch)
	}
	to := s.horizon
	if s.scale > 0 {
		to = s.virtualNow()
	}
	if err := s.eng.Advance(ctx, to); err != nil {
		return Receipt{}, err
	}
	rec.Submitted = len(s.ids)
	rec.TimeSec = s.eng.Now()
	return rec, nil
}

// Snapshot summarizes the session at its current virtual time
// (advancing a real-time session's clock to wall-derived now first).
func (s *Session) Snapshot(ctx context.Context) (Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Snapshot{}, ErrClosed
	}
	if s.scale > 0 {
		if err := s.eng.Advance(ctx, s.virtualNow()); err != nil {
			return Snapshot{}, err
		}
	}
	return s.eng.Snapshot(), nil
}

// Close drains every submitted job to completion and returns the
// final tracesim-shaped metrics (including the healthy-baseline
// deltas when the session has a failure model). The session accepts
// no further calls. A wedged schedule (permanent outage starving the
// queue head) or an expired context surfaces as an error; the session
// still closes.
func (s *Session) Close(ctx context.Context) (Metrics, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Metrics{}, ErrClosed
	}
	s.closed = true
	if s.stop != nil {
		close(s.stop)
	}
	if err := s.eng.Drain(ctx); err != nil {
		return Metrics{}, err
	}
	met := s.eng.Metrics()
	if s.spec.Failures != nil {
		hm, err := s.eng.HealthyMetrics(ctx)
		if err != nil {
			return Metrics{}, fmt.Errorf("cluster: healthy baseline: %w", err)
		}
		ApplyHealthyDeltas(&met, hm)
	}
	return met, nil
}

// Abort closes the session without draining — the idle-reap and
// hard-shutdown path. Safe to call on an already closed session.
func (s *Session) Abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.stop != nil {
		close(s.stop)
	}
}

// Closed reports whether the session has ended.
func (s *Session) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}
