package cluster

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"netpart/internal/bgq"
	"netpart/internal/lru"
	"netpart/internal/torus"
)

// TestPatternSecDegenerateGeometries: geometries whose torus has no
// links — every dimension length 1, or a single midplane — score a
// zero round time instead of constructing an empty simulation, on
// both the cached path and the oracle.
func TestPatternSecDegenerateGeometries(t *testing.T) {
	sc := newScorer(bgq.Juqueen())
	for _, geom := range []torus.Shape{{1, 1, 1, 1}, {1}} {
		for _, pattern := range []string{PatternPairing, PatternAllToAll, PatternNeighbor} {
			sec, err := sc.patternSec(geom, pattern)
			if err != nil || sec != 0 {
				t.Fatalf("cached %v/%s: sec=%v err=%v", geom, pattern, sec, err)
			}
			sec, err = patternSecOracle(geom, pattern)
			if err != nil || sec != 0 {
				t.Fatalf("oracle %v/%s: sec=%v err=%v", geom, pattern, sec, err)
			}
		}
	}
	// Length-1 dimensions are dropped, not simulated: 4x1x1x1 must
	// score exactly like its 1-dimensional squeeze.
	full, err := sc.patternSec(torus.Shape{4, 1, 1, 1}, PatternNeighbor)
	if err != nil {
		t.Fatal(err)
	}
	squeezed, err := patternSecOracle(torus.Shape{4}, PatternNeighbor)
	if err != nil {
		t.Fatal(err)
	}
	if full != squeezed {
		t.Fatalf("4x1x1x1 scored %v, squeezed 4 scored %v", full, squeezed)
	}
}

// TestPatternSecUnknownPattern: an unrecognized pattern is an error on
// every path (normalizeJob rejects it at the API boundary, but the
// scorer must not silently score it if reached another way), and the
// error is not cached as a value.
func TestPatternSecUnknownPattern(t *testing.T) {
	sc := newScorer(bgq.Juqueen())
	for i := 0; i < 2; i++ { // second call must re-fail, not hit a memo
		if _, err := sc.patternSec(torus.Shape{2, 2}, "bogus"); err == nil || !strings.Contains(err.Error(), "unknown pattern") {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
	if _, err := patternSecOracle(torus.Shape{2, 2}, "bogus"); err == nil || !strings.Contains(err.Error(), "unknown pattern") {
		t.Fatalf("oracle: err = %v", err)
	}
}

// TestMemoCountsUnderConcurrency: 16 goroutines hammering the scorer
// on a mixed key set keep the memo accounting exact — every call
// increments exactly one of hits/misses, so the counters sum to the
// call count (the invariant the observability layer rates on).
func TestMemoCountsUnderConcurrency(t *testing.T) {
	h0, m0 := MemoCounts()
	const goroutines, perG = 16, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sc := newScorer(bgq.Juqueen())
			for i := 0; i < perG; i++ {
				// Unique-ish geometries per goroutine mix first-touch
				// misses with cross-goroutine hits.
				geom := torus.Shape{2 + (g+i)%3, 1 + i%2}
				if _, err := sc.patternSec(geom, PatternPairing); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	h1, m1 := MemoCounts()
	if got, want := (h1-h0)+(m1-m0), uint64(goroutines*perG); got != want {
		t.Fatalf("hits+misses grew by %d, want %d calls", got, want)
	}
}

// TestFlowSetEvictionSameResults shrinks the flow-set cache to one
// entry so alternating geometries evict on every score, and checks
// the scores still match the oracle — eviction recompiles, never
// corrupts.
func TestFlowSetEvictionSameResults(t *testing.T) {
	saved := flowSetCache
	flowSetCache = lru.New[string, *flowSet](1)
	defer func() { flowSetCache = saved }()

	sc := newScorer(bgq.Juqueen())
	geoms := []torus.Shape{{2, 2, 2}, {4, 2}, {2, 4}, {8}}
	want := map[string]float64{}
	for _, geom := range geoms {
		sec, err := patternSecOracle(geom, PatternAllToAll)
		if err != nil {
			t.Fatal(err)
		}
		want[geom.String()] = sec
	}
	for round := 0; round < 3; round++ {
		for _, geom := range geoms {
			// Dropping the scalar memo entry forces the flow-set
			// cache (not the memo) to answer, exercising eviction.
			patternSecMemo.Delete(geom.String() + "|" + PatternAllToAll)
			sec, err := sc.patternSec(geom, PatternAllToAll)
			if err != nil {
				t.Fatal(err)
			}
			if sec != want[geom.String()] {
				t.Fatalf("round %d %v: %v, oracle %v", round, geom, sec, want[geom.String()])
			}
		}
	}
	if _, _, ev := flowSetCache.Counts(); ev == 0 {
		t.Fatal("capacity-1 cache never evicted")
	}
}

// TestOracleEngineUsesGenericPolicy: an oracle engine reports the
// same policy name and schedule as the fast engine on a small
// workload — the wrapper changes machinery, not behavior.
func TestOracleEngineUsesGenericPolicy(t *testing.T) {
	m := bgq.Juqueen()
	run := func(oracle bool) []JobOutcome {
		eng, err := NewEngine(Config{Machine: m, Policy: PolicyContentionAware, Backfill: true, Oracle: oracle})
		if err != nil {
			t.Fatal(err)
		}
		jobs := []Job{
			{Midplanes: 8, RuntimeSec: 100, Pattern: PatternPairing},
			{Midplanes: 4, RuntimeSec: 50, ArrivalSec: 5, Pattern: PatternAllToAll},
			{Midplanes: 2, RuntimeSec: 25, ArrivalSec: 10},
		}
		if _, err := eng.Submit(jobs); err != nil {
			t.Fatal(err)
		}
		if err := eng.Drain(t.Context()); err != nil {
			t.Fatal(err)
		}
		return eng.Outcomes()
	}
	fast, oracle := run(false), run(true)
	if fmt.Sprint(fast) != fmt.Sprint(oracle) {
		t.Fatalf("outcomes diverge:\nfast:   %v\noracle: %v", fast, oracle)
	}
}
