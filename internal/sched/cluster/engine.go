package cluster

import (
	"context"
	"fmt"
	"math"
	"sort"

	"netpart/internal/bgq"
	"netpart/internal/faults"
	"netpart/internal/sched"
	"netpart/internal/torus"
)

// Event is one simulator occurrence, emitted in engine-call order
// (the event loop is sequential, so callbacks are serialized). The
// tracesim Event type aliases this one, so the wire shape is shared.
type Event struct {
	// Kind is "submit" (a job entered the queue), "place" (a placement
	// was chosen for it), "contention" (the chosen placement dilates
	// the job's runtime; emitted between place and start), "start",
	// "finish", "kill" (a hard outage evicted the job mid-run; it
	// requeues), "outage" (a failure window opened) or "heal" (it
	// closed). Outage and heal events carry Job -1 and the affected
	// cell count in Midplanes. Submit events are emitted at injection
	// time with the job's arrival in TimeSec; every other kind is
	// emitted in simulation-time order.
	Kind    string  `json:"kind"`
	TimeSec float64 `json:"time_sec"`
	Job     int     `json:"job"`
	// JobID is the client-supplied job identifier (cluster sessions
	// only; empty in batch trace simulations).
	JobID string `json:"job_id,omitempty"`

	Midplanes int    `json:"midplanes"`
	Geometry  string `json:"geometry,omitempty"`
	// Dilation is the job's runtime stretch from its placed geometry.
	Dilation float64 `json:"dilation,omitempty"`
	// FreeMidplanes is the machine's free count after the event
	// (midplanes inside an open hard-outage window are not free).
	FreeMidplanes int  `json:"free_midplanes"`
	Backfilled    bool `json:"backfilled,omitempty"`
	// WaitSec is the job's queue wait at start (start events only).
	WaitSec float64 `json:"wait_sec,omitempty"`
}

// JobOutcome is one job's simulated fate.
type JobOutcome struct {
	ID         int     `json:"id"`
	Midplanes  int     `json:"midplanes"`
	ArrivalSec float64 `json:"arrival_sec"`
	StartSec   float64 `json:"start_sec"`
	EndSec     float64 `json:"end_sec"`
	WaitSec    float64 `json:"wait_sec"`
	// RuntimeSec is the actual (dilated) runtime; BaseSec the runtime
	// on the best geometry of the job's size.
	RuntimeSec float64 `json:"runtime_sec"`
	BaseSec    float64 `json:"base_sec"`
	// Dilation = RuntimeSec / BaseSec: the contention the allocation
	// geometry cost this job.
	Dilation float64 `json:"dilation"`
	// Stretch = (WaitSec + RuntimeSec) / BaseSec: the queue's total
	// slowdown of the job.
	Stretch     float64 `json:"stretch"`
	Geometry    string  `json:"geometry"`
	BisectionBW int     `json:"bisection_bw"`
	Pattern     string  `json:"pattern,omitempty"`
	Backfilled  bool    `json:"backfilled,omitempty"`
	// Restarts counts hard-outage evictions the job survived before
	// its recorded (successful) run.
	Restarts int `json:"restarts,omitempty"`
}

// Metrics are the schedule's headline numbers (the tracesim Metrics
// type aliases this one, so the golden-pinned JSON shape is shared).
type Metrics struct {
	Jobs        int     `json:"jobs"`
	Patterned   int     `json:"patterned"`
	Backfilled  int     `json:"backfilled"`
	MakespanSec float64 `json:"makespan_sec"`
	AvgWaitSec  float64 `json:"avg_wait_sec"`
	MaxWaitSec  float64 `json:"max_wait_sec"`
	AvgStretch  float64 `json:"avg_stretch"`
	MaxStretch  float64 `json:"max_stretch"`
	// ContentionX is the run-weighted mean dilation (total actual
	// runtime over total base runtime): the queue-wide contention
	// factor the policy left on the table.
	ContentionX float64 `json:"contention_x"`
	// Utilization is allocated midplane-seconds over machine
	// midplane-seconds across the makespan.
	Utilization float64 `json:"utilization"`
	// Fragmentation is the time-weighted mean fraction of midplanes
	// idle while at least one job was waiting: capacity the schedule
	// could not use because no fitting cuboid existed (or FCFS order
	// forbade it).
	Fragmentation float64 `json:"fragmentation"`
	// MidplaneSeconds is the utilization integral.
	MidplaneSeconds float64 `json:"midplane_seconds"`

	// Failure metrics (Spec.Failures; all zero on a healthy machine).
	// FailedMidplanes and DegradedMidplanes count the affected cells;
	// Kills the hard-outage evictions. The Healthy* fields are the
	// baseline run of the same workload with failures stripped, and
	// the Delta ratios failed/healthy — the robustness cost of the
	// failure under this policy.
	FailedMidplanes    int     `json:"failed_midplanes,omitempty"`
	DegradedMidplanes  int     `json:"degraded_midplanes,omitempty"`
	Kills              int     `json:"kills,omitempty"`
	HealthyMakespanSec float64 `json:"healthy_makespan_sec,omitempty"`
	HealthyAvgStretch  float64 `json:"healthy_avg_stretch,omitempty"`
	HealthyContentionX float64 `json:"healthy_contention_x,omitempty"`
	MakespanDeltaX     float64 `json:"makespan_delta_x,omitempty"`
	StretchDeltaX      float64 `json:"stretch_delta_x,omitempty"`
	ContentionDeltaX   float64 `json:"contention_delta_x,omitempty"`
}

// Snapshot is the engine's state at a point in virtual time.
type Snapshot struct {
	// TimeSec is the virtual clock.
	TimeSec float64 `json:"time_sec"`
	// Submitted counts every job ever accepted; Running, Queued and
	// Finished partition the live ones.
	Submitted int `json:"submitted"`
	Running   int `json:"running"`
	Queued    int `json:"queued"`
	Finished  int `json:"finished"`
	// Kills counts hard-outage evictions so far.
	Kills            int `json:"kills,omitempty"`
	FreeMidplanes    int `json:"free_midplanes"`
	MachineMidplanes int `json:"machine_midplanes"`
	// Stuck reports a wedged schedule: the queue head can never be
	// placed and no pending event can change that (a permanent outage
	// holds the midplanes it needs).
	Stuck bool `json:"stuck,omitempty"`
	// RunningPatterned counts running jobs with a communication
	// pattern; LiveFlows is the total routed flows of their placed
	// geometries (zero in oracle runs, which touch no flow-set cache);
	// ContentionExcessSec is the sum of (dilation−1)·base runtime over
	// running jobs — the runtime currently being lost to placement
	// contention. All three are patched in O(1) as jobs place, finish
	// and are killed, never recomputed from a sweep.
	RunningPatterned    int     `json:"running_patterned,omitempty"`
	LiveFlows           int     `json:"live_flows,omitempty"`
	ContentionExcessSec float64 `json:"contention_excess_sec,omitempty"`
	// Metrics are the headline numbers over the finished jobs so far.
	Metrics Metrics `json:"metrics"`
}

// Config wires one Engine.
type Config struct {
	// Machine is the resolved simulated host.
	Machine *bgq.Machine
	// Policy is a canonical placement-policy name (sched.PolicyByName).
	Policy string
	// Backfill enables EASY backfilling.
	Backfill bool
	// Failures is the optional normalized midplane failure model.
	Failures *faults.Spec
	// OnEvent, when non-nil, receives every event. Callbacks run on
	// the goroutine driving the engine.
	OnEvent func(Event)
	// Oracle forces the uncached reference implementation end to end:
	// placement through the generic materialize-every-candidate scan
	// instead of the fused plan cache, and contention scores from
	// fresh tori, routers and simulators instead of the memo, flow-set
	// cache and simulator pool. The differential tests hold the fast
	// path to this engine byte for byte; production runs leave it off.
	Oracle bool
}

// oraclePolicy hides the concrete policy type from the sched fused
// placement scans, forcing the generic candidates()+Choose path — the
// reference implementation the fused scans are pinned against. Name
// and Choose are promoted, so scheduling behavior is identical by
// construction; only the enumeration machinery differs.
type oraclePolicy struct{ sched.PlacementPolicy }

// Engine is the incremental trace simulator: a sched.Stepper wrapped
// with the contention scorer, per-job dilation and restart tracking,
// and outcome reduction — everything tracesim.Run does, refactored so
// jobs can be injected and the clock advanced while the simulation is
// live. Engine IDs are dense: job i is the i-th job ever submitted.
// Not safe for concurrent use; Session adds the locking.
type Engine struct {
	m         *bgq.Machine
	cfg       Config
	st        *sched.Stepper
	sc        *scorer
	jobs      []Job
	dilations []float64
	restarts  []int
	outcomes  []JobOutcome // completion order
	free      int
	patterned int
	failCells []int
	scoreErr  error

	// Live contention state (the Snapshot RunningPatterned/LiveFlows/
	// ContentionExcessSec fields), patched as jobs place, finish and
	// are killed. jobFlows records each running patterned job's routed
	// flow count so its kill or finish can subtract exactly what its
	// placement added.
	livePatterned int
	liveFlows     int
	liveExcessSec float64
	jobFlows      []int
}

// NewEngine validates the config and prepares an empty cluster at
// virtual time zero.
func NewEngine(cfg Config) (*Engine, error) {
	m := cfg.Machine
	if m == nil {
		return nil, fmt.Errorf("cluster: engine needs a machine")
	}
	if m.Midplanes() > MaxMachineMidplanes {
		return nil, fmt.Errorf("cluster: machine %s has %d midplanes, exceeding the %d bound", m.Name, m.Midplanes(), MaxMachineMidplanes)
	}
	policy, ok := sched.PolicyByName(cfg.Policy)
	if !ok {
		return nil, fmt.Errorf("cluster: unknown policy %q", cfg.Policy)
	}
	e := &Engine{m: m, cfg: cfg, sc: newScorer(m), free: m.Midplanes()}
	if cfg.Oracle {
		policy = oraclePolicy{policy}
		e.sc.oracle = true
	}

	// Failure model: resolve the affected cells once, then one sched
	// outage per window (no windows: the failure holds for the whole
	// run).
	var outages []sched.Outage
	if f := cfg.Failures; f != nil {
		cells, err := f.ResolveMidplanes(m.Grid)
		if err != nil {
			return nil, err
		}
		e.failCells = cells
		windows := f.Windows
		if len(windows) == 0 {
			windows = []faults.Window{{StartSec: 0, EndSec: math.Inf(1)}}
		}
		for _, w := range windows {
			outages = append(outages, sched.Outage{StartSec: w.StartSec, EndSec: w.EndSec, Cells: cells, Factor: f.Factor})
		}
	}

	sopts := sched.Options{
		Backfill: cfg.Backfill,
		// The Duration hook may run several times for one job (backfill
		// admission probes), but its final call for a job is always for
		// the placement actually used, so the last dilation write is
		// the one that held.
		Duration: func(j sched.Job, pl sched.Placement) float64 {
			d, err := e.sc.dilation(e.jobs[j.ID], pl)
			if err != nil && e.scoreErr == nil {
				e.scoreErr = err
				d = 1
			}
			e.dilations[j.ID] = d
			return j.BaseDurationSec * d
		},
		OnStart:  e.onStart,
		OnFinish: e.onFinish,
		Outages:  outages,
		OnOutage: e.onOutage,
		OnKill:   e.onKill,
	}
	st, err := sched.NewStepper(m, policy, sopts)
	if err != nil {
		return nil, err
	}
	e.st = st
	return e, nil
}

// Machine returns the resolved host.
func (e *Engine) Machine() *bgq.Machine { return e.m }

// Now returns the virtual clock.
func (e *Engine) Now() float64 { return e.st.Now() }

// Submitted returns the total jobs ever accepted (the next engine ID).
func (e *Engine) Submitted() int { return len(e.jobs) }

func (e *Engine) emit(ev Event) {
	if e.cfg.OnEvent != nil {
		e.cfg.OnEvent(ev)
	}
}

// flowCount returns the routed flow count of a patterned job's placed
// geometry for the live-contention accounting (0 in oracle runs,
// which must not touch the flow-set cache). Errors were already
// surfaced through the dilation score for the same pair.
func (e *Engine) flowCount(lens torus.Shape, pattern string) int {
	if e.sc.oracle {
		return 0
	}
	fs, err := flowSetFor(lens, pattern)
	if err != nil {
		return 0
	}
	return len(fs.paths)
}

// placeLive patches a starting job into the live contention state;
// dropLive reverses it when the job finishes or is killed.
func (e *Engine) placeLive(a sched.Allocation) {
	js := e.jobs[a.Job.ID]
	if js.Pattern == "" {
		return
	}
	e.livePatterned++
	n := e.flowCount(a.Placement.Lens, js.Pattern)
	e.jobFlows[a.Job.ID] = n
	e.liveFlows += n
	e.liveExcessSec += (e.dilations[a.Job.ID] - 1) * a.Job.BaseDurationSec
}

func (e *Engine) dropLive(a sched.Allocation) {
	if e.jobs[a.Job.ID].Pattern == "" {
		return
	}
	e.livePatterned--
	e.liveFlows -= e.jobFlows[a.Job.ID]
	e.jobFlows[a.Job.ID] = 0
	e.liveExcessSec -= (e.dilations[a.Job.ID] - 1) * a.Job.BaseDurationSec
}

func (e *Engine) onStart(a sched.Allocation) {
	e.free -= a.Job.Midplanes
	e.placeLive(a)
	base := Event{
		TimeSec: a.StartSec, Job: a.Job.ID,
		Midplanes: a.Job.Midplanes, Geometry: a.Placement.Lens.String(),
		Dilation:      e.dilations[a.Job.ID],
		FreeMidplanes: e.free, Backfilled: a.Backfilled,
	}
	place := base
	place.Kind = "place"
	e.emit(place)
	if base.Dilation > 1 {
		cont := base
		cont.Kind = "contention"
		e.emit(cont)
	}
	start := base
	start.Kind = "start"
	start.WaitSec = a.StartSec - e.jobs[a.Job.ID].ArrivalSec
	e.emit(start)
}

func (e *Engine) onFinish(a sched.Allocation) {
	e.free += a.Job.Midplanes
	e.dropLive(a)
	js := e.jobs[a.Job.ID]
	// Killed jobs are requeued with their arrival reset to the kill
	// time; the outcome reports against the originally submitted
	// arrival, so wait and stretch include the evicted partial run.
	out := JobOutcome{
		ID:         a.Job.ID,
		Midplanes:  a.Job.Midplanes,
		ArrivalSec: js.ArrivalSec,
		StartSec:   a.StartSec,
		EndSec:     a.EndSec,
		WaitSec:    a.StartSec - js.ArrivalSec,
		RuntimeSec: a.EndSec - a.StartSec,
		BaseSec:    a.Job.BaseDurationSec,
		Dilation:   e.dilations[a.Job.ID],
		Stretch:    (a.EndSec - js.ArrivalSec) / a.Job.BaseDurationSec,
		Geometry:   a.Placement.Lens.String(),
		Pattern:    js.Pattern,
		Backfilled: a.Backfilled,
		Restarts:   e.restarts[a.Job.ID],
	}
	out.BisectionBW = a.Placement.Partition().BisectionBW()
	e.outcomes = append(e.outcomes, out)
	e.emit(Event{
		Kind: "finish", TimeSec: a.EndSec, Job: a.Job.ID,
		Midplanes: a.Job.Midplanes, Geometry: a.Placement.Lens.String(),
		Dilation:      e.dilations[a.Job.ID],
		FreeMidplanes: e.free, Backfilled: a.Backfilled,
	})
}

func (e *Engine) onOutage(_ int, open bool, timeSec float64, gridFree int) {
	e.free = gridFree // resync: blocking/healing changes free capacity
	kind := "outage"
	if !open {
		kind = "heal"
	}
	e.emit(Event{
		Kind: kind, TimeSec: timeSec, Job: -1,
		Midplanes: len(e.failCells), FreeMidplanes: e.free,
	})
}

func (e *Engine) onKill(a sched.Allocation, timeSec float64, gridFree int) {
	e.free = gridFree
	e.dropLive(a)
	e.restarts[a.Job.ID]++
	e.emit(Event{
		Kind: "kill", TimeSec: timeSec, Job: a.Job.ID,
		Midplanes: a.Job.Midplanes, Geometry: a.Placement.Lens.String(),
		Dilation:      e.dilations[a.Job.ID],
		FreeMidplanes: e.free, Backfilled: a.Backfilled,
	})
}

// Submit validates and enqueues a batch of jobs, assigning dense
// engine IDs in submission order, and returns the ID of the first job
// in the batch. The whole batch is rejected (engine untouched) if any
// job is invalid or can never fit the machine. A submit event is
// emitted per job, carrying the job's arrival in TimeSec.
func (e *Engine) Submit(jobs []Job) (int, error) {
	base := len(e.jobs)
	norm := make([]Job, len(jobs))
	sjobs := make([]sched.Job, len(jobs))
	for i, j := range jobs {
		nj, err := normalizeJob(base+i, j)
		if err != nil {
			return 0, err
		}
		norm[i] = nj
		sjobs[i] = sched.Job{
			ID:              base + i,
			Midplanes:       nj.Midplanes,
			ArrivalSec:      nj.ArrivalSec,
			BaseDurationSec: nj.RuntimeSec,
			ContentionBound: nj.ContentionBound,
		}
	}
	// The Duration hook indexes e.jobs by ID, so grow the per-job
	// state before the stepper can start anything; shrink back if the
	// stepper rejects the batch.
	e.jobs = append(e.jobs, norm...)
	e.dilations = append(e.dilations, make([]float64, len(norm))...)
	e.restarts = append(e.restarts, make([]int, len(norm))...)
	e.jobFlows = append(e.jobFlows, make([]int, len(norm))...)
	if err := e.st.Submit(sjobs...); err != nil {
		e.jobs = e.jobs[:base]
		e.dilations = e.dilations[:base]
		e.restarts = e.restarts[:base]
		e.jobFlows = e.jobFlows[:base]
		return 0, err
	}
	for i, nj := range norm {
		if nj.Pattern != "" {
			e.patterned++
		}
		e.emit(Event{
			Kind: "submit", TimeSec: nj.ArrivalSec, Job: base + i,
			Midplanes: nj.Midplanes, FreeMidplanes: e.free,
		})
	}
	return base, nil
}

// Advance processes every event at or before `to` and moves the
// virtual clock there (when finite). Advancing in increments is
// byte-identical to one uninterrupted Drain.
func (e *Engine) Advance(ctx context.Context, to float64) error {
	return e.st.Advance(ctx, to)
}

// Step executes the next pending scheduler action and reports whether
// anything happened.
func (e *Engine) Step(ctx context.Context) (bool, error) {
	return e.st.Step(ctx)
}

// Drain runs every submitted job to completion — the batch semantics,
// including the starvation error contract and any deferred contention
// scorer error.
func (e *Engine) Drain(ctx context.Context) error {
	if err := e.st.Drain(ctx); err != nil {
		return err
	}
	return e.scoreErr
}

// Idle reports whether no queued or running work remains.
func (e *Engine) Idle() bool { return e.st.Idle() }

// Outcomes returns the finished jobs in engine-ID order (a copy).
func (e *Engine) Outcomes() []JobOutcome {
	out := append([]JobOutcome(nil), e.outcomes...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Metrics reduces the schedule so far to the tracesim-shaped headline
// numbers: complete-trace runs produce byte-identical metrics to
// tracesim.Run (minus the healthy-baseline deltas, which need a twin
// run — see HealthyMetrics). Patterned counts submitted jobs, the
// rest reduce over finished ones.
func (e *Engine) Metrics() Metrics {
	makespan, _, totalRun, midplaneSec := e.st.Totals()
	met := reduce(e.Outcomes(), e.m.Midplanes(), makespan, totalRun, midplaneSec)
	met.Patterned = e.patterned
	if f := e.cfg.Failures; f != nil {
		met.Kills = e.st.Kills()
		if f.Factor == 0 {
			met.FailedMidplanes = len(e.failCells)
		} else if f.Factor < 1 {
			met.DegradedMidplanes = len(e.failCells)
		}
	}
	return met
}

// HealthyMetrics replays every submitted job through a failure-free
// twin engine and returns its metrics — the healthy baseline of this
// workload under the same machine and policy.
func (e *Engine) HealthyMetrics(ctx context.Context) (Metrics, error) {
	cfg := e.cfg
	cfg.Failures = nil
	cfg.OnEvent = nil
	twin, err := NewEngine(cfg)
	if err != nil {
		return Metrics{}, err
	}
	if len(e.jobs) > 0 {
		if _, err := twin.Submit(e.jobs); err != nil {
			return Metrics{}, err
		}
	}
	if err := twin.Drain(ctx); err != nil {
		return Metrics{}, err
	}
	return twin.Metrics(), nil
}

// ApplyHealthyDeltas records a healthy-baseline run in the failure
// metrics fields: the Healthy* copies and the failed/healthy ratios.
func ApplyHealthyDeltas(met *Metrics, hm Metrics) {
	met.HealthyMakespanSec = hm.MakespanSec
	met.HealthyAvgStretch = hm.AvgStretch
	met.HealthyContentionX = hm.ContentionX
	if hm.MakespanSec > 0 {
		met.MakespanDeltaX = met.MakespanSec / hm.MakespanSec
	}
	if hm.AvgStretch > 0 {
		met.StretchDeltaX = met.AvgStretch / hm.AvgStretch
	}
	if hm.ContentionX > 0 {
		met.ContentionDeltaX = met.ContentionX / hm.ContentionX
	}
}

// Snapshot summarizes the engine at its current virtual time.
func (e *Engine) Snapshot() Snapshot {
	return Snapshot{
		TimeSec:          e.st.Now(),
		Submitted:        len(e.jobs),
		Running:          e.st.Active(),
		Queued:           e.st.Queued(),
		Finished:         len(e.outcomes),
		Kills:            e.st.Kills(),
		FreeMidplanes:    e.free,
		MachineMidplanes: e.m.Midplanes(),
		Stuck:            e.st.Stuck(),

		RunningPatterned:    e.livePatterned,
		LiveFlows:           e.liveFlows,
		ContentionExcessSec: e.liveExcessSec,

		Metrics: e.Metrics(),
	}
}

// reduce computes the headline metrics from the per-job outcomes.
func reduce(jobs []JobOutcome, machineMidplanes int, makespanSec, totalRunSec, midplaneSeconds float64) Metrics {
	met := Metrics{Jobs: len(jobs), MakespanSec: makespanSec, MidplaneSeconds: midplaneSeconds}
	if len(jobs) == 0 {
		return met
	}
	totalBase := 0.0
	for _, j := range jobs {
		met.AvgWaitSec += j.WaitSec
		if j.WaitSec > met.MaxWaitSec {
			met.MaxWaitSec = j.WaitSec
		}
		met.AvgStretch += j.Stretch
		if j.Stretch > met.MaxStretch {
			met.MaxStretch = j.Stretch
		}
		totalBase += j.BaseSec
		if j.Backfilled {
			met.Backfilled++
		}
	}
	met.AvgWaitSec /= float64(len(jobs))
	met.AvgStretch /= float64(len(jobs))
	if totalBase > 0 {
		met.ContentionX = totalRunSec / totalBase
	}
	if met.MakespanSec > 0 && machineMidplanes > 0 {
		met.Utilization = met.MidplaneSeconds / (float64(machineMidplanes) * met.MakespanSec)
	}
	met.Fragmentation = fragmentation(jobs, machineMidplanes)
	return met
}

// fragmentation integrates the free-midplane fraction over the
// intervals during which at least one job was waiting (arrived but
// not started), normalized by the total waiting time. It is computed
// from the completed schedule in one O(n log n) sweep: every boundary
// is an arrival, start or end, so the waiting count and occupancy are
// constant inside each interval and maintained as running counters —
// an arrival adds a waiter, a start retires one and occupies the
// job's midplanes, an end releases them. Deltas at equal times all
// apply before their interval is scored (integer sums, so the result
// does not depend on tie order).
func fragmentation(jobs []JobOutcome, machineMidplanes int) float64 {
	if machineMidplanes <= 0 || len(jobs) == 0 {
		return 0
	}
	type delta struct {
		timeSec float64
		waiting int
		busy    int
	}
	events := make([]delta, 0, 3*len(jobs))
	for _, j := range jobs {
		events = append(events,
			delta{j.ArrivalSec, 1, 0},
			delta{j.StartSec, -1, j.Midplanes},
			delta{j.EndSec, 0, -j.Midplanes})
	}
	sort.Slice(events, func(i, k int) bool { return events[i].timeSec < events[k].timeSec })
	fragSec, waitSec := 0.0, 0.0
	waiting, busy := 0, 0
	for i := 0; i < len(events); {
		t := events[i].timeSec
		for i < len(events) && events[i].timeSec == t {
			waiting += events[i].waiting
			busy += events[i].busy
			i++
		}
		if i == len(events) || waiting <= 0 {
			continue
		}
		dt := events[i].timeSec - t
		waitSec += dt
		fragSec += dt * float64(machineMidplanes-busy) / float64(machineMidplanes)
	}
	if waitSec == 0 {
		return 0
	}
	return fragSec / waitSec
}
