package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSessionConcurrentSubmitters hammers one session from many
// goroutines (run under -race in CI): unique jobs from each submitter
// interleaved with a shared batch every submitter retries, plus
// concurrent snapshot readers. Idempotency must hold exactly — the
// shared batch lands once — and the drained metrics must cover every
// unique job.
func TestSessionConcurrentSubmitters(t *testing.T) {
	sess, err := Open(Spec{Machine: "4x4x2x1", Policy: PolicyContentionAware, Backfill: true}, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const (
		submitters = 16
		perG       = 20
		shared     = 8
	)
	ctx := context.Background()
	sharedBatch := make([]SubmitJob, shared)
	for i := range sharedBatch {
		sharedBatch[i] = SubmitJob{
			ID: fmt.Sprintf("shared-%03d", i), Midplanes: 1 + i%4,
			RuntimeSec: 30 + float64(i), Pattern: PatternPairing,
		}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted, errs := 0, 0
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Sizes that place on the 4x4x2x1 grid.
				sizes := []int{1, 2, 3, 4, 6, 8, 12, 16}
				jobs := []SubmitJob{{
					ID: fmt.Sprintf("g%02d-j%03d", g, i), Midplanes: sizes[(g+i)%len(sizes)],
					RuntimeSec: 10 + float64(i), ArrivalSec: float64(i),
					ContentionBound: g%2 == 0,
				}}
				if i%5 == 0 {
					jobs = append(jobs, sharedBatch...)
				}
				rec, err := sess.Submit(ctx, jobs)
				mu.Lock()
				if err != nil {
					errs++
				} else {
					accepted += rec.Accepted
				}
				mu.Unlock()
				if i%7 == 0 {
					if _, err := sess.Snapshot(ctx); err != nil {
						t.Error(err)
					}
				}
			}
		}()
	}
	wg.Wait()

	unique := submitters*perG + shared
	if errs != 0 || accepted != unique {
		t.Fatalf("accepted %d jobs with %d errors, want %d/0", accepted, errs, unique)
	}
	snap, err := sess.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Submitted != unique {
		t.Fatalf("snapshot submitted %d, want %d", snap.Submitted, unique)
	}
	met, err := sess.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if met.Jobs != unique {
		t.Fatalf("final metrics cover %d jobs, want %d", met.Jobs, unique)
	}
	if _, err := sess.Submit(ctx, sharedBatch); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	if _, err := sess.Close(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v, want ErrClosed", err)
	}
}

// TestSessionRealTimeClock: a real-time-scaled session advances its
// virtual clock from wall time — submitted jobs finish without any
// further API traffic driving the engine.
func TestSessionRealTimeClock(t *testing.T) {
	var mu sync.Mutex
	var kinds []string
	sess, err := Open(Spec{Machine: "2x2x2x1", TimeScale: 1e5}, SessionOptions{
		OnEvent: func(ev Event) {
			mu.Lock()
			kinds = append(kinds, ev.Kind)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Abort()
	ctx := context.Background()
	rec, err := sess.Submit(ctx, []SubmitJob{
		{ID: "rt-a", Midplanes: 4, RuntimeSec: 100},
		{ID: "rt-b", Midplanes: 8, RuntimeSec: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Accepted != 2 {
		t.Fatalf("accepted %d, want 2", rec.Accepted)
	}
	// 300 virtual seconds at 1e5×: done in ~3ms of wall time; the
	// background ticker (100ms) finishes them with no Submit/Snapshot
	// call needed. Poll the event tap, not the session, to prove it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		finished := 0
		for _, k := range kinds {
			if k == "finish" {
				finished++
			}
		}
		mu.Unlock()
		if finished == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never finished; events %v", kinds)
		}
		time.Sleep(5 * time.Millisecond)
	}
	snap, err := sess.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Finished != 2 || snap.TimeSec < 300 {
		t.Fatalf("snapshot %+v, want 2 finished at/after t=300", snap)
	}
	met, err := sess.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if met.Jobs != 2 {
		t.Fatalf("metrics cover %d jobs, want 2", met.Jobs)
	}
}

// TestSessionArrivalClamp: a free-running session's clock never runs
// backwards — a job submitted with an arrival in the session's past is
// clamped to virtual now.
func TestSessionArrivalClamp(t *testing.T) {
	sess, err := Open(Spec{Machine: "2x2x2x1"}, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sess.Submit(ctx, []SubmitJob{{ID: "late", Midplanes: 1, RuntimeSec: 50, ArrivalSec: 1000}}); err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Submit(ctx, []SubmitJob{{ID: "stale", Midplanes: 1, RuntimeSec: 50, ArrivalSec: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if rec.TimeSec < 1000 {
		t.Fatalf("clock %v ran backwards past horizon 1000", rec.TimeSec)
	}
	met, err := sess.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if met.MakespanSec < 1050 {
		t.Fatalf("makespan %v, want >= 1050 (stale arrival clamped to now)", met.MakespanSec)
	}
}

// TestSessionSubmitValidation: a batch with any invalid job is
// rejected whole, and valid jobs from it can be resubmitted cleanly.
func TestSessionSubmitValidation(t *testing.T) {
	sess, err := Open(Spec{Machine: "2x2x2x1"}, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bad := []SubmitJob{
		{ID: "ok", Midplanes: 2, RuntimeSec: 60},
		{ID: "too-big", Midplanes: 1 << 20, RuntimeSec: 60},
	}
	if _, err := sess.Submit(ctx, bad); err == nil {
		t.Fatal("oversized job accepted")
	}
	if _, err := sess.Submit(ctx, []SubmitJob{{Midplanes: 1, RuntimeSec: 60}}); err == nil {
		t.Fatal("job without an id accepted")
	}
	rec, err := sess.Submit(ctx, bad[:1])
	if err != nil {
		t.Fatal(err)
	}
	if rec.Accepted != 1 || rec.Duplicates != 0 {
		t.Fatalf("receipt %+v after rejected batch, want the ok job accepted fresh", rec)
	}
	if met, err := sess.Close(ctx); err != nil || met.Jobs != 1 {
		t.Fatalf("metrics %+v err %v, want exactly the one accepted job", met, err)
	}
}
