package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"netpart/internal/bgq"
	"netpart/internal/model"
	"netpart/internal/netsim"
	"netpart/internal/route"
	"netpart/internal/scenario"
	"netpart/internal/sched"
	"netpart/internal/torus"
	"netpart/internal/workload"
)

// patternSecMemo caches pattern round times by "geometry|pattern".
// The value is machine-independent and a deterministic function of
// the key, so one process-wide cache (mirroring iso.Bisection's
// memoized cuboid search) serves every simulation, grid point,
// serving flight and cluster session without recomputing the
// flow-level netsim rounds.
var patternSecMemo sync.Map

// memoHits/memoMisses instrument the memo: the hit rate is the
// fraction of placement scores answered without a flow-level netsim
// run, sampled by the observability layer at scrape time.
var memoHits, memoMisses atomic.Uint64

// MemoCounts returns the process-wide contention-memo hit and miss
// counts since process start.
func MemoCounts() (hits, misses uint64) {
	return memoHits.Load(), memoMisses.Load()
}

// scorer computes placement-time contention dilation: the max-min
// fair round time of a job's communication pattern on its placed
// geometry, relative to the best geometry of the same size.
type scorer struct {
	m *bgq.Machine
}

func newScorer(m *bgq.Machine) *scorer {
	return &scorer{m: m}
}

// patternSec returns the flow-level simulated time of one pattern
// round on the midplane-level torus of the geometry (0 when the
// geometry has no links, i.e. a single midplane).
func (sc *scorer) patternSec(geom torus.Shape, pattern string) (float64, error) {
	key := geom.String() + "|" + pattern
	if v, ok := patternSecMemo.Load(key); ok {
		memoHits.Add(1)
		return v.(float64), nil
	}
	memoMisses.Add(1)
	// Length-1 dimensions carry no links; drop them so the torus is
	// the real communication graph of the cuboid.
	dims := make([]int, 0, len(geom))
	for _, d := range geom {
		if d > 1 {
			dims = append(dims, d)
		}
	}
	if len(dims) == 0 {
		patternSecMemo.Store(key, 0.0)
		return 0, nil
	}
	tor, err := torus.New(dims...)
	if err != nil {
		return 0, fmt.Errorf("cluster: geometry %s: %w", geom, err)
	}
	r := route.NewRouter(tor)
	var demands []route.Demand
	switch pattern {
	case PatternPairing:
		demands, err = workload.BisectionPairing(r, scenario.DefaultBytes)
	case PatternAllToAll:
		demands, err = workload.AllToAll(tor, scenario.DefaultBytes)
	case PatternNeighbor:
		demands, err = workload.NearestNeighbor(tor, scenario.DefaultBytes)
	default:
		err = fmt.Errorf("cluster: unknown pattern %q", pattern)
	}
	if err != nil {
		return 0, err
	}
	caps := make([]float64, r.NumLinks())
	for i := range caps {
		caps[i] = model.LinkBytesPerSec
	}
	sim := netsim.NewWithCapacities(caps)
	started := false
	for _, d := range demands {
		if path := r.Route(d.Src, d.Dst, nil); len(path) > 0 {
			sim.StartFlow(path, d.Bytes, 0)
			started = true
		}
	}
	var sec float64
	if started {
		sec = sim.RunUntilIdle()
	}
	patternSecMemo.Store(key, sec)
	return sec, nil
}

// dilation scores one placement: patterned jobs by the flow-level
// pattern round time relative to the best geometry of the size,
// contention-bound jobs without a pattern by the bisection-bandwidth
// ratio, everything else 1.
func (sc *scorer) dilation(j Job, pl sched.Placement) (float64, error) {
	if j.Pattern == "" {
		if !j.ContentionBound {
			return 1, nil
		}
		best, ok := sc.m.Best(j.Midplanes)
		if !ok {
			return 1, nil
		}
		return float64(best.BisectionBW()) / float64(pl.Partition().BisectionBW()), nil
	}
	best, ok := sc.m.Best(j.Midplanes)
	if !ok {
		return 1, nil
	}
	bestSec, err := sc.patternSec(best.Geometry(), j.Pattern)
	if err != nil {
		return 0, err
	}
	placedSec, err := sc.patternSec(pl.Lens, j.Pattern)
	if err != nil {
		return 0, err
	}
	if bestSec <= 0 || placedSec <= bestSec {
		// The placed geometry is no worse than the bisection-best one
		// for this pattern; base runtime already covers it.
		return 1, nil
	}
	return placedSec / bestSec, nil
}
