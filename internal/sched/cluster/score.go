package cluster

import (
	"sync"
	"sync/atomic"

	"netpart/internal/bgq"
	"netpart/internal/model"
	"netpart/internal/netsim"
	"netpart/internal/sched"
	"netpart/internal/torus"
)

// patternSecMemo caches pattern round times by "geometry|pattern".
// The value is machine-independent and a deterministic function of
// the key, so one process-wide cache (mirroring iso.Bisection's
// memoized cuboid search) serves every simulation, grid point,
// serving flight and cluster session without recomputing the
// flow-level netsim rounds.
var patternSecMemo sync.Map

// memoHits/memoMisses instrument the memo: the hit rate is the
// fraction of placement scores answered without a flow-level netsim
// run, sampled by the observability layer at scrape time.
var memoHits, memoMisses atomic.Uint64

// MemoCounts returns the process-wide contention-memo hit and miss
// counts since process start.
func MemoCounts() (hits, misses uint64) {
	return memoHits.Load(), memoMisses.Load()
}

// scorer computes placement-time contention dilation: the max-min
// fair round time of a job's communication pattern on its placed
// geometry, relative to the best geometry of the same size.
type scorer struct {
	m *bgq.Machine
	// oracle disables every cache on the scoring path — the scalar
	// memo, the flow-set cache, the simulator pool and the best-
	// partition memo — recomputing each score from scratch. It is the
	// reference implementation the differential tests hold the cached
	// path to, byte for byte.
	oracle bool
	// bestCache memoizes Machine.Best per midplane count: Best
	// re-enumerates the geometry catalog on every call, and the
	// dilation of every patterned or contention-bound job needs it.
	// The engine event loop is sequential, so a plain map suffices.
	bestCache map[int]bestEntry
}

type bestEntry struct {
	part bgq.Partition
	ok   bool
}

func newScorer(m *bgq.Machine) *scorer {
	return &scorer{m: m, bestCache: map[int]bestEntry{}}
}

// best returns the bisection-best partition of the size, memoized per
// scorer (except in oracle mode).
func (sc *scorer) best(midplanes int) (bgq.Partition, bool) {
	if sc.oracle {
		return sc.m.Best(midplanes)
	}
	if e, ok := sc.bestCache[midplanes]; ok {
		return e.part, e.ok
	}
	part, ok := sc.m.Best(midplanes)
	sc.bestCache[midplanes] = bestEntry{part, ok}
	return part, ok
}

// patternSec returns the flow-level simulated time of one pattern
// round on the midplane-level torus of the geometry (0 when the
// geometry has no links, i.e. a single midplane). Misses of the
// scalar memo compile (or fetch) the routed flow set and replay it
// into a pooled simulator.
func (sc *scorer) patternSec(geom torus.Shape, pattern string) (float64, error) {
	if sc.oracle {
		return patternSecOracle(geom, pattern)
	}
	key := geom.String() + "|" + pattern
	if v, ok := patternSecMemo.Load(key); ok {
		memoHits.Add(1)
		return v.(float64), nil
	}
	memoMisses.Add(1)
	fs, err := flowSetFor(geom, pattern)
	if err != nil {
		return 0, err
	}
	sec := fs.replay()
	patternSecMemo.Store(key, sec)
	return sec, nil
}

// patternSecOracle is the uncached reference: a fresh torus, router,
// demand list and simulator per call, touching no process-wide state.
func patternSecOracle(geom torus.Shape, pattern string) (float64, error) {
	fs, err := buildFlowSet(geom, pattern)
	if err != nil {
		return 0, err
	}
	if len(fs.paths) == 0 {
		return 0, nil
	}
	caps := make([]float64, fs.numLinks)
	for i := range caps {
		caps[i] = model.LinkBytesPerSec
	}
	sim := netsim.NewWithCapacities(caps)
	for i, p := range fs.paths {
		sim.StartFlow(p, fs.bytes[i], 0)
	}
	return sim.RunUntilIdle(), nil
}

// dilation scores one placement: patterned jobs by the flow-level
// pattern round time relative to the best geometry of the size,
// contention-bound jobs without a pattern by the bisection-bandwidth
// ratio, everything else 1.
func (sc *scorer) dilation(j Job, pl sched.Placement) (float64, error) {
	if j.Pattern == "" {
		if !j.ContentionBound {
			return 1, nil
		}
		best, ok := sc.best(j.Midplanes)
		if !ok {
			return 1, nil
		}
		return float64(best.BisectionBW()) / float64(pl.Partition().BisectionBW()), nil
	}
	best, ok := sc.best(j.Midplanes)
	if !ok {
		return 1, nil
	}
	bestSec, err := sc.patternSec(best.Geometry(), j.Pattern)
	if err != nil {
		return 0, err
	}
	placedSec, err := sc.patternSec(pl.Lens, j.Pattern)
	if err != nil {
		return 0, err
	}
	if bestSec <= 0 || placedSec <= bestSec {
		// The placed geometry is no worse than the bisection-best one
		// for this pattern; base runtime already covers it.
		return 1, nil
	}
	return placedSec / bestSec, nil
}
