// Package cluster is the incremental form of the trace-driven
// scheduling simulator: a long-running simulated cluster that accepts
// an open-ended stream of job submissions instead of a complete trace
// up front. The Engine factors tracesim's discrete-event loop (via
// sched.Stepper) into Submit / Advance / Step / Snapshot primitives
// with an event tap, keeping the placement-time contention scoring
// and runtime dilation of the batch simulator — tracesim.Run is
// rebuilt on this engine, byte-identical to its former self. Session
// adds the live-service layer: serialized concurrent access,
// idempotent client job IDs, a per-session virtual clock (free-running
// or real-time-scaled) and a final tracesim-shaped Metrics summary on
// close, which the serving layer exposes as POST /v1/cluster session
// resources.
package cluster

import (
	"fmt"
	"math"
	"strings"

	"netpart/internal/faults"
	"netpart/internal/scenario"
	"netpart/internal/sched"
)

// Placement policies and communication patterns share their spellings
// with the scenario and tracesim layers.
const (
	PolicyFirstFit        = scenario.PolicyFirstFit
	PolicyBestBisection   = scenario.PolicyBestBisection
	PolicyContentionAware = scenario.PolicyContentionAware

	PatternPairing  = scenario.PatternPairing
	PatternAllToAll = scenario.PatternAllToAll
	PatternNeighbor = scenario.PatternNeighbor
)

// Bounds and defaults.
const (
	// MaxMachineMidplanes bounds the simulated machine (the tracesim
	// bound).
	MaxMachineMidplanes = 4096
	// MaxAllToAllMidplanes bounds jobs declaring the quadratic
	// all-to-all pattern.
	MaxAllToAllMidplanes = 128
	// DefaultMaxSessionJobs bounds the total jobs one session accepts
	// over its lifetime (sessions are open-ended, so the bound is per
	// session, not per submission).
	DefaultMaxSessionJobs = 65536
	// MaxTimeScale bounds a real-time session's virtual seconds per
	// wall second.
	MaxTimeScale = 1e6
)

// Spec declares one cluster session: the simulated machine, the
// placement policy, optional EASY backfill, an optional failure model
// and the virtual clock mode. Unlike a tracesim Spec it carries no
// jobs — those stream in over the session's lifetime.
type Spec struct {
	// Name is an optional human label, reported in titles.
	Name string `json:"name,omitempty"`
	// Machine is the simulated host: a catalog name or a midplane grid
	// shape (the scenario machine references).
	Machine string `json:"machine"`
	// Policy is the placement policy (default first-fit).
	Policy string `json:"policy,omitempty"`
	// Backfill enables EASY backfilling.
	Backfill bool `json:"backfill,omitempty"`
	// Failures is the optional midplane failure model, with the same
	// semantics as tracesim: factor-0 windows kill and requeue
	// overlapping jobs, fractional factors dilate them; no windows
	// means the failure holds forever.
	Failures *faults.Spec `json:"failures,omitempty"`
	// TimeScale selects the virtual clock. 0 (the default) is a
	// free-running clock: the simulation advances to the latest
	// submitted arrival on every submission and drains to completion
	// on close, so replaying a complete trace reproduces the batch
	// simulator exactly. A positive value ties virtual time to wall
	// time — TimeScale virtual seconds elapse per wall second — so
	// events stream out live.
	TimeScale float64 `json:"time_scale,omitempty"`
}

// Job is one engine-level job: the tracesim JobSpec shape, identified
// by its dense engine ID (assigned at Submit in submission order).
type Job struct {
	Midplanes  int     `json:"midplanes"`
	ArrivalSec float64 `json:"arrival_sec"`
	RuntimeSec float64 `json:"runtime_sec"`
	// Pattern declares the job's communication pattern (pairing,
	// all-to-all or neighbor); patterned jobs are contention-scored on
	// their placed geometry.
	Pattern string `json:"pattern,omitempty"`
	// ContentionBound applies the bisection-ratio stretch to jobs
	// without a declared pattern. It is implied for patterned jobs.
	ContentionBound bool `json:"contention_bound,omitempty"`
}

func knownPattern(p string) bool {
	switch p {
	case PatternPairing, PatternAllToAll, PatternNeighbor:
		return true
	}
	return false
}

func finitePositive(v float64) bool {
	return v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v)
}

// normalizeJob validates one job and folds the patterned →
// contention-bound implication (the tracesim rules).
func normalizeJob(i int, j Job) (Job, error) {
	if j.Midplanes < 1 {
		return Job{}, fmt.Errorf("cluster: job %d requests %d midplanes, want >= 1", i, j.Midplanes)
	}
	if !finitePositive(j.RuntimeSec) {
		return Job{}, fmt.Errorf("cluster: job %d runtime %v is not positive and finite", i, j.RuntimeSec)
	}
	if j.ArrivalSec < 0 || math.IsInf(j.ArrivalSec, 0) || math.IsNaN(j.ArrivalSec) {
		return Job{}, fmt.Errorf("cluster: job %d arrival %v is not non-negative and finite", i, j.ArrivalSec)
	}
	j.Pattern = strings.ToLower(strings.TrimSpace(j.Pattern))
	if j.Pattern != "" {
		if !knownPattern(j.Pattern) {
			return Job{}, fmt.Errorf("cluster: job %d pattern %q (want pairing, all-to-all or neighbor)", i, j.Pattern)
		}
		if j.Pattern == PatternAllToAll && j.Midplanes > MaxAllToAllMidplanes {
			return Job{}, fmt.Errorf("cluster: job %d declares all-to-all on %d midplanes, exceeding the %d-midplane bound", i, j.Midplanes, MaxAllToAllMidplanes)
		}
		j.ContentionBound = true
	}
	return j, nil
}

// Normalize validates the spec and returns its canonical form
// (machine and policy spellings canonicalized, failure model
// normalized) — the tracesim Spec rules, minus the job source.
func (s Spec) Normalize() (Spec, error) {
	n := Spec{Name: strings.TrimSpace(s.Name), Backfill: s.Backfill}
	if strings.TrimSpace(s.Machine) == "" {
		return Spec{}, fmt.Errorf("cluster: session needs a machine (catalog name or midplane grid shape)")
	}
	machine, err := scenario.CanonicalMachine(s.Machine)
	if err != nil {
		return Spec{}, err
	}
	n.Machine = machine
	n.Policy = strings.ToLower(strings.TrimSpace(s.Policy))
	if n.Policy == "" {
		n.Policy = PolicyFirstFit
	}
	if _, ok := sched.PolicyByName(n.Policy); !ok {
		return Spec{}, fmt.Errorf("cluster: unknown policy %q (want first-fit, best-bisection or contention-aware)", s.Policy)
	}
	if s.TimeScale != 0 {
		if math.IsNaN(s.TimeScale) || s.TimeScale < 0 || s.TimeScale > MaxTimeScale {
			return Spec{}, fmt.Errorf("cluster: time scale %v out of range [0, %v]", s.TimeScale, float64(MaxTimeScale))
		}
		n.TimeScale = s.TimeScale
	}
	if s.Failures != nil {
		f, err := s.Failures.Normalize()
		if err != nil {
			return Spec{}, err
		}
		if !f.MidplaneScoped() && f.Model != faults.ModelCorrelatedRegion {
			return Spec{}, fmt.Errorf("cluster: failure model %q: cluster sessions model failures at midplane granularity (want midplanes, random_midplanes or correlated_region)", f.Model)
		}
		if f.Model == faults.ModelMidplanes {
			m, err := scenario.ResolveMachine(n.Machine)
			if err != nil {
				return Spec{}, err
			}
			for _, id := range f.Midplanes {
				if id >= m.Midplanes() {
					return Spec{}, fmt.Errorf("cluster: failed midplane %d out of range [0, %d) on %s", id, m.Midplanes(), n.Machine)
				}
			}
		}
		n.Failures = &f
	}
	return n, nil
}

// Title returns the human label for reports and event streams.
func (s Spec) Title() string {
	if s.Name != "" {
		return s.Name
	}
	title := fmt.Sprintf("cluster %s · %s", s.Machine, s.Policy)
	if s.Backfill {
		title += " · backfill"
	}
	if s.Failures != nil {
		title += " · " + s.Failures.Model
	}
	return title
}
