package mapping

import (
	"testing"

	"netpart/internal/bgq"
	"netpart/internal/route"
	"netpart/internal/torus"
	"netpart/internal/workload"
)

// demandsOrFatal returns an unwrapper for generator results the test
// expects to succeed.
func demandsOrFatal(tb testing.TB) func(d []route.Demand, err error) []route.Demand {
	return func(d []route.Demand, err error) []route.Demand {
		if err != nil {
			tb.Helper()
			tb.Fatal(err)
		}
		return d
	}
}

func TestAppGraphBasics(t *testing.T) {
	g := NewAppGraph(4)
	g.Add(0, 1, 100)
	g.Add(0, 1, 50)
	g.Add(2, 2, 10) // self traffic ignored
	g.Add(1, 0, 25)
	if g.TotalBytes() != 175 {
		t.Errorf("total = %v", g.TotalBytes())
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range rank should panic")
		}
	}()
	g.Add(0, 9, 1)
}

func TestRingPattern(t *testing.T) {
	g := Ring(5, 10)
	if len(g.Volumes) != 5 || g.TotalBytes() != 50 {
		t.Errorf("ring: %d pairs, %v bytes", len(g.Volumes), g.TotalBytes())
	}
}

func TestHalo3DPattern(t *testing.T) {
	g := Halo3D(2, 2, 2, 1)
	// Each of the 8 ranks has 6 neighbour sends, but on a 2-wide grid
	// the +1 and -1 neighbours coincide, merging volumes: 3 distinct
	// targets per rank.
	if len(g.Volumes) != 8*3 {
		t.Errorf("halo pairs = %d, want 24", len(g.Volumes))
	}
	if g.TotalBytes() != 48 {
		t.Errorf("halo volume = %v, want 48", g.TotalBytes())
	}
}

func TestTransposePattern(t *testing.T) {
	g := Transpose(3, 2)
	if len(g.Volumes) != 6 || g.TotalBytes() != 12 {
		t.Errorf("transpose: %d pairs, %v bytes", len(g.Volumes), g.TotalBytes())
	}
}

func TestMappersProduceValidAssignments(t *testing.T) {
	tor := torus.MustNew(4, 4, 2)
	app := Halo3D(2, 2, 2, 100)
	for _, m := range []Mapper{Linear{}, Random{Seed: 1}, Greedy{}} {
		asg, err := m.Map(app, tor)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if _, err := Evaluate(m.Name(), app, tor, asg); err != nil {
			t.Errorf("%s: invalid assignment: %v", m.Name(), err)
		}
	}
	// Too many ranks.
	big := Ring(100, 1)
	for _, m := range []Mapper{Linear{}, Random{}, Greedy{}} {
		if _, err := m.Map(big, tor); err == nil {
			t.Errorf("%s: oversubscription should fail", m.Name())
		}
	}
}

func TestGreedyBeatsRandomOnHalo(t *testing.T) {
	tor := torus.MustNew(4, 4, 4)
	app := Halo3D(4, 4, 4, 100)
	qs, err := Compare(app, tor, Greedy{}, Random{Seed: 7}, Linear{})
	if err != nil {
		t.Fatal(err)
	}
	greedy, random := qs[0], qs[1]
	if greedy.HopBytes >= random.HopBytes {
		t.Errorf("greedy hop-bytes %v should beat random %v", greedy.HopBytes, random.HopBytes)
	}
	if greedy.AvgHops >= random.AvgHops {
		t.Errorf("greedy avg hops %v should beat random %v", greedy.AvgHops, random.AvgHops)
	}
}

func TestLinearIsOptimalForMatchedHalo(t *testing.T) {
	// When the app grid matches the torus exactly, the linear mapping
	// is contention-free: every message is one hop.
	tor := torus.MustNew(4, 4, 2)
	app := Halo3D(4, 4, 2, 100)
	asg, err := Linear{}.Map(app, tor)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Evaluate("linear", app, tor, asg)
	if err != nil {
		t.Fatal(err)
	}
	if q.AvgHops != 1 {
		t.Errorf("matched halo avg hops = %v, want 1", q.AvgHops)
	}
}

func TestEvaluateRejectsBadAssignments(t *testing.T) {
	tor := torus.MustNew(4, 2)
	app := Ring(4, 1)
	if _, err := Evaluate("x", app, tor, []int{0, 1}); err == nil {
		t.Error("short assignment should fail")
	}
	if _, err := Evaluate("x", app, tor, []int{0, 1, 1, 2}); err == nil {
		t.Error("duplicate node should fail")
	}
	if _, err := Evaluate("x", app, tor, []int{0, 1, 2, 99}); err == nil {
		t.Error("out-of-range node should fail")
	}
}

// TestMappingCannotBeatGeometry quantifies the paper's framing: for
// the bisection-saturating pairing workload, even an idealized mapping
// on the worst 4-midplane geometry cannot reach the performance a
// trivial mapping gets on the proposed geometry.
func TestMappingCannotBeatGeometry(t *testing.T) {
	worst := bgq.MustPartition(4, 1, 1, 1)
	best := bgq.MustPartition(2, 2, 1, 1)
	torWorst := torus.MustNew(worst.NodeShape()...)
	torBest := torus.MustNew(best.NodeShape()...)

	// The pairing workload as an app graph: every node exchanges with
	// one partner; the partner sets are what the benchmark fixes, so a
	// mapper may only relabel which node hosts which rank — i.e. it can
	// pick ANY perfect matching. The most mapping-friendly view is the
	// one where the matching itself is free; then the best any mapping
	// can do is bounded below by the bisection: half the ranks must
	// talk across it when the workload demands distance (here we take
	// the furthest-node matching as given, per the benchmark).
	rWorst := route.NewRouter(torWorst)
	demandsWorst := demandsOrFatal(t)(workload.BisectionPairing(rWorst, 1))
	appWorst := NewAppGraph(torWorst.NumVertices())
	for _, d := range demandsWorst {
		appWorst.Add(d.Src, d.Dst, d.Bytes)
	}
	qs, err := Compare(appWorst, torWorst, Linear{}, Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	bestOnWorst := qs[0].BottleneckBytes
	for _, q := range qs {
		if q.BottleneckBytes < bestOnWorst {
			bestOnWorst = q.BottleneckBytes
		}
	}

	rBest := route.NewRouter(torBest)
	demandsBest := demandsOrFatal(t)(workload.BisectionPairing(rBest, 1))
	appBest := NewAppGraph(torBest.NumVertices())
	for _, d := range demandsBest {
		appBest.Add(d.Src, d.Dst, d.Bytes)
	}
	asg, err := Linear{}.Map(appBest, torBest)
	if err != nil {
		t.Fatal(err)
	}
	qBest, err := Evaluate("linear", appBest, torBest, asg)
	if err != nil {
		t.Fatal(err)
	}
	if bestOnWorst <= qBest.BottleneckBytes {
		t.Errorf("mapping on the bad geometry (bottleneck %v) should not beat the good geometry (%v)",
			bestOnWorst, qBest.BottleneckBytes)
	}
}

func BenchmarkGreedyMapping(b *testing.B) {
	tor := torus.MustNew(4, 4, 4)
	app := Halo3D(4, 4, 4, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Greedy{}).Map(app, tor); err != nil {
			b.Fatal(err)
		}
	}
}
