// Package mapping implements topology-aware task mapping — the
// orthogonal contention-mitigation technique the paper's introduction
// contrasts with partition-geometry optimization (cf. Bhatele et al.
// [10]). Given an application communication pattern (ranks and the
// byte volumes they exchange) and a partition's torus, a Mapper
// assigns ranks to nodes; the quality of a mapping is evaluated with
// the same machinery as the rest of the repository: hop-bytes and
// bottleneck link load under dimension-ordered routing.
//
// The package exists to make the paper's point quantitative: mapping
// reshuffles *which* traffic crosses the bisection, but the bisection
// itself is fixed by the partition geometry — for bisection-saturating
// workloads the best mapping on a bad geometry still loses to a
// trivial mapping on a good one (TestMappingCannotBeatGeometry).
package mapping

import (
	"fmt"
	"math/rand"
	"sort"

	"netpart/internal/route"
	"netpart/internal/torus"
)

// AppGraph is an application communication pattern: Volumes[i][j]
// bytes flow from rank i to rank j over the run.
type AppGraph struct {
	Ranks   int
	Volumes map[[2]int]float64
}

// NewAppGraph creates an empty pattern.
func NewAppGraph(ranks int) *AppGraph {
	return &AppGraph{Ranks: ranks, Volumes: make(map[[2]int]float64)}
}

// Add accumulates traffic from rank a to rank b.
func (g *AppGraph) Add(a, b int, bytes float64) {
	if a < 0 || a >= g.Ranks || b < 0 || b >= g.Ranks {
		panic(fmt.Sprintf("mapping: rank pair (%d,%d) out of range", a, b))
	}
	if a == b || bytes <= 0 {
		return
	}
	g.Volumes[[2]int{a, b}] += bytes
}

// TotalBytes returns the pattern volume.
func (g *AppGraph) TotalBytes() float64 {
	t := 0.0
	for _, v := range g.Volumes {
		t += v
	}
	return t
}

// Ring builds the ring pattern: rank i sends bytes to rank (i+1) mod n.
func Ring(ranks int, bytes float64) *AppGraph {
	g := NewAppGraph(ranks)
	for i := 0; i < ranks; i++ {
		g.Add(i, (i+1)%ranks, bytes)
	}
	return g
}

// Halo3D builds a 3D nearest-neighbour stencil pattern over a
// rx x ry x rz rank grid.
func Halo3D(rx, ry, rz int, bytes float64) *AppGraph {
	g := NewAppGraph(rx * ry * rz)
	idx := func(x, y, z int) int {
		return (x*ry+y)*rz + z
	}
	for x := 0; x < rx; x++ {
		for y := 0; y < ry; y++ {
			for z := 0; z < rz; z++ {
				me := idx(x, y, z)
				g.Add(me, idx((x+1)%rx, y, z), bytes)
				g.Add(me, idx((x-1+rx)%rx, y, z), bytes)
				g.Add(me, idx(x, (y+1)%ry, z), bytes)
				g.Add(me, idx(x, (y-1+ry)%ry, z), bytes)
				g.Add(me, idx(x, y, (z+1)%rz), bytes)
				g.Add(me, idx(x, y, (z-1+rz)%rz), bytes)
			}
		}
	}
	return g
}

// Transpose builds the all-pairs transpose pattern of a 2D FFT-like
// phase over a square rank grid: rank (i,j) sends to rank (j,i).
func Transpose(side int, bytes float64) *AppGraph {
	g := NewAppGraph(side * side)
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			if i != j {
				g.Add(i*side+j, j*side+i, bytes)
			}
		}
	}
	return g
}

// Mapper assigns application ranks to torus nodes (injectively).
type Mapper interface {
	// Name identifies the mapper in reports.
	Name() string
	// Map returns a rank->node assignment for the torus; len(result)
	// equals the app's rank count and entries are distinct nodes.
	Map(app *AppGraph, tor *torus.Torus) ([]int, error)
}

// Linear assigns rank i to node i — the default MPI rank order.
type Linear struct{}

// Name implements Mapper.
func (Linear) Name() string { return "linear" }

// Map implements Mapper.
func (Linear) Map(app *AppGraph, tor *torus.Torus) ([]int, error) {
	if app.Ranks > tor.NumVertices() {
		return nil, fmt.Errorf("mapping: %d ranks exceed %d nodes", app.Ranks, tor.NumVertices())
	}
	m := make([]int, app.Ranks)
	for i := range m {
		m[i] = i
	}
	return m, nil
}

// Random shuffles ranks over nodes with a fixed seed (a destructive
// baseline: it maximizes average hop distance).
type Random struct{ Seed int64 }

// Name implements Mapper.
func (r Random) Name() string { return "random" }

// Map implements Mapper.
func (r Random) Map(app *AppGraph, tor *torus.Torus) ([]int, error) {
	if app.Ranks > tor.NumVertices() {
		return nil, fmt.Errorf("mapping: %d ranks exceed %d nodes", app.Ranks, tor.NumVertices())
	}
	rng := rand.New(rand.NewSource(r.Seed))
	perm := rng.Perm(tor.NumVertices())
	return perm[:app.Ranks], nil
}

// Greedy places heavy-traffic rank pairs close together: ranks are
// processed in order of total traffic; each is placed on the free node
// minimizing hop-bytes to its already-placed peers (a standard greedy
// task-mapping heuristic).
type Greedy struct{}

// Name implements Mapper.
func (Greedy) Name() string { return "greedy" }

// Map implements Mapper.
func (Greedy) Map(app *AppGraph, tor *torus.Torus) ([]int, error) {
	n := tor.NumVertices()
	if app.Ranks > n {
		return nil, fmt.Errorf("mapping: %d ranks exceed %d nodes", app.Ranks, n)
	}
	r := route.NewRouter(tor)

	// Order ranks by total traffic, heaviest first.
	weight := make([]float64, app.Ranks)
	for pair, v := range app.Volumes {
		weight[pair[0]] += v
		weight[pair[1]] += v
	}
	order := make([]int, app.Ranks)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return weight[order[a]] > weight[order[b]] })

	// Adjacency for placed-peer lookups.
	adj := make([]map[int]float64, app.Ranks)
	for i := range adj {
		adj[i] = make(map[int]float64)
	}
	for pair, v := range app.Volumes {
		adj[pair[0]][pair[1]] += v
		adj[pair[1]][pair[0]] += v
	}

	assignment := make([]int, app.Ranks)
	for i := range assignment {
		assignment[i] = -1
	}
	usedNode := make([]bool, n)
	for _, rank := range order {
		bestNode, bestCost := -1, 0.0
		for node := 0; node < n; node++ {
			if usedNode[node] {
				continue
			}
			cost := 0.0
			for peer, v := range adj[rank] {
				if pn := assignment[peer]; pn >= 0 {
					cost += v * float64(r.HopCount(node, pn))
				}
			}
			if bestNode < 0 || cost < bestCost {
				bestNode, bestCost = node, cost
			}
		}
		assignment[rank] = bestNode
		usedNode[bestNode] = true
	}
	return assignment, nil
}

// Quality summarizes a mapping's network footprint.
type Quality struct {
	Mapper string
	// HopBytes is the sum over messages of bytes times hop count.
	HopBytes float64
	// BottleneckBytes is the load of the most loaded directed link
	// under DOR routing — the static completion-time driver.
	BottleneckBytes float64
	// AvgHops is traffic-weighted mean hop distance.
	AvgHops float64
}

// Evaluate computes the quality of a mapping on a torus.
func Evaluate(name string, app *AppGraph, tor *torus.Torus, assignment []int) (Quality, error) {
	if len(assignment) != app.Ranks {
		return Quality{}, fmt.Errorf("mapping: assignment covers %d of %d ranks", len(assignment), app.Ranks)
	}
	seen := make(map[int]bool, len(assignment))
	for _, node := range assignment {
		if node < 0 || node >= tor.NumVertices() {
			return Quality{}, fmt.Errorf("mapping: node %d out of range", node)
		}
		if seen[node] {
			return Quality{}, fmt.Errorf("mapping: node %d assigned twice", node)
		}
		seen[node] = true
	}
	r := route.NewRouter(tor)
	demands := make([]route.Demand, 0, len(app.Volumes))
	hopBytes := 0.0
	for pair, v := range app.Volumes {
		src, dst := assignment[pair[0]], assignment[pair[1]]
		demands = append(demands, route.Demand{Src: src, Dst: dst, Bytes: v})
		hopBytes += v * float64(r.HopCount(src, dst))
	}
	maxLoad, _ := route.MaxLoad(r.LoadMap(demands))
	q := Quality{Mapper: name, HopBytes: hopBytes, BottleneckBytes: maxLoad}
	if total := app.TotalBytes(); total > 0 {
		q.AvgHops = hopBytes / total
	}
	return q, nil
}

// Compare maps the app with each mapper and returns the qualities in
// mapper order.
func Compare(app *AppGraph, tor *torus.Torus, mappers ...Mapper) ([]Quality, error) {
	out := make([]Quality, 0, len(mappers))
	for _, m := range mappers {
		asg, err := m.Map(app, tor)
		if err != nil {
			return nil, err
		}
		q, err := Evaluate(m.Name(), app, tor, asg)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}
