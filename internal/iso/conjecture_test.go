package iso_test

import (
	"testing"

	"netpart/internal/iso"
	"netpart/internal/topo"
	"netpart/internal/torus"
)

// TestConjectureOnSmallTori scans a family of small tori for
// counterexamples to the paper's open conjecture. None should exist;
// sizes where no cuboid has the right volume are reported but are not
// counterexamples (the conjecture concerns the bound, and the bound
// must still hold).
func TestConjectureOnSmallTori(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration")
	}
	families := []torus.Shape{
		{3, 3}, {4, 3}, {4, 4}, {5, 3}, {5, 4}, {6, 3}, {3, 3, 2}, {4, 2, 2},
	}
	for _, dims := range families {
		g := topo.FromTorus(torus.MustNew(dims...))
		reports, err := iso.VerifyConjecture(dims, g)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if len(reports) != dims.Volume()/2 {
			t.Errorf("%v: %d reports", dims, len(reports))
		}
		for _, r := range reports {
			if r.BoundValid && r.GlobalBest < r.Bound-1e-6 {
				t.Errorf("%v t=%d: BOUND VIOLATION (conjecture counterexample): global %v < bound %v",
					dims, r.T, r.GlobalBest, r.Bound)
			}
			// At attainable sizes the best cuboid achieves the bound,
			// so it must be globally optimal.
			if r.Attainable && r.CuboidBest >= 0 && !r.CuboidOptimal {
				t.Errorf("%v t=%d: attaining cuboid %d beaten by a subset at %v",
					dims, r.T, r.CuboidBest, r.GlobalBest)
			}
			// At other sizes non-cuboid subsets may win; record it.
			if !r.Attainable && r.CuboidBest >= 0 && !r.CuboidOptimal {
				t.Logf("%v t=%d: non-cuboid optimum %v beats best cuboid %d (bound %v holds)",
					dims, r.T, r.GlobalBest, r.CuboidBest, r.Bound)
			}
		}
	}
}

func TestVerifyConjectureErrors(t *testing.T) {
	if _, err := iso.VerifyConjecture(torus.Shape{0}, nil); err == nil {
		t.Error("invalid dims should fail")
	}
	if _, err := iso.VerifyConjecture(torus.Shape{4, 4}, nil); err == nil {
		t.Error("nil oracle should fail")
	}
	g := topo.FromTorus(torus.MustNew(3, 3))
	if _, err := iso.VerifyConjecture(torus.Shape{4, 4}, g); err == nil {
		t.Error("oracle size mismatch should fail")
	}
}
