package iso_test

import (
	"math"
	"testing"

	"netpart/internal/iso"
	"netpart/internal/topo"
	"netpart/internal/torus"
)

func TestLindseyMatchesBruteForce(t *testing.T) {
	products := []torus.Shape{
		{3, 2}, {4, 2}, {4, 3}, {3, 3}, {5, 3}, {2, 2, 2}, {4, 2, 2}, {3, 3, 2}, {16, 1},
	}
	for _, dims := range products {
		g, err := topo.CliqueProduct(dims)
		if err != nil {
			t.Fatal(err)
		}
		vol := dims.Volume()
		for tt := 0; tt <= vol/2; tt++ {
			want := 0.0
			if tt > 0 {
				w, _, err := g.MinPerimeter(tt)
				if err != nil {
					t.Fatal(err)
				}
				want = w
			}
			got, err := iso.LindseyPerimeter(dims, tt)
			if err != nil {
				t.Fatal(err)
			}
			if float64(got) != want {
				t.Errorf("K%v t=%d: Lindsey %d, brute force %v", dims, tt, got, want)
			}
		}
	}
}

func TestLindseyOrderingMatters(t *testing.T) {
	// Filling the largest clique first is the optimum. For K3 x K2 at
	// t=3 the descending-size order fills a K3 copy (cut 3); the
	// ascending order yields a K2 copy plus one vertex (cut 5).
	desc, err := iso.CliqueSegmentPerimeter(torus.Shape{2, 3}, 3) // outermost=K2 => K3 fastest
	if err != nil {
		t.Fatal(err)
	}
	asc, err := iso.CliqueSegmentPerimeter(torus.Shape{3, 2}, 3) // K2 fastest
	if err != nil {
		t.Fatal(err)
	}
	if desc != 3 || asc != 5 {
		t.Errorf("segment cuts: descending-size %d (want 3), ascending %d (want 5)", desc, asc)
	}
	lp, err := iso.LindseyPerimeter(torus.Shape{3, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lp != 3 {
		t.Errorf("LindseyPerimeter = %d, want 3", lp)
	}
}

func TestLindseyEdgeCases(t *testing.T) {
	if v, err := iso.LindseyPerimeter(torus.Shape{4, 3}, 0); err != nil || v != 0 {
		t.Errorf("t=0: %d, %v", v, err)
	}
	if v, err := iso.LindseyPerimeter(torus.Shape{4, 3}, 12); err != nil || v != 0 {
		t.Errorf("t=|V|: %d, %v", v, err)
	}
	if _, err := iso.LindseyPerimeter(torus.Shape{4, 3}, 13); err == nil {
		t.Error("t > |V| should fail")
	}
	if _, err := iso.LindseyPerimeter(torus.Shape{0, 3}, 1); err == nil {
		t.Error("invalid dims should fail")
	}
	// Single clique: K5, t=2: cut = 2*3 = 6.
	if v, _ := iso.LindseyPerimeter(torus.Shape{5}, 2); v != 6 {
		t.Errorf("K5 t=2 = %d, want 6", v)
	}
}

func TestHyperXBisectionMatchesBruteForce(t *testing.T) {
	products := []torus.Shape{{4, 2}, {3, 3}, {4, 3}, {4, 4}, {2, 2, 2}, {3, 2, 2}}
	for _, dims := range products {
		g, err := topo.CliqueProduct(dims)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := g.Bisection()
		if err != nil {
			t.Fatal(err)
		}
		got, err := iso.HyperXBisection(dims)
		if err != nil {
			t.Fatal(err)
		}
		if float64(got) != want {
			t.Errorf("HyperX %v bisection = %d, brute force %v", dims, got, want)
		}
	}
}

func TestHyperXBisectionKnown(t *testing.T) {
	// K8 x K4: halving K4 cuts 2*2*(32/4) = 32; halving K8 cuts
	// 4*4*(32/8) = 64. Bisection = 32.
	got, err := iso.HyperXBisection(torus.Shape{8, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 32 {
		t.Errorf("K8xK4 bisection = %d, want 32", got)
	}
	if _, err := iso.HyperXBisection(torus.Shape{1, 1}); err == nil {
		t.Error("trivial product should fail")
	}
}

func TestWeightedCliqueProductReducesToUnweighted(t *testing.T) {
	dims := torus.Shape{4, 3, 2}
	for tt := 0; tt <= dims.Volume(); tt++ {
		w, err := iso.WeightedCliqueProductPerimeter(dims, iso.Uniform(3), tt)
		if err != nil {
			t.Fatal(err)
		}
		u, err := iso.CliqueSegmentPerimeter(dims, tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(w-float64(u)) > 1e-12 {
			t.Errorf("t=%d: weighted %v != unweighted %d", tt, w, u)
		}
	}
}

func TestWeightedCliqueSegmentAgainstGraph(t *testing.T) {
	// Aries-like group: K4 x K3 with K3 links carrying weight 3.
	dims := torus.Shape{4, 3}
	weights := iso.Weights{1, 3}
	g, err := topo.WeightedCliqueProduct(dims, weights)
	if err != nil {
		t.Fatal(err)
	}
	// The initial lex segment (last coordinate fastest) of size t has a
	// cut we can compute both ways.
	for tt := 0; tt <= 12; tt++ {
		set := make([]bool, 12)
		for i := 0; i < tt; i++ {
			set[i] = true
		}
		want := g.CutWeight(set)
		got, err := iso.WeightedCliqueProductPerimeter(dims, weights, tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("t=%d: recursion %v != graph %v", tt, got, want)
		}
	}
}

func TestWeightedCuboidPerimeter(t *testing.T) {
	dims := torus.Shape{6, 4, 2}
	// Unit weights must agree with the unweighted closed form.
	tor := torus.MustNew(dims...)
	lens := torus.Shape{3, 4, 1}
	got, err := iso.WeightedCuboidPerimeter(dims, iso.Uniform(3), lens)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(tor.CuboidPerimeter(torus.NewCuboid(nil, lens)))
	if got != want {
		t.Errorf("uniform weighted = %v, unweighted %v", got, want)
	}
	// Doubling one dimension's weight adds exactly that dimension's
	// contribution again.
	w2 := iso.Weights{2, 1, 1}
	got2, err := iso.WeightedCuboidPerimeter(dims, w2, lens)
	if err != nil {
		t.Fatal(err)
	}
	dim0Contribution := float64(2 * lens.Volume() / lens[0])
	if math.Abs(got2-(want+dim0Contribution)) > 1e-9 {
		t.Errorf("weighted = %v, want %v", got2, want+dim0Contribution)
	}
	// Errors.
	if _, err := iso.WeightedCuboidPerimeter(dims, iso.Uniform(2), lens); err == nil {
		t.Error("weight rank mismatch should fail")
	}
	if _, err := iso.WeightedCuboidPerimeter(dims, iso.Weights{1, -1, 1}, lens); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := iso.WeightedCuboidPerimeter(dims, iso.Uniform(3), torus.Shape{9, 1, 1}); err == nil {
		t.Error("oversized cuboid should fail")
	}
}

func TestMinWeightedCuboidPerimeter(t *testing.T) {
	// In a 4x4 torus with dim-0 links 10x more expensive, the optimal
	// volume-4 cuboid avoids cutting dimension 0: lens [4,1] (covering
	// dim 0) has weighted cut 0*10 + 2*4 = 8; lens [1,4] costs
	// 2*4*10 = 80; [2,2] costs 2*2*10 + 2*2 = 44.
	lens, per, err := iso.MinWeightedCuboidPerimeter(torus.Shape{4, 4}, iso.Weights{10, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if per != 8 {
		t.Errorf("min weighted perimeter = %v (%v), want 8", per, lens)
	}
	if !lens.Equal(torus.Shape{4, 1}) {
		t.Errorf("optimal lens = %v, want 4x1", lens)
	}
}

func BenchmarkLindseyPerimeter(b *testing.B) {
	dims := torus.Shape{16, 6} // Aries group shape
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := iso.LindseyPerimeter(dims, 37); err != nil {
			b.Fatal(err)
		}
	}
}
