package iso

import "fmt"

// HarperPerimeter returns the exact minimum perimeter |E(S, S̄)| over
// all subsets S of size t in the D-dimensional hypercube Q_D, by
// Harper's theorem [16]: initial segments of the binary
// (lexicographic) vertex order are edge-isoperimetric. The value is
// computed by the standard recursion on the top dimension:
//
//   - if t lies in the lower half-cube, the boundary is the boundary of
//     the segment within Q_{D-1} plus one cross edge per vertex;
//   - if t covers the lower half-cube, the lower half contributes one
//     cross edge for each vertex missing from the upper half, plus the
//     boundary of the remainder within the upper Q_{D-1}.
func HarperPerimeter(D, t int) (int, error) {
	if D < 0 {
		return 0, fmt.Errorf("iso: negative hypercube dimension %d", D)
	}
	if D > 62 {
		return 0, fmt.Errorf("iso: hypercube dimension %d too large", D)
	}
	size := 1 << uint(D)
	if t < 0 || t > size {
		return 0, fmt.Errorf("iso: subset size %d out of range [0, %d]", t, size)
	}
	return harperRec(D, t), nil
}

func harperRec(D, t int) int {
	if t == 0 || t == 1<<uint(D) {
		return 0
	}
	half := 1 << uint(D-1)
	if t <= half {
		return harperRec(D-1, t) + t
	}
	m := t - half
	return harperRec(D-1, m) + (half - m)
}

// HarperSet returns the isoperimetric subset of size t in Q_D realizing
// HarperPerimeter: the initial segment {0, 1, ..., t-1} of the natural
// binary order (vertices identified with their bitstrings).
func HarperSet(D, t int) ([]int, error) {
	if _, err := HarperPerimeter(D, t); err != nil {
		return nil, err
	}
	s := make([]int, t)
	for i := range s {
		s[i] = i
	}
	return s, nil
}

// HypercubeBisection returns the bisection width of Q_D, which equals
// 2^{D-1} (cut all edges in one dimension).
func HypercubeBisection(D int) (int, error) {
	if D < 1 || D > 62 {
		return 0, fmt.Errorf("iso: hypercube dimension %d out of range [1, 62]", D)
	}
	return harperRec(D, 1<<uint(D-1)), nil
}
