package iso_test

import (
	"testing"

	"netpart/internal/iso"
	"netpart/internal/topo"
)

func TestHarperMatchesBruteForce(t *testing.T) {
	for D := 0; D <= 4; D++ {
		g, err := topo.Hypercube(D)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 << uint(D)
		for tt := 0; tt <= n/2; tt++ {
			want := 0.0
			if tt > 0 {
				w, _, err := g.MinPerimeter(tt)
				if err != nil {
					t.Fatal(err)
				}
				want = w
			}
			got, err := iso.HarperPerimeter(D, tt)
			if err != nil {
				t.Fatal(err)
			}
			if float64(got) != want {
				t.Errorf("Q%d t=%d: Harper %d, brute force %v", D, tt, got, want)
			}
		}
	}
}

func TestHarperSetAchievesPerimeter(t *testing.T) {
	D := 5
	g, err := topo.Hypercube(D)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt <= 1<<uint(D); tt++ {
		set, err := iso.HarperSet(D, tt)
		if err != nil {
			t.Fatal(err)
		}
		mask := make([]bool, 1<<uint(D))
		for _, v := range set {
			mask[v] = true
		}
		cut := g.CutWeight(mask)
		want, _ := iso.HarperPerimeter(D, tt)
		if cut != float64(want) {
			t.Errorf("Q%d t=%d: initial segment cut %v != Harper value %d", D, tt, cut, want)
		}
	}
}

func TestHarperComplementSymmetry(t *testing.T) {
	// Perimeter of S equals perimeter of its complement.
	D := 6
	n := 1 << uint(D)
	for tt := 0; tt <= n; tt++ {
		a, _ := iso.HarperPerimeter(D, tt)
		b, _ := iso.HarperPerimeter(D, n-tt)
		// Initial segments of t and n-t are complements up to relabeling
		// (the order reverses under bit complement), so the minima agree.
		if a != b {
			t.Errorf("Q%d: Harper(%d)=%d != Harper(%d)=%d", D, tt, a, n-tt, b)
		}
	}
}

func TestHypercubeBisection(t *testing.T) {
	for D := 1; D <= 10; D++ {
		got, err := iso.HypercubeBisection(D)
		if err != nil {
			t.Fatal(err)
		}
		if got != 1<<uint(D-1) {
			t.Errorf("Q%d bisection = %d, want %d", D, got, 1<<uint(D-1))
		}
	}
}

func TestHarperErrors(t *testing.T) {
	if _, err := iso.HarperPerimeter(-1, 0); err == nil {
		t.Error("negative D should fail")
	}
	if _, err := iso.HarperPerimeter(3, 9); err == nil {
		t.Error("t > 2^D should fail")
	}
	if _, err := iso.HarperPerimeter(63, 1); err == nil {
		t.Error("D too large should fail")
	}
	if _, err := iso.HypercubeBisection(0); err == nil {
		t.Error("D=0 bisection should fail")
	}
	if _, err := iso.HarperSet(3, 99); err == nil {
		t.Error("HarperSet out of range should fail")
	}
}

func BenchmarkHarperPerimeter(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := iso.HarperPerimeter(40, (1<<40)/3); err != nil {
			b.Fatal(err)
		}
	}
}
