package iso

import (
	"fmt"
	"sort"

	"netpart/internal/torus"
)

// LindseyPerimeter returns the exact minimum perimeter over all subsets
// of size t in the Cartesian product of cliques
// K_{a_1} x ... x K_{a_D} — the HyperX network graph — by Lindsey's
// theorem [24]: vertices taken "in order of descending clique size"
// (paper §5) are edge-isoperimetric. Concretely, the optimal set is an
// initial segment of the lexicographic order in which the coordinate of
// the largest clique varies fastest, i.e. whole copies of the largest
// cliques are filled first.
//
// Weights may be supplied for weighted HyperX variants via
// WeightedCliqueProductPerimeter; this function is the unit-weight
// case.
func LindseyPerimeter(dims torus.Shape, t int) (int, error) {
	if err := dims.Validate(); err != nil {
		return 0, err
	}
	v := dims.Volume()
	if t < 0 || t > v {
		return 0, fmt.Errorf("iso: subset size %d out of range [0, %d]", t, v)
	}
	// Order dimensions ascending: the outermost (slowest) coordinate is
	// the smallest clique, so initial segments fill the largest cliques
	// first.
	asc := dims.Clone()
	sort.Ints(asc)
	return cliqueSegmentPerimeter(asc, t), nil
}

// CliqueSegmentPerimeter returns the exact perimeter of the initial
// segment of size t of the lexicographic order on
// K_{dims[0]} x ... x K_{dims[D-1]} with the *last* coordinate varying
// fastest. Unlike LindseyPerimeter it does not reorder dimensions, so
// it can evaluate non-optimal orders (used by tests to confirm the
// descending-size rule is the right one).
func CliqueSegmentPerimeter(dims torus.Shape, t int) (int, error) {
	if err := dims.Validate(); err != nil {
		return 0, err
	}
	if t < 0 || t > dims.Volume() {
		return 0, fmt.Errorf("iso: subset size %d out of range [0, %d]", t, dims.Volume())
	}
	return cliqueSegmentPerimeter(dims, t), nil
}

// cliqueSegmentPerimeter computes the perimeter of a lex initial
// segment by recursion on the outermost dimension. With a = dims[0]
// and M the volume of the remaining product, a segment of size t
// consists of q = t/M full copies plus an initial segment of m = t%M
// vertices in the next copy. Edges along dimension 0 form a K_a
// between corresponding positions of the copies; a position present in
// c copies contributes c(a-c) cut edges in that clique.
func cliqueSegmentPerimeter(dims torus.Shape, t int) int {
	if t == 0 || t == dims.Volume() {
		return 0
	}
	a := dims[0]
	if len(dims) == 1 {
		return t * (a - t)
	}
	rest := dims[1:]
	M := rest.Volume()
	q := t / M
	m := t % M
	cut := m*(q+1)*(a-q-1) + (M-m)*q*(a-q)
	if m > 0 {
		cut += cliqueSegmentPerimeter(rest, m)
	}
	return cut
}

// HyperXBisection returns the bisection width of the (regular, unit
// capacity) HyperX network K_{a_1} x ... x K_{a_D}: the exact minimal
// cut over subsets of size floor(V/2), computed via Lindsey's theorem.
// When the halved clique has even size this matches the closed form of
// Ahn et al. [2] — half of one clique K_i, all vertices of the others,
// cutting (a_i/2)^2 * V/a_i edges — minimized over i; for odd sizes
// the exact value can be larger than that formula suggests because no
// clique splits evenly.
func HyperXBisection(dims torus.Shape) (int, error) {
	if err := dims.Validate(); err != nil {
		return 0, err
	}
	v := dims.Volume()
	if v < 2 {
		return 0, fmt.Errorf("iso: HyperX %v has no non-trivial clique", dims)
	}
	return LindseyPerimeter(dims, v/2)
}
