package iso

import (
	"fmt"

	"netpart/internal/graph"
	"netpart/internal/torus"
)

// ConjectureReport records one subset size's comparison between the
// best cuboid and the true optimum over arbitrary subsets.
type ConjectureReport struct {
	T          int
	CuboidBest int     // minimal perimeter over cuboids (-1 if none exists)
	GlobalBest float64 // minimal perimeter over all subsets
	Bound      float64 // Theorem 3.1 right-hand side
	// BoundValid reports whether the raw Theorem 3.1 formula applies:
	// its per-vertex edge counting (2(D-r) cut edges) requires the
	// uncovered dimensions to have length >= 3. Tori with length-2
	// dimensions need Lemma 3.2's covering reduction; their reports
	// carry the formula value for reference but it is not a bound.
	BoundValid bool
	// Attainable reports whether Lemma 3.2's S_r construction exists
	// for this t (the sizes at which the bound is known tight).
	Attainable bool
	// CuboidOptimal reports whether the best cuboid matches the global
	// optimum. At attainable sizes it must; at other sizes non-cuboid
	// subsets can win — e.g. on the 5x3 torus at t=5 the only cuboid
	// is the 5x1 strip (perimeter 10) while an L-shaped set (a full
	// 3-column plus two adjacent cells) achieves 8. Such cases do not
	// contradict the paper's conjecture, which concerns the bound
	// (here 6), not cuboid optimality at every size.
	CuboidOptimal bool
}

// VerifyConjecture tests the paper's open conjecture — that Theorem
// 3.1's bound (attained by cuboids) is optimal for arbitrary subsets —
// by exhaustive enumeration on a small torus: for every subset size up
// to |V|/2 it compares the best cuboid against the global optimum and
// the bound. It returns one report per size and an error if the torus
// is too large to enumerate.
//
// A report with CuboidOptimal == false would be a counterexample
// candidate (no such instance is known; the test suite runs this over
// a family of small tori).
func VerifyConjecture(dims torus.Shape, g *graph.Graph) ([]ConjectureReport, error) {
	if err := dims.Validate(); err != nil {
		return nil, err
	}
	tor := torus.MustNew(dims...)
	if g == nil {
		return nil, fmt.Errorf("iso: nil graph oracle")
	}
	if g.N() != tor.NumVertices() {
		return nil, fmt.Errorf("iso: oracle has %d vertices, torus has %d", g.N(), tor.NumVertices())
	}
	vol := tor.NumVertices()
	minDim := vol
	for _, a := range dims {
		if a > 1 && a < minDim {
			minDim = a
		}
	}
	var out []ConjectureReport
	for t := 1; t <= vol/2; t++ {
		global, _, err := g.MinPerimeter(t)
		if err != nil {
			return nil, err
		}
		rep := ConjectureReport{T: t, GlobalBest: global, CuboidBest: -1, BoundValid: minDim >= 3}
		rep.Bound, _ = TorusBound(dims, t)
		_, rep.Attainable = AttainingCuboid(dims, t)
		if res, err := MinCuboidPerimeter(dims, t); err == nil {
			rep.CuboidBest = res.Perimeter
			rep.CuboidOptimal = float64(res.Perimeter) <= global+1e-9
		}
		out = append(out, rep)
	}
	return out, nil
}
