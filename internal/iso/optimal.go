package iso

import (
	"fmt"
	"math"
	"sync"

	"netpart/internal/torus"
)

// CuboidResult describes the outcome of an exact cuboid search.
type CuboidResult struct {
	Lens      torus.Shape // lengths in host dimension order
	Perimeter int         // exact |E(S, S̄)|
}

// MinCuboidPerimeter solves the edge-isoperimetric problem exactly over
// cuboid subsets: among all cuboids of volume t that fit inside the
// torus with the given dimensions, it returns one with minimal
// perimeter. This is the constructive counterpart of Lemma 3.3 and the
// workhorse of the partition analysis in package bgq (partitions are
// cuboids by the Blue Gene/Q allocation rules, and the paper
// conjectures cuboids are optimal among arbitrary subsets).
//
// It returns an error when no cuboid of volume t fits (e.g. t has a
// prime factor larger than every dimension).
func MinCuboidPerimeter(dims torus.Shape, t int) (CuboidResult, error) {
	if err := dims.Validate(); err != nil {
		return CuboidResult{}, err
	}
	if t < 1 || t > dims.Volume() {
		return CuboidResult{}, fmt.Errorf("iso: subset size %d out of range [1, %d]", t, dims.Volume())
	}
	tor := torus.MustNew(dims...)
	best := CuboidResult{Perimeter: math.MaxInt}
	for _, geo := range torus.EnumerateGeometries(dims, len(dims), t) {
		for _, lens := range torus.Placements(dims, geo) {
			per := tor.CuboidPerimeter(torus.NewCuboid(nil, lens))
			if per < best.Perimeter {
				best = CuboidResult{Lens: lens, Perimeter: per}
			}
		}
	}
	if best.Lens == nil {
		return CuboidResult{}, fmt.Errorf("iso: no cuboid of volume %d fits in %v", t, dims)
	}
	return best, nil
}

// MaxCuboidPerimeter is the adversarial counterpart of
// MinCuboidPerimeter: the cuboid of volume t with the largest
// perimeter. Useful for quantifying how bad a worst-case allocation
// geometry can be.
func MaxCuboidPerimeter(dims torus.Shape, t int) (CuboidResult, error) {
	if err := dims.Validate(); err != nil {
		return CuboidResult{}, err
	}
	if t < 1 || t > dims.Volume() {
		return CuboidResult{}, fmt.Errorf("iso: subset size %d out of range [1, %d]", t, dims.Volume())
	}
	tor := torus.MustNew(dims...)
	best := CuboidResult{Perimeter: -1}
	for _, geo := range torus.EnumerateGeometries(dims, len(dims), t) {
		for _, lens := range torus.Placements(dims, geo) {
			per := tor.CuboidPerimeter(torus.NewCuboid(nil, lens))
			if per > best.Perimeter {
				best = CuboidResult{Lens: lens, Perimeter: per}
			}
		}
	}
	if best.Lens == nil {
		return CuboidResult{}, fmt.Errorf("iso: no cuboid of volume %d fits in %v", t, dims)
	}
	return best, nil
}

// bisectionCache memoizes Bisection results keyed by the exact shape
// string. The bgq allocation policies re-run the same cuboid search
// for the same geometry dozens of times per table (every Best/Worst
// call enumerates all geometries of a size, and the experiment
// drivers revisit each geometry across tables and figures), so the
// cache turns all but the first search per shape into a lookup. It is
// a sync.Map because the experiment drivers probe it from a worker
// pool; the key space is bounded by the distinct partition shapes of
// the machine catalog.
var bisectionCache sync.Map // string -> CuboidResult

// Bisection returns the exact minimal perimeter over cuboids of volume
// |V|/2 — the (internal) bisection bandwidth of the torus in link
// units, under the paper's working assumption (§2, Small Set
// Expansion) that the bisection is attained by a cuboid. For the torus
// shapes arising from Blue Gene/Q partitions this matches the 2N/L
// closed form of Chen et al. [12], which package bgq cross-checks.
//
// Results are memoized per shape and safe for concurrent use.
func Bisection(dims torus.Shape) (CuboidResult, error) {
	v := dims.Volume()
	if v < 2 {
		return CuboidResult{}, fmt.Errorf("iso: torus %v too small to bisect", dims)
	}
	if v%2 != 0 {
		return CuboidResult{}, fmt.Errorf("iso: torus %v has odd vertex count %d", dims, v)
	}
	key := dims.String()
	if c, ok := bisectionCache.Load(key); ok {
		res := c.(CuboidResult)
		res.Lens = res.Lens.Clone() // callers may mutate the returned shape
		return res, nil
	}
	res, err := MinCuboidPerimeter(dims, v/2)
	if err != nil {
		return res, err
	}
	stored := res
	stored.Lens = res.Lens.Clone()
	bisectionCache.Store(key, stored)
	return res, nil
}

// BisectionBandwidth2NL evaluates the closed-form bisection bandwidth
// 2N/L of Chen et al. [12] for a torus with N vertices whose longest
// dimension has length L. It requires the longest dimension to be even
// (true of all Blue Gene/Q partitions, whose node dimensions are
// multiples of 4, except the trivial single-node case). Each
// bidirectional link contributes one unit.
func BisectionBandwidth2NL(dims torus.Shape) (int, error) {
	L := dims.LongestDim()
	if L < 2 {
		return 0, fmt.Errorf("iso: degenerate torus %v", dims)
	}
	if L%2 != 0 {
		return 0, fmt.Errorf("iso: longest dimension %d is odd; 2N/L formula needs an even split", L)
	}
	n := dims.Volume()
	if L == 2 {
		// A length-2 ring is a single edge per column in the
		// simple-graph convention: one cut plane, not two.
		return n / L, nil
	}
	return 2 * n / L, nil
}

// CompareGeometries implements Corollary 3.4's comparator: given two
// partition geometries A and B of equal volume over the same node
// torus, it returns a negative value if A has strictly greater internal
// bisection bandwidth, positive if B does, and 0 on a tie. The
// corollary's criterion — the geometry whose longest dimension is a
// smaller fraction of the volume wins — coincides with comparing exact
// bisections for cuboid partitions; we compare exactly.
func CompareGeometries(a, b torus.Shape) (int, error) {
	if a.Volume() != b.Volume() {
		return 0, fmt.Errorf("iso: geometries %v and %v have different volumes", a, b)
	}
	ba, err := Bisection(a)
	if err != nil {
		return 0, err
	}
	bb, err := Bisection(b)
	if err != nil {
		return 0, err
	}
	switch {
	case ba.Perimeter > bb.Perimeter:
		return -1, nil
	case ba.Perimeter < bb.Perimeter:
		return 1, nil
	default:
		return 0, nil
	}
}
