package iso

import (
	"fmt"
	"math"

	"netpart/internal/torus"
)

// Weights assigns a link capacity to each dimension of a torus or
// clique product. Networks with bundled or heterogeneous links
// (Dragonfly's K6 links carry 3 units relative to K16 links; 3D tori
// such as Titan's often bundle multiple physical channels per
// dimension) induce weighted edge-isoperimetric problems (paper §5).
type Weights []float64

// Uniform returns unit weights of the given rank.
func Uniform(rank int) Weights {
	w := make(Weights, rank)
	for i := range w {
		w[i] = 1
	}
	return w
}

func (w Weights) validate(rank int) error {
	if len(w) != rank {
		return fmt.Errorf("iso: %d weights for rank-%d shape", len(w), rank)
	}
	for i, v := range w {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("iso: invalid weight %v in dimension %d", v, i)
		}
	}
	return nil
}

// WeightedCuboidPerimeter returns the total weight of the cuboid's
// boundary edges in a torus whose dimension-i links carry weight w[i]:
// the per-dimension closed form of torus.CuboidPerimeter scaled by the
// dimension weight.
func WeightedCuboidPerimeter(dims torus.Shape, w Weights, lens torus.Shape) (float64, error) {
	if err := dims.Validate(); err != nil {
		return 0, err
	}
	if err := w.validate(len(dims)); err != nil {
		return 0, err
	}
	if len(lens) != len(dims) {
		return 0, fmt.Errorf("iso: cuboid rank %d != torus rank %d", len(lens), len(dims))
	}
	vol := lens.Volume()
	total := 0.0
	for i, s := range lens {
		a := dims[i]
		if s < 1 || s > a {
			return 0, fmt.Errorf("iso: cuboid length %d out of range (0, %d] in dimension %d", s, a, i)
		}
		switch {
		case s == a:
			// covered
		case a == 2:
			total += w[i] * float64(vol/s)
		default:
			total += w[i] * float64(2*vol/s)
		}
	}
	return total, nil
}

// MinWeightedCuboidPerimeter searches all cuboids of volume t fitting
// the torus for the one of minimal weighted perimeter.
func MinWeightedCuboidPerimeter(dims torus.Shape, w Weights, t int) (torus.Shape, float64, error) {
	if err := dims.Validate(); err != nil {
		return nil, 0, err
	}
	if err := w.validate(len(dims)); err != nil {
		return nil, 0, err
	}
	if t < 1 || t > dims.Volume() {
		return nil, 0, fmt.Errorf("iso: subset size %d out of range [1, %d]", t, dims.Volume())
	}
	var bestLens torus.Shape
	best := math.Inf(1)
	for _, geo := range torus.EnumerateGeometries(dims, len(dims), t) {
		for _, lens := range torus.Placements(dims, geo) {
			per, err := WeightedCuboidPerimeter(dims, w, lens)
			if err != nil {
				return nil, 0, err
			}
			if per < best {
				best = per
				bestLens = lens
			}
		}
	}
	if bestLens == nil {
		return nil, 0, fmt.Errorf("iso: no cuboid of volume %d fits in %v", t, dims)
	}
	return bestLens, best, nil
}

// WeightedCliqueProductPerimeter returns the weighted perimeter of the
// initial lexicographic segment of size t in the clique product
// K_{dims[0]} x ... (last coordinate fastest), where dimension-i clique
// edges carry weight w[i]. Pair it with an enumeration over dimension
// orders to solve weighted HyperX/Dragonfly-group instances, for which
// no closed-form ordering rule is known in general.
func WeightedCliqueProductPerimeter(dims torus.Shape, w Weights, t int) (float64, error) {
	if err := dims.Validate(); err != nil {
		return 0, err
	}
	if err := w.validate(len(dims)); err != nil {
		return 0, err
	}
	if t < 0 || t > dims.Volume() {
		return 0, fmt.Errorf("iso: subset size %d out of range [0, %d]", t, dims.Volume())
	}
	return weightedCliqueSegment(dims, w, t), nil
}

func weightedCliqueSegment(dims torus.Shape, w Weights, t int) float64 {
	if t == 0 || t == dims.Volume() {
		return 0
	}
	a := dims[0]
	if len(dims) == 1 {
		return w[0] * float64(t*(a-t))
	}
	rest := dims[1:]
	M := rest.Volume()
	q := t / M
	m := t % M
	cut := w[0] * float64(m*(q+1)*(a-q-1)+(M-m)*q*(a-q))
	if m > 0 {
		cut += weightedCliqueSegment(rest, w[1:], m)
	}
	return cut
}
