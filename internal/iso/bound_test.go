package iso_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netpart/internal/iso"
	"netpart/internal/topo"
	"netpart/internal/torus"
)

func TestBollobasLeaderMatchesTorusBound(t *testing.T) {
	for _, c := range []struct{ n, D int }{{3, 2}, {4, 2}, {4, 3}, {5, 3}, {8, 4}} {
		vol := 1
		for i := 0; i < c.D; i++ {
			vol *= c.n
		}
		for _, tt := range []int{1, 2, c.n, vol / 4, vol / 2} {
			if tt < 1 || tt > vol/2 {
				continue
			}
			dims := make(torus.Shape, c.D)
			for i := range dims {
				dims[i] = c.n
			}
			bl, rBL := iso.BollobasLeader(c.n, c.D, tt)
			tb, rTB := iso.TorusBound(dims, tt)
			if math.Abs(bl-tb) > 1e-9*math.Max(1, bl) {
				t.Errorf("n=%d D=%d t=%d: BL %v != TorusBound %v", c.n, c.D, tt, bl, tb)
			}
			if rBL != rTB {
				t.Errorf("n=%d D=%d t=%d: argmin r %d != %d", c.n, c.D, tt, rBL, rTB)
			}
		}
	}
}

// TestTorusBoundKnownValues checks hand-computed instances of Eq. 3.
func TestTorusBoundKnownValues(t *testing.T) {
	cases := []struct {
		dims torus.Shape
		t    int
		want float64
	}{
		// [n]^2, t=n: a line across = perimeter 2n (r=1) vs 4 sqrt(t)
		// (r=0): for n=4, t=4: r=0 gives 8, r=1 gives 2*1*4*1=8: tie 8.
		{torus.Shape{4, 4}, 4, 8},
		// [6]x[6], t=6: r=0: 4*sqrt(6)=9.8; r=1: 2*6^(1/1)*6^0=12 -> 9.80
		{torus.Shape{6, 6}, 6, 4 * math.Sqrt(6)},
		// [8]x[4], t=16 = half: r=0: 4*4=16; r=1: 2*4*1 = 8 -> 8
		{torus.Shape{8, 4}, 16, 8},
		// [4]x[4]x[4], t=16: r=0: 6*16^(2/3)=38.1; r=1: 4*4^(1/2)*16^(1/2)=32; r=2: 2*16*1=32 -> 32
		{torus.Shape{4, 4, 4}, 16, 32},
	}
	for _, c := range cases {
		got, _ := iso.TorusBound(c.dims, c.t)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("TorusBound(%v, %d) = %v, want %v", c.dims, c.t, got, c.want)
		}
	}
}

func TestTorusBoundIsLowerBoundForCuboids(t *testing.T) {
	hosts := []torus.Shape{
		{4, 4}, {6, 4}, {5, 3}, {4, 4, 4}, {6, 4, 3}, {5, 4, 3}, {8, 6, 4}, {6, 5, 4, 3},
	}
	for _, host := range hosts {
		tor := torus.MustNew(host...)
		vol := host.Volume()
		for tt := 1; tt <= vol/2; tt++ {
			bound, _ := iso.TorusBound(host, tt)
			res, err := iso.MinCuboidPerimeter(host, tt)
			if err != nil {
				continue // no cuboid of this volume
			}
			if float64(res.Perimeter) < bound-1e-6 {
				t.Errorf("%v t=%d: cuboid %v perimeter %d below bound %v",
					host, tt, res.Lens, res.Perimeter, bound)
			}
			// Sanity: result matches direct recount.
			if got := tor.CuboidPerimeter(torus.NewCuboid(nil, res.Lens)); got != res.Perimeter {
				t.Errorf("%v t=%d: inconsistent perimeter", host, tt)
			}
		}
	}
}

// TestTorusBoundAgainstAllSubsets checks the bound (and the paper's
// conjecture that cuboids are globally optimal) against exhaustive
// enumeration of arbitrary subsets on small tori with all dimensions
// >= 3.
func TestTorusBoundAgainstAllSubsets(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive subset enumeration")
	}
	hosts := []torus.Shape{{4, 4}, {5, 3}, {3, 3}, {4, 3}, {6, 3}, {4, 4, 1}}
	for _, host := range hosts {
		tor := torus.MustNew(host...)
		g := topo.FromTorus(tor)
		vol := host.Volume()
		for tt := 1; tt <= vol/2; tt++ {
			minPer, _, err := g.MinPerimeter(tt)
			if err != nil {
				t.Fatalf("%v t=%d: %v", host, tt, err)
			}
			bound, _ := iso.TorusBound(host, tt)
			if minPer < bound-1e-6 {
				t.Errorf("%v t=%d: exhaustive min %v below Theorem 3.1 bound %v", host, tt, minPer, bound)
			}
			// Conjecture support: the best cuboid (when one exists)
			// matches the exhaustive optimum.
			if res, err := iso.MinCuboidPerimeter(host, tt); err == nil {
				if float64(res.Perimeter) < minPer-1e-9 {
					t.Errorf("%v t=%d: cuboid %d beats exhaustive %v (impossible)", host, tt, res.Perimeter, minPer)
				}
				if float64(res.Perimeter) > minPer+1e-9 {
					t.Logf("%v t=%d: cuboid optimum %d > global optimum %v (conjecture would fail)", host, tt, res.Perimeter, minPer)
				}
			}
		}
	}
}

func TestAttainingCuboidMatchesBound(t *testing.T) {
	cases := []struct {
		dims torus.Shape
		t    int
	}{
		{torus.Shape{4, 4}, 4},     // 2x2 square
		{torus.Shape{4, 4}, 8},     // 4x2 half
		{torus.Shape{8, 4}, 16},    // half: 4x4 or 8x2?
		{torus.Shape{4, 4, 4}, 32}, // half
		{torus.Shape{6, 4, 4}, 16}, // 4x4x1? t=16, k=1, r=0: 16^(1/3) not int; r=1: (16/4)^(1/2)=2 -> 2x2x4
		{torus.Shape{4, 4, 4}, 16}, // r=1: (16/4)^(1/2)=2 -> 2x2x4... or r=2: 16/16=1 -> 1x4x4
		{torus.Shape{9, 3, 3}, 27}, // r=? (27/9)^... r=2: 27/9=3 -> 3x3x3
	}
	for _, c := range cases {
		sh, ok := iso.AttainingCuboid(c.dims, c.t)
		if !ok {
			t.Errorf("AttainingCuboid(%v, %d): no attaining cuboid found", c.dims, c.t)
			continue
		}
		if sh.Volume() != c.t {
			t.Errorf("AttainingCuboid(%v, %d) = %v: wrong volume", c.dims, c.t, sh)
		}
		bound, _ := iso.TorusBound(c.dims, c.t)
		tor := torus.MustNew(c.dims.Canonical()...)
		// Place the attaining shape: its dims are already aligned to the
		// canonical host (largest first covers none, smallest covered).
		cut := tor.CuboidPerimeter(torus.NewCuboid(nil, sh))
		if math.Abs(float64(cut)-bound) > 1e-6*math.Max(1, bound) {
			t.Errorf("AttainingCuboid(%v, %d) = %v: cut %d != bound %v", c.dims, c.t, sh, cut, bound)
		}
	}
}

func TestAttainingCuboidNonIntegral(t *testing.T) {
	// t=5 in [4]^2: (5/1)^(1/2) not integer, (5/4) not integer: no
	// attaining cuboid.
	if sh, ok := iso.AttainingCuboid(torus.Shape{4, 4}, 5); ok {
		t.Errorf("expected no attaining cuboid, got %v", sh)
	}
}

func TestMinCuboidPerimeterBGQPartitions(t *testing.T) {
	// Paper §2 example: a 3x2x1x1-midplane system (3072 nodes, network
	// 12x8x4x4x2). The only 3-midplane cuboid is 3x1x1x1 (12x4x4x4x2 in
	// nodes), whose internal bisection is 256 links.
	only, err := iso.Bisection(torus.Shape{12, 4, 4, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if only.Perimeter != 256 {
		t.Errorf("12x4x4x4x2 internal bisection = %d, want 256", only.Perimeter)
	}
	// The 8x6x4x4x2 partition is not a sub-cuboid of this host (6 does
	// not divide into the 8-dimension with midplane granularity), but
	// its internal bisection as a standalone torus is 384.
	alt, err := iso.Bisection(torus.Shape{8, 6, 4, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if alt.Perimeter != 384 {
		t.Errorf("8x6x4x4x2 internal bisection = %d, want 384", alt.Perimeter)
	}
	// With one MPI rank per node and an over-provisioned 8x8x4x4x2
	// partition: bisection 512 (paper §2).
	over, err := iso.Bisection(torus.Shape{8, 8, 4, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if over.Perimeter != 512 {
		t.Errorf("8x8x4x4x2 internal bisection = %d, want 512", over.Perimeter)
	}
}

func TestBisectionMatches2NLOnBGQShapes(t *testing.T) {
	shapes := []torus.Shape{
		{4, 4, 4, 4, 2},   // 1 midplane
		{8, 4, 4, 4, 2},   // 2 midplanes
		{16, 4, 4, 4, 2},  // 4 midplanes, worst geometry
		{8, 8, 4, 4, 2},   // 4 midplanes, best geometry
		{12, 8, 8, 8, 2},  // JUQUEEN 24-midplane proposed
		{16, 12, 8, 8, 2}, // Mira 24-midplane current is 16x12x8x4x2
		{16, 12, 8, 4, 2},
		{16, 16, 12, 8, 2}, // Mira full machine
		{28, 8, 8, 8, 2},   // JUQUEEN full machine
	}
	for _, sh := range shapes {
		exact, err := iso.Bisection(sh)
		if err != nil {
			t.Fatalf("%v: %v", sh, err)
		}
		closed, err := iso.BisectionBandwidth2NL(sh)
		if err != nil {
			t.Fatalf("%v: %v", sh, err)
		}
		if exact.Perimeter != closed {
			t.Errorf("%v: exact bisection %d (cuboid %v) != 2N/L %d", sh, exact.Perimeter, exact.Lens, closed)
		}
	}
}

func TestBisectionErrors(t *testing.T) {
	if _, err := iso.Bisection(torus.Shape{1}); err == nil {
		t.Error("Bisection of trivial torus should fail")
	}
	if _, err := iso.Bisection(torus.Shape{3, 3}); err == nil {
		t.Error("Bisection of odd torus should fail")
	}
	if _, err := iso.MinCuboidPerimeter(torus.Shape{4, 4}, 0); err == nil {
		t.Error("t=0 should fail")
	}
	if _, err := iso.MinCuboidPerimeter(torus.Shape{4, 4}, 7); err == nil {
		t.Error("t=7 has no cuboid in 4x4; expected error")
	}
}

func TestMaxCuboidPerimeter(t *testing.T) {
	// In 4x4, volume 4: 4x1 line has perimeter 8... compute: lens [4,1]:
	// dim0 covered, dim1 s=1: 2*4/1 = 8. 2x2: 2*4/2+2*4/2=8. 1x4: 8.
	// All volume-4 cuboids in 4x4 tie at 8; larger asymmetry shows up in
	// 8x4 vol 8: 8x1 -> 2*8=16 vs 4x2 -> 2*8/4+2*8/2 = 4+8=12... min 12? and 2x4:
	// 2*8/2 + 0 = 8. So max=16, min=8.
	maxRes, err := iso.MaxCuboidPerimeter(torus.Shape{8, 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if maxRes.Perimeter != 16 {
		t.Errorf("max perimeter = %d (%v), want 16", maxRes.Perimeter, maxRes.Lens)
	}
	minRes, err := iso.MinCuboidPerimeter(torus.Shape{8, 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if minRes.Perimeter != 8 {
		t.Errorf("min perimeter = %d (%v), want 8", minRes.Perimeter, minRes.Lens)
	}
}

func TestCompareGeometries(t *testing.T) {
	// Paper Table 1, 4-midplane row: 16x4x4x4x2 (BW 256) vs 8x8x4x4x2 (BW 512).
	cur := torus.Shape{16, 4, 4, 4, 2}
	prop := torus.Shape{8, 8, 4, 4, 2}
	cmp, err := iso.CompareGeometries(prop, cur)
	if err != nil {
		t.Fatal(err)
	}
	if cmp >= 0 {
		t.Errorf("CompareGeometries(proposed, current) = %d, want negative (proposed better)", cmp)
	}
	if cmp, _ := iso.CompareGeometries(cur, cur); cmp != 0 {
		t.Errorf("self comparison = %d", cmp)
	}
	if _, err := iso.CompareGeometries(cur, torus.Shape{4, 4}); err == nil {
		t.Error("volume mismatch should fail")
	}
}

// TestTorusBoundQuick: the bound never exceeds the closed-form
// perimeter of any cuboid, on random tori with dims >= 3.
func TestTorusBoundQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		D := 2 + r.Intn(3)
		dims := make(torus.Shape, D)
		lens := make(torus.Shape, D)
		for i := range dims {
			dims[i] = 3 + r.Intn(6)
			lens[i] = 1 + r.Intn(dims[i])
		}
		vol := lens.Volume()
		if vol > dims.Volume()/2 {
			return true // bound only stated for t <= |V|/2
		}
		tor := torus.MustNew(dims...)
		per := tor.CuboidPerimeter(torus.NewCuboid(nil, lens))
		bound, _ := iso.TorusBound(dims, vol)
		return float64(per) >= bound-1e-6
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkTorusBound(b *testing.B) {
	dims := torus.Shape{16, 16, 12, 8, 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		iso.TorusBound(dims, 12288)
	}
}

func BenchmarkMinCuboidPerimeter(b *testing.B) {
	dims := torus.Shape{16, 16, 12, 8, 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := iso.MinCuboidPerimeter(dims, 12288); err != nil {
			b.Fatal(err)
		}
	}
}
