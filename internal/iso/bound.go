// Package iso implements the edge-isoperimetric machinery of Oltchik &
// Schwartz, "Network Partitioning and Avoidable Contention" (SPAA
// 2020): the Bollobás–Leader inequality for cubic tori (Theorem 2.1),
// the paper's generalization to tori with arbitrary dimension lengths
// (Theorem 3.1) with its attaining cuboids S_r (Lemma 3.2), exact
// optimal-cuboid search (the constructive side of Lemma 3.3), and the
// classical solutions for related topologies: Harper's hypercube
// solution and Lindsey's solution for Cartesian products of cliques
// (HyperX networks). A weighted variant supports networks with
// non-uniform per-dimension link capacities (Dragonfly, low-dimension
// tori with bundled links).
package iso

import (
	"fmt"
	"math"

	"netpart/internal/torus"
)

// BollobasLeader evaluates the right-hand side of Theorem 2.1 — the
// edge-isoperimetric lower bound for a cubic D-dimensional torus
// [n]^D and subset size t <= n^D / 2:
//
//	|E(S, S̄)| >= min_{r in 0..D-1} 2 (D-r) n^{r/(D-r)} t^{(D-r-1)/(D-r)}
//
// It returns the bound value and the minimizing r. The bound is tight
// whenever (t / n^r)^{1/(D-r)} is an integer (see AttainingCuboid).
// Dimension lengths are assumed >= 3 (the simple-graph edge counting
// the theorem is stated for); see TorusBound for the general handling.
func BollobasLeader(n, D, t int) (float64, int) {
	dims := make(torus.Shape, D)
	for i := range dims {
		dims[i] = n
	}
	return TorusBound(dims, t)
}

// TorusBound evaluates the right-hand side of Theorem 3.1 — the
// paper's generalized edge-isoperimetric bound for an arbitrary torus
// with dimensions a_1 >= a_2 >= ... >= a_D and subset size t <= |V|/2:
//
//	|E(S, S̄)| >= min_{r in 0..D-1} 2 (D-r) (prod_{i=0}^{r-1} a_{D-i})^{1/(D-r)} t^{(D-r-1)/(D-r)}
//
// where the product runs over the r smallest dimensions. The function
// canonicalizes the shape itself, so callers may pass dimensions in
// any order. It returns the bound and the minimizing r.
//
// The bound's edge counting (2(D-r) cut edges per boundary vertex)
// assumes the uncovered dimensions have length >= 3; Lemma 3.2 handles
// length-2 dimensions by covering them first (they are the smallest,
// hence covered for r >= #length-2 dims). Length-1 dimensions are
// stripped before evaluation. For machine analysis with length-2
// dimensions prefer MinCuboidPerimeter, which is exact.
func TorusBound(dims torus.Shape, t int) (float64, int) {
	a := stripOnes(dims.Canonical())
	D := len(a)
	if D == 0 || t <= 0 {
		return 0, 0
	}
	if v := a.Volume(); t > v/2 {
		panic(fmt.Sprintf("iso: t=%d exceeds |V|/2=%d for %v", t, v/2, dims))
	}
	best := math.Inf(1)
	bestR := 0
	k := 1.0
	for r := 0; r < D; r++ {
		if r > 0 {
			k *= float64(a[D-r]) // r-th smallest dimension
		}
		e := float64(D - r)
		val := 2 * e * math.Pow(k, 1/e) * math.Pow(float64(t), (e-1)/e)
		if val < best-1e-9 {
			best = val
			bestR = r
		}
	}
	return best, bestR
}

// AttainingCuboid returns the cuboid S_r of Lemma 3.2 for the
// minimizing r of Theorem 3.1, when it exists: with k the product of
// the r smallest dimensions, S_r has D-r dimensions of length
// (t/k)^{1/(D-r)} and covers the r smallest dimensions entirely. The
// second result reports whether (t/k)^{1/(D-r)} is an integer (and at
// most a_{D-r}), i.e. whether the construction applies for this r.
//
// When the minimizing r does not admit the construction, the function
// also tries the other r values and returns any attaining cuboid whose
// closed-form cut equals the bound within floating-point tolerance.
func AttainingCuboid(dims torus.Shape, t int) (torus.Shape, bool) {
	a := stripOnes(dims.Canonical())
	D := len(a)
	if D == 0 || t <= 0 {
		return nil, false
	}
	bound, bestR := TorusBound(dims, t)
	// Try the minimizing r first, then the rest.
	order := []int{bestR}
	for r := 0; r < D; r++ {
		if r != bestR {
			order = append(order, r)
		}
	}
	for _, r := range order {
		k := 1
		for i := 0; i < r; i++ {
			k *= a[D-1-i]
		}
		if t%k != 0 {
			continue
		}
		side, ok := intRoot(t/k, D-r)
		if !ok || side > a[D-r-1] {
			continue
		}
		sh := make(torus.Shape, D)
		for i := 0; i < D-r; i++ {
			sh[i] = side
		}
		for i := 0; i < r; i++ {
			sh[D-r+i] = a[D-r+i]
		}
		// Validate against the bound via the exact closed form.
		tor := torus.MustNew(a...)
		cut := tor.CuboidPerimeter(torus.NewCuboid(nil, sh))
		if math.Abs(float64(cut)-bound) < 1e-6*math.Max(1, bound) {
			return sh, true
		}
	}
	return nil, false
}

// stripOnes removes length-1 dimensions (they contribute no edges).
// If every dimension is 1, a single trivial dimension is kept.
func stripOnes(a torus.Shape) torus.Shape {
	out := make(torus.Shape, 0, len(a))
	for _, v := range a {
		if v > 1 {
			out = append(out, v)
		}
	}
	if len(out) == 0 && len(a) > 0 {
		out = append(out, 1)
	}
	return out
}

// intRoot returns the integer k-th root of x if x is a perfect k-th
// power.
func intRoot(x, k int) (int, bool) {
	if x < 1 || k < 1 {
		return 0, false
	}
	if k == 1 {
		return x, true
	}
	r := int(math.Round(math.Pow(float64(x), 1/float64(k))))
	for c := r - 1; c <= r+1; c++ {
		if c < 1 {
			continue
		}
		p := 1
		ok := true
		for i := 0; i < k; i++ {
			p *= c
			if p > x {
				ok = false
				break
			}
		}
		if ok && p == x {
			return c, true
		}
	}
	return 0, false
}
