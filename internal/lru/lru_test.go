package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestBasicGetPut(t *testing.T) {
	c := New[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %v, %v", v, ok)
	}
	// b is now LRU; inserting c evicts it.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a evicted instead of b: %v, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("c = %v, %v", v, ok)
	}
	hits, misses, evictions := c.Counts()
	if hits != 3 || misses != 2 || evictions != 1 {
		t.Fatalf("counts = %d/%d/%d", hits, misses, evictions)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh: a becomes MRU, no eviction
	c.Put("c", 3)  // evicts b
	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Fatalf("a = %v, %v", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived")
	}
}

func TestCapacityOne(t *testing.T) {
	c := New[int, int](1)
	for i := 0; i < 10; i++ {
		c.Put(i, i*i)
		if v, ok := c.Get(i); !ok || v != i*i {
			t.Fatalf("just-inserted %d = %v, %v", i, v, ok)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 accepted")
		}
	}()
	New[int, int](0)
}

func TestConcurrentAccess(t *testing.T) {
	c := New[string, int](16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%32)
				c.Put(k, i)
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("len %d exceeds capacity", c.Len())
	}
	hits, misses, _ := c.Counts()
	if hits+misses != 8*500 {
		t.Fatalf("hits %d + misses %d != gets %d", hits, misses, 8*500)
	}
}
