// Package lru is a small, mutex-guarded, bounded LRU cache with
// hit/miss/eviction instrumentation. It backs the process-wide
// compiled-artifact caches on the scheduling hot paths — the
// placement-plan cache in package sched and the routed-flow-set cache
// in the cluster scorer — where the working set is small (machine
// catalog × request sizes, geometry × pattern) but must stay bounded
// against adversarial request streams, and where the observability
// layer samples the counters at scrape time.
package lru

import "sync"

// entry is one cache slot, threaded on an intrusive recency list.
type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// Cache is a bounded LRU map. The zero value is not usable; construct
// with New. Safe for concurrent use.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	items    map[K]*entry[K, V]
	// head is most recently used, tail least.
	head, tail *entry[K, V]

	hits, misses, evictions uint64
}

// New creates a cache holding at most capacity entries (capacity < 1
// panics: an unbounded or zero cache is a configuration bug).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		panic("lru: capacity must be >= 1")
	}
	return &Cache[K, V]{capacity: capacity, items: make(map[K]*entry[K, V])}
}

// unlink removes e from the recency list.
func (c *Cache[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (c *Cache[K, V]) pushFront(e *entry[K, V]) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// Get returns the cached value and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	if c.head != e {
		c.unlink(e)
		c.pushFront(e)
	}
	return e.val, true
}

// Put inserts or refreshes a key, evicting the least recently used
// entry when the cache is full.
func (c *Cache[K, V]) Put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		e.val = val
		if c.head != e {
			c.unlink(e)
			c.pushFront(e)
		}
		return
	}
	if len(c.items) >= c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.items, lru.key)
		c.evictions++
	}
	e := &entry[K, V]{key: key, val: val}
	c.items[key] = e
	c.pushFront(e)
}

// Len returns the current entry count.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Counts returns cumulative hits, misses and evictions.
func (c *Cache[K, V]) Counts() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
