package route

import (
	"testing"

	"netpart/internal/torus"
)

func TestRouteEndpointsAndHops(t *testing.T) {
	tor := torus.MustNew(6, 4, 2)
	r := NewRouter(tor)
	n := tor.NumVertices()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			path := r.Route(src, dst, nil)
			if len(path) != r.HopCount(src, dst) {
				t.Fatalf("%d->%d: path len %d != hop count %d", src, dst, len(path), r.HopCount(src, dst))
			}
			// Verify the path is a chain of adjacent nodes.
			cur := src
			for _, l := range path {
				from, d, dir := r.LinkInfo(l)
				if from != cur {
					t.Fatalf("%d->%d: link from %d but current %d", src, dst, from, cur)
				}
				cur = step(tor, cur, d, dir)
			}
			if cur != dst {
				t.Fatalf("%d->%d: path ends at %d", src, dst, cur)
			}
		}
	}
}

// step moves one hop along dimension d.
func step(tor *torus.Torus, node, d int, dir Dir) int {
	dims := tor.Dims()
	strides := make([]int, len(dims))
	s := 1
	for i := len(dims) - 1; i >= 0; i-- {
		strides[i] = s
		s *= dims[i]
	}
	a := dims[d]
	c := node / strides[d] % a
	var next int
	if dir == Plus {
		next = (c + 1) % a
	} else {
		next = (c - 1 + a) % a
	}
	return node + (next-c)*strides[d]
}

func TestRouteShortestPerRing(t *testing.T) {
	tor := torus.MustNew(8)
	r := NewRouter(tor)
	// 0 -> 3: distance 3 going plus.
	if h := r.HopCount(0, 3); h != 3 {
		t.Errorf("hops 0->3 = %d", h)
	}
	// 0 -> 6: distance 2 going minus.
	if h := r.HopCount(0, 6); h != 2 {
		t.Errorf("hops 0->6 = %d", h)
	}
	path := r.Route(0, 6, nil)
	_, _, dir := r.LinkInfo(path[0])
	if dir != Minus {
		t.Errorf("0->6 should start minus")
	}
	// 0 -> 4: tie; must go Plus by convention.
	path = r.Route(0, 4, nil)
	if len(path) != 4 {
		t.Fatalf("tie path length %d", len(path))
	}
	for _, l := range path {
		if _, _, dir := r.LinkInfo(l); dir != Plus {
			t.Errorf("tie link %s not Plus", r.LinkString(l))
		}
	}
}

func TestRouteDimensionOrder(t *testing.T) {
	tor := torus.MustNew(4, 4)
	r := NewRouter(tor)
	src := tor.Index(torus.Coord{0, 0})
	dst := tor.Index(torus.Coord{1, 1})
	path := r.Route(src, dst, nil)
	if len(path) != 2 {
		t.Fatalf("path len %d", len(path))
	}
	_, d0, _ := r.LinkInfo(path[0])
	_, d1, _ := r.LinkInfo(path[1])
	if d0 != 0 || d1 != 1 {
		t.Errorf("dimension order violated: %d then %d", d0, d1)
	}
}

func TestRouteSelfAndLength2(t *testing.T) {
	tor := torus.MustNew(4, 2)
	r := NewRouter(tor)
	if p := r.Route(3, 3, nil); len(p) != 0 {
		t.Errorf("self route should be empty, got %v", p)
	}
	// Crossing the length-2 dimension is one hop, always Plus.
	src := tor.Index(torus.Coord{0, 0})
	dst := tor.Index(torus.Coord{0, 1})
	p := r.Route(src, dst, nil)
	if len(p) != 1 {
		t.Fatalf("length-2 crossing path %v", p)
	}
	if _, d, dir := r.LinkInfo(p[0]); d != 1 || dir != Plus {
		t.Errorf("length-2 crossing uses dim %d dir %v", d, dir)
	}
	// And the way back is also one hop.
	if len(r.Route(dst, src, nil)) != 1 {
		t.Error("reverse length-2 crossing should be 1 hop")
	}
}

func TestLinkIDRoundTrip(t *testing.T) {
	tor := torus.MustNew(3, 5, 2)
	r := NewRouter(tor)
	for node := 0; node < tor.NumVertices(); node++ {
		for d := 0; d < 3; d++ {
			for _, dir := range []Dir{Plus, Minus} {
				id := r.LinkID(node, d, dir)
				if id < 0 || id >= r.NumLinks() {
					t.Fatalf("link id %d out of range", id)
				}
				f, dd, ddir := r.LinkInfo(id)
				if f != node || dd != d || ddir != dir {
					t.Fatalf("round trip (%d,%d,%v) -> (%d,%d,%v)", node, d, dir, f, dd, ddir)
				}
			}
		}
	}
}

func TestFurthestNode(t *testing.T) {
	tor := torus.MustNew(8, 4, 2)
	r := NewRouter(tor)
	maxHops := 0
	for v := 0; v < tor.NumVertices(); v++ {
		if h := r.HopCount(0, v); h > maxHops {
			maxHops = h
		}
	}
	f := r.FurthestNode(0)
	if h := r.HopCount(0, f); h != maxHops {
		t.Errorf("furthest node %d at %d hops, want %d", f, h, maxHops)
	}
	// Pairing is an involution on even rings.
	if r.FurthestNode(f) != 0 {
		t.Errorf("pairing not involutive: %d -> %d -> %d", 0, f, r.FurthestNode(f))
	}
}

// TestBisectionPairingLoad reproduces the static analysis behind
// Figure 3: on a 4-midplane Mira partition in the current geometry
// (nodes 16x4x4x4x2) the furthest-node pairing loads the bottleneck
// link with 8 flows; in the proposed geometry (8x8x4x4x2) with 4.
func TestBisectionPairingLoad(t *testing.T) {
	cases := []struct {
		dims torus.Shape
		want float64
	}{
		{torus.Shape{16, 4, 4, 4, 2}, 8},
		{torus.Shape{8, 8, 4, 4, 2}, 4},
		{torus.Shape{16, 12, 8, 4, 2}, 8}, // Mira 24mp current
		{torus.Shape{12, 8, 8, 8, 2}, 6},  // Mira 24mp proposed
		{torus.Shape{24, 4, 4, 4, 2}, 12}, // JUQUEEN 6mp worst
		{torus.Shape{12, 8, 4, 4, 2}, 6},  // JUQUEEN 6mp best
	}
	for _, c := range cases {
		tor := torus.MustNew(c.dims...)
		r := NewRouter(tor)
		demands := make([]Demand, tor.NumVertices())
		for v := range demands {
			demands[v] = Demand{Src: v, Dst: r.FurthestNode(v), Bytes: 1}
		}
		maxLoad, _ := MaxLoad(r.LoadMap(demands))
		if maxLoad != c.want {
			t.Errorf("%v: bottleneck load %v flows, want %v", c.dims, maxLoad, c.want)
		}
	}
}

func TestPredictTransferTime(t *testing.T) {
	tor := torus.MustNew(16, 4, 4, 4, 2)
	r := NewRouter(tor)
	demands := make([]Demand, tor.NumVertices())
	const bytes = 2.147e9
	for v := range demands {
		demands[v] = Demand{Src: v, Dst: r.FurthestNode(v), Bytes: bytes}
	}
	got := r.PredictTransferTime(demands, 2e9)
	want := 8 * bytes / 2e9
	if got != want {
		t.Errorf("predicted time %v, want %v", got, want)
	}
}

func TestPredictTransferTimePanics(t *testing.T) {
	tor := torus.MustNew(4)
	r := NewRouter(tor)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-positive capacity")
		}
	}()
	r.PredictTransferTime(nil, 0)
}

func TestLoadConservation(t *testing.T) {
	// Total load over links equals sum over demands of bytes*hops.
	tor := torus.MustNew(5, 3, 2)
	r := NewRouter(tor)
	demands := []Demand{{0, 7, 3}, {4, 29, 1}, {12, 12, 9}, {1, 2, 2}}
	load := r.LoadMap(demands)
	total := 0.0
	for _, v := range load {
		total += v
	}
	want := 0.0
	for _, d := range demands {
		want += d.Bytes * float64(r.HopCount(d.Src, d.Dst))
	}
	if total != want {
		t.Errorf("total load %v, want %v", total, want)
	}
}

func BenchmarkRouteMira4MP(b *testing.B) {
	tor := torus.MustNew(16, 4, 4, 4, 2)
	r := NewRouter(tor)
	buf := make([]int, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src := i % tor.NumVertices()
		buf = r.Route(src, r.FurthestNode(src), buf[:0])
	}
}

func BenchmarkLoadMapPairing(b *testing.B) {
	tor := torus.MustNew(16, 4, 4, 4, 2)
	r := NewRouter(tor)
	demands := make([]Demand, tor.NumVertices())
	for v := range demands {
		demands[v] = Demand{Src: v, Dst: r.FurthestNode(v), Bytes: 1}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.LoadMap(demands)
	}
}
