package route

import (
	"testing"

	"netpart/internal/torus"
)

// FuzzRoute: arbitrary (shape, src, dst) combinations produce valid
// chains of adjacent hops of minimal length.
func FuzzRoute(f *testing.F) {
	f.Add(uint8(4), uint8(3), uint8(2), uint16(0), uint16(5))
	f.Add(uint8(2), uint8(2), uint8(2), uint16(7), uint16(0))
	f.Add(uint8(8), uint8(1), uint8(1), uint16(3), uint16(7))
	f.Fuzz(func(t *testing.T, a, b, c uint8, srcRaw, dstRaw uint16) {
		dims := torus.Shape{int(a%8) + 1, int(b%8) + 1, int(c%8) + 1}
		tor := torus.MustNew(dims...)
		n := tor.NumVertices()
		src := int(srcRaw) % n
		dst := int(dstRaw) % n
		r := NewRouter(tor)
		path := r.Route(src, dst, nil)
		if len(path) != r.HopCount(src, dst) {
			t.Fatalf("%v %d->%d: %d hops, want %d", dims, src, dst, len(path), r.HopCount(src, dst))
		}
		cur := src
		for _, l := range path {
			from, d, dir := r.LinkInfo(l)
			if from != cur {
				t.Fatalf("%v: discontinuous path", dims)
			}
			aLen := dims[d]
			coord := cur / stride(dims, d) % aLen
			var next int
			if dir == Plus {
				next = (coord + 1) % aLen
			} else {
				next = (coord - 1 + aLen) % aLen
			}
			cur += (next - coord) * stride(dims, d)
			if !tor.HasEdge(from, cur) && from != cur {
				t.Fatalf("%v: hop %d->%d is not an edge", dims, from, cur)
			}
		}
		if cur != dst {
			t.Fatalf("%v: path ends at %d, want %d", dims, cur, dst)
		}
	})
}

func stride(dims torus.Shape, d int) int {
	s := 1
	for i := len(dims) - 1; i > d; i-- {
		s *= dims[i]
	}
	return s
}
