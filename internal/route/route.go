// Package route implements deterministic dimension-ordered routing
// (DOR) on torus networks and static per-link load analysis. Blue
// Gene/Q's default routing is deterministic and dimension-ordered
// [12]; messages travel the shortest way around each ring, and ties
// (exactly half the ring) are broken toward the positive direction.
// The tie-break matters: under the furthest-node pairing workload every
// flow's ring distance is exactly half, so all tied traffic shares the
// positive-direction links, which is the contention regime the paper's
// bisection-pairing experiment measures.
package route

import (
	"fmt"

	"netpart/internal/torus"
)

// Dir is a link direction along a dimension.
type Dir int

const (
	// Plus is the increasing-coordinate direction.
	Plus Dir = 0
	// Minus is the decreasing-coordinate direction.
	Minus Dir = 1
)

// DisconnectedError reports a demand whose endpoints have no
// surviving route: min-hop routing found no path on the failed
// topology, or a dimension-ordered route crosses a failed link (DOR
// paths are fixed, so a failure on the path is a disconnection).
// Callers isolate it per demand or per sweep point instead of
// aborting whole grids.
type DisconnectedError struct {
	Src, Dst int
	// Routing names the discipline that failed ("dor" or "minhop").
	Routing string
}

func (e *DisconnectedError) Error() string {
	return fmt.Sprintf("route: no %s route from %d to %d (failures disconnect the endpoints)", e.Routing, e.Src, e.Dst)
}

// Router computes routes and link identifiers for one torus.
type Router struct {
	tor     *torus.Torus
	dims    torus.Shape
	strides []int
	rank    int
}

// NewRouter builds a router for the given torus.
func NewRouter(t *torus.Torus) *Router {
	dims := t.Dims()
	strides := make([]int, len(dims))
	s := 1
	for i := len(dims) - 1; i >= 0; i-- {
		strides[i] = s
		s *= dims[i]
	}
	return &Router{tor: t, dims: dims, strides: strides, rank: len(dims)}
}

// Torus returns the underlying torus.
func (r *Router) Torus() *torus.Torus { return r.tor }

// NumLinks returns the size of the directed-link ID space:
// 2 * D * N. IDs for directions that do not exist (dimensions of
// length 1, or the Minus direction of length-2 dimensions, which is
// the same physical wire as Plus) are never produced by Route.
func (r *Router) NumLinks() int {
	return 2 * r.rank * r.tor.NumVertices()
}

// LinkID returns the directed link leaving node `from` along dimension
// d in direction dir.
func (r *Router) LinkID(from, d int, dir Dir) int {
	return (from*r.rank+d)*2 + int(dir)
}

// LinkInfo inverts LinkID, returning the source node, dimension and
// direction.
func (r *Router) LinkInfo(id int) (from, d int, dir Dir) {
	dir = Dir(id & 1)
	id >>= 1
	return id / r.rank, id % r.rank, dir
}

// LinkString renders a link for diagnostics, e.g. "n42 dim2+".
func (r *Router) LinkString(id int) string {
	from, d, dir := r.LinkInfo(id)
	sign := "+"
	if dir == Minus {
		sign = "-"
	}
	return fmt.Sprintf("n%d dim%d%s", from, d, sign)
}

// Route appends the directed link IDs of the DOR path from src to dst
// to buf and returns it. Dimensions are traversed in index order; in
// each ring the shorter way is taken, with ties (distance exactly
// half the ring) broken toward Plus. src == dst yields an empty path.
func (r *Router) Route(src, dst int, buf []int) []int {
	if src < 0 || src >= r.tor.NumVertices() || dst < 0 || dst >= r.tor.NumVertices() {
		panic(fmt.Sprintf("route: node out of range: %d -> %d", src, dst))
	}
	cur := src
	for d := 0; d < r.rank; d++ {
		a := r.dims[d]
		if a == 1 {
			continue
		}
		cc := cur / r.strides[d] % a
		dc := dst / r.strides[d] % a
		if cc == dc {
			continue
		}
		delta := dc - cc
		if delta < 0 {
			delta += a
		}
		var dir Dir
		var steps int
		switch {
		case a == 2:
			dir, steps = Plus, 1
		case 2*delta < a:
			dir, steps = Plus, delta
		case 2*delta > a:
			dir, steps = Minus, a-delta
		default: // tie: exactly half the ring
			dir, steps = Plus, delta
		}
		for s := 0; s < steps; s++ {
			buf = append(buf, r.LinkID(cur, d, dir))
			c := cur / r.strides[d] % a
			var next int
			if dir == Plus {
				next = c + 1
				if next == a {
					next = 0
				}
			} else {
				next = c - 1
				if next < 0 {
					next = a - 1
				}
			}
			cur += (next - c) * r.strides[d]
		}
	}
	if cur != dst {
		panic(fmt.Sprintf("route: DOR from %d ended at %d, want %d", src, cur, dst))
	}
	return buf
}

// HopCount returns the number of hops on the DOR path (equals the
// torus graph distance, since DOR takes the shorter way per ring).
func (r *Router) HopCount(src, dst int) int {
	h := 0
	for d := 0; d < r.rank; d++ {
		a := r.dims[d]
		if a == 1 {
			continue
		}
		sc := src / r.strides[d] % a
		dc := dst / r.strides[d] % a
		delta := dc - sc
		if delta < 0 {
			delta += a
		}
		if delta > a-delta {
			delta = a - delta
		}
		h += delta
	}
	return h
}

// FurthestNode returns the node at maximal DOR hop distance from src:
// offset by half of every ring (rounded down), the pairing scheme of
// the bisection-pairing benchmark [12].
func (r *Router) FurthestNode(src int) int {
	dst := 0
	for d := 0; d < r.rank; d++ {
		a := r.dims[d]
		c := src / r.strides[d] % a
		nc := (c + a/2) % a
		dst += nc * r.strides[d]
	}
	return dst
}

// Demand is a point-to-point traffic demand in bytes.
type Demand struct {
	Src, Dst int
	Bytes    float64
}

// LoadMap accumulates per-link byte loads for a set of demands under
// DOR routing. The returned slice is indexed by LinkID.
func (r *Router) LoadMap(demands []Demand) []float64 {
	load := make([]float64, r.NumLinks())
	buf := make([]int, 0, 64)
	for _, d := range demands {
		buf = r.Route(d.Src, d.Dst, buf[:0])
		for _, l := range buf {
			load[l] += d.Bytes
		}
	}
	return load
}

// MaxLoad returns the maximum entry of a load map and one link
// achieving it (-1 when all loads are zero).
func MaxLoad(load []float64) (float64, int) {
	maxV, maxI := 0.0, -1
	for i, v := range load {
		if v > maxV {
			maxV, maxI = v, i
		}
	}
	return maxV, maxI
}

// PredictTransferTime returns the static contention-model estimate for
// completing all demands simultaneously on links of the given
// capacity (bytes/sec): the bottleneck link's total load divided by
// its capacity. This is the model the paper's §4.1 predictions use.
func (r *Router) PredictTransferTime(demands []Demand, capacityBps float64) float64 {
	if capacityBps <= 0 {
		panic("route: non-positive capacity")
	}
	maxV, _ := MaxLoad(r.LoadMap(demands))
	return maxV / capacityBps
}
