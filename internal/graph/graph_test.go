package graph

import (
	"math"
	"testing"
)

func cycle(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, 1)
	}
	return g
}

func complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, 1)
		}
	}
	return g
}

func TestBasicOps(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2.5)
	g.AddEdge(0, 1, 0.5) // merged
	g.AddEdge(2, 3, 1)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge 0-1 missing")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge 0-2")
	}
	if w := g.EdgeWeight(0, 1); w != 3.0 {
		t.Errorf("EdgeWeight = %v, want 3", w)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if g.TotalWeight() != 4.0 {
		t.Errorf("TotalWeight = %v", g.TotalWeight())
	}
	if d := g.Degree(0); d != 3.0 {
		t.Errorf("Degree(0) = %v", d)
	}
	if g.EdgeWeight(0, 99) != 0 {
		t.Error("out-of-range EdgeWeight should be 0")
	}
}

func TestAddEdgePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"self-loop": func() { New(2).AddEdge(1, 1, 1) },
		"range":     func() { New(2).AddEdge(0, 5, 1) },
		"weight":    func() { New(2).AddEdge(0, 1, 0) },
		"negative":  func() { New(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNeighborsDeterministic(t *testing.T) {
	g := complete(5)
	var order []int
	g.Neighbors(2, func(v int, w float64) { order = append(order, v) })
	want := []int{0, 1, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("Neighbors order = %v, want %v", order, want)
		}
	}
}

func TestIsRegular(t *testing.T) {
	if d, ok := cycle(5).IsRegular(); !ok || d != 2 {
		t.Errorf("C5 regular = (%v, %v)", d, ok)
	}
	g := New(3)
	g.AddEdge(0, 1, 1)
	if _, ok := g.IsRegular(); ok {
		t.Error("path should not be regular")
	}
	if _, ok := New(0).IsRegular(); !ok {
		t.Error("empty graph is vacuously regular")
	}
}

func TestConnected(t *testing.T) {
	if !cycle(6).Connected() {
		t.Error("C6 should be connected")
	}
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if g.Connected() {
		t.Error("two components reported connected")
	}
	if !New(1).Connected() || !New(0).Connected() {
		t.Error("trivial graphs are connected")
	}
}

func TestCutAndInterior(t *testing.T) {
	g := cycle(6)
	set := []bool{true, true, true, false, false, false}
	if c := g.CutWeight(set); c != 2 {
		t.Errorf("cut = %v, want 2", c)
	}
	if in := g.InteriorWeight(set); in != 2 {
		t.Errorf("interior = %v, want 2", in)
	}
	// Regularity identity: k|A| = 2 interior + cut.
	if 2*3 != 2*2+2 {
		t.Error("identity check arithmetic")
	}
}

func TestMinPerimeterCycle(t *testing.T) {
	g := cycle(8)
	for tt := 1; tt <= 4; tt++ {
		got, set, err := g.MinPerimeter(tt)
		if err != nil {
			t.Fatal(err)
		}
		if got != 2 {
			t.Errorf("C8 min perimeter t=%d: %v, want 2 (contiguous arc)", tt, got)
		}
		if g.CutWeight(set) != got {
			t.Errorf("witness set does not achieve reported cut")
		}
		n := 0
		for _, b := range set {
			if b {
				n++
			}
		}
		if n != tt {
			t.Errorf("witness has %d vertices, want %d", n, tt)
		}
	}
}

func TestMinPerimeterComplete(t *testing.T) {
	g := complete(6)
	for tt := 1; tt <= 3; tt++ {
		got, _, err := g.MinPerimeter(tt)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(tt * (6 - tt))
		if got != want {
			t.Errorf("K6 min perimeter t=%d: %v, want %v", tt, got, want)
		}
	}
}

func TestMinPerimeterEdgeCases(t *testing.T) {
	g := cycle(4)
	if w, _, err := g.MinPerimeter(0); err != nil || w != 0 {
		t.Errorf("t=0: %v, %v", w, err)
	}
	if w, _, err := g.MinPerimeter(4); err != nil || w != 0 {
		t.Errorf("t=n: %v, %v", w, err)
	}
	if _, _, err := g.MinPerimeter(-1); err == nil {
		t.Error("t=-1 should fail")
	}
	if _, _, err := g.MinPerimeter(5); err == nil {
		t.Error("t>n should fail")
	}
}

func TestMinPerimeterTooLarge(t *testing.T) {
	g := cycle(60)
	if _, _, err := g.MinPerimeter(30); err == nil {
		t.Error("C(60,30) should exceed the enumeration bound")
	}
}

func TestSmallSetExpansionCycle(t *testing.T) {
	// For C_n, the best small set of size <= t is a contiguous arc of
	// size t: cut 2, degree sum 2t, expansion 1/t.
	g := cycle(10)
	for tt := 1; tt <= 5; tt++ {
		got, err := g.SmallSetExpansion(tt)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / float64(tt)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("SSE(C10, %d) = %v, want %v", tt, got, want)
		}
	}
	if _, err := g.SmallSetExpansion(0); err == nil {
		t.Error("t=0 should fail")
	}
}

func TestBisectionHypercube(t *testing.T) {
	// Q3 as explicit graph; bisection = 4.
	g := New(8)
	for u := 0; u < 8; u++ {
		for b := 0; b < 3; b++ {
			v := u ^ (1 << b)
			if u < v {
				g.AddEdge(u, v, 1)
			}
		}
	}
	w, _, err := g.Bisection()
	if err != nil {
		t.Fatal(err)
	}
	if w != 4 {
		t.Errorf("Q3 bisection = %v, want 4", w)
	}
}

func TestWeightedCut(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 5)
	g.AddEdge(3, 0, 1)
	// Min bisection should cut the two weight-1 edges.
	w, set, err := g.Bisection()
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Errorf("weighted bisection = %v, want 2", w)
	}
	if !(set[0] == set[1] && set[2] == set[3] && set[0] != set[2]) {
		t.Errorf("bisection witness %v should separate {0,1} from {2,3}", set)
	}
}

func TestNumSubsets(t *testing.T) {
	if NumSubsets(10, 5).Int64() != 252 {
		t.Error("C(10,5) != 252")
	}
}

func BenchmarkMinPerimeter16(b *testing.B) {
	g := cycle(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.MinPerimeter(8); err != nil {
			b.Fatal(err)
		}
	}
}
