// Package graph provides a small generic weighted-graph representation
// together with exact, enumeration-based solvers for the
// edge-isoperimetric problem and small-set expansion. These
// brute-force solvers are the ground-truth oracle against which the
// closed-form bounds of package iso are validated; they are practical
// only for small instances (tens of vertices), which is exactly their
// role here.
package graph

import (
	"fmt"
	"math"
	"math/big"
	"sort"
)

// Graph is an undirected weighted graph on vertices 0..n-1.
// Parallel edges are merged by weight accumulation; self-loops are
// rejected.
type Graph struct {
	n   int
	adj []map[int]float64
}

// New creates an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	g := &Graph{n: n, adj: make([]map[int]float64, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]float64)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge adds weight w to the edge {u, v}. Zero or negative weights
// and self-loops are rejected.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if w <= 0 {
		panic(fmt.Sprintf("graph: non-positive edge weight %v", w))
	}
	g.adj[u][v] += w
	g.adj[v][u] += w
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// EdgeWeight returns the weight of edge {u,v}, or 0 if absent.
func (g *Graph) EdgeWeight(u, v int) float64 {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0
	}
	return g.adj[u][v]
}

// Degree returns the weighted degree of vertex u.
func (g *Graph) Degree(u int) float64 {
	d := 0.0
	for _, w := range g.adj[u] {
		d += w
	}
	return d
}

// NumEdges returns the number of distinct (unweighted) edges.
func (g *Graph) NumEdges() int {
	c := 0
	for u := range g.adj {
		c += len(g.adj[u])
	}
	return c / 2
}

// TotalWeight returns the sum of edge weights.
func (g *Graph) TotalWeight() float64 {
	w := 0.0
	for u := range g.adj {
		for _, ew := range g.adj[u] {
			w += ew
		}
	}
	return w / 2
}

// Neighbors calls fn for every neighbour of u, in ascending vertex
// order (deterministic iteration).
func (g *Graph) Neighbors(u int, fn func(v int, w float64)) {
	keys := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		keys = append(keys, v)
	}
	sort.Ints(keys)
	for _, v := range keys {
		fn(v, g.adj[u][v])
	}
}

// IsRegular reports whether all vertices have the same weighted degree
// and returns that degree.
func (g *Graph) IsRegular() (float64, bool) {
	if g.n == 0 {
		return 0, true
	}
	d0 := g.Degree(0)
	for u := 1; u < g.n; u++ {
		if math.Abs(g.Degree(u)-d0) > 1e-9 {
			return 0, false
		}
	}
	return d0, true
}

// Connected reports whether the graph is connected (true for n <= 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == g.n
}

// CutWeight returns the total weight of edges with exactly one endpoint
// in the set (the perimeter |E(A, A-complement)| in the unweighted
// case).
func (g *Graph) CutWeight(set []bool) float64 {
	if len(set) != g.n {
		panic("graph: set length mismatch")
	}
	w := 0.0
	for u := 0; u < g.n; u++ {
		if !set[u] {
			continue
		}
		for v, ew := range g.adj[u] {
			if !set[v] {
				w += ew
			}
		}
	}
	return w
}

// InteriorWeight returns the total weight of edges with both endpoints
// in the set.
func (g *Graph) InteriorWeight(set []bool) float64 {
	w := 0.0
	for u := 0; u < g.n; u++ {
		if !set[u] {
			continue
		}
		for v, ew := range g.adj[u] {
			if set[v] && v > u {
				w += ew
			}
		}
	}
	return w
}

// maxSubsets bounds the enumeration work of the exact solvers; beyond
// it MinPerimeter returns an error instead of running for hours.
const maxSubsets = 30_000_000

// NumSubsets returns C(n, t) as a big.Int.
func NumSubsets(n, t int) *big.Int {
	return new(big.Int).Binomial(int64(n), int64(t))
}

// MinPerimeter solves the edge-isoperimetric problem exactly: the
// minimal cut weight over all vertex subsets of size exactly t,
// together with one minimizing subset. It enumerates all C(n, t)
// subsets and returns an error if that exceeds the package work bound.
func (g *Graph) MinPerimeter(t int) (float64, []bool, error) {
	if t < 0 || t > g.n {
		return 0, nil, fmt.Errorf("graph: subset size %d out of range [0, %d]", t, g.n)
	}
	if t == 0 || t == g.n {
		return 0, make([]bool, g.n), nil
	}
	if NumSubsets(g.n, t).Cmp(big.NewInt(maxSubsets)) > 0 {
		return 0, nil, fmt.Errorf("graph: C(%d,%d) subsets exceed enumeration bound", g.n, t)
	}
	best := math.Inf(1)
	bestSet := make([]bool, g.n)
	set := make([]bool, g.n)
	idx := make([]int, t)
	for i := range idx {
		idx[i] = i
		set[i] = true
	}
	for {
		if w := g.CutWeight(set); w < best {
			best = w
			copy(bestSet, set)
		}
		// Advance to next combination.
		i := t - 1
		for i >= 0 && idx[i] == g.n-t+i {
			i--
		}
		if i < 0 {
			break
		}
		set[idx[i]] = false
		idx[i]++
		set[idx[i]] = true
		for j := i + 1; j < t; j++ {
			set[idx[j]] = false
			idx[j] = idx[j-1] + 1
			set[idx[j]] = true
		}
	}
	return best, bestSet, nil
}

// SmallSetExpansion returns h_t(G) = min over subsets A with |A| <= t
// of cut(A) / (2*interior(A) + cut(A)) — the denominator equals the sum
// of degrees of A, following the paper's §2 definition. Subsets with
// zero degree sum are skipped.
func (g *Graph) SmallSetExpansion(t int) (float64, error) {
	if t < 1 || t > g.n {
		return 0, fmt.Errorf("graph: SSE size bound %d out of range [1, %d]", t, g.n)
	}
	best := math.Inf(1)
	for size := 1; size <= t; size++ {
		if NumSubsets(g.n, size).Cmp(big.NewInt(maxSubsets)) > 0 {
			return 0, fmt.Errorf("graph: C(%d,%d) subsets exceed enumeration bound", g.n, size)
		}
		err := g.forEachSubset(size, func(set []bool) {
			cut := g.CutWeight(set)
			in := g.InteriorWeight(set)
			den := 2*in + cut
			if den <= 0 {
				return
			}
			if v := cut / den; v < best {
				best = v
			}
		})
		if err != nil {
			return 0, err
		}
	}
	return best, nil
}

// forEachSubset enumerates all subsets of the given size.
func (g *Graph) forEachSubset(size int, fn func(set []bool)) error {
	set := make([]bool, g.n)
	idx := make([]int, size)
	for i := range idx {
		idx[i] = i
		set[i] = true
	}
	for {
		fn(set)
		i := size - 1
		for i >= 0 && idx[i] == g.n-size+i {
			i--
		}
		if i < 0 {
			return nil
		}
		set[idx[i]] = false
		idx[i]++
		set[idx[i]] = true
		for j := i + 1; j < size; j++ {
			set[idx[j]] = false
			idx[j] = idx[j-1] + 1
			set[idx[j]] = true
		}
	}
}

// Bisection returns the minimal cut over subsets of size floor(n/2)
// (the bisection width, weighted).
func (g *Graph) Bisection() (float64, []bool, error) {
	return g.MinPerimeter(g.n / 2)
}
