package experiments

import (
	"context"
	"strings"
	"testing"

	"netpart/internal/bgq"
)

func TestSequoiaAnalysis(t *testing.T) {
	tab, err := Config{}.SequoiaAnalysis(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("Sequoia should have improvable sizes")
	}
	// Sanity-check the 4-midplane row: worst 4x1x1x1 (256), best
	// 2x2x1x1 (512), 2x speedup — the same structure as Mira/JUQUEEN.
	found := false
	for _, r := range tab.Rows {
		if r[1] == "4" {
			found = true
			want := []string{"2048", "4", "4x1x1x1", "256", "2x2x1x1", "512", "2x"}
			for i := range want {
				if r[i] != want[i] {
					t.Errorf("4-midplane row col %d = %q, want %q", i, r[i], want[i])
				}
			}
		}
	}
	if !found {
		t.Error("missing 4-midplane row")
	}
	// Every listed speedup is strictly greater than 1 and at most the
	// best/worst bisection ratio cap seen on BGQ sizes (3x at most for
	// this grid).
	seq := bgq.Sequoia()
	for _, r := range tab.Rows {
		if !strings.HasSuffix(r[6], "x") {
			t.Errorf("speedup cell %q", r[6])
		}
	}
	// The analysis covers all feasible sizes where best != worst.
	count := 0
	for _, size := range seq.FeasibleSizes() {
		best, _ := seq.Best(size)
		worst, _ := seq.Worst(size)
		if best.BisectionBW() != worst.BisectionBW() {
			count++
		}
	}
	if count != len(tab.Rows) {
		t.Errorf("table has %d rows, expected %d improvable sizes", len(tab.Rows), count)
	}
}
