package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestOtherTopologies(t *testing.T) {
	tab, err := Config{}.OtherTopologies(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	out := tab.Render()
	for _, want := range []string{"K computer", "Titan", "Pleiades", "HyperX", "Harper", "Lindsey", "weighted"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Every row has a numeric bisection.
	for _, r := range tab.Rows {
		if strings.HasPrefix(r[3], "n/a") {
			t.Errorf("%s: no bisection computed", r[0])
		}
	}
}
