package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"netpart/internal/bgq"
	"netpart/internal/model"
)

func TestTable1Contents(t *testing.T) {
	tab := genTable(t, Config.Table1)
	if len(tab.Rows) != 4 {
		t.Fatalf("Table 1 has %d rows, want 4", len(tab.Rows))
	}
	// First row: 2048 nodes, 4 midplanes, 4x1x1x1/256 -> 2x2x1x1/512.
	r := tab.Rows[0]
	want := []string{"2048", "4", "4x1x1x1", "256", "2x2x1x1", "512"}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("Table 1 row 0 col %d = %q, want %q", i, r[i], want[i])
		}
	}
	if !strings.Contains(tab.Render(), "3x2x2x2") {
		t.Error("Table 1 should contain the 24-midplane proposal")
	}
}

func TestTable2Contents(t *testing.T) {
	tab := genTable(t, Config.Table2)
	if len(tab.Rows) != 6 {
		t.Fatalf("Table 2 has %d rows, want 6", len(tab.Rows))
	}
	last := tab.Rows[5]
	want := []string{"12288", "24", "6x2x2x1", "1024", "3x2x2x2", "2048"}
	for i := range want {
		if last[i] != want[i] {
			t.Errorf("Table 2 last row col %d = %q, want %q", i, last[i], want[i])
		}
	}
}

func TestTable5RowCount(t *testing.T) {
	tab := genTable(t, Config.Table5)
	// Paper Table 5 lists 24 distinct midplane counts.
	if len(tab.Rows) != 24 {
		t.Errorf("Table 5 has %d rows, want 24", len(tab.Rows))
	}
	// The 27-midplane row exists only for JUQUEEN-54 (3x3x3x1, BW 2304).
	found := false
	for _, r := range tab.Rows {
		if r[1] == "27" {
			found = true
			if r[2] != "" || r[4] != "3x3x3x1" || r[5] != "2304" || r[6] != "" {
				t.Errorf("27-midplane row = %v", r)
			}
		}
	}
	if !found {
		t.Error("missing 27-midplane row")
	}
}

func TestTables6And7MatchCatalog(t *testing.T) {
	if n := len(genTable(t, Config.Table6).Rows); n != 10 {
		t.Errorf("Table 6 rows = %d, want 10", n)
	}
	if n := len(genTable(t, Config.Table7).Rows); n != 19 {
		t.Errorf("Table 7 rows = %d, want 19", n)
	}
}

func TestFigure1Endpoints(t *testing.T) {
	f := genBW(t, Config.Figure1)
	if len(f.X) != 10 {
		t.Fatalf("Figure 1 has %d x-values, want 10", len(f.X))
	}
	// Full machine: both series at 6144.
	last := len(f.X) - 1
	if f.Series[0].Y[last] != 6144 || f.Series[1].Y[last] != 6144 {
		t.Errorf("Figure 1 full-machine BW = %v/%v, want 6144", f.Series[0].Y[last], f.Series[1].Y[last])
	}
	// 16 midplanes: current 1024, proposed 2048.
	for i, x := range f.X {
		if x == 16 {
			if f.Series[0].Y[i] != 1024 || f.Series[1].Y[i] != 2048 {
				t.Errorf("Figure 1 @16mp = %v/%v", f.Series[0].Y[i], f.Series[1].Y[i])
			}
		}
	}
	if !strings.Contains(f.Table().Render(), "Midplanes") || !strings.Contains(f.Chart().Render(), "#") {
		t.Error("figure rendering broken")
	}
}

func TestFigure2RingSpikes(t *testing.T) {
	f := genBW(t, Config.Figure2)
	// Ring-shaped sizes (5, 7 midplanes) stay at 256 in both series.
	for i, x := range f.X {
		if x == 5 || x == 7 {
			if f.Series[0].Y[i] != 256 || f.Series[1].Y[i] != 256 {
				t.Errorf("ring size %d should have BW 256 on both series", x)
			}
		}
	}
	// Best-case is monotone-dominating worst-case.
	for i := range f.X {
		if f.Series[1].Y[i] < f.Series[0].Y[i] {
			t.Errorf("best < worst at %d midplanes", f.X[i])
		}
	}
}

func TestFigure7HypotheticalMachinesDominate(t *testing.T) {
	f := genBW(t, Config.Figure7)
	byLabel := map[string][]float64{}
	for _, s := range f.Series {
		byLabel[s.Label] = s.Y
	}
	jq := byLabel["JUQUEEN"]
	j54 := byLabel["JUQUEEN-54"]
	j48 := byLabel["JUQUEEN-48"]
	if jq == nil || j54 == nil || j48 == nil {
		t.Fatal("missing series")
	}
	for i, x := range f.X {
		// Where both are feasible, the hypothetical machines are at
		// least as good as JUQUEEN (paper §5).
		if !math.IsNaN(jq[i]) && !math.IsNaN(j54[i]) && j54[i] < jq[i] {
			t.Errorf("JUQUEEN-54 worse than JUQUEEN at %d midplanes", x)
		}
		if !math.IsNaN(jq[i]) && !math.IsNaN(j48[i]) && j48[i] < jq[i] {
			t.Errorf("JUQUEEN-48 worse than JUQUEEN at %d midplanes", x)
		}
		// At 48 midplanes JUQUEEN-48 is strictly better (3072 vs 2048).
		if x == 48 && !(j48[i] == 3072 && jq[i] == 2048) {
			t.Errorf("48-midplane row: J-48 %v, JQ %v", j48[i], jq[i])
		}
		// At 54 midplanes only JUQUEEN-54 is feasible, at 4608.
		if x == 54 && !(j54[i] == 4608 && math.IsNaN(jq[i])) {
			t.Errorf("54-midplane row: J-54 %v, JQ %v", j54[i], jq[i])
		}
	}
}

// TestFigure3Shape verifies the headline result of the paper: the
// proposed Mira partitions complete the pairing benchmark about twice
// as fast at 4/8/16 midplanes and about 1.33x as fast at 24.
func TestFigure3Shape(t *testing.T) {
	fig, err := Config{}.Figure3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.PointsA) != 4 {
		t.Fatalf("%d points", len(fig.PointsA))
	}
	for i, mp := range []int{4, 8, 16} {
		r := fig.PointsA[i].SimSec / fig.PointsB[i].SimSec
		if math.Abs(r-2.0) > 0.01 {
			t.Errorf("%d mp: speedup %v, want 2.0", mp, r)
		}
	}
	r24 := fig.PointsA[3].SimSec / fig.PointsB[3].SimSec
	if math.Abs(r24-4.0/3.0) > 0.01 {
		t.Errorf("24 mp: speedup %v, want 1.33", r24)
	}
	// Simulation agrees with the static bottleneck model.
	for _, pt := range append(append([]PairingPoint{}, fig.PointsA...), fig.PointsB...) {
		if math.Abs(pt.SimSec-pt.StaticSec)/pt.StaticSec > 1e-6 {
			t.Errorf("%v: sim %v vs static %v", pt.Partition, pt.SimSec, pt.StaticSec)
		}
	}
	// Absolute scale: paper's current-geometry bars sit near 190-200 s;
	// the fluid model gives 223 s (26 rounds x 8 flows x 2.1472 GB / 2 GB/s).
	if math.Abs(fig.PointsA[0].SimSec-223.3) > 1.0 {
		t.Errorf("4 mp current time %v, want ~223.3", fig.PointsA[0].SimSec)
	}
	if fig.MaxSpeedup() < 1.9 {
		t.Errorf("max speedup %v, want ~2", fig.MaxSpeedup())
	}
}

// TestFigure4Shape verifies the JUQUEEN pairing shape: worst-case is
// 2x best-case everywhere, and the 6/12-midplane sizes (per-node
// bisection 50% lower, Figure 4's caption) are 1.5x slower than the
// 4/8/16-midplane sizes in the same series.
func TestFigure4Shape(t *testing.T) {
	fig, err := Config{}.Figure4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mps := []int{4, 6, 8, 12, 16}
	times := map[int]PairingPoint{}
	for i, mp := range mps {
		times[mp] = fig.PointsA[i]
		r := fig.PointsA[i].SimSec / fig.PointsB[i].SimSec
		if math.Abs(r-2.0) > 0.01 {
			t.Errorf("%d mp: worst/best ratio %v, want 2.0", mp, r)
		}
	}
	if r := times[6].SimSec / times[4].SimSec; math.Abs(r-1.5) > 0.01 {
		t.Errorf("6mp/4mp worst-case ratio %v, want 1.5", r)
	}
	if times[4].SimSec != times[8].SimSec || times[8].SimSec != times[16].SimSec {
		t.Errorf("4/8/16 midplane worst-case times should match: %v %v %v",
			times[4].SimSec, times[8].SimSec, times[16].SimSec)
	}
}

func TestSimulatePairingFullRoundsConsistent(t *testing.T) {
	// On a small partition, simulating every round must agree with the
	// one-round-scaled fast path.
	p := bgq.MustPartition(1, 1, 1, 1)
	cfg := model.PairingConfig{Partition: p, Rounds: 3, ChunkBytes: 1e8, ChunksPerRound: 2}
	fast, err := SimulatePairing(context.Background(), cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	full, err := SimulatePairing(context.Background(), cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast-full)/full > 1e-9 {
		t.Errorf("fast %v vs full %v", fast, full)
	}
}

func TestTable3Render(t *testing.T) {
	tab := genTable(t, Config.Table3)
	if len(tab.Rows) != 4 {
		t.Fatalf("Table 3 rows = %d", len(tab.Rows))
	}
	r := tab.Rows[0]
	want := []string{"2048", "4", "31213", "16", "15.24", "32928"}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("Table 3 row 0 col %d = %q, want %q", i, r[i], want[i])
		}
	}
	r = tab.Rows[3]
	want = []string{"12288", "24", "117649", "16", "9.57", "21952"}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("Table 3 row 3 col %d = %q, want %q", i, r[i], want[i])
		}
	}
}

func TestTable4Render(t *testing.T) {
	tab := genTable(t, Config.Table4)
	if len(tab.Rows) != 3 {
		t.Fatalf("Table 4 rows = %d", len(tab.Rows))
	}
	// Row 0: 1024 nodes, 2 mp, 2401 ranks, 4 cores, 2.34, BW 256/256.
	r := tab.Rows[0]
	want := []string{"1024", "2", "2401", "4", "2.34", "256", "256"}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("Table 4 row 0 col %d = %q, want %q", i, r[i], want[i])
		}
	}
	r = tab.Rows[2]
	want = []string{"4096", "8", "9604", "4", "2.34", "512", "1024"}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("Table 4 row 2 col %d = %q, want %q", i, r[i], want[i])
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	fig, err := Config{}.Figure5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.PointsA) != 4 {
		t.Fatalf("points = %d", len(fig.PointsA))
	}
	for i := range fig.PointsA {
		a, b := fig.PointsA[i], fig.PointsB[i]
		ratio := a.Prediction.CommSec / b.Prediction.CommSec
		if ratio < 1.05 || ratio > 2.0 {
			t.Errorf("%d mp: comm speedup %v outside (1.05, 2.0)", a.Midplanes, ratio)
		}
		// Computation identical across geometries of the same size.
		if a.Prediction.ComputeSec != b.Prediction.ComputeSec {
			t.Errorf("%d mp: compute differs between geometries", a.Midplanes)
		}
	}
	if !strings.Contains(fig.Table().Render(), "comm speedup") {
		t.Error("table rendering")
	}
}

func TestFigure6Shape(t *testing.T) {
	fig, err := Config{}.Figure6(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.PointsA) != 3 {
		t.Fatalf("points = %d", len(fig.PointsA))
	}
	// 2-midplane entries identical (single geometry).
	if fig.PointsA[0].Prediction.CommSec != fig.PointsB[0].Prediction.CommSec {
		t.Error("2-midplane current and proposed should coincide")
	}
	if !fig.PointsA[0].Prediction.MemoryBound {
		t.Error("2-midplane run should be memory bound")
	}
	// Strong scaling: proposed 2->8 near-linear, current sub-linear.
	sCur := fig.PointsA[0].Prediction.CommSec / fig.PointsA[2].Prediction.CommSec
	sProp := fig.PointsB[0].Prediction.CommSec / fig.PointsB[2].Prediction.CommSec
	if sProp <= sCur {
		t.Errorf("proposed scaling %v should beat current %v", sProp, sCur)
	}
	if sProp < 3.5 {
		t.Errorf("proposed 2->8 speedup %v, want near-linear", sProp)
	}
}

func TestChartRender(t *testing.T) {
	fig, err := Config{}.Figure3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := fig.Chart().Render()
	if !strings.Contains(out, "current") || !strings.Contains(out, "proposed") {
		t.Error("chart labels missing")
	}
}
