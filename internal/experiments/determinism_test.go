package experiments

import (
	"testing"
)

// TestParallelDriversMatchSequential pins down the worker-pool
// contract: every generator that fans out over the pool must render
// byte-identical output whether it runs sequentially (Workers=1) or on
// a heavily oversubscribed pool. Rendered tables are the golden form —
// they capture row order, cell formatting, and every numeric value.
func TestParallelDriversMatchSequential(t *testing.T) {
	gens := []struct {
		name string
		run  func() (string, error)
	}{
		{"Figure3", func() (string, error) {
			f, err := Figure3(false)
			if err != nil {
				return "", err
			}
			return f.Table().Render(), nil
		}},
		{"Figure4", func() (string, error) {
			f, err := Figure4(false)
			if err != nil {
				return "", err
			}
			return f.Table().Render(), nil
		}},
		{"Table5", func() (string, error) { return Table5().Render(), nil }},
		{"Table6", func() (string, error) { return Table6().Render(), nil }},
		{"Table7", func() (string, error) { return Table7().Render(), nil }},
		{"Figure1", func() (string, error) { return Figure1().Table().Render(), nil }},
		{"Figure2", func() (string, error) { return Figure2().Table().Render(), nil }},
	}
	defer func(old int) { Workers = old }(Workers)
	for _, g := range gens {
		t.Run(g.name, func(t *testing.T) {
			Workers = 1
			seq, err := g.run()
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			Workers = 8
			par, err := g.run()
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if seq != par {
				t.Errorf("parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
			}
		})
	}
}

// TestForEachErrorOrder verifies the pool surfaces the lowest-index
// error, matching what a sequential loop reports first.
func TestForEachErrorOrder(t *testing.T) {
	defer func(old int) { Workers = old }(Workers)
	for _, workers := range []int{1, 4} {
		Workers = workers
		err := forEach(10, func(i int) error {
			if i == 3 || i == 7 {
				return errIndexed(i)
			}
			return nil
		})
		if err == nil || err.Error() != "unit 3 failed" {
			t.Errorf("Workers=%d: err = %v, want unit 3 failed", workers, err)
		}
	}
}

type errIndexed int

func (e errIndexed) Error() string { return "unit " + string(rune('0'+int(e))) + " failed" }
