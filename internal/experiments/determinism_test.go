package experiments

import (
	"context"
	"testing"
)

// TestParallelDriversMatchSequential pins down the worker-pool
// contract: every generator that fans out over the pool must render
// byte-identical output whether it runs sequentially (Workers=1) or on
// a heavily oversubscribed pool. Rendered tables are the golden form —
// they capture row order, cell formatting, and every numeric value.
func TestParallelDriversMatchSequential(t *testing.T) {
	ctx := context.Background()
	gens := []struct {
		name string
		run  func(c Config) (string, error)
	}{
		{"Figure3", func(c Config) (string, error) {
			f, err := c.Figure3(ctx)
			if err != nil {
				return "", err
			}
			return f.Table().Render(), nil
		}},
		{"Figure4", func(c Config) (string, error) {
			f, err := c.Figure4(ctx)
			if err != nil {
				return "", err
			}
			return f.Table().Render(), nil
		}},
		{"Table5", func(c Config) (string, error) {
			tab, err := c.Table5(ctx)
			return tab.Render(), err
		}},
		{"Table6", func(c Config) (string, error) {
			tab, err := c.Table6(ctx)
			return tab.Render(), err
		}},
		{"Table7", func(c Config) (string, error) {
			tab, err := c.Table7(ctx)
			return tab.Render(), err
		}},
		{"Figure1", func(c Config) (string, error) {
			f, err := c.Figure1(ctx)
			if err != nil {
				return "", err
			}
			return f.Table().Render(), nil
		}},
		{"Figure2", func(c Config) (string, error) {
			f, err := c.Figure2(ctx)
			if err != nil {
				return "", err
			}
			return f.Table().Render(), nil
		}},
	}
	for _, g := range gens {
		t.Run(g.name, func(t *testing.T) {
			seq, err := g.run(Config{Workers: 1})
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			par, err := g.run(Config{Workers: 8})
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if seq != par {
				t.Errorf("parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
			}
		})
	}
}

// TestForEachErrorOrder verifies the pool surfaces the lowest-index
// error, matching what a sequential loop reports first.
func TestForEachErrorOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		c := Config{Workers: workers}
		err := c.forEach(context.Background(), 10, func(i int) error {
			if i == 3 || i == 7 {
				return errIndexed(i)
			}
			return nil
		})
		if err == nil || err.Error() != "unit 3 failed" {
			t.Errorf("Workers=%d: err = %v, want unit 3 failed", workers, err)
		}
	}
}

type errIndexed int

func (e errIndexed) Error() string { return "unit " + string(rune('0'+int(e))) + " failed" }

// TestForEachProgress verifies progress reports are serialized,
// monotone, and end at (n, n) on both the sequential and pooled paths.
func TestForEachProgress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		c := Config{Workers: workers}
		var reports [][2]int
		c.Progress = func(_ string, done, total int) { reports = append(reports, [2]int{done, total}) }
		if err := c.forEachProgress(context.Background(), 9, func(i int) error { return nil }); err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if len(reports) != 9 {
			t.Fatalf("Workers=%d: %d reports, want 9", workers, len(reports))
		}
		for i, r := range reports {
			if r[0] != i+1 || r[1] != 9 {
				t.Errorf("Workers=%d: report %d = %v, want [%d 9]", workers, i, r, i+1)
			}
		}
	}
}
