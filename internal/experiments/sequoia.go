package experiments

import (
	"context"

	"netpart/internal/tabulate"
)

// SequoiaAnalysis applies the paper's method to Sequoia (§5): the
// machine the authors analyzed but could not benchmark (it moved to
// classified work in 2013). Like JUQUEEN, its scheduler appears to
// permit all geometries the network allows, so both optimal and
// sub-optimal partitions exist for many sizes. The table lists every
// size where they differ — the improvement the analysis predicts would
// be available. Rows fan out over the worker pool (Sequoia has 143
// feasible sizes, each a full geometry enumeration).
func (c Config) SequoiaAnalysis(ctx context.Context) (tabulate.Table, error) {
	t := tabulate.Table{
		Title: "Sequoia (4x4x4x3 midplanes): sizes where allocation geometry matters",
		Headers: []string{"P (nodes)", "Midplanes", "Worst", "Worst BW", "Best", "Best BW",
			"potential speedup"},
	}
	seq, err := c.machine("sequoia")
	if err != nil {
		return t, err
	}
	sizes := seq.FeasibleSizes()
	rows, err := c.tableRows(ctx, len(sizes), func(i int) ([]any, error) {
		size := sizes[i]
		worst, best, err := extremes(seq, size)
		if err != nil {
			return nil, err
		}
		if worst.BisectionBW() == best.BisectionBW() {
			return nil, nil
		}
		ratio := float64(best.BisectionBW()) / float64(worst.BisectionBW())
		return []any{worst.Nodes(), size, worst.String(), worst.BisectionBW(),
			best.String(), best.BisectionBW(), tabulate.FormatFloat(ratio) + "x"}, nil
	})
	if err != nil {
		return t, err
	}
	addRows(&t, rows)
	return t, nil
}
