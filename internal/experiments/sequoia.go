package experiments

import (
	"netpart/internal/bgq"
	"netpart/internal/tabulate"
)

// SequoiaAnalysis applies the paper's method to Sequoia (§5): the
// machine the authors analyzed but could not benchmark (it moved to
// classified work in 2013). Like JUQUEEN, its scheduler appears to
// permit all geometries the network allows, so both optimal and
// sub-optimal partitions exist for many sizes. The table lists every
// size where they differ — the improvement the analysis predicts would
// be available.
func SequoiaAnalysis() tabulate.Table {
	t := tabulate.Table{
		Title: "Sequoia (4x4x4x3 midplanes): sizes where allocation geometry matters",
		Headers: []string{"P (nodes)", "Midplanes", "Worst", "Worst BW", "Best", "Best BW",
			"potential speedup"},
	}
	seq := bgq.Sequoia()
	for _, size := range seq.FeasibleSizes() {
		worst, _ := seq.Worst(size)
		best, _ := seq.Best(size)
		if worst.BisectionBW() == best.BisectionBW() {
			continue
		}
		ratio := float64(best.BisectionBW()) / float64(worst.BisectionBW())
		t.AddRow(worst.Nodes(), size, worst.String(), worst.BisectionBW(),
			best.String(), best.BisectionBW(), tabulate.FormatFloat(ratio)+"x")
	}
	return t
}
