package experiments

import (
	"context"
	"testing"

	"netpart/internal/tabulate"
)

// genTable runs a table generator with default options, failing the
// test on error.
func genTable(t *testing.T, gen func(Config, context.Context) (tabulate.Table, error)) tabulate.Table {
	t.Helper()
	tab, err := gen(Config{}, context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// genBW runs a bandwidth-figure generator with default options.
func genBW(t *testing.T, gen func(Config, context.Context) (BWFigure, error)) BWFigure {
	t.Helper()
	f, err := gen(Config{}, context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return f
}
