package experiments

import (
	"context"
	"errors"
	"testing"
	"time"

	"netpart/internal/bgq"
	"netpart/internal/model"
)

// TestPreCanceledContext verifies every generator path returns
// ctx.Err() without doing work when handed a dead context.
func TestPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := Config{}
	checks := []struct {
		name string
		run  func() error
	}{
		{"Table1", func() error { _, err := c.Table1(ctx); return err }},
		{"Table6", func() error { _, err := c.Table6(ctx); return err }},
		{"Figure2", func() error { _, err := c.Figure2(ctx); return err }},
		{"Figure3", func() error { _, err := c.Figure3(ctx); return err }},
		{"Figure5", func() error { _, err := c.Figure5(ctx); return err }},
		{"SimulatePairing", func() error {
			cfg := model.PaperPairing(bgq.MustPartition(2, 1, 1, 1))
			_, err := SimulatePairing(ctx, cfg, true)
			return err
		}},
	}
	for _, ck := range checks {
		if err := ck.run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", ck.name, err)
		}
	}
}

// TestMidRunCancelTableDriver cancels Table7 from its own progress
// callback after the first completed row; the pool must stop handing
// out units and surface ctx.Err().
func TestMidRunCancelTableDriver(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		ran := 0
		c := Config{Workers: workers, Progress: func(_ string, done, total int) {
			ran = done
			cancel()
		}}
		_, err := c.Table7(ctx)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// JUQUEEN has 19 feasible sizes; canceling after the first
		// completions must leave most unvisited (in-flight units finish,
		// new ones are not handed out).
		if ran >= 19 {
			t.Errorf("Workers=%d: all %d units ran despite cancellation", workers, ran)
		}
		cancel()
	}
}

// TestMidRunCancelPairingFigure cancels Figure4 from its progress
// callback after the first completed pairing point.
func TestMidRunCancelPairingFigure(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := Config{Workers: 1, Progress: func(_ string, done, total int) { cancel() }}
	_, err := c.Figure4(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestCancelAfterAllUnitsComplete pins the pooled/sequential
// agreement on late cancellation: a cancel that lands only after
// every unit finished is not an error — the complete result is
// returned on both paths.
func TestCancelAfterAllUnitsComplete(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		c := Config{Workers: workers, Progress: func(_ string, done, total int) {
			if done == total {
				cancel()
			}
		}}
		if err := c.forEachProgress(ctx, 8, func(i int) error { return nil }); err != nil {
			t.Errorf("Workers=%d: err = %v, want nil (cancel landed after completion)", workers, err)
		}
		cancel()
	}
}

// TestMidRunCancelSimulation cancels a pairing simulation that would
// otherwise run an absurd number of rounds, and requires it to return
// ctx.Err() promptly (the between-rounds / per-flow-batch checks).
func TestMidRunCancelSimulation(t *testing.T) {
	cfg := model.PairingConfig{
		Partition:      bgq.MustPartition(2, 1, 1, 1),
		Rounds:         1 << 30, // would take months without cancellation
		ChunkBytes:     1e8,
		ChunksPerRound: 2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := SimulatePairing(ctx, cfg, true)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("simulation did not abort after cancellation")
	}
}
