package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"netpart/internal/bgq"
	"netpart/internal/tabulate"
)

// Config parameterizes one experiment run. The zero value is ready to
// use: it runs on a GOMAXPROCS-sized worker pool, simulates pairing
// experiments on the one-round fast path, and resolves machines from
// the built-in bgq catalog. Configs are plain values — concurrent runs
// with different configs do not interfere (there is no package-global
// tuning state).
type Config struct {
	// Workers bounds the worker pool the generators fan out on. Zero
	// or negative means the runnable-CPU count; 1 forces the
	// sequential path. Output is byte-identical either way
	// (TestParallelDriversMatchSequential): units land in
	// index-addressed slots no matter how they interleave.
	Workers int

	// FullRounds makes the pairing experiments (Figures 3, 4)
	// simulate every communication round end-to-end instead of
	// simulating one round with full event resolution and scaling
	// (the rounds are identical in the fluid model, so the results
	// agree to floating point; see TestFullRoundSimulationAtScale).
	FullRounds bool

	// Progress, when non-nil, is called after each completed unit of
	// a generator's main loop (a table row, a figure point) with the
	// run token, the number of completed units and the total. Calls
	// are serialized but may arrive from pool goroutines; completion
	// order is not index order.
	Progress func(token string, done, total int)

	// RunToken identifies this run in progress reports. Concurrent
	// runs of the same generator are indistinguishable to a
	// multiplexed progress consumer without it; the root Runner mints
	// a unique token per Run call.
	RunToken string

	// Machines resolves a machine name ("mira", "juqueen", "sequoia",
	// "juqueen48", "juqueen54") to its model. Nil means the built-in
	// bgq catalog. Tests substitute corrupted or hypothetical
	// catalogs here; generators surface resolution errors instead of
	// emitting zero rows.
	Machines func(name string) (*bgq.Machine, error)
}

// DefaultMachines resolves machine names from the built-in bgq
// catalog; it is the resolver a Config with a nil Machines field uses.
func DefaultMachines(name string) (*bgq.Machine, error) {
	switch name {
	case "mira":
		return bgq.Mira(), nil
	case "juqueen":
		return bgq.Juqueen(), nil
	case "sequoia":
		return bgq.Sequoia(), nil
	case "juqueen48":
		return bgq.Juqueen48(), nil
	case "juqueen54":
		return bgq.Juqueen54(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown machine %q", name)
	}
}

// machine resolves one machine through the config's resolver.
func (c Config) machine(name string) (*bgq.Machine, error) {
	resolve := c.Machines
	if resolve == nil {
		resolve = DefaultMachines
	}
	m, err := resolve(name)
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("experiments: machine catalog returned no %q", name)
	}
	return m, nil
}

// ResolvedWorkers returns the pool size a run with this config uses:
// Workers when positive, otherwise the runnable-CPU count. It is the
// single source of truth for the default (the root package's RunMeta
// reports it).
func (c Config) ResolvedWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach exposes the bounded worker-pool driver to sibling
// subsystems (the scenario sweep engine shards parameter grids onto
// it): fn(0..n-1) runs on min(workers, n) goroutines with the same
// determinism and cancellation contract as the experiment generators
// — the lowest-index error wins, workers stop picking up units once
// any unit fails or ctx is canceled, and a run that completed every
// unit returns nil even if cancellation lands afterwards.
func (c Config) ForEach(ctx context.Context, n int, fn func(i int) error) error {
	return c.forEach(ctx, n, fn)
}

// forEach runs fn(0..n-1) on a bounded pool of min(workers, n)
// goroutines and returns the lowest-index error, mirroring what a
// sequential loop would have surfaced first. Work is handed out
// through an atomic counter, so the pool stays busy even when unit
// costs are skewed (large partitions take far longer than small
// ones). Once any unit errors or ctx is canceled, workers stop
// picking up new units (in-flight units finish); a canceled run
// returns ctx.Err() unless a unit error precedes it in index order.
func (c Config) forEach(ctx context.Context, n int, fn func(i int) error) error {
	return c.run(ctx, n, fn, nil)
}

// forEachProgress is forEach plus per-unit progress reporting through
// c.Progress. Generators use it on their main loop only, so done/total
// counts mean what a caller expects (rows or points, not internal
// setup units).
func (c Config) forEachProgress(ctx context.Context, n int, fn func(i int) error) error {
	return c.run(ctx, n, fn, c.Progress)
}

// tableRows computes n table rows on the worker pool (reporting
// progress per row) and returns them in index order. A row callback
// may return (nil, nil) to skip its row; addRows drops the nils.
func (c Config) tableRows(ctx context.Context, n int, row func(i int) ([]any, error)) ([][]any, error) {
	rows := make([][]any, n)
	if err := c.forEachProgress(ctx, n, func(i int) error {
		r, err := row(i)
		if err != nil {
			return err
		}
		rows[i] = r
		return nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// addRows appends the non-nil rows to the table, preserving index
// order.
func addRows(t *tabulate.Table, rows [][]any) {
	for _, r := range rows {
		if r != nil {
			t.AddRow(r...)
		}
	}
}

func (c Config) run(ctx context.Context, n int, fn func(i int) error, progress func(token string, done, total int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	workers := c.ResolvedWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
			if progress != nil {
				progress(c.RunToken, i+1, n)
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var completed atomic.Int64
	var failed atomic.Bool
	var progressMu sync.Mutex
	progressDone := 0
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() && ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
					continue
				}
				completed.Add(1)
				if progress != nil {
					progressMu.Lock()
					progressDone++
					progress(c.RunToken, progressDone, n)
					progressMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Cancellation that lands only after every unit finished is not an
	// error — the sequential path would have returned the complete
	// result too, and the two paths must agree.
	if int(completed.Load()) == n {
		return nil
	}
	return ctx.Err()
}
