package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers bounds the experiment drivers' worker pool. Every generator
// in this package that fans out over independent rows or figure points
// (the per-partition rows of Tables 5/6/7, the per-size sweeps of
// Figures 1/2, the per-point pairing simulations of Figures 3/4) runs
// its units through forEach, which executes them on up to Workers
// goroutines while writing results into index-addressed slots — so the
// assembled output is byte-identical to the sequential order no matter
// how the units interleave (TestParallelDriversMatchSequential pins
// this down).
//
// The default is the runnable-CPU count; set to 1 to force the
// sequential path. Tests may mutate it, but it should not be changed
// while a generator is running.
var Workers = runtime.GOMAXPROCS(0)

// forEach runs fn(0..n-1) on a bounded pool of min(Workers, n)
// goroutines and returns the lowest-index error, mirroring what a
// sequential loop would have surfaced first. Work is handed out
// through an atomic counter, so the pool stays busy even when unit
// costs are skewed (large partitions take far longer than small
// ones). Once any unit errors, workers stop picking up new units
// (in-flight units finish), matching the sequential path's
// stop-on-first-error behavior.
func forEach(n int, fn func(i int) error) error {
	workers := Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
