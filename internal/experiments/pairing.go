package experiments

import (
	"context"
	"fmt"
	"math"

	"netpart/internal/bgq"
	"netpart/internal/model"
	"netpart/internal/netsim"
	"netpart/internal/route"
	"netpart/internal/tabulate"
	"netpart/internal/torus"
	"netpart/internal/workload"
)

// PairingPoint is one bar of Figures 3/4: a partition geometry and its
// simulated and statically predicted completion times.
type PairingPoint struct {
	Midplanes   int
	Partition   bgq.Partition
	BisectionBW int
	SimSec      float64 // flow-level simulation
	StaticSec   float64 // closed-form bottleneck model
}

// PairingFigure holds one experiment series pair (current/worst vs
// proposed/best).
type PairingFigure struct {
	Title   string
	SeriesA string // label of the first series (current or worst-case)
	SeriesB string // label of the second series (proposed or best-case)
	PointsA []PairingPoint
	PointsB []PairingPoint
}

// simCancelStride bounds how many flow starts a pairing simulation
// runs between context checks, so cancellation lands promptly even
// inside a single large round (12288 flows at 24 midplanes).
const simCancelStride = 256

// SimulatePairing runs the §4.1 bisection-pairing benchmark on a
// partition through the flow-level simulator and returns the total
// completion time for the counted rounds. Rounds are identical in the
// fluid model (every pair exchanges the same volume and the pattern is
// symmetric), so one round is simulated with full event resolution and
// scaled; set fullRounds to simulate every round end-to-end instead.
// The context is checked between rounds and every simCancelStride flow
// starts; a canceled simulation returns ctx.Err() promptly.
func SimulatePairing(ctx context.Context, cfg model.PairingConfig, fullRounds bool) (float64, error) {
	shape := cfg.Partition.NodeShape()
	tor, err := torus.New(shape...)
	if err != nil {
		return 0, err
	}
	r := route.NewRouter(tor)
	demands, err := workload.BisectionPairing(r, cfg.RoundBytes())
	if err != nil {
		return 0, err
	}
	rounds := cfg.Rounds
	simRounds := 1
	if fullRounds {
		simRounds = rounds
	}
	sim := netsim.New(r.NumLinks(), model.LinkBytesPerSec)
	total := 0.0
	buf := make([]int, 0, 64)
	for round := 0; round < simRounds; round++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		for di, d := range demands {
			if di%simCancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
			}
			buf = r.Route(d.Src, d.Dst, buf[:0])
			sim.StartFlow(buf, d.Bytes, 0)
		}
		total += sim.RunUntilIdle()
	}
	if !fullRounds {
		total *= float64(rounds)
	}
	return total, nil
}

// pairingPoints measures two partition series through the flow-level
// simulator on the worker pool. Points are interleaved (A0, B0, A1,
// B1, ...) so the expensive large-partition pairs spread across
// workers, and results land in index-addressed slots, keeping the
// output identical to the sequential order.
func (c Config) pairingPoints(ctx context.Context, a, b []bgq.Partition) (ptsA, ptsB []PairingPoint, err error) {
	n := len(a)
	pts := make([]PairingPoint, 2*n)
	err = c.forEachProgress(ctx, 2*n, func(i int) error {
		p := a[i/2]
		if i%2 == 1 {
			p = b[i/2]
		}
		pt, err := c.pairingPoint(ctx, p)
		if err != nil {
			return err
		}
		pts[i] = pt
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	ptsA = make([]PairingPoint, n)
	ptsB = make([]PairingPoint, n)
	for i := 0; i < n; i++ {
		ptsA[i], ptsB[i] = pts[2*i], pts[2*i+1]
	}
	return ptsA, ptsB, nil
}

// pairingPoint measures one partition.
func (c Config) pairingPoint(ctx context.Context, p bgq.Partition) (PairingPoint, error) {
	cfg := model.PaperPairing(p)
	sim, err := SimulatePairing(ctx, cfg, c.FullRounds)
	if err != nil {
		return PairingPoint{}, err
	}
	return PairingPoint{
		Midplanes:   p.Midplanes(),
		Partition:   p,
		BisectionBW: p.BisectionBW(),
		SimSec:      sim,
		StaticSec:   model.StaticPairingTime(cfg),
	}, nil
}

// Figure3 reproduces paper Figure 3: the bisection-pairing experiment
// on Mira's current vs proposed partitions at 4, 8, 16 and 24
// midplanes. Set Config.FullRounds to simulate every round end-to-end.
func (c Config) Figure3(ctx context.Context) (PairingFigure, error) {
	fig := PairingFigure{
		Title:   "Figure 3: Mira bisection pairing (26 rounds, 16 x 0.1342 GB per round)",
		SeriesA: "current",
		SeriesB: "proposed",
	}
	mira, err := c.machine("mira")
	if err != nil {
		return fig, err
	}
	if err := ctx.Err(); err != nil {
		return fig, err
	}
	mps := []int{4, 8, 16, 24}
	partsA := make([]bgq.Partition, len(mps))
	partsB := make([]bgq.Partition, len(mps))
	for i, mp := range mps {
		cur, ok := mira.Predefined(mp)
		if !ok {
			return fig, fmt.Errorf("experiments: %s has no predefined %d-midplane partition", mira.Name, mp)
		}
		prop, ok := mira.Proposed(mp)
		if !ok {
			return fig, fmt.Errorf("experiments: %s has no proposed %d-midplane partition", mira.Name, mp)
		}
		partsA[i], partsB[i] = cur, prop
	}
	fig.PointsA, fig.PointsB, err = c.pairingPoints(ctx, partsA, partsB)
	return fig, err
}

// Figure4 reproduces paper Figure 4: the bisection-pairing experiment
// on JUQUEEN's worst vs best partitions at 4, 6, 8, 12 and 16
// midplanes. Set Config.FullRounds to simulate every round end-to-end.
func (c Config) Figure4(ctx context.Context) (PairingFigure, error) {
	fig := PairingFigure{
		Title:   "Figure 4: JUQUEEN bisection pairing (26 rounds, 16 x 0.1342 GB per round)",
		SeriesA: "worst-case",
		SeriesB: "best-case",
	}
	jq, err := c.machine("juqueen")
	if err != nil {
		return fig, err
	}
	if err := ctx.Err(); err != nil {
		return fig, err
	}
	mps := []int{4, 6, 8, 12, 16}
	partsA := make([]bgq.Partition, len(mps))
	partsB := make([]bgq.Partition, len(mps))
	for i, mp := range mps {
		worst, best, err := extremes(jq, mp)
		if err != nil {
			return fig, err
		}
		partsA[i], partsB[i] = worst, best
	}
	fig.PointsA, fig.PointsB, err = c.pairingPoints(ctx, partsA, partsB)
	return fig, err
}

// Table renders the pairing figure as a table with simulated and
// static predictions side by side.
func (f PairingFigure) Table() tabulate.Table {
	t := tabulate.Table{
		Title: f.Title,
		Headers: []string{"Midplanes",
			f.SeriesA, f.SeriesA + " BW", f.SeriesA + " sim (s)", f.SeriesA + " static (s)",
			f.SeriesB, f.SeriesB + " BW", f.SeriesB + " sim (s)", f.SeriesB + " static (s)",
			"speedup"},
	}
	for i := range f.PointsA {
		a, b := f.PointsA[i], f.PointsB[i]
		t.AddRow(a.Midplanes,
			a.Partition.String(), a.BisectionBW, a.SimSec, a.StaticSec,
			b.Partition.String(), b.BisectionBW, b.SimSec, b.StaticSec,
			fmt.Sprintf("%.2f", a.SimSec/b.SimSec))
	}
	return t
}

// Chart renders the pairing figure as ASCII bars.
func (f PairingFigure) Chart() tabulate.Chart {
	c := tabulate.Chart{Title: f.Title, XLabel: "midplanes", YLabel: "time (s)"}
	sa := tabulate.Series{Label: f.SeriesA}
	sb := tabulate.Series{Label: f.SeriesB}
	for i := range f.PointsA {
		c.X = append(c.X, fmt.Sprintf("%d", f.PointsA[i].Midplanes))
		sa.Y = append(sa.Y, f.PointsA[i].SimSec)
		sb.Y = append(sb.Y, f.PointsB[i].SimSec)
	}
	c.Series = []tabulate.Series{sa, sb}
	return c
}

// MaxSpeedup returns the largest observed A/B time ratio.
func (f PairingFigure) MaxSpeedup() float64 {
	best := 0.0
	for i := range f.PointsA {
		if r := f.PointsA[i].SimSec / f.PointsB[i].SimSec; r > best && !math.IsNaN(r) {
			best = r
		}
	}
	return best
}
