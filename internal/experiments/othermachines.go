package experiments

import (
	"netpart/internal/tabulate"
	"netpart/internal/topo"
)

// OtherTopologies applies the paper's §5 "application to other
// topologies" discussion: for each non-Blue-Gene system the paper
// names, the solver its topology admits and the resulting full-network
// bisection bandwidth.
func OtherTopologies() tabulate.Table {
	t := tabulate.Table{
		Title:   "§5: isoperimetric analysis of other network topologies",
		Headers: []string{"system", "topology", "nodes", "bisection (links)", "method"},
	}
	for _, m := range topo.OtherMachines() {
		b, err := m.Bisection()
		bs := tabulate.FormatFloat(b)
		if err != nil {
			bs = "n/a: " + err.Error()
		}
		t.AddRow(m.Name, m.Topology, m.NumNodes(), bs, m.Method)
	}
	return t
}
