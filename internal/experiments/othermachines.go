package experiments

import (
	"context"

	"netpart/internal/tabulate"
	"netpart/internal/topo"
)

// OtherTopologies applies the paper's §5 "application to other
// topologies" discussion: for each non-Blue-Gene system the paper
// names, the solver its topology admits and the resulting full-network
// bisection bandwidth.
func (c Config) OtherTopologies(ctx context.Context) (tabulate.Table, error) {
	t := tabulate.Table{
		Title:   "§5: isoperimetric analysis of other network topologies",
		Headers: []string{"system", "topology", "nodes", "bisection (links)", "method"},
	}
	machines := topo.OtherMachines()
	rows, err := c.tableRows(ctx, len(machines), func(i int) ([]any, error) {
		m := machines[i]
		b, err := m.Bisection()
		bs := tabulate.FormatFloat(b)
		if err != nil {
			bs = "n/a: " + err.Error()
		}
		return []any{m.Name, m.Topology, m.NumNodes(), bs, m.Method}, nil
	})
	if err != nil {
		return t, err
	}
	addRows(&t, rows)
	return t, nil
}
