// Package experiments regenerates every table and figure of the
// paper's evaluation: the partition-analysis tables (1, 2, 5, 6, 7)
// and bandwidth figures (1, 2, 7) from the exact isoperimetric
// machinery, the bisection-pairing experiment (Figures 3, 4) through
// the flow-level network simulator, and the matrix-multiplication
// experiments (Tables 3, 4; Figures 5, 6) through the calibrated CAPS
// cost model.
//
// Every generator is a method on Config, takes a context, and returns
// an error: per-call worker pools replace the old package-global
// tuning knob, catalog inconsistencies surface instead of producing
// zero rows, and cancellation aborts long sweeps promptly (the worker
// pool stops handing out units; the pairing simulator checks between
// rounds and flow batches). The public artifact registry over these
// generators is the root netpart package's Registry/Runner API; the
// per-experiment index lives in DESIGN.md and the measured-vs-paper
// record in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"math"

	"netpart/internal/bgq"
	"netpart/internal/model"
	"netpart/internal/tabulate"
)

// Table1 reproduces paper Table 1: Mira rows where the proposed
// geometry strictly improves the bisection.
func (c Config) Table1(ctx context.Context) (tabulate.Table, error) {
	t := tabulate.Table{
		Title:   "Table 1: Mira partitions with improved geometries",
		Headers: []string{"P (nodes)", "Midplanes", "Current", "BW", "Proposed", "Proposed BW"},
	}
	mira, err := c.machine("mira")
	if err != nil {
		return t, err
	}
	sizes := mira.PredefinedSizes()
	if len(sizes) == 0 {
		return t, fmt.Errorf("experiments: %s has no predefined partition list", mira.Name)
	}
	rows, err := c.tableRows(ctx, len(sizes), func(i int) ([]any, error) {
		size := sizes[i]
		cur, ok := mira.Predefined(size)
		if !ok {
			return nil, fmt.Errorf("experiments: %s predefined list lost size %d", mira.Name, size)
		}
		prop, improved := mira.Proposed(size)
		if !improved {
			return nil, nil
		}
		return []any{cur.Nodes(), size, cur.String(), cur.BisectionBW(), prop.String(), prop.BisectionBW()}, nil
	})
	if err != nil {
		return t, err
	}
	addRows(&t, rows)
	return t, nil
}

// Table2 reproduces paper Table 2: JUQUEEN sizes where worst and best
// geometries differ.
func (c Config) Table2(ctx context.Context) (tabulate.Table, error) {
	t := tabulate.Table{
		Title:   "Table 2: JUQUEEN best vs worst partitions (differing rows)",
		Headers: []string{"P (nodes)", "Midplanes", "Worst", "Worst BW", "Best", "Best BW"},
	}
	jq, err := c.machine("juqueen")
	if err != nil {
		return t, err
	}
	sizes := jq.FeasibleSizes()
	rows, err := c.tableRows(ctx, len(sizes), func(i int) ([]any, error) {
		size := sizes[i]
		worst, best, err := extremes(jq, size)
		if err != nil {
			return nil, err
		}
		if worst.BisectionBW() == best.BisectionBW() {
			return nil, nil
		}
		return []any{worst.Nodes(), size, worst.String(), worst.BisectionBW(), best.String(), best.BisectionBW()}, nil
	})
	if err != nil {
		return t, err
	}
	addRows(&t, rows)
	return t, nil
}

// extremes returns the worst and best geometries of a feasible size,
// as an error rather than a zero partition when the size is infeasible
// (a corrupted catalog, or a caller-supplied machine too small for the
// experiment's hardcoded sizes).
func extremes(m *bgq.Machine, size int) (worst, best bgq.Partition, err error) {
	worst, ok := m.Worst(size)
	if !ok {
		return worst, best, fmt.Errorf("experiments: no %d-midplane cuboid fits %s", size, m.Name)
	}
	best, _ = m.Best(size)
	return worst, best, nil
}

// Table6 reproduces paper Table 6: the full Mira partition list. Rows
// are computed on the worker pool (each involves a best-geometry
// search) and assembled in size order.
func (c Config) Table6(ctx context.Context) (tabulate.Table, error) {
	t := tabulate.Table{
		Title:   "Table 6: Mira current and proposed partitions (full list)",
		Headers: []string{"P (nodes)", "Midplanes", "Current", "BW", "New Geometry", "New BW"},
	}
	mira, err := c.machine("mira")
	if err != nil {
		return t, err
	}
	sizes := mira.PredefinedSizes()
	if len(sizes) == 0 {
		return t, fmt.Errorf("experiments: %s has no predefined partition list", mira.Name)
	}
	rows, err := c.tableRows(ctx, len(sizes), func(i int) ([]any, error) {
		size := sizes[i]
		cur, ok := mira.Predefined(size)
		if !ok {
			return nil, fmt.Errorf("experiments: %s predefined list lost size %d", mira.Name, size)
		}
		prop, improved := mira.Proposed(size)
		ps, pbw := "", ""
		if improved {
			ps = prop.String()
			pbw = fmt.Sprintf("%d", prop.BisectionBW())
		}
		return []any{cur.Nodes(), size, cur.String(), cur.BisectionBW(), ps, pbw}, nil
	})
	if err != nil {
		return t, err
	}
	addRows(&t, rows)
	return t, nil
}

// Table7 reproduces paper Table 7: the full JUQUEEN worst/best list.
// Each row's worst/best geometry search runs on the worker pool.
func (c Config) Table7(ctx context.Context) (tabulate.Table, error) {
	t := tabulate.Table{
		Title:   "Table 7: JUQUEEN allocation best and worst cases (full list)",
		Headers: []string{"P (nodes)", "Midplanes", "Worst", "Worst BW", "Best", "Best BW"},
	}
	jq, err := c.machine("juqueen")
	if err != nil {
		return t, err
	}
	sizes := jq.FeasibleSizes()
	rows, err := c.tableRows(ctx, len(sizes), func(i int) ([]any, error) {
		size := sizes[i]
		worst, best, err := extremes(jq, size)
		if err != nil {
			return nil, err
		}
		bs, bbw := "", ""
		if best.BisectionBW() != worst.BisectionBW() {
			bs = best.String()
			bbw = fmt.Sprintf("%d", best.BisectionBW())
		}
		return []any{worst.Nodes(), size, worst.String(), worst.BisectionBW(), bs, bbw}, nil
	})
	if err != nil {
		return t, err
	}
	addRows(&t, rows)
	return t, nil
}

// Table5 reproduces paper Table 5: best-case partitions of JUQUEEN and
// the hypothetical JUQUEEN-54 and JUQUEEN-48.
func (c Config) Table5(ctx context.Context) (tabulate.Table, error) {
	t := tabulate.Table{
		Title:   "Table 5: best-case partitions, JUQUEEN vs hypothetical machines",
		Headers: []string{"P (nodes)", "Midplanes", "JUQUEEN", "J BW", "JUQUEEN-54", "J-54 BW", "JUQUEEN-48", "J-48 BW"},
	}
	machines, err := c.machineSet("juqueen", "juqueen54", "juqueen48")
	if err != nil {
		return t, err
	}
	sizes := unionSizes(machines...)
	rows, err := c.tableRows(ctx, len(sizes), func(i int) ([]any, error) {
		size := sizes[i]
		cells := []any{size * bgq.MidplaneNodes, size}
		for _, m := range machines {
			if best, ok := m.Best(size); ok {
				cells = append(cells, best.String(), best.BisectionBW())
			} else {
				cells = append(cells, "", "")
			}
		}
		return cells, nil
	})
	if err != nil {
		return t, err
	}
	addRows(&t, rows)
	return t, nil
}

// machineSet resolves several machines, failing on the first the
// catalog cannot supply.
func (c Config) machineSet(names ...string) ([]*bgq.Machine, error) {
	ms := make([]*bgq.Machine, len(names))
	for i, name := range names {
		m, err := c.machine(name)
		if err != nil {
			return nil, err
		}
		ms[i] = m
	}
	return ms, nil
}

func unionSizes(ms ...*bgq.Machine) []int {
	seen := map[int]bool{}
	var sizes []int
	for _, m := range ms {
		for _, s := range m.FeasibleSizes() {
			if !seen[s] {
				seen[s] = true
				sizes = append(sizes, s)
			}
		}
	}
	// insertion sort (short list)
	for i := 1; i < len(sizes); i++ {
		for j := i; j > 0 && sizes[j] < sizes[j-1]; j-- {
			sizes[j], sizes[j-1] = sizes[j-1], sizes[j]
		}
	}
	return sizes
}

// BWFigure is a normalized-bisection-bandwidth series figure
// (Figures 1, 2 and 7).
type BWFigure struct {
	Title  string
	X      []int // midplane counts
	Series []tabulate.Series
}

// Table renders the figure data as a table.
func (f BWFigure) Table() tabulate.Table {
	t := tabulate.Table{Title: f.Title, Headers: []string{"Midplanes"}}
	for _, s := range f.Series {
		t.Headers = append(t.Headers, s.Label)
	}
	for i, x := range f.X {
		cells := []any{x}
		for _, s := range f.Series {
			if math.IsNaN(s.Y[i]) {
				cells = append(cells, "")
			} else {
				cells = append(cells, int(s.Y[i]))
			}
		}
		t.AddRow(cells...)
	}
	return t
}

// Chart renders the figure as an ASCII chart.
func (f BWFigure) Chart() tabulate.Chart {
	c := tabulate.Chart{Title: f.Title, XLabel: "midplanes", YLabel: "normalized bisection bandwidth", Series: f.Series}
	for _, x := range f.X {
		c.X = append(c.X, fmt.Sprintf("%d", x))
	}
	return c
}

// Figure1 reproduces paper Figure 1: Mira's current vs proposed
// normalized bisection bandwidth over the predefined partition sizes.
func (c Config) Figure1(ctx context.Context) (BWFigure, error) {
	f := BWFigure{Title: "Figure 1: Mira normalized bisection bandwidth"}
	mira, err := c.machine("mira")
	if err != nil {
		return f, err
	}
	sizes := mira.PredefinedSizes()
	if len(sizes) == 0 {
		return f, fmt.Errorf("experiments: %s has no predefined partition list", mira.Name)
	}
	cur := tabulate.Series{Label: "current", Y: make([]float64, len(sizes))}
	prop := tabulate.Series{Label: "proposed", Y: make([]float64, len(sizes))}
	f.X = append(f.X, sizes...)
	if err := c.forEachProgress(ctx, len(sizes), func(i int) error {
		p, ok := mira.Predefined(sizes[i])
		if !ok {
			return fmt.Errorf("experiments: %s predefined list lost size %d", mira.Name, sizes[i])
		}
		cur.Y[i] = float64(p.BisectionBW())
		if prop2, ok := mira.Proposed(sizes[i]); ok {
			prop.Y[i] = float64(prop2.BisectionBW())
		} else {
			prop.Y[i] = cur.Y[i]
		}
		return nil
	}); err != nil {
		return f, err
	}
	f.Series = []tabulate.Series{cur, prop}
	return f, nil
}

// Figure2 reproduces paper Figure 2: JUQUEEN best vs worst-case
// bandwidth across all feasible sizes; ring-shaped sizes are the
// 'spiking drops'.
func (c Config) Figure2(ctx context.Context) (BWFigure, error) {
	f := BWFigure{Title: "Figure 2: JUQUEEN best/worst normalized bisection bandwidth"}
	jq, err := c.machine("juqueen")
	if err != nil {
		return f, err
	}
	sizes := jq.FeasibleSizes()
	worst := tabulate.Series{Label: "worst-case", Y: make([]float64, len(sizes))}
	best := tabulate.Series{Label: "best-case", Y: make([]float64, len(sizes))}
	f.X = append(f.X, sizes...)
	if err := c.forEachProgress(ctx, len(sizes), func(i int) error {
		w, b, err := extremes(jq, sizes[i])
		if err != nil {
			return err
		}
		worst.Y[i] = float64(w.BisectionBW())
		best.Y[i] = float64(b.BisectionBW())
		return nil
	}); err != nil {
		return f, err
	}
	f.Series = []tabulate.Series{worst, best}
	return f, nil
}

// Figure7 reproduces paper Figure 7: best-case bandwidth of JUQUEEN
// vs the hypothetical JUQUEEN-48 and JUQUEEN-54 (missing sizes NaN).
func (c Config) Figure7(ctx context.Context) (BWFigure, error) {
	f := BWFigure{Title: "Figure 7: JUQUEEN vs hypothetical machines (best-case BW)"}
	machines, err := c.machineSet("juqueen", "juqueen48", "juqueen54")
	if err != nil {
		return f, err
	}
	f.X = unionSizes(machines...)
	for _, m := range machines {
		f.Series = append(f.Series, tabulate.Series{Label: m.Name, Y: make([]float64, len(f.X))})
	}
	if err := c.forEachProgress(ctx, len(f.X), func(i int) error {
		for mi, m := range machines {
			if best, ok := m.Best(f.X[i]); ok {
				f.Series[mi].Y[i] = float64(best.BisectionBW())
			} else {
				f.Series[mi].Y[i] = math.NaN()
			}
		}
		return nil
	}); err != nil {
		return f, err
	}
	return f, nil
}

// Table3 reproduces paper Table 3: the matmul experiment parameters.
func (c Config) Table3(ctx context.Context) (tabulate.Table, error) {
	t := tabulate.Table{
		Title:   "Table 3: matrix multiplication experiment parameters (Mira)",
		Headers: []string{"P (nodes)", "Midplanes", "MPI Ranks", "Max active cores", "Avg cores per proc", "Matrix dim"},
	}
	mira, err := c.machine("mira")
	if err != nil {
		return t, err
	}
	mps := []int{4, 8, 16, 24}
	rows, err := c.tableRows(ctx, len(mps), func(i int) ([]any, error) {
		mp := mps[i]
		p, ok := mira.Predefined(mp)
		if !ok {
			return nil, fmt.Errorf("experiments: %s has no predefined %d-midplane partition for Table 3", mira.Name, mp)
		}
		cfg := MatmulTable3Config(mp, p)
		return []any{p.Nodes(), mp, cfg.Ranks, cfg.MaxActiveCores(),
			fmt.Sprintf("%.2f", cfg.RanksPerNode()), cfg.N}, nil
	})
	if err != nil {
		return t, err
	}
	addRows(&t, rows)
	return t, nil
}

// MatmulTable3Config returns the paper's Table 3 configuration for a
// Mira midplane count and partition (4/8/16 midplanes share one
// configuration; 24 midplanes uses 7^6 ranks on a smaller matrix).
func MatmulTable3Config(midplanes int, p bgq.Partition) model.MatmulConfig {
	switch midplanes {
	case 4, 8, 16:
		return model.MatmulConfig{N: 32928, Ranks: 31213, BFSSteps: 4, Partition: p}
	case 24:
		return model.MatmulConfig{N: 21952, Ranks: 117649, BFSSteps: 6, Partition: p}
	default:
		panic(fmt.Sprintf("experiments: Table 3 has no %d-midplane row", midplanes))
	}
}

// Table4 reproduces paper Table 4: the strong-scaling parameters.
func (c Config) Table4(ctx context.Context) (tabulate.Table, error) {
	t := tabulate.Table{
		Title:   "Table 4: strong scaling experiment parameters (Mira, n=9408)",
		Headers: []string{"P (nodes)", "Midplanes", "MPI Ranks", "Max active cores", "Avg cores per proc", "Current BW", "Proposed BW"},
	}
	mps := []int{2, 4, 8}
	rows, err := c.tableRows(ctx, len(mps), func(i int) ([]any, error) {
		mp := mps[i]
		cur, prop := Table4Partitions(mp)
		cfg := Table4Config(mp, cur)
		return []any{cur.Nodes(), mp, cfg.Ranks, cfg.MaxActiveCores(),
			fmt.Sprintf("%.2f", cfg.RanksPerNode()), cur.BisectionBW(), prop.BisectionBW()}, nil
	})
	if err != nil {
		return t, err
	}
	addRows(&t, rows)
	return t, nil
}

// Table4Partitions returns the current and proposed geometries of the
// strong-scaling experiment (the 2-midplane row has a single possible
// cuboid).
func Table4Partitions(midplanes int) (current, proposed bgq.Partition) {
	switch midplanes {
	case 2:
		p := bgq.MustPartition(2, 1, 1, 1)
		return p, p
	case 4:
		return bgq.MustPartition(4, 1, 1, 1), bgq.MustPartition(2, 2, 1, 1)
	case 8:
		return bgq.MustPartition(4, 2, 1, 1), bgq.MustPartition(2, 2, 2, 1)
	default:
		panic(fmt.Sprintf("experiments: Table 4 has no %d-midplane row", midplanes))
	}
}

// Table4Config returns the CAPS configuration of a Table 4 row: the
// rank count doubles with the midplane count (2401, 4802, 9604).
func Table4Config(midplanes int, p bgq.Partition) model.MatmulConfig {
	return model.MatmulConfig{N: 9408, Ranks: 2401 * midplanes / 2, BFSSteps: 4, Partition: p}
}
