// Package experiments regenerates every table and figure of the
// paper's evaluation: the partition-analysis tables (1, 2, 5, 6, 7)
// and bandwidth figures (1, 2, 7) from the exact isoperimetric
// machinery, the bisection-pairing experiment (Figures 3, 4) through
// the flow-level network simulator, and the matrix-multiplication
// experiments (Tables 3, 4; Figures 5, 6) through the calibrated CAPS
// cost model. Each generator returns structured data plus renderable
// tables/charts; the per-experiment index lives in DESIGN.md and the
// measured-vs-paper record in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math"

	"netpart/internal/bgq"
	"netpart/internal/model"
	"netpart/internal/tabulate"
)

// Table1 reproduces paper Table 1: Mira rows where the proposed
// geometry strictly improves the bisection.
func Table1() tabulate.Table {
	t := tabulate.Table{
		Title:   "Table 1: Mira partitions with improved geometries",
		Headers: []string{"P (nodes)", "Midplanes", "Current", "BW", "Proposed", "Proposed BW"},
	}
	mira := bgq.Mira()
	for _, size := range mira.PredefinedSizes() {
		cur, _ := mira.Predefined(size)
		prop, improved := mira.Proposed(size)
		if !improved {
			continue
		}
		t.AddRow(cur.Nodes(), size, cur.String(), cur.BisectionBW(), prop.String(), prop.BisectionBW())
	}
	return t
}

// Table2 reproduces paper Table 2: JUQUEEN sizes where worst and best
// geometries differ.
func Table2() tabulate.Table {
	t := tabulate.Table{
		Title:   "Table 2: JUQUEEN best vs worst partitions (differing rows)",
		Headers: []string{"P (nodes)", "Midplanes", "Worst", "Worst BW", "Best", "Best BW"},
	}
	jq := bgq.Juqueen()
	for _, size := range jq.FeasibleSizes() {
		worst, _ := jq.Worst(size)
		best, _ := jq.Best(size)
		if worst.BisectionBW() == best.BisectionBW() {
			continue
		}
		t.AddRow(worst.Nodes(), size, worst.String(), worst.BisectionBW(), best.String(), best.BisectionBW())
	}
	return t
}

// Table6 reproduces paper Table 6: the full Mira partition list. Rows
// are computed on the worker pool (each involves a best-geometry
// search) and assembled in size order.
func Table6() tabulate.Table {
	t := tabulate.Table{
		Title:   "Table 6: Mira current and proposed partitions (full list)",
		Headers: []string{"P (nodes)", "Midplanes", "Current", "BW", "New Geometry", "New BW"},
	}
	mira := bgq.Mira()
	sizes := mira.PredefinedSizes()
	rows := make([][]any, len(sizes))
	_ = forEach(len(sizes), func(i int) error {
		size := sizes[i]
		cur, _ := mira.Predefined(size)
		prop, improved := mira.Proposed(size)
		ps, pbw := "", ""
		if improved {
			ps = prop.String()
			pbw = fmt.Sprintf("%d", prop.BisectionBW())
		}
		rows[i] = []any{cur.Nodes(), size, cur.String(), cur.BisectionBW(), ps, pbw}
		return nil
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t
}

// Table7 reproduces paper Table 7: the full JUQUEEN worst/best list.
// Each row's worst/best geometry search runs on the worker pool.
func Table7() tabulate.Table {
	t := tabulate.Table{
		Title:   "Table 7: JUQUEEN allocation best and worst cases (full list)",
		Headers: []string{"P (nodes)", "Midplanes", "Worst", "Worst BW", "Best", "Best BW"},
	}
	jq := bgq.Juqueen()
	sizes := jq.FeasibleSizes()
	rows := make([][]any, len(sizes))
	_ = forEach(len(sizes), func(i int) error {
		size := sizes[i]
		worst, _ := jq.Worst(size)
		best, _ := jq.Best(size)
		bs, bbw := "", ""
		if best.BisectionBW() != worst.BisectionBW() {
			bs = best.String()
			bbw = fmt.Sprintf("%d", best.BisectionBW())
		}
		rows[i] = []any{worst.Nodes(), size, worst.String(), worst.BisectionBW(), bs, bbw}
		return nil
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t
}

// Table5 reproduces paper Table 5: best-case partitions of JUQUEEN and
// the hypothetical JUQUEEN-54 and JUQUEEN-48.
func Table5() tabulate.Table {
	t := tabulate.Table{
		Title:   "Table 5: best-case partitions, JUQUEEN vs hypothetical machines",
		Headers: []string{"P (nodes)", "Midplanes", "JUQUEEN", "J BW", "JUQUEEN-54", "J-54 BW", "JUQUEEN-48", "J-48 BW"},
	}
	jq, j54, j48 := bgq.Juqueen(), bgq.Juqueen54(), bgq.Juqueen48()
	sizes := unionSizes(jq, j54, j48)
	rows := make([][]any, len(sizes))
	_ = forEach(len(sizes), func(i int) error {
		size := sizes[i]
		cells := []any{size * bgq.MidplaneNodes, size}
		for _, m := range []*bgq.Machine{jq, j54, j48} {
			if best, ok := m.Best(size); ok {
				cells = append(cells, best.String(), best.BisectionBW())
			} else {
				cells = append(cells, "", "")
			}
		}
		rows[i] = cells
		return nil
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t
}

func unionSizes(ms ...*bgq.Machine) []int {
	seen := map[int]bool{}
	var sizes []int
	for _, m := range ms {
		for _, s := range m.FeasibleSizes() {
			if !seen[s] {
				seen[s] = true
				sizes = append(sizes, s)
			}
		}
	}
	// insertion sort (short list)
	for i := 1; i < len(sizes); i++ {
		for j := i; j > 0 && sizes[j] < sizes[j-1]; j-- {
			sizes[j], sizes[j-1] = sizes[j-1], sizes[j]
		}
	}
	return sizes
}

// BWFigure is a normalized-bisection-bandwidth series figure
// (Figures 1, 2 and 7).
type BWFigure struct {
	Title  string
	X      []int // midplane counts
	Series []tabulate.Series
}

// Table renders the figure data as a table.
func (f BWFigure) Table() tabulate.Table {
	t := tabulate.Table{Title: f.Title, Headers: []string{"Midplanes"}}
	for _, s := range f.Series {
		t.Headers = append(t.Headers, s.Label)
	}
	for i, x := range f.X {
		cells := []any{x}
		for _, s := range f.Series {
			if math.IsNaN(s.Y[i]) {
				cells = append(cells, "")
			} else {
				cells = append(cells, int(s.Y[i]))
			}
		}
		t.AddRow(cells...)
	}
	return t
}

// Chart renders the figure as an ASCII chart.
func (f BWFigure) Chart() tabulate.Chart {
	c := tabulate.Chart{Title: f.Title, XLabel: "midplanes", YLabel: "normalized bisection bandwidth", Series: f.Series}
	for _, x := range f.X {
		c.X = append(c.X, fmt.Sprintf("%d", x))
	}
	return c
}

// Figure1 reproduces paper Figure 1: Mira's current vs proposed
// normalized bisection bandwidth over the predefined partition sizes.
func Figure1() BWFigure {
	mira := bgq.Mira()
	f := BWFigure{Title: "Figure 1: Mira normalized bisection bandwidth"}
	sizes := mira.PredefinedSizes()
	cur := tabulate.Series{Label: "current", Y: make([]float64, len(sizes))}
	prop := tabulate.Series{Label: "proposed", Y: make([]float64, len(sizes))}
	f.X = append(f.X, sizes...)
	_ = forEach(len(sizes), func(i int) error {
		c, _ := mira.Predefined(sizes[i])
		cur.Y[i] = float64(c.BisectionBW())
		if p, ok := mira.Proposed(sizes[i]); ok {
			prop.Y[i] = float64(p.BisectionBW())
		} else {
			prop.Y[i] = cur.Y[i]
		}
		return nil
	})
	f.Series = []tabulate.Series{cur, prop}
	return f
}

// Figure2 reproduces paper Figure 2: JUQUEEN best vs worst-case
// bandwidth across all feasible sizes; ring-shaped sizes are the
// 'spiking drops'.
func Figure2() BWFigure {
	jq := bgq.Juqueen()
	f := BWFigure{Title: "Figure 2: JUQUEEN best/worst normalized bisection bandwidth"}
	sizes := jq.FeasibleSizes()
	worst := tabulate.Series{Label: "worst-case", Y: make([]float64, len(sizes))}
	best := tabulate.Series{Label: "best-case", Y: make([]float64, len(sizes))}
	f.X = append(f.X, sizes...)
	_ = forEach(len(sizes), func(i int) error {
		w, _ := jq.Worst(sizes[i])
		b, _ := jq.Best(sizes[i])
		worst.Y[i] = float64(w.BisectionBW())
		best.Y[i] = float64(b.BisectionBW())
		return nil
	})
	f.Series = []tabulate.Series{worst, best}
	return f
}

// Figure7 reproduces paper Figure 7: best-case bandwidth of JUQUEEN
// vs the hypothetical JUQUEEN-48 and JUQUEEN-54 (missing sizes NaN).
func Figure7() BWFigure {
	machines := []*bgq.Machine{bgq.Juqueen(), bgq.Juqueen48(), bgq.Juqueen54()}
	f := BWFigure{Title: "Figure 7: JUQUEEN vs hypothetical machines (best-case BW)"}
	f.X = unionSizes(machines...)
	for _, m := range machines {
		f.Series = append(f.Series, tabulate.Series{Label: m.Name, Y: make([]float64, len(f.X))})
	}
	_ = forEach(len(f.X), func(i int) error {
		for mi, m := range machines {
			if best, ok := m.Best(f.X[i]); ok {
				f.Series[mi].Y[i] = float64(best.BisectionBW())
			} else {
				f.Series[mi].Y[i] = math.NaN()
			}
		}
		return nil
	})
	return f
}

// Table3 reproduces paper Table 3: the matmul experiment parameters.
func Table3() tabulate.Table {
	t := tabulate.Table{
		Title:   "Table 3: matrix multiplication experiment parameters (Mira)",
		Headers: []string{"P (nodes)", "Midplanes", "MPI Ranks", "Max active cores", "Avg cores per proc", "Matrix dim"},
	}
	mira := bgq.Mira()
	for _, mp := range []int{4, 8, 16, 24} {
		p, _ := mira.Predefined(mp)
		cfg := MatmulTable3Config(mp, p)
		t.AddRow(p.Nodes(), mp, cfg.Ranks, cfg.MaxActiveCores(),
			fmt.Sprintf("%.2f", cfg.RanksPerNode()), cfg.N)
	}
	return t
}

// MatmulTable3Config returns the paper's Table 3 configuration for a
// Mira midplane count and partition (4/8/16 midplanes share one
// configuration; 24 midplanes uses 7^6 ranks on a smaller matrix).
func MatmulTable3Config(midplanes int, p bgq.Partition) model.MatmulConfig {
	switch midplanes {
	case 4, 8, 16:
		return model.MatmulConfig{N: 32928, Ranks: 31213, BFSSteps: 4, Partition: p}
	case 24:
		return model.MatmulConfig{N: 21952, Ranks: 117649, BFSSteps: 6, Partition: p}
	default:
		panic(fmt.Sprintf("experiments: Table 3 has no %d-midplane row", midplanes))
	}
}

// Table4 reproduces paper Table 4: the strong-scaling parameters.
func Table4() tabulate.Table {
	t := tabulate.Table{
		Title:   "Table 4: strong scaling experiment parameters (Mira, n=9408)",
		Headers: []string{"P (nodes)", "Midplanes", "MPI Ranks", "Max active cores", "Avg cores per proc", "Current BW", "Proposed BW"},
	}
	for _, mp := range []int{2, 4, 8} {
		cur, prop := Table4Partitions(mp)
		cfg := Table4Config(mp, cur)
		t.AddRow(cur.Nodes(), mp, cfg.Ranks, cfg.MaxActiveCores(),
			fmt.Sprintf("%.2f", cfg.RanksPerNode()), cur.BisectionBW(), prop.BisectionBW())
	}
	return t
}

// Table4Partitions returns the current and proposed geometries of the
// strong-scaling experiment (the 2-midplane row has a single possible
// cuboid).
func Table4Partitions(midplanes int) (current, proposed bgq.Partition) {
	switch midplanes {
	case 2:
		p := bgq.MustPartition(2, 1, 1, 1)
		return p, p
	case 4:
		return bgq.MustPartition(4, 1, 1, 1), bgq.MustPartition(2, 2, 1, 1)
	case 8:
		return bgq.MustPartition(4, 2, 1, 1), bgq.MustPartition(2, 2, 2, 1)
	default:
		panic(fmt.Sprintf("experiments: Table 4 has no %d-midplane row", midplanes))
	}
}

// Table4Config returns the CAPS configuration of a Table 4 row: the
// rank count doubles with the midplane count (2401, 4802, 9604).
func Table4Config(midplanes int, p bgq.Partition) model.MatmulConfig {
	return model.MatmulConfig{N: 9408, Ranks: 2401 * midplanes / 2, BFSSteps: 4, Partition: p}
}
