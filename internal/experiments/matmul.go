package experiments

import (
	"context"
	"fmt"

	"netpart/internal/bgq"
	"netpart/internal/model"
	"netpart/internal/tabulate"
)

// MatmulPoint is one execution of the §4.2 matmul experiment.
type MatmulPoint struct {
	Midplanes  int
	Partition  bgq.Partition
	Config     model.MatmulConfig
	Prediction model.Prediction
}

// MatmulFigure pairs current and proposed executions per midplane
// count (Figure 5 and Figure 6).
type MatmulFigure struct {
	Title   string
	PointsA []MatmulPoint // current
	PointsB []MatmulPoint // proposed
}

// Figure5 reproduces paper Figure 5: Strassen-Winograd communication
// times on Mira's current vs proposed partitions, via the calibrated
// CAPS cost model.
func (c Config) Figure5(ctx context.Context) (MatmulFigure, error) {
	fig := MatmulFigure{Title: "Figure 5: Mira matrix multiplication communication time"}
	mira, err := c.machine("mira")
	if err != nil {
		return fig, err
	}
	mps := []int{4, 8, 16, 24}
	ptsA := make([]MatmulPoint, len(mps))
	ptsB := make([]MatmulPoint, len(mps))
	if err := c.forEachProgress(ctx, len(mps), func(i int) error {
		mp := mps[i]
		cur, ok := mira.Predefined(mp)
		if !ok {
			return fmt.Errorf("experiments: %s has no predefined %d-midplane partition", mira.Name, mp)
		}
		prop, ok := mira.Proposed(mp)
		if !ok {
			return fmt.Errorf("experiments: %s has no proposed %d-midplane partition", mira.Name, mp)
		}
		pa, err := matmulPoint(mp, cur, MatmulTable3Config(mp, cur))
		if err != nil {
			return err
		}
		pb, err := matmulPoint(mp, prop, MatmulTable3Config(mp, prop))
		if err != nil {
			return err
		}
		ptsA[i], ptsB[i] = pa, pb
		return nil
	}); err != nil {
		return fig, err
	}
	fig.PointsA, fig.PointsB = ptsA, ptsB
	return fig, nil
}

// Figure6 reproduces paper Figure 6: the strong-scaling experiment
// (n=9408) on 2, 4 and 8 midplanes.
func (c Config) Figure6(ctx context.Context) (MatmulFigure, error) {
	fig := MatmulFigure{Title: "Figure 6: Mira strong scaling (n=9408)"}
	mps := []int{2, 4, 8}
	ptsA := make([]MatmulPoint, len(mps))
	ptsB := make([]MatmulPoint, len(mps))
	if err := c.forEachProgress(ctx, len(mps), func(i int) error {
		mp := mps[i]
		cur, prop := Table4Partitions(mp)
		pa, err := matmulPoint(mp, cur, Table4Config(mp, cur))
		if err != nil {
			return err
		}
		pb, err := matmulPoint(mp, prop, Table4Config(mp, prop))
		if err != nil {
			return err
		}
		ptsA[i], ptsB[i] = pa, pb
		return nil
	}); err != nil {
		return fig, err
	}
	fig.PointsA, fig.PointsB = ptsA, ptsB
	return fig, nil
}

func matmulPoint(mp int, p bgq.Partition, cfg model.MatmulConfig) (MatmulPoint, error) {
	pred, err := model.PredictMatmul(cfg)
	if err != nil {
		return MatmulPoint{}, err
	}
	return MatmulPoint{Midplanes: mp, Partition: p, Config: cfg, Prediction: pred}, nil
}

// Table renders the matmul figure with computation and communication
// components.
func (f MatmulFigure) Table() tabulate.Table {
	t := tabulate.Table{
		Title: f.Title,
		Headers: []string{"Midplanes",
			"current", "comp (s)", "comm (s)",
			"proposed", "comp (s)", "comm (s)",
			"comm speedup"},
	}
	for i := range f.PointsA {
		a, b := f.PointsA[i], f.PointsB[i]
		t.AddRow(a.Midplanes,
			a.Partition.String(), a.Prediction.ComputeSec, a.Prediction.CommSec,
			b.Partition.String(), b.Prediction.ComputeSec, b.Prediction.CommSec,
			fmt.Sprintf("%.2f", a.Prediction.CommSec/b.Prediction.CommSec))
	}
	return t
}

// Chart renders communication times as ASCII bars.
func (f MatmulFigure) Chart() tabulate.Chart {
	c := tabulate.Chart{Title: f.Title, XLabel: "midplanes", YLabel: "communication time (s)"}
	sa := tabulate.Series{Label: "comm (current)"}
	sb := tabulate.Series{Label: "comm (proposed)"}
	sc := tabulate.Series{Label: "computation"}
	for i := range f.PointsA {
		c.X = append(c.X, fmt.Sprintf("%d", f.PointsA[i].Midplanes))
		sa.Y = append(sa.Y, f.PointsA[i].Prediction.CommSec)
		sb.Y = append(sb.Y, f.PointsB[i].Prediction.CommSec)
		sc.Y = append(sc.Y, f.PointsA[i].Prediction.ComputeSec)
	}
	c.Series = []tabulate.Series{sc, sa, sb}
	return c
}
